// Package anyscan is a Go implementation of anySCAN — the anytime, parallel,
// exact structural graph clustering algorithm of Mai et al., "Scalable and
// Interactive Graph Clustering Algorithm on Multicore CPUs" (ICDE 2017) —
// together with the weighted-graph substrate, the batch competitors it is
// evaluated against (SCAN, SCAN-B, SCAN++, pSCAN) and the paper's benchmark
// suite.
//
// # Quick start
//
//	g, _, err := anyscan.LoadEdgeListFile("graph.txt", anyscan.LoadOptions{Remap: true})
//	if err != nil { ... }
//	res, metrics, err := anyscan.Cluster(g, anyscan.DefaultOptions())
//	for v := 0; v < res.N(); v++ {
//		fmt.Println(v, res.Roles[v], res.Labels[v])
//	}
//
// # Anytime / interactive use
//
//	c, err := anyscan.New(g, opts)
//	for c.Step() {            // one block of work at a time
//		snap := c.Snapshot()  // best-so-far clustering, inspect freely
//		if goodEnough(snap) {
//			break             // or just stop calling Step: the run is suspended
//		}
//	}
//
// Clustering semantics follow the paper: given μ and ε, a vertex is a core
// when at least μ vertices of its closed neighborhood (itself included) have
// weighted structural similarity ≥ ε to it; clusters are the maximal sets of
// density-connected vertices; non-core cluster members are borders; the rest
// are hubs (touching several clusters) or outliers. Run to completion,
// anySCAN yields exactly the SCAN clustering (shared borders are assigned to
// one of their qualifying clusters, as in SCAN).
package anyscan

import (
	"context"
	"io"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/eval"
	"anyscan/internal/graph"
	"anyscan/internal/scan"
	"anyscan/internal/simeval"
)

// Graph is a weighted undirected graph in flat CSR form; build one with a
// Builder, a generator from the gen tooling, or the edge-list loaders.
type Graph = graph.CSR

// GraphView is the read interface every graph storage backend satisfies:
// the flat *Graph and the varint-compressed *CompressedGraph (possibly
// mmap-backed from a .csrz file). Every clustering entry point that only
// reads adjacency takes a GraphView; pass either backend.
type GraphView = graph.Graph

// CompressedGraph is the varint-delta compressed CSR backend: 2-4x smaller
// than the flat form, read-only, and mmap-backed when opened from a .csrz
// file so graphs larger than RAM can be served. Build one with CompressGraph
// or open one with OpenCompressedGraphFile / LoadGraph.
type CompressedGraph = graph.CompressedCSR

// Builder accumulates edges and produces an immutable Graph.
type Builder = graph.Builder

// LoadOptions configures edge-list parsing.
type LoadOptions = graph.LoadOptions

// Stats summarizes a graph (|V|, |E|, average degree, clustering coefficient).
type Stats = graph.Stats

// Result is a clustering: per-vertex roles and cluster labels.
type Result = cluster.Result

// Role classifies a vertex (core, border, hub, outlier).
type Role = cluster.Role

// Roles.
const (
	RoleUnclassified = cluster.Unclassified
	RoleOutlier      = cluster.Outlier
	RoleHub          = cluster.Hub
	RoleBorder       = cluster.Border
	RoleCore         = cluster.Core
)

// NoLabel marks vertices outside every cluster.
const NoLabel = cluster.NoLabel

// Options configures an anySCAN run (μ, ε, block sizes α/β, threads, seed,
// similarity optimizations).
type Options = core.Options

// SimOptions toggles the Section III-D similarity optimizations.
type SimOptions = simeval.Options

// Clusterer is a suspendable/resumable anySCAN run.
type Clusterer = core.Clusterer

// Metrics reports the work performed by an anySCAN run.
type Metrics = core.Metrics

// BatchMetrics reports the work performed by one of the batch algorithms.
type BatchMetrics = scan.Metrics

// Phase identifies an anySCAN stage (summarize, strong-merge, weak-merge,
// borders, done).
type Phase = core.Phase

// Progress describes where an anytime run stands.
type Progress = core.Progress

// DefaultOptions returns the paper's defaults: μ=5, ε=0.5, α=β=8192, all
// optimizations enabled, GOMAXPROCS workers.
func DefaultOptions() Options { return core.DefaultOptions() }

// New prepares an anytime anySCAN run over g.
func New(g *Graph, opt Options) (*Clusterer, error) { return core.New(g, opt) }

// Cluster runs anySCAN to completion and returns the final clustering.
func Cluster(g *Graph, opt Options) (*Result, Metrics, error) { return core.Cluster(g, opt) }

// Run drives a fresh anySCAN run under ctx; if ctx is canceled the partial
// best-so-far result is returned along with the context error.
func Run(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	c, err := core.New(g, opt)
	if err != nil {
		return nil, err
	}
	return c.Run(ctx)
}

// Query is one (μ, ε) clustering request, the parameter pair shared by
// every exact algorithm here: μ is the minimum closed-neighborhood size of
// a core, ε the similarity threshold. Threads is honored by the parallel
// algorithms only (0 = GOMAXPROCS).
type Query = scan.Query

// Algorithm names one of the exact batch clustering algorithms Batch
// dispatches over.
type Algorithm = scan.Algorithm

// The batch algorithms.
const (
	AlgoSCAN         = scan.AlgoSCAN         // original SCAN (Xu et al., KDD 2007)
	AlgoSCANB        = scan.AlgoSCANB        // SCAN + Section III-D optimizations
	AlgoSCANPP       = scan.AlgoSCANPP       // SCAN++ (Shiokawa et al., PVLDB 2015)
	AlgoPSCAN        = scan.AlgoPSCAN        // pSCAN (Chang et al., ICDE 2016)
	AlgoParallelSCAN = scan.AlgoParallelSCAN // naive parallel SCAN
)

// Algorithms returns the batch algorithms in their canonical order.
func Algorithms() []Algorithm { return scan.Algorithms() }

// ParseAlgorithm resolves a user-supplied algorithm name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return scan.ParseAlgorithm(s) }

// Batch runs one exact batch algorithm on g at the query's (μ, ε). All
// algorithms produce equivalent clusterings (identical cores, core
// partition, and noise); they differ only in how much similarity work they
// spend. For repeated queries on one graph, build a query Index instead.
// Any backend works; SCAN++ and pSCAN materialize a compressed g internally.
func Batch(g GraphView, algo Algorithm, q Query) (*Result, BatchMetrics, error) {
	return scan.Batch(g, algo, q)
}

// SCAN runs the original SCAN algorithm (Xu et al., KDD 2007), generalized
// to weighted graphs. Exact but evaluates 2|E| similarities.
//
// Deprecated: use Batch(g, AlgoSCAN, Query{Mu: mu, Eps: eps}).
func SCAN(g GraphView, mu int, eps float64) (*Result, BatchMetrics) { return scan.SCAN(g, mu, eps) }

// SCANB runs SCAN-B: SCAN plus the Lemma-5 pruning and early-exit
// optimizations (Section III-D of the paper).
//
// Deprecated: use Batch(g, AlgoSCANB, Query{Mu: mu, Eps: eps}).
func SCANB(g GraphView, mu int, eps float64) (*Result, BatchMetrics) { return scan.SCANB(g, mu, eps) }

// PSCAN runs pSCAN (Chang et al., ICDE 2016), the strongest exact
// sequential competitor.
//
// Deprecated: use Batch(g, AlgoPSCAN, Query{Mu: mu, Eps: eps}).
func PSCAN(g *Graph, mu int, eps float64) (*Result, BatchMetrics) { return scan.PSCAN(g, mu, eps) }

// SCANPP runs SCAN++ (Shiokawa et al., PVLDB 2015).
//
// Deprecated: use Batch(g, AlgoSCANPP, Query{Mu: mu, Eps: eps}).
func SCANPP(g *Graph, mu int, eps float64) (*Result, BatchMetrics) { return scan.SCANPP(g, mu, eps) }

// ParallelSCAN runs the naive parallelization of SCAN: all-edge similarity
// evaluation in parallel, sequential label propagation. Exact, but not
// work-efficient (always |E| evaluations' worth of work).
//
// Deprecated: use Batch(g, AlgoParallelSCAN, Query{Mu: mu, Eps: eps,
// Threads: threads}).
func ParallelSCAN(g GraphView, mu int, eps float64, threads int) (*Result, BatchMetrics) {
	return scan.ParallelSCAN(g, mu, eps, threads)
}

// ApproxSCAN runs a LinkSCAN*-style sampled approximation of SCAN: each
// vertex evaluates σ on roughly a rho fraction of its edges and coreness is
// estimated from the sampled hit rate. Fast but unrefinable — contrast with
// the anytime Clusterer, whose intermediate results converge to exactness.
func ApproxSCAN(g *Graph, mu int, eps, rho float64, seed int64) (*Result, BatchMetrics) {
	return scan.ApproxSCAN(g, mu, eps, rho, seed)
}

// Reference computes the clustering by the literal Definitions 2–5; slow,
// for validation.
func Reference(g *Graph, mu int, eps float64) *Result { return cluster.Reference(g, mu, eps) }

// Validate checks that res is a correct SCAN clustering of g under (μ, ε).
func Validate(g *Graph, mu int, eps float64, res *Result) error {
	return cluster.Validate(g, mu, eps, res)
}

// NMI returns the normalized mutual information between two clusterings
// (noise treated as one special cluster), the quality measure of the
// paper's anytime experiments.
func NMI(a, b *Result) float64 { return eval.NMI(a, b) }

// ARI returns the Adjusted Rand Index between two clusterings.
func ARI(a, b *Result) float64 { return eval.ARI(a, b) }

// Modularity returns the Newman weighted modularity Q of a clustering of g
// (noise as singletons) — a ground-truth-free quality score, handy for
// picking ε during interactive exploration.
func Modularity(g *Graph, r *Result) float64 { return eval.Modularity(g, r) }

// ComputeStats returns exact graph statistics.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// FromEdges builds a graph from (u, v, w) triples.
func FromEdges(n int, edges [][3]float64) (*Graph, error) { return graph.FromEdges(n, edges) }

// FromUnweightedEdges builds a weight-1 graph from (u, v) pairs.
func FromUnweightedEdges(n int, edges [][2]int32) (*Graph, error) {
	return graph.FromUnweightedEdges(n, edges)
}

// LoadEdgeListFile parses a SNAP-style edge-list file ("u v" or "u v w" per
// line, '#' comments). With Remap set, arbitrary ids are compacted and the
// original id of each dense vertex is returned.
func LoadEdgeListFile(path string, opts LoadOptions) (*Graph, []int64, error) {
	return graph.LoadEdgeListFile(path, opts)
}

// LoadMETIS parses a graph in METIS/Chaco format (with optional edge
// weights).
func LoadMETIS(r io.Reader) (*Graph, error) { return graph.LoadMETIS(r) }

// ReadBinary deserializes a graph written with Graph.WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// LoadGraph loads a graph choosing the backend and format from the file
// extension: ".csrz" → the compressed container, opened mmap-backed (the
// returned GraphView is a *CompressedGraph and the file must outlive it);
// ".metis"/".graph" → METIS; ".bin" → the compact binary container; anything
// else → whitespace edge list (with id remapping; the returned id slice is
// non-nil only in that case). Use MaterializeGraph when a flat *Graph is
// required afterwards.
func LoadGraph(path string) (GraphView, []int64, error) {
	return graph.LoadAny(path)
}

// CompressGraph encodes g into the compressed backend (varint byte-delta
// neighbor lists; weights dropped entirely when all are 1). The result
// yields byte-identical clusterings to g on every entry point that takes a
// GraphView.
func CompressGraph(g *Graph) *CompressedGraph { return graph.Compress(g) }

// MaterializeGraph converts any backend to a flat *Graph: a *Graph is
// returned as-is, a *CompressedGraph is decompressed. Needed for the
// mutation APIs and the arc-indexed batch algorithms (SCAN++, pSCAN).
func MaterializeGraph(g GraphView) *Graph { return graph.Materialize(g) }

// OpenCompressedGraphFile opens a .csrz container written with
// WriteCompressedGraphFile, mmap-backed: adjacency stays on disk and pages
// in on demand, so graphs larger than RAM can be queried. With verifyCRC the
// whole payload is checksummed up front (one sequential read of the file).
func OpenCompressedGraphFile(path string, verifyCRC bool) (*CompressedGraph, error) {
	return graph.OpenCompressedFile(path, graph.CompressedOpenOptions{VerifyCRC: verifyCRC})
}

// WriteCompressedGraphFile compresses g and writes it to path atomically as
// a framed, CRC-checked .csrz container.
func WriteCompressedGraphFile(g *Graph, path string) error {
	return graph.Compress(g).WriteCompressedFile(path)
}

// LoadGraphFile loads a flat graph choosing the format from the file
// extension (".metis"/".graph", ".bin", or edge list; a ".csrz" container is
// decompressed to flat form).
//
// Deprecated: use LoadGraph, which keeps .csrz containers mmap-backed
// instead of decompressing them.
func LoadGraphFile(path string) (*Graph, []int64, error) {
	return graph.LoadFile(path)
}

// LoadCheckpoint reconstructs a suspended anytime run over g from a
// checkpoint written with Clusterer.SaveCheckpoint; the resumed run
// continues exactly where it stopped, in this process or another. The
// framed checkpoint container (magic, version, length, CRC-32) rejects
// truncated or bit-corrupted files, and all loaded index arrays are
// bounds-checked against g before the run is reconstructed.
func LoadCheckpoint(g *Graph, r io.Reader) (*Clusterer, error) {
	return core.LoadCheckpoint(g, r)
}

// LoadCheckpointFile opens path and reconstructs the suspended run over g;
// the file-writing counterpart is Clusterer.SaveCheckpointFile, which
// publishes checkpoints atomically (temp file + fsync + rename) so a crash
// mid-save never destroys the previous checkpoint.
func LoadCheckpointFile(g *Graph, path string) (*Clusterer, error) {
	return core.LoadCheckpointFile(g, path)
}

// WriteAssignments writes a clustering as "vertex cluster role" lines.
func WriteAssignments(w io.Writer, r *Result) error { return cluster.WriteAssignments(w, r) }

// ReadAssignments parses a clustering written by WriteAssignments.
func ReadAssignments(r io.Reader) (*Result, error) { return cluster.ReadAssignments(r) }

// InducedSubgraph returns the subgraph induced by the given vertices plus
// the original id of each new vertex.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, []int32, error) {
	return graph.InducedSubgraph(g, vertices)
}

// LargestComponent returns the induced subgraph of g's largest connected
// component (a common preprocessing step before clustering).
func LargestComponent(g *Graph) (*Graph, []int32, error) {
	return graph.LargestComponent(g)
}

// RelabelByDegree returns an isomorphic copy of g with vertices renumbered
// in non-increasing degree order plus the permutation perm[old] = new. The
// layout improves similarity-join locality on skewed graphs; map labels back
// through perm to report results in the original numbering.
func RelabelByDegree(g *Graph) (*Graph, []int32) { return graph.RelabelByDegree(g) }
