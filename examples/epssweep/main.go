// Epssweep: interactive ε exploration. SCAN-family clusterings are very
// sensitive to ε, and the right value is rarely known in advance. This
// example builds an Explorer — one pass that evaluates each edge similarity
// exactly once — and then inspects the clustering landscape across the whole
// ε range for free, picking the threshold with the cleanest structure.
//
//	go run ./examples/epssweep
package main

import (
	"fmt"
	"log"
	"time"

	"anyscan"
)

func main() {
	cfg := anyscan.DefaultLFR(15000, 20, 5)
	cfg.Mixing = 0.3
	g, _, err := anyscan.GenerateLFR(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := anyscan.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, d̄=%.1f\n", s.Vertices, s.Edges, s.AvgDegree)

	const mu = 4
	start := time.Now()
	ex, err := anyscan.NewExplorer(g, mu, 0)
	if err != nil {
		log.Fatal(err)
	}
	build := time.Since(start)
	fmt.Printf("explorer built in %v (every σ evaluated once)\n\n", build.Round(time.Millisecond))

	// Sweep the whole ε range: each query replays thresholds, no σ work.
	fmt.Println("   ε    clusters   cores  borders    hubs  outliers   quality    query-time")
	var eps []float64
	for i := 4; i <= 16; i++ {
		eps = append(eps, float64(i)*0.05)
	}
	type row struct {
		eps        float64
		clusters   int
		modularity float64
	}
	var best row
	for _, e := range eps {
		qStart := time.Now()
		res := ex.ClusteringAt(e)
		q := time.Since(qStart)
		c := res.RoleCounts()
		mod := anyscan.Modularity(g, res)
		fmt.Printf("  %.2f  %8d  %6d  %7d  %6d  %8d   Q=%.3f  %v\n",
			e, res.NumClusters, c.Cores, c.Borders, c.Hubs, c.Outliers, mod, q.Round(time.Microsecond))
		// Pick the threshold with the best modularity — a principled,
		// ground-truth-free criterion.
		if mod > best.modularity {
			best = row{e, res.NumClusters, mod}
		}
	}

	fmt.Printf("\npicked ε=%.2f by modularity (%d clusters, Q=%.3f)\n", best.eps, best.clusters, best.modularity)

	// Confirm by clustering at the chosen ε with anySCAN itself.
	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = mu, best.eps
	opts.Alpha, opts.Beta = 512, 512
	res, _, err := anyscan.Cluster(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anySCAN at ε=%.2f agrees: NMI=%.4f vs the explorer's clustering\n",
		best.eps, anyscan.NMI(res, ex.ClusteringAt(best.eps)))
}
