// Weighted: structural clustering on a weighted graph (Definition 1 of the
// paper generalizes SCAN's similarity to edge weights). We model a
// co-interaction network where tie strength matters, cluster it at several
// ε thresholds, and show how weights change the story relative to ignoring
// them.
//
//	go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"anyscan"
)

func main() {
	// An LFR community graph whose intra-community ties get uniform random
	// strengths — interactions within a community vary in intensity.
	cfg := anyscan.DefaultLFR(12000, 24, 11)
	cfg.Weights = anyscan.WeightConfig{Mode: anyscan.WeightUniform, Min: 0.5, Max: 1.5}
	weighted, _, err := anyscan.GenerateLFR(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The same topology with all weights forced to 1 (classic SCAN input).
	unweighted := stripWeights(weighted)

	s := anyscan.ComputeStats(weighted)
	fmt.Printf("co-interaction network: %d vertices, %d weighted ties, d̄=%.1f\n\n",
		s.Vertices, s.Edges, s.AvgDegree)

	fmt.Println("ε sweep (μ=4): how the similarity threshold shapes the result")
	fmt.Println("    ε   weighted-clusters  weighted-noise   unit-clusters  unit-noise   NMI(w,u)")
	for _, eps := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
		opts := anyscan.DefaultOptions()
		opts.Mu, opts.Eps = 4, eps

		wres, _, err := anyscan.Cluster(weighted, opts)
		if err != nil {
			log.Fatal(err)
		}
		ures, _, err := anyscan.Cluster(unweighted, opts)
		if err != nil {
			log.Fatal(err)
		}
		wc, uc := wres.RoleCounts(), ures.RoleCounts()
		fmt.Printf("  %.1f   %17d  %14d  %14d  %10d   %8.3f\n",
			eps, wres.NumClusters, wc.Noise(), ures.NumClusters, uc.Noise(),
			anyscan.NMI(wres, ures))
	}

	fmt.Println("\nwith weights, weakly-tied vertices drop below ε sooner: the")
	fmt.Println("weighted clustering is stricter about low-intensity relationships")
	fmt.Println("while the unweighted one sees only the topology.")
}

// stripWeights rebuilds the graph with unit weights.
func stripWeights(g *anyscan.Graph) *anyscan.Graph {
	var b anyscan.Builder
	b.SetNumVertices(g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		adj, _ := g.Neighbors(v)
		for _, q := range adj {
			if v < q {
				b.AddEdgeUnweighted(v, q)
			}
		}
	}
	out, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return out
}
