// Streaming: maintain a SCAN clustering while the graph changes — the
// dynamic social network scenario. New friendships arrive, old ones decay
// and disappear, and after every batch the exact clustering is available
// without re-running a batch algorithm: each edge mutation re-evaluates only
// the similarities around its two endpoints.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"anyscan"
)

func main() {
	// Start from a community graph...
	cfg := anyscan.DefaultLFR(8000, 16, 99)
	g, _, err := anyscan.GenerateLFR(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const mu, eps = 4, 0.4
	m, err := anyscan.NewMaintainerFromGraph(g, mu, eps)
	if err != nil {
		log.Fatal(err)
	}
	res := m.Result()
	fmt.Printf("t=0: %d vertices, %d edges, %d communities\n",
		m.NumVertices(), m.NumEdges(), res.NumClusters)

	// ...then stream batches of churn: 70% new ties (biased to close
	// triangles, as real social ties are), 30% dropped ties.
	rng := rand.New(rand.NewSource(7))
	n := int32(m.NumVertices())
	for batch := 1; batch <= 5; batch++ {
		start := time.Now()
		before := m.SimEvals
		const batchSize = 2000
		for i := 0; i < batchSize; i++ {
			if rng.Float64() < 0.7 {
				u := rng.Int31n(n)
				if m.Degree(u) == 0 {
					m.AddEdge(u, rng.Int31n(n), 1)
					continue
				}
				// Triadic closure: connect u to a neighbor's neighbor.
				m.AddEdge(u, n2hop(m, u, rng), 1)
			} else {
				u := rng.Int31n(n)
				v := rng.Int31n(n)
				m.RemoveEdge(u, v)
			}
		}
		maintain := time.Since(start)

		qStart := time.Now()
		res = m.Result()
		q := time.Since(qStart)
		c := res.RoleCounts()
		fmt.Printf("t=%d: %7d edges | %4d communities, %5d cores, %5d noise | "+
			"%d σ re-evals, maintain %v + query %v\n",
			batch, m.NumEdges(), res.NumClusters, c.Cores, c.Noise(),
			m.SimEvals-before, maintain.Round(time.Millisecond), q.Round(time.Millisecond))
	}

	// Compare against clustering the final graph from scratch.
	final, err := m.ToCSR()
	if err != nil {
		log.Fatal(err)
	}
	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = mu, eps
	opts.Alpha, opts.Beta = 512, 512
	start := time.Now()
	batchRes, _, err := anyscan.Cluster(final, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfrom-scratch anySCAN on the final graph: %v (NMI vs maintained: %.4f)\n",
		time.Since(start).Round(time.Millisecond), anyscan.NMI(batchRes, res))
}

// n2hop picks a random two-hop target from u (or a random vertex).
func n2hop(m *anyscan.Maintainer, u int32, rng *rand.Rand) int32 {
	// Walk two random steps using EdgeWeight probes on random vertices is
	// expensive; instead sample a random neighbor index via degree walks.
	v := walk(m, u, rng)
	w := walk(m, v, rng)
	if w == u || w < 0 {
		return rng.Int31n(int32(m.NumVertices()))
	}
	return w
}

// walk returns a uniformly random neighbor of u (or u itself if isolated).
func walk(m *anyscan.Maintainer, u int32, rng *rand.Rand) int32 {
	d := m.Degree(u)
	if d == 0 {
		return u
	}
	return m.NeighborAt(u, rng.Intn(d))
}
