// Quickstart: cluster a small social network with anySCAN and print the
// communities, hubs and outliers it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anyscan"
)

func main() {
	// Zachary's karate club: 34 members, 78 friendship ties. The club
	// famously split into two factions — structural clustering finds them.
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
		{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
		{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
		{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
		{3, 7}, {3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10}, {5, 16},
		{6, 16}, {8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33},
		{15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
		{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
		{24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33},
		{28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32},
		{31, 33}, {32, 33},
	}
	g, err := anyscan.FromUnweightedEdges(34, edges)
	if err != nil {
		log.Fatal(err)
	}

	opts := anyscan.DefaultOptions()
	opts.Mu = 3    // a core needs ≥3 similar vertices in its closed neighborhood
	opts.Eps = 0.5 // structural similarity threshold

	res, metrics, err := anyscan.Cluster(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d clusters with %d similarity evaluations\n\n",
		res.NumClusters, metrics.Sim.Sims)
	for l := int32(0); l < int32(res.NumClusters); l++ {
		fmt.Printf("cluster %d: %v\n", l, res.Members(l))
	}
	fmt.Println()
	for v := 0; v < res.N(); v++ {
		if res.Roles[v] == anyscan.RoleHub {
			fmt.Printf("hub:     member %d connects several communities\n", v)
		}
		if res.Roles[v] == anyscan.RoleOutlier {
			fmt.Printf("outlier: member %d belongs to no community\n", v)
		}
	}
}
