// Interactive: the anytime property of anySCAN on a graph too large for
// instant answers. The run is suspended after every block to inspect the
// best-so-far clustering; once the intermediate result stops changing
// materially, we stop early and compare what we got against the exact
// result — the paper's "suppress, examine, resume" workflow (Section IV-A).
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"math"

	"anyscan"
)

func main() {
	// A 30k-vertex LFR community graph (the paper's Table II workload).
	cfg := anyscan.DefaultLFR(30000, 30, 42)
	g, truth, err := anyscan.GenerateLFR(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := anyscan.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, d̄=%.1f, %d planted communities\n\n",
		s.Vertices, s.Edges, s.AvgDegree, int(maxOf(truth))+1)

	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = 4, 0.4
	opts.Alpha, opts.Beta = 2048, 2048

	c, err := anyscan.New(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("iter  phase         clusters  cores  elapsed(ms)   (suspended for inspection after each row)")
	var early *anyscan.Result
	prevClusters := -1
	stable := 0
	iter := 0
	for c.Step() {
		iter++
		if iter%2 != 0 {
			continue
		}
		snap := c.Snapshot() // the run is suspended while we look around
		counts := snap.RoleCounts()
		fmt.Printf("%4d  %-12s  %8d  %5d  %10.1f\n",
			iter, c.Phase(), snap.NumClusters, counts.Cores,
			float64(c.Metrics().Elapsed.Microseconds())/1000)
		if snap.NumClusters == prevClusters {
			stable++
		} else {
			stable = 0
			prevClusters = snap.NumClusters
		}
		if early == nil && stable >= 3 {
			// The cluster structure has stabilized: a user under time
			// pressure would stop here and keep this result.
			early = snap
			fmt.Printf("      ^ intermediate result looks converged — saving it, then running on to the exact answer\n")
		}
	}
	final := c.Snapshot()
	m := c.Metrics()
	fmt.Printf("\nexact result: %d clusters after %.1f ms (%d similarity evals)\n",
		final.NumClusters, float64(m.Elapsed.Microseconds())/1000, m.Sim.Sims)

	if early != nil {
		fmt.Printf("early-stop result would have scored NMI=%.3f against the exact clustering\n",
			anyscan.NMI(early, final))
	}
	fmt.Printf("exact clustering vs planted LFR communities: NMI=%.3f\n",
		nmiAgainstTruth(final, truth))
}

// nmiAgainstTruth scores a result against the planted community labels.
func nmiAgainstTruth(res *anyscan.Result, truth []int32) float64 {
	ground := &anyscan.Result{
		Roles:  make([]anyscan.Role, len(truth)),
		Labels: truth,
	}
	k := int(maxOf(truth)) + 1
	ground.NumClusters = k
	for i := range ground.Roles {
		ground.Roles[i] = anyscan.RoleBorder
	}
	return anyscan.NMI(res, ground)
}

func maxOf(xs []int32) int32 {
	m := int32(math.MinInt32)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
