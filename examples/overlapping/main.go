// Overlapping: communities that share members. SCAN partitions vertices, so
// a person active in two circles becomes at best a "hub" between them. The
// link-space transformation (LinkSCAN, from the paper's related work)
// clusters *relationships* instead, so the person simply belongs to both.
//
//	go run ./examples/overlapping
package main

import (
	"fmt"
	"log"

	"anyscan"
)

func main() {
	// A social graph of overlapping circles: some people sit in several.
	g := anyscan.GenerateSocialCircles(anyscan.SocialCirclesConfig{
		N:             3000,
		Regions:       8,
		CrossP:        0.12,
		CirclesPerV:   2.6,
		CircleSize:    30,
		CircleSizeJit: 12,
		IntraP:        0.7,
		Seed:          21,
	})
	s := anyscan.ComputeStats(g)
	fmt.Printf("graph: %d people, %d ties, d̄=%.1f\n\n", s.Vertices, s.Edges, s.AvgDegree)

	// Vertex partitioning: one community per person, bridges become hubs.
	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = 4, 0.5
	opts.Alpha, opts.Beta = 256, 256
	part, _, err := anyscan.Cluster(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	pc := part.RoleCounts()
	fmt.Printf("vertex partitioning (anySCAN): %d communities, %d hubs bridging them\n",
		part.NumClusters, pc.Hubs)

	// Link communities: people can belong to several.
	ov, err := anyscan.OverlappingCommunities(g, anyscan.OverlapOptions{Mu: 4, Eps: 0.55})
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int]int{}
	maxDeg, maxV := 0, int32(-1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		d := ov.OverlapDegree(v)
		hist[d]++
		if d > maxDeg {
			maxDeg, maxV = d, v
		}
	}
	fmt.Printf("link communities: %d communities\n", ov.NumCommunities)
	fmt.Println("membership-count histogram (how many communities a person is in):")
	for d := 0; d <= maxDeg; d++ {
		if hist[d] > 0 {
			fmt.Printf("  %d communities: %5d people\n", d, hist[d])
		}
	}
	if maxV >= 0 {
		fmt.Printf("\nbusiest person: %d, member of communities %v\n", maxV, ov.Memberships[maxV])
	}
}
