// Community: detect friend circles, social hubs and outliers in an
// ego-network-like graph (the paper's introduction scenario: "finding
// communities of people in social networks"), and compare anySCAN's cost
// against the exact batch competitors on the same input.
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"anyscan"
)

func main() {
	g := anyscan.GenerateSocialCircles(anyscan.SocialCirclesConfig{
		N:             8000,
		CirclesPerV:   3.2,
		CircleSize:    40,
		CircleSizeJit: 20,
		IntraP:        0.7,
		Seed:          7,
	})
	s := anyscan.ComputeStats(g)
	fmt.Printf("social graph: %d people, %d ties, d̄=%.1f, clustering %.3f\n\n",
		s.Vertices, s.Edges, s.AvgDegree, s.AvgCC)

	opts := anyscan.DefaultOptions()
	opts.Mu, opts.Eps = 5, 0.55
	// The paper's default block size (8192) is tuned to million-vertex
	// graphs; on 8k vertices it would summarize everything in one block and
	// forfeit the work savings. Keep blocks at a few percent of |V|.
	opts.Alpha, opts.Beta = 256, 256

	start := time.Now()
	res, metrics, err := anyscan.Cluster(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	anyTime := time.Since(start)

	counts := res.RoleCounts()
	fmt.Printf("anySCAN: %d communities in %v\n", res.NumClusters, anyTime.Round(time.Millisecond))
	fmt.Printf("  %d cores, %d borders, %d hubs, %d outliers\n",
		counts.Cores, counts.Borders, counts.Hubs, counts.Outliers)

	sizes := res.ClusterSizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := sizes
	if len(top) > 8 {
		top = top[:8]
	}
	fmt.Printf("  largest communities: %v\n\n", top)

	// Hubs are the people bridging several communities — often the most
	// interesting vertices for social analysis.
	hubs := 0
	for v := 0; v < res.N() && hubs < 5; v++ {
		if res.Roles[v] == anyscan.RoleHub {
			fmt.Printf("  hub example: person %d (touches several communities)\n", v)
			hubs++
		}
	}

	fmt.Println("\nexact batch competitors on the same graph:")
	for _, algo := range anyscan.Algorithms() {
		other, m, err := anyscan.Batch(g, algo, anyscan.Query{Mu: opts.Mu, Eps: opts.Eps})
		if err != nil {
			panic(err)
		}
		agreement := anyscan.NMI(res, other)
		fmt.Printf("  %-8s %8v  %9d sims  (NMI vs anySCAN: %.4f)\n",
			algo, m.Elapsed.Round(time.Millisecond), m.Sim.Sims, agreement)
	}
	fmt.Printf("  %-7s %8v  %9d sims\n", "anySCAN", anyTime.Round(time.Millisecond), metrics.Sim.Sims)
}
