package anyscan

import "anyscan/internal/sweep"

// Explorer answers "what is the clustering at ε?" for any number of ε
// values after a single pass that evaluates every edge similarity exactly
// once — the interactive parameter-exploration companion to anySCAN (see
// the SCOT/HintClus discussion in the paper's related work).
type Explorer = sweep.Explorer

// SweepProfile summarizes the clustering at one ε during an exploration.
type SweepProfile = sweep.Profile

// NewExplorer prepares an ε-exploration structure for (g, μ) using the
// given number of workers (0 = GOMAXPROCS).
func NewExplorer(g GraphView, mu int, threads int) (*Explorer, error) {
	return sweep.NewExplorer(g, mu, threads)
}

// ExplorerFromIndex derives a μ-fixed Explorer from a query Index without a
// second similarity pass: the index already holds every per-arc activation
// threshold, so the dendrogram/profile APIs come almost for free once an
// Index exists for the graph.
func ExplorerFromIndex(x *Index, mu int) (*Explorer, error) {
	return sweep.FromIndex(x, mu)
}
