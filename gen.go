package anyscan

import "anyscan/internal/gen"

// Synthetic graph generators, re-exported for examples, tools and tests.
// All are deterministic for a given seed.

// WeightConfig selects how generated edges are weighted.
type WeightConfig = gen.WeightConfig

// Weight modes for WeightConfig.
const (
	WeightUnit    = gen.WeightUnit
	WeightUniform = gen.WeightUniform
)

// LFRConfig parameterizes the LFR community benchmark generator.
type LFRConfig = gen.LFRConfig

// SocialCirclesConfig parameterizes the overlapping-circles ego-network
// generator.
type SocialCirclesConfig = gen.SocialCirclesConfig

// DefaultLFR returns an LFR configuration with the Table II profile.
func DefaultLFR(n int, avgDegree float64, seed int64) LFRConfig {
	return gen.DefaultLFR(n, avgDegree, seed)
}

// GenerateLFR builds an LFR benchmark graph and its ground-truth communities.
func GenerateLFR(cfg LFRConfig) (*Graph, []int32, error) { return gen.LFR(cfg) }

// GenerateSocialCircles builds an ego-network-like graph of overlapping
// dense circles.
func GenerateSocialCircles(cfg SocialCirclesConfig) *Graph { return gen.SocialCircles(cfg) }

// GenerateErdosRenyi builds G(n, m).
func GenerateErdosRenyi(n int, m int64, wc WeightConfig, seed int64) *Graph {
	return gen.ErdosRenyi(n, m, wc, seed)
}

// GenerateHolmeKim builds a power-law-cluster graph: preferential attachment
// with triad formation probability pt controlling the clustering
// coefficient.
func GenerateHolmeKim(n, m int, pt float64, wc WeightConfig, seed int64) *Graph {
	return gen.HolmeKim(n, m, pt, wc, seed)
}

// GenerateRMAT builds a recursive-matrix (Kronecker-like) graph with
// 2^scale vertices and ~m edges.
func GenerateRMAT(scale int, m int64, a, b, c float64, wc WeightConfig, seed int64) *Graph {
	return gen.RMAT(scale, m, a, b, c, wc, seed)
}

// GeneratePlantedPartition builds k equal communities with intra/inter edge
// probabilities pIn and pOut.
func GeneratePlantedPartition(n, k int, pIn, pOut float64, wc WeightConfig, seed int64) *Graph {
	return gen.PlantedPartition(n, k, pIn, pOut, wc, seed)
}
