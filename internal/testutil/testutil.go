// Package testutil provides deterministic test fixtures shared by the test
// suites: small hand-built graphs with known clusterings and families of
// seeded random graphs covering the regimes that stress structural
// clustering (sparse, dense, clustered, power-law, weighted).
package testutil

import (
	"fmt"

	"anyscan/internal/gen"
	"anyscan/internal/graph"
)

// Karate returns Zachary's karate club graph (34 vertices, 78 edges), a
// standard community-detection fixture.
func Karate() *graph.CSR {
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 10},
		{0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
		{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
		{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
		{3, 7}, {3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10}, {5, 16},
		{6, 16}, {8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33},
		{15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
		{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
		{24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33},
		{28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32},
		{31, 33}, {32, 33},
	}
	g, err := graph.FromUnweightedEdges(34, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// TwoTriangles returns the 8-vertex fixture from many SCAN expositions: two
// triangles {0,1,2} and {4,5,6} joined through bridge vertices 3 and 7.
func TwoTriangles() *graph.CSR {
	edges := [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, // triangle A
		{4, 5}, {4, 6}, {5, 6}, // triangle B
		{2, 3}, {3, 4}, // bridge path A-3-B
		{1, 7}, {7, 5}, // bridge path A-7-B
	}
	g, err := graph.FromUnweightedEdges(8, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomCase is one deterministic random test graph.
type RandomCase struct {
	Name string
	G    *graph.CSR
	Mu   int
	Eps  float64
}

// RandomCases returns a battery of seeded random graphs crossed with (μ, ε)
// settings, covering sparse/dense, clustered/unclustered, unit/uniform
// weights. count scales the battery size (graphs repeat with fresh seeds).
func RandomCases(count int) []RandomCase {
	unit := gen.WeightConfig{}
	wts := gen.WeightConfig{Mode: gen.WeightUniform, Min: 0.5, Max: 1.5}
	type family struct {
		name string
		make func(seed int64) *graph.CSR
	}
	families := []family{
		{"er-sparse", func(s int64) *graph.CSR { return gen.ErdosRenyi(300, 900, unit, s) }},
		{"er-dense", func(s int64) *graph.CSR { return gen.ErdosRenyi(150, 2200, unit, s) }},
		{"er-weighted", func(s int64) *graph.CSR { return gen.ErdosRenyi(250, 1200, wts, s) }},
		{"planted", func(s int64) *graph.CSR { return gen.PlantedPartition(200, 5, 0.3, 0.01, unit, s) }},
		{"planted-weighted", func(s int64) *graph.CSR { return gen.PlantedPartition(200, 4, 0.25, 0.02, wts, s) }},
		{"holme-kim", func(s int64) *graph.CSR { return gen.HolmeKim(400, 4, 0.6, unit, s) }},
		{"barabasi", func(s int64) *graph.CSR { return gen.BarabasiAlbert(400, 3, unit, s) }},
		{"rmat", func(s int64) *graph.CSR { return gen.RMAT(9, 2500, 0.45, 0.2, 0.2, wts, s) }},
	}
	params := []struct {
		mu  int
		eps float64
	}{
		{2, 0.3}, {5, 0.5}, {5, 0.7}, {3, 0.4}, {8, 0.6},
	}
	var cases []RandomCase
	for r := 0; r < count; r++ {
		for fi, f := range families {
			seed := int64(1000*r + 17*fi + 1)
			g := f.make(seed)
			p := params[(r+fi)%len(params)]
			cases = append(cases, RandomCase{
				Name: fmt.Sprintf("%s/seed=%d/mu=%d/eps=%.2f", f.name, seed, p.mu, p.eps),
				G:    g,
				Mu:   p.mu,
				Eps:  p.eps,
			})
		}
	}
	return cases
}
