package scan

import (
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/eval"
	"anyscan/internal/graph"
	"anyscan/internal/testutil"
)

// algorithms under test, all of which must be exact.
var algorithms = []struct {
	name string
	run  func(g *graph.CSR, mu int, eps float64) (*cluster.Result, Metrics)
}{
	{"SCAN", func(g *graph.CSR, mu int, eps float64) (*cluster.Result, Metrics) { return SCAN(g, mu, eps) }},
	{"SCAN-B", func(g *graph.CSR, mu int, eps float64) (*cluster.Result, Metrics) { return SCANB(g, mu, eps) }},
	{"pSCAN", PSCAN},
	{"SCAN++", SCANPP},
}

func TestAlgorithmsMatchReferenceOnFixtures(t *testing.T) {
	fixtures := []struct {
		name string
		g    *graph.CSR
		mu   int
		eps  float64
	}{
		{"two-triangles", testutil.TwoTriangles(), 3, 0.6},
		{"karate-mu2", testutil.Karate(), 2, 0.5},
		{"karate-mu3", testutil.Karate(), 3, 0.6},
		{"karate-mu5", testutil.Karate(), 5, 0.4},
	}
	for _, f := range fixtures {
		for _, a := range algorithms {
			t.Run(f.name+"/"+a.name, func(t *testing.T) {
				res, _ := a.run(f.g, f.mu, f.eps)
				if err := cluster.Validate(f.g, f.mu, f.eps, res); err != nil {
					t.Fatalf("%s invalid on %s: %v", a.name, f.name, err)
				}
			})
		}
	}
}

func TestAlgorithmsMatchReferenceOnRandomGraphs(t *testing.T) {
	count := 2
	if testing.Short() {
		count = 1
	}
	for _, tc := range testutil.RandomCases(count) {
		for _, a := range algorithms {
			res, _ := a.run(tc.G, tc.Mu, tc.Eps)
			if err := cluster.Validate(tc.G, tc.Mu, tc.Eps, res); err != nil {
				t.Fatalf("%s invalid on %s: %v", a.name, tc.Name, err)
			}
		}
	}
}

func TestAlgorithmsAgreePairwise(t *testing.T) {
	for _, tc := range testutil.RandomCases(1) {
		base, _ := SCAN(tc.G, tc.Mu, tc.Eps)
		for _, a := range algorithms[1:] {
			res, _ := a.run(tc.G, tc.Mu, tc.Eps)
			if err := cluster.Equivalent(base, res); err != nil {
				t.Fatalf("%s disagrees with SCAN on %s: %v", a.name, tc.Name, err)
			}
		}
	}
}

func TestTwoTrianglesKnownClustering(t *testing.T) {
	g := testutil.TwoTriangles()
	// With μ=3, ε=0.6: each triangle's vertices are cores (σ within a
	// triangle is high), the two bridge vertices 3 and 7 have degree 2 and
	// low similarity to both sides.
	res, m := SCAN(g, 3, 0.6)
	if res.NumClusters != 2 {
		t.Fatalf("want 2 clusters, got %d", res.NumClusters)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[1] != res.Labels[2] {
		t.Errorf("triangle A split: labels %v", res.Labels[:3])
	}
	if res.Labels[4] != res.Labels[5] || res.Labels[5] != res.Labels[6] {
		t.Errorf("triangle B split: labels %v", res.Labels[4:7])
	}
	if res.Labels[0] == res.Labels[4] {
		t.Errorf("triangles merged")
	}
	if m.Sim.Sims == 0 {
		t.Errorf("no similarity evaluations recorded")
	}
}

func TestHubDetection(t *testing.T) {
	g := testutil.TwoTriangles()
	res, _ := SCAN(g, 3, 0.6)
	// Vertices 3 and 7 bridge the two clusters: they are noise and their
	// neighbors lie in two different clusters, so they are hubs.
	for _, v := range []int32{3, 7} {
		if !res.Roles[v].IsNoise() {
			t.Fatalf("vertex %d: want noise, got %v", v, res.Roles[v])
		}
		if res.Roles[v] != cluster.Hub {
			t.Errorf("vertex %d: want hub, got %v", v, res.Roles[v])
		}
	}
}

func TestWorkOrdering(t *testing.T) {
	// pSCAN must not do more similarity evaluations than SCAN; SCAN must
	// evaluate each arc exactly once per side (2|E| total since every
	// vertex is range-queried exactly once).
	for _, tc := range testutil.RandomCases(1)[:4] {
		_, mScan := SCAN(tc.G, tc.Mu, tc.Eps)
		_, mPscan := PSCAN(tc.G, tc.Mu, tc.Eps)
		if want := tc.G.NumArcs(); mScan.Sim.Sims != want {
			t.Errorf("%s: SCAN sims = %d, want %d", tc.Name, mScan.Sim.Sims, want)
		}
		pscanWork := mPscan.Sim.Sims + mPscan.Sim.Pruned
		if pscanWork > mScan.Sim.Sims {
			t.Errorf("%s: pSCAN work %d exceeds SCAN %d", tc.Name, pscanWork, mScan.Sim.Sims)
		}
	}
}

func TestIdealEvaluatesEveryEdge(t *testing.T) {
	g := testutil.Karate()
	for _, threads := range []int{1, 2, 4} {
		m := Ideal(g, 0.5, threads)
		if m.Sim.Sims != g.NumEdges() {
			t.Errorf("threads=%d: sims = %d, want %d", threads, m.Sim.Sims, g.NumEdges())
		}
	}
}

func TestParallelSCANMatchesReference(t *testing.T) {
	for _, tc := range testutil.RandomCases(1) {
		for _, threads := range []int{1, 4} {
			res, m := ParallelSCAN(tc.G, tc.Mu, tc.Eps, threads)
			if err := cluster.Validate(tc.G, tc.Mu, tc.Eps, res); err != nil {
				t.Fatalf("%s threads=%d: %v", tc.Name, threads, err)
			}
			// One evaluation (or prune) per undirected edge, regardless of
			// thread count.
			if work := m.Sim.Sims + m.Sim.Pruned; work != tc.G.NumEdges() {
				t.Fatalf("%s: work %d != |E| %d", tc.Name, work, tc.G.NumEdges())
			}
		}
	}
}

func TestApproxSCANQualityImprovesWithBudget(t *testing.T) {
	tc := testutil.RandomCases(1)[3] // planted partition: clear structure
	truth, _ := SCAN(tc.G, tc.Mu, tc.Eps)
	low, _ := ApproxSCAN(tc.G, tc.Mu, tc.Eps, 0.15, 1)
	high, _ := ApproxSCAN(tc.G, tc.Mu, tc.Eps, 1.0, 1)
	nmiLow := eval.NMI(low, truth)
	nmiHigh := eval.NMI(high, truth)
	if nmiHigh < nmiLow-0.05 {
		t.Fatalf("quality fell with budget: rho=0.15 → %v, rho=1.0 → %v", nmiLow, nmiHigh)
	}
	if nmiHigh < 0.9 {
		t.Fatalf("full-budget sampling NMI = %v, want ≥0.9", nmiHigh)
	}
	// Approximate results must still be structurally sound (valid labels).
	for v := 0; v < low.N(); v++ {
		if low.Roles[v].IsNoise() && low.Labels[v] != cluster.NoLabel {
			t.Fatalf("noise vertex %d labeled", v)
		}
	}
}

func TestApproxSCANDeterministicPerSeed(t *testing.T) {
	tc := testutil.RandomCases(1)[0]
	a, _ := ApproxSCAN(tc.G, tc.Mu, tc.Eps, 0.5, 42)
	b, _ := ApproxSCAN(tc.G, tc.Mu, tc.Eps, 0.5, 42)
	for v := 0; v < a.N(); v++ {
		if a.Labels[v] != b.Labels[v] || a.Roles[v] != b.Roles[v] {
			t.Fatalf("same seed diverged at vertex %d", v)
		}
	}
}
