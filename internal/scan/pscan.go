package scan

import (
	"sort"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// PSCAN runs pSCAN (Chang et al., ICDE 2016), the paper's strongest exact
// sequential competitor. It maintains, per vertex, a similar-degree lower
// bound sd (confirmed similar neighbors, including self) and an effective-
// degree upper bound ed (sd plus unresolved neighbors), shares every σ
// evaluation between both endpoints through a per-edge memo, checks cores in
// non-increasing degree order with early termination, clusters cores first
// through a disjoint-set, and only then attaches non-core members.
func PSCAN(g *graph.CSR, mu int, eps float64) (*cluster.Result, Metrics) {
	start := time.Now()
	n := g.NumVertices()
	eng := simeval.New(g, eps, simeval.AllOptimizations)
	rev := g.ReverseEdgeIndex()

	sd := make([]int32, n) // similar-degree lower bound, incl. self
	ed := make([]int32, n) // effective-degree upper bound, incl. self
	for v := 0; v < n; v++ {
		sd[v] = 1
		ed[v] = int32(g.Degree(int32(v))) + 1
	}
	memo := make([]simeval.MemoState, g.NumArcs())

	// resolve evaluates σ for arc e = u→v (if unknown) and updates the
	// sd/ed bounds of both endpoints. Returns whether σ(u,v) ≥ ε.
	resolve := func(u int32, e int64) bool {
		switch memo[e] {
		case simeval.Similar:
			eng.C.Shared.Add(1)
			return true
		case simeval.Dissimilar:
			eng.C.Shared.Add(1)
			return false
		}
		v, w := g.Arc(e)
		ok := eng.SimilarEdge(u, v, w)
		if ok {
			memo[e], memo[rev[e]] = simeval.Similar, simeval.Similar
			sd[u]++
			sd[v]++
		} else {
			memo[e], memo[rev[e]] = simeval.Dissimilar, simeval.Dissimilar
			ed[u]--
			ed[v]--
		}
		return ok
	}

	// checkCore resolves arcs of u until its coreness is decided.
	checkCore := func(u int32) bool {
		if sd[u] >= int32(mu) {
			return true
		}
		if ed[u] < int32(mu) {
			return false
		}
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			if memo[e] != simeval.Unknown {
				continue
			}
			resolve(u, e)
			if sd[u] >= int32(mu) {
				return true
			}
			if ed[u] < int32(mu) {
				return false
			}
		}
		return sd[u] >= int32(mu)
	}

	// The lock-free structure is driven sequentially here (pSCAN is the
	// paper's sequential competitor); union-by-min with path halving matches
	// the rank-based forest's complexity on this workload, and sharing one
	// structure keeps the merge-phase instrumentation uniform.
	ds := unionfind.NewConcurrent(n)

	// Phase 1: discover cores in non-increasing degree order and union
	// adjacent similar cores. An edge whose second endpoint's coreness is
	// still unknown is deferred: the later endpoint performs the union.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})

	coreKnown := make([]int8, n) // 0 unknown, 1 core, 2 non-core
	for _, u := range order {
		if coreKnown[u] == 0 {
			if checkCore(u) {
				coreKnown[u] = 1
			} else {
				coreKnown[u] = 2
			}
		}
		if coreKnown[u] != 1 {
			continue
		}
		// ClusterCore(u): try to union u with core neighbors.
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			if ed[v] < int32(mu) && coreKnown[v] != 1 {
				continue // v can no longer be a core
			}
			if coreKnown[v] == 1 && ds.Connected(u, v) {
				continue // already same cluster: skip the evaluation
			}
			if !resolve(u, e) {
				continue
			}
			// σ(u,v) ≥ ε. Union only when v is a *known* core; otherwise
			// defer to v's own turn (σ is memoized, so no recomputation).
			if coreKnown[v] == 0 && sd[v] >= int32(mu) {
				coreKnown[v] = 1
			}
			if coreKnown[v] == 1 {
				ds.Union(u, v)
			}
		}
	}

	// Phase 2: attach non-core members to the cluster of a similar core.
	labels := make([]int32, n)
	isCore := make([]bool, n)
	for i := range labels {
		labels[i] = unclassified
	}
	for v := int32(0); v < int32(n); v++ {
		if coreKnown[v] == 1 {
			isCore[v] = true
			labels[v] = ds.Find(v)
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if !isCore[u] {
			continue
		}
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			if isCore[v] || labels[v] != unclassified {
				continue // cores handled; first border assignment wins
			}
			if resolve(u, e) {
				labels[v] = labels[u]
			}
		}
	}

	res := buildResult(g, labels, isCore)
	m := Metrics{
		Sim:     eng.C.Snapshot(),
		Unions:  ds.Unions(),
		Finds:   ds.Finds(),
		Elapsed: time.Since(start),
	}
	return res, m
}
