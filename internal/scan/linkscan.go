package scan

import (
	"math"
	"math/rand"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// ApproxSCAN is an edge-sampling approximation of SCAN in the spirit of
// LinkSCAN* (Lim et al., ICDE 2014), the approximate competitor the paper's
// related-work section contrasts anySCAN against: each vertex evaluates σ
// on only a ρ fraction of its incident edges (at least minSample, at most
// its degree) and estimates its ε-neighborhood size by scaling the sampled
// hit rate. Clusters are built from the sampled similar core-core edges.
//
// The result approximates SCAN — unlike anySCAN's intermediate results it
// cannot be refined to exactness, which is precisely the contrast the
// paper draws ("it only approximates the result of SCAN", Section V). Use
// rho=1 for exact (then it degenerates to SCAN-B's work profile).
func ApproxSCAN(g *graph.CSR, mu int, eps, rho float64, seed int64) (*cluster.Result, Metrics) {
	start := time.Now()
	if rho <= 0 {
		rho = 0.01
	}
	if rho > 1 {
		rho = 1
	}
	const minSample = 4
	n := g.NumVertices()
	eng := simeval.New(g, eps, simeval.AllOptimizations)
	rng := rand.New(rand.NewSource(seed))

	// Per-vertex sampled similarity testing. similarHit records sampled
	// arcs found similar so cluster building reuses them without paying
	// for the evaluation twice.
	similarHit := make([]bool, g.NumArcs())
	estCore := make([]bool, n)
	scratch := make([]int64, 0, 256)
	for v := int32(0); v < int32(n); v++ {
		lo, hi := g.NeighborRange(v)
		d := int(hi - lo)
		if d+1 < mu {
			continue
		}
		k := int(math.Ceil(rho * float64(d)))
		if k < minSample {
			k = minSample
		}
		if k > d {
			k = d
		}
		// Sample k arcs without replacement (partial Fisher-Yates).
		scratch = scratch[:0]
		for e := lo; e < hi; e++ {
			scratch = append(scratch, e)
		}
		hits := 0
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(scratch)-i)
			scratch[i], scratch[j] = scratch[j], scratch[i]
			arc := scratch[i]
			q, w := g.Arc(arc)
			if eng.SimilarEdge(v, q, w) {
				similarHit[arc] = true
				hits++
			}
		}
		est := float64(hits) / float64(k) * float64(d)
		estCore[v] = est+1 >= float64(mu)
	}

	// Cluster: union sampled similar edges between estimated cores.
	ds := unionfind.New(n)
	for v := int32(0); v < int32(n); v++ {
		if !estCore[v] {
			continue
		}
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, _ := g.Arc(e)
			if similarHit[e] && estCore[q] {
				ds.Union(v, q)
			}
		}
	}
	labels := make([]int32, n)
	isCore := make([]bool, n)
	for i := range labels {
		labels[i] = unclassified
	}
	for v := int32(0); v < int32(n); v++ {
		if estCore[v] {
			isCore[v] = true
			labels[v] = ds.Find(v)
		}
	}
	// Borders from sampled similar arcs only (no extra evaluations).
	for v := int32(0); v < int32(n); v++ {
		if !isCore[v] {
			continue
		}
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, _ := g.Arc(e)
			if similarHit[e] && !isCore[q] && labels[q] == unclassified {
				labels[q] = labels[v]
			}
		}
	}

	res := buildResult(g, labels, isCore)
	m := Metrics{
		Sim:     eng.C.Snapshot(),
		Unions:  ds.Unions(),
		Finds:   ds.Finds(),
		Elapsed: time.Since(start),
	}
	return res, m
}
