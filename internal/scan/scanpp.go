package scan

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// SCANPP runs SCAN++ (Shiokawa et al., PVLDB 2015). It selects *pivots* by
// expanding to directly two-hop-away vertices (DTAR), performs a full
// ε-neighborhood query per pivot, and lets non-pivot vertices reuse the
// similarities already evaluated from the pivot side ("similarity sharing",
// the Shared counter) before finishing their core checks. Local clusters
// around pivots are then merged through bridge vertices.
//
// As the paper observes (Fig. 6/7 discussion), SCAN++ computes full
// neighborhood queries for its pivots without early termination, so with
// small ε or μ its true-similarity count approaches SCAN's while paying the
// extra DTAR maintenance overhead.
func SCANPP(g *graph.CSR, mu int, eps float64) (*cluster.Result, Metrics) {
	start := time.Now()
	n := g.NumVertices()
	eng := simeval.New(g, eps, simeval.Options{}) // SCAN++ has no Lemma-5 pruning
	rev := g.ReverseEdgeIndex()

	memo := make([]simeval.MemoState, g.NumArcs())
	sd := make([]int32, n)
	ed := make([]int32, n)
	for v := 0; v < n; v++ {
		sd[v] = 1
		ed[v] = int32(g.Degree(int32(v))) + 1
	}

	// evaluate resolves arc e = u→v, updating both endpoints' bounds.
	evaluate := func(u int32, e int64) bool {
		v, w := g.Arc(e)
		ok := eng.SimilarEdge(u, v, w)
		if ok {
			memo[e], memo[rev[e]] = simeval.Similar, simeval.Similar
			sd[u]++
			sd[v]++
		} else {
			memo[e], memo[rev[e]] = simeval.Dissimilar, simeval.Dissimilar
			ed[u]--
			ed[v]--
		}
		return ok
	}

	// Phase 1: pivot expansion. Pivots get full range queries; two-hop-away
	// unvisited vertices of core pivots join the pivot frontier.
	isPivot := make([]bool, n)
	visited := make([]bool, n) // enqueued as pivot or processed
	coreKnown := make([]int8, n)
	var frontier []int32
	inNbr := make([]bool, n) // scratch: marks N(u) while expanding DTAR

	processPivot := func(u int32) {
		isPivot[u] = true
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			if memo[e] == simeval.Unknown {
				evaluate(u, e)
			} else {
				eng.C.Shared.Add(1)
			}
		}
		if sd[u] >= int32(mu) {
			coreKnown[u] = 1
		} else {
			coreKnown[u] = 2
		}
		if coreKnown[u] != 1 {
			return
		}
		// DTAR expansion: enqueue unvisited vertices exactly two hops away
		// through similar neighbors.
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			inNbr[v] = true
		}
		for e := lo; e < hi; e++ {
			if memo[e] != simeval.Similar {
				continue
			}
			v, _ := g.Arc(e)
			vAdj, _ := g.Neighbors(v)
			for _, w := range vAdj {
				if w != u && !visited[w] && !inNbr[w] {
					visited[w] = true
					frontier = append(frontier, w)
				}
			}
		}
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			inNbr[v] = false
		}
	}

	for v := int32(0); v < int32(n); v++ {
		if visited[v] {
			continue
		}
		visited[v] = true
		frontier = append(frontier[:0], v)
		for len(frontier) > 0 {
			u := frontier[0]
			frontier = frontier[1:]
			processPivot(u)
		}
	}

	// Phase 2: finish core checks for non-pivot vertices, reusing shared
	// similarities; a vertex whose bounds already decide coreness costs
	// nothing beyond the memo lookups counted as Shared.
	for u := int32(0); u < int32(n); u++ {
		if coreKnown[u] != 0 {
			continue
		}
		if sd[u] >= int32(mu) {
			coreKnown[u] = 1
			continue
		}
		if ed[u] < int32(mu) {
			coreKnown[u] = 2
			continue
		}
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi && sd[u] < int32(mu) && ed[u] >= int32(mu); e++ {
			if memo[e] == simeval.Unknown {
				evaluate(u, e)
			} else {
				eng.C.Shared.Add(1)
			}
		}
		if sd[u] >= int32(mu) {
			coreKnown[u] = 1
		} else {
			coreKnown[u] = 2
		}
	}

	// Phase 3: merge local clusters — union every similar core-core edge,
	// skipping pairs already connected.
	ds := unionfind.New(n)
	for u := int32(0); u < int32(n); u++ {
		if coreKnown[u] != 1 {
			continue
		}
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			if coreKnown[v] != 1 || v < u {
				continue
			}
			if ds.Connected(u, v) {
				continue
			}
			similar := false
			switch memo[e] {
			case simeval.Similar:
				eng.C.Shared.Add(1)
				similar = true
			case simeval.Dissimilar:
				eng.C.Shared.Add(1)
			default:
				similar = evaluate(u, e)
			}
			if similar {
				ds.Union(u, v)
			}
		}
	}

	// Phase 4: attach borders.
	labels := make([]int32, n)
	isCore := make([]bool, n)
	for i := range labels {
		labels[i] = unclassified
	}
	for v := int32(0); v < int32(n); v++ {
		if coreKnown[v] == 1 {
			isCore[v] = true
			labels[v] = ds.Find(v)
		}
	}
	for u := int32(0); u < int32(n); u++ {
		if !isCore[u] {
			continue
		}
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			if isCore[v] || labels[v] != unclassified {
				continue
			}
			similar := false
			switch memo[e] {
			case simeval.Similar:
				eng.C.Shared.Add(1)
				similar = true
			case simeval.Dissimilar:
				eng.C.Shared.Add(1)
			default:
				similar = evaluate(u, e)
			}
			if similar {
				labels[v] = labels[u]
			}
		}
	}

	res := buildResult(g, labels, isCore)
	m := Metrics{
		Sim:     eng.C.Snapshot(),
		Unions:  ds.Unions(),
		Finds:   ds.Finds(),
		Elapsed: time.Since(start),
	}
	return res, m
}
