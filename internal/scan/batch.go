package scan

import (
	"fmt"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
)

// Query is one (μ, ε) clustering request — the parameter pair every SCAN
// algorithm in this repository takes. Threads is honored by the parallel
// algorithms only (0 = GOMAXPROCS).
type Query struct {
	Mu      int
	Eps     float64
	Threads int
}

// Validate rejects parameter pairs no SCAN variant accepts.
func (q Query) Validate() error {
	if q.Mu < 1 {
		return fmt.Errorf("anyscan: mu must be >= 1, got %d", q.Mu)
	}
	if !(q.Eps > 0 && q.Eps <= 1) {
		return fmt.Errorf("anyscan: eps must be in (0,1], got %v", q.Eps)
	}
	if q.Threads < 0 {
		return fmt.Errorf("anyscan: threads must be >= 0, got %d", q.Threads)
	}
	return nil
}

// Algorithm names one of the exact batch clustering algorithms.
type Algorithm string

// The exact batch algorithms Batch dispatches over.
const (
	AlgoSCAN         Algorithm = "scan"     // original SCAN (Xu et al., KDD 2007)
	AlgoSCANB        Algorithm = "scanb"    // SCAN + Section III-D optimizations
	AlgoSCANPP       Algorithm = "scanpp"   // SCAN++ (Shiokawa et al., PVLDB 2015)
	AlgoPSCAN        Algorithm = "pscan"    // pSCAN (Chang et al., ICDE 2016)
	AlgoParallelSCAN Algorithm = "parallel" // naive parallel SCAN
)

// Algorithms returns the batch algorithms in their canonical order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoSCAN, AlgoSCANB, AlgoSCANPP, AlgoPSCAN, AlgoParallelSCAN}
}

// ParseAlgorithm resolves a user-supplied algorithm name (as used by the
// CLI, the HTTP API, and the benchmark runner) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if s == string(a) {
			return a, nil
		}
	}
	return "", fmt.Errorf("anyscan: unknown algorithm %q (have %v)", s, Algorithms())
}

// Batch runs one exact batch algorithm on g at the query's (μ, ε) and
// returns the clustering plus work metrics. All five algorithms produce
// equivalent clusterings (identical cores, core partition, and noise); they
// differ only in how much similarity work they spend getting there.
//
// SCAN, SCAN-B and the naive parallel SCAN run on any graph.Graph backend
// directly. SCAN++ and pSCAN need arc-indexed memo tables and the reverse
// edge index, so a compressed graph is materialized to a flat CSR for them
// (free when g already is one).
func Batch(g graph.Graph, algo Algorithm, q Query) (*cluster.Result, Metrics, error) {
	if err := q.Validate(); err != nil {
		return nil, Metrics{}, err
	}
	switch algo {
	case AlgoSCAN:
		res, m := SCAN(g, q.Mu, q.Eps)
		return res, m, nil
	case AlgoSCANB:
		res, m := SCANB(g, q.Mu, q.Eps)
		return res, m, nil
	case AlgoSCANPP:
		res, m := SCANPP(graph.Materialize(g), q.Mu, q.Eps)
		return res, m, nil
	case AlgoPSCAN:
		res, m := PSCAN(graph.Materialize(g), q.Mu, q.Eps)
		return res, m, nil
	case AlgoParallelSCAN:
		res, m := ParallelSCAN(g, q.Mu, q.Eps, q.Threads)
		return res, m, nil
	}
	return nil, Metrics{}, fmt.Errorf("anyscan: unknown algorithm %q (have %v)", algo, Algorithms())
}
