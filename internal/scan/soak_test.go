package scan

import (
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/datasets"
	"anyscan/internal/eval"
	"anyscan/internal/mapreduce"
)

// TestSoakAllAlgorithmsAgreeAtScale runs every exact algorithm on real-size
// dataset stand-ins (tens of thousands of vertices) and requires pairwise
// agreement — the integration-level check that all the per-module
// correctness results compose. Skipped with -short.
func TestSoakAllAlgorithmsAgreeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, name := range []string{"GR02L", "GR03L"} {
		g, err := datasets.Load(name, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []struct {
			mu  int
			eps float64
		}{{5, 0.5}, {3, 0.65}} {
			base, _ := SCAN(g, p.mu, p.eps)
			check := func(alg string, res *cluster.Result) {
				t.Helper()
				if err := cluster.Equivalent(base, res); err != nil {
					t.Fatalf("%s/%s mu=%d eps=%v: %v", name, alg, p.mu, p.eps, err)
				}
				if nmi := eval.NMI(base, res); nmi < 0.99 {
					t.Fatalf("%s/%s: NMI vs SCAN = %v", name, alg, nmi)
				}
			}
			r, _ := SCANB(g, p.mu, p.eps)
			check("SCAN-B", r)
			r, _ = PSCAN(g, p.mu, p.eps)
			check("pSCAN", r)
			r, _ = SCANPP(g, p.mu, p.eps)
			check("SCAN++", r)
			r, _ = ParallelSCAN(g, p.mu, p.eps, 4)
			check("ParallelSCAN", r)
			mr, _, _ := mapreduce.PSCANMR(g, p.mu, p.eps, 4)
			check("PSCAN-MR", mr)

			o := core.DefaultOptions()
			o.Mu, o.Eps = p.mu, p.eps
			o.Alpha, o.Beta = 256, 256
			o.Threads = 4
			// Equivalent demands exact core/border roles; spend the extra
			// checks to resolve the coreness anySCAN is allowed to skip.
			o.ResolveRoles = true
			any, _, err := core.Cluster(g, o)
			if err != nil {
				t.Fatal(err)
			}
			check("anySCAN", any)

			o.EdgeMemo = true
			anyMemo, _, err := core.Cluster(g, o)
			if err != nil {
				t.Fatal(err)
			}
			check("anySCAN+memo", anyMemo)
		}
	}
}
