package scan

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// ParallelSCAN is the naive parallelization of SCAN the paper argues
// against (Section V): evaluate every edge similarity in parallel — that
// part scales perfectly — then run the label propagation sequentially over
// the precomputed similar-edge set. It is exact, and its similarity work is
// always the full 2|E| evaluations' worth (each edge once thanks to the
// precomputed table), so unlike anySCAN it is not work-efficient: even with
// perfect scaling of the similarity phase it cannot beat a work-efficient
// sequential algorithm until the thread count exceeds the work ratio.
func ParallelSCAN(g graph.Graph, mu int, eps float64, threads int) (*cluster.Result, Metrics) {
	start := time.Now()
	n := g.NumVertices()
	eng := simeval.New(g, eps, simeval.AllOptimizations)

	// Phase 1 (parallel): one σ per undirected edge, through the per-worker
	// engines (sharded counters, degree-adaptive kernels). Canonical slots
	// (v < q) are decided here; mirrors are filled by one PropagateMirrors
	// pass, which works on every backend without a reverse-edge index.
	similar := make([]bool, g.NumArcs())
	par.ForWorker(n, threads, par.Adaptive, func(w, i int) {
		we := eng.ForWorker(w)
		v := int32(i)
		lo, _ := g.NeighborRange(v)
		g.EachNeighbor(v, func(j int, q int32, wt float32) bool {
			if v < q {
				similar[lo+int64(j)] = we.SimilarEdge(v, q, wt)
			}
			return true
		})
	})
	graph.PropagateMirrors(g, similar)

	// Phase 2 (parallel): core flags from similar-degree counts.
	isCore := make([]bool, n)
	par.For(n, threads, par.Adaptive, func(i int) {
		v := int32(i)
		lo, hi := g.NeighborRange(v)
		cnt := 1
		for e := lo; e < hi; e++ {
			if similar[e] {
				cnt++
			}
		}
		isCore[v] = cnt >= mu
	})

	// Phase 3 (parallel): label propagation — the part the paper calls
	// "highly sequential" for SCAN-family algorithms. The lock-free
	// union-find lets workers merge core-core edges concurrently; the
	// resulting partition (hence the canonicalized result) is independent of
	// the union order.
	ds := unionfind.NewConcurrent(n)
	par.For(n, threads, par.Adaptive, func(i int) {
		v := int32(i)
		if !isCore[v] {
			return
		}
		lo, _ := g.NeighborRange(v)
		g.EachNeighbor(v, func(j int, q int32, _ float32) bool {
			if similar[lo+int64(j)] && q > v && isCore[q] {
				ds.Union(v, q)
			}
			return true
		})
	})
	labels := make([]int32, n)
	par.For(n, threads, par.Adaptive, func(i int) {
		if isCore[i] {
			labels[i] = ds.Find(int32(i))
		} else {
			labels[i] = unclassified
		}
	})
	// Border attachment reads only core labels, which the previous barrier
	// finalized; each border picks its first similar core neighbor in arc
	// order, so the choice is deterministic.
	par.For(n, threads, par.Adaptive, func(i int) {
		v := int32(i)
		if isCore[v] || labels[v] != unclassified {
			return
		}
		lo, _ := g.NeighborRange(v)
		g.EachNeighbor(v, func(j int, q int32, _ float32) bool {
			if similar[lo+int64(j)] && isCore[q] {
				labels[v] = labels[q]
				return false
			}
			return true
		})
	})

	res := buildResult(g, labels, isCore)
	m := Metrics{
		Sim:     eng.C.Snapshot(),
		Unions:  ds.Unions(),
		Finds:   ds.Finds(),
		Elapsed: time.Since(start),
	}
	return res, m
}
