package scan

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// ParallelSCAN is the naive parallelization of SCAN the paper argues
// against (Section V): evaluate every edge similarity in parallel — that
// part scales perfectly — then run the label propagation sequentially over
// the precomputed similar-edge set. It is exact, and its similarity work is
// always the full 2|E| evaluations' worth (each edge once thanks to the
// precomputed table), so unlike anySCAN it is not work-efficient: even with
// perfect scaling of the similarity phase it cannot beat a work-efficient
// sequential algorithm until the thread count exceeds the work ratio.
func ParallelSCAN(g *graph.CSR, mu int, eps float64, threads int) (*cluster.Result, Metrics) {
	start := time.Now()
	n := g.NumVertices()
	eng := simeval.New(g, eps, simeval.AllOptimizations)
	rev := g.ReverseEdgeIndex()

	// Phase 1 (parallel): one σ per undirected edge.
	similar := make([]bool, g.NumArcs())
	par.For(n, threads, 16, func(i int) {
		v := int32(i)
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, w := g.Arc(e)
			if v < q {
				ok := eng.SimilarEdge(v, q, w)
				similar[e] = ok
				similar[rev[e]] = ok
			}
		}
	})

	// Phase 2 (parallel): core flags from similar-degree counts.
	isCore := make([]bool, n)
	par.For(n, threads, 64, func(i int) {
		v := int32(i)
		lo, hi := g.NeighborRange(v)
		cnt := 1
		for e := lo; e < hi; e++ {
			if similar[e] {
				cnt++
			}
		}
		isCore[v] = cnt >= mu
	})

	// Phase 3 (sequential): label propagation, the part the paper calls
	// "highly sequential" for SCAN-family algorithms.
	ds := unionfind.New(n)
	for v := int32(0); v < int32(n); v++ {
		if !isCore[v] {
			continue
		}
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, _ := g.Arc(e)
			if similar[e] && q > v && isCore[q] {
				ds.Union(v, q)
			}
		}
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = unclassified
	}
	for v := int32(0); v < int32(n); v++ {
		if isCore[v] {
			labels[v] = ds.Find(v)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if isCore[v] || labels[v] != unclassified {
			continue
		}
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, _ := g.Arc(e)
			if similar[e] && isCore[q] {
				labels[v] = labels[q]
				break
			}
		}
	}

	res := buildResult(g, labels, isCore)
	m := Metrics{
		Sim:     eng.C.Snapshot(),
		Unions:  ds.Unions(),
		Finds:   ds.Finds(),
		Elapsed: time.Since(start),
	}
	return res, m
}
