package scan

import (
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
)

// Ideal runs the paper's "ideal parallel algorithm" (Fig. 11): it evaluates
// the structural similarity of every edge of G — the dominant cost of SCAN —
// with no optimizations, no label propagation and no synchronization beyond
// the final barrier, so its scalability is the best any parallel SCAN
// variant could hope for. It returns only work metrics; it does not cluster.
func Ideal(g graph.Graph, eps float64, threads int) Metrics {
	start := time.Now()
	eng := simeval.New(g, eps, simeval.Options{})
	n := g.NumVertices()
	// One similarity per undirected edge, processed from the smaller
	// endpoint; vertices are the parallel units (dynamic scheduling), as the
	// neighborhood sizes vary wildly.
	par.For(n, threads, 16, func(i int) {
		v := int32(i)
		g.EachNeighbor(v, func(_ int, q int32, w float32) bool {
			if v < q {
				eng.SimilarEdge(v, q, w)
			}
			return true
		})
	})
	return Metrics{Sim: eng.C.Snapshot(), Elapsed: time.Since(start)}
}
