// Package scan implements the exact batch competitors evaluated in
// Section IV of the paper: the original SCAN (Xu et al., KDD'07), SCAN-B
// (SCAN plus the Section III-D pruning optimizations), pSCAN (Chang et al.,
// ICDE'16) and SCAN++ (Shiokawa et al., VLDB'15), all generalized to
// weighted graphs exactly like anySCAN, plus the "ideal" embarrassingly
// parallel similarity evaluator used as the scalability yardstick of
// Fig. 11. All algorithms produce the same clustering (modulo shared-border
// assignment) and report comparable work metrics.
package scan

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
)

// Metrics reports the work an algorithm performed, in the units the paper
// plots: structural similarity evaluations (Fig. 7), disjoint-set operations
// (Fig. 12) and wall-clock time.
type Metrics struct {
	Sim     simeval.CounterValues
	Unions  int64
	Finds   int64
	Elapsed time.Duration
}

const unclassified = int32(-2)

// SCAN runs the original SCAN algorithm: BFS cluster expansion with a full
// ε-neighborhood query per visited vertex and no similarity pruning. Its
// similarity count is Σ_v deg(v) = 2|E|, the paper's baseline workload.
func SCAN(g graph.Graph, mu int, eps float64) (*cluster.Result, Metrics) {
	return scanImpl(g, mu, eps, simeval.Options{})
}

// SCANB runs SCAN-B: the SCAN control flow with the Lemma 5 upper-bound
// prune and merge-join early exits enabled (Section III-D / Section IV-A).
func SCANB(g graph.Graph, mu int, eps float64) (*cluster.Result, Metrics) {
	return scanImpl(g, mu, eps, simeval.AllOptimizations)
}

func scanImpl(g graph.Graph, mu int, eps float64, opt simeval.Options) (*cluster.Result, Metrics) {
	start := time.Now()
	n := g.NumVertices()
	eng := simeval.New(g, eps, opt)

	labels := make([]int32, n)
	for i := range labels {
		labels[i] = unclassified
	}
	isCore := make([]bool, n)

	var queue []int32
	var epsBuf []int32 // scratch: similar neighbors of the current vertex

	// epsNeighbors fills epsBuf with v's similar neighbors and returns the
	// closed ε-neighborhood size (|N^ε[v]| including v itself).
	epsNeighbors := func(v int32) int {
		epsBuf = epsBuf[:0]
		g.EachNeighbor(v, func(_ int, q int32, w float32) bool {
			if eng.SimilarEdge(v, q, w) {
				epsBuf = append(epsBuf, q)
			}
			return true
		})
		return len(epsBuf) + 1
	}

	nextCluster := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if labels[v] != unclassified {
			continue
		}
		if epsNeighbors(v) < mu {
			labels[v] = cluster.NoLabel // noise for now; may become border later
			continue
		}
		// v is a core: start a new cluster and expand.
		cid := nextCluster
		nextCluster++
		isCore[v] = true
		labels[v] = cid
		queue = queue[:0]
		for _, q := range epsBuf {
			if labels[q] == unclassified {
				labels[q] = cid
				queue = append(queue, q)
			} else if labels[q] == cluster.NoLabel {
				labels[q] = cid // former noise becomes border
			}
		}
		for len(queue) > 0 {
			y := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if epsNeighbors(y) < mu {
				continue // y is a border of cid
			}
			isCore[y] = true
			for _, x := range epsBuf {
				switch labels[x] {
				case unclassified:
					labels[x] = cid
					queue = append(queue, x)
				case cluster.NoLabel:
					labels[x] = cid
				}
			}
		}
	}

	res := buildResult(g, labels, isCore)
	m := Metrics{Sim: eng.C.Snapshot(), Elapsed: time.Since(start)}
	return res, m
}

// buildResult converts raw labels + core flags into a canonical Result with
// noise classified into hubs and outliers.
func buildResult(g graph.Graph, labels []int32, isCore []bool) *cluster.Result {
	res := cluster.NewResult(len(labels))
	for v := range labels {
		l := labels[v]
		if l == unclassified {
			l = cluster.NoLabel
		}
		res.Labels[v] = l
		switch {
		case isCore[v]:
			res.Roles[v] = cluster.Core
		case l != cluster.NoLabel:
			res.Roles[v] = cluster.Border
		}
	}
	cluster.ClassifyNoise(g, res)
	res.Canonicalize()
	return res
}
