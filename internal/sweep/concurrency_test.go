package sweep

import (
	"reflect"
	"sync"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/gen"
)

// TestExplorerConcurrentQueries hammers one shared Explorer with parallel
// queries of every kind and asserts each answer is identical to the serial
// baseline. Run under -race this is the concurrency audit for the anyscand
// explorer cache: an Explorer must be safe for concurrent readers because
// the server hands the same instance to every in-flight request.
func TestExplorerConcurrentQueries(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 12, 7))
	if err != nil {
		t.Fatalf("generating graph: %v", err)
	}
	const mu = 4
	ex, err := NewExplorer(g, mu, 4)
	if err != nil {
		t.Fatalf("NewExplorer: %v", err)
	}

	epsValues := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	baseline := make(map[float64]*cluster.Result, len(epsValues))
	for _, eps := range epsValues {
		baseline[eps] = ex.ClusteringAt(eps)
	}
	baseProfiles := ex.SweepProfile(epsValues)
	baseDendro := ex.Dendrogram()
	baseThr := ex.InterestingThresholds(64)

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				eps := epsValues[(w+r)%len(epsValues)]
				got := ex.ClusteringAt(eps)
				want := baseline[eps]
				if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.Roles, want.Roles) {
					errs <- "ClusteringAt diverged under concurrency"
					return
				}
				switch (w + r) % 3 {
				case 0:
					if !reflect.DeepEqual(ex.SweepProfile(epsValues), baseProfiles) {
						errs <- "SweepProfile diverged under concurrency"
						return
					}
				case 1:
					if !reflect.DeepEqual(ex.Dendrogram(), baseDendro) {
						errs <- "Dendrogram diverged under concurrency"
						return
					}
				case 2:
					if !reflect.DeepEqual(ex.InterestingThresholds(64), baseThr) {
						errs <- "InterestingThresholds diverged under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestExplorerConcurrentConstruction builds explorers for the same graph
// from many goroutines at once; with the sync.Once reverse-edge index on the
// shared CSR this must be race-free and every instance must agree.
func TestExplorerConcurrentConstruction(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(400, 10, 11))
	if err != nil {
		t.Fatalf("generating graph: %v", err)
	}
	const workers = 6
	results := make([]*cluster.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex, err := NewExplorer(g, 3, 2)
			if err != nil {
				t.Errorf("NewExplorer: %v", err)
				return
			}
			results[w] = ex.ClusteringAt(0.5)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] == nil || results[0] == nil {
			t.Fatal("missing result")
		}
		if !reflect.DeepEqual(results[w].Labels, results[0].Labels) {
			t.Fatalf("explorer %d disagrees with explorer 0", w)
		}
	}
}
