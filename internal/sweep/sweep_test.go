package sweep

import (
	"math"
	"testing"
	"testing/quick"

	"anyscan/internal/cluster"
	"anyscan/internal/eval"
	"anyscan/internal/gen"
	"anyscan/internal/testutil"
	"anyscan/internal/unionfind"
)

func TestExplorerMatchesReference(t *testing.T) {
	epsValues := []float64{0.1, 0.3, 0.45, 0.5, 0.6, 0.75, 0.9, 1.0}
	for _, tc := range testutil.RandomCases(1) {
		for _, threads := range []int{1, 4} {
			ex, err := NewExplorer(tc.G, tc.Mu, threads)
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range epsValues {
				got := ex.ClusteringAt(eps)
				want := cluster.Reference(tc.G, tc.Mu, eps)
				if err := cluster.Equivalent(want, got); err != nil {
					t.Fatalf("%s threads=%d eps=%v: %v", tc.Name, threads, eps, err)
				}
				// The explorer's deterministic border rule matches the
				// reference exactly, so demand full label equality.
				for v := 0; v < got.N(); v++ {
					if got.Labels[v] != want.Labels[v] || got.Roles[v] != want.Roles[v] {
						t.Fatalf("%s eps=%v vertex %d: got (%v,%d) want (%v,%d)",
							tc.Name, eps, v, got.Roles[v], got.Labels[v], want.Roles[v], want.Labels[v])
					}
				}
			}
		}
	}
}

func TestExplorerOneSigmaPerEdge(t *testing.T) {
	g := testutil.Karate()
	ex, err := NewExplorer(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Querying many ε values must not change any state or recompute σ; we
	// just verify repeated queries are consistent.
	a := ex.ClusteringAt(0.5)
	for i := 0; i < 3; i++ {
		b := ex.ClusteringAt(0.5)
		if nmi := eval.NMI(a, b); nmi != 1 {
			t.Fatalf("repeated query differs: NMI=%v", nmi)
		}
	}
}

func TestCoreThresholdSemantics(t *testing.T) {
	g := testutil.TwoTriangles()
	ex, err := NewExplorer(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		thr := ex.CoreThreshold(v)
		if thr > 0 {
			at := ex.ClusteringAt(thr)
			if at.Roles[v] != cluster.Core {
				t.Errorf("vertex %d not core at its own threshold %v", v, thr)
			}
			above := ex.ClusteringAt(thr + 1e-9)
			if above.Roles[v] == cluster.Core {
				t.Errorf("vertex %d still core above its threshold %v", v, thr)
			}
		}
	}
}

func TestClusterCountMonotoneAtMergeEvents(t *testing.T) {
	// As ε decreases through the interesting thresholds, the core set only
	// grows. (Cluster counts can go up when new cores appear and down when
	// clusters merge, but cores are monotone.)
	tc := testutil.RandomCases(1)[5]
	ex, err := NewExplorer(tc.G, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := ex.InterestingThresholds(50)
	prevCores := -1
	for _, eps := range thresholds {
		c := ex.ClusteringAt(eps).RoleCounts().Cores
		if prevCores >= 0 && c < prevCores {
			t.Fatalf("core count shrank from %d to %d as ε decreased to %v", prevCores, c, eps)
		}
		prevCores = c
	}
}

func TestSweepProfile(t *testing.T) {
	g := testutil.Karate()
	ex, err := NewExplorer(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := ex.SweepProfile([]float64{0.3, 0.5, 0.7})
	if len(profiles) != 3 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	for i, p := range profiles {
		total := p.Counts.Cores + p.Counts.Borders + p.Counts.Noise() + p.Counts.Unclassified
		if total != g.NumVertices() {
			t.Errorf("profile %d: counts sum to %d", i, total)
		}
	}
	// Higher ε can only lose cores.
	if profiles[0].Counts.Cores < profiles[2].Counts.Cores {
		t.Errorf("cores increased with ε: %+v", profiles)
	}
}

func TestExplorerRejectsBadMu(t *testing.T) {
	if _, err := NewExplorer(testutil.Karate(), 0, 1); err == nil {
		t.Fatal("mu=0 accepted")
	}
}

func TestMuOneEverythingCore(t *testing.T) {
	g := testutil.Karate()
	ex, err := NewExplorer(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := ex.ClusteringAt(0.99)
	for v := 0; v < res.N(); v++ {
		if res.Roles[v] != cluster.Core {
			t.Fatalf("vertex %d not core at μ=1", v)
		}
	}
}

func TestDendrogramConsistentWithClusteringAt(t *testing.T) {
	tc := testutil.RandomCases(1)[3] // planted partition
	ex, err := NewExplorer(tc.G, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	merges := ex.Dendrogram()
	for i := 1; i < len(merges); i++ {
		if merges[i].Thr > merges[i-1].Thr {
			t.Fatalf("dendrogram not sorted at %d", i)
		}
	}
	if len(merges) >= tc.G.NumVertices() {
		t.Fatalf("too many merges: %d", len(merges))
	}
	// Cutting the dendrogram at ε must reproduce the core partition.
	for _, eps := range []float64{0.35, 0.5, 0.65} {
		ds := unionfind.New(tc.G.NumVertices())
		for _, m := range merges {
			if m.Thr < eps {
				break
			}
			ds.Union(m.A, m.B)
		}
		want := ex.ClusteringAt(eps)
		for v := int32(0); v < int32(want.N()); v++ {
			for q := v + 1; q < int32(want.N()); q++ {
				if want.Roles[v] != cluster.Core || want.Roles[q] != cluster.Core {
					continue
				}
				same := want.Labels[v] == want.Labels[q]
				if ds.Connected(v, q) != same {
					t.Fatalf("eps=%v: dendrogram cut disagrees on cores %d,%d", eps, v, q)
				}
			}
		}
	}
}

// Property: the crossing function returns the exact predicate boundary —
// the predicate holds at the returned t and fails one ulp above.
func TestCrossingProperty(t *testing.T) {
	f := func(numRaw, denomRaw uint32) bool {
		num := float64(numRaw%10000) / 100
		denom := float64(denomRaw%10000)/100 + 0.01
		c := crossing(num, denom)
		if num < c*denom {
			return false // predicate must hold at the crossing
		}
		up := math.Nextafter(c, math.Inf(1))
		return num < up*denom // and fail just above it
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: core thresholds never exceed 1 and isolated vertices never
// become cores at μ ≥ 2.
func TestCoreThresholdBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(60, 150, gen.WeightConfig{}, seed)
		ex, err := NewExplorer(g, 3, 1)
		if err != nil {
			return false
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			thr := ex.CoreThreshold(v)
			if thr < 0 || thr > 1 {
				return false
			}
			if g.Degree(v) < 2 && thr != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
