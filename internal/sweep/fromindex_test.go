package sweep

import (
	"reflect"
	"testing"

	"anyscan/internal/index"
	"anyscan/internal/testutil"
)

// TestFromIndexMatchesNewExplorer checks that an Explorer derived from a
// query index is indistinguishable from one built with its own σ pass:
// identical core thresholds, merge events, clusterings, and dendrograms.
func TestFromIndexMatchesNewExplorer(t *testing.T) {
	epsValues := []float64{0.1, 0.3, 0.45, 0.5, 0.6, 0.75, 0.9, 1.0}
	for _, tc := range testutil.RandomCases(1) {
		x := index.Build(tc.G, 2)
		for _, mu := range []int{1, 2, tc.Mu} {
			direct, err := NewExplorer(tc.G, mu, 2)
			if err != nil {
				t.Fatal(err)
			}
			derived, err := FromIndex(x, mu)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(derived.coreThr, direct.coreThr) {
				t.Fatalf("%s mu=%d: core thresholds differ", tc.Name, mu)
			}
			if !reflect.DeepEqual(derived.edges, direct.edges) {
				t.Fatalf("%s mu=%d: merge events differ", tc.Name, mu)
			}
			if !reflect.DeepEqual(derived.sigma, direct.sigma) {
				t.Fatalf("%s mu=%d: arc thresholds differ", tc.Name, mu)
			}
			for _, eps := range epsValues {
				a := direct.ClusteringAt(eps)
				b := derived.ClusteringAt(eps)
				if !reflect.DeepEqual(a.Labels, b.Labels) || !reflect.DeepEqual(a.Roles, b.Roles) {
					t.Fatalf("%s mu=%d eps=%v: clusterings differ", tc.Name, mu, eps)
				}
			}
			if !reflect.DeepEqual(direct.Dendrogram(), derived.Dendrogram()) {
				t.Fatalf("%s mu=%d: dendrograms differ", tc.Name, mu)
			}
		}
	}
}

func TestFromIndexRejectsBadMu(t *testing.T) {
	x := index.Build(testutil.Karate(), 1)
	if _, err := FromIndex(x, 0); err == nil {
		t.Fatal("mu=0 accepted")
	}
}
