// Package sweep implements interactive ε exploration for structural graph
// clustering: evaluate every edge similarity once, then answer "what is the
// clustering at ε?" for any number of thresholds without recomputing a
// single σ.
//
// This addresses the parameter-setting problem the paper's related-work
// section attributes to SCOT and HintClus (Section V): SCAN's output is
// very sensitive to ε, and users typically probe several values. The
// observation making the sweep cheap is that every SCAN decision is a
// threshold test:
//
//   - vertex v is a core at ε  ⇔  ε ≤ coreThr(v), where coreThr(v) is the
//     (μ-1)-th largest similarity among v's edges (σ(v,v)=1 supplies the
//     μ-th);
//   - a core-core edge (u,v) merges two clusters at ε  ⇔
//     ε ≤ min(σ(u,v), coreThr(u), coreThr(v));
//   - a non-core v is a border of q's cluster at ε  ⇔
//     ε ≤ min(σ(v,q), coreThr(q)) for an adjacent q.
//
// So one O(|E|) similarity pass (parallelized like the paper's "ideal"
// algorithm) plus one sort yields a structure from which the clustering at
// any ε follows by a union-find replay — the same dendrogram idea as
// single-linkage clustering, specialized to SCAN semantics.
package sweep

import (
	"fmt"
	"math"
	"sort"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// Explorer answers clustering queries at arbitrary ε for a fixed (graph, μ).
//
// An Explorer is immutable once NewExplorer returns: every query method
// (ClusteringAt, SweepProfile, InterestingThresholds, Dendrogram,
// CoreThreshold, Sigma) only reads the precomputed threshold structures and
// allocates its own scratch state (a fresh union-find per replay), so one
// Explorer is safe for any number of concurrent readers with no external
// locking. The anyscand service relies on this to cache a single Explorer
// per (graph, μ) across requests.
type Explorer struct {
	g  graph.Graph
	mu int

	coreThr []float64   // max ε at which v is still a core; 0 = never
	edges   []mergeEdge // core-core merge events, sorted by threshold desc
	sigma   []float64   // per-arc σ (both directions)
}

type mergeEdge struct {
	thr  float64
	u, v int32
}

// crossing returns the largest float64 t with num >= t*denom, i.e. the
// exact boundary of the engine's similarity predicate as a function of ε.
func crossing(num, denom float64) float64 { return simeval.Crossing(num, denom) }

// NewExplorer evaluates all |E| similarities with the given number of
// workers and prepares the threshold structures. Cost: one exact σ per
// undirected edge plus an O(|E| log |E|) sort.
func NewExplorer(g graph.Graph, mu int, threads int) (*Explorer, error) {
	if mu < 1 {
		return nil, fmt.Errorf("sweep: mu must be >= 1, got %d", mu)
	}
	n := g.NumVertices()
	eng := simeval.New(g, 0, simeval.Options{}) // exact values: no pruning

	// Per-arc activation threshold: the largest representable ε at which
	// the engine's predicate num >= ε*denom still holds. Computing the
	// exact crossing (rather than the rounded quotient num/denom) keeps the
	// sweep bit-for-bit consistent with every other algorithm here, even on
	// unweighted graphs where σ values hit rational boundaries exactly.
	// Canonical slots (v < q) are evaluated here; mirrors are filled by one
	// PropagateMirrors pass, which needs no reverse-edge index and therefore
	// works on compressed backends too.
	sigma := make([]float64, g.NumArcs())
	par.For(n, threads, 16, func(i int) {
		v := int32(i)
		lo, _ := g.NeighborRange(v)
		g.EachNeighbor(v, func(j int, q int32, w float32) bool {
			if v < q {
				eng.C.Sims.Add(1)
				num, denom := eng.EdgeNumerator(v, q, w)
				sigma[lo+int64(j)] = crossing(num, denom)
			}
			return true
		})
	})
	graph.PropagateMirrors(g, sigma)

	// coreThr(v): the (μ-1)-th largest σ among v's arcs (v itself provides
	// one similar member at any ε ≤ 1).
	coreThr := make([]float64, n)
	par.ForWorker(n, threads, 32, func(w, i int) {
		v := int32(i)
		lo, hi := g.NeighborRange(v)
		need := mu - 1 // similar neighbors required besides v itself
		if need <= 0 {
			coreThr[v] = 1
			return
		}
		if int(hi-lo) < need {
			coreThr[v] = 0 // can never be a core
			return
		}
		vals := make([]float64, hi-lo)
		copy(vals, sigma[lo:hi])
		sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
		coreThr[v] = vals[need-1]
	})

	// Merge events: each edge joins the two endpoint clusters as soon as ε
	// falls to min(σ, coreThr(u), coreThr(v)).
	edges := mergeEvents(g, sigma, coreThr)
	return &Explorer{g: g, mu: mu, coreThr: coreThr, edges: edges, sigma: sigma}, nil
}

// mergeEvents collects each undirected edge's merge threshold
// min(σ, coreThr(u), coreThr(v)) and sorts the events by threshold
// descending, the replay order ClusteringAt consumes.
func mergeEvents(g graph.Graph, sigma, coreThr []float64) []mergeEdge {
	var edges []mergeEdge
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, _ := g.NeighborRange(v)
		g.EachNeighbor(v, func(j int, q int32, _ float32) bool {
			if v >= q {
				return true
			}
			thr := math.Min(sigma[lo+int64(j)], math.Min(coreThr[v], coreThr[q]))
			if thr > 0 {
				edges = append(edges, mergeEdge{thr, v, q})
			}
			return true
		})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].thr > edges[j].thr })
	return edges
}

// FromIndex derives a μ-fixed Explorer from a per-graph query index without
// re-evaluating a single similarity: the index already holds every per-arc
// activation threshold, so only the O(n) core thresholds (an O(1) lookup
// each) and the O(|E| log |E|) merge-event sort remain. The Explorer shares
// the index's σ storage (both treat it as read-only), so the μ-fixed
// dendrogram/profile APIs cost no second Θ(|E|) pass and no extra arc-sized
// allocation beyond the merge-event list.
func FromIndex(x *index.Index, mu int) (*Explorer, error) {
	if mu < 1 {
		return nil, fmt.Errorf("sweep: mu must be >= 1, got %d", mu)
	}
	g := x.Graph()
	n := g.NumVertices()
	sigma := x.ArcSigmas()

	coreThr := make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		coreThr[v] = x.CoreThreshold(v, mu)
	}

	edges := mergeEvents(g, sigma, coreThr)
	return &Explorer{g: g, mu: mu, coreThr: coreThr, edges: edges, sigma: sigma}, nil
}

// Mu returns the μ the explorer was built for.
func (e *Explorer) Mu() int { return e.mu }

// CoreThreshold returns the largest ε at which v is a core (0 = never).
func (e *Explorer) CoreThreshold(v int32) float64 { return e.coreThr[v] }

// Sigma returns the exact structural similarity of the arc's endpoints.
func (e *Explorer) Sigma(arc int64) float64 { return e.sigma[arc] }

// ClusteringAt returns the exact SCAN clustering at ε. Borders claimed by
// several clusters attach to their smallest qualifying core, making the
// output deterministic (it matches cluster.Reference exactly).
func (e *Explorer) ClusteringAt(eps float64) *cluster.Result {
	n := e.g.NumVertices()
	ds := unionfind.New(n)
	for _, me := range e.edges {
		if me.thr < eps {
			break // sorted descending: the rest are inactive too
		}
		ds.Union(me.u, me.v)
	}
	res := cluster.NewResult(n)
	for v := int32(0); v < int32(n); v++ {
		if e.coreThr[v] >= eps {
			res.Roles[v] = cluster.Core
			res.Labels[v] = ds.Find(v)
		}
	}
	// Borders: the smallest-id adjacent core with σ ≥ ε.
	for v := int32(0); v < int32(n); v++ {
		if res.Roles[v] == cluster.Core {
			continue
		}
		lo, _ := e.g.NeighborRange(v)
		e.g.EachNeighbor(v, func(j int, q int32, _ float32) bool {
			if e.coreThr[q] >= eps && e.sigma[lo+int64(j)] >= eps {
				res.Roles[v] = cluster.Border
				res.Labels[v] = ds.Find(q)
				return false
			}
			return true
		})
	}
	cluster.ClassifyNoise(e.g, res)
	res.Canonicalize()
	return res
}

// Profile summarizes the clustering at one ε (for sweep tables and UIs).
type Profile struct {
	Eps      float64
	Clusters int
	Counts   cluster.Counts
}

// SweepProfile evaluates the clustering at each ε and returns compact
// summaries, most useful for plotting cluster-count and noise curves while
// choosing ε interactively.
func (e *Explorer) SweepProfile(epsValues []float64) []Profile {
	out := make([]Profile, 0, len(epsValues))
	for _, eps := range epsValues {
		res := e.ClusteringAt(eps)
		out = append(out, Profile{Eps: eps, Clusters: res.NumClusters, Counts: res.RoleCounts()})
	}
	return out
}

// InterestingThresholds returns the distinct ε values (descending) at which
// the set of cores or the cluster structure can change — the merge-event
// and core thresholds. Probing only these values observes every distinct
// clustering of the (graph, μ) pair.
func (e *Explorer) InterestingThresholds(limit int) []float64 {
	seen := map[float64]struct{}{}
	var out []float64
	add := func(t float64) {
		if t <= 0 {
			return
		}
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			out = append(out, t)
		}
	}
	for _, me := range e.edges {
		add(me.thr)
	}
	for _, t := range e.coreThr {
		add(t)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Merge is one event of the clustering dendrogram: at ε values below Thr,
// the clusters containing cores A and B are one cluster.
type Merge struct {
	Thr  float64
	A, B int32
}

// Dendrogram returns the full merge hierarchy of (graph, μ) over decreasing
// ε: replaying the core-core merge events through a union-find and emitting
// one Merge per successful join. This is the agglomerative view of the
// SCAN clustering family (cf. AHSCAN in the paper's related work): cutting
// the dendrogram at any ε reproduces the core partition of ClusteringAt.
// The result has at most |V|-1 entries, sorted by descending threshold.
func (e *Explorer) Dendrogram() []Merge {
	ds := unionfind.New(e.g.NumVertices())
	var out []Merge
	for _, me := range e.edges {
		if ds.Union(me.u, me.v) {
			out = append(out, Merge{Thr: me.thr, A: me.u, B: me.v})
		}
	}
	return out
}
