package core

import (
	"context"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/eval"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/testutil"
)

func opts(mu int, eps float64, threads, alpha, beta int) Options {
	o := DefaultOptions()
	o.Mu, o.Eps, o.Threads, o.Alpha, o.Beta = mu, eps, threads, alpha, beta
	return o
}

func mustCluster(t *testing.T, g *graph.CSR, o Options) (*cluster.Result, Metrics) {
	t.Helper()
	res, m, err := Cluster(g, o)
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	return res, m
}

func TestAnySCANMatchesReferenceOnFixtures(t *testing.T) {
	configs := []struct {
		name         string
		threads      int
		alpha, beta  int
		resolveRoles bool
	}{
		{"seq-small-blocks", 1, 4, 4, true},
		{"seq-big-blocks", 1, 1024, 1024, true},
		{"par2", 2, 16, 16, true},
		{"par4-tiny-blocks", 4, 2, 2, true},
		{"par8", 8, 64, 64, true},
	}
	fixtures := []struct {
		name string
		g    *graph.CSR
		mu   int
		eps  float64
	}{
		{"two-triangles", testutil.TwoTriangles(), 3, 0.6},
		{"karate-mu2", testutil.Karate(), 2, 0.5},
		{"karate-mu3", testutil.Karate(), 3, 0.6},
		{"karate-mu5", testutil.Karate(), 5, 0.4},
	}
	for _, f := range fixtures {
		for _, cfg := range configs {
			t.Run(f.name+"/"+cfg.name, func(t *testing.T) {
				o := opts(f.mu, f.eps, cfg.threads, cfg.alpha, cfg.beta)
				o.ResolveRoles = cfg.resolveRoles
				res, _ := mustCluster(t, f.g, o)
				if err := cluster.Validate(f.g, f.mu, f.eps, res); err != nil {
					t.Fatalf("invalid: %v", err)
				}
			})
		}
	}
}

func TestAnySCANMatchesReferenceOnRandomGraphs(t *testing.T) {
	count := 2
	if testing.Short() {
		count = 1
	}
	for _, tc := range testutil.RandomCases(count) {
		for _, threads := range []int{1, 4} {
			for _, block := range []int{7, 128, 100000} {
				o := opts(tc.Mu, tc.Eps, threads, block, block)
				o.ResolveRoles = true
				res, _, err := Cluster(tc.G, o)
				if err != nil {
					t.Fatalf("%s: %v", tc.Name, err)
				}
				if err := cluster.Validate(tc.G, tc.Mu, tc.Eps, res); err != nil {
					t.Fatalf("%s threads=%d block=%d: %v", tc.Name, threads, block, err)
				}
			}
		}
	}
}

// Without ResolveRoles the labels and noise set must still be exact; only
// the core/border split of clustered vertices may be coarser than SCAN's.
func TestAnySCANMembershipExactWithoutRoleResolution(t *testing.T) {
	for _, tc := range testutil.RandomCases(1) {
		o := opts(tc.Mu, tc.Eps, 1, 64, 64)
		res, _, err := Cluster(tc.G, o)
		if err != nil {
			t.Fatal(err)
		}
		want := cluster.Reference(tc.G, tc.Mu, tc.Eps)
		for v := 0; v < res.N(); v++ {
			if want.Roles[v].IsNoise() != res.Roles[v].IsNoise() {
				t.Fatalf("%s: vertex %d noise mismatch (ref %v, got %v)", tc.Name, v, want.Roles[v], res.Roles[v])
			}
			if res.Roles[v] == cluster.Core && want.Roles[v] != cluster.Core {
				t.Fatalf("%s: vertex %d claimed core but is %v", tc.Name, v, want.Roles[v])
			}
		}
		// The partition restricted to true cores must match the reference.
		seen := map[int32]int32{}
		rev := map[int32]int32{}
		for v := 0; v < res.N(); v++ {
			if want.Roles[v] != cluster.Core {
				continue
			}
			wl, gl := want.Labels[v], res.Labels[v]
			if gl == cluster.NoLabel {
				t.Fatalf("%s: true core %d unlabeled", tc.Name, v)
			}
			if prev, ok := seen[wl]; ok && prev != gl {
				t.Fatalf("%s: reference cluster %d split", tc.Name, wl)
			}
			if prev, ok := rev[gl]; ok && prev != wl {
				t.Fatalf("%s: reference clusters merged into %d", tc.Name, gl)
			}
			seen[wl] = gl
			rev[gl] = wl
		}
	}
}

func TestAnySCANDeterministicAcrossThreadCounts(t *testing.T) {
	tc := testutil.RandomCases(1)[3] // planted partition
	var base *cluster.Result
	for _, threads := range []int{1, 2, 4, 8} {
		res, _ := mustCluster(t, tc.G, opts(tc.Mu, tc.Eps, threads, 32, 32))
		if base == nil {
			base = res
			continue
		}
		for v := 0; v < res.N(); v++ {
			if base.Labels[v] != res.Labels[v] || base.Roles[v] != res.Roles[v] {
				t.Fatalf("threads=%d: vertex %d differs (label %d/%d role %v/%v)",
					threads, v, base.Labels[v], res.Labels[v], base.Roles[v], res.Roles[v])
			}
		}
	}
}

func TestAnytimeSnapshotsConvergeToFinal(t *testing.T) {
	g := testutil.Karate()
	o := opts(3, 0.5, 2, 8, 8)
	c, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.Reference(g, 3, 0.5)
	final, _ := mustCluster(t, g, o)
	prevNMI := -1.0
	iters := 0
	for c.Step() {
		iters++
		snap := c.Snapshot()
		if snap.N() != g.NumVertices() {
			t.Fatalf("snapshot size wrong")
		}
		_ = prevNMI // NMI need not be monotone per-iteration; just track it
		prevNMI = eval.NMI(snap, want)
	}
	if iters < 3 {
		t.Fatalf("expected multiple anytime iterations, got %d", iters)
	}
	last := c.Snapshot()
	if got := eval.NMI(last, want); got < 0.9999 {
		t.Fatalf("final snapshot NMI vs reference = %v, want ~1", got)
	}
	if err := cluster.Equivalent(final, last); err != nil {
		t.Fatalf("final snapshot differs from batch run: %v", err)
	}
	if c.Step() {
		t.Fatalf("Step after done should return false")
	}
}

func TestRunHonorsContext(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := c.Run(ctx)
	if err == nil {
		t.Fatalf("want context error")
	}
	if res == nil {
		t.Fatalf("want partial snapshot on cancel")
	}
	// Resume to completion.
	res2, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if err := cluster.Validate(g, 3, 0.5, res2); err == nil {
		// roles may be unresolved; just check membership via reference NMI
	}
	want := cluster.Reference(g, 3, 0.5)
	if nmi := eval.NMI(res2, want); nmi < 0.9999 {
		t.Fatalf("resumed run NMI = %v", nmi)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := testutil.Karate()
	bad := []Options{
		{Mu: 0, Eps: 0.5, Alpha: 1, Beta: 1},
		{Mu: 2, Eps: 0, Alpha: 1, Beta: 1},
		{Mu: 2, Eps: 1.5, Alpha: 1, Beta: 1},
		{Mu: 2, Eps: 0.5, Alpha: 0, Beta: 1},
		{Mu: 2, Eps: 0.5, Alpha: 1, Beta: 0},
		{Mu: 2, Eps: 0.5, Alpha: 1, Beta: 1, Threads: -1},
	}
	for i, o := range bad {
		if _, err := New(g, o); err == nil {
			t.Errorf("case %d: want error for %+v", i, o)
		}
	}
	if _, err := New(g, DefaultOptions()); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	g := testutil.Karate()
	_, m := mustCluster(t, g, opts(3, 0.5, 1, 8, 8))
	if m.Sim.Sims == 0 {
		t.Errorf("no sims recorded")
	}
	if m.SuperNodes == 0 {
		t.Errorf("no super-nodes recorded")
	}
	if m.Iterations == 0 {
		t.Errorf("no iterations recorded")
	}
	if m.Elapsed <= 0 {
		t.Errorf("no elapsed time recorded")
	}
}

// anySCAN must be work-efficient: on a clustered graph its similarity work
// (including pruned checks) should not exceed SCAN's 2|E| evaluations.
func TestWorkEfficiency(t *testing.T) {
	for _, tc := range testutil.RandomCases(1) {
		_, m := mustCluster(t, tc.G, opts(tc.Mu, tc.Eps, 1, 8192, 8192))
		scanWork := tc.G.NumArcs()
		work := m.Sim.Sims + m.Sim.Pruned
		if work > scanWork+scanWork/5 {
			t.Errorf("%s: anySCAN work %d far exceeds SCAN %d", tc.Name, work, scanWork)
		}
	}
}

func TestStateTransitionLattice(t *testing.T) {
	// Spot-check the Fig. 3 lattice encoding.
	valid := [][2]vertexState{
		{stateUntouched, stateUnprocBorder},
		{stateUntouched, stateUnprocCore},
		{stateUntouched, stateProcCore},
		{stateUntouched, stateProcNoise},
		{stateUntouched, stateUnprocNoise},
		{stateUnprocNoise, stateProcBorder},
		{stateUnprocNoise, stateProcNoise},
		{stateUnprocBorder, stateUnprocCore},
		{stateUnprocBorder, stateProcBorder},
		{stateUnprocCore, stateProcCore},
		{stateProcNoise, stateProcBorder},
	}
	for _, tr := range valid {
		if !validTransition(tr[0], tr[1]) {
			t.Errorf("transition %s → %s should be valid", stateName(tr[0]), stateName(tr[1]))
		}
	}
	invalid := [][2]vertexState{
		{stateProcCore, stateProcBorder},
		{stateProcBorder, stateProcCore},
		{stateProcBorder, stateUnprocBorder},
		{stateUnprocCore, stateProcBorder},
		{stateUnprocCore, stateUnprocBorder},
		{stateProcNoise, stateUntouched},
		{stateProcNoise, stateProcCore},
		{stateUnprocNoise, stateUnprocCore},
		{stateUnprocNoise, stateProcCore},
	}
	for _, tr := range invalid {
		if validTransition(tr[0], tr[1]) {
			t.Errorf("transition %s → %s should be invalid", stateName(tr[0]), stateName(tr[1]))
		}
	}
}

func TestSimOptimizationTogglesPreserveResult(t *testing.T) {
	tc := testutil.RandomCases(1)[2] // weighted ER
	var base *cluster.Result
	for _, simOpt := range []simeval.Options{
		{},
		{Lemma5: true},
		{EarlyExit: true},
		simeval.AllOptimizations,
	} {
		o := opts(tc.Mu, tc.Eps, 1, 64, 64)
		o.Sim = simOpt
		o.ResolveRoles = true
		res, _ := mustCluster(t, tc.G, o)
		if base == nil {
			base = res
			continue
		}
		if err := cluster.Equivalent(base, res); err != nil {
			t.Fatalf("optimizations %+v changed the result: %v", simOpt, err)
		}
	}
}

func TestSeedChangesOrderNotResult(t *testing.T) {
	tc := testutil.RandomCases(1)[5] // holme-kim
	want := cluster.Reference(tc.G, tc.Mu, tc.Eps)
	for seed := int64(1); seed <= 5; seed++ {
		o := opts(tc.Mu, tc.Eps, 1, 32, 32)
		o.Seed = seed
		res, _ := mustCluster(t, tc.G, o)
		if err := cluster.Equivalent(want, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty, err := graph.FromUnweightedEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := mustCluster(t, empty, opts(2, 0.5, 2, 8, 8))
	if res.N() != 0 {
		t.Fatalf("empty graph result has %d vertices", res.N())
	}

	isolated, err := graph.FromUnweightedEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = mustCluster(t, isolated, opts(2, 0.5, 1, 8, 8))
	for v := 0; v < 5; v++ {
		if !res.Roles[v].IsNoise() {
			t.Errorf("isolated vertex %d: want noise, got %v", v, res.Roles[v])
		}
	}

	single, err := graph.FromUnweightedEdges(2, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, _ = mustCluster(t, single, opts(2, 0.9, 1, 8, 8))
	if err := cluster.Validate(single, 2, 0.9, res); err != nil {
		t.Fatalf("single edge: %v", err)
	}
}

func TestMuOneEveryVertexIsCore(t *testing.T) {
	g := testutil.Karate()
	o := opts(1, 0.99, 2, 8, 8)
	o.ResolveRoles = true
	res, _ := mustCluster(t, g, o)
	if err := cluster.Validate(g, 1, 0.99, res); err != nil {
		t.Fatalf("mu=1: %v", err)
	}
	for v := 0; v < res.N(); v++ {
		if res.Roles[v] != cluster.Core {
			t.Fatalf("mu=1: vertex %d is %v, want core", v, res.Roles[v])
		}
	}
}

func TestWorkerLoadAccounting(t *testing.T) {
	tc := testutil.RandomCases(1)[5]
	for _, threads := range []int{1, 4} {
		_, m := mustCluster(t, tc.G, opts(tc.Mu, tc.Eps, threads, 64, 64))
		if len(m.WorkerArcs) != threads {
			t.Fatalf("threads=%d: WorkerArcs has %d entries", threads, len(m.WorkerArcs))
		}
		var total int64
		for _, a := range m.WorkerArcs {
			total += a
		}
		if total == 0 {
			t.Fatalf("threads=%d: no arc work recorded", threads)
		}
		imb := m.LoadImbalance()
		if imb < 1 {
			t.Fatalf("imbalance %v < 1", imb)
		}
		if threads == 1 && imb != 1 {
			t.Fatalf("single worker imbalance = %v, want 1", imb)
		}
	}
}

func TestProgressAndPhaseDurations(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Progress()
	if p.Iterations != 0 || p.Phase != PhaseSummarize || p.SuperNodes != 0 {
		t.Fatalf("fresh progress: %+v", p)
	}
	c.Step()
	p = c.Progress()
	if p.Iterations != 1 || p.Touched == 0 {
		t.Fatalf("progress after one step: %+v", p)
	}
	for c.Step() {
	}
	if !c.Done() || c.Phase() != PhaseDone {
		t.Fatal("run did not finish")
	}
	d := c.PhaseDurations()
	if d[PhaseSummarize] <= 0 {
		t.Fatalf("no summarize time recorded: %v", d)
	}
	var total int64
	for _, v := range d {
		total += int64(v)
	}
	if total > int64(c.Metrics().Elapsed) {
		t.Fatalf("phase durations %v exceed elapsed %v", total, c.Metrics().Elapsed)
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseSummarize: "summarize",
		PhaseStrong:    "strong-merge",
		PhaseWeak:      "weak-merge",
		PhaseBorders:   "borders",
		PhaseDone:      "done",
		Phase(42):      "Phase(42)",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
