package core

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// checkpointVersion guards against loading checkpoints from incompatible
// library versions.
const checkpointVersion = 1

// checkpointState is the gob payload of a suspended run. The graph itself
// is not serialized — the caller supplies it again at load time and a
// fingerprint check rejects mismatches.
type checkpointState struct {
	Version int
	Graph   graphFingerprint

	Opt Options

	State    []int32
	Nei      []int32
	SnOf     [][]int32
	SnRep    []int32
	DSParent []int32
	DSRank   []uint8
	DSSets   int
	BorderOf []int32
	Noise    []int32
	EpsCache [][]int32
	Order    []int32
	Cursor   int

	Phase   Phase
	WorkS   []int32
	WorkT   []int32
	WorkPos int

	Memo []int32

	UnionsSeq    int64
	UnionsStep23 int64
	WorkerArcs   []int64
	Iterations   int
	Elapsed      time.Duration
	PhaseTime    []time.Duration
	Sim          simeval.CounterValues
}

type graphFingerprint struct {
	Vertices int
	Arcs     int64
	Hash     uint64
}

func fingerprint(g *graph.CSR) graphFingerprint {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(x int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf)
	}
	n := int32(g.NumVertices())
	put(int64(n))
	for v := int32(0); v < n; v++ {
		lo, hi := g.NeighborRange(v)
		put(hi - lo)
		for e := lo; e < hi; e++ {
			q, w := g.Arc(e)
			put(int64(q)<<32 | int64(int32(floatBits(w))))
		}
	}
	return graphFingerprint{Vertices: g.NumVertices(), Arcs: g.NumArcs(), Hash: h.Sum64()}
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

// SaveCheckpoint serializes the complete run state so it can be resumed
// later — possibly in another process — with LoadCheckpoint. Call it only
// between Step invocations (the suspended anytime position), never
// concurrently with Step.
func (c *Clusterer) SaveCheckpoint(w io.Writer) error {
	st := checkpointState{
		Version:      checkpointVersion,
		Graph:        fingerprint(c.g),
		Opt:          c.opt,
		State:        c.state,
		Nei:          c.nei,
		SnOf:         c.snOf,
		SnRep:        c.snRep,
		BorderOf:     c.borderOf,
		Noise:        c.noise,
		EpsCache:     c.epsCache,
		Order:        c.order,
		Cursor:       c.cursor,
		Phase:        c.phase,
		WorkS:        c.workS,
		WorkT:        c.workT,
		WorkPos:      c.workPos,
		Memo:         c.memo,
		UnionsSeq:    c.unionsSeq,
		UnionsStep23: c.unionsStep23,
		WorkerArcs:   c.workerArcs,
		Iterations:   c.iterations,
		Elapsed:      c.elapsed,
		PhaseTime:    c.phaseTime[:],
		Sim:          c.eng.C.Snapshot(),
	}
	st.DSParent, st.DSRank, st.DSSets = c.ds.Snapshot()
	return gob.NewEncoder(w).Encode(&st)
}

// LoadCheckpoint reconstructs a suspended Clusterer over g from a
// checkpoint written by SaveCheckpoint. g must be the same graph the run
// was started on (a content fingerprint is verified). The resumed run
// continues exactly where it stopped; the thread count is taken from the
// saved options.
func LoadCheckpoint(g *graph.CSR, r io.Reader) (*Clusterer, error) {
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("anyscan: decoding checkpoint: %w", err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("anyscan: checkpoint version %d not supported", st.Version)
	}
	if fp := fingerprint(g); fp != st.Graph {
		return nil, fmt.Errorf("anyscan: checkpoint was taken on a different graph (fingerprint %x vs %x)", st.Graph.Hash, fp.Hash)
	}
	opt := st.Opt
	if err := (&opt).validate(); err != nil {
		return nil, fmt.Errorf("anyscan: checkpoint options invalid: %w", err)
	}
	n := g.NumVertices()
	if len(st.State) != n || len(st.Nei) != n || len(st.SnOf) != n ||
		len(st.BorderOf) != n || len(st.EpsCache) != n || len(st.Order) != n {
		return nil, fmt.Errorf("anyscan: checkpoint arrays do not match graph size %d", n)
	}
	if len(st.DSParent) != len(st.SnRep) {
		return nil, fmt.Errorf("anyscan: checkpoint super-node state inconsistent")
	}
	ds, err := unionfind.Restore(st.DSParent, st.DSRank, st.DSSets)
	if err != nil {
		return nil, fmt.Errorf("anyscan: checkpoint: %w", err)
	}
	if opt.EdgeMemo && int64(len(st.Memo)) != g.NumArcs() {
		return nil, fmt.Errorf("anyscan: checkpoint memo does not match graph arcs")
	}

	c := &Clusterer{
		g:            g,
		opt:          opt,
		eng:          simeval.New(g, opt.Eps, opt.Sim),
		state:        st.State,
		nei:          st.Nei,
		snOf:         st.SnOf,
		snRep:        st.SnRep,
		ds:           ds,
		borderOf:     st.BorderOf,
		noise:        st.Noise,
		epsCache:     st.EpsCache,
		order:        st.Order,
		cursor:       st.Cursor,
		phase:        st.Phase,
		workS:        st.WorkS,
		workT:        st.WorkT,
		workPos:      st.WorkPos,
		memo:         st.Memo,
		unionsSeq:    st.UnionsSeq,
		unionsStep23: st.UnionsStep23,
		iterations:   st.Iterations,
		elapsed:      st.Elapsed,
	}
	copy(c.phaseTime[:], st.PhaseTime)
	c.eng.C.Restore(st.Sim)
	if opt.EdgeMemo {
		c.rev = g.ReverseEdgeIndex()
	}
	workers := opt.Threads
	c.promoted = make([][]int32, workers)
	c.mergeBuf = make([][][2]int32, workers)
	c.workerArcs = make([]int64, workers)
	if len(st.WorkerArcs) == workers {
		copy(c.workerArcs, st.WorkerArcs)
	}
	return c, nil
}
