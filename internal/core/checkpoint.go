package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"anyscan/internal/frame"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// Checkpoint container format v2: the shared framed+CRC container of package
// frame (magic, version, payload length, CRC-32) wrapping a gob-encoded
// checkpointState. See frame for the integrity guarantees.
const checkpointVersion = 2

// checkpointKind is the frame parameterization of the checkpoint artifact.
// MaxPayload bounds the declared payload length so a corrupt or hostile
// header cannot force an enormous allocation.
var checkpointKind = frame.Kind{
	Magic:      0xA17C5CC2,
	Version:    checkpointVersion,
	Name:       "checkpoint",
	MaxPayload: int64(1) << 36,
}

// checkpointState is the gob payload of a suspended run. The graph itself
// is not serialized — the caller supplies it again at load time and a
// fingerprint check rejects mismatches.
type checkpointState struct {
	Version int
	Graph   graph.Fingerprint

	Opt Options

	State    []int32
	Nei      []int32
	SnOf     [][]int32
	SnRep    []int32
	DSParent []int32
	DSRank   []uint8
	DSSets   int
	BorderOf []int32
	Noise    []int32
	EpsCache [][]int32
	Order    []int32
	Cursor   int

	Phase   Phase
	WorkS   []int32
	WorkT   []int32
	WorkPos int

	Memo []int32

	UnionsSeq    int64
	UnionsStep23 int64
	WorkerArcs   []int64
	Iterations   int
	Elapsed      time.Duration
	PhaseTime    []time.Duration
	Sim          simeval.CounterValues
}

// checkpointSnapshot captures the complete run state as a serializable
// payload. Call it only between Step invocations.
func (c *Clusterer) checkpointSnapshot() checkpointState {
	st := checkpointState{
		Version:      checkpointVersion,
		Graph:        graph.FingerprintOf(c.g),
		Opt:          c.opt,
		State:        c.state,
		Nei:          c.nei,
		SnOf:         c.snOf,
		SnRep:        c.snRep,
		BorderOf:     c.borderOf,
		Noise:        c.noise,
		EpsCache:     c.epsCache,
		Order:        c.order,
		Cursor:       c.cursor,
		Phase:        c.phase,
		WorkS:        c.workS,
		WorkT:        c.workT,
		WorkPos:      c.workPos,
		Memo:         c.memo,
		UnionsSeq:    c.unionsSeq,
		UnionsStep23: c.unionsStep23.Load(),
		WorkerArcs:   c.workerArcs,
		Iterations:   c.iterations,
		Elapsed:      c.elapsed,
		PhaseTime:    c.phaseTime[:],
		Sim:          c.eng.C.Snapshot(),
	}
	st.DSParent, st.DSRank, st.DSSets = c.ds.Snapshot()
	return st
}

// SaveCheckpoint serializes the complete run state so it can be resumed
// later — possibly in another process — with LoadCheckpoint. The payload is
// wrapped in the framed v2 container (magic, version, length, CRC-32), so
// truncation and bit-level corruption are detected at load time. Call it
// only between Step invocations (the suspended anytime position), never
// concurrently with Step.
//
// SaveCheckpoint buffers the encoded payload in memory to compute its
// length and checksum before anything reaches w; a failed save therefore
// never emits a partial frame unless w itself fails mid-write — use
// SaveCheckpointFile for crash-safe on-disk atomicity.
func (c *Clusterer) SaveCheckpoint(w io.Writer) error {
	st := c.checkpointSnapshot()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return fmt.Errorf("anyscan: encoding checkpoint: %w", err)
	}
	return checkpointKind.Write(w, buf.Bytes())
}

// LoadCheckpoint reconstructs a suspended Clusterer over g from a
// checkpoint written by SaveCheckpoint. g must be the same graph the run
// was started on (a content fingerprint is verified). The resumed run
// continues exactly where it stopped; the thread count is taken from the
// saved options.
//
// The frame checksum rejects corrupted files, and every loaded index array
// is additionally bounds-checked against the graph, so even a
// checksum-valid but semantically invalid checkpoint (e.g. produced by a
// buggy writer) yields an error instead of out-of-range panics or a
// silently poisoned resumed run.
func LoadCheckpoint(g *graph.CSR, r io.Reader) (*Clusterer, error) {
	payload, err := checkpointKind.Read(r)
	if err != nil {
		return nil, err
	}
	var st checkpointState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("anyscan: decoding checkpoint: %w", err)
	}
	if st.Version != checkpointVersion {
		return nil, fmt.Errorf("anyscan: checkpoint version %d not supported", st.Version)
	}
	if fp := graph.FingerprintOf(g); fp != st.Graph {
		return nil, fmt.Errorf("anyscan: checkpoint was taken on a different graph (fingerprint %x vs %x)", st.Graph.Hash, fp.Hash)
	}
	opt := st.Opt
	if err := (&opt).validate(); err != nil {
		return nil, fmt.Errorf("anyscan: checkpoint options invalid: %w", err)
	}
	if err := st.validate(g, opt); err != nil {
		return nil, fmt.Errorf("anyscan: checkpoint state invalid: %w", err)
	}
	// Checkpoints written before the lock-free union-find carry a rank-based
	// forest; RestoreConcurrent accepts both (ranks never influenced the
	// partition, only tree shape).
	ds, err := unionfind.RestoreConcurrent(st.DSParent, st.DSRank, st.DSSets)
	if err != nil {
		return nil, fmt.Errorf("anyscan: checkpoint: %w", err)
	}

	c := &Clusterer{
		g:          g,
		opt:        opt,
		eng:        simeval.New(g, opt.Eps, opt.Sim),
		state:      st.State,
		nei:        st.Nei,
		snOf:       st.SnOf,
		snRep:      st.SnRep,
		ds:         ds,
		borderOf:   st.BorderOf,
		noise:      st.Noise,
		epsCache:   st.EpsCache,
		order:      st.Order,
		cursor:     st.Cursor,
		phase:      st.Phase,
		workS:      st.WorkS,
		workT:      st.WorkT,
		workPos:    st.WorkPos,
		memo:       st.Memo,
		unionsSeq:  st.UnionsSeq,
		iterations: st.Iterations,
		elapsed:    st.Elapsed,
	}
	c.unionsStep23.Store(st.UnionsStep23)
	copy(c.phaseTime[:], st.PhaseTime)
	c.eng.C.Restore(st.Sim)
	if opt.EdgeMemo {
		c.rev = g.ReverseEdgeIndex()
	}
	workers := opt.Threads
	c.promoted = make([][]int32, workers)
	c.workerArcs = make([]int64, workers)
	if len(st.WorkerArcs) == workers {
		copy(c.workerArcs, st.WorkerArcs)
	}
	return c, nil
}

// validate bounds-checks every index array of a decoded checkpoint against
// the graph it is being restored over. A checkpoint that passes the CRC but
// fails here was written by an incompatible or buggy encoder; rejecting it
// up front means the resumed run can index freely without further checks.
func (st *checkpointState) validate(g *graph.CSR, opt Options) error {
	n := g.NumVertices()
	if st.Phase < PhaseSummarize || st.Phase > PhaseDone {
		return fmt.Errorf("phase %d out of range", st.Phase)
	}
	if len(st.State) != n || len(st.Nei) != n || len(st.SnOf) != n ||
		len(st.BorderOf) != n || len(st.EpsCache) != n || len(st.Order) != n {
		return fmt.Errorf("per-vertex arrays do not match graph size %d", n)
	}
	sn := len(st.SnRep)
	if len(st.DSParent) != sn || len(st.DSRank) != sn {
		return fmt.Errorf("super-node state inconsistent (%d reps, %d parents, %d ranks)",
			sn, len(st.DSParent), len(st.DSRank))
	}
	for i, rep := range st.SnRep {
		if rep < 0 || int(rep) >= n {
			return fmt.Errorf("super-node %d representative %d out of range [0,%d)", i, rep, n)
		}
	}
	for v := 0; v < n; v++ {
		if s := st.State[v]; s < stateUntouched || s > stateProcCore {
			return fmt.Errorf("vertex %d state %d invalid", v, s)
		}
		if ne := st.Nei[v]; ne < 0 || int(ne) > n {
			return fmt.Errorf("vertex %d nei count %d out of range [0,%d]", v, ne, n)
		}
		if b := st.BorderOf[v]; b < -1 || int(b) >= sn {
			return fmt.Errorf("vertex %d borderOf %d out of range [-1,%d)", v, b, sn)
		}
		for _, sid := range st.SnOf[v] {
			if sid < 0 || int(sid) >= sn {
				return fmt.Errorf("vertex %d super-node id %d out of range [0,%d)", v, sid, sn)
			}
		}
		for _, q := range st.EpsCache[v] {
			if q < 0 || int(q) >= n {
				return fmt.Errorf("vertex %d cached ε-neighbor %d out of range [0,%d)", v, q, n)
			}
		}
	}
	for _, v := range st.Noise {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("noise-list vertex %d out of range [0,%d)", v, n)
		}
	}
	if st.Cursor < 0 || st.Cursor > len(st.Order) {
		return fmt.Errorf("cursor %d out of range [0,%d]", st.Cursor, len(st.Order))
	}
	seen := make([]bool, n)
	for _, v := range st.Order {
		if v < 0 || int(v) >= n || seen[v] {
			return fmt.Errorf("selection order is not a permutation of [0,%d)", n)
		}
		seen[v] = true
	}
	for _, v := range st.WorkS {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("Step-2 worklist vertex %d out of range [0,%d)", v, n)
		}
	}
	for _, v := range st.WorkT {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("Step-3 worklist vertex %d out of range [0,%d)", v, n)
		}
	}
	if st.WorkPos < 0 {
		return fmt.Errorf("worklist position %d negative", st.WorkPos)
	}
	switch st.Phase {
	case PhaseStrong:
		if st.WorkPos > len(st.WorkS) {
			return fmt.Errorf("worklist position %d beyond Step-2 worklist (%d)", st.WorkPos, len(st.WorkS))
		}
	case PhaseWeak:
		if st.WorkPos > len(st.WorkT) {
			return fmt.Errorf("worklist position %d beyond Step-3 worklist (%d)", st.WorkPos, len(st.WorkT))
		}
	}
	if opt.EdgeMemo {
		if int64(len(st.Memo)) != g.NumArcs() {
			return fmt.Errorf("edge memo has %d entries, graph has %d arcs", len(st.Memo), g.NumArcs())
		}
		for i, m := range st.Memo {
			if m < 0 || m > 2 {
				return fmt.Errorf("edge memo entry %d value %d invalid", i, m)
			}
		}
	} else if len(st.Memo) != 0 {
		return fmt.Errorf("edge memo present but EdgeMemo disabled in options")
	}
	if len(st.PhaseTime) > int(PhaseDone)+1 {
		return fmt.Errorf("phase-time vector has %d entries, want at most %d", len(st.PhaseTime), int(PhaseDone)+1)
	}
	if st.Iterations < 0 || st.Elapsed < 0 {
		return fmt.Errorf("negative progress counters (iterations %d, elapsed %v)", st.Iterations, st.Elapsed)
	}
	return nil
}
