package core

import (
	"sync"
	"testing"

	"anyscan/internal/testutil"
)

// newIdle returns a Clusterer that has performed no steps, for direct
// state-machine testing.
func newIdle(t *testing.T, mu int) *Clusterer {
	t.Helper()
	c, err := New(testutil.Karate(), opts(mu, 0.5, 4, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMarkClaimedTransitions(t *testing.T) {
	c := newIdle(t, 3)
	v := int32(0)

	// untouched → unprocessed-border.
	c.setState(v, stateUntouched)
	c.markClaimed(v)
	if got := c.loadState(v); got != stateUnprocBorder {
		t.Fatalf("untouched claim → %s", stateName(got))
	}
	// unprocessed-noise → processed-border.
	c.setState(v, stateUnprocNoise)
	c.markClaimed(v)
	if got := c.loadState(v); got != stateProcBorder {
		t.Fatalf("unprocessed-noise claim → %s", stateName(got))
	}
	// processed-noise → processed-border.
	c.setState(v, stateProcNoise)
	c.markClaimed(v)
	if got := c.loadState(v); got != stateProcBorder {
		t.Fatalf("processed-noise claim → %s", stateName(got))
	}
	// Stronger states are untouched by claims.
	for _, s := range []vertexState{stateUnprocBorder, stateUnprocCore, stateProcBorder, stateProcCore} {
		c.setState(v, s)
		c.markClaimed(v)
		if got := c.loadState(v); got != s {
			t.Fatalf("claim changed %s → %s", stateName(s), stateName(got))
		}
	}
}

func TestBumpNeiPromotesExactlyOnceAtMu(t *testing.T) {
	mu := 4
	c := newIdle(t, mu)
	v := int32(1)
	c.setState(v, stateUnprocBorder)
	promotions := 0
	// nei starts at 1 (self); μ-1 bumps reach the threshold.
	for i := 0; i < 10; i++ {
		if c.bumpNei(v) {
			promotions++
			if i != mu-2 {
				t.Fatalf("promotion at bump %d, want %d", i, mu-2)
			}
		}
	}
	if promotions != 1 {
		t.Fatalf("promotions = %d, want exactly 1", promotions)
	}
	if got := c.loadState(v); got != stateUnprocCore {
		t.Fatalf("state after promotion = %s", stateName(got))
	}
}

func TestBumpNeiNeverPromotesProcessedStates(t *testing.T) {
	c := newIdle(t, 2)
	for i, s := range []vertexState{stateProcNoise, stateProcBorder, stateProcCore} {
		v := int32(i + 2)
		c.setState(v, s)
		c.nei[v] = 0 // next bump crosses μ=2... but processed states refuse
		for k := 0; k < 5; k++ {
			if c.bumpNei(v) {
				t.Fatalf("promotion out of %s", stateName(s))
			}
		}
		if got := c.loadState(v); got != s {
			t.Fatalf("bump changed %s → %s", stateName(s), stateName(got))
		}
	}
}

func TestConcurrentClaimsAndBumpsConverge(t *testing.T) {
	mu := 8
	c := newIdle(t, mu)
	v := int32(3)
	c.setState(v, stateUntouched)
	c.nei[v] = 1

	var wg sync.WaitGroup
	var promoted sync.Once
	promotions := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				c.markClaimed(v)
				if c.bumpNei(v) {
					promoted.Do(func() { promotions = 1 })
				}
			}
		}()
	}
	wg.Wait()
	// 32 bumps from nei=1 with μ=8: promotion must have happened exactly
	// once, and the final state must be unprocessed-core.
	if promotions != 1 {
		t.Fatalf("no promotion observed")
	}
	if got := c.loadState(v); got != stateUnprocCore {
		t.Fatalf("final state = %s", stateName(got))
	}
	if c.nei[v] != 33 {
		t.Fatalf("nei = %d, want 33", c.nei[v])
	}
}

func TestCoreCheckAgainstDefinition(t *testing.T) {
	g := testutil.Karate()
	for _, mu := range []int{2, 3, 5, 8} {
		c, err := New(g, opts(mu, 0.5, 1, 8, 8))
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			// Count ε-similar neighbors directly.
			cnt := 1
			adj, wts := g.Neighbors(v)
			for i, q := range adj {
				if c.eng.SimilarEdge(v, q, wts[i]) {
					cnt++
				}
			}
			want := cnt >= mu
			if got := c.coreCheck(0, v); got != want {
				t.Fatalf("mu=%d vertex %d: coreCheck=%v, definition=%v", mu, v, got, want)
			}
		}
	}
}
