package core

import (
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/testutil"
)

// TestSnapshotMonotonicity checks the semantic guarantees that make
// intermediate anySCAN results trustworthy for interactive use:
//
//  1. a vertex reported as a core in any snapshot is a true core of the
//     final clustering (coreness knowledge is never speculative);
//  2. a vertex once labeled never becomes unlabeled;
//  3. two vertices sharing a cluster in a snapshot share one in every later
//     snapshot (clusters only merge, never split).
func TestSnapshotMonotonicity(t *testing.T) {
	for _, tc := range testutil.RandomCases(1)[:5] {
		o := opts(tc.Mu, tc.Eps, 2, 48, 48)
		c, err := New(tc.G, o)
		if err != nil {
			t.Fatal(err)
		}
		want := cluster.Reference(tc.G, tc.Mu, tc.Eps)

		type snap struct {
			roles  []cluster.Role
			labels []int32
		}
		var history []snap
		record := func() {
			s := c.Snapshot()
			history = append(history, snap{
				roles:  append([]cluster.Role(nil), s.Roles...),
				labels: append([]int32(nil), s.Labels...),
			})
		}
		record()
		for c.Step() {
			record()
		}
		record()

		final := history[len(history)-1]
		n := tc.G.NumVertices()

		for si, s := range history {
			for v := 0; v < n; v++ {
				// (1) snapshot cores are true cores.
				if s.roles[v] == cluster.Core && want.Roles[v] != cluster.Core {
					t.Fatalf("%s: snapshot %d claims vertex %d core; reference says %v",
						tc.Name, si, v, want.Roles[v])
				}
				// (2) labels never disappear.
				if s.labels[v] != cluster.NoLabel && final.labels[v] == cluster.NoLabel {
					t.Fatalf("%s: vertex %d lost its label between snapshot %d and the end",
						tc.Name, si, v)
				}
			}
		}

		// (3) same-cluster pairs persist to the final clustering. Checking
		// all pairs is quadratic; grouping by label is linear per snapshot.
		for si, s := range history {
			firstSeen := map[int32]int32{} // snapshot label → witness vertex
			for v := 0; v < n; v++ {
				l := s.labels[v]
				if l == cluster.NoLabel {
					continue
				}
				w, ok := firstSeen[l]
				if !ok {
					firstSeen[l] = int32(v)
					continue
				}
				if final.labels[w] != final.labels[v] {
					t.Fatalf("%s: snapshot %d put %d and %d together; final separates them (%d vs %d)",
						tc.Name, si, w, v, final.labels[w], final.labels[v])
				}
			}
		}
	}
}

// TestSnapshotIsCheap guards the interactive workflow: a snapshot must not
// mutate the clusterer (two consecutive snapshots agree, and stepping
// continues normally after many snapshots).
func TestSnapshotIsIdempotent(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for c.Step() {
		a := c.Snapshot()
		b := c.Snapshot()
		for v := 0; v < a.N(); v++ {
			if a.Roles[v] != b.Roles[v] || a.Labels[v] != b.Labels[v] {
				t.Fatalf("consecutive snapshots differ at vertex %d", v)
			}
		}
	}
	if err := cluster.Validate(g, 3, 0.5, func() *cluster.Result {
		r := c.Snapshot()
		return r
	}()); err != nil {
		// Roles may be coarse without ResolveRoles — only structural
		// problems (wrong membership) should surface. Check membership via
		// the reference core partition instead.
		want := cluster.Reference(g, 3, 0.5)
		snap := c.Snapshot()
		for v := 0; v < snap.N(); v++ {
			if want.Roles[v].IsNoise() != snap.Roles[v].IsNoise() {
				t.Fatalf("membership mismatch at %d: %v", v, err)
			}
		}
	}
}
