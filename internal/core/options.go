// Package core implements anySCAN (Section III of the paper): an anytime,
// parallel, exact structural graph clustering algorithm. Vertices are
// summarized into super-nodes in blocks of α (Step 1), super-nodes sharing a
// core vertex are merged (Step 2, blocks of β), weakly-related super-nodes
// connected through similar core-core edges are merged (Step 3, blocks of
// β), and finally noise vertices are resolved into borders, hubs and
// outliers (Step 4). The algorithm can be suspended after any block to
// inspect an intermediate clustering and resumed to refine it; run to
// completion it produces the exact SCAN clustering (modulo the arbitrary
// assignment of shared border vertices).
package core

import (
	"fmt"
	"runtime"

	"anyscan/internal/simeval"
)

// Options configures a Clusterer.
type Options struct {
	// Mu is the minimum closed ε-neighborhood size for a core vertex
	// (Definition 3). The paper's default is 5.
	Mu int
	// Eps is the structural similarity threshold ε ∈ (0, 1].
	Eps float64
	// Alpha is the Step-1 block size (vertices summarized per iteration).
	// The paper's default is 8192.
	Alpha int
	// Beta is the Step-2/3 block size. The paper's default is 8192.
	Beta int
	// Threads is the number of workers for the parallel phases; 0 means
	// GOMAXPROCS, 1 runs fully sequentially (the paper's non-parallel
	// anySCAN, with no goroutine overhead).
	Threads int
	// Seed drives the random Step-1 vertex selection order. Runs with equal
	// seeds are deterministic for Threads == 1.
	Seed int64
	// Sim selects the Section III-D similarity optimizations. The zero
	// value disables them; DefaultOptions enables all, as in Section IV.
	Sim simeval.Options
	// ResolveRoles, when set, spends extra similarity work after Step 4 to
	// decide the core/border status of vertices the algorithm could prove
	// correctly clustered without a core check (pruned unprocessed-border
	// vertices). Cluster labels are exact either way; this only refines the
	// reported roles to match SCAN's exactly.
	ResolveRoles bool
	// EdgeMemo enables an extension beyond the paper: a lock-free per-edge
	// cache of σ outcomes shared across all steps and threads (4 bytes per
	// arc). anySCAN by design re-evaluates an edge from both endpoints —
	// the paper trades recomputation for zero synchronization — which costs
	// up to 2× the similarity work of pSCAN on noise-heavy graphs. The memo
	// removes that factor at the price of memory and one atomic load/store
	// per evaluation. Results are identical either way.
	EdgeMemo bool
	// Ablation disables individual design choices for the ablation study;
	// every combination still yields the exact SCAN clustering, only the
	// amount of work changes.
	Ablation Ablation
}

// Ablation toggles anySCAN design choices off, one per knob, to measure
// their contribution (the `benchrunner ablation` experiment). The zero
// value is the full algorithm.
type Ablation struct {
	// NoNeiPromotion disables the nei(q) core-count promotion: vertices
	// whose coreness is implied by their discovered ε-neighbors are no
	// longer recognized for free and must be core-checked in Steps 2-4.
	NoNeiPromotion bool
	// NoPruning disables the Step-2/3 skip of vertices whose super-nodes /
	// neighborhood already agree on one cluster; every worklist vertex is
	// core-checked.
	NoPruning bool
	// NoSorting processes the Step-2/3 worklists in natural order instead
	// of the paper's descending super-node-count / degree orders.
	NoSorting bool
}

// DefaultOptions returns the paper's Section IV defaults
// (μ=5, ε=0.5, α=β=8192, all optimizations on).
func DefaultOptions() Options {
	return Options{
		Mu:      5,
		Eps:     0.5,
		Alpha:   8192,
		Beta:    8192,
		Threads: runtime.GOMAXPROCS(0),
		Seed:    1,
		Sim:     simeval.AllOptimizations,
	}
}

func (o *Options) validate() error {
	if o.Mu < 1 {
		return fmt.Errorf("anyscan: Mu must be >= 1, got %d", o.Mu)
	}
	if !(o.Eps > 0 && o.Eps <= 1) {
		return fmt.Errorf("anyscan: Eps must be in (0, 1], got %v", o.Eps)
	}
	if o.Alpha < 1 {
		return fmt.Errorf("anyscan: Alpha must be >= 1, got %d", o.Alpha)
	}
	if o.Beta < 1 {
		return fmt.Errorf("anyscan: Beta must be >= 1, got %d", o.Beta)
	}
	if o.Threads < 0 {
		return fmt.Errorf("anyscan: Threads must be >= 0, got %d", o.Threads)
	}
	if o.Threads == 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	return nil
}

// Phase identifies the algorithm stage a Clusterer is in.
type Phase int8

// Phases, in execution order.
const (
	PhaseSummarize Phase = iota // Step 1: summarization into super-nodes
	PhaseStrong                 // Step 2: merging strongly-related super-nodes
	PhaseWeak                   // Step 3: merging weakly-related super-nodes
	PhaseBorders                // Step 4: determining border vertices
	PhaseDone                   // finished
)

func (p Phase) String() string {
	switch p {
	case PhaseSummarize:
		return "summarize"
	case PhaseStrong:
		return "strong-merge"
	case PhaseWeak:
		return "weak-merge"
	case PhaseBorders:
		return "borders"
	case PhaseDone:
		return "done"
	}
	return fmt.Sprintf("Phase(%d)", int8(p))
}
