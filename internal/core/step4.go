package core

import (
	"context"

	"anyscan/internal/par"
)

// stepBorders performs Step 4: every vertex still in a noise state is
// examined to decide whether it is actually a border of some cluster.
// Processed-noise vertices reuse their cached ε-neighborhood from Step 1;
// unprocessed-noise vertices (degree < μ, never examined) evaluate
// similarities to their neighbors. A neighbor in the unprocessed-border
// state gets an on-the-fly core check, which may redundantly repeat across
// workers — the paper accepts this to keep Step 4 free of synchronization.
//
// Cancellation: every per-vertex decision is deterministic and individually
// committed (a vertex either attaches as a border or settles as noise), so
// an interrupted pass needs no rollback — the caller keeps the phase open
// and the next call rebuilds the work list from the current states,
// re-examining only vertices the interrupted pass left in a noise state.
func (c *Clusterer) stepBorders(ctx context.Context) error {
	n := int32(len(c.state))
	work := make([]int32, 0, len(c.noise))
	for v := int32(0); v < n; v++ {
		switch c.loadState(v) {
		case stateProcNoise, stateUnprocNoise:
			work = append(work, v)
		}
	}
	return par.ForWorkerCtx(ctx, len(work), c.opt.Threads, par.Adaptive, func(w, i int) {
		p := work[i]
		if c.loadState(p) == stateProcNoise {
			// Every potential claiming core is in N^ε(p), all of whose
			// members are already similar to p.
			for _, q := range c.epsCache[p] {
				if c.tryAttach(w, p, q) {
					return
				}
			}
			return // remains processed-noise: a true hub/outlier
		}
		// Unprocessed-noise: p was never examined; check σ(p,q) lazily.
		adj, wts := c.g.Neighbors(p)
		lo, _ := c.g.NeighborRange(p)
		for j, q := range adj {
			qs := c.loadState(q)
			if !isKnownCore(qs) && qs != stateUnprocBorder {
				continue
			}
			if !c.similarArc(w, p, lo+int64(j), q, wts[j]) {
				continue
			}
			if c.tryAttach(w, p, q) {
				return
			}
		}
		c.setState(p, stateProcNoise) // examined: a true hub/outlier
	})
}

// tryAttach makes p a border of q's cluster if q is (or turns out to be) a
// core. σ(p,q) ≥ ε must already be established by the caller.
func (c *Clusterer) tryAttach(worker int, p, q int32) bool {
	switch s := c.loadState(q); {
	case isKnownCore(s):
		// q's cluster claims p.
	case s == stateUnprocBorder:
		if !c.coreCheckPromote(worker, q) {
			return false
		}
	default:
		return false // q verified non-core (or noise): cannot claim p
	}
	c.borderOf[p] = c.snOf[q][0]
	c.setState(p, stateProcBorder)
	return true
}

// coreCheckPromote core-checks the unprocessed-border vertex q and records
// the verdict in its state. Concurrent workers may check the same q; the
// verdict is deterministic, so the racing CAS transitions agree.
func (c *Clusterer) coreCheckPromote(worker int, q int32) bool {
	if c.coreCheck(worker, q) {
		c.casState(q, stateUnprocBorder, stateUnprocCore)
		return true
	}
	c.casState(q, stateUnprocBorder, stateProcBorder)
	return false
}

// resolveRoles optionally finishes the core checks anySCAN was able to skip
// (pruned unprocessed-border vertices), so the reported roles — not just the
// cluster memberships — match SCAN's exactly. Enabled by
// Options.ResolveRoles. Each promotion commits individually, so an
// interrupted pass resumes by re-collecting the still-unresolved vertices.
func (c *Clusterer) resolveRoles(ctx context.Context) error {
	n := int32(len(c.state))
	var work []int32
	for v := int32(0); v < n; v++ {
		if c.loadState(v) == stateUnprocBorder {
			work = append(work, v)
		}
	}
	return par.ForWorkerCtx(ctx, len(work), c.opt.Threads, par.Adaptive, func(w, i int) {
		c.coreCheckPromote(w, work[i])
	})
}
