package core

import (
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/scan"
)

// TestExhaustiveTinyGraphs enumerates EVERY undirected graph on five
// vertices (2^10 = 1024 edge subsets) and validates every algorithm in the
// repository against the literal reference implementation across a (μ, ε)
// grid. Exhaustive coverage of this space exercises all the awkward corner
// shapes — isolated vertices, stars, paths, near-cliques, disconnected
// unions — that random generators rarely hit.
func TestExhaustiveTinyGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration")
	}
	const n = 5
	var pairs [][2]int32
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]int32{i, j})
		}
	}
	params := []struct {
		mu  int
		eps float64
	}{
		{2, 0.5}, {3, 0.7}, {2, 0.9}, {4, 0.4},
	}
	batch := []struct {
		name string
		run  func(g *graph.CSR, mu int, eps float64) (*cluster.Result, scan.Metrics)
	}{
		{"SCAN", func(g *graph.CSR, mu int, eps float64) (*cluster.Result, scan.Metrics) {
			return scan.SCAN(g, mu, eps)
		}},
		{"SCAN-B", func(g *graph.CSR, mu int, eps float64) (*cluster.Result, scan.Metrics) {
			return scan.SCANB(g, mu, eps)
		}},
		{"pSCAN", scan.PSCAN},
		{"SCAN++", scan.SCANPP},
	}

	for mask := 0; mask < 1<<len(pairs); mask++ {
		var edges [][2]int32
		for b, p := range pairs {
			if mask&(1<<b) != 0 {
				edges = append(edges, p)
			}
		}
		g, err := graph.FromUnweightedEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range params {
			for _, a := range batch {
				res, _ := a.run(g, pr.mu, pr.eps)
				if err := cluster.Validate(g, pr.mu, pr.eps, res); err != nil {
					t.Fatalf("%s mask=%#x mu=%d eps=%v: %v", a.name, mask, pr.mu, pr.eps, err)
				}
			}
			for _, threads := range []int{1, 3} {
				o := opts(pr.mu, pr.eps, threads, 2, 2)
				o.ResolveRoles = true
				res, _, err := Cluster(g, o)
				if err != nil {
					t.Fatal(err)
				}
				if err := cluster.Validate(g, pr.mu, pr.eps, res); err != nil {
					t.Fatalf("anySCAN mask=%#x mu=%d eps=%v threads=%d: %v", mask, pr.mu, pr.eps, threads, err)
				}
			}
			pres, _ := scan.ParallelSCAN(g, pr.mu, pr.eps, 2)
			if err := cluster.Validate(g, pr.mu, pr.eps, pres); err != nil {
				t.Fatalf("ParallelSCAN mask=%#x mu=%d eps=%v: %v", mask, pr.mu, pr.eps, err)
			}
		}
	}
}
