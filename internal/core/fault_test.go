package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"anyscan/internal/faultinject"
	"anyscan/internal/graph"
	"anyscan/internal/testutil"
)

// checkpointBytes runs a few steps on g and returns a valid checkpoint.
func checkpointBytes(t *testing.T, g *graph.CSR, o Options, steps int) []byte {
	t.Helper()
	c, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps && c.Step(); i++ {
	}
	var buf bytes.Buffer
	if err := c.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointCorruptionTable proves that byte-level damage anywhere in a
// checkpoint — truncation, header bit flips, payload bit flips — yields a
// returned error from LoadCheckpoint: never a panic, never a silently
// corrupted resumed run.
func TestCheckpointCorruptionTable(t *testing.T) {
	g := testutil.Karate()
	o := opts(3, 0.5, 1, 8, 8)
	valid := checkpointBytes(t, g, o, 2)
	if _, err := LoadCheckpoint(g, bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	t.Run("truncation", func(t *testing.T) {
		cuts := []int{0, 1, 4, 8, 16, 19, 20, 21, len(valid) / 2, len(valid) - 1}
		for _, cut := range cuts {
			r := &faultinject.TruncatingReader{R: bytes.NewReader(valid), Limit: int64(cut)}
			if _, err := LoadCheckpoint(g, r); err == nil {
				t.Errorf("checkpoint truncated to %d/%d bytes was accepted", cut, len(valid))
			}
		}
	})

	t.Run("header-bit-flips", func(t *testing.T) {
		for off := 0; off < 20; off++ {
			for _, mask := range []byte{0x01, 0x80} {
				r := &faultinject.BitFlipReader{R: bytes.NewReader(valid), Offset: int64(off), Mask: mask}
				if _, err := LoadCheckpoint(g, r); err == nil {
					t.Errorf("bit flip at header offset %d (mask %#x) was accepted", off, mask)
				}
			}
		}
	})

	t.Run("payload-bit-flips", func(t *testing.T) {
		for off := 20; off < len(valid); off += 37 {
			r := &faultinject.BitFlipReader{R: bytes.NewReader(valid), Offset: int64(off), Mask: 0x10}
			if _, err := LoadCheckpoint(g, r); err == nil {
				t.Errorf("bit flip at payload offset %d was accepted", off)
			}
		}
	})

	t.Run("empty", func(t *testing.T) {
		if _, err := LoadCheckpoint(g, bytes.NewReader(nil)); err == nil {
			t.Error("empty checkpoint accepted")
		}
	})
}

// reframe gob-encodes st into a correctly framed (checksum-valid)
// checkpoint, bypassing SaveCheckpoint — the tool for forging semantically
// invalid but bytewise intact checkpoints.
func reframe(t *testing.T, st checkpointState) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&st); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := checkpointKind.Write(&out, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestCheckpointRejectsSemanticCorruption forges checkpoints whose frame and
// checksum are valid but whose payload carries out-of-range indices — the
// kind a buggy or malicious writer could produce. Every one must be rejected
// by the bounds validation; without it, each would either panic the resumed
// run with an index error or silently poison the clustering.
func TestCheckpointRejectsSemanticCorruption(t *testing.T) {
	g := testutil.Karate()
	n := int32(g.NumVertices())

	cases := []struct {
		name string
		opt  func(*Options)
		mut  func(*checkpointState)
	}{
		{name: "payload-version", mut: func(st *checkpointState) { st.Version = 1 }},
		{name: "phase-out-of-range", mut: func(st *checkpointState) { st.Phase = 99 }},
		{name: "state-array-short", mut: func(st *checkpointState) { st.State = st.State[:1] }},
		{name: "state-value-invalid", mut: func(st *checkpointState) { st.State[3] = 42 }},
		{name: "nei-negative", mut: func(st *checkpointState) { st.Nei[0] = -7 }},
		{name: "nei-oversized", mut: func(st *checkpointState) { st.Nei[0] = n + 1 }},
		{name: "snrep-out-of-range", mut: func(st *checkpointState) { st.SnRep = append(st.SnRep, n+5) }},
		{name: "snrep-parent-mismatch", mut: func(st *checkpointState) { st.DSParent = st.DSParent[:0] }},
		{name: "ds-parent-out-of-range", mut: func(st *checkpointState) {
			if len(st.DSParent) == 0 {
				t.Skip("no super-nodes yet")
			}
			st.DSParent[0] = int32(len(st.DSParent)) + 3
		}},
		{name: "ds-sets-implausible", mut: func(st *checkpointState) { st.DSSets = len(st.DSParent) + 1 }},
		{name: "snof-out-of-range", mut: func(st *checkpointState) {
			st.SnOf[0] = append(st.SnOf[0], int32(len(st.SnRep))+2)
		}},
		{name: "borderof-out-of-range", mut: func(st *checkpointState) { st.BorderOf[2] = int32(len(st.SnRep)) + 9 }},
		{name: "borderof-below-minus-one", mut: func(st *checkpointState) { st.BorderOf[2] = -2 }},
		{name: "noise-out-of-range", mut: func(st *checkpointState) { st.Noise = append(st.Noise, n) }},
		{name: "epscache-out-of-range", mut: func(st *checkpointState) {
			st.EpsCache[1] = []int32{n + 3}
		}},
		{name: "order-duplicate", mut: func(st *checkpointState) { st.Order[1] = st.Order[0] }},
		{name: "order-out-of-range", mut: func(st *checkpointState) { st.Order[0] = -1 }},
		{name: "cursor-out-of-range", mut: func(st *checkpointState) { st.Cursor = len(st.Order) + 1 }},
		{name: "cursor-negative", mut: func(st *checkpointState) { st.Cursor = -1 }},
		{name: "works-out-of-range", mut: func(st *checkpointState) {
			st.Phase = PhaseStrong
			st.WorkS = []int32{n + 1}
			st.WorkPos = 0
		}},
		{name: "workpos-beyond-worklist", mut: func(st *checkpointState) {
			st.Phase = PhaseStrong
			st.WorkS = st.WorkS[:0]
			st.WorkPos = 5
		}},
		{name: "workt-out-of-range", mut: func(st *checkpointState) {
			st.Phase = PhaseWeak
			st.WorkT = []int32{-3}
			st.WorkPos = 0
		}},
		{name: "memo-wrong-length", opt: func(o *Options) { o.EdgeMemo = true },
			mut: func(st *checkpointState) { st.Memo = st.Memo[:len(st.Memo)-1] }},
		{name: "memo-bad-value", opt: func(o *Options) { o.EdgeMemo = true },
			mut: func(st *checkpointState) { st.Memo[0] = 7 }},
		{name: "memo-without-option", mut: func(st *checkpointState) { st.Memo = make([]int32, 4) }},
		{name: "options-invalid", mut: func(st *checkpointState) { st.Opt.Eps = 2.5 }},
		{name: "iterations-negative", mut: func(st *checkpointState) { st.Iterations = -1 }},
		{name: "phasetime-overlong", mut: func(st *checkpointState) {
			st.PhaseTime = append(st.PhaseTime, st.PhaseTime...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := opts(3, 0.5, 1, 8, 8)
			if tc.opt != nil {
				tc.opt(&o)
			}
			c, err := New(g, o)
			if err != nil {
				t.Fatal(err)
			}
			c.Step()
			c.Step()
			st := c.checkpointSnapshot()
			tc.mut(&st)
			forged := reframe(t, st)
			loaded, err := LoadCheckpoint(g, bytes.NewReader(forged))
			if err == nil {
				// Not just an error: make sure acceptance would have been
				// exploitable before failing, for a readable message.
				t.Fatalf("semantically corrupt checkpoint accepted (phase %v)", loaded.Phase())
			}
		})
	}
}

// TestCheckpointSemanticValidationEnablesSafeResume is the positive control
// for the table above: an unmutated reframed snapshot loads and finishes
// identically to the original run.
func TestCheckpointSemanticValidationEnablesSafeResume(t *testing.T) {
	g := testutil.Karate()
	o := opts(3, 0.5, 1, 8, 8)
	c, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	c.Step()
	forged := reframe(t, c.checkpointSnapshot())
	resumed, err := LoadCheckpoint(g, bytes.NewReader(forged))
	if err != nil {
		t.Fatal(err)
	}
	for c.Step() {
	}
	for resumed.Step() {
	}
	want, got := c.Snapshot(), resumed.Snapshot()
	for v := 0; v < got.N(); v++ {
		if got.Labels[v] != want.Labels[v] || got.Roles[v] != want.Roles[v] {
			t.Fatalf("vertex %d differs after reframed resume", v)
		}
	}
}

// TestSaveCheckpointWriterFaults drives SaveCheckpoint into writers that
// fail or short-write at every interesting byte budget; each must surface as
// a returned error.
func TestSaveCheckpointWriterFaults(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	var full bytes.Buffer
	if err := c.SaveCheckpoint(&full); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1, 19, 20, 21, int64(full.Len()) / 2, int64(full.Len()) - 1} {
		fw := &faultinject.FailingWriter{W: io.Discard, FailAfter: budget}
		if err := c.SaveCheckpoint(fw); err == nil {
			t.Errorf("write failure after %d bytes not reported", budget)
		}
		sw := &faultinject.ShortWriter{W: io.Discard, Budget: budget}
		if err := c.SaveCheckpoint(sw); err == nil {
			t.Errorf("short write after %d bytes not reported", budget)
		}
	}
}

// TestSaveCheckpointFileAtomic proves the crash-safety contract of
// SaveCheckpointFile: a fault injected at any stage of the save — payload
// write, fsync, or the instant before the rename — fails the save with a
// clean error, leaves no temp litter, and leaves the previous checkpoint
// byte-for-byte loadable.
func TestSaveCheckpointFileAtomic(t *testing.T) {
	defer faultinject.Reset()
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.Step()

	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := c.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	c.Step() // advance so a successful overwrite would change the file

	for _, point := range []string{"checkpoint.write", "checkpoint.sync", "checkpoint.rename"} {
		faultinject.Arm(point, 1, nil)
		err := c.SaveCheckpointFile(path)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want injected fault", point, err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: previous checkpoint destroyed: %v", point, err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("%s: previous checkpoint modified by failed save", point)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("%s: temp litter left behind: %v", point, names)
		}
		if _, err := LoadCheckpointFile(g, path); err != nil {
			t.Fatalf("%s: previous checkpoint no longer loads: %v", point, err)
		}
	}

	// With faults disarmed the save succeeds and the new state loads.
	if err := c.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadCheckpointFile(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Metrics().Iterations != c.Metrics().Iterations {
		t.Fatal("overwritten checkpoint does not carry the new state")
	}
}

// TestCheckpointFileResumeEquivalence round-trips through the atomic file
// helpers at every phase of a run and asserts the resumed clustering is
// identical to the uninterrupted one.
func TestCheckpointFileResumeEquivalence(t *testing.T) {
	tc := testutil.RandomCases(1)[3] // planted partition
	o := opts(tc.Mu, tc.Eps, 2, 32, 32)
	want, _ := mustCluster(t, tc.G, o)
	dir := t.TempDir()

	for _, stopAfter := range []int{1, 4, 9, 30} {
		c, err := New(tc.G, o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < stopAfter && c.Step(); i++ {
		}
		path := filepath.Join(dir, fmt.Sprintf("stop%d.ckpt", stopAfter))
		if err := c.SaveCheckpointFile(path); err != nil {
			t.Fatal(err)
		}
		resumed, err := LoadCheckpointFile(tc.G, path)
		if err != nil {
			t.Fatal(err)
		}
		for resumed.Step() {
		}
		got := resumed.Snapshot()
		for v := 0; v < got.N(); v++ {
			if got.Labels[v] != want.Labels[v] || got.Roles[v] != want.Roles[v] {
				t.Fatalf("stop=%d: vertex %d differs after file resume", stopAfter, v)
			}
		}
	}
}
