package core

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/testutil"
)

// countdownCtx is a context.Context whose Err starts returning
// context.Canceled after the budget-th poll. The parallel-for loops poll
// ctx between chunks, so this deterministically triggers cancellation in
// the middle of a block — something a timer-based context cannot do
// reproducibly.
type countdownCtx struct {
	budget int64
	polls  atomic.Int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.polls.Add(1) > c.budget {
		return context.Canceled
	}
	return nil
}

func assertSameClustering(t *testing.T, label string, want, got *cluster.Result) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("%s: size mismatch", label)
	}
	for v := 0; v < got.N(); v++ {
		if got.Labels[v] != want.Labels[v] || got.Roles[v] != want.Roles[v] {
			t.Fatalf("%s: vertex %d differs (label %d/%d role %v/%v)",
				label, v, got.Labels[v], want.Labels[v], got.Roles[v], want.Roles[v])
		}
	}
}

// TestRunCanceledReturnsPartialAndResumes checks the between/inside-block
// cancellation contract of Run: a canceled run returns the context error
// with a consistent partial result, and simply calling Run again finishes
// the exact uninterrupted clustering.
func TestRunCanceledReturnsPartialAndResumes(t *testing.T) {
	tc := testutil.RandomCases(1)[4]
	o := opts(tc.Mu, tc.Eps, 2, 32, 32)
	want, _ := mustCluster(t, tc.G, o)

	c, err := New(tc.G, o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := c.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("canceled Run returned no partial result")
	}
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSameClustering(t, "resume after canceled Run", want, got)
}

// TestStepCtxMidBlockCancellationIsConsistent interrupts runs at many
// in-block points (every poll budget exercises a different cut through the
// parallel phases), then finishes each interrupted run and asserts the
// clustering is identical to the uninterrupted one. This is the core
// guarantee: cancellation can land anywhere without corrupting state.
func TestStepCtxMidBlockCancellationIsConsistent(t *testing.T) {
	tc := testutil.RandomCases(1)[3] // planted partition
	for _, threads := range []int{1, 4} {
		for _, memo := range []bool{false, true} {
			o := opts(tc.Mu, tc.Eps, threads, 16, 16)
			o.EdgeMemo = memo
			o.ResolveRoles = true
			want, _ := mustCluster(t, tc.G, o)

			for _, budget := range []int64{0, 1, 2, 3, 5, 8, 13, 21, 50, 200} {
				c, err := New(tc.G, o)
				if err != nil {
					t.Fatal(err)
				}
				interruptions := 0
				cd := &countdownCtx{budget: budget}
				for {
					more, err := c.StepCtx(cd)
					if err != nil {
						interruptions++
						// Escalate the budget geometrically so the run is
						// guaranteed to eventually get through the block it
						// was cut in, whatever its poll count.
						cd = &countdownCtx{budget: cd.budget*2 + 7}
						continue
					}
					if !more {
						break
					}
				}
				if budget < 3 && interruptions == 0 {
					t.Fatalf("threads=%d budget=%d: expected at least one interruption", threads, budget)
				}
				assertSameClustering(t, "mid-block cancellation", want, c.Snapshot())
			}
		}
	}
}

// TestCheckpointAfterMidBlockCancellation saves a checkpoint right after an
// in-block interruption, reloads it, and finishes: the canceled state must
// be both checkpointable and exactly resumable — the crash-safe version of
// the anytime suspend.
func TestCheckpointAfterMidBlockCancellation(t *testing.T) {
	tc := testutil.RandomCases(1)[4] // planted weighted
	o := opts(tc.Mu, tc.Eps, 2, 24, 24)
	want, _ := mustCluster(t, tc.G, o)

	for _, budget := range []int64{1, 4, 16, 64, 256} {
		c, err := New(tc.G, o)
		if err != nil {
			t.Fatal(err)
		}
		cd := &countdownCtx{budget: budget}
		sawInterrupt := false
		for {
			more, err := c.StepCtx(cd)
			if err != nil {
				sawInterrupt = true
				var buf bytes.Buffer
				if err := c.SaveCheckpoint(&buf); err != nil {
					t.Fatalf("budget=%d: checkpoint after cancellation: %v", budget, err)
				}
				resumed, err := LoadCheckpoint(tc.G, &buf)
				if err != nil {
					t.Fatalf("budget=%d: reload after cancellation: %v", budget, err)
				}
				c = resumed // continue from the reloaded state
				// Escalate geometrically: a fixed retry budget can loop
				// forever if one step polls more often than it allows.
				cd = &countdownCtx{budget: cd.budget*2 + 7}
				continue
			}
			if !more {
				break
			}
		}
		if !sawInterrupt && budget <= 16 {
			t.Fatalf("budget=%d: run finished without any interruption", budget)
		}
		assertSameClustering(t, "checkpoint after cancellation", want, c.Snapshot())
	}
}

// TestStepCtxNilBehavesLikeStep pins the compatibility contract: a nil ctx
// must never report an error and must finish the run exactly like Step.
func TestStepCtxNilBehavesLikeStep(t *testing.T) {
	g := testutil.Karate()
	o := opts(3, 0.5, 2, 8, 8)
	want, _ := mustCluster(t, g, o)
	c, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for {
		more, err := c.StepCtx(nil)
		if err != nil {
			t.Fatalf("nil ctx reported error: %v", err)
		}
		if !more {
			break
		}
	}
	assertSameClustering(t, "nil ctx", want, c.Snapshot())
}

// TestInterruptedIterationNotCounted: an interrupted StepCtx must not
// advance the iteration counter (the block did not commit).
func TestInterruptedIterationNotCounted(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 2, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.StepCtx(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if it := c.Metrics().Iterations; it != 0 {
		t.Fatalf("interrupted step counted as iteration (%d)", it)
	}
	if !c.Step() {
		t.Fatal("run ended prematurely after interrupted step")
	}
	if it := c.Metrics().Iterations; it != 1 {
		t.Fatalf("iterations = %d after one committed step", it)
	}
}
