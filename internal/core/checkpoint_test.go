package core

import (
	"bytes"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/testutil"
)

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	tc := testutil.RandomCases(1)[4] // planted weighted
	for _, withMemo := range []bool{false, true} {
		o := opts(tc.Mu, tc.Eps, 2, 32, 32)
		o.EdgeMemo = withMemo
		want, _ := mustCluster(t, tc.G, o)

		// Suspend at several different points of the run (covering every
		// phase), checkpoint, reload, finish, compare.
		for _, stopAfter := range []int{1, 3, 6, 10, 25, 100} {
			c, err := New(tc.G, o)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < stopAfter && c.Step(); i++ {
			}
			var buf bytes.Buffer
			if err := c.SaveCheckpoint(&buf); err != nil {
				t.Fatalf("save after %d: %v", stopAfter, err)
			}
			resumed, err := LoadCheckpoint(tc.G, &buf)
			if err != nil {
				t.Fatalf("load after %d: %v", stopAfter, err)
			}
			if resumed.Phase() != c.Phase() {
				t.Fatalf("phase not restored: %v vs %v", resumed.Phase(), c.Phase())
			}
			for resumed.Step() {
			}
			got := resumed.Snapshot()
			for v := 0; v < got.N(); v++ {
				if got.Labels[v] != want.Labels[v] || got.Roles[v] != want.Roles[v] {
					t.Fatalf("memo=%v stop=%d: vertex %d differs after resume", withMemo, stopAfter, v)
				}
			}
		}
	}
}

func TestCheckpointMetricsSurvive(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	c.Step()
	before := c.Metrics()
	var buf bytes.Buffer
	if err := c.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadCheckpoint(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	after := resumed.Metrics()
	if after.Sim.Sims != before.Sim.Sims || after.Iterations != before.Iterations ||
		after.SuperNodes != before.SuperNodes || after.Elapsed != before.Elapsed {
		t.Fatalf("metrics not restored: %+v vs %+v", after, before)
	}
}

func TestCheckpointRejectsWrongGraph(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	var buf bytes.Buffer
	if err := c.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := testutil.TwoTriangles()
	if _, err := LoadCheckpoint(other, &buf); err == nil {
		t.Fatal("checkpoint accepted for a different graph")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	g := testutil.Karate()
	if _, err := LoadCheckpoint(g, bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCheckpointOfFinishedRun(t *testing.T) {
	g := testutil.Karate()
	c, err := New(g, opts(3, 0.5, 1, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	for c.Step() {
	}
	var buf bytes.Buffer
	if err := c.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadCheckpoint(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Done() {
		t.Fatal("finished run resumed as unfinished")
	}
	if err := cluster.Equivalent(c.Snapshot(), resumed.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
