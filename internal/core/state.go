package core

import "sync/atomic"

// vertexState is the Fig. 3 vertex state. All accesses go through atomic
// operations because Step-1 phase 2 and Step 4 mutate states from multiple
// workers.
type vertexState = int32

// Vertex states (Fig. 3). "Processed" means the vertex's full
// ε-neighborhood has been materialized (or its noise status verified);
// "unprocessed" vertices have inferred knowledge only.
const (
	stateUntouched    vertexState = iota // nothing known
	stateUnprocNoise                     // |Γ(v)| < μ: can never be a core
	stateUnprocBorder                    // claimed by ≥1 super-node, coreness unknown
	stateUnprocCore                      // known core (nei ≥ μ or core check), not summarized
	stateProcNoise                       // examined, not core, in no cluster (yet)
	stateProcBorder                      // verified non-core, member of a cluster
	stateProcCore                        // examined core, representative of a super-node
)

func stateName(s vertexState) string {
	switch s {
	case stateUntouched:
		return "untouched"
	case stateUnprocNoise:
		return "unprocessed-noise"
	case stateUnprocBorder:
		return "unprocessed-border"
	case stateUnprocCore:
		return "unprocessed-core"
	case stateProcNoise:
		return "processed-noise"
	case stateProcBorder:
		return "processed-border"
	case stateProcCore:
		return "processed-core"
	}
	return "invalid"
}

// validTransition encodes the Fig. 3 lattice; used by tests and debug
// assertions to check that no illegal transition ever happens.
func validTransition(from, to vertexState) bool {
	if from == to {
		return true
	}
	switch from {
	case stateUntouched:
		return to == stateUnprocNoise || to == stateUnprocBorder ||
			to == stateUnprocCore || to == stateProcNoise || to == stateProcCore
	case stateUnprocNoise:
		return to == stateProcBorder || to == stateProcNoise
	case stateUnprocBorder:
		return to == stateUnprocCore || to == stateProcBorder || to == stateProcCore
	case stateUnprocCore:
		return to == stateProcCore
	case stateProcNoise:
		return to == stateProcBorder
	}
	// processed-border and processed-core are terminal.
	return false
}

func (c *Clusterer) loadState(v int32) vertexState {
	return atomic.LoadInt32(&c.state[v])
}

func (c *Clusterer) setState(v int32, s vertexState) {
	atomic.StoreInt32(&c.state[v], s)
}

func (c *Clusterer) casState(v int32, old, new vertexState) bool {
	return atomic.CompareAndSwapInt32(&c.state[v], old, new)
}

// isKnownCore reports whether s marks a vertex whose coreness is proven.
func isKnownCore(s vertexState) bool {
	return s == stateUnprocCore || s == stateProcCore
}

// markClaimed applies the "q is an ε-neighbor of a core" transition:
// untouched → unprocessed-border, either noise state → processed-border.
// States already at or beyond border level are left alone.
func (c *Clusterer) markClaimed(q int32) {
	for {
		s := c.loadState(q)
		var t vertexState
		switch s {
		case stateUntouched:
			t = stateUnprocBorder
		case stateUnprocNoise, stateProcNoise:
			t = stateProcBorder
		default:
			return
		}
		if c.casState(q, s, t) {
			return
		}
	}
}

// bumpNei atomically increments nei(q) (the count of discovered ε-neighbors
// including self) and, when the count reaches μ, promotes q to
// unprocessed-core (from untouched or unprocessed-border). Returns true when
// this call performed the promotion, so the caller can schedule the
// Lemma 2 union of q's super-nodes.
func (c *Clusterer) bumpNei(q int32) bool {
	n := atomic.AddInt32(&c.nei[q], 1)
	if c.opt.Ablation.NoNeiPromotion {
		return false
	}
	if n != int32(c.opt.Mu) {
		// Only the increment that crosses the threshold may promote: earlier
		// ones are below μ, later ones find the state already promoted (or
		// the vertex was processed, which caps nei below μ).
		return false
	}
	for {
		s := c.loadState(q)
		if s != stateUntouched && s != stateUnprocBorder {
			return false
		}
		if c.casState(q, s, stateUnprocCore) {
			return true
		}
	}
}
