package core

import (
	"context"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// Clusterer is an anySCAN run over one graph. Create it with New, then
// either call Run for batch execution or drive it iteratively with Step and
// inspect intermediate clusterings with Snapshot — the anytime interface.
//
// A Clusterer is not safe for concurrent method calls; its *internals*
// parallelize each block across Options.Threads workers.
type Clusterer struct {
	g   *graph.CSR
	opt Options
	eng *simeval.Engine

	state []int32 // vertexState, atomic access
	nei   []int32 // discovered ε-neighbors incl. self, atomic access

	snOf     [][]int32             // super-node ids containing each vertex (SN_q)
	snRep    []int32               // representative vertex per super-node
	ds       *unionfind.Concurrent // lock-free label forest over super-node ids
	borderOf []int32               // Step 4: claiming super-node per former noise vertex (-1 otherwise)

	noise    []int32   // noise list L (vertices examined as non-core in Step 1)
	epsCache [][]int32 // cached N^ε for entries of L

	// Optional per-edge similarity memo (Options.EdgeMemo): 0 unknown,
	// 1 similar, 2 dissimilar, atomic access. rev maps each arc to its
	// reverse so one evaluation serves both endpoints.
	memo []int32
	rev  []int64

	order  []int32 // shuffled Step-1 selection order
	cursor int

	phase   Phase
	workS   []int32 // Step-2 worklist (sorted)
	workT   []int32 // Step-3 worklist (sorted)
	workPos int

	// Per-block scratch, reused across iterations to avoid GC churn.
	blockVerts []int32
	blockEps   [][]int32
	blockCore  []bool
	blockSkip  []bool
	promoted   [][]int32 // per-worker promotion buffers (Step 1)

	unionsSeq    int64        // unions performed in Step 1 (sequential part)
	unionsStep23 atomic.Int64 // unions performed in Steps 2-3 (lock-free, inside the parallel loops)

	// workerArcs[w] counts adjacency arcs processed by worker w in the
	// parallel phases — a hardware-independent load-balance measure (the
	// paper attributes its GR02/GR03 scalability loss to skewed degrees).
	workerArcs []int64

	iterations int
	elapsed    time.Duration
	phaseTime  [PhaseDone + 1]time.Duration
}

// Metrics reports the cumulative work of a run in the units the paper plots.
type Metrics struct {
	Sim          simeval.CounterValues
	UnionsSeq    int64 // Step-1 unions (sequential sub-phase)
	UnionsStep23 int64 // Step-2/3 unions (performed lock-free inside the parallel loops)
	// Finds is 0 when the run uses the lock-free union-find, which does not
	// count finds (a shared counter would reintroduce the contended cache
	// line the structure removes).
	Finds      int64
	SuperNodes int
	Iterations int
	Elapsed    time.Duration
	// WorkerArcs is the number of adjacency arcs each worker processed in
	// the parallel phases; its spread measures load balance independently
	// of the host's physical core count.
	WorkerArcs []int64
}

// LoadImbalance returns max(WorkerArcs)/mean(WorkerArcs), the paper's
// load-balancing concern quantified (1.0 = perfectly balanced).
func (m Metrics) LoadImbalance() float64 {
	if len(m.WorkerArcs) == 0 {
		return 1
	}
	var sum, max int64
	for _, a := range m.WorkerArcs {
		sum += a
		if a > max {
			max = a
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(m.WorkerArcs))
	return float64(max) / mean
}

// Unions returns the total number of merging Union operations (Fig. 12).
func (m Metrics) Unions() int64 { return m.UnionsSeq + m.UnionsStep23 }

// Progress describes where an anytime run currently stands. It is the
// read-only status surface consumed by the interactive CLI and the anyscand
// job-status endpoint; Metrics carries the full work counters.
type Progress struct {
	Phase      Phase
	Iterations int           // blocks completed so far, across all phases
	Elapsed    time.Duration // cumulative time inside Step calls
	SuperNodes int
	Vertices   int   // total vertices in the graph
	Touched    int   // vertices no longer untouched (Step 1 coverage proxy)
	Sims       int64 // structural similarity evaluations performed so far
	Done       bool  // the run has completed (Phase == PhaseDone)
}

// New prepares an anySCAN run of g with the given options. The graph is not
// modified and may be shared between concurrent Clusterers.
func New(g *graph.CSR, opt Options) (*Clusterer, error) {
	if err := (&opt).validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	c := &Clusterer{
		g:        g,
		opt:      opt,
		eng:      simeval.New(g, opt.Eps, opt.Sim),
		state:    make([]int32, n),
		nei:      make([]int32, n),
		snOf:     make([][]int32, n),
		ds:       unionfind.NewConcurrent(0),
		borderOf: make([]int32, n),
		epsCache: make([][]int32, n),
		order:    make([]int32, n),
		phase:    PhaseSummarize,
	}
	for v := 0; v < n; v++ {
		c.nei[v] = 1 // closed neighborhood: σ(v,v)=1 always counts
		c.borderOf[v] = -1
		c.order[v] = int32(v)
		// |Γ(v)| < μ ⇒ v can never be a core (Fig. 3: untouched →
		// unprocessed-noise without any similarity work).
		if g.Degree(int32(v))+1 < opt.Mu {
			c.state[v] = stateUnprocNoise
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	rng.Shuffle(n, func(i, j int) { c.order[i], c.order[j] = c.order[j], c.order[i] })

	if opt.EdgeMemo {
		c.memo = make([]int32, g.NumArcs())
		c.rev = g.ReverseEdgeIndex()
	}

	workers := opt.Threads
	c.promoted = make([][]int32, workers)
	c.workerArcs = make([]int64, workers)
	return c, nil
}

// Graph returns the graph being clustered.
func (c *Clusterer) Graph() *graph.CSR { return c.g }

// Options returns the effective options of the run.
func (c *Clusterer) Options() Options { return c.opt }

// Phase returns the current algorithm phase.
func (c *Clusterer) Phase() Phase { return c.phase }

// Done reports whether the run has completed.
func (c *Clusterer) Done() bool { return c.phase == PhaseDone }

// Progress returns a snapshot of the run's position.
func (c *Clusterer) Progress() Progress {
	touched := 0
	for v := range c.state {
		if c.loadState(int32(v)) != stateUntouched {
			touched++
		}
	}
	return Progress{
		Phase:      c.phase,
		Iterations: c.iterations,
		Elapsed:    c.elapsed,
		SuperNodes: len(c.snRep),
		Vertices:   len(c.state),
		Touched:    touched,
		Sims:       c.eng.C.Snapshot().Sims,
		Done:       c.phase == PhaseDone,
	}
}

// Metrics returns the cumulative work counters.
func (c *Clusterer) Metrics() Metrics {
	return Metrics{
		Sim:          c.eng.C.Snapshot(),
		UnionsSeq:    c.unionsSeq,
		UnionsStep23: c.unionsStep23.Load(),
		Finds:        c.ds.Finds(),
		SuperNodes:   len(c.snRep),
		Iterations:   c.iterations,
		Elapsed:      c.elapsed,
		WorkerArcs:   append([]int64(nil), c.workerArcs...),
	}
}

// Step executes one anytime iteration — one block of α vertices in Step 1,
// one block of β vertices in Steps 2/3, or the whole of Step 4 — and returns
// false once the algorithm has finished. Between Step calls the Clusterer is
// quiescent: Snapshot may be called, and the caller may simply stop calling
// Step to "suspend" the run.
func (c *Clusterer) Step() bool {
	more, _ := c.StepCtx(nil)
	return more
}

// StepCtx is Step with cooperative cancellation that reaches *inside* the
// block: the expensive parallel sub-phases poll ctx between work chunks, so
// even a single enormous block can be interrupted promptly. When ctx fires
// mid-block the interrupted sub-phase is either rolled back (Step 1's range
// queries, whose partial per-vertex marks are reverted) or left in a state
// the re-run reproduces idempotently (Steps 2–4), the block is put back on
// its worklist, and ctx.Err() is returned. The Clusterer is always
// consistent afterwards: Snapshot, SaveCheckpoint and further Step/StepCtx
// calls all remain valid, so an interrupted run loses at most one block of
// work. A nil ctx disables polling and is equivalent to Step.
//
// The returned bool mirrors Step (false once the run has finished); an
// interrupted call reports the iteration as not completed, leaving
// Metrics().Iterations unchanged.
func (c *Clusterer) StepCtx(ctx context.Context) (bool, error) {
	if c.phase == PhaseDone {
		return false, nil
	}
	start := time.Now()
	phase := c.phase
	var err error
	switch phase {
	case PhaseSummarize:
		var more bool
		more, err = c.stepSummarize(ctx)
		if err == nil && !more {
			c.beginStrong()
		}
	case PhaseStrong:
		var more bool
		more, err = c.stepStrong(ctx)
		if err == nil && !more {
			c.beginWeak()
		}
	case PhaseWeak:
		var more bool
		more, err = c.stepWeak(ctx)
		if err == nil && !more {
			c.phase = PhaseBorders
		}
	case PhaseBorders:
		err = c.stepBorders(ctx)
		if err == nil && c.opt.ResolveRoles {
			err = c.resolveRoles(ctx)
		}
		if err == nil {
			c.phase = PhaseDone
		}
	}
	d := time.Since(start)
	c.elapsed += d
	c.phaseTime[phase] += d
	if err == nil {
		c.iterations++
	}
	return c.phase != PhaseDone, err
}

// Run drives StepCtx to completion. If ctx is canceled — even in the middle
// of a large block — the partial best-so-far clustering is returned along
// with ctx's error, and the Clusterer remains inspectable, checkpointable
// and resumable.
func (c *Clusterer) Run(ctx context.Context) (*cluster.Result, error) {
	for {
		more, err := c.StepCtx(ctx)
		if err != nil {
			return c.Snapshot(), err
		}
		if !more {
			return c.Snapshot(), nil
		}
	}
}

// PhaseDurations returns cumulative time spent per phase.
func (c *Clusterer) PhaseDurations() map[Phase]time.Duration {
	m := make(map[Phase]time.Duration, 4)
	for p := PhaseSummarize; p < PhaseDone; p++ {
		if c.phaseTime[p] > 0 {
			m[p] = c.phaseTime[p]
		}
	}
	return m
}

// Cluster runs anySCAN to completion in one call and returns the final
// clustering and its work metrics.
func Cluster(g *graph.CSR, opt Options) (*cluster.Result, Metrics, error) {
	c, err := New(g, opt)
	if err != nil {
		return nil, Metrics{}, err
	}
	for c.Step() {
	}
	return c.Snapshot(), c.Metrics(), nil
}

// beginStrong builds the Step-2 worklist S: unprocessed-border vertices in
// at least two super-nodes, sorted by descending super-node count so that
// vertices merging many super-nodes are examined first (Fig. 2 line 21).
func (c *Clusterer) beginStrong() {
	c.phase = PhaseStrong
	c.workS = c.workS[:0]
	for v := int32(0); v < int32(len(c.state)); v++ {
		if c.loadState(v) == stateUnprocBorder && len(c.snOf[v]) >= 2 {
			c.workS = append(c.workS, v)
		}
	}
	if !c.opt.Ablation.NoSorting {
		sort.Slice(c.workS, func(i, j int) bool {
			return len(c.snOf[c.workS[i]]) > len(c.snOf[c.workS[j]])
		})
	}
	c.workPos = 0
}

// beginWeak builds the Step-3 worklist T: unprocessed-border,
// unprocessed-core and processed-core vertices, sorted by descending degree
// (Fig. 2 line 36): high-degree vertices connect more super-nodes, so
// examining them early saves core checks on later vertices.
func (c *Clusterer) beginWeak() {
	c.phase = PhaseWeak
	c.workT = c.workT[:0]
	for v := int32(0); v < int32(len(c.state)); v++ {
		switch c.loadState(v) {
		case stateUnprocBorder, stateUnprocCore, stateProcCore:
			c.workT = append(c.workT, v)
		}
	}
	if !c.opt.Ablation.NoSorting {
		sort.Slice(c.workT, func(i, j int) bool {
			return c.g.Degree(c.workT[i]) > c.g.Degree(c.workT[j])
		})
	}
	c.workPos = 0
}

// coreCheck decides whether p is a core by evaluating similarities to its
// neighbors until μ similar ones (including self) are found or failure is
// certain. This early-terminating check is the workhorse of Steps 2-4
// ("we only need to explore its adjacency vertices until we know that p is
// a core", Section III-A). worker is the caller's parallel-for worker id
// (0 in sequential sub-phases); it selects the per-worker similarity engine
// with sharded counters and reusable kernel scratch.
func (c *Clusterer) coreCheck(worker int, p int32) bool {
	cnt := 1 // self
	adj, wts := c.g.Neighbors(p)
	lo, _ := c.g.NeighborRange(p)
	mu := c.opt.Mu
	for i, q := range adj {
		if cnt+len(adj)-i < mu {
			return false // even all-similar remainders cannot reach μ
		}
		if c.similarArc(worker, p, lo+int64(i), q, wts[i]) {
			cnt++
			if cnt >= mu {
				return true
			}
		}
	}
	return cnt >= mu
}

// similarArc reports whether σ(p, q) ≥ ε for the arc p→q with weight wt,
// consulting the shared per-edge memo when Options.EdgeMemo is enabled.
// Concurrent duplicate evaluations are benign: the outcome is deterministic
// and both racers store the same value with atomic writes.
func (c *Clusterer) similarArc(worker int, p int32, arc int64, q int32, wt float32) bool {
	we := c.eng.ForWorker(worker)
	if c.memo == nil {
		return we.SimilarEdge(p, q, wt)
	}
	if s := atomic.LoadInt32(&c.memo[arc]); s != 0 {
		c.eng.C.Shard(worker).Shared.Add(1)
		return s == 1
	}
	ok := we.SimilarEdge(p, q, wt)
	v := int32(2)
	if ok {
		v = 1
	}
	atomic.StoreInt32(&c.memo[arc], v)
	atomic.StoreInt32(&c.memo[c.rev[arc]], v)
	return ok
}

// clusterOf returns the current cluster root of v's first super-node, or -1
// when v belongs to none. Safe inside parallel phases even while other
// workers union concurrently: connectivity is monotone, so an observed
// "same root" stays true forever and a stale "different root" only costs a
// redundant (idempotent) examination.
func (c *Clusterer) clusterOf(v int32) int32 {
	if len(c.snOf[v]) == 0 {
		return -1
	}
	return c.ds.FindNoCompress(c.snOf[v][0])
}
