package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"anyscan/internal/gen"
)

// BenchmarkStep23 isolates the merge phases (Steps 2–3) that the lock-free
// union-find parallelizes: a run is advanced through Step 1 once, the state
// checkpointed, and each iteration resumes from that checkpoint (untimed) and
// executes only the Strong/Weak phases. The RMAT graph's degree skew makes
// this the contended workload from the paper's Fig. 11.
func BenchmarkStep23(b *testing.B) {
	g := gen.RMAT(13, 60000, 0.45, 0.2, 0.2, gen.WeightConfig{}, 1)
	for _, threads := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			o := DefaultOptions()
			o.Mu, o.Eps, o.Threads, o.Seed = 4, 0.4, threads, 7
			// Small blocks fragment the super-nodes, so Steps 2–3 have real
			// merge work to do (the phase this benchmark isolates).
			o.Alpha, o.Beta = 512, 2048
			c, err := New(g, o)
			if err != nil {
				b.Fatal(err)
			}
			for c.Phase() == PhaseSummarize {
				c.Step()
			}
			var ckpt bytes.Buffer
			if err := c.SaveCheckpoint(&ckpt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r, err := LoadCheckpoint(g, bytes.NewReader(ckpt.Bytes()))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for r.Phase() == PhaseStrong || r.Phase() == PhaseWeak {
					r.Step()
				}
			}
		})
	}
}
