package core

import (
	"bytes"
	"testing"

	"anyscan/internal/testutil"
)

// FuzzLoadCheckpoint feeds arbitrary bytes to the checkpoint v2 loader: any
// input must either be rejected with an error or restore a Clusterer that
// steps to completion — never panic, never resume into an
// index-out-of-range crash. The corpus seeds a pristine mid-run checkpoint
// plus the corruption shapes of TestCheckpointCorruptionTable (truncations,
// header and payload bit flips).
func FuzzLoadCheckpoint(f *testing.F) {
	g := testutil.Karate()
	o := opts(3, 0.5, 1, 8, 8)
	c, err := New(g, o)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2 && c.Step(); i++ {
	}
	var buf bytes.Buffer
	if err := c.SaveCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:19])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 16, 20, len(valid) / 2, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x01
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := LoadCheckpoint(g, bytes.NewReader(data))
		if err != nil {
			return
		}
		for c.Step() {
		}
		if res := c.Snapshot(); res.NumClusters < 0 {
			t.Fatalf("resumed run produced %d clusters", res.NumClusters)
		}
	})
}
