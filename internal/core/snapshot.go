package core

import "anyscan/internal/cluster"

// Snapshot materializes the current (possibly intermediate) clustering: the
// best-so-far result of the anytime scheme. Every vertex belonging to at
// least one super-node is labeled with its super-node's current cluster;
// noise and not-yet-touched vertices are unlabeled. Calling Snapshot after
// the run finishes yields the final, SCAN-identical clustering with noise
// split into hubs and outliers.
//
// Snapshot must not be called concurrently with Step; call it between Step
// invocations (or after Run), which is exactly the suspend/inspect/resume
// pattern of the paper's interactive scheme.
func (c *Clusterer) Snapshot() *cluster.Result {
	n := len(c.state)
	res := cluster.NewResult(n)
	dense := make(map[int32]int32)
	labelOf := func(root int32) int32 {
		l, ok := dense[root]
		if !ok {
			l = int32(len(dense))
			dense[root] = l
		}
		return l
	}
	for v := int32(0); v < int32(n); v++ {
		switch c.loadState(v) {
		case stateProcCore, stateUnprocCore:
			res.Roles[v] = cluster.Core
		case stateProcBorder, stateUnprocBorder:
			res.Roles[v] = cluster.Border
		case stateProcNoise, stateUnprocNoise:
			res.Roles[v] = cluster.Outlier // refined below when done
		default:
			res.Roles[v] = cluster.Unclassified
		}
		switch {
		case len(c.snOf[v]) > 0:
			res.Labels[v] = labelOf(c.ds.FindNoCompress(c.snOf[v][0]))
		case c.borderOf[v] >= 0:
			res.Labels[v] = labelOf(c.ds.FindNoCompress(c.borderOf[v]))
		}
	}
	if c.phase == PhaseDone {
		cluster.ClassifyNoise(c.g, res)
	}
	res.Canonicalize()
	return res
}
