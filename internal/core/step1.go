package core

import (
	"context"

	"anyscan/internal/par"
)

// stepSummarize performs one Step-1 iteration: select a block of α untouched
// vertices, evaluate their ε-neighborhoods in parallel, mark neighbor states
// and nei counts in parallel, then build super-nodes and perform the Lemma-2
// unions sequentially (the three-phase structure of Fig. 4 lines 5-24).
// Returns false when no untouched vertices remain.
//
// Cancellation: only phase 1 (the expensive range queries) polls ctx. Its
// per-vertex work writes nothing shared except the vertex's own state, so an
// interrupted phase 1 is rolled back by reverting the whole block to
// untouched and rewinding the selection cursor — the next call re-selects
// the same vertices. Phases 2 and 3 always run to completion once phase 1
// has committed: they are cheap (atomic marks and sequential unions, no
// similarity evaluations) and their neighbor-state transitions cannot be
// reverted safely.
func (c *Clusterer) stepSummarize(ctx context.Context) (bool, error) {
	// Select up to α untouched vertices from the shuffled order.
	cursorStart := c.cursor
	c.blockVerts = c.blockVerts[:0]
	for c.cursor < len(c.order) && len(c.blockVerts) < c.opt.Alpha {
		v := c.order[c.cursor]
		c.cursor++
		if c.loadState(v) == stateUntouched {
			c.blockVerts = append(c.blockVerts, v)
		}
	}
	k := len(c.blockVerts)
	if k == 0 {
		return false, nil
	}
	c.growScratch(k)

	// Phase 1 (parallel): range queries. Each worker fills the ε-neighbor
	// buffer of its vertices and marks the vertex processed-core or
	// processed-noise. No cross-vertex writes, so no synchronization beyond
	// the final barrier.
	err := par.ForWorkerCtx(ctx, k, c.opt.Threads, par.Adaptive, func(w, i int) {
		p := c.blockVerts[i]
		buf := c.blockEps[i][:0]
		adj, wts := c.g.Neighbors(p)
		lo, _ := c.g.NeighborRange(p)
		c.workerArcs[w] += int64(len(adj))
		for j, q := range adj {
			if c.similarArc(w, p, lo+int64(j), q, wts[j]) {
				buf = append(buf, q)
			}
		}
		c.blockEps[i] = buf
		isCore := len(buf)+1 >= c.opt.Mu // +1: p itself (σ(p,p)=1)
		c.blockCore[i] = isCore
		if isCore {
			c.setState(p, stateProcCore)
		} else {
			c.setState(p, stateProcNoise)
		}
	})
	if err != nil {
		// Roll back: phase 1 only ever touches the block vertices' own
		// states (any similarity-memo entries it left behind are a
		// deterministic cache and stay valid). Reverting is idempotent for
		// the vertices the canceled loop never reached.
		for _, p := range c.blockVerts {
			c.setState(p, stateUntouched)
		}
		c.cursor = cursorStart
		return true, err
	}

	// Phase 2 (parallel): mark the discovered ε-neighbors. State moves are
	// CAS transitions on the Fig. 3 lattice; nei counting is a single atomic
	// add per neighbor (the paper measures this to be ~200× cheaper than a
	// critical section). A neighbor whose nei count reaches μ is promoted to
	// unprocessed-core and queued so phase 3 can merge its super-nodes
	// (Lemma 2) — the increment can come from a noise vertex, a case the
	// paper's pseudocode would leave unmerged.
	par.ForWorker(k, c.opt.Threads, par.Adaptive, func(w, i int) {
		isCore := c.blockCore[i]
		for _, q := range c.blockEps[i] {
			if isCore {
				c.markClaimed(q)
			}
			if c.bumpNei(q) {
				c.promoted[w] = append(c.promoted[w], q)
			}
		}
	})

	// Phase 3 (sequential): create super-nodes for the block's cores, append
	// memberships, and union super-nodes that share a known core (Fig. 4
	// lines 16-24). Noise vertices go to the noise list L with their cached
	// ε-neighborhood for Step 4.
	for i, p := range c.blockVerts {
		if !c.blockCore[i] {
			c.noise = append(c.noise, p)
			eps := make([]int32, len(c.blockEps[i]))
			copy(eps, c.blockEps[i])
			c.epsCache[p] = eps
			continue
		}
		sid := c.ds.Add()
		c.snRep = append(c.snRep, p)
		c.attachMember(sid, p)
		for _, q := range c.blockEps[i] {
			c.attachMember(sid, q)
		}
	}
	// Promotion unions: a vertex that just became a known core merges all
	// super-nodes containing it (Lemma 2). Vertices promoted while in no
	// super-node receive a lazy singleton so the invariant "every known core
	// has a cluster" holds for the Step-3 pruning and Step-4 attachment.
	for w := range c.promoted {
		for _, q := range c.promoted[w] {
			if len(c.snOf[q]) == 0 {
				sid := c.ds.Add()
				c.snRep = append(c.snRep, q)
				c.snOf[q] = append(c.snOf[q], sid)
				continue
			}
			sns := c.snOf[q]
			for j := 1; j < len(sns); j++ {
				if c.ds.Union(sns[0], sns[j]) {
					c.unionsSeq++
				}
			}
		}
		c.promoted[w] = c.promoted[w][:0]
	}
	return true, nil
}

// attachMember records that q belongs to super-node sid and, when q is a
// known core, merges sid with every super-node already containing q
// (Fig. 2 lines 11-14).
func (c *Clusterer) attachMember(sid int32, q int32) {
	if isKnownCore(c.loadState(q)) {
		for _, g := range c.snOf[q] {
			if c.ds.Union(sid, g) {
				c.unionsSeq++
			}
		}
	}
	c.snOf[q] = append(c.snOf[q], sid)
}

// growScratch sizes the per-block scratch buffers for a block of k vertices.
func (c *Clusterer) growScratch(k int) {
	for len(c.blockEps) < k {
		c.blockEps = append(c.blockEps, nil)
	}
	if cap(c.blockCore) < k {
		c.blockCore = make([]bool, k)
		c.blockSkip = make([]bool, k)
	}
	c.blockCore = c.blockCore[:k]
	c.blockSkip = c.blockSkip[:k]
}
