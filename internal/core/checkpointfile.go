package core

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"anyscan/internal/faultinject"
	"anyscan/internal/graph"
)

// SaveCheckpointFile writes a checkpoint to path crash-safely: the frame is
// written to a temporary file in the same directory, flushed and fsynced,
// and then atomically renamed over path (the directory is fsynced too, so
// the rename itself survives a crash). At every instant either the previous
// checkpoint or the complete new one exists under path — a crash mid-save
// can never destroy the last good checkpoint. On error the temporary file
// is removed and path is untouched.
func (c *Clusterer) SaveCheckpointFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("anyscan: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = c.SaveCheckpoint(bw); err != nil {
		return err
	}
	if err = faultinject.Hit("checkpoint.write"); err != nil {
		return fmt.Errorf("anyscan: writing checkpoint %s: %w", tmpName, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("anyscan: flushing checkpoint %s: %w", tmpName, err)
	}
	if err = tmp.Sync(); err == nil {
		err = faultinject.Hit("checkpoint.sync")
	}
	if err != nil {
		return fmt.Errorf("anyscan: syncing checkpoint %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("anyscan: closing checkpoint %s: %w", tmpName, err)
	}
	if err = faultinject.Hit("checkpoint.rename"); err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		return fmt.Errorf("anyscan: publishing checkpoint %s: %w", path, err)
	}
	syncDir(dir) // best effort: not all filesystems support directory fsync
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// LoadCheckpointFile opens path and reconstructs the suspended run over g
// with LoadCheckpoint.
func LoadCheckpointFile(g *graph.CSR, path string) (*Clusterer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("anyscan: opening checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(g, f)
}
