package core

import (
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/testutil"
)

// Every ablation knob and the EdgeMemo extension must preserve exactness.
func TestAblationsPreserveResult(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(o *Options)
	}{
		{"full", func(o *Options) {}},
		{"no-nei-promotion", func(o *Options) { o.Ablation.NoNeiPromotion = true }},
		{"no-pruning", func(o *Options) { o.Ablation.NoPruning = true }},
		{"no-sorting", func(o *Options) { o.Ablation.NoSorting = true }},
		{"edge-memo", func(o *Options) { o.EdgeMemo = true }},
		{"everything-off-memo-on", func(o *Options) {
			o.Ablation = Ablation{NoNeiPromotion: true, NoPruning: true, NoSorting: true}
			o.EdgeMemo = true
		}},
	}
	count := 1
	for _, tc := range testutil.RandomCases(count) {
		for _, threads := range []int{1, 4} {
			for _, v := range variants {
				o := opts(tc.Mu, tc.Eps, threads, 64, 64)
				o.ResolveRoles = true
				v.mutate(&o)
				res, _, err := Cluster(tc.G, o)
				if err != nil {
					t.Fatalf("%s/%s: %v", tc.Name, v.name, err)
				}
				if err := cluster.Validate(tc.G, tc.Mu, tc.Eps, res); err != nil {
					t.Fatalf("%s/%s threads=%d: %v", tc.Name, v.name, threads, err)
				}
			}
		}
	}
}

// The memo must reduce (never increase) the number of full evaluations.
func TestEdgeMemoReducesWork(t *testing.T) {
	tc := testutil.RandomCases(1)[0] // sparse ER: plenty of noise recompute
	base := opts(tc.Mu, tc.Eps, 1, 64, 64)
	_, m1, err := Cluster(tc.G, base)
	if err != nil {
		t.Fatal(err)
	}
	withMemo := base
	withMemo.EdgeMemo = true
	_, m2, err := Cluster(tc.G, withMemo)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Sim.Sims > m1.Sim.Sims {
		t.Errorf("memo increased evaluations: %d → %d", m1.Sim.Sims, m2.Sim.Sims)
	}
	if m2.Sim.Shared == 0 {
		t.Errorf("memo recorded no hits")
	}
	// With the memo, every undirected edge is evaluated at most once.
	if max := tc.G.NumEdges(); m2.Sim.Sims > max {
		t.Errorf("memoized evaluations %d exceed |E|=%d", m2.Sim.Sims, max)
	}
}

// Ablating nei promotion must push more core checks into Steps 2-4 but keep
// the final similarity work bounded by SCAN's.
func TestNoNeiPromotionStillBounded(t *testing.T) {
	tc := testutil.RandomCases(1)[3] // planted partition: many promotions
	o := opts(tc.Mu, tc.Eps, 1, 64, 64)
	o.Ablation.NoNeiPromotion = true
	_, m, err := Cluster(tc.G, o)
	if err != nil {
		t.Fatal(err)
	}
	if work := m.Sim.Sims + m.Sim.Pruned; work > tc.G.NumArcs()*3/2 {
		t.Errorf("work without promotions exploded: %d vs 2|E|=%d", work, tc.G.NumArcs())
	}
}
