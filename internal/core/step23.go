package core

import (
	"context"

	"anyscan/internal/par"
)

// stepStrong performs one Step-2 iteration over a block of β vertices from
// the worklist S: in parallel, each vertex is pruned (all its super-nodes
// already share a cluster) or core-checked, and vertices found to be cores
// merge all their super-nodes (Lemma 2) directly inside the parallel loop —
// the lock-free union-find replaces the paper's critical section (Fig. 4
// line 41), so workers never serialize. Returns false when S is exhausted.
//
// Correctness under concurrency: the prune reads the forest while other
// workers union, but connectivity is monotone — an observed "all same
// cluster" can never be invalidated, and a stale "different" only costs a
// redundant core check. State transitions touch only the vertex's own state,
// and every union is justified by Lemma 2 independent of ordering, so any
// interleaving yields the same partition.
//
// Cancellation: transitions are deterministic verdicts and applied unions
// remain valid, so when ctx fires mid-block the worklist cursor is simply
// rewound and the re-run reproduces the block idempotently (cheap again
// under Options.EdgeMemo).
func (c *Clusterer) stepStrong(ctx context.Context) (bool, error) {
	if c.workPos >= len(c.workS) {
		return false, nil
	}
	posStart := c.workPos
	end := c.workPos + c.opt.Beta
	if end > len(c.workS) {
		end = len(c.workS)
	}
	block := c.workS[c.workPos:end]
	c.workPos = end

	err := par.ForWorkerCtx(ctx, len(block), c.opt.Threads, par.Adaptive, func(w, i int) {
		p := block[i]
		sns := c.snOf[p]
		if !c.opt.Ablation.NoPruning {
			root := c.ds.FindNoCompress(sns[0])
			same := true
			for _, s := range sns[1:] {
				if c.ds.FindNoCompress(s) != root {
					same = false
					break
				}
			}
			if same {
				// Examining p cannot change the clustering (Fig. 2 line 25);
				// its coreness stays unknown.
				return
			}
		}
		c.workerArcs[w] += int64(c.g.Degree(p))
		if !c.coreCheck(w, p) {
			c.setState(p, stateProcBorder)
			return
		}
		c.setState(p, stateUnprocCore)
		for j := 1; j < len(sns); j++ {
			if c.ds.Union(sns[0], sns[j]) {
				c.unionsStep23.Add(1)
			}
		}
	})
	if err != nil {
		c.workPos = posStart
		return true, err
	}
	return true, nil
}

// stepWeak performs one Step-3 iteration over a block of β vertices from the
// worklist T, detecting weakly-related super-nodes that must merge because
// two adjacent cores are structurally similar (Lemma 3). Two parallel
// phases: (A) prune vertices whose whole neighborhood already shares their
// cluster, core-check the rest; (B) evaluate σ on candidate core-core edges
// crossing clusters and union the matching super-nodes immediately — the
// lock-free union-find removes both the paper's critical section (Fig. 4
// line 60) and the buffered-pairs post-pass this implementation previously
// used. Returns false when T is exhausted.
//
// The A/B barrier is kept: phase B consults coreness verdicts of *other*
// block vertices (isKnownCore on neighbors), which phase A establishes.
//
// Cancellation: both phases poll ctx. Phase A's state transitions are
// deterministic verdicts, so re-running the block reproduces them; every
// union phase B applied carries a proven σ ≥ ε core-core edge and stays
// valid, so the block is simply re-run for the remainder.
func (c *Clusterer) stepWeak(ctx context.Context) (bool, error) {
	if c.workPos >= len(c.workT) {
		return false, nil
	}
	posStart := c.workPos
	end := c.workPos + c.opt.Beta
	if end > len(c.workT) {
		end = len(c.workT)
	}
	block := c.workT[c.workPos:end]
	c.workPos = end
	k := len(block)
	c.growScratch(k)

	// Phase A: prune + core check. Writes only the vertex's own state.
	err := par.ForWorkerCtx(ctx, k, c.opt.Threads, par.Adaptive, func(w, i int) {
		p := block[i]
		c.workerArcs[w] += int64(c.g.Degree(p))
		pruned := false
		if !c.opt.Ablation.NoPruning {
			myClu := c.clusterOf(p)
			pruned = true
			adj, _ := c.g.Neighbors(p)
			for _, q := range adj {
				if len(c.snOf[q]) > 0 && c.ds.FindNoCompress(c.snOf[q][0]) != myClu {
					pruned = false
					break
				}
			}
		}
		if pruned {
			// No neighbor lies in a different cluster, so examining p cannot
			// merge anything (Fig. 2 line 40): skip, coreness stays unknown.
			c.blockSkip[i] = true
			c.blockCore[i] = false
			return
		}
		c.blockSkip[i] = false
		if c.loadState(p) == stateUnprocBorder {
			if c.coreCheck(w, p) {
				c.setState(p, stateUnprocCore)
				c.blockCore[i] = true
			} else {
				c.setState(p, stateProcBorder)
				c.blockCore[i] = false
			}
		} else {
			// Vertices enter T as unprocessed-border or known cores, but a
			// canceled-and-re-run block can re-see a vertex it already
			// demoted to processed-border — verify instead of assuming.
			c.blockCore[i] = isKnownCore(c.loadState(p))
		}
	})
	if err != nil {
		c.workPos = posStart
		return true, err
	}

	// Phase B: for each core of the block, evaluate σ against known-core
	// neighbors in other clusters (the expensive similarity work stays
	// parallel, as in Fig. 4 lines 53-61) and union directly. The crossing
	// check races concurrent unions benignly: a stale "different cluster"
	// costs one σ evaluation whose Union then no-ops.
	err = par.ForWorkerCtx(ctx, k, c.opt.Threads, par.Adaptive, func(w, i int) {
		if c.blockSkip[i] || !c.blockCore[i] {
			return
		}
		p := block[i]
		mySn := c.snOf[p][0]
		adj, wts := c.g.Neighbors(p)
		lo, _ := c.g.NeighborRange(p)
		for j, q := range adj {
			if !isKnownCore(c.loadState(q)) {
				continue
			}
			qSn := c.snOf[q][0]
			if c.ds.FindNoCompress(qSn) == c.ds.FindNoCompress(mySn) {
				continue
			}
			if c.similarArc(w, p, lo+int64(j), q, wts[j]) {
				if c.ds.Union(mySn, qSn) {
					c.unionsStep23.Add(1)
				}
			}
		}
	})
	if err != nil {
		c.workPos = posStart
	}
	return true, err
}
