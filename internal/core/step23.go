package core

import (
	"context"

	"anyscan/internal/par"
)

// stepStrong performs one Step-2 iteration over a block of β vertices from
// the worklist S: in parallel, each vertex is pruned (all its super-nodes
// already share a cluster) or core-checked; sequentially, vertices found to
// be cores merge all their super-nodes (Lemma 2). Returns false when S is
// exhausted.
//
// Cancellation: the parallel phase writes only per-block scratch — every
// state transition and union happens in the sequential phase. When ctx
// fires mid-phase the scratch is simply discarded and the worklist cursor
// rewound, so nothing needs rolling back; the re-run repeats the block's
// core checks (cheap again under Options.EdgeMemo).
func (c *Clusterer) stepStrong(ctx context.Context) (bool, error) {
	if c.workPos >= len(c.workS) {
		return false, nil
	}
	posStart := c.workPos
	end := c.workPos + c.opt.Beta
	if end > len(c.workS) {
		end = len(c.workS)
	}
	block := c.workS[c.workPos:end]
	c.workPos = end
	k := len(block)
	c.growScratch(k)

	// Parallel phase: prune or core-check. The disjoint set is only read
	// here (FindNoCompress), all unions happen in the sequential phase.
	err := par.ForWorkerCtx(ctx, k, c.opt.Threads, 8, func(w, i int) {
		p := block[i]
		sns := c.snOf[p]
		same := false
		if !c.opt.Ablation.NoPruning {
			root := c.ds.FindNoCompress(sns[0])
			same = true
			for _, s := range sns[1:] {
				if c.ds.FindNoCompress(s) != root {
					same = false
					break
				}
			}
		}
		if same {
			// Examining p cannot change the clustering (Fig. 2 line 25);
			// its coreness stays unknown.
			c.blockSkip[i] = true
			c.blockCore[i] = false
			return
		}
		c.blockSkip[i] = false
		c.workerArcs[w] += int64(c.g.Degree(p))
		c.blockCore[i] = c.coreCheck(p)
	})
	if err != nil {
		c.workPos = posStart
		return true, err
	}

	// Sequential phase: apply state transitions and the Lemma-2 unions.
	for i, p := range block {
		if c.blockSkip[i] {
			continue
		}
		if !c.blockCore[i] {
			c.setState(p, stateProcBorder)
			continue
		}
		c.setState(p, stateUnprocCore)
		sns := c.snOf[p]
		for j := 1; j < len(sns); j++ {
			if c.ds.Union(sns[0], sns[j]) {
				c.unionsStep23++
			}
		}
	}
	return true, nil
}

// stepWeak performs one Step-3 iteration over a block of β vertices from the
// worklist T, detecting weakly-related super-nodes that must merge because
// two adjacent cores are structurally similar (Lemma 3). Three phases:
// (A, parallel) prune vertices whose whole neighborhood already shares their
// cluster, core-check the rest; (B1, parallel) evaluate σ on candidate
// core-core edges crossing clusters and collect merge pairs; (B2,
// sequential) apply the unions. Returns false when T is exhausted.
//
// Cancellation: both parallel phases poll ctx. Phase A's state transitions
// (unprocessed-border → unprocessed-core / processed-border) are
// deterministic verdicts, so re-running the block after an interruption
// reproduces them; phase B1's buffered merge pairs each carry a proven
// σ ≥ ε between two cores, so the pairs collected before the interruption
// are applied (the merges are valid regardless) and the block is re-run for
// the rest.
func (c *Clusterer) stepWeak(ctx context.Context) (bool, error) {
	if c.workPos >= len(c.workT) {
		return false, nil
	}
	posStart := c.workPos
	end := c.workPos + c.opt.Beta
	if end > len(c.workT) {
		end = len(c.workT)
	}
	block := c.workT[c.workPos:end]
	c.workPos = end
	k := len(block)
	c.growScratch(k)

	// Phase A: prune + core check. Writes only the vertex's own state.
	err := par.ForWorkerCtx(ctx, k, c.opt.Threads, 8, func(w, i int) {
		p := block[i]
		c.workerArcs[w] += int64(c.g.Degree(p))
		pruned := false
		if !c.opt.Ablation.NoPruning {
			myClu := c.clusterOf(p)
			pruned = true
			adj, _ := c.g.Neighbors(p)
			for _, q := range adj {
				if len(c.snOf[q]) > 0 && c.ds.FindNoCompress(c.snOf[q][0]) != myClu {
					pruned = false
					break
				}
			}
		}
		if pruned {
			// No neighbor lies in a different cluster, so examining p cannot
			// merge anything (Fig. 2 line 40): skip, coreness stays unknown.
			c.blockSkip[i] = true
			c.blockCore[i] = false
			return
		}
		c.blockSkip[i] = false
		if c.loadState(p) == stateUnprocBorder {
			if c.coreCheck(p) {
				c.setState(p, stateUnprocCore)
				c.blockCore[i] = true
			} else {
				c.setState(p, stateProcBorder)
				c.blockCore[i] = false
			}
		} else {
			// Vertices enter T as unprocessed-border or known cores, but a
			// canceled-and-re-run block can re-see a vertex it already
			// demoted to processed-border — verify instead of assuming.
			c.blockCore[i] = isKnownCore(c.loadState(p))
		}
	})
	if err != nil {
		c.workPos = posStart
		return true, err
	}

	// Phase B1: for each core of the block, evaluate σ against known-core
	// neighbors in other clusters (the expensive similarity work stays
	// parallel, as in Fig. 4 lines 53-61); merge pairs are buffered per
	// worker instead of a critical section.
	err = par.ForWorkerCtx(ctx, k, c.opt.Threads, 8, func(w, i int) {
		if c.blockSkip[i] || !c.blockCore[i] {
			return
		}
		p := block[i]
		mySn := c.snOf[p][0]
		adj, wts := c.g.Neighbors(p)
		lo, _ := c.g.NeighborRange(p)
		for j, q := range adj {
			if !isKnownCore(c.loadState(q)) {
				continue
			}
			qSn := c.snOf[q][0]
			if c.ds.FindNoCompress(qSn) == c.ds.FindNoCompress(mySn) {
				continue
			}
			if c.similarArc(p, lo+int64(j), q, wts[j]) {
				c.mergeBuf[w] = append(c.mergeBuf[w], [2]int32{mySn, qSn})
			}
		}
	})
	if err != nil {
		c.workPos = posStart
	}

	// Phase B2: apply the buffered unions. Each pair carries a proven
	// σ ≥ ε core-core edge, so applying them is correct even when B1 was
	// interrupted and the block will be re-run.
	for w := range c.mergeBuf {
		for _, pair := range c.mergeBuf[w] {
			if c.ds.Union(pair[0], pair[1]) {
				c.unionsStep23++
			}
		}
		c.mergeBuf[w] = c.mergeBuf[w][:0]
	}
	return true, err
}
