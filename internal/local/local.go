// Package local answers seed-centered SCAN community queries in time
// proportional to the answer, not the graph (cf. Parallel Local Graph
// Clustering, Shun et al.; see PAPERS.md).
//
// A GS*-style index (package index) or a live epoch (package live) already
// stores, for every vertex, its neighbors sorted by descending activation
// threshold σ and an O(1) core threshold per μ. From those two accessors a
// community can be grown outward from a seed without ever looking at the
// rest of the graph:
//
//   - the ε-similar neighbors of any vertex are a prefix of its σ-sorted
//     order, so one scan per frontier vertex suffices;
//   - whether a neighbor is a core at (μ, ε) is one threshold lookup;
//   - σ is symmetric, so a border candidate's *own* similar prefix contains
//     exactly the cores that claim it — the global "smallest claiming core"
//     rule of index.Query can be replayed from the candidate's side without
//     global state.
//
// Query therefore visits only the seed's core component (BFS over similar
// core-core edges), its border fringe, and — for noise seeds — the similar
// prefixes needed to tell hubs from outliers. Membership is byte-identical
// to what full index.Query(μ, ε) assigns that component.
package local

import (
	"fmt"
	"slices"

	"anyscan/internal/cluster"
)

// View is the indexed-graph surface a local query needs: both *index.Index
// and *live.Epoch satisfy it. Implementations must use the canonical
// neighbor-order comparator (σ descending, ties by id ascending) and the
// GS* core-threshold definition, or results will diverge from the global
// query they are meant to replay.
type View interface {
	// NumVertices returns the vertex count of the underlying graph.
	NumVertices() int
	// NeighborOrder returns v's neighbors sorted by σ descending (ties by id
	// ascending) and the parallel activation thresholds. The slices may alias
	// internal storage; Query treats them as read-only.
	NeighborOrder(v int32) (ids []int32, sigs []float64)
	// CoreThreshold returns the largest ε at which v is a core at μ
	// (0 = never a core).
	CoreThreshold(v int32, mu int) float64
}

// Result is the answer to one local query: the seed's role under the global
// clustering at (μ, ε) and — when the seed belongs to a cluster — that
// cluster's full membership.
type Result struct {
	Seed int32
	Mu   int
	Eps  float64

	// Role is the seed's role in the full clustering: Core or Border when the
	// seed belongs to a cluster, Hub or Outlier when it is noise.
	Role cluster.Role

	// Members lists the seed's community in ascending vertex order, exactly
	// the vertices full index.Query(μ, ε) assigns the seed's cluster label.
	// Nil when the seed is noise.
	Members []int32
	// Roles is parallel to Members: Core or Border per member.
	Roles []cluster.Role

	// Touched counts the distinct vertices whose neighbor order the query
	// scanned — the measure of output-proportional cost (|Touched| ≪ |V|
	// whenever the community is small).
	Touched int
}

// Query expands the seed's community at (μ, ε) from v. See the package
// comment for the algorithm; the contract is byte-identical membership and
// roles to the seed's component under the full index/epoch Query.
func Query(v View, seed int32, mu int, eps float64) (*Result, error) {
	if mu < 1 {
		return nil, fmt.Errorf("local: mu must be >= 1, got %d", mu)
	}
	if !(eps > 0 && eps <= 1) {
		return nil, fmt.Errorf("local: eps must be in (0,1], got %v", eps)
	}
	n := v.NumVertices()
	if seed < 0 || int(seed) >= n {
		return nil, fmt.Errorf("local: seed vertex %d out of range [0, %d)", seed, n)
	}

	st := &state{v: v, mu: mu, eps: eps, scanned: map[int32]bool{}}
	res := &Result{Seed: seed, Mu: mu, Eps: eps}
	if st.isCore(seed) {
		res.Role = cluster.Core
		st.expand(seed)
	} else if c, ok := st.minClaimingCore(seed); ok {
		// The smallest qualifying core in the seed's own similar prefix is
		// exactly the core the global query attaches the seed to.
		res.Role = cluster.Border
		st.expand(c)
	} else {
		res.Role = st.classifyNoiseSeed(seed)
		res.Touched = len(st.scanned)
		return res, nil
	}
	res.Members, res.Roles = st.community()
	res.Touched = len(st.scanned)
	return res, nil
}

// state is the sparse working set of one query. Everything is keyed by
// vertex id in maps, so memory stays proportional to the frontier rather
// than |V|.
type state struct {
	v   View
	mu  int
	eps float64

	cores   map[int32]bool // the seed's full core component
	borders map[int32]bool // non-core similar neighbors of those cores
	scanned map[int32]bool // vertices whose neighbor order was read
}

func (st *state) isCore(q int32) bool { return st.v.CoreThreshold(q, st.mu) >= st.eps }

// scanSimilar visits the ε-similar prefix of u's σ-sorted neighbor order.
func (st *state) scanSimilar(u int32, fn func(q int32)) {
	st.scanned[u] = true
	ids, sigs := st.v.NeighborOrder(u)
	for j, q := range ids {
		if sigs[j] < st.eps {
			break // sorted descending: the rest are dissimilar too
		}
		fn(q)
	}
}

// expand grows the full core component containing start (which must be a
// core) by BFS over similar core-core edges — the same edges the global
// query unions over — and collects the non-core similar neighbors seen on
// the way as border candidates.
func (st *state) expand(start int32) {
	st.cores = map[int32]bool{start: true}
	st.borders = map[int32]bool{}
	queue := []int32{start}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		st.scanSimilar(u, func(q int32) {
			if st.isCore(q) {
				if !st.cores[q] {
					st.cores[q] = true
					queue = append(queue, q)
				}
			} else {
				st.borders[q] = true
			}
		})
	}
}

// minClaimingCore returns the smallest qualifying core in q's similar
// prefix — by σ symmetry, exactly the set of cores whose similar prefixes
// contain q, i.e. the cores that claim q in the global query. The global
// rule attaches q to the minimum of that set.
func (st *state) minClaimingCore(q int32) (int32, bool) {
	claim := int32(-1)
	st.scanSimilar(q, func(c int32) {
		if st.isCore(c) && (claim == -1 || c < claim) {
			claim = c
		}
	})
	return claim, claim >= 0
}

// community materializes the expanded component: all its cores plus every
// border candidate whose smallest claiming core lies inside the component.
// A candidate adjacent to this community may still be claimed by a smaller
// core of a *different* cluster — checking the candidate's own minimum
// keeps membership identical to the global assignment.
func (st *state) community() ([]int32, []cluster.Role) {
	members := make([]int32, 0, len(st.cores)+len(st.borders))
	for u := range st.cores {
		members = append(members, u)
	}
	for q := range st.borders {
		if c, ok := st.minClaimingCore(q); ok && st.cores[c] {
			members = append(members, q)
		}
	}
	slices.Sort(members)
	roles := make([]cluster.Role, len(members))
	for i, u := range members {
		if st.cores[u] {
			roles[i] = cluster.Core
		} else {
			roles[i] = cluster.Border
		}
	}
	return members, roles
}

// classifyNoiseSeed splits a noise seed into hub or outlier with the exact
// semantics of cluster.ClassifyNoise: a hub has neighbors in ≥ 2 distinct
// clusters. Each labeled neighbor is represented by a core of its cluster
// (itself if a core, else its smallest claiming core); two representatives
// are in the same cluster iff they share a core component, which one
// expansion of the first representative's component decides.
func (st *state) classifyNoiseSeed(seed int32) cluster.Role {
	// Hub detection looks at all neighbors, similar or not, exactly like the
	// global pass — so scan the full order, not just the similar prefix.
	st.scanned[seed] = true
	ids, _ := st.v.NeighborOrder(seed)
	var reps []int32
	for _, q := range ids {
		if st.isCore(q) {
			reps = append(reps, q)
		} else if c, ok := st.minClaimingCore(q); ok {
			reps = append(reps, c)
		}
	}
	slices.Sort(reps)
	reps = slices.Compact(reps)
	if len(reps) < 2 {
		return cluster.Outlier
	}
	st.expand(reps[0])
	for _, c := range reps[1:] {
		if !st.cores[c] {
			return cluster.Hub
		}
	}
	return cluster.Outlier
}
