package local_test

import (
	"math/rand/v2"
	"slices"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/live"
	"anyscan/internal/local"
)

// globalQuerier is the full-clustering side of the equivalence contract:
// both *index.Index and *live.Epoch provide it alongside local.View.
type globalQuerier interface {
	local.View
	Query(mu int, eps float64) (*cluster.Result, error)
}

// verifySeed checks the byte-identical membership contract for one seed:
// the local result's role, members, and member roles must match exactly
// what the full query assigned the seed's component.
func verifySeed(t *testing.T, v globalQuerier, global *cluster.Result, seed int32, mu int, eps float64) {
	t.Helper()
	lr, err := local.Query(v, seed, mu, eps)
	if err != nil {
		t.Fatalf("local.Query(seed=%d, mu=%d, eps=%g): %v", seed, mu, eps, err)
	}
	if lr.Role != global.Roles[seed] {
		t.Fatalf("seed %d at (mu=%d, eps=%g): local role %v, global role %v",
			seed, mu, eps, lr.Role, global.Roles[seed])
	}
	if lr.Touched < 1 || lr.Touched > v.NumVertices() {
		t.Fatalf("seed %d: implausible touched count %d (n=%d)", seed, lr.Touched, v.NumVertices())
	}
	label := global.Labels[seed]
	if label == cluster.NoLabel {
		if len(lr.Members) != 0 {
			t.Fatalf("seed %d is noise globally but local returned %d members", seed, len(lr.Members))
		}
		return
	}
	want := global.Members(label)
	if !slices.Equal(lr.Members, want) {
		t.Fatalf("seed %d at (mu=%d, eps=%g): local members %v != global cluster %v",
			seed, mu, eps, lr.Members, want)
	}
	for i, m := range lr.Members {
		if lr.Roles[i] != global.Roles[m] {
			t.Fatalf("seed %d: member %d local role %v, global role %v",
				seed, m, lr.Roles[i], global.Roles[m])
		}
	}
}

// seedsFor picks a randomized-but-covering seed set: a sample of random
// vertices plus the first vertex of every role present at this (μ, ε), so
// the core/border/hub/outlier paths are all exercised whenever they exist.
func seedsFor(rng *rand.Rand, global *cluster.Result, sample int) []int32 {
	n := global.N()
	seeds := make([]int32, 0, sample+4)
	for i := 0; i < sample; i++ {
		seeds = append(seeds, int32(rng.IntN(n)))
	}
	for _, want := range []cluster.Role{cluster.Core, cluster.Border, cluster.Hub, cluster.Outlier} {
		for v := 0; v < n; v++ {
			if global.Roles[v] == want {
				seeds = append(seeds, int32(v))
				break
			}
		}
	}
	slices.Sort(seeds)
	return slices.Compact(seeds)
}

func testGraphs(t *testing.T) map[string]*graph.CSR {
	t.Helper()
	var wc gen.WeightConfig
	return map[string]*graph.CSR{
		"planted": gen.PlantedPartition(300, 6, 0.5, 0.01, wc, 1),
		"er":      gen.ErdosRenyi(200, 900, wc, 2),
		"ba":      gen.BarabasiAlbert(250, 3, wc, 3),
	}
}

// TestLocalMatchesGlobal is the core property test of this package: on a
// randomized (μ, ε, seed) grid over several graph families, local.Query
// must reproduce exactly the community full index.Query assigns the seed.
func TestLocalMatchesGlobal(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			x := index.Build(g, 2)
			rng := rand.New(rand.NewPCG(7, 11))
			for _, mu := range []int{1, 2, 3, 5} {
				for _, eps := range []float64{0.2, 0.4, 0.6, 0.8} {
					global, err := x.Query(mu, eps)
					if err != nil {
						t.Fatal(err)
					}
					for _, seed := range seedsFor(rng, global, 20) {
						verifySeed(t, x, global, seed, mu, eps)
					}
				}
			}
		})
	}
}

// TestLocalCompressedBackend runs the same contract over an index built on
// the varint-compressed graph backend: NeighborOrder/CoreThreshold are
// backend-independent, so results must not change.
func TestLocalCompressedBackend(t *testing.T) {
	g := gen.PlantedPartition(240, 5, 0.5, 0.02, gen.WeightConfig{}, 4)
	x := index.Build(graph.Compress(g), 2)
	rng := rand.New(rand.NewPCG(3, 9))
	for _, mu := range []int{2, 4} {
		for _, eps := range []float64{0.3, 0.5, 0.7} {
			global, err := x.Query(mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seedsFor(rng, global, 12) {
				verifySeed(t, x, global, seed, mu, eps)
			}
		}
	}
}

// TestLocalLiveEpoch checks the contract against a mutated live epoch: the
// epoch satisfies local.View, and local results must match Epoch.Query
// after batches of edge mutations.
func TestLocalLiveEpoch(t *testing.T) {
	g := gen.ErdosRenyi(150, 600, gen.WeightConfig{}, 5)
	lg := live.FromIndex(index.Build(g, 1))
	rng := rand.New(rand.NewPCG(13, 17))
	for batch := 0; batch < 3; batch++ {
		muts := make([]live.Mutation, 0, 12)
		for i := 0; i < 12; i++ {
			u, v := int32(rng.IntN(150)), int32(rng.IntN(150))
			if u == v {
				continue
			}
			if rng.IntN(3) == 0 {
				muts = append(muts, live.Mutation{Op: live.OpDelete, U: u, V: v})
			} else {
				muts = append(muts, live.Mutation{Op: live.OpAdd, U: u, V: v, W: 1})
			}
		}
		if _, _, err := lg.Apply(muts); err != nil {
			t.Fatal(err)
		}
		ep := lg.Epoch()
		for _, mu := range []int{2, 3} {
			for _, eps := range []float64{0.3, 0.6} {
				global, err := ep.Query(mu, eps)
				if err != nil {
					t.Fatal(err)
				}
				for _, seed := range seedsFor(rng, global, 10) {
					verifySeed(t, ep, global, seed, mu, eps)
				}
			}
		}
	}
}

// TestLocalOutputProportional pins the cost bound on a graph built for it:
// two 8-cliques inside a 500-vertex graph of otherwise isolated vertices.
// Expanding a clique community must touch on the order of the clique, not
// the graph.
func TestLocalOutputProportional(t *testing.T) {
	var b graph.Builder
	b.SetNumVertices(500)
	for base := int32(0); base < 16; base += 8 {
		for u := base; u < base+8; u++ {
			for v := u + 1; v < base+8; v++ {
				b.AddEdge(u, v, 1)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	x := index.Build(g, 1)
	lr, err := local.Query(x, 0, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	if !slices.Equal(lr.Members, want) {
		t.Fatalf("clique community = %v, want %v", lr.Members, want)
	}
	if lr.Touched > 20 {
		t.Fatalf("touched %d vertices expanding an 8-clique in a 500-vertex graph; want ≪ |V|", lr.Touched)
	}
}

// TestLocalValidation covers the error paths: parameters out of domain and
// seeds outside the vertex range must error, not panic.
func TestLocalValidation(t *testing.T) {
	g := gen.ErdosRenyi(50, 100, gen.WeightConfig{}, 6)
	x := index.Build(g, 1)
	cases := []struct {
		name string
		seed int32
		mu   int
		eps  float64
	}{
		{"mu-zero", 0, 0, 0.5},
		{"eps-zero", 0, 2, 0},
		{"eps-negative", 0, 2, -0.1},
		{"eps-above-one", 0, 2, 1.5},
		{"seed-negative", -1, 2, 0.5},
		{"seed-too-large", 50, 2, 0.5},
	}
	for _, tc := range cases {
		if _, err := local.Query(x, tc.seed, tc.mu, tc.eps); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
