// Package frame implements the framed, checksummed binary container shared
// by every on-disk artifact in this repository (anytime-run checkpoints,
// persisted query indexes). A frame is a fixed little-endian header followed
// by an opaque payload:
//
//	offset  size  field
//	     0     4  magic   (per artifact kind)
//	     4     4  version (per artifact kind)
//	     8     8  payload length in bytes
//	    16     4  CRC-32 (IEEE) of the payload
//	    20     …  payload
//
// The magic rejects arbitrary files immediately, the length detects
// truncation before the payload decoder produces a confusing partial decode,
// and the CRC detects any bit-level corruption of the payload. Integrity of
// the header itself is implied: a corrupted magic/version fails those
// checks, a corrupted length or CRC fails the truncation or checksum check.
package frame

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// headerSize is the fixed frame header length in bytes.
const headerSize = 20

// Kind identifies one artifact family: its magic number, the single
// supported format version, a human-readable name used in error messages,
// and an upper bound on the declared payload length so a corrupt or hostile
// header cannot force an enormous allocation.
type Kind struct {
	Magic      uint32
	Version    uint32
	Name       string // e.g. "checkpoint", "index"
	MaxPayload int64
}

// Write frames payload and writes it to w: header first, then the payload.
// The payload must be fully materialized so its length and checksum can be
// computed up front; a failed Write therefore never emits a partial frame
// unless w itself fails mid-write.
func (k Kind) Write(w io.Writer, payload []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], k.Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], k.Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("anyscan: writing %s header: %w", k.Name, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("anyscan: writing %s payload: %w", k.Name, err)
	}
	return nil
}

// Read reads and verifies one frame from r, returning the payload. Magic,
// version, declared length, and checksum are all checked before any byte of
// the payload is handed to the caller.
func (k Kind) Read(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("anyscan: reading %s header: %w", k.Name, err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != k.Magic {
		return nil, fmt.Errorf("anyscan: not a %s file (magic %#x, want %#x)", k.Name, m, k.Magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != k.Version {
		return nil, fmt.Errorf("anyscan: %s format version %d not supported (want %d)", k.Name, v, k.Version)
	}
	size := binary.LittleEndian.Uint64(hdr[8:16])
	if size == 0 || size > uint64(k.MaxPayload) {
		return nil, fmt.Errorf("anyscan: implausible %s payload length %d", k.Name, size)
	}
	// Read in bounded chunks so a corrupt length field cannot force a huge
	// upfront allocation before the (short) stream runs out.
	const chunk = 1 << 20
	payload := make([]byte, 0, min(size, chunk))
	for uint64(len(payload)) < size {
		c := size - uint64(len(payload))
		if c > chunk {
			c = chunk
		}
		start := len(payload)
		payload = append(payload, make([]byte, c)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return nil, fmt.Errorf("anyscan: %s truncated (declared %d payload bytes): %w", k.Name, size, err)
		}
	}
	want := binary.LittleEndian.Uint32(hdr[16:20])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("anyscan: %s payload corrupted (CRC-32 %#x, want %#x)", k.Name, got, want)
	}
	return payload, nil
}

// WriteFile frames payload and publishes it to path crash-safely: the frame
// is written to a temporary file in the same directory, flushed and fsynced,
// and then atomically renamed over path (the directory is fsynced too, so
// the rename itself survives a crash). At every instant either the previous
// file or the complete new one exists under path. On error the temporary
// file is removed and path is untouched.
func (k Kind) WriteFile(path string, payload []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("anyscan: creating %s temp file: %w", k.Name, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	bw := bufio.NewWriterSize(tmp, 1<<20)
	if err = k.Write(bw, payload); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("anyscan: flushing %s %s: %w", k.Name, tmpName, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("anyscan: syncing %s %s: %w", k.Name, tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("anyscan: closing %s %s: %w", k.Name, tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("anyscan: publishing %s %s: %w", k.Name, path, err)
	}
	SyncDir(dir) // best effort: not all filesystems support directory fsync
	return nil
}

// ReadFile opens path and reads one frame with Read.
func (k Kind) ReadFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("anyscan: opening %s: %w", k.Name, err)
	}
	defer f.Close()
	return k.Read(f)
}

// SyncDir fsyncs a directory so a just-completed rename is durable. Best
// effort: errors are ignored because not all filesystems support it.
func SyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
