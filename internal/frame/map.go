package frame

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Mapping is a read-only view of one framed file's payload, backed by mmap
// where the platform supports it and by a plain read elsewhere. Close
// releases the mapping; the payload must not be used afterwards.
type Mapping struct {
	// Payload is the frame payload (the bytes after the 20-byte header). For
	// an mmap-backed mapping it aliases the page cache: the first access to
	// each page faults it in, so opening a multi-gigabyte artifact costs
	// near-zero I/O up front.
	Payload []byte

	// Mapped reports whether Payload aliases a file mapping (true) or a heap
	// copy of the file (false, the non-mmap fallback).
	Mapped bool

	closer io.Closer
}

// Close releases the mapping. Safe to call more than once.
func (m *Mapping) Close() error {
	if m.closer == nil {
		return nil
	}
	c := m.closer
	m.closer = nil
	m.Payload = nil
	return c.Close()
}

// MapFile maps the framed file at path read-only and returns its payload
// without copying it into the heap. The header is always verified (magic,
// version, declared payload length against the real file size); the CRC is
// verified only when verifyCRC is set, because checksumming forces every
// page of the file to be read — the opposite of the near-zero-cost open that
// mmap exists to provide. Callers opening untrusted files should pass
// verifyCRC=true or run a structural validation of their own on the payload.
//
// On platforms without mmap support the file is read into memory instead
// (and the CRC is then always checked, since every byte was read anyway).
func (k Kind) MapFile(path string, verifyCRC bool) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("anyscan: opening %s: %w", k.Name, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("anyscan: stat %s: %w", k.Name, err)
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("anyscan: %s truncated (%d bytes, header is %d)", k.Name, st.Size(), headerSize)
	}

	data, closer, mapped, err := mapRaw(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("anyscan: mapping %s: %w", k.Name, err)
	}
	ok := false
	defer func() {
		if !ok && closer != nil {
			closer.Close()
		}
	}()

	hdr := data[:headerSize]
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != k.Magic {
		return nil, fmt.Errorf("anyscan: not a %s file (magic %#x, want %#x)", k.Name, m, k.Magic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != k.Version {
		return nil, fmt.Errorf("anyscan: %s format version %d not supported (want %d)", k.Name, v, k.Version)
	}
	size := binary.LittleEndian.Uint64(hdr[8:16])
	if size == 0 || size > uint64(k.MaxPayload) {
		return nil, fmt.Errorf("anyscan: implausible %s payload length %d", k.Name, size)
	}
	if uint64(st.Size()-headerSize) < size {
		return nil, fmt.Errorf("anyscan: %s truncated (declared %d payload bytes, file holds %d)",
			k.Name, size, st.Size()-headerSize)
	}
	payload := data[headerSize : headerSize+int64(size)]
	if verifyCRC || !mapped {
		want := binary.LittleEndian.Uint32(hdr[16:20])
		if got := crc32.ChecksumIEEE(payload); got != want {
			return nil, fmt.Errorf("anyscan: %s payload corrupted (CRC-32 %#x, want %#x)", k.Name, got, want)
		}
	}
	ok = true
	return &Mapping{Payload: payload, Mapped: mapped, closer: closer}, nil
}

// readRaw is the no-mmap fallback: the whole file is read into one heap
// buffer. Used when the platform (or the specific filesystem) cannot mmap.
func readRaw(f *os.File, size int64) ([]byte, io.Closer, bool, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, false, err
	}
	return buf, nil, false, nil
}
