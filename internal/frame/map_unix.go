//go:build unix

package frame

import (
	"io"
	"os"
	"syscall"
)

// munmapCloser unmaps one mmap region on Close.
type munmapCloser struct{ data []byte }

func (m *munmapCloser) Close() error {
	if m.data == nil {
		return nil
	}
	d := m.data
	m.data = nil
	return syscall.Munmap(d)
}

// mapRaw maps the whole file read-only. The mapping is private and read-only,
// so a hostile writer changing the file afterwards cannot corrupt this
// process's view beyond what shared-file mmap semantics already allow.
func mapRaw(f *os.File, size int64) (data []byte, closer io.Closer, mapped bool, err error) {
	if size == 0 {
		return nil, nil, false, syscall.EINVAL
	}
	d, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Fall back to reading the file (e.g. filesystems without mmap).
		return readRaw(f, size)
	}
	return d, &munmapCloser{data: d}, true, nil
}
