//go:build !unix

package frame

import (
	"io"
	"os"
)

// mapRaw on platforms without mmap reads the whole file into memory.
func mapRaw(f *os.File, size int64) ([]byte, io.Closer, bool, error) {
	return readRaw(f, size)
}
