// Package unionfind implements the disjoint-set data structure used to track
// cluster labels of super-nodes (Section III-A) and of pSCAN core vertices.
//
// The structure uses union by rank with path halving, giving the inverse-
// Ackermann amortized bounds cited in the paper's complexity analysis. All
// operations are counted so experiments can reproduce Fig. 12 (the number of
// Union operations performed by anySCAN vs. pSCAN).
//
// The plain DisjointSet is not safe for concurrent use; the anySCAN merge
// phases guard it with a mutex exactly as the paper guards Union with an
// OpenMP critical section (Fig. 4 lines 41 and 60).
package unionfind

import "fmt"

// DisjointSet is a forest of rank-balanced trees over elements 0..n-1.
type DisjointSet struct {
	parent []int32
	rank   []uint8

	unions int64 // number of successful (merging) Union calls
	finds  int64 // number of Find calls
	sets   int   // current number of disjoint sets
}

// New returns a DisjointSet with n singleton elements.
func New(n int) *DisjointSet {
	ds := &DisjointSet{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
		sets:   n,
	}
	for i := range ds.parent {
		ds.parent[i] = int32(i)
	}
	return ds
}

// Len returns the number of elements in the universe.
func (ds *DisjointSet) Len() int { return len(ds.parent) }

// Add appends a fresh singleton element and returns its id. anySCAN uses
// this for lazily created singleton super-nodes.
func (ds *DisjointSet) Add() int32 {
	id := int32(len(ds.parent))
	ds.parent = append(ds.parent, id)
	ds.rank = append(ds.rank, 0)
	ds.sets++
	return id
}

// Find returns the representative of x's set, halving the path on the way.
func (ds *DisjointSet) Find(x int32) int32 {
	ds.finds++
	for ds.parent[x] != x {
		ds.parent[x] = ds.parent[ds.parent[x]] // path halving
		x = ds.parent[x]
	}
	return x
}

// FindNoCompress returns the representative of x's set without mutating the
// forest and without touching the operation counters. It is safe to call
// concurrently from many goroutines provided no goroutine mutates the
// structure at the same time — which is how the anySCAN parallel phases use
// it (all Unions happen in sequential sub-phases separated by barriers).
func (ds *DisjointSet) FindNoCompress(x int32) int32 {
	for ds.parent[x] != x {
		x = ds.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// actually happened (false when they were already in the same set).
func (ds *DisjointSet) Union(x, y int32) bool {
	rx, ry := ds.Find(x), ds.Find(y)
	if rx == ry {
		return false
	}
	ds.unions++
	ds.sets--
	switch {
	case ds.rank[rx] < ds.rank[ry]:
		ds.parent[rx] = ry
	case ds.rank[rx] > ds.rank[ry]:
		ds.parent[ry] = rx
	default:
		ds.parent[ry] = rx
		ds.rank[rx]++
	}
	return true
}

// Connected reports whether x and y are in the same set.
func (ds *DisjointSet) Connected(x, y int32) bool {
	return ds.Find(x) == ds.Find(y)
}

// Sets returns the current number of disjoint sets.
func (ds *DisjointSet) Sets() int { return ds.sets }

// Unions returns the number of merging Union operations performed.
func (ds *DisjointSet) Unions() int64 { return ds.unions }

// Finds returns the number of Find operations performed.
func (ds *DisjointSet) Finds() int64 { return ds.finds }

// ResetCounters zeroes the operation counters without touching the forest.
// anySCAN uses it to split Step-1 (sequential) union counts from the
// Step-2/3 (critical-section) counts reported in Fig. 12.
func (ds *DisjointSet) ResetCounters() { ds.unions, ds.finds = 0, 0 }

// Labels returns, for each element, a dense label in [0, Sets()): elements in
// the same set share a label and labels are assigned in order of first
// appearance of each set's representative.
func (ds *DisjointSet) Labels() []int32 {
	labels := make([]int32, len(ds.parent))
	next := int32(0)
	seen := make(map[int32]int32, ds.sets)
	for i := range ds.parent {
		r := ds.Find(int32(i))
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		labels[i] = l
	}
	return labels
}

// String implements fmt.Stringer for debugging.
func (ds *DisjointSet) String() string {
	return fmt.Sprintf("unionfind{n=%d sets=%d unions=%d finds=%d}",
		len(ds.parent), ds.sets, ds.unions, ds.finds)
}

// Snapshot exports the forest state for checkpointing.
func (ds *DisjointSet) Snapshot() (parent []int32, rank []uint8, sets int) {
	return append([]int32(nil), ds.parent...), append([]uint8(nil), ds.rank...), ds.sets
}

// Restore rebuilds a DisjointSet from a Snapshot. The operation counters
// restart at zero.
func Restore(parent []int32, rank []uint8, sets int) (*DisjointSet, error) {
	if len(parent) != len(rank) {
		return nil, fmt.Errorf("unionfind: parent/rank length mismatch %d != %d", len(parent), len(rank))
	}
	for i, p := range parent {
		if p < 0 || int(p) >= len(parent) {
			return nil, fmt.Errorf("unionfind: element %d has out-of-range parent %d", i, p)
		}
	}
	if sets < 0 || sets > len(parent) {
		return nil, fmt.Errorf("unionfind: implausible set count %d", sets)
	}
	return &DisjointSet{parent: parent, rank: rank, sets: sets}, nil
}
