package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	ds := New(5)
	if ds.Len() != 5 || ds.Sets() != 5 {
		t.Fatalf("fresh set: len=%d sets=%d", ds.Len(), ds.Sets())
	}
	if ds.Connected(0, 1) {
		t.Fatal("fresh elements connected")
	}
	if !ds.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if ds.Union(1, 0) {
		t.Fatal("repeat union should not merge")
	}
	if !ds.Connected(0, 1) {
		t.Fatal("0 and 1 should be connected")
	}
	if ds.Sets() != 4 {
		t.Fatalf("sets = %d, want 4", ds.Sets())
	}
	if ds.Unions() != 1 {
		t.Fatalf("unions = %d, want 1", ds.Unions())
	}
}

func TestAdd(t *testing.T) {
	ds := New(2)
	id := ds.Add()
	if id != 2 {
		t.Fatalf("Add returned %d, want 2", id)
	}
	if ds.Len() != 3 || ds.Sets() != 3 {
		t.Fatalf("after Add: len=%d sets=%d", ds.Len(), ds.Sets())
	}
	ds.Union(0, id)
	if !ds.Connected(0, 2) {
		t.Fatal("added element should union normally")
	}
}

func TestChainMerging(t *testing.T) {
	n := 100
	ds := New(n)
	for i := 0; i < n-1; i++ {
		ds.Union(int32(i), int32(i+1))
	}
	if ds.Sets() != 1 {
		t.Fatalf("chain should collapse to 1 set, got %d", ds.Sets())
	}
	root := ds.Find(0)
	for i := 1; i < n; i++ {
		if ds.Find(int32(i)) != root {
			t.Fatalf("element %d has different root", i)
		}
	}
}

func TestFindNoCompressAgreesWithFind(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := New(200)
	for i := 0; i < 300; i++ {
		ds.Union(int32(rng.Intn(200)), int32(rng.Intn(200)))
	}
	for v := int32(0); v < 200; v++ {
		if ds.FindNoCompress(v) != ds.Find(v) {
			t.Fatalf("FindNoCompress(%d) != Find(%d)", v, v)
		}
	}
}

func TestLabels(t *testing.T) {
	ds := New(6)
	ds.Union(0, 3)
	ds.Union(4, 5)
	labels := ds.Labels()
	if labels[0] != labels[3] {
		t.Errorf("0 and 3 should share a label")
	}
	if labels[4] != labels[5] {
		t.Errorf("4 and 5 should share a label")
	}
	if labels[1] == labels[2] || labels[1] == labels[0] {
		t.Errorf("singletons should be distinct: %v", labels)
	}
	// Dense: labels must cover 0..Sets()-1.
	seen := map[int32]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	for l := int32(0); l < int32(ds.Sets()); l++ {
		if !seen[l] {
			t.Errorf("label %d missing (labels %v)", l, labels)
		}
	}
}

func TestResetCounters(t *testing.T) {
	ds := New(4)
	ds.Union(0, 1)
	ds.Find(2)
	ds.ResetCounters()
	if ds.Unions() != 0 || ds.Finds() != 0 {
		t.Fatalf("counters not reset")
	}
	if !ds.Connected(0, 1) {
		t.Fatal("ResetCounters must not alter the forest")
	}
}

// Property: union-find implements an equivalence relation matching a naive
// label-propagation model.
func TestEquivalenceRelationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		ds := New(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for k := 0; k < 80; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			ds.Union(int32(a), int32(b))
			relabel(naive[a], naive[b])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ds.Connected(int32(i), int32(j)) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the number of sets always equals n minus successful unions.
func TestSetCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		ds := New(n)
		for k := 0; k < 200; k++ {
			ds.Union(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		return int64(ds.Sets()) == int64(n)-ds.Unions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 100000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := New(n)
		for k := 0; k < n; k++ {
			ds.Union(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	ds := New(10)
	ds.Union(0, 1)
	ds.Union(2, 3)
	ds.Union(1, 3)
	parent, rank, sets := ds.Snapshot()
	restored, err := Restore(parent, rank, sets)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Sets() != ds.Sets() || restored.Len() != ds.Len() {
		t.Fatalf("shape mismatch after restore")
	}
	for i := int32(0); i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if ds.Connected(i, j) != restored.Connected(i, j) {
				t.Fatalf("connectivity differs at (%d,%d)", i, j)
			}
		}
	}
	// Snapshot must be a copy: mutating the restored set must not affect
	// the original.
	restored.Union(5, 6)
	if ds.Connected(5, 6) {
		t.Fatal("restore aliased the original forest")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	if _, err := Restore([]int32{0, 1}, []uint8{0}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Restore([]int32{0, 5}, []uint8{0, 0}, 2); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if _, err := Restore([]int32{0, 1}, []uint8{0, 0}, 99); err == nil {
		t.Error("implausible set count accepted")
	}
	if _, err := Restore([]int32{0, 1}, []uint8{0, 0}, -1); err == nil {
		t.Error("negative set count accepted")
	}
}

func TestStringer(t *testing.T) {
	ds := New(3)
	ds.Union(0, 1)
	s := ds.String()
	if s == "" || ds.Len() != 3 {
		t.Fatalf("String() = %q", s)
	}
}
