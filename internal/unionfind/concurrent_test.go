package unionfind

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// samePartition asserts that two label vectors describe the same partition.
// Both Labels implementations canonicalize (dense ids in order of first
// appearance), so equal partitions must yield equal vectors.
func samePartition(t *testing.T, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("label vector lengths differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("partition differs at element %d: sequential label %d, concurrent label %d",
				i, want[i], got[i])
		}
	}
}

func TestConcurrentMatchesSequentialSingleThread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 500
	ds := New(n)
	cc := NewConcurrent(n)
	for k := 0; k < 2*n; k++ {
		x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
		if ds.Union(x, y) != cc.Union(x, y) {
			t.Fatalf("union(%d,%d) merge verdicts diverged at op %d", x, y, k)
		}
		if ds.Connected(x, y) != cc.Connected(x, y) {
			t.Fatalf("connected(%d,%d) diverged at op %d", x, y, k)
		}
	}
	if ds.Sets() != cc.Sets() {
		t.Fatalf("set counts differ: %d vs %d", ds.Sets(), cc.Sets())
	}
	if ds.Unions() != cc.Unions() {
		t.Fatalf("union counts differ: %d vs %d", ds.Unions(), cc.Unions())
	}
	samePartition(t, ds.Labels(), cc.Labels())
}

// TestConcurrentStress drives a Concurrent set from many goroutines over a
// shared random union sequence and asserts the resulting partition is
// identical to the sequential DisjointSet applying the same unions. Run
// under -race in CI; the assertion holds for every interleaving because the
// union set (not its order) determines the partition.
func TestConcurrentStress(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, n := range []int{64, 1000, 20000} {
		rng := rand.New(rand.NewSource(int64(n)))
		type pair struct{ x, y int32 }
		// A mix of local unions (chain structure, deep paths) and global
		// random unions (root contention between workers).
		unions := make([]pair, 0, 3*n)
		for k := 0; k < 2*n; k++ {
			x := int32(rng.Intn(n))
			y := x + int32(rng.Intn(8)) - 4
			if y < 0 || y >= int32(n) || y == x {
				y = int32(rng.Intn(n))
			}
			unions = append(unions, pair{x, y})
		}
		for k := 0; k < n; k++ {
			unions = append(unions, pair{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}

		seq := New(n)
		for _, u := range unions {
			seq.Union(u.x, u.y)
		}

		cc := NewConcurrent(n)
		var wg sync.WaitGroup
		wg.Add(workers)
		var merged [64]int64
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				// Strided slices: all workers hammer overlapping id ranges,
				// maximizing CAS retries; interleave reads to stress Find and
				// Connected under concurrent re-rooting.
				var m int64
				for k := w; k < len(unions); k += workers {
					u := unions[k]
					if cc.Union(u.x, u.y) {
						m++
					}
					if !cc.Connected(u.x, u.y) {
						panic("union not visible to the unioning goroutine")
					}
					_ = cc.Find(u.x)
					_ = cc.FindNoCompress(u.y)
				}
				merged[w] = m
			}(w)
		}
		wg.Wait()

		samePartition(t, seq.Labels(), cc.Labels())
		if seq.Sets() != cc.Sets() {
			t.Fatalf("n=%d: set counts differ: %d vs %d", n, seq.Sets(), cc.Sets())
		}
		// Exactly one goroutine must win each merge: total merge wins equal
		// the sequential union count.
		var total int64
		for _, m := range merged[:workers] {
			total += m
		}
		if total != seq.Unions() || cc.Unions() != seq.Unions() {
			t.Fatalf("n=%d: merge wins %d / counter %d, want %d", n, total, cc.Unions(), seq.Unions())
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	cc := NewConcurrent(2)
	if id := cc.Add(); id != 2 {
		t.Fatalf("Add returned %d, want 2", id)
	}
	if cc.Len() != 3 || cc.Sets() != 3 {
		t.Fatalf("after Add: len=%d sets=%d, want 3/3", cc.Len(), cc.Sets())
	}
	cc.Union(0, 2)
	if !cc.Connected(0, 2) || cc.Connected(1, 2) {
		t.Fatal("connectivity wrong after Add+Union")
	}
}

func TestConcurrentSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cc := NewConcurrent(200)
	for k := 0; k < 300; k++ {
		cc.Union(int32(rng.Intn(200)), int32(rng.Intn(200)))
	}
	parent, rank, sets := cc.Snapshot()
	back, err := RestoreConcurrent(parent, rank, sets)
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, cc.Labels(), back.Labels())
	if back.Sets() != cc.Sets() {
		t.Fatalf("restored set count %d, want %d", back.Sets(), cc.Sets())
	}
}

func TestConcurrentRestoresRankBasedSnapshot(t *testing.T) {
	// A checkpoint written by the sequential DisjointSet (rank-balanced
	// forest, parents may exceed children ids) must restore into Concurrent
	// with the identical partition, and further unions must stay correct.
	rng := rand.New(rand.NewSource(11))
	ds := New(300)
	for k := 0; k < 400; k++ {
		ds.Union(int32(rng.Intn(300)), int32(rng.Intn(300)))
	}
	parent, rank, sets := ds.Snapshot()
	cc, err := RestoreConcurrent(parent, rank, sets)
	if err != nil {
		t.Fatal(err)
	}
	samePartition(t, ds.Labels(), cc.Labels())
	for k := 0; k < 200; k++ {
		x, y := int32(rng.Intn(300)), int32(rng.Intn(300))
		ds.Union(x, y)
		cc.Union(x, y)
	}
	samePartition(t, ds.Labels(), cc.Labels())
}

func TestRestoreConcurrentRejectsCorruptState(t *testing.T) {
	if _, err := RestoreConcurrent([]int32{0, 5}, []uint8{0, 0}, 2); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if _, err := RestoreConcurrent([]int32{0, 1}, []uint8{0}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RestoreConcurrent([]int32{0, 1}, []uint8{0, 0}, 3); err == nil {
		t.Error("implausible set count accepted")
	}
}

// BenchmarkUnion compares the sequential DisjointSet against the lock-free
// Concurrent structure on the same union workload, single-threaded (the
// structural overhead of CAS vs plain stores) and with the Concurrent set
// additionally driven from all procs (the contended case the mutex-guarded
// design serializes).
func BenchmarkUnion(b *testing.B) {
	const n = 1 << 16
	pairs := make([][2]int32, 1<<14)
	rng := rand.New(rand.NewSource(1))
	for i := range pairs {
		pairs[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds := New(n)
			for _, p := range pairs {
				ds.Union(p[0], p[1])
			}
		}
	})
	b.Run("concurrent-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc := NewConcurrent(n)
			for _, p := range pairs {
				cc.Union(p[0], p[1])
			}
		}
	})
	b.Run("concurrent-parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			cc := NewConcurrent(n)
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for k := w; k < len(pairs); k += workers {
						cc.Union(pairs[k][0], pairs[k][1])
					}
				}(w)
			}
			wg.Wait()
		}
	})
}
