package unionfind

import (
	"fmt"
	"sync/atomic"
)

// Concurrent is a lock-free disjoint set safe for Union/Find/Connected calls
// from any number of goroutines simultaneously. It replaces the paper's
// "guard Union with an OpenMP critical section" scheme (Fig. 4 lines 41/60)
// with the CAS-based design of GBBS (Dhulipala, Blelloch & Shun) as used for
// SCAN cluster formation by Tseng, Dhulipala & Shun: an atomic parent array,
// union-by-min root hooking with a retry loop, and best-effort CAS path
// halving.
//
// Invariants that make the structure linearizable without locks:
//
//   - parent values only ever decrease: a root r is hooked exclusively under
//     a root with a smaller id (union-by-min), and path halving replaces a
//     parent with a strictly closer-to-root (hence <=) ancestor. Pointer
//     chains therefore always terminate and no cycle can form.
//   - a root stops being a root exactly once, via the single successful
//     CompareAndSwap(parent[r]: r -> smaller root). Competing unions on the
//     same root serialize on that CAS; losers re-run Find and retry.
//   - connectivity is monotone (sets only merge), so a reader that observed
//     two elements sharing a root may rely on them sharing a set forever.
//
// Union-by-min gives up the rank balancing of DisjointSet; path halving keeps
// chains short in practice, and the parallel merge phases touch each edge
// O(1) times, so the theoretical depth loss is invisible next to the removed
// serialization. Find operations are deliberately not counted — a shared
// find counter would reintroduce exactly the contended cache line this type
// exists to remove — so Finds always reports 0.
//
// Add, Snapshot, Restore and Labels are quiescent operations: they must not
// run concurrently with any other method (the anySCAN phases call them only
// in sequential sub-phases or between Step calls, which is the same contract
// the checkpoint machinery already requires).
type Concurrent struct {
	parent []int32 // atomic access in the concurrent operations
	unions atomic.Int64
	sets   atomic.Int64
}

// NewConcurrent returns a Concurrent disjoint set with n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]int32, n)}
	for i := range c.parent {
		c.parent[i] = int32(i)
	}
	c.sets.Store(int64(n))
	return c
}

// Len returns the number of elements in the universe.
func (c *Concurrent) Len() int { return len(c.parent) }

// Add appends a fresh singleton element and returns its id. Quiescent-only:
// it grows the parent array and must not race with any concurrent operation
// (anySCAN creates super-nodes exclusively in sequential sub-phases).
func (c *Concurrent) Add() int32 {
	id := int32(len(c.parent))
	c.parent = append(c.parent, id)
	c.sets.Add(1)
	return id
}

// Find returns the representative of x's set, halving the path with
// best-effort CAS writes on the way. Safe for concurrent use with every
// non-quiescent method.
func (c *Concurrent) Find(x int32) int32 {
	for {
		p := atomic.LoadInt32(&c.parent[x])
		if p == x {
			return x
		}
		gp := atomic.LoadInt32(&c.parent[p])
		if gp == p {
			return p
		}
		// Path halving: x adopts its grandparent. A lost race means some
		// other goroutine already improved (or re-rooted) the chain.
		atomic.CompareAndSwapInt32(&c.parent[x], p, gp)
		x = gp
	}
}

// FindNoCompress returns the representative of x's set without writing to
// the forest. Kept for the read-mostly pruning phases, which would otherwise
// generate useless CAS traffic on paths they only inspect.
func (c *Concurrent) FindNoCompress(x int32) int32 {
	for {
		p := atomic.LoadInt32(&c.parent[x])
		if p == x {
			return x
		}
		x = p
	}
}

// Union merges the sets containing x and y and reports whether this call
// performed the merge. Lock-free: the larger root is hooked under the
// smaller via CAS; on a lost race the roots are re-resolved and the hook
// retried until the sets are observed merged.
func (c *Concurrent) Union(x, y int32) bool {
	for {
		rx, ry := c.Find(x), c.Find(y)
		if rx == ry {
			return false
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// ry > rx: hook ry under rx. The CAS succeeds only while ry is still
		// a root, so exactly one competing union wins the merge.
		if atomic.CompareAndSwapInt32(&c.parent[ry], ry, rx) {
			c.unions.Add(1)
			c.sets.Add(-1)
			return true
		}
		x, y = rx, ry
	}
}

// Connected reports whether x and y are in the same set. Linearizable under
// concurrent unions: a negative answer is only returned when rx was still a
// root after both finds resolved, i.e. there was an instant at which the two
// sets were distinct.
func (c *Concurrent) Connected(x, y int32) bool {
	for {
		rx, ry := c.Find(x), c.Find(y)
		if rx == ry {
			return true
		}
		if atomic.LoadInt32(&c.parent[rx]) == rx {
			return false
		}
	}
}

// Sets returns the current number of disjoint sets.
func (c *Concurrent) Sets() int { return int(c.sets.Load()) }

// Unions returns the number of merging Union operations performed.
func (c *Concurrent) Unions() int64 { return c.unions.Load() }

// Finds always returns 0: see the type comment for why find operations are
// not counted on the lock-free hot path.
func (c *Concurrent) Finds() int64 { return 0 }

// ResetCounters zeroes the union counter without touching the forest.
func (c *Concurrent) ResetCounters() { c.unions.Store(0) }

// Labels returns, for each element, a dense label in [0, Sets()): elements
// in the same set share a label, assigned in order of first appearance of
// each set's representative — the same canonical order DisjointSet.Labels
// produces for an equal partition. Quiescent-only.
func (c *Concurrent) Labels() []int32 {
	labels := make([]int32, len(c.parent))
	next := int32(0)
	seen := make(map[int32]int32, c.Sets())
	for i := range c.parent {
		r := c.Find(int32(i))
		l, ok := seen[r]
		if !ok {
			l = next
			next++
			seen[r] = l
		}
		labels[i] = l
	}
	return labels
}

// String implements fmt.Stringer for debugging.
func (c *Concurrent) String() string {
	return fmt.Sprintf("unionfind.Concurrent{n=%d sets=%d unions=%d}",
		len(c.parent), c.Sets(), c.Unions())
}

// Snapshot exports the forest state for checkpointing, in the same
// (parent, rank, sets) shape DisjointSet.Snapshot uses so the checkpoint
// container format is unchanged. Concurrent keeps no ranks; the rank vector
// is all zeros. Quiescent-only.
func (c *Concurrent) Snapshot() (parent []int32, rank []uint8, sets int) {
	return append([]int32(nil), c.parent...), make([]uint8, len(c.parent)), c.Sets()
}

// RestoreConcurrent rebuilds a Concurrent set from a Snapshot — including
// snapshots written by the rank-based DisjointSet (checkpoint format v2
// predates the lock-free structure): the rank vector only ever influenced
// tree shape, never the partition, so it is validated for length and
// otherwise ignored. The union counter restarts at zero.
func RestoreConcurrent(parent []int32, rank []uint8, sets int) (*Concurrent, error) {
	if len(parent) != len(rank) {
		return nil, fmt.Errorf("unionfind: parent/rank length mismatch %d != %d", len(parent), len(rank))
	}
	for i, p := range parent {
		if p < 0 || int(p) >= len(parent) {
			return nil, fmt.Errorf("unionfind: element %d has out-of-range parent %d", i, p)
		}
	}
	if sets < 0 || sets > len(parent) {
		return nil, fmt.Errorf("unionfind: implausible set count %d", sets)
	}
	c := &Concurrent{parent: parent}
	c.sets.Store(int64(sets))
	return c, nil
}
