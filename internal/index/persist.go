package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"anyscan/internal/frame"
	"anyscan/internal/graph"
)

// Index container format: the shared framed+CRC container of package frame
// wrapping a gob-encoded indexPayload. Only the arc-order σ slice (plus, for
// approximate indexes, the per-arc error bands and the sketch parameters) is
// persisted — the sorted neighbor orders and per-μ core orders are cheap,
// deterministic derivations and are rebuilt on load, which keeps the file a
// third of the in-memory size and the format independent of query history.
//
// Payload version 1 is an exact index; version 2 adds the approximate-mode
// fields. Exact indexes — including any built with the δ=0 dial — keep
// writing version 1, byte-identical to what earlier releases produced, and
// both versions load through the same path.
const (
	indexVersion       = 1
	indexVersionApprox = 2
)

// indexKind is the frame parameterization of the persisted-index artifact.
// The container version stays 1 for both payload versions — the envelope
// format is unchanged; MaxPayload bounds the declared payload length so a
// corrupt or hostile header cannot force an enormous allocation.
var indexKind = frame.Kind{
	Magic:      0xA17C1DE5,
	Version:    indexVersion,
	Name:       "index",
	MaxPayload: int64(1) << 36,
}

// indexPayload is the gob payload of a persisted index. The graph itself is
// not serialized — the caller supplies it again at load time and a
// fingerprint check rejects mismatches. Delta, K, Seed, and Band are set
// only when Version == indexVersionApprox; gob omits zero-valued fields, so
// version-1 payloads encode exactly as they did before these fields existed.
type indexPayload struct {
	Version int
	Graph   graph.Fingerprint
	Sigma   []float64

	// Approximate-mode fields (Version == indexVersionApprox): the accuracy
	// dial, MinHash permutation count and seed the estimates were built
	// with, and the per-arc confidence half-widths in CSR arc order.
	Delta float64
	K     int
	Seed  uint64
	Band  []float32
}

// payload assembles the persisted form of the index.
func (x *Index) payload() indexPayload {
	p := indexPayload{
		Version: indexVersion,
		Graph:   graph.FingerprintOf(x.g),
		Sigma:   x.sigma,
	}
	if a := x.approx; a != nil && !a.exactFallback {
		p.Version = indexVersionApprox
		p.Delta, p.K, p.Seed, p.Band = a.delta, a.k, a.seed, a.band
	}
	return p
}

// Save serializes the index so it can be restored later — possibly in
// another process — with Load, skipping the σ evaluation pass entirely. The
// payload is wrapped in the framed container (magic, version, length,
// CRC-32), so truncation and bit-level corruption are detected at load time.
//
// An approximate index saves its estimates and error bands (payload version
// 2); a build that requested approximation but fell back to the exact pass
// (non-unit weights) saves as a plain exact index — its σ values are exact,
// and the dial setting is build provenance, not index state.
func (x *Index) Save(w io.Writer) error {
	p := x.payload()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return fmt.Errorf("anyscan: encoding index: %w", err)
	}
	return indexKind.Write(w, buf.Bytes())
}

// SaveFile writes the index to path crash-safely (temp file + fsync +
// atomic rename): at every instant either the previous file or the complete
// new one exists under path.
func (x *Index) SaveFile(path string) error {
	p := x.payload()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return fmt.Errorf("anyscan: encoding index: %w", err)
	}
	return indexKind.WriteFile(path, buf.Bytes())
}

// Load reconstructs an index over g from a stream written by Save. g must
// be the same graph the index was built on (a content fingerprint is
// verified). The frame checksum rejects corrupted files, and the decoded σ
// slice is additionally validated against the graph (arc count and value
// range), so a checksum-valid but semantically invalid file yields an error
// instead of silently wrong query answers. The sorted neighbor orders are
// rebuilt with the given number of workers.
func Load(g graph.Graph, r io.Reader, threads int) (*Index, error) {
	payload, err := indexKind.Read(r)
	if err != nil {
		return nil, err
	}
	return restore(g, payload, threads)
}

// LoadFile opens path and loads one index with Load.
func LoadFile(g graph.Graph, path string, threads int) (*Index, error) {
	payload, err := indexKind.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return restore(g, payload, threads)
}

func restore(g graph.Graph, payload []byte, threads int) (*Index, error) {
	var p indexPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("anyscan: decoding index: %w", err)
	}
	if p.Version != indexVersion && p.Version != indexVersionApprox {
		return nil, fmt.Errorf("anyscan: index version %d not supported", p.Version)
	}
	if fp := graph.FingerprintOf(g); fp != p.Graph {
		return nil, fmt.Errorf("anyscan: index was built on a different graph (fingerprint %x vs %x)", p.Graph.Hash, fp.Hash)
	}
	if int64(len(p.Sigma)) != g.NumArcs() {
		return nil, fmt.Errorf("anyscan: index has %d arc thresholds, graph has %d arcs", len(p.Sigma), g.NumArcs())
	}
	for e, s := range p.Sigma {
		if !(s >= 0 && s <= 1) { // also rejects NaN
			return nil, fmt.Errorf("anyscan: index arc %d threshold %v out of range [0,1]", e, s)
		}
	}
	x := &Index{
		g:       g,
		sigma:   p.Sigma,
		threads: threads,
		orders:  map[int]*coreOrder{},
	}
	if p.Version == indexVersionApprox {
		if !(p.Delta > 0 && p.Delta < 1) {
			return nil, fmt.Errorf("anyscan: index approx delta %v out of range (0,1)", p.Delta)
		}
		if p.K < 1 {
			return nil, fmt.Errorf("anyscan: index approx k %d must be >= 1", p.K)
		}
		if int64(len(p.Band)) != g.NumArcs() {
			return nil, fmt.Errorf("anyscan: index has %d arc bands, graph has %d arcs", len(p.Band), g.NumArcs())
		}
		for e, b := range p.Band {
			if !(b >= 0 && b <= 1) { // also rejects NaN
				return nil, fmt.Errorf("anyscan: index arc %d band %v out of range [0,1]", e, b)
			}
		}
		x.approx = &approxState{delta: p.Delta, k: p.K, seed: p.Seed, band: p.Band}
	}
	x.sortNeighbors(threads)
	if x.approx != nil {
		x.finishApprox()
	}
	return x, nil
}
