package index

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"anyscan/internal/frame"
	"anyscan/internal/graph"
)

// Index container format v1: the shared framed+CRC container of package
// frame wrapping a gob-encoded indexPayload. Only the arc-order σ slice is
// persisted — the sorted neighbor orders and per-μ core orders are cheap,
// deterministic derivations and are rebuilt on load, which keeps the file a
// third of the in-memory size and the format independent of query history.
const indexVersion = 1

// indexKind is the frame parameterization of the persisted-index artifact.
// MaxPayload bounds the declared payload length so a corrupt or hostile
// header cannot force an enormous allocation.
var indexKind = frame.Kind{
	Magic:      0xA17C1DE5,
	Version:    indexVersion,
	Name:       "index",
	MaxPayload: int64(1) << 36,
}

// indexPayload is the gob payload of a persisted index. The graph itself is
// not serialized — the caller supplies it again at load time and a
// fingerprint check rejects mismatches.
type indexPayload struct {
	Version int
	Graph   graph.Fingerprint
	Sigma   []float64
}

// Save serializes the index so it can be restored later — possibly in
// another process — with Load, skipping the σ evaluation pass entirely. The
// payload is wrapped in the framed container (magic, version, length,
// CRC-32), so truncation and bit-level corruption are detected at load time.
func (x *Index) Save(w io.Writer) error {
	p := indexPayload{
		Version: indexVersion,
		Graph:   graph.FingerprintOf(x.g),
		Sigma:   x.sigma,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return fmt.Errorf("anyscan: encoding index: %w", err)
	}
	return indexKind.Write(w, buf.Bytes())
}

// SaveFile writes the index to path crash-safely (temp file + fsync +
// atomic rename): at every instant either the previous file or the complete
// new one exists under path.
func (x *Index) SaveFile(path string) error {
	p := indexPayload{
		Version: indexVersion,
		Graph:   graph.FingerprintOf(x.g),
		Sigma:   x.sigma,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return fmt.Errorf("anyscan: encoding index: %w", err)
	}
	return indexKind.WriteFile(path, buf.Bytes())
}

// Load reconstructs an index over g from a stream written by Save. g must
// be the same graph the index was built on (a content fingerprint is
// verified). The frame checksum rejects corrupted files, and the decoded σ
// slice is additionally validated against the graph (arc count and value
// range), so a checksum-valid but semantically invalid file yields an error
// instead of silently wrong query answers. The sorted neighbor orders are
// rebuilt with the given number of workers.
func Load(g graph.Graph, r io.Reader, threads int) (*Index, error) {
	payload, err := indexKind.Read(r)
	if err != nil {
		return nil, err
	}
	return restore(g, payload, threads)
}

// LoadFile opens path and loads one index with Load.
func LoadFile(g graph.Graph, path string, threads int) (*Index, error) {
	payload, err := indexKind.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return restore(g, payload, threads)
}

func restore(g graph.Graph, payload []byte, threads int) (*Index, error) {
	var p indexPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, fmt.Errorf("anyscan: decoding index: %w", err)
	}
	if p.Version != indexVersion {
		return nil, fmt.Errorf("anyscan: index version %d not supported", p.Version)
	}
	if fp := graph.FingerprintOf(g); fp != p.Graph {
		return nil, fmt.Errorf("anyscan: index was built on a different graph (fingerprint %x vs %x)", p.Graph.Hash, fp.Hash)
	}
	if int64(len(p.Sigma)) != g.NumArcs() {
		return nil, fmt.Errorf("anyscan: index has %d arc thresholds, graph has %d arcs", len(p.Sigma), g.NumArcs())
	}
	for e, s := range p.Sigma {
		if !(s >= 0 && s <= 1) { // also rejects NaN
			return nil, fmt.Errorf("anyscan: index arc %d threshold %v out of range [0,1]", e, s)
		}
	}
	x := &Index{
		g:       g,
		sigma:   p.Sigma,
		threads: threads,
		orders:  map[int]*coreOrder{},
	}
	x.sortNeighbors(threads)
	return x, nil
}
