package index_test

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/testutil"
)

// TestBuildBackendEquivalence is the cross-backend equivalence suite of the
// tentpole refactor: building the query index over the flat CSR and over the
// varint-compressed backend (in-memory and mmap-backed from a .csrz file)
// must produce byte-identical indexes — same persisted bytes, same σ count —
// and byte-identical Query answers over a (μ, ε) grid.
func TestBuildBackendEquivalence(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range testutil.RandomCases(1) {
		for _, threads := range []int{1, 4} {
			flat := index.Build(tc.G, threads)
			comp := index.Build(graph.Compress(tc.G), threads)

			path := filepath.Join(dir, "g.csrz")
			if err := graph.Compress(tc.G).WriteCompressedFile(path); err != nil {
				t.Fatalf("%s: WriteCompressedFile: %v", tc.Name, err)
			}
			mg, err := graph.OpenCompressedFile(path, graph.CompressedOpenOptions{VerifyCRC: true})
			if err != nil {
				t.Fatalf("%s: OpenCompressedFile: %v", tc.Name, err)
			}
			mapped := index.Build(mg, threads)

			if flat.SimEvals() != comp.SimEvals() || flat.SimEvals() != mapped.SimEvals() {
				t.Fatalf("%s threads=%d: σ evaluations differ: flat=%d compressed=%d mmap=%d",
					tc.Name, threads, flat.SimEvals(), comp.SimEvals(), mapped.SimEvals())
			}

			var flatBuf, compBuf, mapBuf bytes.Buffer
			if err := flat.Save(&flatBuf); err != nil {
				t.Fatal(err)
			}
			if err := comp.Save(&compBuf); err != nil {
				t.Fatal(err)
			}
			if err := mapped.Save(&mapBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(flatBuf.Bytes(), compBuf.Bytes()) {
				t.Fatalf("%s threads=%d: persisted index differs between flat CSR and compressed backends",
					tc.Name, threads)
			}
			if !bytes.Equal(flatBuf.Bytes(), mapBuf.Bytes()) {
				t.Fatalf("%s threads=%d: persisted index differs between flat CSR and mmap backends",
					tc.Name, threads)
			}

			for _, mu := range []int{1, tc.Mu} {
				for _, eps := range []float64{0.3, tc.Eps, 0.8} {
					want, err := flat.Query(mu, eps)
					if err != nil {
						t.Fatalf("%s mu=%d eps=%v: %v", tc.Name, mu, eps, err)
					}
					for name, x := range map[string]*index.Index{"compressed": comp, "mmap": mapped} {
						got, err := x.Query(mu, eps)
						if err != nil {
							t.Fatalf("%s %s mu=%d eps=%v: %v", tc.Name, name, mu, eps, err)
						}
						if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.Roles, want.Roles) {
							t.Fatalf("%s threads=%d %s mu=%d eps=%v: Query differs from the flat-CSR backend",
								tc.Name, threads, name, mu, eps)
						}
					}
				}
			}
			if err := mg.Close(); err != nil {
				t.Fatalf("%s: Close: %v", tc.Name, err)
			}
		}
	}
}

// TestConcurrentQueriesCompressedBackend exercises the compressed backend's
// shared decode paths under the race detector: many goroutines querying one
// index built over a compressed graph.
func TestConcurrentQueriesCompressedBackend(t *testing.T) {
	g := graph.Compress(testutil.Karate())
	x := index.Build(g, 2)
	want, err := x.Query(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := x.Query(2, 0.5)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got.Labels, want.Labels) {
					t.Error("concurrent Query result differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLoadCompressedBackend round-trips a persisted index through Save/Load
// with the compressed graph as the fingerprint-verified host graph.
func TestLoadCompressedBackend(t *testing.T) {
	flat := testutil.Karate()
	comp := graph.Compress(flat)
	x := index.Build(flat, 2)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// An index built on the flat graph must load over the compressed backend:
	// the content fingerprint is backend-independent.
	y, err := index.Load(comp, bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatalf("Load over compressed backend: %v", err)
	}
	want, err := x.Query(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := y.Query(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.Roles, want.Roles) {
		t.Fatal("loaded-over-compressed Query differs from the building index")
	}
}
