package index

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/local"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// Approximate index mode: instead of one exact σ evaluation per edge, Build
// sketches every vertex's closed neighborhood with k-permutation MinHash
// (simeval.Sketches) and estimates σ from sketch resemblance, with a
// per-arc Hoeffding error band chosen so the estimate is outside the band
// with probability at most δ. Arcs whose estimate lands within the band of a
// query's ε threshold are resolved *exactly* at query time (memoized), so a
// wrong similarity decision requires the ≤δ tail event — misclassification
// is confined to provably-near-threshold edges.
//
// Three exactness tiers keep the mode safe and cheap:
//
//  1. non-unit edge weights: MinHash estimates set resemblance only, so the
//     whole build falls back to the exact pass (recorded, band-free);
//  2. build-time: arcs whose endpoint degrees sum to ≤ k are evaluated
//     exactly (the merge join is cheaper than comparing k minima), band 0;
//  3. query-time: arcs with |σ̂ − ε| ≤ band get one exact evaluation,
//     cached in a lock-free slot array shared by all queries.
//
// δ=0 disables the machinery entirely: BuildApprox degenerates to Build and
// the persisted index bytes are identical to the exact path's.

// DefaultApproxDelta is the accuracy dial's default: with k=128 permutations
// the band half-width on Ĵ is √(ln(2/δ)/(2k)) ≈ 0.14. Chosen so the CI
// accuracy gate (ARI ≥ 0.99 against the exact answer over the benchmark
// grid) holds with margin; δ=0.05 was measured to flip enough near-band
// arcs on the dense GR01L stand-in to dip one (μ, ε) cell to ARI 0.95.
const DefaultApproxDelta = 0.01

// defaultSketchSeed seeds the MinHash permutations; fixed so builds are
// deterministic and mirror slots of the persisted estimate agree bit-for-bit
// across processes.
const defaultSketchSeed = 0xA17C5EED

// approxUnresolved is the sentinel bit pattern of an unresolved query-time
// slot. Crossing values are in [0,1], whose float64 bits are never all-ones
// (that pattern is a NaN), so the sentinel cannot collide with a real value.
const approxUnresolved = ^uint64(0)

// approxState carries everything the band-aware query paths need beyond the
// exact index fields. band is in CSR arc order (what persistence stores);
// nbrBand is the same values permuted into the σ-sorted neighbor order.
type approxState struct {
	delta float64
	k     int
	seed  uint64

	// exactFallback marks a build that requested approximation but ran the
	// exact pass anyway (non-unit edge weights). band and friends are nil and
	// every query takes the exact path.
	exactFallback bool

	band    []float32 // per arc (CSR order): σ̂ confidence half-width
	nbrBand []float32 // band permuted into the sorted neighbor order
	maxBand []float64 // per vertex: max band over its arcs (walk slack)

	// resolved memoizes query-time exact evaluations, one slot per sorted
	// neighbor-order position, initialized to approxUnresolved. Mirror slots
	// of an arc resolve independently but deterministically to the same
	// value (the exact kernels are symmetric bit-for-bit).
	resolved    []uint64
	resolvedCnt atomic.Int64

	eng *simeval.Engine // exact fallback evaluator (σ pass engine, no pruning)

	buildExactArcs int64 // tier-2: undirected edges evaluated exactly at build
	sketchedArcs   int64 // undirected edges estimated from sketches

	ordersU map[int]*coreOrder // μ → memoized conservative upper core order
}

// ApproxStats reports how an approximate index split its work between the
// sketch estimator and the exact fallback tiers.
type ApproxStats struct {
	Delta         float64 // the accuracy dial (0 = exact index)
	K             int     // MinHash permutations per vertex
	ExactFallback bool    // whole build ran exact (non-unit weights)
	BuildExact    int64   // edges evaluated exactly at build (cheap-arc tier)
	Sketched      int64   // edges estimated from sketches
	Resolved      int64   // arc slots resolved exactly at query time so far
}

// Delta returns the accuracy dial the index was built with (0 for an exact
// index).
func (x *Index) Delta() float64 {
	if x.approx == nil {
		return 0
	}
	return x.approx.delta
}

// Approx reports the approximate-mode statistics (zero value for an exact
// index).
func (x *Index) Approx() ApproxStats {
	a := x.approx
	if a == nil {
		return ApproxStats{}
	}
	return ApproxStats{
		Delta:         a.delta,
		K:             a.k,
		ExactFallback: a.exactFallback,
		BuildExact:    a.buildExactArcs,
		Sketched:      a.sketchedArcs,
		Resolved:      a.resolvedCnt.Load(),
	}
}

// BuildApprox is Build with the accuracy dial: delta=0 is exactly Build;
// delta in (0,1) evaluates σ from MinHash sketches with a (δ, band)
// guarantee and exact fallback for near-threshold arcs.
func BuildApprox(g graph.Graph, threads int, delta float64) (*Index, error) {
	return BuildApproxCtx(context.Background(), g, threads, delta)
}

// BuildApproxCtx is BuildApprox with cooperative cancellation.
func BuildApproxCtx(ctx context.Context, g graph.Graph, threads int, delta float64) (*Index, error) {
	return buildApproxCtx(ctx, g, threads, delta, simeval.DefaultSketchK, defaultSketchSeed)
}

// buildApproxCtx is the k/seed-parameterized build used by tests to force
// wide or narrow bands.
func buildApproxCtx(ctx context.Context, g graph.Graph, threads int, delta float64, k int, seed uint64) (*Index, error) {
	if delta == 0 {
		return BuildCtx(ctx, g, threads)
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("index: approx delta must be in [0,1), got %v", delta)
	}
	if !simeval.UnitWeights(g) {
		// Tier 1: weighted graphs have no sketchable set-resemblance form of
		// σ; run the exact build and record the fallback.
		x, err := BuildCtx(ctx, g, threads)
		if err != nil {
			return nil, err
		}
		x.approx = &approxState{delta: delta, k: k, seed: seed, exactFallback: true}
		return x, nil
	}

	start := time.Now()
	sk, err := simeval.BuildSketches(ctx, g, k, seed, threads)
	if err != nil {
		return nil, err
	}
	t := simeval.HoeffdingHalfWidth(k, delta)
	eng := simeval.New(g, 0, simeval.Options{})
	sigma := make([]float64, g.NumArcs())
	band := make([]float32, g.NumArcs())
	type tally struct{ exact, sketched int64 }
	totals, err := par.ReduceCtx(ctx, g.NumVertices(), threads, par.Adaptive, func(w, i int, acc tally) tally {
		we := eng.ForWorker(w)
		v := int32(i)
		lo, _ := g.NeighborRange(v)
		dv := g.Degree(v)
		g.EachNeighbor(v, func(j int, q int32, wt float32) bool {
			if v >= q {
				return true
			}
			dq := g.Degree(q)
			if int(dv)+int(dq) <= k {
				// Tier 2: the exact merge join touches fewer entries than the
				// k-minima comparison — estimating would be slower *and* less
				// accurate. Band 0: the value is exact.
				acc.exact++
				num, denom := we.EdgeNumerator(v, q, wt)
				sigma[lo+int64(j)] = simeval.Crossing(num, denom)
				return true
			}
			acc.sketched++
			jhat := sk.EstimateJaccard(v, q)
			a, b := float64(dv)+1, float64(dq)+1
			s := simeval.SigmaFromJaccard(jhat, a, b)
			jLo, jHi := jhat-t, jhat+t
			if jLo < 0 {
				jLo = 0
			}
			if jHi > 1 {
				jHi = 1
			}
			// The σ(J) map is monotone, so the J interval's endpoints bound
			// the σ interval; keep the wider side as a symmetric half-width,
			// rounded up so the float32 narrowing stays conservative.
			hw := s - simeval.SigmaFromJaccard(jLo, a, b)
			if d := simeval.SigmaFromJaccard(jHi, a, b) - s; d > hw {
				hw = d
			}
			bw := float32(hw)
			if float64(bw) < hw {
				bw = math.Nextafter32(bw, float32(math.Inf(1)))
			}
			sigma[lo+int64(j)] = s
			band[lo+int64(j)] = bw
			return true
		})
		return acc
	}, func(a, b tally) tally { return tally{a.exact + b.exact, a.sketched + b.sketched} })
	if err != nil {
		return nil, err
	}
	graph.PropagateMirrors(g, sigma)
	graph.PropagateMirrors(g, band)

	x := &Index{
		g:        g,
		sigma:    sigma,
		simEvals: totals.exact,
		threads:  threads,
		orders:   map[int]*coreOrder{},
		approx: &approxState{
			delta: delta, k: k, seed: seed,
			band: band, eng: eng,
			buildExactArcs: totals.exact,
			sketchedArcs:   totals.sketched,
		},
	}
	if err := x.sortNeighborsCtx(ctx, threads); err != nil {
		return nil, err
	}
	x.finishApprox()
	x.buildTau = time.Since(start)
	return x, nil
}

// finishApprox derives the per-vertex walk slack and the query-time
// resolution cache from the sorted band array. Called after sortNeighborsCtx
// (which fills nbrBand) on both the build and the restore path.
func (x *Index) finishApprox() {
	a := x.approx
	g := x.g
	n := g.NumVertices()
	a.maxBand = make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		lo, hi := g.NeighborRange(v)
		m := float64(0)
		for e := lo; e < hi; e++ {
			if b := float64(a.nbrBand[e]); b > m {
				m = b
			}
		}
		a.maxBand[v] = m
	}
	a.resolved = make([]uint64, g.NumArcs())
	for i := range a.resolved {
		a.resolved[i] = approxUnresolved
	}
	if a.eng == nil {
		a.eng = simeval.New(g, 0, simeval.Options{})
	}
	a.ordersU = map[int]*coreOrder{}
}

// numeratorEval is the exact-evaluation surface resolveExact needs; both the
// concurrency-safe Engine and a per-worker WorkerEngine satisfy it.
type numeratorEval interface {
	EdgeNumerator(p, q int32, wpq float32) (num, denom float64)
}

// resolveExact returns the exact activation threshold of sorted slot e of
// vertex p, memoizing it in the lock-free resolution cache. Racing resolvers
// compute the identical deterministic value; the CAS only keeps the
// resolution count honest.
func (x *Index) resolveExact(ev numeratorEval, p int32, e int64) float64 {
	a := x.approx
	if v := atomic.LoadUint64(&a.resolved[e]); v != approxUnresolved {
		return math.Float64frombits(v)
	}
	// Approximate mode implies unit weights (tier 1), so the adjacent pair's
	// edge weight is 1 without a lookup.
	num, denom := ev.EdgeNumerator(p, x.nbr[e], 1)
	s := simeval.Crossing(num, denom)
	if atomic.CompareAndSwapUint64(&a.resolved[e], approxUnresolved, math.Float64bits(s)) {
		a.resolvedCnt.Add(1)
	}
	return s
}

// effSig returns the effective similarity of sorted slot e of vertex p for a
// query at threshold eps: the estimate when ε is outside the slot's error
// band (the decision σ̂ ≥ ε is then reliable), the memoized exact value when
// ε lands inside it.
func (x *Index) effSig(ev numeratorEval, p int32, e int64, eps float64) float64 {
	s := x.nbrSig[e]
	b := float64(x.approx.nbrBand[e])
	if b == 0 || s-b >= eps || s+b < eps {
		return s
	}
	return x.resolveExact(ev, p, e)
}

// isCoreApprox decides whether v is a core at (μ, ε) under the band-aware
// predicate: at least μ−1 neighbors with effective similarity ≥ ε (plus v
// itself). The σ̂-sorted order still bounds the scan — any arc with
// σ̂ < ε − maxBand[v] is dissimilar even at the top of its band.
func (x *Index) isCoreApprox(ev numeratorEval, v int32, mu int, eps float64) bool {
	if mu <= 1 {
		return true
	}
	lo, hi := x.g.NeighborRange(v)
	need := mu - 1
	if int(hi-lo) < need {
		return false
	}
	slack := eps - x.approx.maxBand[v]
	if x.nbrSig[lo+int64(need-1)]-x.approx.maxBand[v] >= eps {
		return true // even the bands' low edges clear ε: certainly a core
	}
	cnt := 0
	for e := lo; e < hi; e++ {
		if x.nbrSig[e] < slack {
			break
		}
		if int64(need-cnt) > hi-e {
			return false // not enough arcs left to reach μ−1
		}
		if x.effSig(ev, v, e, eps) >= eps {
			cnt++
			if cnt >= need {
				return true
			}
		}
	}
	return false
}

// upperCoreOrderFor returns the memoized *conservative* core order for μ:
// vertices sorted by CoreThreshold(v, μ) + maxBand[v] descending. The
// (μ−1)-th largest effective similarity never exceeds the (μ−1)-th largest
// estimate plus the vertex's largest band, so the prefix with upper
// threshold ≥ ε is a superset of the true cores — each candidate is then
// verified with isCoreApprox.
func (x *Index) upperCoreOrderFor(mu int) *coreOrder {
	x.mu.Lock()
	defer x.mu.Unlock()
	if co, ok := x.approx.ordersU[mu]; ok {
		return co
	}
	n := x.g.NumVertices()
	co := &coreOrder{}
	for v := int32(0); v < int32(n); v++ {
		if mu > 1 {
			lo, hi := x.g.NeighborRange(v)
			if int(hi-lo) < mu-1 {
				continue // too few arcs: no band can make v a core
			}
		}
		// An all-zero estimate row can still hide a core inside its bands, so
		// the candidate filter keys on the *upper* threshold, never the bare
		// estimate.
		if t := x.CoreThreshold(v, mu) + x.approx.maxBand[v]; t > 0 {
			co.verts = append(co.verts, v)
			co.thr = append(co.thr, t)
		}
	}
	ord := make([]int32, len(co.verts))
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		if co.thr[ord[a]] != co.thr[ord[b]] {
			return co.thr[ord[a]] > co.thr[ord[b]]
		}
		return co.verts[ord[a]] < co.verts[ord[b]]
	})
	verts := make([]int32, len(ord))
	thr := make([]float64, len(ord))
	for i, o := range ord {
		verts[i] = co.verts[o]
		thr[i] = co.thr[o]
	}
	co.verts, co.thr = verts, thr
	x.approx.ordersU[mu] = co
	return co
}

// queryApprox answers (μ, ε) from the approximate index: candidate cores
// from the conservative upper core order, band-aware verification, then the
// same union/claim walk as the exact Query with effective similarities. The
// result is deterministic (and thread-count independent): every uncertain
// arc resolves to the same exact value regardless of which query or worker
// resolves it first.
func (x *Index) queryApprox(mu int, eps float64) (*cluster.Result, error) {
	a := x.approx
	n := x.g.NumVertices()
	co := x.upperCoreOrderFor(mu)
	k := sort.Search(len(co.verts), func(i int) bool { return co.thr[i] < eps })
	cands := co.verts[:k]

	coreIs := make([]bool, n)
	cores := make([]int32, 0, len(cands))
	if x.threads != 1 && len(cands) >= parallelQueryMin {
		par.ForWorker(len(cands), x.threads, par.Adaptive, func(w, i int) {
			coreIs[cands[i]] = x.isCoreApprox(a.eng.ForWorker(w), cands[i], mu, eps)
		})
	} else {
		ev := a.eng.ForWorker(0)
		for _, v := range cands {
			coreIs[v] = x.isCoreApprox(ev, v, mu, eps)
		}
	}
	for _, v := range cands {
		if coreIs[v] {
			cores = append(cores, v)
		}
	}

	ds := unionfind.NewConcurrent(n)
	claim := make([]int32, n)
	for i := range claim {
		claim[i] = -1
	}
	if x.threads != 1 && len(cores) >= parallelQueryMin {
		par.ForWorker(len(cores), x.threads, par.Adaptive, func(w, i int) {
			ev := a.eng.ForWorker(w)
			u := cores[i]
			lo, hi := x.g.NeighborRange(u)
			slack := eps - a.maxBand[u]
			for e := lo; e < hi; e++ {
				if x.nbrSig[e] < slack {
					break
				}
				if x.effSig(ev, u, e, eps) < eps {
					continue
				}
				q := x.nbr[e]
				if coreIs[q] {
					if u < q {
						ds.Union(u, q)
					}
					continue
				}
				for {
					c := atomic.LoadInt32(&claim[q])
					if c != -1 && c <= u {
						break
					}
					if atomic.CompareAndSwapInt32(&claim[q], c, u) {
						break
					}
				}
			}
		})
	} else {
		ev := a.eng.ForWorker(0)
		for _, u := range cores {
			lo, hi := x.g.NeighborRange(u)
			slack := eps - a.maxBand[u]
			for e := lo; e < hi; e++ {
				if x.nbrSig[e] < slack {
					break
				}
				if x.effSig(ev, u, e, eps) < eps {
					continue
				}
				q := x.nbr[e]
				if coreIs[q] {
					if u < q {
						ds.Union(u, q)
					}
				} else if c := claim[q]; c == -1 || u < c {
					claim[q] = u
				}
			}
		}
	}

	res := cluster.NewResult(n)
	for _, u := range cores {
		res.Roles[u] = cluster.Core
		res.Labels[u] = ds.Find(u)
	}
	for v := int32(0); v < int32(n); v++ {
		if c := claim[v]; c >= 0 {
			res.Roles[v] = cluster.Border
			res.Labels[v] = ds.Find(c)
		}
	}
	cluster.ClassifyNoise(x.g, res)
	res.Canonicalize()
	return res, nil
}

// LocalView returns the local.View a seed-centered query at threshold eps
// should run against: the index itself when it is exact, or a band-aware
// adapter that serves *effective* neighbor orders (estimates outside the
// band, memoized exact values inside it) re-sorted per vertex. Effective
// similarities are symmetric, so local membership through the adapter is
// byte-identical to the seed's community under queryApprox — the same
// local/global equivalence the exact index enjoys.
//
// The returned view is safe for concurrent use; per-vertex effective orders
// are memoized for the view's lifetime, so callers should create one view
// per (ε, query burst) rather than one per vertex touched.
func (x *Index) LocalView(eps float64) local.View {
	if x.approx == nil || x.approx.exactFallback {
		return x
	}
	return &approxView{x: x, eps: eps, ords: map[int32]effOrder{}}
}

// effOrder is one vertex's neighbor order under effective similarities.
type effOrder struct {
	ids  []int32
	sigs []float64
}

// approxView adapts an approximate index to the local.View surface at one
// fixed ε.
type approxView struct {
	x   *Index
	eps float64

	mu   sync.Mutex
	ords map[int32]effOrder
}

func (av *approxView) NumVertices() int { return av.x.NumVertices() }

func (av *approxView) NeighborOrder(v int32) ([]int32, []float64) {
	o := av.order(v)
	return o.ids, o.sigs
}

func (av *approxView) CoreThreshold(v int32, mu int) float64 {
	if mu <= 1 {
		return 1
	}
	o := av.order(v)
	if len(o.sigs) < mu-1 {
		return 0
	}
	return o.sigs[mu-2]
}

// order returns v's effective neighbor order, computing and memoizing it on
// first use. Uncertain arcs resolve through the index's shared exact cache
// (via the concurrency-safe Engine), so a vertex's effective order agrees
// with every global query at the same ε.
func (av *approxView) order(v int32) effOrder {
	av.mu.Lock()
	if o, ok := av.ords[v]; ok {
		av.mu.Unlock()
		return o
	}
	av.mu.Unlock()

	x := av.x
	lo, hi := x.g.NeighborRange(v)
	deg := int(hi - lo)
	o := effOrder{ids: make([]int32, deg), sigs: make([]float64, deg)}
	for j := 0; j < deg; j++ {
		e := lo + int64(j)
		o.ids[j] = x.nbr[e]
		o.sigs[j] = x.effSig(x.approx.eng, v, e, av.eps)
	}
	ord := make([]int32, deg)
	for j := range ord {
		ord[j] = int32(j)
	}
	sort.Slice(ord, func(a, b int) bool {
		if o.sigs[ord[a]] != o.sigs[ord[b]] {
			return o.sigs[ord[a]] > o.sigs[ord[b]]
		}
		return o.ids[ord[a]] < o.ids[ord[b]]
	})
	ids := make([]int32, deg)
	sigs := make([]float64, deg)
	for j, oj := range ord {
		ids[j] = o.ids[oj]
		sigs[j] = o.sigs[oj]
	}
	o = effOrder{ids: ids, sigs: sigs}

	av.mu.Lock()
	av.ords[v] = o
	av.mu.Unlock()
	return o
}
