package index

import (
	"context"

	"anyscan/internal/graph"
)

// BuildApproxK exposes the k/seed-parameterized approximate build to the
// external test package, so property tests can force wide bands (tiny k) or
// tight ones without changing the public default.
func BuildApproxK(g graph.Graph, threads int, delta float64, k int, seed uint64) (*Index, error) {
	return buildApproxCtx(context.Background(), g, threads, delta, k, seed)
}

// ArcBand returns the error band of arc e in CSR arc order (0 for an exact
// index or an exact-tier arc).
func (x *Index) ArcBand(e int64) float64 {
	if x.approx == nil || x.approx.band == nil {
		return 0
	}
	return float64(x.approx.band[e])
}
