package index_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/gen"
	"anyscan/internal/index"
	"anyscan/internal/scan"
	"anyscan/internal/testutil"
)

// TestQueryMatchesReferenceOnGrid is the equivalence suite of the query
// index: over every random test graph and a randomized (μ, ε) grid, Query
// must be byte-identical (after canonicalization, which Query performs) to
// the literal reference implementation, and equivalent to batch SCAN.
func TestQueryMatchesReferenceOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	epsGrid := []float64{0.1, 0.3, 0.45, 0.5, 0.6, 0.75, 0.9, 1.0}
	for _, tc := range testutil.RandomCases(1) {
		for _, threads := range []int{1, 4} {
			x := index.Build(tc.G, threads)
			muValues := []int{1, 2, tc.Mu, tc.Mu + 2}
			for _, mu := range muValues {
				// Fixed grid plus randomized points per (graph, μ).
				eps := append([]float64{}, epsGrid...)
				for i := 0; i < 4; i++ {
					eps = append(eps, 0.05+0.9*rng.Float64())
				}
				for _, e := range eps {
					got, err := x.Query(mu, e)
					if err != nil {
						t.Fatalf("%s mu=%d eps=%v: %v", tc.Name, mu, e, err)
					}
					want := cluster.Reference(tc.G, mu, e)
					if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.Roles, want.Roles) {
						t.Fatalf("%s threads=%d mu=%d eps=%v: Query differs from Reference", tc.Name, threads, mu, e)
					}
					if err := cluster.Validate(tc.G, mu, e, got); err != nil {
						t.Fatalf("%s mu=%d eps=%v: invalid clustering: %v", tc.Name, mu, e, err)
					}
					scanRes, _ := scan.SCAN(tc.G, mu, e)
					if err := cluster.Equivalent(scanRes, got); err != nil {
						t.Fatalf("%s mu=%d eps=%v: Query not equivalent to SCAN: %v", tc.Name, mu, e, err)
					}
				}
			}
		}
	}
}

// TestOneSigmaPassManyQueries asserts the defining property of the index:
// exactly one σ evaluation per undirected edge at build time, zero for any
// number of queries at any number of distinct μ afterwards.
func TestOneSigmaPassManyQueries(t *testing.T) {
	g := testutil.Karate()
	x := index.Build(g, 2)
	wantSims := g.NumArcs() / 2
	if x.SimEvals() != wantSims {
		t.Fatalf("build spent %d σ evaluations, want %d (one per edge)", x.SimEvals(), wantSims)
	}
	for mu := 1; mu <= 6; mu++ {
		for _, eps := range []float64{0.2, 0.5, 0.8} {
			if _, err := x.Query(mu, eps); err != nil {
				t.Fatal(err)
			}
		}
	}
	if x.SimEvals() != wantSims {
		t.Fatalf("queries changed σ evaluation count to %d", x.SimEvals())
	}
}

// TestCoreThresholdSemantics checks the O(1) per-μ core threshold against
// the clustering itself: a vertex is a core at exactly ε ≤ coreThr(v, μ).
func TestCoreThresholdSemantics(t *testing.T) {
	g := testutil.TwoTriangles()
	x := index.Build(g, 1)
	for mu := 1; mu <= 4; mu++ {
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			thr := x.CoreThreshold(v, mu)
			if thr < 0 || thr > 1 {
				t.Fatalf("mu=%d vertex %d threshold %v out of range", mu, v, thr)
			}
			if thr <= 0 {
				continue
			}
			at, err := x.Query(mu, thr)
			if err != nil {
				t.Fatal(err)
			}
			if at.Roles[v] != cluster.Core {
				t.Errorf("mu=%d vertex %d not core at its own threshold %v", mu, v, thr)
			}
			if above := math.Nextafter(thr, 2); above <= 1 {
				res, err := x.Query(mu, above)
				if err != nil {
					t.Fatal(err)
				}
				if res.Roles[v] == cluster.Core {
					t.Errorf("mu=%d vertex %d still core above its threshold %v", mu, v, thr)
				}
			}
		}
	}
}

func TestQueryRejectsBadParams(t *testing.T) {
	x := index.Build(testutil.Karate(), 1)
	for _, bad := range []struct {
		mu  int
		eps float64
	}{
		{0, 0.5}, {-1, 0.5}, {2, 0}, {2, -0.1}, {2, 1.1}, {2, math.NaN()},
	} {
		if _, err := x.Query(bad.mu, bad.eps); err == nil {
			t.Errorf("Query(%d, %v) accepted", bad.mu, bad.eps)
		}
	}
}

// TestConcurrentQueries hammers one shared Index with parallel queries
// across distinct μ (racing on the lazily memoized core orders) and ε, and
// concurrently builds fresh indexes over the same shared graph. Run under
// -race this is the concurrency audit for the anyscand index cache.
func TestConcurrentQueries(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 12, 7))
	if err != nil {
		t.Fatalf("generating graph: %v", err)
	}
	x := index.Build(g, 4)

	type key struct {
		mu  int
		eps float64
	}
	muValues := []int{2, 3, 4, 6}
	epsValues := []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	baseline := map[key]*cluster.Result{}
	for _, mu := range muValues {
		for _, eps := range epsValues {
			res, err := x.Query(mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			baseline[key{mu, eps}] = res
		}
	}
	// A second index whose per-μ core orders are still cold, so concurrent
	// queries race on the first derivation, not just on reads.
	cold := index.Build(g, 4)

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, 2*workers*rounds+workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := key{muValues[(w+r)%len(muValues)], epsValues[(w*3+r)%len(epsValues)]}
				for _, ix := range []*index.Index{x, cold} {
					got, err := ix.Query(k.mu, k.eps)
					if err != nil {
						errs <- err.Error()
						return
					}
					want := baseline[k]
					if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.Roles, want.Roles) {
						errs <- "Query diverged under concurrency"
						return
					}
				}
			}
			// Builds racing with queries on the same shared CSR.
			fresh := index.Build(g, 2)
			if _, err := fresh.Query(3, 0.5); err != nil {
				errs <- err.Error()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tc := testutil.RandomCases(1)[0]
	x := index.Build(tc.G, 2)

	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := index.Load(tc.G, bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.SimEvals() != 0 {
		t.Errorf("loaded index reports %d σ evaluations, want 0", loaded.SimEvals())
	}
	for _, eps := range []float64{0.3, 0.5, 0.8} {
		a, err := x.Query(tc.Mu, eps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Query(tc.Mu, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Labels, b.Labels) || !reflect.DeepEqual(a.Roles, b.Roles) {
			t.Fatalf("eps=%v: loaded index answers differently", eps)
		}
	}

	path := filepath.Join(t.TempDir(), "graph.idx")
	if err := x.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	fromFile, err := index.LoadFile(tc.G, path, 2)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	a, _ := x.Query(tc.Mu, 0.5)
	b, _ := fromFile.Query(tc.Mu, 0.5)
	if !reflect.DeepEqual(a.Labels, b.Labels) {
		t.Fatal("file round-trip answers differently")
	}
}

func TestLoadRejectsWrongGraph(t *testing.T) {
	cases := testutil.RandomCases(1)
	x := index.Build(cases[0].G, 1)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := index.Load(cases[1].G, bytes.NewReader(buf.Bytes()), 1); err == nil {
		t.Fatal("index loaded over a different graph")
	}
}

// TestLoadRejectsDamage truncates the saved index at every interesting
// boundary and flips bits across the file; every damaged variant must be
// rejected with an error, never a bad index or a panic.
func TestLoadRejectsDamage(t *testing.T) {
	g := testutil.Karate()
	x := index.Build(g, 1)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, n := range []int{0, 3, 4, 8, 16, 19, 20, len(raw) / 2, len(raw) - 1} {
		if n >= len(raw) {
			continue
		}
		if _, err := index.Load(g, bytes.NewReader(raw[:n]), 1); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	for _, off := range []int{0, 5, 10, 18, 25, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		if _, err := index.Load(g, bytes.NewReader(bad), 1); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
}

func TestSaveFileIsAtomic(t *testing.T) {
	g := testutil.Karate()
	x := index.Build(g, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "k.idx")
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := x.SaveFile(path); err != nil { // overwrite in place
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %d entries", len(ents))
	}
	if _, err := index.LoadFile(g, path, 1); err != nil {
		t.Fatalf("reload after overwrite: %v", err)
	}
}
