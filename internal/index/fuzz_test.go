package index_test

import (
	"bytes"
	"testing"

	"anyscan/internal/index"
	"anyscan/internal/testutil"
)

// FuzzLoadIndex feeds arbitrary bytes to the persisted-index loader: it must
// either reject them with an error or return an index that answers queries —
// never panic, never poison later queries with out-of-range σ values. The
// corpus seeds a pristine save plus the corruption shapes of
// TestLoadRejectsDamage (truncations, header and payload bit flips).
func FuzzLoadIndex(f *testing.F) {
	g := testutil.Karate()
	var buf bytes.Buffer
	if err := index.Build(g, 1).Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:19])
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 16, 20, len(valid) / 2, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x01
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		x, err := index.Load(g, bytes.NewReader(data), 1)
		if err != nil {
			return
		}
		res, err := x.Query(2, 0.5)
		if err != nil {
			t.Fatalf("loaded index cannot answer a basic query: %v", err)
		}
		if res.NumClusters < 0 {
			t.Fatalf("loaded index returned %d clusters", res.NumClusters)
		}
	})
}
