// Package index implements a GS*-Index-style query structure for structural
// graph clustering: pay the Θ(|E|) similarity cost once per graph, then
// answer exact SCAN clusterings for *any* (μ, ε) parameter pair in time
// proportional to the similar-neighborhood prefixes the answer actually
// touches — no σ is ever recomputed.
//
// This generalizes package sweep, which fixes μ at build time, to the full
// two-parameter query problem of GS*-Index (Tseng, Dhulipala & Shun;
// see PAPERS.md): because σ values do not depend on μ, one evaluation pass
// plus per-vertex neighbor orders sorted by descending σ suffice for every
// (μ, ε). From the sorted order,
//
//   - coreThr(v, μ) — the largest ε at which v is a core — is an O(1)
//     lookup: it is the (μ-1)-th largest σ among v's arcs (σ(v,v)=1
//     supplies the μ-th similar member);
//   - the ε-similar neighbors of v are exactly a prefix of v's order;
//   - the cores at (μ, ε) are exactly a prefix of the per-μ core order
//     (vertices sorted by descending coreThr), which the index derives
//     lazily and memoizes the first time a μ value is queried.
//
// A Query(μ, ε) therefore walks only core-order and neighbor-order prefixes,
// unions cores along similar core-core edges, and attaches borders — the
// same replay semantics as sweep.Explorer.ClusteringAt, so results are
// byte-identical to cluster.Reference after canonicalization.
package index

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// Index answers exact (μ, ε) clustering queries for one graph.
//
// An Index is immutable after Build/Load apart from the lazily memoized
// per-μ core orders, which are guarded internally; every method is safe for
// any number of concurrent callers with no external locking. The anyscand
// service relies on this to cache a single Index per graph across requests.
type Index struct {
	g graph.Graph

	// sigma[e] is the activation threshold of arc e in CSR arc order: the
	// largest representable ε at which the similarity predicate of the arc's
	// endpoints still holds (simeval.Crossing of the exact numerator and
	// denominator). Symmetric across arc mirrors. Retained in arc order so
	// persistence and sweep.FromIndex can consume it directly.
	sigma []float64

	// nbr/nbrSig are the per-vertex neighbor orders, parallel to the CSR
	// offset ranges: within each vertex's range, neighbors sorted by σ
	// descending (ties by neighbor id ascending). The ε-similar neighbors of
	// v are the maximal prefix with nbrSig ≥ ε.
	nbr    []int32
	nbrSig []float64

	simEvals int64         // exact σ evaluations spent building (0 for loads)
	buildTau time.Duration // wall time of Build (0 for loads)
	threads  int           // worker count for large parallel queries

	// approx is non-nil for indexes built with BuildApprox at δ>0: the σ
	// slice then holds sketch estimates with per-arc error bands and queries
	// take the band-aware path (see approx.go). nil means every σ is exact.
	approx *approxState

	mu     sync.Mutex
	orders map[int]*coreOrder // μ → memoized core order
}

// coreOrder is the per-μ structure: all vertices with a positive core
// threshold, sorted by descending threshold (ties by id ascending). The
// cores at ε are exactly the prefix with thr ≥ ε.
type coreOrder struct {
	verts []int32
	thr   []float64
}

// Build evaluates all |E| similarities with the given number of workers and
// sorts every vertex's neighbor order. Cost: one exact σ per undirected edge
// plus an O(|E| log d_max) sort, both parallelized; this is the only σ pass
// the index will ever perform.
func Build(g graph.Graph, threads int) *Index {
	x, _ := BuildCtx(context.Background(), g, threads)
	return x
}

// BuildCtx is Build with cooperative cancellation: the σ pass and the
// neighbor-order sort poll ctx between chunks, so an expensive build whose
// every requester has gone away (an abandoned single-flight build in a
// serving cache, a shut-down daemon) stops burning cores within one chunk
// instead of running to completion. On cancellation BuildCtx returns
// ctx.Err() and no Index — a partially evaluated σ slice is never exposed.
func BuildCtx(ctx context.Context, g graph.Graph, threads int) (*Index, error) {
	start := time.Now()
	n := g.NumVertices()
	eng := simeval.New(g, 0, simeval.Options{}) // exact values: no pruning

	// Each worker evaluates through its own WorkerEngine (degree-adaptive
	// join kernels, private scratch) and counts its evaluations in the
	// reduction accumulator, so the hot loop touches no shared cache line.
	// Only the canonical arc slot (v < q) is written here; the mirror slots
	// are filled by one PropagateMirrors pass afterwards, which works on any
	// backend without materializing a reverse-edge index.
	sigma := make([]float64, g.NumArcs())
	evals, err := par.ReduceCtx(ctx, n, threads, par.Adaptive, func(w, i int, acc int64) int64 {
		we := eng.ForWorker(w)
		v := int32(i)
		lo, _ := g.NeighborRange(v)
		g.EachNeighbor(v, func(j int, q int32, wt float32) bool {
			if v < q {
				acc++
				num, denom := we.EdgeNumerator(v, q, wt)
				sigma[lo+int64(j)] = simeval.Crossing(num, denom)
			}
			return true
		})
		return acc
	}, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	graph.PropagateMirrors(g, sigma)

	x := &Index{
		g:        g,
		sigma:    sigma,
		simEvals: evals,
		threads:  threads,
		orders:   map[int]*coreOrder{},
	}
	if err := x.sortNeighborsCtx(ctx, threads); err != nil {
		return nil, err
	}
	x.buildTau = time.Since(start)
	return x, nil
}

// sortNeighbors derives nbr/nbrSig from the arc-order sigma slice.
func (x *Index) sortNeighbors(threads int) {
	x.sortNeighborsCtx(nil, threads)
}

// sortNeighborsCtx is sortNeighbors with cooperative cancellation (nil ctx
// disables polling and never errors).
func (x *Index) sortNeighborsCtx(ctx context.Context, threads int) error {
	g := x.g
	x.nbr = make([]int32, g.NumArcs())
	x.nbrSig = make([]float64, g.NumArcs())
	var band, nbrBand []float32
	if x.approx != nil && x.approx.band != nil {
		// Approximate indexes carry the per-arc error band through the same
		// permutation, so the sorted order and its bands stay parallel.
		band = x.approx.band
		nbrBand = make([]float32, g.NumArcs())
		x.approx.nbrBand = nbrBand
	}
	return par.ForCtx(ctx, g.NumVertices(), threads, 32, func(i int) {
		v := int32(i)
		lo, hi := g.NeighborRange(v)
		deg := int(hi - lo)
		// On a flat CSR this is a storage alias; a compressed backend decodes
		// once per vertex here (amortized against the O(deg log deg) sort).
		ids, _ := g.Neighbors(v)
		ord := make([]int32, deg)
		for j := range ord {
			ord[j] = int32(j)
		}
		sort.Slice(ord, func(a, b int) bool {
			sa, sb := x.sigma[lo+int64(ord[a])], x.sigma[lo+int64(ord[b])]
			if sa != sb {
				return sa > sb
			}
			return ids[ord[a]] < ids[ord[b]]
		})
		for j, o := range ord {
			x.nbr[lo+int64(j)] = ids[o]
			x.nbrSig[lo+int64(j)] = x.sigma[lo+int64(o)]
			if nbrBand != nil {
				nbrBand[lo+int64(j)] = band[lo+int64(o)]
			}
		}
	})
}

// Graph returns the graph the index was built over (whichever backend the
// caller supplied to Build or Load).
func (x *Index) Graph() graph.Graph { return x.g }

// NumVertices returns the vertex count of the indexed graph. Together with
// NeighborOrder and CoreThreshold it makes the index a local.View, so
// seed-centered community queries can run straight off the index.
func (x *Index) NumVertices() int { return x.g.NumVertices() }

// SimEvals returns the number of exact σ evaluations Build performed: one
// per undirected edge, or 0 for an index restored by Load.
func (x *Index) SimEvals() int64 { return x.simEvals }

// BuildTime returns the wall time Build took (0 for an index restored by
// Load).
func (x *Index) BuildTime() time.Duration { return x.buildTau }

// Bytes returns the approximate resident size of the index's own storage
// (σ thresholds, sorted neighbor orders, memoized core orders) — the graph
// itself is owned by the caller and not counted. Serving caches use this to
// enforce a memory budget with LRU eviction.
func (x *Index) Bytes() int64 {
	b := int64(len(x.sigma))*8 + int64(len(x.nbr))*4 + int64(len(x.nbrSig))*8
	if a := x.approx; a != nil {
		b += int64(len(a.band))*4 + int64(len(a.nbrBand))*4 +
			int64(len(a.maxBand))*8 + int64(len(a.resolved))*8
	}
	x.mu.Lock()
	for _, co := range x.orders {
		b += int64(len(co.verts))*4 + int64(len(co.thr))*8
	}
	if a := x.approx; a != nil {
		for _, co := range a.ordersU {
			b += int64(len(co.verts))*4 + int64(len(co.thr))*8
		}
	}
	x.mu.Unlock()
	return b
}

// Sigma returns the activation threshold of arc e (the largest ε at which
// the arc's endpoints are similar). Arcs are in CSR order, mirrors agree.
func (x *Index) Sigma(arc int64) float64 { return x.sigma[arc] }

// ArcSigmas returns the per-arc activation thresholds in CSR arc order.
// The slice is the index's own backing storage, shared to avoid copying
// |E| floats: callers must treat it as read-only. sweep.FromIndex uses it
// to derive a μ-fixed Explorer without a second similarity pass.
func (x *Index) ArcSigmas() []float64 { return x.sigma }

// NeighborOrder returns v's σ-sorted neighbor order: neighbor ids sorted by
// σ descending (ties by id ascending) and the parallel activation thresholds.
// The slices alias the index's backing storage — callers must treat them as
// read-only. Package live uses them to seed epoch 0 of a mutable graph
// without copying the index.
func (x *Index) NeighborOrder(v int32) (ids []int32, sigs []float64) {
	lo, hi := x.g.NeighborRange(v)
	return x.nbr[lo:hi], x.nbrSig[lo:hi]
}

// Threads returns the worker count the index was built with (what Build was
// given, normalized at the par layer when 0).
func (x *Index) Threads() int { return x.threads }

// CoreThreshold returns the largest ε at which v is a core at the given μ
// (0 = never a core). O(1): the (μ-1)-th largest σ among v's arcs, read off
// the sorted neighbor order; σ(v,v)=1 supplies v's own membership.
func (x *Index) CoreThreshold(v int32, mu int) float64 {
	if mu <= 1 {
		return 1
	}
	lo, hi := x.g.NeighborRange(v)
	need := mu - 1
	if int(hi-lo) < need {
		return 0
	}
	return x.nbrSig[lo+int64(need-1)]
}

// coreOrderFor returns the memoized core order for μ, deriving it on first
// use: one O(1) threshold lookup per vertex plus an O(k log k) sort over the
// k vertices that can ever be cores at this μ.
func (x *Index) coreOrderFor(mu int) *coreOrder {
	x.mu.Lock()
	defer x.mu.Unlock()
	if co, ok := x.orders[mu]; ok {
		return co
	}
	n := x.g.NumVertices()
	co := &coreOrder{}
	for v := int32(0); v < int32(n); v++ {
		if t := x.CoreThreshold(v, mu); t > 0 {
			co.verts = append(co.verts, v)
			co.thr = append(co.thr, t)
		}
	}
	ord := make([]int32, len(co.verts))
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		if co.thr[ord[a]] != co.thr[ord[b]] {
			return co.thr[ord[a]] > co.thr[ord[b]]
		}
		return co.verts[ord[a]] < co.verts[ord[b]]
	})
	verts := make([]int32, len(ord))
	thr := make([]float64, len(ord))
	for i, o := range ord {
		verts[i] = co.verts[o]
		thr[i] = co.thr[o]
	}
	co.verts, co.thr = verts, thr
	x.orders[mu] = co
	return co
}

// Query returns the exact SCAN clustering at (μ, ε) without recomputing any
// similarity. Work beyond the O(|V|) result allocation is proportional to
// the similar-neighborhood prefixes of the cores at (μ, ε).
//
// Borders claimed by several clusters attach to their smallest qualifying
// core, making the output deterministic: after canonicalization it is
// byte-identical to cluster.Reference (and to sweep.Explorer.ClusteringAt).
func (x *Index) Query(mu int, eps float64) (*cluster.Result, error) {
	if mu < 1 {
		return nil, fmt.Errorf("index: mu must be >= 1, got %d", mu)
	}
	if !(eps > 0 && eps <= 1) {
		return nil, fmt.Errorf("index: eps must be in (0,1], got %v", eps)
	}
	if x.approx != nil && !x.approx.exactFallback {
		return x.queryApprox(mu, eps)
	}
	n := x.g.NumVertices()
	co := x.coreOrderFor(mu)
	// Cores at ε are the order prefix with thr ≥ ε.
	k := sort.Search(len(co.verts), func(i int) bool { return co.thr[i] < eps })
	cores := co.verts[:k]

	// Small answers stay sequential (a handful of cores does not amortize a
	// fork/join); large ones fan the core walk out over the lock-free
	// union-find. Both paths produce the same partition and the same
	// smallest-core border claims, so after canonicalization the result is
	// identical either way.
	ds := unionfind.NewConcurrent(n)
	claim := make([]int32, n) // border v → smallest adjacent qualifying core
	for i := range claim {
		claim[i] = -1
	}
	if x.threads != 1 && len(cores) >= parallelQueryMin {
		par.For(len(cores), x.threads, par.Adaptive, func(i int) {
			u := cores[i]
			lo, hi := x.g.NeighborRange(u)
			for e := lo; e < hi; e++ {
				if x.nbrSig[e] < eps {
					break // sorted descending: the rest are dissimilar too
				}
				q := x.nbr[e]
				if x.CoreThreshold(q, mu) >= eps {
					if u < q { // each core-core edge once
						ds.Union(u, q)
					}
					continue
				}
				// CAS-min keeps the claim deterministic under races: the
				// final value is min over all claiming cores regardless of
				// arrival order.
				for {
					c := atomic.LoadInt32(&claim[q])
					if c != -1 && c <= u {
						break
					}
					if atomic.CompareAndSwapInt32(&claim[q], c, u) {
						break
					}
				}
			}
		})
	} else {
		for _, u := range cores {
			lo, hi := x.g.NeighborRange(u)
			for e := lo; e < hi; e++ {
				if x.nbrSig[e] < eps {
					break // sorted descending: the rest are dissimilar too
				}
				q := x.nbr[e]
				if x.CoreThreshold(q, mu) >= eps {
					if u < q { // each core-core edge once
						ds.Union(u, q)
					}
				} else if c := claim[q]; c == -1 || u < c {
					claim[q] = u
				}
			}
		}
	}

	res := cluster.NewResult(n)
	for _, u := range cores {
		res.Roles[u] = cluster.Core
		res.Labels[u] = ds.Find(u)
	}
	for v := int32(0); v < int32(n); v++ {
		if c := claim[v]; c >= 0 {
			res.Roles[v] = cluster.Border
			res.Labels[v] = ds.Find(c)
		}
	}
	cluster.ClassifyNoise(x.g, res)
	res.Canonicalize()
	return res, nil
}

// parallelQueryMin is the core-prefix size above which Query fans the
// core-edge walk out across workers; below it the fork/join overhead exceeds
// the walk itself.
const parallelQueryMin = 4096
