package index_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/gen"
	"anyscan/internal/index"
	"anyscan/internal/local"
	"anyscan/internal/simeval"
	"anyscan/internal/testutil"
)

// approxGraphs are unit-weight random graphs (the sketchable case) spanning
// clustered, power-law, and flat structure.
func approxGraphs() []testutil.RandomCase {
	unit := gen.WeightConfig{}
	return []testutil.RandomCase{
		{Name: "planted", G: gen.PlantedPartition(300, 5, 0.35, 0.01, unit, 11), Mu: 4, Eps: 0.5},
		{Name: "er-dense", G: gen.ErdosRenyi(160, 2400, unit, 12), Mu: 5, Eps: 0.4},
		{Name: "barabasi", G: gen.BarabasiAlbert(400, 4, unit, 13), Mu: 3, Eps: 0.3},
		{Name: "circles", G: gen.SocialCircles(gen.SocialCirclesConfig{
			N: 512, Regions: 4, CrossP: 0.1, CirclesPerV: 2, CircleSize: 40,
			CircleSizeJit: 8, IntraP: 0.6, Seed: 14,
		}), Mu: 6, Eps: 0.6},
	}
}

// TestApproxDecisionsOutsideBandMatchExact is the ε-band contract: for every
// arc whose estimate is outside the error band of ε, the approximate
// decision (σ̂ ≥ ε) must equal the exact similarity decision. δ is set tiny
// so the ≤δ-per-arc tail event does not occur on these fixed seeds; the test
// is deterministic.
func TestApproxDecisionsOutsideBandMatchExact(t *testing.T) {
	for _, tc := range approxGraphs() {
		g := tc.G
		xa, err := index.BuildApprox(g, 2, 1e-6)
		if err != nil {
			t.Fatalf("%s: BuildApprox: %v", tc.Name, err)
		}
		xe := index.Build(g, 1)
		eng := simeval.New(g, 0, simeval.Options{})
		for _, eps := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
			checked, confident := 0, 0
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				lo, _ := g.NeighborRange(v)
				adj, wts := g.Neighbors(v)
				for j, q := range adj {
					if v >= q {
						continue
					}
					e := lo + int64(j)
					est, band := xa.Sigma(e), xa.ArcBand(e)
					checked++
					if !(est-band >= eps || est+band < eps) {
						continue // inside the band: resolved exactly at query time
					}
					confident++
					got := est >= eps
					want := xe.Sigma(e) >= eps
					if got != want {
						t.Fatalf("%s eps=%v arc (%d,%d): approx decision %v, exact %v (est=%v band=%v exact σ=%v)",
							tc.Name, eps, v, q, got, want, est, band, xe.Sigma(e))
					}
					// Cross-check against the engine decision surface too.
					if eng.Sigma(v, q) >= eps != want {
						t.Fatalf("%s: engine σ disagrees with index σ on arc (%d,%d)", tc.Name, v, q)
					}
					_ = wts
				}
			}
			if checked > 0 && confident == 0 {
				t.Fatalf("%s eps=%v: no confident arcs at all — bands degenerate", tc.Name, eps)
			}
		}
	}
}

// TestApproxDeltaZeroIsExact asserts the dial's zero position: δ=0 must
// degenerate to the exact build — byte-identical clusterings AND
// byte-identical persisted index bytes.
func TestApproxDeltaZeroIsExact(t *testing.T) {
	for _, tc := range approxGraphs()[:2] {
		g := tc.G
		xa, err := index.BuildApprox(g, 2, 0)
		if err != nil {
			t.Fatalf("BuildApprox(0): %v", err)
		}
		if xa.Delta() != 0 {
			t.Fatalf("δ=0 index reports Delta %v", xa.Delta())
		}
		xe := index.Build(g, 2)
		for _, eps := range []float64{0.3, 0.5, 0.7} {
			a, err := xa.Query(tc.Mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			e, err := xe.Query(tc.Mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Labels, e.Labels) || !reflect.DeepEqual(a.Roles, e.Roles) {
				t.Fatalf("%s eps=%v: δ=0 clustering differs from exact", tc.Name, eps)
			}
		}
		var ba, be bytes.Buffer
		if err := xa.Save(&ba); err != nil {
			t.Fatal(err)
		}
		if err := xe.Save(&be); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), be.Bytes()) {
			t.Fatalf("%s: δ=0 persisted bytes differ from the exact path", tc.Name)
		}
	}
}

// TestApproxFullFallbackIsExact forces the degenerate configuration where
// every sketched arc's band covers all of (0,1] (k=1): every similarity
// decision then resolves through the exact fallback, so the approximate
// clustering must be byte-identical to the exact one at every (μ, ε) — the
// band-aware walks, slack bounds, and resolution cache all under test.
func TestApproxFullFallbackIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range approxGraphs() {
		g := tc.G
		xa, err := index.BuildApproxK(g, 2, 0.1, 1, 99)
		if err != nil {
			t.Fatalf("%s: BuildApproxK: %v", tc.Name, err)
		}
		xe := index.Build(g, 1)
		for _, mu := range []int{1, 2, tc.Mu, tc.Mu + 3} {
			for i := 0; i < 4; i++ {
				eps := 0.05 + 0.9*rng.Float64()
				a, err := xa.Query(mu, eps)
				if err != nil {
					t.Fatal(err)
				}
				e, err := xe.Query(mu, eps)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Labels, e.Labels) || !reflect.DeepEqual(a.Roles, e.Roles) {
					t.Fatalf("%s mu=%d eps=%v: full-fallback approx differs from exact", tc.Name, mu, eps)
				}
				if err := cluster.Validate(g, mu, eps, a); err != nil {
					t.Fatalf("%s mu=%d eps=%v: invalid clustering: %v", tc.Name, mu, eps, err)
				}
			}
		}
		if st := xa.Approx(); st.Resolved == 0 {
			t.Fatalf("%s: full-fallback run resolved no arcs exactly", tc.Name)
		}
	}
}

// TestApproxQueryThreadCountInvariant: uncertain arcs resolve to the same
// deterministic exact value regardless of which worker gets there first, so
// sequential and parallel approximate queries must agree byte-for-byte.
func TestApproxQueryThreadCountInvariant(t *testing.T) {
	tc := approxGraphs()[0]
	x1, err := index.BuildApprox(tc.G, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	x4, err := index.BuildApprox(tc.G, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.3, 0.5, 0.7} {
		a, err := x1.Query(tc.Mu, eps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := x4.Query(tc.Mu, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Labels, b.Labels) || !reflect.DeepEqual(a.Roles, b.Roles) {
			t.Fatalf("eps=%v: approx clustering depends on thread count", eps)
		}
	}
}

// TestApproxLocalMatchesGlobal: a seed-centered query through LocalView must
// return exactly the seed's community under the *approximate* global query —
// the local/global equivalence of the exact index, carried over to effective
// similarities.
func TestApproxLocalMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, tc := range approxGraphs() {
		x, err := index.BuildApprox(tc.G, 2, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.35, 0.55} {
			global, err := x.Query(tc.Mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			view := x.LocalView(eps)
			for i := 0; i < 25; i++ {
				seed := int32(rng.Intn(tc.G.NumVertices()))
				lr, err := local.Query(view, seed, tc.Mu, eps)
				if err != nil {
					t.Fatalf("%s seed=%d: %v", tc.Name, seed, err)
				}
				if lr.Role != global.Roles[seed] {
					t.Fatalf("%s seed=%d eps=%v: local role %v, global role %v",
						tc.Name, seed, eps, lr.Role, global.Roles[seed])
				}
				if global.Labels[seed] == cluster.NoLabel {
					if lr.Members != nil {
						t.Fatalf("%s seed=%d: noise seed returned members", tc.Name, seed)
					}
					continue
				}
				var want []int32
				for v := int32(0); v < int32(tc.G.NumVertices()); v++ {
					if global.Labels[v] == global.Labels[seed] {
						want = append(want, v)
					}
				}
				if !slices.Equal(lr.Members, want) {
					t.Fatalf("%s seed=%d eps=%v: local members differ from global community (%d vs %d vertices)",
						tc.Name, seed, eps, len(lr.Members), len(want))
				}
			}
		}
	}
}

// TestApproxSaveLoadRoundTrip: an approximate index round-trips through the
// v2 payload — the dial, estimates, and bands survive, and a restored index
// answers byte-identically to the original.
func TestApproxSaveLoadRoundTrip(t *testing.T) {
	tc := approxGraphs()[0]
	x, err := index.BuildApprox(tc.G, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := index.Load(tc.G, bytes.NewReader(buf.Bytes()), 2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if y.Delta() != x.Delta() {
		t.Fatalf("Delta lost in round trip: %v vs %v", y.Delta(), x.Delta())
	}
	for _, eps := range []float64{0.3, 0.6} {
		a, err := x.Query(tc.Mu, eps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := y.Query(tc.Mu, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Labels, b.Labels) || !reflect.DeepEqual(a.Roles, b.Roles) {
			t.Fatalf("eps=%v: restored approximate index answers differently", eps)
		}
	}
}

// TestApproxWeightedFallsBackExact: non-unit weights cannot be sketched, so
// an approximate build over a weighted graph must run the exact pass,
// report the fallback, and answer byte-identically to the exact index.
func TestApproxWeightedFallsBackExact(t *testing.T) {
	wts := gen.WeightConfig{Mode: gen.WeightUniform, Min: 0.5, Max: 1.5}
	g := gen.PlantedPartition(200, 4, 0.3, 0.02, wts, 41)
	xa, err := index.BuildApprox(g, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	st := xa.Approx()
	if !st.ExactFallback {
		t.Fatal("weighted graph did not trigger the exact fallback")
	}
	if xa.Delta() != 0.05 {
		t.Fatalf("fallback build lost its dial: Delta=%v", xa.Delta())
	}
	xe := index.Build(g, 2)
	for _, eps := range []float64{0.3, 0.5, 0.7} {
		a, err := xa.Query(4, eps)
		if err != nil {
			t.Fatal(err)
		}
		e, err := xe.Query(4, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Labels, e.Labels) || !reflect.DeepEqual(a.Roles, e.Roles) {
			t.Fatalf("eps=%v: weighted fallback differs from exact", eps)
		}
	}
	// The fallback persists as a plain exact index (its σ values are exact).
	var buf bytes.Buffer
	if err := xa.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := index.Load(g, bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Delta() != 0 {
		t.Fatalf("exact-fallback file restored with Delta=%v", y.Delta())
	}
}

// TestBuildApproxRejectsBadDelta: the dial is validated at the API edge.
func TestBuildApproxRejectsBadDelta(t *testing.T) {
	g := testutil.Karate()
	for _, d := range []float64{-0.1, 1, 1.5} {
		if _, err := index.BuildApprox(g, 1, d); err == nil {
			t.Fatalf("delta=%v accepted", d)
		}
	}
}
