package server_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/server"
)

// TestServeFromMmapCompressedGraph is the end-to-end check of the tentpole:
// anyscand registers a .csrz file, keeps it mmap-backed (no flat CSR is ever
// materialized on the query path), builds the query index over it, and
// answers /v1/query byte-identically to the same graph served flat.
func TestServeFromMmapCompressedGraph(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(3000, 10, 11))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	flatPath := writeGraphFile(t, g, dir)
	zPath := filepath.Join(dir, "graph.csrz")
	if err := graph.Compress(g).WriteCompressedFile(zPath); err != nil {
		t.Fatal(err)
	}

	srv, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "flat", GraphSource: server.GraphSource{Path: flatPath},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "z", GraphSource: server.GraphSource{Path: zPath},
	}); err != nil {
		t.Fatal(err)
	}

	// The .csrz entry must be served from the compressed mmap backend; a
	// materialized flat copy here would defeat larger-than-RAM serving.
	ze, err := srv.Registry().Get("z")
	if err != nil {
		t.Fatal(err)
	}
	zc, ok := ze.G.(*graph.CompressedCSR)
	if !ok {
		t.Fatalf("registry backend for .csrz is %T, want *graph.CompressedCSR", ze.G)
	}
	if zc.ResidentBytes() >= zc.Bytes() {
		t.Fatalf("compressed entry fully resident (%d of %d bytes): not mmap-backed",
			zc.ResidentBytes(), zc.Bytes())
	}

	want, err := c.Query(tctx, "flat", 5, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(tctx, "z", 5, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clusters != want.Clusters || !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatalf("mmap-backed query summary differs: got %d clusters %+v, want %d clusters %+v",
			got.Clusters, got.Counts, want.Clusters, want.Counts)
	}
	if !reflect.DeepEqual(got.Assignments, want.Assignments) {
		t.Fatal("mmap-backed query assignments differ from the flat backend")
	}

	// The registry storage gauges must be exported and account for both
	// backends.
	metrics, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"anyscand_graph_bytes", "anyscand_graph_resident_bytes"} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("metrics output lacks %s:\n%s", name, metrics)
		}
	}
}

// TestCompressedFormatRequest loads a flat file with Format "compressed" and
// verifies the entry is stored compressed yet answers queries identically.
func TestCompressedFormatRequest(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(2000, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	srv, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "flat", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "packed", GraphSource: server.GraphSource{Path: path, Format: server.FormatCompressed},
	}); err != nil {
		t.Fatal(err)
	}
	pe, err := srv.Registry().Get("packed")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pe.G.(*graph.CompressedCSR); !ok {
		t.Fatalf("format=compressed entry is %T, want *graph.CompressedCSR", pe.G)
	}
	want, err := c.Query(tctx, "flat", 4, 0.6, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(tctx, "packed", 4, 0.6, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Assignments, want.Assignments) {
		t.Fatal("compressed-format query differs from the flat backend")
	}

	// Rejecting unknown formats keeps manifests round-trippable.
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "bad", GraphSource: server.GraphSource{Path: path, Format: "zip"},
	}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestMutateCompressedBackendFallsBack mutates a graph served from the
// read-only compressed backend: promotion to a live graph must transparently
// decompress to a mutable copy instead of failing (or faulting on read-only
// mmap pages).
func TestMutateCompressedBackendFallsBack(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(1000, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	zPath := filepath.Join(dir, "graph.csrz")
	if err := graph.Compress(g).WriteCompressedFile(zPath); err != nil {
		t.Fatal(err)
	}
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "z", GraphSource: server.GraphSource{Path: zPath},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(tctx, "z", 3, 0.5, false); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Mutate(tctx, "z", []server.MutationSpec{{Op: "add", U: 0, V: 1, W: 1}})
	if err != nil {
		t.Fatalf("mutating a compressed-backed graph: %v", err)
	}
	if resp.Epoch == 0 {
		t.Fatalf("mutation published no epoch: %+v", resp)
	}
	if _, err := c.QueryEpoch(tctx, "z", 3, 0.5, resp.Epoch, false); err != nil {
		t.Fatalf("querying the mutated epoch: %v", err)
	}
}
