package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a typed HTTP client for the anyscand API, used by the CLI verbs
// and by tests. Every call takes a context that bounds the whole exchange,
// including retries; transient failures (429/503, transport errors) are
// retried with exponential backoff and jitter, honoring the server's
// Retry-After hint, behind a circuit breaker that stops hammering a server
// that keeps failing.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (nil → http.DefaultClient).
	HTTP *http.Client
	// Retry configures transient-failure retries (zero fields → defaults).
	Retry RetryPolicy

	breaker circuitBreaker
}

// RetryPolicy bounds the client's transient-failure retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (0 → 4, 1 → no
	// retries).
	MaxAttempts int
	// BaseDelay is the first backoff step (0 → 50ms); each retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 → 2s). A larger server Retry-After hint
	// overrides the cap — the server knows its own load better.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// NewClient returns a client for the given base URL with default retry and
// circuit-breaker behavior.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the server, carrying enough for the
// retry loop (and callers) to act on it.
type APIError struct {
	Status     int
	RetryAfter time.Duration // parsed Retry-After, 0 when absent
	Message    string        // server-provided error text, may be empty
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("%s: %s", http.StatusText(e.Status), e.Message)
	}
	return http.StatusText(e.Status)
}

// ErrCircuitOpen is returned without touching the network while the client's
// circuit breaker is open after repeated transient failures.
var ErrCircuitOpen = errors.New("anyscand client: circuit open (server kept failing; backing off)")

// circuitBreaker trips open after `threshold` consecutive transient failures
// and fast-fails every call for `cooldown`; the first call afterwards goes
// through as a half-open probe whose outcome closes or re-opens the circuit.
type circuitBreaker struct {
	mu        sync.Mutex
	failures  int
	openUntil time.Time
	probing   bool
}

const (
	breakerThreshold = 8
	breakerCooldown  = 5 * time.Second
)

// allow reports whether a call may proceed. While open it admits exactly one
// half-open probe per cooldown window.
func (b *circuitBreaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.failures < breakerThreshold {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true
	return true
}

func (b *circuitBreaker) record(now time.Time, transientFailure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !transientFailure {
		b.failures = 0
		return
	}
	b.failures++
	if b.failures >= breakerThreshold {
		b.openUntil = now.Add(breakerCooldown)
	}
}

// do issues one logical request — retrying transient failures — and decodes
// the JSON response into out (skipped when out is nil). Non-2xx responses
// become *APIError; transport failures are returned as-is after retries.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	policy := c.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoffDelay(policy, attempt, lastErr)); err != nil {
				return lastErr
			}
		}
		if !c.breaker.allow(time.Now()) {
			return fmt.Errorf("%s %s: %w", method, path, ErrCircuitOpen)
		}
		err := c.doOnce(ctx, method, path, data, out)
		c.breaker.record(time.Now(), err != nil && retryable(method, err))
		if err == nil {
			return nil
		}
		lastErr = fmt.Errorf("%s %s: %w", method, path, err)
		if !retryable(method, err) || ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			apiErr.Message = e.Error
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryable classifies an error for the retry loop. Overload responses
// (429/503) are retried for every method — the server refused before doing
// work, so a retry cannot double-execute. Transport errors and gateway 5xxs
// are retried only for idempotent methods: a lost response to a POST may mean
// the work happened.
func retryable(method string, err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return true
		case http.StatusBadGateway, http.StatusGatewayTimeout:
			return method == http.MethodGet || method == http.MethodDelete
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Transport-level failure (connection reset, refused, EOF mid-response).
	return method == http.MethodGet || method == http.MethodDelete
}

// backoffDelay picks the sleep before retry `attempt` (1-based): exponential
// from BaseDelay with full jitter, capped at MaxDelay — unless the server's
// Retry-After asks for longer.
func backoffDelay(p RetryPolicy, attempt int, lastErr error) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1)) // jitter in [d/2, d]
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// LoadGraph loads a graph into the server's registry.
func (c *Client) LoadGraph(ctx context.Context, req LoadGraphRequest) (GraphInfo, error) {
	var info GraphInfo
	err := c.do(ctx, http.MethodPost, "/v1/graphs", req, &info)
	return info, err
}

// ListGraphs returns the loaded graphs.
func (c *Client) ListGraphs(ctx context.Context) ([]GraphInfo, error) {
	var out []GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out)
	return out, err
}

// EvictGraph removes a graph from the registry.
func (c *Client) EvictGraph(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), nil, nil)
}

// SubmitJob submits an async clustering job.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// ListJobs returns the status of every job.
func (c *Client) ListJobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// JobStatus returns one job's status.
func (c *Client) JobStatus(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// JobSnapshot fetches the anytime snapshot (the best-so-far clustering).
func (c *Client) JobSnapshot(ctx context.Context, id string, withAssignments bool) (SnapshotResponse, error) {
	var snap SnapshotResponse
	path := "/v1/jobs/" + url.PathEscape(id) + "/snapshot"
	if withAssignments {
		path += "?assignments=1"
	}
	err := c.do(ctx, http.MethodGet, path, nil, &snap)
	return snap, err
}

// JobResult fetches the final clustering of a done job.
func (c *Client) JobResult(ctx context.Context, id string, withAssignments bool) (SnapshotResponse, error) {
	var snap SnapshotResponse
	path := "/v1/jobs/" + url.PathEscape(id) + "/result"
	if withAssignments {
		path += "?assignments=1"
	}
	err := c.do(ctx, http.MethodGet, path, nil, &snap)
	return snap, err
}

// PauseJob, ResumeJob, CancelJob drive the job lifecycle.
func (c *Client) PauseJob(ctx context.Context, id string) (JobStatus, error) {
	return c.jobVerb(ctx, id, "pause")
}
func (c *Client) ResumeJob(ctx context.Context, id string) (JobStatus, error) {
	return c.jobVerb(ctx, id, "resume")
}
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	return c.jobVerb(ctx, id, "cancel")
}

func (c *Client) jobVerb(ctx context.Context, id, verb string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/"+verb, nil, &st)
	return st, err
}

// WaitJob polls until the job reaches a terminal state or ctx is done,
// returning the last observed status. Polling backs off exponentially (10ms
// up to ~500ms with jitter) instead of spinning at a fixed interval, so a
// long job costs a handful of requests per second at most.
func (c *Client) WaitJob(ctx context.Context, id string) (JobStatus, error) {
	var last JobStatus
	delay := 10 * time.Millisecond
	const maxPoll = 500 * time.Millisecond
	for {
		st, err := c.JobStatus(ctx, id)
		if err != nil {
			return last, err
		}
		last = st
		if st.State.Terminal() {
			return st, nil
		}
		jittered := delay + time.Duration(rand.Int64N(int64(delay/4)+1))
		if err := sleepCtx(ctx, jittered); err != nil {
			return last, fmt.Errorf("job %s still %s: %w", id, st.State, err)
		}
		if delay *= 2; delay > maxPoll {
			delay = maxPoll
		}
	}
}

// Query runs an interactive clustering query against GET /v1/query and
// returns the exact clustering at (μ, ε), served from the graph's query
// index (or its current live epoch once the graph has been mutated).
func (c *Client) Query(ctx context.Context, graphName string, mu int, eps float64, withAssignments bool) (QueryResponse, error) {
	return c.QueryEpoch(ctx, graphName, mu, eps, 0, withAssignments)
}

// QueryEpoch is Query with a read-your-writes bound: with minEpoch > 0 the
// server answers from a live epoch whose sequence number is at least
// minEpoch, waiting (up to the request deadline) for a writer to publish it.
// Pass the Epoch token a Mutate call returned to observe that write.
func (c *Client) QueryEpoch(ctx context.Context, graphName string, mu int, eps float64, minEpoch int64, withAssignments bool) (QueryResponse, error) {
	return c.QueryApproxEpoch(ctx, graphName, mu, eps, 0, minEpoch, withAssignments)
}

// QueryApprox is Query with an accuracy dial: approx in (0,1) lets the
// server answer from a sketch-based approximate index built at that δ —
// typically much cheaper to build on first touch — where only edges whose
// similarity is provably within the sketch error band of ε can be
// misclassified, each with probability at most δ. approx 0 is exact. The
// response's Approx field reports the dial the answer was actually computed
// at (0 when the server fell back to exact serving).
func (c *Client) QueryApprox(ctx context.Context, graphName string, mu int, eps, approx float64, withAssignments bool) (QueryResponse, error) {
	return c.QueryApproxEpoch(ctx, graphName, mu, eps, approx, 0, withAssignments)
}

// QueryApproxEpoch combines QueryApprox and QueryEpoch.
func (c *Client) QueryApproxEpoch(ctx context.Context, graphName string, mu int, eps, approx float64, minEpoch int64, withAssignments bool) (QueryResponse, error) {
	var resp QueryResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	q.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	if approx > 0 {
		q.Set("approx", strconv.FormatFloat(approx, 'g', -1, 64))
	}
	if minEpoch > 0 {
		q.Set("min_epoch", strconv.FormatInt(minEpoch, 10))
	}
	if withAssignments {
		q.Set("assignments", "1")
	}
	err := c.do(ctx, http.MethodGet, "/v1/query?"+q.Encode(), nil, &resp)
	return resp, err
}

// Local runs a seed-centered community query against GET /v1/local: which
// community does seed belong to at (μ, ε)? The response carries the exact
// membership (identical to the seed's cluster under a full Query) computed
// in output-proportional time on the server.
func (c *Client) Local(ctx context.Context, graphName string, seed int32, mu int, eps float64, withMembers bool) (LocalResponse, error) {
	return c.LocalEpoch(ctx, graphName, seed, mu, eps, 0, withMembers)
}

// LocalEpoch is Local with a read-your-writes bound: with minEpoch > 0 the
// server answers from a live epoch at least that new, waiting (up to the
// request deadline) for a writer to publish it.
func (c *Client) LocalEpoch(ctx context.Context, graphName string, seed int32, mu int, eps float64, minEpoch int64, withMembers bool) (LocalResponse, error) {
	return c.LocalApproxEpoch(ctx, graphName, seed, mu, eps, 0, minEpoch, withMembers)
}

// LocalApprox is Local with an accuracy dial (see QueryApprox): the
// community expansion runs against the server's sketch-based index at δ =
// approx, resolving near-threshold edges exactly.
func (c *Client) LocalApprox(ctx context.Context, graphName string, seed int32, mu int, eps, approx float64, withMembers bool) (LocalResponse, error) {
	return c.LocalApproxEpoch(ctx, graphName, seed, mu, eps, approx, 0, withMembers)
}

// LocalApproxEpoch combines LocalApprox and LocalEpoch.
func (c *Client) LocalApproxEpoch(ctx context.Context, graphName string, seed int32, mu int, eps, approx float64, minEpoch int64, withMembers bool) (LocalResponse, error) {
	var resp LocalResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("seed", strconv.FormatInt(int64(seed), 10))
	q.Set("mu", strconv.Itoa(mu))
	q.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	if approx > 0 {
		q.Set("approx", strconv.FormatFloat(approx, 'g', -1, 64))
	}
	if minEpoch > 0 {
		q.Set("min_epoch", strconv.FormatInt(minEpoch, 10))
	}
	if !withMembers {
		q.Set("members", "0")
	}
	err := c.do(ctx, http.MethodGet, "/v1/local?"+q.Encode(), nil, &resp)
	return resp, err
}

// Mutate applies one batch of edge mutations to a graph via POST
// /v1/graphs/{name}/edges, returning the epoch token the batch published.
func (c *Client) Mutate(ctx context.Context, graphName string, muts []MutationSpec) (MutateResponse, error) {
	var resp MutateResponse
	err := c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(graphName)+"/edges",
		MutateRequest{Mutations: muts}, &resp)
	return resp, err
}

// QueryProfile evaluates the clustering profile across ε values via GET
// /v1/query. With an empty eps slice the server probes up to limit (0 →
// server default) interesting thresholds itself.
func (c *Client) QueryProfile(ctx context.Context, graphName string, mu int, eps []float64, limit int) (QueryResponse, error) {
	var resp QueryResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	if len(eps) > 0 {
		parts := make([]string, len(eps))
		for i, v := range eps {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		q.Set("eps", strings.Join(parts, ","))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	err := c.do(ctx, http.MethodGet, "/v1/query?"+q.Encode(), nil, &resp)
	return resp, err
}

// Cluster runs an interactive clustering query against the legacy
// unversioned /cluster endpoint.
//
// Deprecated: use Query.
func (c *Client) Cluster(ctx context.Context, graphName string, mu int, eps float64, withAssignments bool) (ClusterResponse, error) {
	var resp ClusterResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	q.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	if withAssignments {
		q.Set("assignments", "1")
	}
	err := c.do(ctx, http.MethodGet, "/cluster?"+q.Encode(), nil, &resp)
	return resp, err
}

// Sweep evaluates the clustering profile via the legacy unversioned /sweep
// endpoint. With an empty eps slice the server picks interesting thresholds
// itself.
//
// Deprecated: use QueryProfile.
func (c *Client) Sweep(ctx context.Context, graphName string, mu int, eps []float64) (SweepResponse, error) {
	var resp SweepResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	if len(eps) > 0 {
		parts := make([]string, len(eps))
		for i, v := range eps {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		q.Set("eps", strings.Join(parts, ","))
	}
	err := c.do(ctx, http.MethodGet, "/sweep?"+q.Encode(), nil, &resp)
	return resp, err
}

// Healthz reports whether the process is alive (liveness; succeeds even
// while draining).
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Readyz reports whether the server is ready for new traffic (fails while
// draining or while the admission queue is saturated).
func (c *Client) Readyz(ctx context.Context) error {
	return c.doOnce(ctx, http.MethodGet, "/v1/readyz", nil, nil)
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
