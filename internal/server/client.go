package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client is a typed HTTP client for the anyscand API, used by the CLI verbs
// and by tests.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client (nil → http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped when
// out is nil). Non-2xx responses become errors carrying the server message.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// LoadGraph loads a graph into the server's registry.
func (c *Client) LoadGraph(req LoadGraphRequest) (GraphInfo, error) {
	var info GraphInfo
	err := c.do(http.MethodPost, "/v1/graphs", req, &info)
	return info, err
}

// ListGraphs returns the loaded graphs.
func (c *Client) ListGraphs() ([]GraphInfo, error) {
	var out []GraphInfo
	err := c.do(http.MethodGet, "/v1/graphs", nil, &out)
	return out, err
}

// EvictGraph removes a graph from the registry.
func (c *Client) EvictGraph(name string) error {
	return c.do(http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), nil, nil)
}

// SubmitJob submits an async clustering job.
func (c *Client) SubmitJob(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// ListJobs returns the status of every job.
func (c *Client) ListJobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.do(http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// JobStatus returns one job's status.
func (c *Client) JobStatus(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// JobSnapshot fetches the anytime snapshot (the best-so-far clustering).
func (c *Client) JobSnapshot(id string, withAssignments bool) (SnapshotResponse, error) {
	var snap SnapshotResponse
	path := "/v1/jobs/" + url.PathEscape(id) + "/snapshot"
	if withAssignments {
		path += "?assignments=1"
	}
	err := c.do(http.MethodGet, path, nil, &snap)
	return snap, err
}

// JobResult fetches the final clustering of a done job.
func (c *Client) JobResult(id string, withAssignments bool) (SnapshotResponse, error) {
	var snap SnapshotResponse
	path := "/v1/jobs/" + url.PathEscape(id) + "/result"
	if withAssignments {
		path += "?assignments=1"
	}
	err := c.do(http.MethodGet, path, nil, &snap)
	return snap, err
}

// PauseJob, ResumeJob, CancelJob drive the job lifecycle.
func (c *Client) PauseJob(id string) (JobStatus, error)  { return c.jobVerb(id, "pause") }
func (c *Client) ResumeJob(id string) (JobStatus, error) { return c.jobVerb(id, "resume") }
func (c *Client) CancelJob(id string) (JobStatus, error) { return c.jobVerb(id, "cancel") }

func (c *Client) jobVerb(id, verb string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/"+verb, nil, &st)
	return st, err
}

// WaitJob polls until the job reaches a terminal state or the timeout
// elapses, returning the last observed status.
func (c *Client) WaitJob(id string, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.JobStatus(id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Query runs an interactive clustering query against GET /v1/query and
// returns the exact clustering at (μ, ε), served from the graph's query
// index.
func (c *Client) Query(graphName string, mu int, eps float64, withAssignments bool) (QueryResponse, error) {
	var resp QueryResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	q.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	if withAssignments {
		q.Set("assignments", "1")
	}
	err := c.do(http.MethodGet, "/v1/query?"+q.Encode(), nil, &resp)
	return resp, err
}

// QueryProfile evaluates the clustering profile across ε values via GET
// /v1/query. With an empty eps slice the server probes up to limit (0 →
// server default) interesting thresholds itself.
func (c *Client) QueryProfile(graphName string, mu int, eps []float64, limit int) (QueryResponse, error) {
	var resp QueryResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	if len(eps) > 0 {
		parts := make([]string, len(eps))
		for i, v := range eps {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		q.Set("eps", strings.Join(parts, ","))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	err := c.do(http.MethodGet, "/v1/query?"+q.Encode(), nil, &resp)
	return resp, err
}

// Cluster runs an interactive clustering query against the legacy
// unversioned /cluster endpoint.
//
// Deprecated: use Query.
func (c *Client) Cluster(graphName string, mu int, eps float64, withAssignments bool) (ClusterResponse, error) {
	var resp ClusterResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	q.Set("eps", strconv.FormatFloat(eps, 'g', -1, 64))
	if withAssignments {
		q.Set("assignments", "1")
	}
	err := c.do(http.MethodGet, "/cluster?"+q.Encode(), nil, &resp)
	return resp, err
}

// Sweep evaluates the clustering profile via the legacy unversioned /sweep
// endpoint. With an empty eps slice the server picks interesting thresholds
// itself.
//
// Deprecated: use QueryProfile.
func (c *Client) Sweep(graphName string, mu int, eps []float64) (SweepResponse, error) {
	var resp SweepResponse
	q := url.Values{}
	q.Set("graph", graphName)
	q.Set("mu", strconv.Itoa(mu))
	if len(eps) > 0 {
		parts := make([]string, len(eps))
		for i, v := range eps {
			parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		q.Set("eps", strings.Join(parts, ","))
	}
	err := c.do(http.MethodGet, "/sweep?"+q.Encode(), nil, &resp)
	return resp, err
}

// Healthz reports whether the server answers its health check.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText() (string, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
