package server

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
)

// This file defines the wire types of the anyscand HTTP API, shared by the
// server handlers, the Go client, and the CLI verbs. All payloads are JSON.

// Graph storage backends a registry entry can be served from.
const (
	// FormatCSR is the flat in-memory CSR backend (the default).
	FormatCSR = "csr"
	// FormatCompressed serves the varint-compressed backend: .csrz files
	// stay mmap-backed (near-zero load, larger-than-RAM graphs); other
	// sources are compressed in memory after loading.
	FormatCompressed = "compressed"
)

// GraphSource describes where a registry graph comes from, so a job manifest
// can reload it after a daemon restart.
type GraphSource struct {
	// Path is a graph file (.metis/.graph, .bin, .csrz, or edge list),
	// exclusive with Dataset.
	Path string `json:"path,omitempty"`
	// Dataset is a synthetic dataset stand-in name (e.g. "GR01L").
	Dataset string `json:"dataset,omitempty"`
	// Scale is the dataset scale factor (0 → 1.0); ignored for Path.
	Scale float64 `json:"scale,omitempty"`
	// Format selects the storage backend: "" or FormatCSR for flat,
	// FormatCompressed for the varint-compressed backend.
	Format string `json:"format,omitempty"`
}

// LoadGraphRequest asks the server to load a graph into the registry.
type LoadGraphRequest struct {
	// Name is the registry key; defaults to the dataset name or the file
	// base name.
	Name string `json:"name,omitempty"`
	GraphSource
}

// GraphInfo describes one loaded graph.
type GraphInfo struct {
	Name     string      `json:"name"`
	Source   GraphSource `json:"source"`
	Vertices int         `json:"vertices"`
	Edges    int64       `json:"edges"`
	AvgDeg   float64     `json:"avg_degree"`
	Loaded   time.Time   `json:"loaded"`
}

// JobSpec are the clustering parameters of a submitted job.
type JobSpec struct {
	Graph        string  `json:"graph"`
	Mu           int     `json:"mu"`
	Eps          float64 `json:"eps"`
	Alpha        int     `json:"alpha,omitempty"`   // 0 → max(128, |V|/128)
	Beta         int     `json:"beta,omitempty"`    // 0 → like alpha
	Threads      int     `json:"threads,omitempty"` // 0 → GOMAXPROCS
	Seed         int64   `json:"seed,omitempty"`
	ResolveRoles bool    `json:"resolve_roles,omitempty"`
	EdgeMemo     bool    `json:"edge_memo,omitempty"`
}

// Options converts the spec into core options for a run on a graph with n
// vertices, applying the same automatic block sizing as the CLI.
func (s JobSpec) Options(n int) core.Options {
	o := core.DefaultOptions()
	o.Mu, o.Eps = s.Mu, s.Eps
	o.Alpha, o.Beta = s.Alpha, s.Beta
	if o.Alpha <= 0 {
		o.Alpha = n / 128
		if o.Alpha < 128 {
			o.Alpha = 128
		}
	}
	if o.Beta <= 0 {
		o.Beta = o.Alpha
	}
	if s.Threads > 0 {
		o.Threads = s.Threads
	}
	if s.Seed != 0 {
		o.Seed = s.Seed
	}
	o.ResolveRoles = s.ResolveRoles
	o.EdgeMemo = s.EdgeMemo
	return o
}

// JobState is the lifecycle state of an async clustering job.
type JobState string

// Job lifecycle states. Transitions:
//
//	queued → running → done | failed | canceled
//	running ⇄ paused (pause/resume; drain pauses all running jobs)
//	queued | paused → canceled
//
// A daemon restart recovers unfinished jobs from their manifests into the
// paused state; resuming continues from the latest checkpoint (or from
// scratch when the job never checkpointed).
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobPaused   JobState = "paused"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether no further transitions are possible.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// ProgressInfo is the wire form of core.Progress.
type ProgressInfo struct {
	Phase      string  `json:"phase"`
	Iterations int     `json:"iterations"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	SuperNodes int     `json:"super_nodes"`
	Vertices   int     `json:"vertices"`
	Touched    int     `json:"touched"`
	Sims       int64   `json:"sims"`
	Done       bool    `json:"done"`
}

func progressInfo(p core.Progress) ProgressInfo {
	return ProgressInfo{
		Phase:      p.Phase.String(),
		Iterations: p.Iterations,
		ElapsedMS:  float64(p.Elapsed.Microseconds()) / 1000,
		SuperNodes: p.SuperNodes,
		Vertices:   p.Vertices,
		Touched:    p.Touched,
		Sims:       p.Sims,
		Done:       p.Done,
	}
}

// JobStatus is the job-status payload of GET /jobs and GET /jobs/{id}.
type JobStatus struct {
	ID            string       `json:"id"`
	Graph         string       `json:"graph"`
	Spec          JobSpec      `json:"spec"`
	State         JobState     `json:"state"`
	Error         string       `json:"error,omitempty"`
	CheckpointErr string       `json:"checkpoint_error,omitempty"`
	Recovered     bool         `json:"recovered,omitempty"`
	Progress      ProgressInfo `json:"progress"`
	Created       time.Time    `json:"created"`
	Started       time.Time    `json:"started,omitzero"`
	Finished      time.Time    `json:"finished,omitzero"`
}

// RoleCounts is the wire form of cluster.Counts.
type RoleCounts struct {
	Cores        int `json:"cores"`
	Borders      int `json:"borders"`
	Hubs         int `json:"hubs"`
	Outliers     int `json:"outliers"`
	Unclassified int `json:"unclassified"`
}

func roleCounts(c cluster.Counts) RoleCounts {
	return RoleCounts{
		Cores:        c.Cores,
		Borders:      c.Borders,
		Hubs:         c.Hubs,
		Outliers:     c.Outliers,
		Unclassified: c.Unclassified,
	}
}

// Assignments is the full per-vertex clustering, requested with
// ?assignments=1. Labels[v] is the dense cluster id or -1; Roles[v] encodes
// cluster.Role (0 unclassified, 1 outlier, 2 hub, 3 border, 4 core).
type Assignments struct {
	Labels []int32 `json:"labels"`
	Roles  []int8  `json:"roles"`
}

func assignments(r *cluster.Result) *Assignments {
	a := &Assignments{Labels: r.Labels, Roles: make([]int8, len(r.Roles))}
	for i, role := range r.Roles {
		a.Roles[i] = int8(role)
	}
	return a
}

// ClusteringPayload is a clustering summary, shared by the anytime snapshot,
// the final result, and the interactive /cluster query.
type ClusteringPayload struct {
	Clusters    int          `json:"clusters"`
	Counts      RoleCounts   `json:"counts"`
	Assignments *Assignments `json:"assignments,omitempty"`
}

func clusteringPayload(r *cluster.Result, withAssignments bool) ClusteringPayload {
	p := ClusteringPayload{Clusters: r.NumClusters, Counts: roleCounts(r.RoleCounts())}
	if withAssignments {
		p.Assignments = assignments(r)
	}
	return p
}

// SnapshotResponse is the anytime snapshot of a job mid-run.
type SnapshotResponse struct {
	ID       string       `json:"id"`
	State    JobState     `json:"state"`
	Progress ProgressInfo `json:"progress"`
	ClusteringPayload
}

// QueryResponse answers GET /v1/query (and the deprecated /cluster and
// /sweep aliases). With a single eps parameter the response carries the
// exact clustering at (μ, ε) in the embedded ClusteringPayload; with an eps
// list (or none) it carries one summary point per probed ε in Points.
type QueryResponse struct {
	Graph string  `json:"graph"`
	Mu    int     `json:"mu"`
	Eps   float64 `json:"eps,omitempty"` // single-ε form only
	// Approx echoes the accuracy dial δ the answer was actually computed at:
	// the requested ?approx= value when a sketch-based index served it,
	// omitted (0) when the answer is exact — including approx requests that
	// fell back to exact serving (weighted graphs, live epoch chains).
	Approx   float64 `json:"approx,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	// Stale marks a degraded-mode answer: the fresh index build failed or
	// was shed, so the response was served from the last good index (which
	// may describe an older generation of the graph). The response also
	// carries an X-Anyscan-Stale: 1 header.
	Stale bool `json:"stale,omitempty"`
	// Epoch is the live-graph epoch the answer was computed on; present only
	// for graphs that have been mutated (see POST /v1/graphs/{name}/edges).
	Epoch   int64   `json:"epoch,omitempty"`
	BuildMS float64 `json:"build_ms,omitempty"` // index build time (cache miss only)
	QueryMS float64 `json:"query_ms"`
	ClusteringPayload
	Points []SweepPoint `json:"points,omitempty"` // profile form only
}

// ClusterResponse is the former GET /cluster payload.
//
// Deprecated: use QueryResponse.
type ClusterResponse = QueryResponse

// SweepPoint is one ε of a profile-form QueryResponse.
type SweepPoint struct {
	Eps      float64    `json:"eps"`
	Clusters int        `json:"clusters"`
	Counts   RoleCounts `json:"counts"`
}

// SweepResponse is the former GET /sweep payload.
//
// Deprecated: use QueryResponse.
type SweepResponse = QueryResponse

// MutationSpec is one edge mutation of a MutateRequest. Op is "add" (insert
// the edge, or update its weight when present), "delete" (idempotent), or
// "reweight" (errors when the edge is absent). Endpoints are unordered; w is
// ignored for deletes.
type MutationSpec struct {
	Op string  `json:"op"`
	U  int32   `json:"u"`
	V  int32   `json:"v"`
	W  float32 `json:"w,omitempty"`
}

// MutateRequest is the body of POST /v1/graphs/{name}/edges: one batch of
// edge mutations, applied atomically (any invalid mutation rejects the whole
// batch before any state changes).
type MutateRequest struct {
	Mutations []MutationSpec `json:"mutations"`
}

// MutateResponse reports one applied batch. Epoch is the read-your-writes
// token: a GET /v1/query with ?min_epoch=<Epoch> is guaranteed to observe
// this batch (or later state). A batch whose net effect was nothing returns
// the unchanged current epoch with Applied == 0.
type MutateResponse struct {
	Graph           string  `json:"graph"`
	Epoch           int64   `json:"epoch"`
	Applied         int     `json:"applied"`
	NoOps           int     `json:"noops"`
	Vertices        int     `json:"vertices"`
	Edges           int64   `json:"edges"`
	PublishMS       float64 `json:"publish_ms"`
	SigmaRecomputed int64   `json:"sigma_recomputed"`
}

// LocalResponse answers GET /v1/local: the seed-centered community query.
// Role is the seed's role under the full clustering at (μ, ε) ("core",
// "border", "hub", "outlier"); Members/Roles carry the exact community when
// the seed belongs to one (suppress with ?members=0 to get the summary
// only). Touched is the number of vertices the expansion visited — the
// output-proportional cost of the answer.
type LocalResponse struct {
	Graph string  `json:"graph"`
	Seed  int32   `json:"seed"`
	Mu    int     `json:"mu"`
	Eps   float64 `json:"eps"`
	Role  string  `json:"role"`
	// Approx echoes the accuracy dial δ the answer was actually computed at
	// (omitted when exact — see QueryResponse.Approx).
	Approx   float64 `json:"approx,omitempty"`
	CacheHit bool    `json:"cache_hit"`
	// Stale marks a degraded-mode answer served from the last good index;
	// the response also carries an X-Anyscan-Stale: 1 header.
	Stale bool `json:"stale,omitempty"`
	// Epoch is the live-graph epoch the answer was computed on; present only
	// for graphs that have been mutated.
	Epoch   int64   `json:"epoch,omitempty"`
	BuildMS float64 `json:"build_ms,omitempty"` // index build time (cache miss only)
	QueryMS float64 `json:"query_ms"`
	Size    int     `json:"size"`    // community size (0 for noise seeds)
	Touched int     `json:"touched"` // vertices the expansion visited
	Members []int32 `json:"members,omitempty"`
	// Roles is parallel to Members, encoding cluster.Role per member
	// (3 border, 4 core).
	Roles []int8 `json:"roles,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
