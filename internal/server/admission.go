package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file implements the front-door overload machinery: a weighted
// semaphore with a bounded FIFO wait queue for heavy work (index builds,
// assignment-carrying queries), per-client token-bucket rate limits, and the
// typed error the HTTP layer turns into fast-fail 429/503 + Retry-After
// responses. The design goal is bounded latency under overload: a request
// either gets capacity promptly, waits a short bounded time in a short
// bounded queue, or is shed immediately — it never queues unboundedly.

// OverloadError is returned when a request is refused for capacity reasons.
// The HTTP layer maps it to Code and sets Retry-After from RetryAfter.
type OverloadError struct {
	Code       int           // HTTP status to answer with (429 or 503)
	RetryAfter time.Duration // client backoff hint
	Reason     string        // "queue-full", "queue-timeout", "rate-limit"
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("overloaded (%s); retry after %v", e.Reason, e.RetryAfter)
}

// errShedQueueFull is returned without waiting when the admission queue is
// already at capacity: under saturation the cheapest thing the server can do
// is say no immediately.
func errShedQueueFull() *OverloadError {
	return &OverloadError{Code: 503, RetryAfter: time.Second, Reason: "queue-full"}
}

// Admission weights. A build pays for an entire Θ(|E|) σ pass; an
// assignment-carrying query only serializes and walks an existing index, so
// several ride alongside one build without starving it.
const (
	buildWeight = 4
	queryWeight = 1
)

// semaphore is a context-aware weighted semaphore with a bounded FIFO wait
// queue. Acquire either succeeds immediately, waits in the queue until
// capacity frees or ctx expires, or fails fast with an OverloadError when the
// queue is full. Waiters are granted strictly in arrival order so a heavy
// waiter cannot be starved by a stream of light ones.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	held     int64
	queue    []*semWaiter
	maxQueue int
}

type semWaiter struct {
	weight int64
	ready  chan struct{} // closed when granted
}

func newSemaphore(capacity int64, maxQueue int) *semaphore {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &semaphore{capacity: capacity, maxQueue: maxQueue}
}

// Acquire obtains weight units of capacity (clamped to the semaphore's total
// so one huge request cannot deadlock itself). On success the caller must
// Release the same weight.
func (s *semaphore) Acquire(ctx context.Context, weight int64) error {
	if weight > s.capacity {
		weight = s.capacity
	}
	s.mu.Lock()
	if s.held+weight <= s.capacity && len(s.queue) == 0 {
		s.held += weight
		s.mu.Unlock()
		return nil
	}
	if len(s.queue) >= s.maxQueue {
		s.mu.Unlock()
		return errShedQueueFull()
	}
	w := &semWaiter{weight: weight, ready: make(chan struct{})}
	s.queue = append(s.queue, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the cancellation: keep the grant;
			// the caller sees success and releases normally.
			s.mu.Unlock()
			return nil
		default:
		}
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns weight units and grants queued waiters in FIFO order.
func (s *semaphore) Release(weight int64) {
	if weight > s.capacity {
		weight = s.capacity
	}
	s.mu.Lock()
	s.held -= weight
	if s.held < 0 {
		s.held = 0
	}
	for len(s.queue) > 0 && s.held+s.queue[0].weight <= s.capacity {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.held += w.weight
		close(w.ready)
	}
	s.mu.Unlock()
}

// QueueLen returns the number of requests currently waiting.
func (s *semaphore) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Saturated reports whether the wait queue is at capacity — the readiness
// probe uses this to steer load balancers away before requests are shed.
func (s *semaphore) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) >= s.maxQueue
}

// admission wraps the semaphore with a bounded wait and the server metrics.
type admission struct {
	sem     *semaphore
	maxWait time.Duration
	met     *Metrics
}

func newAdmission(buildSlots, queueDepth int, maxWait time.Duration, met *Metrics) *admission {
	if buildSlots < 1 {
		buildSlots = 1
	}
	return &admission{
		sem:     newSemaphore(int64(buildSlots)*buildWeight, queueDepth),
		maxWait: maxWait,
		met:     met,
	}
}

// acquire obtains weight units, waiting at most maxWait (and no longer than
// the request's own deadline). It returns the release func on success and an
// OverloadError (queue full / queue timeout) or the ctx error otherwise.
func (a *admission) acquire(ctx context.Context, weight int64) (release func(), err error) {
	if a.maxWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.maxWait)
		defer cancel()
	}
	queuedAt := time.Now()
	if err := a.sem.Acquire(ctx, weight); err != nil {
		a.met.AdmissionShed.Add(1)
		var oe *OverloadError
		if errors.As(err, &oe) {
			return nil, err
		}
		// The bounded wait expired (or the request deadline did): shed with
		// a hint proportional to how long we already waited.
		return nil, &OverloadError{Code: 503, RetryAfter: time.Second, Reason: "queue-timeout"}
	}
	if time.Since(queuedAt) > time.Millisecond {
		a.met.AdmissionQueued.Add(1)
	}
	a.met.AdmissionAdmitted.Add(1)
	return func() { a.sem.Release(weight) }, nil
}

func (a *admission) acquireBuild(ctx context.Context) (func(), error) {
	return a.acquire(ctx, buildWeight)
}

func (a *admission) acquireQuery(ctx context.Context) (func(), error) {
	return a.acquire(ctx, queryWeight)
}

// --- per-client rate limiting ---------------------------------------------

// rateLimiter is a per-client token bucket: each client key (remote host)
// accrues rate tokens per second up to burst, and each request spends one.
// Stale buckets are garbage-collected opportunistically so the map stays
// bounded under client churn.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil // unlimited
	}
	b := float64(burst)
	if b < 1 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

// Allow spends one token from key's bucket, reporting whether the request is
// admitted and, when it is not, how long until a token accrues.
func (l *rateLimiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[key]
	if !found {
		if len(l.buckets) >= 4096 {
			l.gcLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After has 1s resolution; round up
	}
	return false, wait
}

// gcLocked drops buckets idle long enough to have refilled completely — an
// absent bucket and a full one are indistinguishable to Allow.
func (l *rateLimiter) gcLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}
