package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/index"
)

func lfr(t *testing.T, n int, seed int64) *graph.CSR {
	t.Helper()
	g, _, err := gen.LFR(gen.DefaultLFR(n, 8, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestIndexCacheGenerationInvariant hammers one cache name with concurrent
// queries against two graph generations interleaved with evictions, under the
// race detector. The invariant: a successful get always returns an index
// built for exactly the generation the caller asked about — never the other
// generation that happens to share the name (the stale-generation check in
// entry()).
func TestIndexCacheGenerationInvariant(t *testing.T) {
	gA := lfr(t, 2000, 1)
	gB := lfr(t, 2000, 2)
	c := newIndexCache(&Metrics{}, 1, nil, 0)
	geA := &GraphEntry{Name: "g", G: gA}
	geB := &GraphEntry{Name: "g", G: gB}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		ge := geA
		if w%2 == 1 {
			ge = geB
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				idx, _, _, err := c.get(context.Background(), ge, 0)
				if err != nil {
					// Eviction may cancel a build under a waiter; that must
					// surface as a context error, and a retry must recover.
					if !errors.Is(err, context.Canceled) {
						errCh <- err
						return
					}
					continue
				}
				if idx.Graph() != ge.G {
					errCh <- errors.New("index answers for the wrong graph generation")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			c.evictGraph("g")
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// After the dust settles a fresh get for either generation works.
	for _, ge := range []*GraphEntry{geA, geB} {
		idx, _, _, err := c.get(context.Background(), ge, 0)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Graph() != ge.G {
			t.Fatal("post-race get returned the wrong generation")
		}
	}
}

// TestIndexCacheEvictKeepsStale checks the degraded-mode contract of
// evictGraph: the fresh entry goes away (a reload with new content rebuilds),
// but the last good index survives in the stale store so queries can degrade
// while the replacement builds or fails.
func TestIndexCacheEvictKeepsStale(t *testing.T) {
	g1 := lfr(t, 1000, 3)
	g2 := lfr(t, 1000, 4)
	c := newIndexCache(&Metrics{}, 1, nil, 0)

	idx1, hit, _, err := c.get(context.Background(), &GraphEntry{Name: "g", G: g1}, 0)
	if err != nil || hit {
		t.Fatalf("first get: idx=%v hit=%v err=%v", idx1, hit, err)
	}
	c.evictGraph("g")
	if c.size() != 0 {
		t.Fatal("evictGraph left the fresh entry")
	}
	st, ok := c.staleFor("g", 0)
	if !ok || st.idx != idx1 {
		t.Fatal("evictGraph dropped the stale snapshot")
	}

	// Reload with different content: a fresh build, and the stale store rolls
	// forward to the new generation once it succeeds.
	idx2, hit, _, err := c.get(context.Background(), &GraphEntry{Name: "g", G: g2}, 0)
	if err != nil || hit {
		t.Fatalf("post-reload get: hit=%v err=%v", hit, err)
	}
	if idx2 == idx1 || idx2.Graph() != g2 {
		t.Fatal("reload with new content did not rebuild")
	}
	if st, _ := c.staleFor("g", 0); st == nil || st.idx != idx2 {
		t.Fatal("stale store did not roll forward to the new build")
	}
}

// TestIndexCacheAbandonedWaiter checks that a waiter whose deadline expires
// mid-build gets its context error promptly, and that the cache recovers: a
// later unhurried get yields a working index.
func TestIndexCacheAbandonedWaiter(t *testing.T) {
	g := lfr(t, 30000, 5)
	c := newIndexCache(&Metrics{}, 1, nil, 0)
	ge := &GraphEntry{Name: "g", G: g}

	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	start := time.Now()
	_, _, _, err := c.get(ctx, ge, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter got %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("expired waiter blocked %v", waited)
	}

	idx, _, _, err := c.get(context.Background(), ge, 0)
	if err != nil {
		t.Fatalf("get after an abandoned build: %v", err)
	}
	if idx.Graph() != g {
		t.Fatal("recovered index answers for the wrong graph")
	}
}

// TestIndexCacheMemoryBudget checks LRU eviction under a byte budget: the
// oldest idle index (and its stale twin) is dropped to make room, while the
// just-built index is never its own victim — even under a budget too small
// for a single index.
func TestIndexCacheMemoryBudget(t *testing.T) {
	graphs := []*graph.CSR{lfr(t, 1000, 6), lfr(t, 1000, 7), lfr(t, 1000, 8)}
	perIndex := index.Build(graphs[0], 1).Bytes()

	met := &Metrics{}
	c := newIndexCache(met, 1, nil, 2*perIndex+perIndex/2)
	names := []string{"a", "b", "c"}
	for i, g := range graphs {
		if _, _, _, err := c.get(context.Background(), &GraphEntry{Name: names[i], G: g}, 0); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // separate lastUsed stamps
	}
	if used := c.usedBytes(); used > 2*perIndex+perIndex/2 {
		t.Fatalf("resident bytes %d exceed the budget", used)
	}
	if met.IndexEvicted.Load() == 0 {
		t.Fatal("three indexes fit a two-index budget without any eviction")
	}
	c.mu.Lock()
	_, aLive := c.entries[idxKey{name: "a"}]
	_, aStale := c.stale[idxKey{name: "a"}]
	_, cLive := c.entries[idxKey{name: "c"}]
	c.mu.Unlock()
	if aLive || aStale {
		t.Fatal("LRU eviction spared the oldest entry (or left its stale twin)")
	}
	if !cLive {
		t.Fatal("the just-built index was evicted")
	}

	// A budget below a single index still never evicts the fresh build.
	tiny := newIndexCache(&Metrics{}, 1, nil, 1)
	for i, g := range graphs[:2] {
		if _, _, _, err := tiny.get(context.Background(), &GraphEntry{Name: names[i], G: g}, 0); err != nil {
			t.Fatal(err)
		}
	}
	tiny.mu.Lock()
	_, bLive := tiny.entries[idxKey{name: "b"}]
	n := len(tiny.entries)
	tiny.mu.Unlock()
	if !bLive || n != 1 {
		t.Fatalf("tiny budget: %d entries resident, want only the latest build", n)
	}
}
