package server_test

import (
	"reflect"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/eval"
	"anyscan/internal/gen"
	"anyscan/internal/server"
)

// TestE2EApproxQueryDial exercises the accuracy dial end to end on an
// unweighted graph: an ?approx= query is answered from a sketch-based index
// (echoed in the response, cached under its own key, counted in metrics),
// its clustering is near-identical to the exact answer, and an approx local
// query returns exactly the membership the approx global clustering assigns.
func TestE2EApproxQueryDial(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(2000, 9, 13))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "g", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}

	const mu, eps, delta = 3, 0.5, 0.05
	exact, err := c.Query(tctx, "g", mu, eps, true)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Approx != 0 {
		t.Fatalf("exact query echoed approx=%g, want 0", exact.Approx)
	}

	ap, err := c.QueryApprox(tctx, "g", mu, eps, delta, true)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Approx != delta {
		t.Fatalf("approx query echoed approx=%g, want %g", ap.Approx, delta)
	}
	if ap.CacheHit {
		t.Fatal("first approx query reported a cache hit; the approx index must not share the exact entry")
	}
	ari, nmi := eval.AgreementLabels(exact.Assignments.Labels, ap.Assignments.Labels)
	if ari < 0.99 {
		t.Fatalf("approx clustering at delta=%g diverges: ARI %.4f (NMI %.4f)", delta, ari, nmi)
	}

	// Same dial again: served from the cached approximate index.
	ap2, err := c.QueryApprox(tctx, "g", mu, eps, delta, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ap2.CacheHit {
		t.Fatal("second approx query at the same delta missed the cache")
	}
	if ap2.Clusters != ap.Clusters {
		t.Fatalf("cached approx answer changed: %d clusters vs %d", ap2.Clusters, ap.Clusters)
	}

	// An approx local query must return exactly the community the approx
	// global clustering assigns the seed — the same contract the exact pair
	// has, shifted to the approximate index.
	var seed int32 = -1
	for v, l := range ap.Assignments.Labels {
		if l != cluster.NoLabel {
			seed = int32(v)
			break
		}
	}
	if seed < 0 {
		t.Fatal("approx clustering assigned no communities")
	}
	lr, err := c.LocalApprox(tctx, "g", seed, mu, eps, delta, true)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Approx != delta {
		t.Fatalf("approx local echoed approx=%g, want %g", lr.Approx, delta)
	}
	wantRole, wantMembers, _ := expectedLocal(ap.Assignments, seed)
	if lr.Role != wantRole || !reflect.DeepEqual(lr.Members, wantMembers) {
		t.Fatalf("approx local(seed=%d) diverges from approx global (role %q vs %q, %d vs %d members)",
			seed, lr.Role, wantRole, len(lr.Members), len(wantMembers))
	}

	text, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, text, "anyscand_approx_queries_total "); v < 3 {
		t.Fatalf("anyscand_approx_queries_total = %g, want >= 3", v)
	}
	if v := metricValue(t, text, "anyscand_approx_index_builds_total "); v < 1 {
		t.Fatalf("anyscand_approx_index_builds_total = %g, want >= 1", v)
	}
}

// TestE2EApproxWeightedFallsBackExact loads a weighted graph: the build has
// no sketchable σ form, so an approx request is answered exactly and the
// response says so by omitting the dial.
func TestE2EApproxWeightedFallsBackExact(t *testing.T) {
	cfg := gen.DefaultLFR(900, 8, 29)
	cfg.Weights = gen.WeightConfig{Mode: gen.WeightUniform, Min: 0.5, Max: 2}
	g, _, err := gen.LFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "w", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}

	const mu, eps = 3, 0.4
	exact, err := c.Query(tctx, "w", mu, eps, true)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := c.QueryApprox(tctx, "w", mu, eps, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Approx != 0 {
		t.Fatalf("weighted-graph approx query echoed approx=%g, want 0 (exact fallback)", ap.Approx)
	}
	if !reflect.DeepEqual(ap.Assignments, exact.Assignments) {
		t.Fatal("weighted-graph approx answer differs from exact")
	}
}

// TestE2EApproxOnLiveGraphServedExactly mutates a graph and then asks for an
// approx clustering: live epochs carry exact σ, so the answer must come from
// the epoch chain (epoch echoed, approx omitted) and the fallback counter
// must tick.
func TestE2EApproxOnLiveGraphServedExactly(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(800, 8, 41))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "g", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}
	mr, err := c.Mutate(tctx, "g", []server.MutationSpec{{Op: "add", U: 0, V: 500, W: 1}})
	if err != nil {
		t.Fatal(err)
	}

	ap, err := c.QueryApproxEpoch(tctx, "g", 3, 0.4, 0.05, mr.Epoch, false)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Approx != 0 {
		t.Fatalf("live-graph approx query echoed approx=%g, want 0 (exact serving)", ap.Approx)
	}
	if ap.Epoch < mr.Epoch {
		t.Fatalf("live-graph approx answer at epoch %d, want >= %d", ap.Epoch, mr.Epoch)
	}
	lr, err := c.LocalApprox(tctx, "g", 0, 3, 0.4, 0.05, false)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Approx != 0 || lr.Epoch < mr.Epoch {
		t.Fatalf("live-graph approx local: approx=%g epoch=%d, want exact serving at epoch >= %d",
			lr.Approx, lr.Epoch, mr.Epoch)
	}

	text, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, text, "anyscand_approx_live_exact_total "); v < 2 {
		t.Fatalf("anyscand_approx_live_exact_total = %g, want >= 2", v)
	}
}
