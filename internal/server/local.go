package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"anyscan/internal/live"
	"anyscan/internal/local"
)

// This file implements GET /v1/local, the seed-centered community query:
// given graph, seed, μ, and ε, expand only the seed's community (plus its
// border fringe) from the graph's query index or its current live epoch,
// with byte-identical membership to what full /v1/query would assign that
// component. The endpoint composes with the rest of the serving machinery:
// deadlines propagate, the work is admission-metered at query weight,
// ?min_epoch= gives read-your-writes on mutated graphs, and capacity
// failures degrade to the last good index with the stale marker.

// handleLocal answers GET /v1/local?graph=&seed=&mu=&eps=[&approx=].
func (s *Server) handleLocal(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	if name == "" {
		writeError(w, http.StatusBadRequest,
			errors.New("need graph=<name>&seed=<vertex>&mu=<int>&eps=<float>[&approx=<delta>]"))
		return
	}
	mu, err := parseMuParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eps, err := parseEpsParam(q.Get("eps"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seed, err := parseSeedParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	approx, err := parseApproxParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	minEpoch, err := parseMinEpoch(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := vertexInRange(seed, ge.G.NumVertices()); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveLocal(w, r, ge, seed, mu, eps, approx, minEpoch)
}

// vertexInRange validates a request-supplied vertex id against the graph's
// vertex count. Every handler that accepts a vertex id must call it (or an
// equivalent domain validation) before doing any work, so malformed input
// is a structured 400, never a panic.
func vertexInRange(v int32, n int) error {
	if v < 0 || int(v) >= n {
		return fmt.Errorf("vertex %d out of range [0, %d)", v, n)
	}
	return nil
}

// wantMembers reports whether the response should carry the full member
// list (the default; ?members=0 suppresses it for summary-only callers).
func wantMembers(r *http.Request) bool {
	v := r.URL.Query().Get("members")
	return v != "0" && v != "false"
}

// serveLocal answers one local query, degrading to the last good index —
// explicitly marked stale — when the fresh build fails or is shed. Like
// clusterings, read-your-writes requests never degrade.
func (s *Server) serveLocal(w http.ResponseWriter, r *http.Request, ge *GraphEntry, seed int32, mu int, eps, approx float64, minEpoch int64) {
	resp, code, err := s.queryLocal(r.Context(), ge, seed, mu, eps, approx, minEpoch, wantMembers(r))
	if err != nil {
		if minEpoch == 0 && s.degradeLocal(w, r, ge, seed, mu, eps, approx, err) {
			return
		}
		s.countDeadline(err)
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryLocal routes a local query to the graph's live epoch chain when one
// exists (so mutations are visible) or to the immutable index otherwise,
// mirroring queryClustering — including the accuracy dial: an approximate
// index answers through its band-aware LocalView, and approx requests on
// live graphs are served exactly. The expansion itself is cheap relative to
// an index build but still serializes O(community) state, so it is metered
// through the admission semaphore at query weight.
func (s *Server) queryLocal(ctx context.Context, ge *GraphEntry, seed int32, mu int, eps, approx float64, minEpoch int64, withMembers bool) (LocalResponse, int, error) {
	if lg, ok := s.liveGraphs.lookup(ge.Name, ge.G); ok {
		if approx > 0 {
			s.met.ApproxLiveExact.Add(1)
			s.log.Warn("approx local query on live graph served exactly",
				"graph", ge.Name, "approx", approx)
		}
		return s.liveLocal(ctx, ge, lg, seed, mu, eps, minEpoch, withMembers)
	}
	if minEpoch > 0 {
		return LocalResponse{}, http.StatusConflict,
			fmt.Errorf("graph %q has no live epochs; min_epoch requires a mutated graph", ge.Name)
	}
	idx, hit, buildMS, err := s.idx.get(ctx, ge, approx)
	if err != nil {
		return LocalResponse{}, http.StatusBadRequest, err
	}
	if s.admit != nil {
		release, err := s.admit.acquireQuery(ctx)
		if err != nil {
			return LocalResponse{}, http.StatusServiceUnavailable, err
		}
		defer release()
	}
	resolvedBefore := idx.Approx().Resolved
	res, queryUS, err := s.runLocal(idx.LocalView(eps), seed, mu, eps)
	if err != nil {
		return LocalResponse{}, http.StatusBadRequest, err
	}
	resp := localResponse(ge.Name, res, withMembers)
	resp.Approx = effectiveApprox(idx)
	if resp.Approx > 0 {
		s.met.ApproxQueries.Add(1)
		s.met.ApproxResolvedArcs.Add(idx.Approx().Resolved - resolvedBefore)
	}
	resp.CacheHit = hit
	resp.BuildMS = buildMS
	resp.QueryMS = float64(queryUS) / 1000
	return resp, 0, nil
}

// liveLocal answers a local query from a live graph's epoch chain, waiting
// for the read-your-writes bound before taking any admission slot (same
// discipline as liveClustering).
func (s *Server) liveLocal(ctx context.Context, ge *GraphEntry, lg *live.Graph, seed int32, mu int, eps float64, minEpoch int64, withMembers bool) (LocalResponse, int, error) {
	ep, err := lg.WaitEpoch(ctx, minEpoch)
	if err != nil {
		return LocalResponse{}, http.StatusServiceUnavailable, err
	}
	if s.admit != nil {
		release, err := s.admit.acquireQuery(ctx)
		if err != nil {
			return LocalResponse{}, http.StatusServiceUnavailable, err
		}
		defer release()
	}
	res, queryUS, err := s.runLocal(ep, seed, mu, eps)
	if err != nil {
		return LocalResponse{}, http.StatusBadRequest, err
	}
	resp := localResponse(ge.Name, res, withMembers)
	resp.CacheHit = true
	resp.Epoch = ep.Seq()
	resp.QueryMS = float64(queryUS) / 1000
	return resp, 0, nil
}

// degradeLocal serves a stale-marked local answer from the last good index
// when the fresh one is unavailable for capacity reasons. The stale index
// may describe an older generation of the graph, so the seed is re-checked
// against that generation's vertex range.
func (s *Server) degradeLocal(w http.ResponseWriter, r *http.Request, ge *GraphEntry, seed int32, mu int, eps, approx float64, cause error) bool {
	if !degradable(cause) {
		return false
	}
	st, ok := s.idx.staleFor(ge.Name, approx)
	if !ok {
		return false
	}
	if vertexInRange(seed, st.idx.NumVertices()) != nil {
		return false
	}
	res, queryUS, err := s.runLocal(st.idx.LocalView(eps), seed, mu, eps)
	if err != nil {
		return false
	}
	s.met.StaleServed.Add(1)
	s.log.Warn("serving stale local query", "graph", ge.Name, "cause", cause.Error())
	w.Header().Set("X-Anyscan-Stale", "1")
	resp := localResponse(ge.Name, res, wantMembers(r))
	resp.Approx = effectiveApprox(st.idx)
	resp.CacheHit = true
	resp.Stale = true
	resp.QueryMS = float64(queryUS) / 1000
	writeJSON(w, http.StatusOK, resp)
	return true
}

// runLocal executes one expansion against any local.View and records the
// anyscand_local_* metrics.
func (s *Server) runLocal(v local.View, seed int32, mu int, eps float64) (*local.Result, int64, error) {
	start := time.Now()
	res, err := local.Query(v, seed, mu, eps)
	if err != nil {
		return nil, 0, err
	}
	queryUS := time.Since(start).Microseconds()
	s.met.LocalQueries.Add(1)
	s.met.LocalFrontier.Add(int64(res.Touched))
	s.met.LocalQueryUS.Add(queryUS)
	return res, queryUS, nil
}

// localResponse builds the wire form of a local result.
func localResponse(graphName string, res *local.Result, withMembers bool) LocalResponse {
	resp := LocalResponse{
		Graph:   graphName,
		Seed:    res.Seed,
		Mu:      res.Mu,
		Eps:     res.Eps,
		Role:    res.Role.String(),
		Size:    len(res.Members),
		Touched: res.Touched,
	}
	if withMembers && len(res.Members) > 0 {
		resp.Members = res.Members
		resp.Roles = make([]int8, len(res.Roles))
		for i, role := range res.Roles {
			resp.Roles[i] = int8(role)
		}
	}
	return resp
}
