package server_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/faultinject"
	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/server"
)

// tctx is the background context threaded through client calls in tests that
// don't exercise cancellation themselves; per-call deadlines come from the
// server's route timeouts.
var tctx = context.Background()

// testGraph is a shared LFR benchmark graph, generated once: big enough that
// a single-threaded job takes many steps (so tests can reliably pause or
// cancel mid-run), small enough to keep the suite fast.
var (
	graphOnce sync.Once
	bigGraph  *graph.CSR
)

func sharedGraph(t *testing.T) *graph.CSR {
	t.Helper()
	graphOnce.Do(func() {
		g, _, err := gen.LFR(gen.DefaultLFR(40000, 10, 42))
		if err != nil {
			panic(err)
		}
		bigGraph = g
	})
	return bigGraph
}

// writeGraphFile serializes g into dir as a binary container (exact
// round-trip, including isolated vertices) and returns its path.
func writeGraphFile(t *testing.T, g *graph.CSR, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "graph.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestServer builds a Server plus an httptest listener and returns a
// typed client. Cleanup drains the job pool.
func newTestServer(t *testing.T, mcfg server.ManagerConfig) (*server.Server, *server.Client) {
	t.Helper()
	srv, err := server.New(server.Config{Manager: mcfg, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
	})
	return srv, server.NewClient(ts.URL)
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// slowSpec is a job spec tuned for many small steps: single-threaded with a
// small block size, so control requests land mid-run deterministically.
func slowSpec(graphName string) server.JobSpec {
	return server.JobSpec{Graph: graphName, Mu: 4, Eps: 0.4, Alpha: 32, Threads: 1, Seed: 7, ResolveRoles: true}
}

// pauseMidRun retries Pause until it lands while the job is running. Fails
// the test if the job reaches a terminal state first.
func pauseMidRun(t *testing.T, c *server.Client, id string) server.JobStatus {
	t.Helper()
	for {
		if st, err := c.PauseJob(tctx, id); err == nil {
			return st
		}
		st, err := c.JobStatus(tctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			t.Fatalf("job reached %s before a pause landed", st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// resultFromAssignments rebuilds a cluster.Result from the wire payload so
// it can be compared against a batch run with cluster.Equivalent.
func resultFromAssignments(t *testing.T, a *server.Assignments) *cluster.Result {
	t.Helper()
	if a == nil {
		t.Fatal("response has no assignments")
	}
	r := cluster.NewResult(len(a.Labels))
	copy(r.Labels, a.Labels)
	for i, role := range a.Roles {
		r.Roles[i] = cluster.Role(role)
	}
	r.Canonicalize()
	return r
}

func batchResult(t *testing.T, g *graph.CSR, spec server.JobSpec) *cluster.Result {
	t.Helper()
	res, _, err := core.Cluster(g, spec.Options(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestE2EJobLifecycle drives the full happy path over real HTTP: load a
// graph, submit a job, watch monotone progress, take an anytime snapshot
// mid-run (via pause), resume, and check the final result equals the batch
// anyscan result for the same (graph, ε, μ).
func TestE2EJobLifecycle(t *testing.T) {
	g := sharedGraph(t)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 2})

	info, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Vertices != g.NumVertices() || info.Edges != g.NumEdges() {
		t.Fatalf("loaded graph %d/%d, want %d/%d", info.Vertices, info.Edges, g.NumVertices(), g.NumEdges())
	}

	spec := slowSpec("g")
	st, err := c.SubmitJob(tctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.JobQueued && st.State != server.JobRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}

	// Anytime snapshot mid-run: pause at the next consistent point.
	paused := pauseMidRun(t, c, st.ID)
	for paused.State == server.JobRunning { // pause was accepted but not yet parked
		time.Sleep(time.Millisecond)
		if paused, err = c.JobStatus(tctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if paused.State != server.JobPaused {
		t.Fatalf("after pause: state = %s", paused.State)
	}
	if paused.Progress.Done {
		t.Fatal("paused mid-run but progress says done")
	}
	snap, err := c.JobSnapshot(tctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Progress.Touched == 0 {
		t.Fatal("mid-run snapshot shows no touched vertices")
	}
	if snap.Assignments == nil || len(snap.Assignments.Labels) != g.NumVertices() {
		t.Fatal("mid-run snapshot has no per-vertex assignments")
	}

	if _, err := c.ResumeJob(tctx, st.ID); err != nil {
		t.Fatal(err)
	}

	// Monotone progress while the job runs to completion.
	prev := paused.Progress
	for {
		cur, err := c.JobStatus(tctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Progress.Iterations < prev.Iterations || cur.Progress.Touched < prev.Touched ||
			cur.Progress.Sims < prev.Sims {
			t.Fatalf("progress went backwards: %+v then %+v", prev, cur.Progress)
		}
		prev = cur.Progress
		if cur.State.Terminal() {
			if cur.State != server.JobDone {
				t.Fatalf("job finished as %s (%s)", cur.State, cur.Error)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !prev.Done || prev.Touched != g.NumVertices() {
		t.Fatalf("final progress not complete: %+v", prev)
	}

	// Final result must equal the batch anyscan result for the same inputs.
	res, err := c.JobResult(tctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	got := resultFromAssignments(t, res.Assignments)
	want := batchResult(t, g, spec)
	if got.NumClusters != want.NumClusters {
		t.Fatalf("clusters = %d, want %d", got.NumClusters, want.NumClusters)
	}
	if err := cluster.Equivalent(got, want); err != nil {
		t.Fatalf("job result differs from batch run: %v", err)
	}
}

// TestE2ECancelMidRun interrupts a running job inside its current block and
// checks the terminal state; the anytime snapshot stays queryable, the final
// result never exists.
func TestE2ECancelMidRun(t *testing.T) {
	g := sharedGraph(t)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})

	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(tctx, slowSpec("g"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJob(tctx, st.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var final server.JobStatus
	for {
		if final, err = c.JobStatus(tctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s after cancel", final.State)
		}
		time.Sleep(time.Millisecond)
	}
	if final.State != server.JobCanceled {
		t.Fatalf("state after cancel = %s", final.State)
	}
	if _, err := c.JobSnapshot(tctx, st.ID, false); err != nil {
		t.Fatalf("snapshot of canceled job: %v", err)
	}
	if _, err := c.JobResult(tctx, st.ID, false); err == nil {
		t.Fatal("result of a canceled job should not exist")
	}
}

// TestE2ERestartRecovery pauses a job mid-run (writing a checkpoint), kills
// the server, starts a fresh one on the same checkpoint directory, and
// checks the recovered job resumes to the exact batch result.
func TestE2ERestartRecovery(t *testing.T) {
	g := sharedGraph(t)
	dir := t.TempDir()
	path := writeGraphFile(t, g, dir)
	ckptDir := filepath.Join(dir, "ckpt")
	spec := slowSpec("g")

	// First daemon: submit, pause mid-run, drain away.
	srvA, err := server.New(server.Config{Manager: server.ManagerConfig{Workers: 1, CheckpointDir: ckptDir}, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA)
	cA := server.NewClient(tsA.URL)
	if _, err := cA.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}
	st, err := cA.SubmitJob(tctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	pauseMidRun(t, cA, st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	if _, err := os.Stat(filepath.Join(ckptDir, st.ID+".ckpt")); err != nil {
		t.Fatalf("pause left no checkpoint: %v", err)
	}

	// Second daemon on the same checkpoint dir: the job comes back paused.
	_, cB := newTestServer(t, server.ManagerConfig{Workers: 1, CheckpointDir: ckptDir})
	rec, err := cB.JobStatus(tctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != server.JobPaused || !rec.Recovered {
		t.Fatalf("recovered job: state=%s recovered=%v", rec.State, rec.Recovered)
	}
	if _, err := cB.ResumeJob(tctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, cB, st.ID)
	if final.State != server.JobDone {
		t.Fatalf("recovered job finished as %s (%s)", final.State, final.Error)
	}
	res, err := cB.JobResult(tctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	got := resultFromAssignments(t, res.Assignments)
	want := batchResult(t, g, spec)
	if err := cluster.Equivalent(got, want); err != nil {
		t.Fatalf("resumed-across-restart result differs from batch run: %v", err)
	}
}

// TestE2ECheckpointFaults injects checkpoint write failures (the job
// survives, the error is reported) and corrupts a checkpoint on disk (the
// restarted daemon marks the job failed instead of dying).
func TestE2ECheckpointFaults(t *testing.T) {
	defer faultinject.Reset()
	g := sharedGraph(t)
	dir := t.TempDir()
	path := writeGraphFile(t, g, dir)
	ckptDir := filepath.Join(dir, "ckpt")

	srvA, err := server.New(server.Config{Manager: server.ManagerConfig{Workers: 1, CheckpointDir: ckptDir}, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA)
	cA := server.NewClient(tsA.URL)
	if _, err := cA.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}
	st, err := cA.SubmitJob(tctx, slowSpec("g"))
	if err != nil {
		t.Fatal(err)
	}

	// A failed checkpoint write must not kill the job.
	faultinject.Arm("checkpoint.write", 1, nil)
	pauseMidRun(t, cA, st.ID)
	status := waitState(t, cA, st.ID, server.JobPaused)
	if status.CheckpointErr == "" || !strings.Contains(status.CheckpointErr, "injected") {
		t.Fatalf("injected checkpoint failure not reported: %+v", status)
	}

	// The next pause writes a good checkpoint; corrupt it on disk.
	if _, err := cA.ResumeJob(tctx, st.ID); err != nil {
		t.Fatal(err)
	}
	pauseMidRun(t, cA, st.ID)
	status = waitState(t, cA, st.ID, server.JobPaused)
	if status.CheckpointErr != "" {
		t.Fatalf("clean checkpoint still reports error: %s", status.CheckpointErr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	tsA.Close()

	ckpt := filepath.Join(ckptDir, st.ID+".ckpt")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(ckpt, data, 0o666); err != nil {
		t.Fatal(err)
	}

	// The restarted daemon must come up and expose the job as failed.
	_, cB := newTestServer(t, server.ManagerConfig{Workers: 1, CheckpointDir: ckptDir})
	rec, err := cB.JobStatus(tctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != server.JobFailed || !strings.Contains(rec.Error, "checkpoint") {
		t.Fatalf("corrupt checkpoint: state=%s err=%q", rec.State, rec.Error)
	}
}

// waitJob polls a job to a terminal state with a generous bound.
func waitJob(t *testing.T, c *server.Client, id string) server.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.WaitJob(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, c *server.Client, id string, want server.JobState) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.JobStatus(tctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job state = %s, want %s", st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestE2EInteractiveQueries exercises the deprecated unversioned /cluster
// and /sweep aliases: the first query builds the graph's index (cache miss),
// repeats hit the cache, answers match the batch clustering, and eviction
// invalidates the cache.
func TestE2EInteractiveQueries(t *testing.T) {
	g := sharedGraph(t)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	first, err := c.Cluster(tctx, "g", 4, 0.4, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	second, err := c.Cluster(tctx, "g", 4, 0.55, false)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second query missed the index cache")
	}

	// The interactive answer must match a batch run at the same (ε, μ).
	want, _, err := core.Cluster(g, server.JobSpec{Mu: 4, Eps: 0.4, ResolveRoles: true}.Options(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	got := resultFromAssignments(t, first.Assignments)
	if err := cluster.Equivalent(got, want); err != nil {
		t.Fatalf("interactive clustering differs from batch run: %v", err)
	}

	sweep, err := c.Sweep(tctx, "g", 4, []float64{0.3, 0.4, 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.CacheHit || len(sweep.Points) != 3 {
		t.Fatalf("sweep: hit=%v points=%d", sweep.CacheHit, len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if p.Eps == 0.4 && p.Clusters != first.Clusters {
			t.Fatalf("sweep at ε=0.4 found %d clusters, /cluster found %d", p.Clusters, first.Clusters)
		}
	}

	// Auto-picked thresholds.
	auto, err := c.Sweep(tctx, "g", 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Points) == 0 {
		t.Fatal("sweep with auto thresholds returned no points")
	}

	// Eviction invalidates the index cache.
	if err := c.EvictGraph(tctx, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cluster(tctx, "g", 4, 0.4, false); err == nil {
		t.Fatal("query against an evicted graph should fail")
	}
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}
	reloaded, err := c.Cluster(tctx, "g", 4, 0.4, false)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.CacheHit {
		t.Fatal("index cache survived graph eviction")
	}
}

// TestE2EQueryOneSigmaPass drives the versioned /v1/query endpoint at two
// different μ (plus a profile form) on the same graph and asserts — via the
// σ-evaluation Prometheus counter — that the server spent exactly one
// similarity pass (one σ per edge) across all of them. This is the index
// guarantee the per-(graph, μ) explorer cache could not offer: changing μ no
// longer recomputes anything.
func TestE2EQueryOneSigmaPass(t *testing.T) {
	g := sharedGraph(t)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	first, err := c.Query(tctx, "g", 4, 0.4, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	if first.Eps != 0.4 || len(first.Points) != 0 {
		t.Fatalf("single-ε response malformed: eps=%v points=%d", first.Eps, len(first.Points))
	}
	// The answer is the exact SCAN clustering at (μ, ε).
	want := cluster.Reference(g, 4, 0.4)
	got := resultFromAssignments(t, first.Assignments)
	if err := cluster.Equivalent(got, want); err != nil {
		t.Fatalf("/v1/query differs from the reference clustering: %v", err)
	}

	// A different μ on the same graph: served from the same index.
	second, err := c.Query(tctx, "g", 7, 0.55, false)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("changing mu evicted the index")
	}

	// Profile form with auto-picked thresholds, at a third μ.
	profile, err := c.QueryProfile(tctx, "g", 5, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !profile.CacheHit || len(profile.Points) == 0 || len(profile.Points) > 8 {
		t.Fatalf("profile: hit=%v points=%d", profile.CacheHit, len(profile.Points))
	}

	text, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if sims := metricValue(t, text, "anyscand_index_sim_evals_total "); sims != float64(g.NumEdges()) {
		t.Errorf("σ evaluations = %g after three μ values, want exactly one pass = %d", sims, g.NumEdges())
	}
	if misses := metricValue(t, text, "anyscand_index_cache_misses_total "); misses != 1 {
		t.Errorf("index builds = %g, want 1", misses)
	}
	if hits := metricValue(t, text, "anyscand_index_cache_hits_total "); hits != 2 {
		t.Errorf("index cache hits = %g, want 2", hits)
	}
}

// TestE2EMetrics checks the Prometheus endpoint reports non-zero job and
// σ-evaluation counters after real work.
func TestE2EMetrics(t *testing.T) {
	g := sharedGraph(t)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(tctx, server.JobSpec{Graph: "g", Mu: 4, Eps: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, st.ID)
	if _, err := c.Cluster(tctx, "g", 4, 0.4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cluster(tctx, "g", 4, 0.5, false); err != nil {
		t.Fatal(err)
	}

	text, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"anyscand_jobs_submitted_total 1",
		"anyscand_jobs_completed_total 1",
		"anyscand_queries_total 2",
		"anyscand_index_cache_hits_total 1",
		"anyscand_index_cache_misses_total 1",
		"anyscand_graphs_loaded 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// σ-evaluation and wall-time counters: index builds, queries, and job
	// work all non-zero.
	for _, prefix := range []string{
		"anyscand_index_sim_evals_total ",
		"anyscand_index_build_ms_total ",
		"anyscand_query_ms_total ",
		"anyscand_job_sim_evals ",
	} {
		v := metricValue(t, text, prefix)
		if v <= 0 {
			t.Errorf("%s= %g, want > 0", prefix, v)
		}
	}
	if !strings.Contains(text, "anyscand_http_request_duration_ms_bucket") {
		t.Error("metrics missing the latency histogram")
	}
}

func metricValue(t *testing.T, text, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, prefix); ok {
			var v float64
			if _, err := fmt.Sscan(rest, &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found", prefix)
	return 0
}

// TestE2EDrain checks drain semantics: running jobs park with a checkpoint,
// new submissions are rejected, and health reports draining.
func TestE2EDrain(t *testing.T) {
	g := sharedGraph(t)
	dir := t.TempDir()
	path := writeGraphFile(t, g, dir)
	ckptDir := filepath.Join(dir, "ckpt")
	srv, c := newTestServer(t, server.ManagerConfig{Workers: 1, CheckpointDir: ckptDir})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.SubmitJob(tctx, slowSpec("g"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := c.JobStatus(tctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The job either finished before the drain reached it or parked paused
	// with a checkpoint on disk.
	switch after.State {
	case server.JobPaused:
		if _, err := os.Stat(filepath.Join(ckptDir, st.ID+".ckpt")); err != nil {
			t.Fatalf("drained job left no checkpoint: %v", err)
		}
	case server.JobDone:
	default:
		t.Fatalf("after drain: state = %s", after.State)
	}
	if _, err := c.SubmitJob(tctx, slowSpec("g")); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("submit during drain: %v", err)
	}
	// Liveness stays green while draining — restarting a draining daemon
	// would only lose work; readiness flips so traffic is steered away.
	if err := c.Healthz(tctx); err != nil {
		t.Fatalf("healthz should stay OK while draining: %v", err)
	}
	if err := c.Readyz(tctx); err == nil {
		t.Fatal("readyz should fail while draining")
	}
}
