package server_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anyscan/internal/faultinject"
	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/server"
)

// This file is the HTTP-layer chaos and overload suite: it drives a real
// server over real sockets through storms, injected build failures, connection
// resets, and slow-loris bodies, and asserts the overload contract — bounded
// latency, fast 429/503 + Retry-After instead of unbounded queueing,
// stale-marked degraded answers, full recovery once faults clear, and no
// goroutine leaks.

// newOverloadServer builds a server with the given overload config behind an
// httptest listener, plus a client whose HTTP transport is private to the
// test (so the goroutine-leak check is not confused by shared idle
// connections).
func newOverloadServer(t *testing.T, ocfg server.OverloadConfig) (*server.Server, *httptest.Server, *server.Client) {
	t.Helper()
	srv, err := server.New(server.Config{
		Manager:  server.ManagerConfig{Workers: 1},
		Overload: ocfg,
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	tr := &http.Transport{}
	c := server.NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: tr}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
		tr.CloseIdleConnections()
	})
	return srv, ts, c
}

func genGraphFile(t *testing.T, n int, seed int64) (string, *graph.CSR) {
	t.Helper()
	g, _, err := gen.LFR(gen.DefaultLFR(n, 10, seed))
	if err != nil {
		t.Fatal(err)
	}
	return writeGraphFile(t, g, t.TempDir()), g
}

// TestE2ETimeoutParamDoesNotStickToRoute pins the per-request scope of
// ?timeout_ms=: one caller shortening its own deadline must not shorten the
// route's default for every request after it (a captured-variable bug in the
// deadline middleware did exactly that — the first timeout_ms=1 request
// permanently reduced the route deadline to 1ms).
func TestE2ETimeoutParamDoesNotStickToRoute(t *testing.T) {
	// The graph must be big enough that its index build cannot finish inside
	// one scheduling quantum on a single-core runner: the 1ms waiter has to
	// observe its expired deadline before the build's ready channel closes,
	// or the select between them becomes a coin flip.
	path, _ := genGraphFile(t, 15000, 17)
	_, ts, c := newOverloadServer(t, server.OverloadConfig{QueryTimeout: 60 * time.Second})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	raw := &http.Client{Timeout: 90 * time.Second}
	defer raw.CloseIdleConnections()
	resp, err := raw.Get(ts.URL + "/v1/query?graph=g&mu=4&eps=0.4&timeout_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("1ms budget answered %d, want 503", resp.StatusCode)
	}

	// The next request uses the route default and must get a fresh answer.
	resp, err = raw.Get(ts.URL + "/v1/query?graph=g&mu=4&eps=0.4")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after a timeout_ms=1 caller got %d (%s); the shortened deadline stuck to the route", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Anyscan-Stale"); got != "" {
		t.Fatalf("recovered answer marked stale (%q); it should be a fresh build", got)
	}
}

// TestE2EOverloadShedding storms a tightly-provisioned server with
// simultaneous first queries for many distinct graphs — each needing its own
// Θ(|E|) index build — and asserts the admission layer's contract: every
// response is either a fresh 200 or a fast 503 carrying Retry-After, shed
// responses come back quickly instead of queueing behind every build, and
// once the storm passes every graph becomes queryable (full recovery).
func TestE2EOverloadShedding(t *testing.T) {
	path, _ := genGraphFile(t, 15000, 11)
	_, ts, c := newOverloadServer(t, server.OverloadConfig{
		BuildSlots:   1,
		QueueDepth:   1,
		QueueWait:    50 * time.Millisecond,
		QueryTimeout: 30 * time.Second,
	})

	const graphs = 8
	for i := 0; i < graphs; i++ {
		name := fmt.Sprintf("g%d", i)
		if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: name, GraphSource: server.GraphSource{Path: path}}); err != nil {
			t.Fatal(err)
		}
	}

	// Raw requests without client-side retries, so shed responses are
	// observable instead of papered over.
	raw := &http.Client{Timeout: 40 * time.Second}
	defer raw.CloseIdleConnections()
	type outcome struct {
		status     int
		retryAfter string
		elapsed    time.Duration
	}
	results := make([]outcome, graphs)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < graphs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			began := time.Now()
			resp, err := raw.Get(fmt.Sprintf("%s/v1/query?graph=g%d&mu=4&eps=0.4", ts.URL, i))
			if err != nil {
				t.Errorf("storm request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After"), time.Since(began)}
		}(i)
	}
	close(start)
	wg.Wait()

	var shed int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter == "" {
				t.Errorf("storm request %d shed without a Retry-After header", i)
			}
			if r.elapsed > 20*time.Second {
				t.Errorf("storm request %d shed only after %v; shedding must be fast", i, r.elapsed)
			}
		default:
			t.Errorf("storm request %d: status %d, want 200 or 503", i, r.status)
		}
	}
	if shed == 0 {
		t.Error("a 1-build-slot server absorbed 8 simultaneous builds without shedding")
	}

	// Recovery: with the storm gone, every graph answers fresh queries.
	for i := 0; i < graphs; i++ {
		resp, err := c.Query(tctx, fmt.Sprintf("g%d", i), 4, 0.4, false)
		if err != nil {
			t.Fatalf("post-storm query for g%d: %v", i, err)
		}
		if resp.Stale {
			t.Fatalf("post-storm query for g%d answered stale", i)
		}
	}

	text, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, text, "anyscand_admission_shed_total "); v == 0 {
		t.Error("admission_shed_total is 0 after an observed shed")
	}
}

// TestE2EStaleServing drives the degraded-mode path end to end: after a graph
// is evicted and reloaded with new content, a sustained build outage (the
// armed "index.build" fault) must yield 200s served from the last good index
// — marked by both the JSON stale flag and the X-Anyscan-Stale header — and
// clearing the fault must restore fresh serving.
func TestE2EStaleServing(t *testing.T) {
	defer faultinject.Reset()
	path1, _ := genGraphFile(t, 2000, 21)
	path2, _ := genGraphFile(t, 2000, 22)
	_, ts, c := newOverloadServer(t, server.OverloadConfig{})

	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "s", GraphSource: server.GraphSource{Path: path1}}); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.Query(tctx, "s", 4, 0.4, false)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stale {
		t.Fatal("healthy first query answered stale")
	}

	// Replace the graph's content, then keep every rebuild failing.
	if err := c.EvictGraph(tctx, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "s", GraphSource: server.GraphSource{Path: path2}}); err != nil {
		t.Fatal(err)
	}
	faultinject.ArmAlways("index.build", nil)

	degraded, err := c.Query(tctx, "s", 4, 0.4, false)
	if err != nil {
		t.Fatalf("query during the build outage: %v (want a stale-marked 200)", err)
	}
	if !degraded.Stale {
		t.Fatal("degraded answer not marked stale in the payload")
	}
	if degraded.Clusters != fresh.Clusters {
		t.Fatalf("stale answer has %d clusters; the last good index found %d", degraded.Clusters, fresh.Clusters)
	}

	// The wire marker: clients that only look at headers see the degradation.
	raw := &http.Client{Timeout: 30 * time.Second}
	defer raw.CloseIdleConnections()
	resp, err := raw.Get(ts.URL + "/v1/query?graph=s&mu=4&eps=0.4")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Anyscan-Stale") != "1" {
		t.Fatalf("degraded response: status=%d stale-header=%q", resp.StatusCode, resp.Header.Get("X-Anyscan-Stale"))
	}

	text, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := metricValue(t, text, "anyscand_stale_served_total "); v < 2 {
		t.Errorf("stale_served_total = %g after two degraded answers", v)
	}

	// Outage over: the rebuild succeeds and serving returns to fresh.
	faultinject.Reset()
	recovered, err := c.Query(tctx, "s", 4, 0.4, false)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Stale || recovered.CacheHit {
		t.Fatalf("post-outage query: stale=%v hit=%v, want a fresh build", recovered.Stale, recovered.CacheHit)
	}
}

// TestE2EClientRetriesThroughChaos puts the chaos middleware between the
// client and a healthy server and checks the hardened client rides out
// deterministic 503 bursts and connection resets without surfacing them.
func TestE2EClientRetriesThroughChaos(t *testing.T) {
	path, _ := genGraphFile(t, 2000, 31)
	srv, err := server.New(server.Config{Manager: server.ManagerConfig{Workers: 1}, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	var chaos faultinject.HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(srv))
	tr := &http.Transport{}
	c := server.NewClient(ts.URL)
	c.HTTP = &http.Client{Transport: tr}
	c.Retry = server.RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
		tr.CloseIdleConnections()
	})

	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	// Every 3rd response is a synthetic 503: retries must absorb them all.
	chaos.InjectErrors(http.StatusServiceUnavailable, 3)
	for i := 0; i < 9; i++ {
		if _, err := c.Query(tctx, "g", 4, 0.4, false); err != nil {
			t.Fatalf("query %d through 503 chaos: %v", i, err)
		}
	}
	if chaos.Injected.Load() == 0 {
		t.Fatal("chaos injected nothing; the test proved nothing")
	}
	chaos.Clear()

	// Every 3rd connection dies with a reset: idempotent GETs must retry.
	chaos.InjectResets(3)
	for i := 0; i < 9; i++ {
		if _, err := c.Query(tctx, "g", 4, 0.4, false); err != nil {
			t.Fatalf("query %d through reset chaos: %v", i, err)
		}
	}
	chaos.Clear()

	// Faults cleared: plain queries flow with no retries needed.
	if _, err := c.Query(tctx, "g", 4, 0.4, false); err != nil {
		t.Fatal(err)
	}
}

// TestE2ECircuitBreakerTrips points a no-retry client at a server that only
// answers 503 and checks the breaker opens after the failure threshold,
// failing fast without touching the network.
func TestE2ECircuitBreakerTrips(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := server.NewClient(ts.URL)
	c.Retry = server.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}

	var sawOpen bool
	for i := 0; i < 20; i++ {
		err := c.Healthz(tctx)
		if err == nil {
			t.Fatal("healthz against a dead server succeeded")
		}
		if errors.Is(err, server.ErrCircuitOpen) {
			sawOpen = true
			break
		}
	}
	if !sawOpen {
		t.Fatal("20 consecutive 503s never tripped the circuit breaker")
	}
	if served >= 20 {
		t.Fatalf("breaker open but all %d calls hit the network", served)
	}
}

// TestE2ENoGoroutineLeaks runs a condensed chaos scenario — deadline-abandoned
// builds, a slow-loris body, shed requests — then drains and closes the
// server and asserts the process returns to its goroutine baseline: nothing
// stays parked on a semaphore, a build, or a body read.
func TestE2ENoGoroutineLeaks(t *testing.T) {
	defer faultinject.Reset()
	runtime.GC()
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	func() {
		path, _ := genGraphFile(t, 15000, 41)
		// Explicit teardown (not t.Cleanup): the leak check below must run
		// after the server is fully gone.
		srv, err := server.New(server.Config{
			Manager: server.ManagerConfig{Workers: 1},
			Overload: server.OverloadConfig{
				BuildSlots: 1,
				QueueDepth: 1,
				QueueWait:  50 * time.Millisecond,
			},
			Logger: quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		tr := &http.Transport{}
		c := server.NewClient(ts.URL)
		c.HTTP = &http.Client{Transport: tr}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Drain(ctx)
			ts.Close()
			tr.CloseIdleConnections()
		}()
		for _, name := range []string{"a", "b", "c"} {
			if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: name, GraphSource: server.GraphSource{Path: path}}); err != nil {
				t.Fatal(err)
			}
		}

		raw := &http.Client{Timeout: 30 * time.Second}
		defer raw.CloseIdleConnections()

		// Abandoned waiter: a 1ms deadline expires mid-build; the build must
		// be cancelled (no waiters left), not leak.
		resp, err := raw.Get(ts.URL + "/v1/query?graph=a&mu=4&eps=0.4&timeout_ms=1")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}

		// Concurrent storm across the remaining graphs: a mix of fresh
		// answers and sheds, plus parked admission waiters that must drain.
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				name := []string{"a", "b", "c"}[i%3]
				resp, err := raw.Get(ts.URL + "/v1/query?graph=" + name + "&mu=4&eps=0.4")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(i)
		}
		wg.Wait()

		// Slow-loris body: the client gives up after 300ms; the handler must
		// unblock via the request context instead of waiting on reads forever.
		var chaos faultinject.HTTPChaos
		loris := httptest.NewServer(chaos.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			w.WriteHeader(http.StatusOK)
		})))
		defer loris.Close()
		// 512 bytes at 30ms per throttled 16-byte read ≈ 1s server-side; the
		// client bails at 300ms, and teardown below proves the handler
		// finishes promptly instead of wedging the connection.
		chaos.InjectSlowBody(30 * time.Millisecond)
		lorisClient := &http.Client{Timeout: 300 * time.Millisecond}
		body := strings.NewReader(strings.Repeat(" ", 512))
		if _, err := lorisClient.Post(loris.URL, "text/plain", body); err == nil {
			t.Error("slow-loris request finished inside the client timeout")
		}
		lorisClient.CloseIdleConnections()
	}()
	// Everything is drained and closed; in-flight builds and handler
	// teardown may need a moment, so poll back down to the baseline.
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	n := runtime.NumGoroutine()
	pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
	t.Fatalf("goroutines: baseline %d, now %d — see stack dump above", baseline, n)
}

// TestE2EMutateUnderLoadStorm storms a tightly-provisioned server with
// concurrent batch mutations, read-your-writes queries chasing the newest
// epoch, and deliberately abandoned ?min_epoch= waiters whose deadlines
// expire before the epoch they demand could ever exist. The contract under
// test: mutations serialize through admission control without wedging it
// (the queue drains to zero), abandoned waiters release promptly and hold no
// admission slot while parked, every successfully-published epoch stays
// readable, and the process returns to its goroutine baseline on teardown.
func TestE2EMutateUnderLoadStorm(t *testing.T) {
	runtime.GC()
	time.Sleep(100 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	func() {
		path, g := genGraphFile(t, 8000, 23)
		n := int32(g.NumVertices())
		srv, err := server.New(server.Config{
			Manager: server.ManagerConfig{Workers: 1},
			Overload: server.OverloadConfig{
				BuildSlots: 1,
				QueueDepth: 8,
				QueueWait:  2 * time.Second,
			},
			Logger: quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		tr := &http.Transport{}
		c := server.NewClient(ts.URL)
		c.HTTP = &http.Client{Transport: tr}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Drain(ctx)
			ts.Close()
			tr.CloseIdleConnections()
		}()
		if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
			t.Fatal(err)
		}

		// maxEpoch tracks the newest epoch any mutator saw published; readers
		// chase it with min_epoch so every observation is read-your-writes.
		var maxEpoch atomic.Int64
		var mutated, shed atomic.Int64
		var wg sync.WaitGroup
		for m := 0; m < 3; m++ {
			wg.Add(1)
			go func(m int) {
				defer wg.Done()
				for b := 0; b < 5; b++ {
					// Deterministic per-goroutine batches: adds (upserts) and
					// idempotent deletes only, so a retried or reordered batch
					// can never fail validation.
					muts := make([]server.MutationSpec, 0, 8)
					for i := 0; i < 8; i++ {
						u := int32((m*2617 + b*911 + i*389) % int(n))
						v := int32((m*1201 + b*577 + i*97 + 1) % int(n))
						if u == v {
							v = (v + 1) % n
						}
						if i%3 == 0 {
							muts = append(muts, server.MutationSpec{Op: "delete", U: u, V: v})
						} else {
							muts = append(muts, server.MutationSpec{Op: "add", U: u, V: v, W: 0.5 + float32(i)*0.1})
						}
					}
					mr, err := c.Mutate(tctx, "g", muts)
					if err != nil {
						// Admission may shed under the storm; that is the
						// overload contract working, not a failure.
						shed.Add(1)
						continue
					}
					mutated.Add(1)
					for {
						cur := maxEpoch.Load()
						if mr.Epoch <= cur || maxEpoch.CompareAndSwap(cur, mr.Epoch) {
							break
						}
					}
				}
			}(m)
		}
		// Readers chase the published frontier with read-your-writes bounds.
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					min := maxEpoch.Load()
					qr, err := c.QueryEpoch(tctx, "g", 4, 0.4, min, false)
					if err != nil {
						continue // shed under load; retried next round
					}
					if min > 0 && qr.Epoch < min {
						t.Errorf("read-your-writes violated: answered epoch %d < demanded %d", qr.Epoch, min)
						return
					}
				}
			}()
		}
		// Abandoned waiters: each demands an epoch nobody will publish with a
		// 50ms budget. They must come back 503 promptly (WaitEpoch parks
		// without holding admission resources) and leave nothing behind.
		raw := &http.Client{Timeout: 10 * time.Second}
		defer raw.CloseIdleConnections()
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Wait until the graph is live (first epoch published);
				// before that, min_epoch is a 409, not a parked waiter.
				for deadline := time.Now().Add(10 * time.Second); maxEpoch.Load() == 0; {
					if time.Now().After(deadline) {
						return // every batch shed; the mutated==0 check below reports it
					}
					time.Sleep(5 * time.Millisecond)
				}
				resp, err := raw.Get(ts.URL + "/v1/query?graph=g&mu=4&eps=0.4&min_epoch=100000&timeout_ms=50")
				if err != nil {
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("abandoned min_epoch waiter got %d, want 503", resp.StatusCode)
				}
			}()
		}
		wg.Wait()

		if mutated.Load() == 0 {
			t.Fatalf("every mutation batch was shed (%d attempts); storm proved nothing", shed.Load())
		}
		// The frontier epoch stays readable after the storm.
		final := maxEpoch.Load()
		qr, err := c.QueryEpoch(tctx, "g", 4, 0.4, final, false)
		if err != nil {
			t.Fatalf("frontier epoch %d unreadable after the storm: %v", final, err)
		}
		if qr.Epoch < final {
			t.Fatalf("final answer from epoch %d < frontier %d", qr.Epoch, final)
		}
		// Admission drains: nothing stays parked in the queue once the storm
		// has passed.
		deadline := time.Now().Add(5 * time.Second)
		for {
			txt, err := c.MetricsText(tctx)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(txt, "anyscand_admission_queue_depth 0") {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("admission queue did not drain to 0 after the storm")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	// Teardown done; poll back to the goroutine baseline — abandoned epoch
	// waiters and shed mutators must all have unwound.
	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	n := runtime.NumGoroutine()
	pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
	t.Fatalf("goroutines: baseline %d, now %d — see stack dump above", baseline, n)
}
