package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// acquireDone runs Acquire on a goroutine and returns a channel carrying its
// result, so tests can assert both grants and the absence of grants.
func acquireDone(s *semaphore, ctx context.Context, weight int64) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- s.Acquire(ctx, weight) }()
	return ch
}

func mustGrant(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("acquire failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("acquire did not complete")
	}
}

func mustStillWait(t *testing.T, ch <-chan error) {
	t.Helper()
	select {
	case err := <-ch:
		t.Fatalf("acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSemaphoreImmediateAndWeights(t *testing.T) {
	s := newSemaphore(4, 8)
	ctx := context.Background()
	if err := s.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Full: the next acquire must wait.
	ch := acquireDone(s, ctx, 1)
	mustStillWait(t, ch)
	s.Release(1)
	mustGrant(t, ch)
	s.Release(3)
	s.Release(1)

	// A weight beyond capacity is clamped instead of deadlocking forever.
	if err := s.Acquire(ctx, 100); err != nil {
		t.Fatal(err)
	}
	s.Release(100)
}

func TestSemaphoreFIFO(t *testing.T) {
	s := newSemaphore(2, 8)
	ctx := context.Background()
	if err := s.Acquire(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Queue a heavy waiter first, then a light one. FIFO means the light one
	// must NOT jump the queue even though it would fit sooner.
	heavy := acquireDone(s, ctx, 2)
	mustStillWait(t, heavy) // ensure the heavy waiter is enqueued first
	light := acquireDone(s, ctx, 1)
	mustStillWait(t, light)

	s.Release(1) // one unit free: enough for light, not for heavy
	mustStillWait(t, heavy)
	mustStillWait(t, light)
	s.Release(1) // now the heavy head is granted
	mustGrant(t, heavy)
	mustStillWait(t, light)
	s.Release(2)
	mustGrant(t, light)
}

func TestSemaphoreQueueFullSheds(t *testing.T) {
	s := newSemaphore(1, 1)
	ctx := context.Background()
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	queued := acquireDone(s, ctx, 1)
	mustStillWait(t, queued)
	if !s.Saturated() {
		t.Fatal("queue holds maxQueue waiters but Saturated() = false")
	}

	err := s.Acquire(ctx, 1)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-full" {
		t.Fatalf("acquire on a full queue = %v, want queue-full OverloadError", err)
	}
	if oe.Code != 503 || oe.RetryAfter <= 0 {
		t.Fatalf("shed error carries code=%d retryAfter=%v", oe.Code, oe.RetryAfter)
	}
	s.Release(1)
	mustGrant(t, queued)
	s.Release(1)
}

func TestSemaphoreCtxCancelDequeues(t *testing.T) {
	s := newSemaphore(1, 4)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := acquireDone(s, ctx, 1)
	mustStillWait(t, ch)
	cancel()
	select {
	case err := <-ch:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
	if n := s.QueueLen(); n != 0 {
		t.Fatalf("cancelled waiter left the queue at %d", n)
	}
	// Capacity is intact: release then reacquire immediately.
	s.Release(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
}

func TestAdmissionQueueTimeoutSheds(t *testing.T) {
	met := &Metrics{}
	a := newAdmission(1, 4, 10*time.Millisecond, met)
	release, err := a.acquireBuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = a.acquireBuild(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue-timeout" {
		t.Fatalf("bounded wait expiry = %v, want queue-timeout OverloadError", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("shed after %v; the bounded wait is not bounded", waited)
	}
	if met.AdmissionShed.Load() != 1 || met.AdmissionAdmitted.Load() != 1 {
		t.Fatalf("metrics: shed=%d admitted=%d", met.AdmissionShed.Load(), met.AdmissionAdmitted.Load())
	}
	release()
	// After the holder releases, admission recovers.
	release2, err := a.acquireBuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

func TestRateLimiter(t *testing.T) {
	l := newRateLimiter(1, 2) // 1 req/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", now); !ok {
			t.Fatalf("request %d within burst was limited", i)
		}
	}
	ok, retryAfter := l.Allow("a", now)
	if ok {
		t.Fatal("request beyond burst was admitted")
	}
	if retryAfter < time.Second {
		t.Fatalf("Retry-After hint %v below header resolution", retryAfter)
	}
	// Another client has its own bucket.
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("second client throttled by the first's bucket")
	}
	// Tokens accrue with time.
	if ok, _ := l.Allow("a", now.Add(1500*time.Millisecond)); !ok {
		t.Fatal("token did not accrue after refill interval")
	}
	if newRateLimiter(0, 0) != nil {
		t.Fatal("rate 0 should disable limiting")
	}
}

func TestRateLimiterGC(t *testing.T) {
	l := newRateLimiter(10, 10)
	now := time.Unix(1000, 0)
	for i := 0; i < 4096; i++ {
		l.Allow(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune(i)), now)
	}
	// All existing buckets are idle past a full refill at now+10s: inserting
	// one more key triggers GC and the map collapses.
	l.Allow("fresh", now.Add(10*time.Second))
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 2 {
		t.Fatalf("GC left %d buckets, want the fresh one (plus at most one straggler)", n)
	}
}

func TestCircuitBreaker(t *testing.T) {
	var b circuitBreaker
	now := time.Unix(2000, 0)
	for i := 0; i < breakerThreshold; i++ {
		if !b.allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold is %d", i, breakerThreshold)
		}
		b.record(now, true)
	}
	if b.allow(now) {
		t.Fatal("breaker still closed at the failure threshold")
	}
	// After the cooldown exactly one half-open probe goes through.
	later := now.Add(breakerCooldown + time.Second)
	if !b.allow(later) {
		t.Fatal("no half-open probe after cooldown")
	}
	if b.allow(later) {
		t.Fatal("second concurrent probe admitted while half-open")
	}
	// A failed probe re-opens; a successful one closes.
	b.record(later, true)
	if b.allow(later.Add(time.Second)) {
		t.Fatal("breaker closed again right after a failed probe")
	}
	later2 := later.Add(breakerCooldown + 2*time.Second)
	if !b.allow(later2) {
		t.Fatal("no probe after the second cooldown")
	}
	b.record(later2, false)
	if !b.allow(later2) {
		t.Fatal("breaker still open after a successful probe")
	}
}
