package server

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
)

// This file centralizes query-parameter parsing for the interactive
// endpoints (GET /v1/query, GET /v1/local). Every malformed value must
// become a structured 400 with a message naming the parameter and the
// accepted form — never a silent default and never a panic further down.

// parseMuParam extracts the required mu parameter: a base-10 integer >= 1.
func parseMuParam(q url.Values) (int, error) {
	raw := q.Get("mu")
	if raw == "" {
		return 0, fmt.Errorf("missing mu (want mu=<int> >= 1)")
	}
	mu, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad mu %q (want an integer >= 1)", raw)
	}
	if mu < 1 {
		return 0, fmt.Errorf("mu must be >= 1, got %d", mu)
	}
	return mu, nil
}

// parseEpsParam parses one eps value: a finite float in (0, 1].
func parseEpsParam(raw string) (float64, error) {
	eps, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad eps %q (want a float in (0,1])", raw)
	}
	if math.IsNaN(eps) || math.IsInf(eps, 0) || !(eps > 0 && eps <= 1) {
		return 0, fmt.Errorf("eps must be in (0,1], got %v", eps)
	}
	return eps, nil
}

// parseEpsList parses a comma-separated eps list (empty parts skipped); an
// empty raw string yields a nil list (the profile form then probes its own
// thresholds).
func parseEpsList(raw string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(raw, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		v, err := parseEpsParam(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseApproxParam extracts the optional approx accuracy dial: a finite
// float in [0, 1), where 0 (or absence) means exact. The upper bound is
// exclusive — delta is a failure probability, and 1 would promise nothing.
func parseApproxParam(q url.Values) (float64, error) {
	raw := q.Get("approx")
	if raw == "" {
		return 0, nil
	}
	a, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad approx %q (want a float in [0,1))", raw)
	}
	if math.IsNaN(a) || a < 0 || a >= 1 {
		return 0, fmt.Errorf("approx must be in [0,1), got %v", a)
	}
	return a, nil
}

// parseSeedParam extracts the required seed vertex for /v1/local: a base-10
// integer that fits int32 (range vs the graph is checked by the caller,
// which knows the vertex count).
func parseSeedParam(q url.Values) (int32, error) {
	raw := q.Get("seed")
	if raw == "" {
		return 0, fmt.Errorf("missing seed (want seed=<vertex>)")
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad seed %q (want a vertex id)", raw)
	}
	return int32(v), nil
}
