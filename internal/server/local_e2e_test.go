package server_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/server"
)

// expectedLocal derives the ground-truth /v1/local answer for one seed from
// a full /v1/query assignment vector: the seed's role plus — when the seed
// belongs to a community — the ascending member list with per-member roles.
func expectedLocal(a *server.Assignments, seed int32) (role string, members []int32, roles []int8) {
	role = cluster.Role(a.Roles[seed]).String()
	label := a.Labels[seed]
	if label == cluster.NoLabel {
		return role, nil, nil
	}
	for v := range a.Labels {
		if a.Labels[v] == label {
			members = append(members, int32(v))
			roles = append(roles, a.Roles[v])
		}
	}
	return role, members, roles
}

// checkLocalAgainstGlobal fetches /v1/local for seed and fails unless it
// matches the global assignment-derived expectation exactly.
func checkLocalAgainstGlobal(t *testing.T, c *server.Client, name string, a *server.Assignments, seed int32, mu int, eps float64) {
	t.Helper()
	lr, err := c.Local(tctx, name, seed, mu, eps, true)
	if err != nil {
		t.Fatalf("%s: local(seed=%d, mu=%d, eps=%g): %v", name, seed, mu, eps, err)
	}
	wantRole, wantMembers, wantRoles := expectedLocal(a, seed)
	if lr.Role != wantRole {
		t.Fatalf("%s: seed %d at (μ=%d, ε=%g): local role %q, global says %q",
			name, seed, mu, eps, lr.Role, wantRole)
	}
	if !reflect.DeepEqual(lr.Members, wantMembers) {
		t.Fatalf("%s: seed %d at (μ=%d, ε=%g): local members diverge from global (%d vs %d vertices)",
			name, seed, mu, eps, len(lr.Members), len(wantMembers))
	}
	if !reflect.DeepEqual(lr.Roles, wantRoles) {
		t.Fatalf("%s: seed %d at (μ=%d, ε=%g): local member roles diverge from global",
			name, seed, mu, eps)
	}
	if lr.Size != len(wantMembers) {
		t.Fatalf("%s: seed %d: size %d but %d members", name, seed, lr.Size, len(wantMembers))
	}
	if lr.Touched <= 0 || lr.Touched > len(a.Labels) {
		t.Fatalf("%s: seed %d: implausible touched count %d (graph has %d vertices)",
			name, seed, lr.Touched, len(a.Labels))
	}
}

// seedGrid picks a deterministic but varied seed set for one (μ, ε) cell:
// a few random vertices plus the first vertex of every role present, so
// core, border, hub, and outlier paths are all exercised.
func seedGrid(rng *rand.Rand, a *server.Assignments, sample int) []int32 {
	n := len(a.Labels)
	picked := map[int32]bool{}
	var seeds []int32
	add := func(v int32) {
		if !picked[v] {
			picked[v] = true
			seeds = append(seeds, v)
		}
	}
	for i := 0; i < sample; i++ {
		add(int32(rng.Intn(n)))
	}
	for _, want := range []int8{int8(cluster.Core), int8(cluster.Border), int8(cluster.Hub), int8(cluster.Outlier)} {
		for v := range a.Roles {
			if a.Roles[v] == want {
				add(int32(v))
				break
			}
		}
	}
	return seeds
}

// TestE2ELocalMatchesGlobalAcrossBackends is the end-to-end equivalence
// gauntlet of the local-query tentpole: the same graph served from the flat
// CSR, the in-memory compressed backend, and an mmap-backed .csrz file must
// all answer /v1/local byte-identically to the membership the full /v1/query
// assignment vector implies — across a randomized (μ, ε, seed) grid.
func TestE2ELocalMatchesGlobalAcrossBackends(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(2500, 9, 19))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	flatPath := writeGraphFile(t, g, dir)
	zPath := filepath.Join(dir, "graph.csrz")
	if err := graph.Compress(g).WriteCompressedFile(zPath); err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	backends := []struct {
		name string
		src  server.GraphSource
	}{
		{"flat", server.GraphSource{Path: flatPath}},
		{"packed", server.GraphSource{Path: flatPath, Format: server.FormatCompressed}},
		{"mmap", server.GraphSource{Path: zPath}},
	}
	for _, b := range backends {
		if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: b.name, GraphSource: b.src}); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 4; i++ {
		mu := 2 + rng.Intn(5)
		eps := 0.25 + 0.5*rng.Float64()
		for _, b := range backends {
			global, err := c.Query(tctx, b.name, mu, eps, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seedGrid(rng, global.Assignments, 6) {
				checkLocalAgainstGlobal(t, c, b.name, global.Assignments, seed, mu, eps)
			}
		}
	}
}

// TestE2ELocalMinEpochAfterMutations interleaves edge mutations with local
// queries carrying the returned epoch token: each local answer must reflect
// the write (read-your-writes) and match the global clustering at the same
// epoch exactly.
func TestE2ELocalMinEpochAfterMutations(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(1500, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "g", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}

	const mu, eps = 3, 0.4
	rng := rand.New(rand.NewSource(11))
	n := int32(g.NumVertices())
	for batch := 0; batch < 3; batch++ {
		muts := make([]server.MutationSpec, 0, 8)
		for i := 0; i < 8; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			op := "add"
			if i%3 == 2 {
				op = "delete"
			}
			m := server.MutationSpec{Op: op, U: u, V: v}
			if op == "add" {
				m.W = 0.5 + rng.Float32()
			}
			muts = append(muts, m)
		}
		mr, err := c.Mutate(tctx, "g", muts)
		if err != nil {
			t.Fatal(err)
		}
		global, err := c.QueryEpoch(tctx, "g", mu, eps, mr.Epoch, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seedGrid(rng, global.Assignments, 4) {
			lr, err := c.LocalEpoch(tctx, "g", seed, mu, eps, mr.Epoch, true)
			if err != nil {
				t.Fatalf("batch %d: local at epoch %d: %v", batch, mr.Epoch, err)
			}
			if lr.Epoch < mr.Epoch {
				t.Fatalf("batch %d: asked for epoch ≥ %d, got %d", batch, mr.Epoch, lr.Epoch)
			}
			if lr.Stale {
				t.Fatalf("batch %d: read-your-writes answer marked stale", batch)
			}
			wantRole, wantMembers, _ := expectedLocal(global.Assignments, seed)
			if lr.Role != wantRole || !reflect.DeepEqual(lr.Members, wantMembers) {
				t.Fatalf("batch %d: seed %d local answer diverges from epoch-%d global",
					batch, seed, mr.Epoch)
			}
		}
	}
}

// TestE2ELocalConcurrentWithMutations races local queries against a mutation
// stream under the race detector: every local answer must be internally
// consistent (a valid role, members sorted ascending) even while epochs
// advance underneath it. Overload shedding (503) is acceptable; any other
// failure is not.
func TestE2ELocalConcurrentWithMutations(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(1200, 8, 23))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 2, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "g", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}

	n := int32(g.NumVertices())
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	wg.Add(1)
	go func() { // writer: small add/delete batches
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			if _, err := c.Mutate(tctx, "g", []server.MutationSpec{
				{Op: "add", U: u, V: v, W: 1},
			}); err != nil {
				var apiErr *server.APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
					continue // writer shed under load: acceptable
				}
				errc <- fmt.Errorf("mutate: %w", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 12; i++ {
				seed := rng.Int31n(n)
				lr, err := c.Local(tctx, "g", seed, 3, 0.4, true)
				if err != nil {
					var apiErr *server.APIError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
						continue // overload shedding is a legitimate answer
					}
					errc <- fmt.Errorf("local(seed=%d): %w", seed, err)
					return
				}
				for j := 1; j < len(lr.Members); j++ {
					if lr.Members[j-1] >= lr.Members[j] {
						errc <- fmt.Errorf("seed %d: members not strictly ascending", seed)
						return
					}
				}
				if len(lr.Roles) != len(lr.Members) {
					errc <- fmt.Errorf("seed %d: %d roles for %d members", seed, len(lr.Roles), len(lr.Members))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestE2ELocalMinEpochOnStaticGraph asserts the contract that min_epoch on a
// never-mutated graph is a 409: there is no live epoch to wait for, and
// silently serving the static index would fake a guarantee.
func TestE2ELocalMinEpochOnStaticGraph(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(800, 8, 31))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "g", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = c.LocalEpoch(tctx, "g", 0, 3, 0.4, 5, true)
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("min_epoch on unmutated graph: got %v, want 409", err)
	}
}

// TestHandlerValidation is the table-driven audit of /v1/* parameter
// validation: malformed or out-of-range input must yield a structured 4xx
// ErrorResponse — never a 500, never a panic closing the connection.
func TestHandlerValidation(t *testing.T) {
	g, _, err := gen.LFR(gen.DefaultLFR(600, 8, 47))
	if err != nil {
		t.Fatal(err)
	}
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1, Logger: quietLogger()})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{
		Name: "g", GraphSource: server.GraphSource{Path: path},
	}); err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"local: no params", "/v1/local", http.StatusBadRequest},
		{"local: missing seed", "/v1/local?graph=g&mu=3&eps=0.4", http.StatusBadRequest},
		{"local: non-numeric seed", "/v1/local?graph=g&seed=abc&mu=3&eps=0.4", http.StatusBadRequest},
		{"local: non-numeric mu", "/v1/local?graph=g&seed=0&mu=x&eps=0.4", http.StatusBadRequest},
		{"local: non-numeric eps", "/v1/local?graph=g&seed=0&mu=3&eps=x", http.StatusBadRequest},
		{"local: negative seed", "/v1/local?graph=g&seed=-1&mu=3&eps=0.4", http.StatusBadRequest},
		{"local: seed beyond range", fmt.Sprintf("/v1/local?graph=g&seed=%d&mu=3&eps=0.4", n), http.StatusBadRequest},
		{"local: eps above 1", "/v1/local?graph=g&seed=0&mu=3&eps=1.5", http.StatusBadRequest},
		{"local: mu below 1", "/v1/local?graph=g&seed=0&mu=0&eps=0.4", http.StatusBadRequest},
		{"local: unknown graph", "/v1/local?graph=nope&seed=0&mu=3&eps=0.4", http.StatusNotFound},
		{"local: bad min_epoch", "/v1/local?graph=g&seed=0&mu=3&eps=0.4&min_epoch=x", http.StatusBadRequest},
		{"local: non-numeric approx", "/v1/local?graph=g&seed=0&mu=3&eps=0.4&approx=x", http.StatusBadRequest},
		{"local: negative approx", "/v1/local?graph=g&seed=0&mu=3&eps=0.4&approx=-0.1", http.StatusBadRequest},
		{"local: approx at 1", "/v1/local?graph=g&seed=0&mu=3&eps=0.4&approx=1", http.StatusBadRequest},
		{"query: no params", "/v1/query", http.StatusBadRequest},
		{"query: missing mu", "/v1/query?graph=g&eps=0.4", http.StatusBadRequest},
		{"query: non-numeric mu", "/v1/query?graph=g&mu=x&eps=0.4", http.StatusBadRequest},
		{"query: mu below 1", "/v1/query?graph=g&mu=0&eps=0.4", http.StatusBadRequest},
		{"query: non-numeric eps", "/v1/query?graph=g&mu=3&eps=x", http.StatusBadRequest},
		{"query: eps above 1", "/v1/query?graph=g&mu=3&eps=1.5", http.StatusBadRequest},
		{"query: eps at 0", "/v1/query?graph=g&mu=3&eps=0", http.StatusBadRequest},
		{"query: NaN eps", "/v1/query?graph=g&mu=3&eps=NaN", http.StatusBadRequest},
		{"query: unknown graph", "/v1/query?graph=nope&mu=3&eps=0.4", http.StatusNotFound},
		{"query: non-numeric approx", "/v1/query?graph=g&mu=3&eps=0.4&approx=x", http.StatusBadRequest},
		{"query: negative approx", "/v1/query?graph=g&mu=3&eps=0.4&approx=-0.05", http.StatusBadRequest},
		{"query: approx at 1", "/v1/query?graph=g&mu=3&eps=0.4&approx=1", http.StatusBadRequest},
		{"query: approx above 1", "/v1/query?graph=g&mu=3&eps=0.4&approx=1.5", http.StatusBadRequest},
		{"query: NaN approx", "/v1/query?graph=g&mu=3&eps=0.4&approx=NaN", http.StatusBadRequest},
		{"query: approx with eps list", "/v1/query?graph=g&mu=3&eps=0.3,0.5&approx=0.05", http.StatusBadRequest},
		{"query: approx with probed profile", "/v1/query?graph=g&mu=3&approx=0.05", http.StatusBadRequest},
		{"query: bad eps in list", "/v1/query?graph=g&mu=3&eps=0.3,zap", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(c.BaseURL + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("GET %s: status %d, want %d", tc.url, resp.StatusCode, tc.want)
			}
			var e server.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("GET %s: body is not a structured ErrorResponse (decode err %v)", tc.url, err)
			}
		})
	}

	// Mutation endpoints must reject out-of-range endpoints up front with a
	// structured 400 — before any live-graph state is built for the request.
	t.Run("mutate: out-of-range vertex", func(t *testing.T) {
		_, err := c.Mutate(tctx, "g", []server.MutationSpec{
			{Op: "add", U: 0, V: int32(n), W: 1},
		})
		var apiErr *server.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("out-of-range mutation: got %v, want 400", err)
		}
		if !strings.Contains(apiErr.Message, "out of range") {
			t.Fatalf("error does not name the range violation: %q", apiErr.Message)
		}
	})
	t.Run("mutate: negative vertex", func(t *testing.T) {
		_, err := c.Mutate(tctx, "g", []server.MutationSpec{
			{Op: "delete", U: -3, V: 1},
		})
		var apiErr *server.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("negative-vertex mutation: got %v, want 400", err)
		}
	})
}
