package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/graph"
)

// Job is one async anySCAN run. Two locks split its state:
//
//   - runMu serializes access to the Clusterer (StepCtx vs Snapshot /
//     Progress / SaveCheckpoint) — exactly the "between Step calls" protocol
//     the anytime scheme requires. A status or snapshot request therefore
//     waits at most one block.
//   - ctl guards the cheap control fields (state, flags, timestamps) and is
//     never held across a Step, so pause/cancel always land promptly: they
//     set a flag and cancel the step context, which reaches *inside* the
//     running block via core.StepCtx.
type Job struct {
	ID   string
	Spec JobSpec

	runMu sync.Mutex
	c     *core.Clusterer

	ctl        sync.Mutex
	state      JobState
	err        error
	ckptErr    error
	wantPause  bool
	wantCancel bool
	cancelStep context.CancelFunc
	result     *cluster.Result
	recovered  bool
	created    time.Time
	started    time.Time
	finished   time.Time
}

// Status returns the job's wire status. It may wait for the current block
// to finish (progress is read between steps).
func (j *Job) Status() JobStatus {
	j.runMu.Lock()
	p := j.c.Progress()
	j.runMu.Unlock()

	j.ctl.Lock()
	defer j.ctl.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Graph:     j.Spec.Graph,
		Spec:      j.Spec,
		State:     j.state,
		Recovered: j.recovered,
		Progress:  progressInfo(p),
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.ckptErr != nil {
		st.CheckpointErr = j.ckptErr.Error()
	}
	return st
}

// Snapshot returns the best-so-far clustering (the anytime result). Valid in
// every state; between steps for a running job.
func (j *Job) Snapshot() *cluster.Result {
	j.ctl.Lock()
	if j.result != nil {
		res := j.result
		j.ctl.Unlock()
		return res
	}
	j.ctl.Unlock()
	j.runMu.Lock()
	defer j.runMu.Unlock()
	return j.c.Snapshot()
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.ctl.Lock()
	defer j.ctl.Unlock()
	return j.state
}

// Result returns the final clustering, or nil while the job is unfinished.
func (j *Job) Result() *cluster.Result {
	j.ctl.Lock()
	defer j.ctl.Unlock()
	return j.result
}

// Metrics returns the run's cumulative work counters.
func (j *Job) Metrics() core.Metrics {
	j.runMu.Lock()
	defer j.runMu.Unlock()
	return j.c.Metrics()
}

// jobManifest is the durable description of an unfinished job, written next
// to its checkpoint so a restarted daemon can rebuild it.
type jobManifest struct {
	ID      string      `json:"id"`
	Spec    JobSpec     `json:"spec"`
	Source  GraphSource `json:"source"`
	Created time.Time   `json:"created"`
}

// ManagerConfig configures a job Manager.
type ManagerConfig struct {
	// Workers is the number of jobs run concurrently (0 → 2).
	Workers int
	// CheckpointDir enables durable jobs: manifests and atomic checkpoints
	// are written here, and NewManager recovers unfinished jobs from it.
	// Empty disables persistence.
	CheckpointDir string
	// CheckpointEverySteps checkpoints a running job every n completed
	// steps (0 disables periodic checkpoints; pause and drain always
	// checkpoint).
	CheckpointEverySteps int
	// Logger receives job lifecycle events (nil → slog.Default()).
	Logger *slog.Logger
}

// Manager schedules async clustering jobs on a bounded worker pool. Jobs
// survive daemon restarts when a checkpoint directory is configured: every
// unfinished job has a manifest, pause/drain/periodic checkpoints persist
// its state atomically, and NewManager recovers manifests into paused jobs.
type Manager struct {
	reg *Registry
	met *Metrics
	cfg ManagerConfig
	log *slog.Logger

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for stable listings
	nextID atomic.Int64

	queue    chan *Job
	wg       sync.WaitGroup
	draining atomic.Bool
	closed   atomic.Bool
}

// NewManager starts the worker pool and, when cfg.CheckpointDir is set,
// recovers unfinished jobs left behind by a previous process. Recovered
// jobs come back paused: their checkpoint (when one exists) restores the
// exact suspended position, otherwise they restart from scratch on resume.
func NewManager(reg *Registry, met *Metrics, cfg ManagerConfig) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	m := &Manager{
		reg:   reg,
		met:   met,
		cfg:   cfg,
		log:   cfg.Logger,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, 1024),
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o777); err != nil {
			return nil, fmt.Errorf("creating checkpoint dir: %w", err)
		}
		if err := m.recover(); err != nil {
			return nil, err
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.runJob(j)
			}
		}()
	}
	return m, nil
}

// Submit validates the spec, builds the Clusterer, and enqueues the job.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if m.closed.Load() || m.draining.Load() {
		return nil, fmt.Errorf("server is draining; not accepting jobs")
	}
	ge, err := m.reg.Get(spec.Graph)
	if err != nil {
		return nil, err
	}
	c, err := core.New(ge.CSR(), spec.Options(ge.G.NumVertices()))
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:      fmt.Sprintf("j%d", m.nextID.Add(1)),
		Spec:    spec,
		c:       c,
		state:   JobQueued,
		created: time.Now(),
	}
	if err := m.writeManifest(j, ge.Source); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	m.met.JobsSubmitted.Add(1)
	m.queue <- j
	m.log.Info("job submitted", "job", j.ID, "graph", spec.Graph, "mu", spec.Mu, "eps", spec.Eps)
	return j, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("job %q not found", id)
	}
	return j, nil
}

// List returns every job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// CountByState tallies jobs per lifecycle state.
func (m *Manager) CountByState() map[JobState]int {
	counts := make(map[JobState]int)
	for _, j := range m.List() {
		counts[j.State()]++
	}
	return counts
}

// TotalSims sums the σ evaluations performed by all jobs so far.
func (m *Manager) TotalSims() int64 {
	var total int64
	for _, j := range m.List() {
		total += j.Metrics().Sim.Sims
	}
	return total
}

// Pause asks a running job to park at the next consistent point (reaching
// inside the current block via the step context) and checkpoint.
func (m *Manager) Pause(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.ctl.Lock()
	defer j.ctl.Unlock()
	switch j.state {
	case JobRunning:
		j.wantPause = true
		if j.cancelStep != nil {
			j.cancelStep()
		}
		return nil
	case JobPaused:
		return nil
	default:
		return fmt.Errorf("job %s is %s; only running jobs pause", id, j.state)
	}
}

// Resume re-enqueues a paused job; it continues from its in-memory state.
func (m *Manager) Resume(id string) error {
	if m.draining.Load() {
		return fmt.Errorf("server is draining; not accepting jobs")
	}
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.ctl.Lock()
	if j.state != JobPaused {
		j.ctl.Unlock()
		return fmt.Errorf("job %s is %s; only paused jobs resume", id, j.state)
	}
	j.state = JobQueued
	j.wantPause = false
	j.ctl.Unlock()
	m.queue <- j
	m.log.Info("job resumed", "job", id)
	return nil
}

// Cancel stops a job. Queued and paused jobs cancel immediately; a running
// job is interrupted inside its current block and parks as canceled. The
// best-so-far snapshot stays queryable; the final result never arrives.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.ctl.Lock()
	switch j.state {
	case JobQueued, JobPaused:
		// Not owned by a worker (a queued job still in the channel is
		// skipped by runJob's initial state check).
		j.state = JobCanceled
		j.finished = time.Now()
		j.ctl.Unlock()
		m.met.JobsCanceled.Add(1)
		m.removeDurableState(j)
		m.log.Info("job canceled", "job", id)
		return nil
	case JobRunning:
		j.wantCancel = true
		if j.cancelStep != nil {
			j.cancelStep()
		}
		j.ctl.Unlock()
		return nil
	default:
		j.ctl.Unlock()
		return fmt.Errorf("job %s already finished (%s)", id, j.state)
	}
}

// runJob drives one job on a worker goroutine until it finishes, pauses,
// cancels, or fails. A panic inside the algorithm (re-raised by par's
// panic-safe pool) fails the job instead of killing the daemon.
func (m *Manager) runJob(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			j.ctl.Lock()
			j.state = JobFailed
			j.err = fmt.Errorf("job panicked: %v", r)
			j.finished = time.Now()
			j.ctl.Unlock()
			m.met.JobsFailed.Add(1)
			m.removeDurableState(j)
			m.log.Error("job panicked", "job", j.ID, "panic", fmt.Sprint(r))
		}
	}()

	j.ctl.Lock()
	if j.state != JobQueued { // canceled while queued
		j.ctl.Unlock()
		return
	}
	if m.draining.Load() {
		// Drain began after this job was queued: leave it queued; its
		// manifest (when durable) brings it back after restart.
		j.ctl.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancelStep = cancel
	j.state = JobRunning
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.ctl.Unlock()
	defer cancel()

	steps := 0
	for {
		j.ctl.Lock()
		if j.wantCancel {
			j.wantCancel = false
			j.state = JobCanceled
			j.finished = time.Now()
			j.ctl.Unlock()
			m.met.JobsCanceled.Add(1)
			m.removeDurableState(j)
			m.log.Info("job canceled", "job", j.ID)
			return
		}
		if j.wantPause || m.draining.Load() {
			j.wantPause = false
			j.state = JobPaused
			j.ctl.Unlock()
			m.checkpoint(j)
			m.log.Info("job paused", "job", j.ID)
			return
		}
		j.ctl.Unlock()

		j.runMu.Lock()
		more, err := j.c.StepCtx(ctx)
		j.runMu.Unlock()
		if err != nil {
			// The step context fired: pause/cancel/drain flags route the
			// next loop iteration. Anything else is a genuine failure.
			j.ctl.Lock()
			routed := j.wantCancel || j.wantPause || m.draining.Load()
			j.ctl.Unlock()
			if routed {
				continue
			}
			j.ctl.Lock()
			j.state = JobFailed
			j.err = err
			j.finished = time.Now()
			j.ctl.Unlock()
			m.met.JobsFailed.Add(1)
			m.removeDurableState(j)
			m.log.Error("job failed", "job", j.ID, "err", err)
			return
		}
		steps++
		if !more {
			j.runMu.Lock()
			res := j.c.Snapshot()
			j.runMu.Unlock()
			j.ctl.Lock()
			j.state = JobDone
			j.result = res
			j.finished = time.Now()
			j.ctl.Unlock()
			m.met.JobsCompleted.Add(1)
			m.removeDurableState(j)
			m.log.Info("job done", "job", j.ID, "clusters", res.NumClusters)
			return
		}
		if m.cfg.CheckpointEverySteps > 0 && steps%m.cfg.CheckpointEverySteps == 0 {
			m.checkpoint(j)
		}
	}
}

// --- durable state --------------------------------------------------------

func (m *Manager) manifestPath(id string) string {
	return filepath.Join(m.cfg.CheckpointDir, id+".json")
}

func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.cfg.CheckpointDir, id+".ckpt")
}

// writeManifest persists the job description (not its run state) so a
// restarted daemon can rebuild the job even before its first checkpoint.
func (m *Manager) writeManifest(j *Job, src GraphSource) error {
	if m.cfg.CheckpointDir == "" {
		return nil
	}
	man := jobManifest{ID: j.ID, Spec: j.Spec, Source: src, Created: j.created}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := m.manifestPath(j.ID) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o666); err != nil {
		return fmt.Errorf("writing job manifest: %w", err)
	}
	if err := os.Rename(tmp, m.manifestPath(j.ID)); err != nil {
		return fmt.Errorf("publishing job manifest: %w", err)
	}
	return nil
}

// checkpoint saves the job's suspended state atomically. Failures are
// recorded on the job (and logged) but do not kill it: the in-memory run is
// still intact, only durability across a crash is reduced.
func (m *Manager) checkpoint(j *Job) {
	if m.cfg.CheckpointDir == "" {
		return
	}
	j.runMu.Lock()
	err := j.c.SaveCheckpointFile(m.checkpointPath(j.ID))
	j.runMu.Unlock()
	j.ctl.Lock()
	j.ckptErr = err
	j.ctl.Unlock()
	if err != nil {
		m.log.Error("checkpoint failed", "job", j.ID, "err", err)
	}
}

// removeDurableState deletes a finished job's manifest and checkpoint.
func (m *Manager) removeDurableState(j *Job) {
	if m.cfg.CheckpointDir == "" {
		return
	}
	os.Remove(m.manifestPath(j.ID))
	os.Remove(m.checkpointPath(j.ID))
}

// recover rebuilds unfinished jobs from manifests left by a previous
// process. A job with a checkpoint resumes exactly where it parked; one
// without (crash before the first checkpoint) restarts from scratch. Every
// recovered job starts paused — the operator (or client) resumes it. A
// corrupt checkpoint or missing graph marks the job failed instead of
// aborting startup: one bad file must not take the service down.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.cfg.CheckpointDir)
	if err != nil {
		return fmt.Errorf("scanning checkpoint dir: %w", err)
	}
	var maxID int64
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.cfg.CheckpointDir, ent.Name()))
		if err != nil {
			m.log.Error("reading job manifest", "file", ent.Name(), "err", err)
			continue
		}
		var man jobManifest
		if err := json.Unmarshal(data, &man); err != nil || man.ID == "" {
			m.log.Error("parsing job manifest", "file", ent.Name(), "err", err)
			continue
		}
		if n, err := parseJobID(man.ID); err == nil && n > maxID {
			maxID = n
		}
		j := &Job{ID: man.ID, Spec: man.Spec, created: man.Created, recovered: true}
		ge, err := m.reg.Load(man.Spec.Graph, man.Source)
		if err != nil {
			m.failRecovered(j, fmt.Errorf("recovering job %s: %w", man.ID, err))
			continue
		}
		ckpt := m.checkpointPath(man.ID)
		if _, statErr := os.Stat(ckpt); statErr == nil {
			c, err := core.LoadCheckpointFile(ge.CSR(), ckpt)
			if err != nil {
				m.failRecovered(j, fmt.Errorf("recovering job %s checkpoint: %w", man.ID, err))
				continue
			}
			j.c = c
		} else {
			c, err := core.New(ge.CSR(), man.Spec.Options(ge.G.NumVertices()))
			if err != nil {
				m.failRecovered(j, fmt.Errorf("recovering job %s: %w", man.ID, err))
				continue
			}
			j.c = c
		}
		j.state = JobPaused
		m.jobs[j.ID] = j
		m.order = append(m.order, j.ID)
		m.met.JobsRecovered.Add(1)
		m.log.Info("job recovered", "job", j.ID, "graph", man.Spec.Graph)
	}
	sort.Slice(m.order, func(a, b int) bool {
		x, _ := parseJobID(m.order[a])
		y, _ := parseJobID(m.order[b])
		return x < y
	})
	m.nextID.Store(maxID)
	return nil
}

// failRecovered registers a recovered-but-unusable job as failed so its
// fate is visible over the API rather than silently dropped. Jobs without a
// restored Clusterer report empty progress.
func (m *Manager) failRecovered(j *Job, err error) {
	if j.c == nil {
		// A placeholder so Status/Snapshot never dereference nil; an empty
		// 1-vertex run is inert.
		if ph, phErr := placeholderClusterer(); phErr == nil {
			j.c = ph
		} else {
			m.log.Error("job unrecoverable", "job", j.ID, "err", err)
			return
		}
	}
	j.state = JobFailed
	j.err = err
	j.finished = time.Now()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.met.JobsFailed.Add(1)
	m.log.Error("job recovery failed", "job", j.ID, "err", err)
}

// placeholderClusterer backs a failed-at-recovery job whose real state could
// not be restored: a trivial single-vertex run that only serves empty
// Progress/Snapshot reads.
func placeholderClusterer() (*core.Clusterer, error) {
	g, err := graph.FromEdges(1, nil)
	if err != nil {
		return nil, err
	}
	return core.New(g, core.DefaultOptions())
}

func parseJobID(id string) (int64, error) {
	var n int64
	_, err := fmt.Sscanf(id, "j%d", &n)
	return n, err
}

// Drain stops accepting work, interrupts every running job inside its
// current block, checkpoints each at a consistent point, and waits (bounded
// by ctx) for all of them to park. Queued jobs stay queued; durable ones
// come back on restart.
func (m *Manager) Drain(ctx context.Context) error {
	m.draining.Store(true)
	for _, j := range m.List() {
		j.ctl.Lock()
		if j.state == JobRunning && j.cancelStep != nil {
			j.cancelStep()
		}
		j.ctl.Unlock()
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		running := m.CountByState()[JobRunning]
		if running == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain timed out with %d jobs still running: %w", running, ctx.Err())
		case <-tick.C:
		}
	}
}

// Close drains (bounded by ctx) and stops the worker pool.
func (m *Manager) Close(ctx context.Context) error {
	err := m.Drain(ctx)
	if m.closed.CompareAndSwap(false, true) {
		close(m.queue)
	}
	m.wg.Wait()
	return err
}
