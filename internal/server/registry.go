package server

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"anyscan/internal/datasets"
	"anyscan/internal/graph"
)

// GraphEntry is one loaded graph in the registry. G is whichever backend the
// source produced — a flat *graph.CSR or a (possibly mmap-backed) compressed
// graph; identity of the interface value is the generation check every
// derived cache (index, live, jobs) keys on.
type GraphEntry struct {
	Name   string
	Source GraphSource
	G      graph.Graph
	Loaded time.Time

	// csr lazily materializes a flat CSR view for the few consumers that
	// need arc-indexed access (the anytime clusterer in particular). For a
	// CSR-backed entry this is the graph itself; for a compressed entry the
	// first caller pays one decompression, logged as a warning because it
	// forfeits the memory the compressed backend saved.
	csrOnce sync.Once
	csr     *graph.CSR
}

// CSR returns a flat *graph.CSR view of the entry's graph, materializing
// (and caching) it on first use when the backend is compressed.
func (e *GraphEntry) CSR() *graph.CSR {
	e.csrOnce.Do(func() {
		if g, ok := e.G.(*graph.CSR); ok {
			e.csr = g
			return
		}
		slog.Warn("materializing flat CSR from compressed graph backend (anytime jobs need arc-indexed access)",
			"graph", e.Name)
		e.csr = graph.Materialize(e.G)
	})
	return e.csr
}

// Info returns the wire description of the entry.
func (e *GraphEntry) Info() GraphInfo {
	n := e.G.NumVertices()
	avg := 0.0
	if n > 0 {
		avg = float64(e.G.NumArcs()) / float64(n)
	}
	return GraphInfo{
		Name:     e.Name,
		Source:   e.Source,
		Vertices: n,
		Edges:    e.G.NumEdges(),
		AvgDeg:   avg,
		Loaded:   e.Loaded,
	}
}

// Registry holds the graphs the service can cluster, keyed by name. Loads
// are single-flight: concurrent requests for the same name share one load,
// and a load in progress never blocks lookups of other graphs.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*GraphEntry
	loading map[string]*registryLoad
}

type registryLoad struct {
	done  chan struct{}
	entry *GraphEntry
	err   error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*GraphEntry),
		loading: make(map[string]*registryLoad),
	}
}

// DefaultName returns the registry key a source is filed under when the
// caller does not pick one: the dataset name, or the file base name.
func (s GraphSource) DefaultName() string {
	if s.Dataset != "" {
		return s.Dataset
	}
	return filepath.Base(s.Path)
}

func (s GraphSource) validate() error {
	switch {
	case s.Path == "" && s.Dataset == "":
		return fmt.Errorf("graph source needs a path or a dataset name")
	case s.Path != "" && s.Dataset != "":
		return fmt.Errorf("graph source must not set both path and dataset")
	}
	switch s.Format {
	case "", FormatCSR, FormatCompressed:
	default:
		return fmt.Errorf("unknown graph format %q (want %q or %q)", s.Format, FormatCSR, FormatCompressed)
	}
	return nil
}

// load builds the graph described by the source. Format selects the backend:
// "" or "csr" loads flat (except .csrz files, which stay mmap-backed
// compressed — decompressing would defeat the format), "compressed" serves a
// compressed in-memory graph (encoding it after a flat load when the source
// is not already a .csrz container).
func (s GraphSource) load() (graph.Graph, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Dataset != "" {
		scale := s.Scale
		if scale <= 0 {
			scale = 1
		}
		g, err := datasets.Load(s.Dataset, scale)
		if err != nil || s.Format != FormatCompressed {
			return g, err
		}
		return graph.Compress(g), nil
	}
	g, _, err := graph.LoadAny(s.Path)
	if err != nil {
		return nil, err
	}
	if s.Format == FormatCompressed {
		if flat, ok := g.(*graph.CSR); ok {
			return graph.Compress(flat), nil
		}
	}
	return g, nil
}

// Load loads (or returns the already-loaded) graph under name. A second Load
// of the same name with a different source fails; evict first.
func (r *Registry) Load(name string, src GraphSource) (*GraphEntry, error) {
	if name == "" {
		name = src.DefaultName()
	}
	if err := src.validate(); err != nil {
		return nil, err
	}

	r.mu.Lock()
	if e, ok := r.entries[name]; ok {
		r.mu.Unlock()
		if e.Source != src {
			return nil, fmt.Errorf("graph %q is already loaded from a different source; evict it first", name)
		}
		return e, nil
	}
	if l, ok := r.loading[name]; ok {
		r.mu.Unlock()
		<-l.done
		if l.err != nil {
			return nil, l.err
		}
		if l.entry.Source != src {
			return nil, fmt.Errorf("graph %q is already loaded from a different source; evict it first", name)
		}
		return l.entry, nil
	}
	l := &registryLoad{done: make(chan struct{})}
	r.loading[name] = l
	r.mu.Unlock()

	g, err := src.load()
	r.mu.Lock()
	delete(r.loading, name)
	if err != nil {
		l.err = fmt.Errorf("loading graph %q: %w", name, err)
	} else {
		l.entry = &GraphEntry{Name: name, Source: src, G: g, Loaded: time.Now()}
		r.entries[name] = l.entry
	}
	r.mu.Unlock()
	close(l.done)
	return l.entry, l.err
}

// Get returns the loaded graph under name.
func (r *Registry) Get(name string) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("graph %q is not loaded", name)
	}
	return e, nil
}

// Evict removes the graph under name. Running jobs holding the graph keep
// their reference (the CSR is immutable); only the registry entry — and any
// cached explorers the server keys on the name — go away.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("graph %q is not loaded", name)
	}
	delete(r.entries, name)
	return nil
}

// List returns every loaded graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of loaded graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// BytesUsage sums graph storage across the registry: total logical bytes and
// the heap/page-cache-resident portion (mmap-backed sections of compressed
// graphs count toward total but not resident). Exported at /metrics as the
// anyscand_graph_bytes and anyscand_graph_resident_bytes gauges.
func (r *Registry) BytesUsage() (total, resident int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if s, ok := e.G.(graph.Sizer); ok {
			total += s.Bytes()
			resident += s.ResidentBytes()
		}
	}
	return total, resident
}
