package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"anyscan/internal/datasets"
	"anyscan/internal/graph"
)

// GraphEntry is one loaded graph in the registry.
type GraphEntry struct {
	Name   string
	Source GraphSource
	G      *graph.CSR
	Loaded time.Time
}

// Info returns the wire description of the entry.
func (e *GraphEntry) Info() GraphInfo {
	n := e.G.NumVertices()
	avg := 0.0
	if n > 0 {
		avg = float64(e.G.NumArcs()) / float64(n)
	}
	return GraphInfo{
		Name:     e.Name,
		Source:   e.Source,
		Vertices: n,
		Edges:    e.G.NumEdges(),
		AvgDeg:   avg,
		Loaded:   e.Loaded,
	}
}

// Registry holds the graphs the service can cluster, keyed by name. Loads
// are single-flight: concurrent requests for the same name share one load,
// and a load in progress never blocks lookups of other graphs.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*GraphEntry
	loading map[string]*registryLoad
}

type registryLoad struct {
	done  chan struct{}
	entry *GraphEntry
	err   error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*GraphEntry),
		loading: make(map[string]*registryLoad),
	}
}

// DefaultName returns the registry key a source is filed under when the
// caller does not pick one: the dataset name, or the file base name.
func (s GraphSource) DefaultName() string {
	if s.Dataset != "" {
		return s.Dataset
	}
	return filepath.Base(s.Path)
}

func (s GraphSource) validate() error {
	switch {
	case s.Path == "" && s.Dataset == "":
		return fmt.Errorf("graph source needs a path or a dataset name")
	case s.Path != "" && s.Dataset != "":
		return fmt.Errorf("graph source must not set both path and dataset")
	}
	return nil
}

// load builds the graph described by the source.
func (s GraphSource) load() (*graph.CSR, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Dataset != "" {
		scale := s.Scale
		if scale <= 0 {
			scale = 1
		}
		return datasets.Load(s.Dataset, scale)
	}
	g, _, err := graph.LoadFile(s.Path)
	return g, err
}

// Load loads (or returns the already-loaded) graph under name. A second Load
// of the same name with a different source fails; evict first.
func (r *Registry) Load(name string, src GraphSource) (*GraphEntry, error) {
	if name == "" {
		name = src.DefaultName()
	}
	if err := src.validate(); err != nil {
		return nil, err
	}

	r.mu.Lock()
	if e, ok := r.entries[name]; ok {
		r.mu.Unlock()
		if e.Source != src {
			return nil, fmt.Errorf("graph %q is already loaded from a different source; evict it first", name)
		}
		return e, nil
	}
	if l, ok := r.loading[name]; ok {
		r.mu.Unlock()
		<-l.done
		if l.err != nil {
			return nil, l.err
		}
		if l.entry.Source != src {
			return nil, fmt.Errorf("graph %q is already loaded from a different source; evict it first", name)
		}
		return l.entry, nil
	}
	l := &registryLoad{done: make(chan struct{})}
	r.loading[name] = l
	r.mu.Unlock()

	g, err := src.load()
	r.mu.Lock()
	delete(r.loading, name)
	if err != nil {
		l.err = fmt.Errorf("loading graph %q: %w", name, err)
	} else {
		l.entry = &GraphEntry{Name: name, Source: src, G: g, Loaded: time.Now()}
		r.entries[name] = l.entry
	}
	r.mu.Unlock()
	close(l.done)
	return l.entry, l.err
}

// Get returns the loaded graph under name.
func (r *Registry) Get(name string) (*GraphEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("graph %q is not loaded", name)
	}
	return e, nil
}

// Evict removes the graph under name. Running jobs holding the graph keep
// their reference (the CSR is immutable); only the registry entry — and any
// cached explorers the server keys on the name — go away.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return fmt.Errorf("graph %q is not loaded", name)
	}
	delete(r.entries, name)
	return nil
}

// List returns every loaded graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of loaded graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
