package server_test

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/server"
)

// This file tests the live-graph HTTP surface: POST /v1/graphs/{name}/edges
// batch mutations, the ?min_epoch= read-your-writes parameter on /v1/query,
// and the epoch routing of plain queries against mutated graphs.

// edgeSet collects g's undirected edges keyed (u<v).
func edgeSet(g *graph.CSR) map[[2]int32]float32 {
	edges := make(map[[2]int32]float32)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		adj, wts := g.Neighbors(v)
		for i, q := range adj {
			if q > v {
				edges[[2]int32{v, q}] = wts[i]
			}
		}
	}
	return edges
}

// buildFromEdges assembles a CSR from an edge map (the reference the live
// server state must match exactly).
func buildFromEdges(t *testing.T, n int, edges map[[2]int32]float32) *graph.CSR {
	t.Helper()
	var b graph.Builder
	b.SetNumVertices(n)
	for e, w := range edges {
		b.AddEdge(e[0], e[1], w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func apiStatus(t *testing.T, err error) int {
	t.Helper()
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *server.APIError, got %T: %v", err, err)
	}
	return apiErr.Status
}

// TestMutateReadYourWrites drives the full write path over HTTP: a mixed
// batch publishes epoch 1, a min_epoch query observes it, and the answer —
// including per-vertex assignments — is identical to a from-scratch
// index.Build on the equivalent static graph. Plain queries (no min_epoch)
// against the mutated graph also serve the live epoch, no-op batches do not
// publish, and live profile queries require an explicit ε list.
func TestMutateReadYourWrites(t *testing.T) {
	const n = 300
	g := gen.ErdosRenyi(n, 1500, gen.WeightConfig{}, 5)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "live", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	edges := edgeSet(g)
	var del, rw [2]int32
	for e := range edges {
		if del == ([2]int32{}) {
			del = e
		} else if rw == ([2]int32{}) && e != del {
			rw = e
			break
		}
	}
	var add [2]int32
	for u := int32(0); u < n && add == ([2]int32{}); u++ {
		for v := u + 1; v < n; v++ {
			if _, ok := edges[[2]int32{u, v}]; !ok {
				add = [2]int32{u, v}
				break
			}
		}
	}

	muts := []server.MutationSpec{
		{Op: "add", U: add[0], V: add[1], W: 1.25},
		{Op: "delete", U: del[0], V: del[1]},
		{Op: "reweight", U: rw[0], V: rw[1], W: 2.5},
	}
	mr, err := c.Mutate(tctx, "live", muts)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 1 || mr.Applied != 3 || mr.NoOps != 0 {
		t.Fatalf("mutate: epoch=%d applied=%d noops=%d, want 1/3/0", mr.Epoch, mr.Applied, mr.NoOps)
	}
	if want := int64(len(edges)); mr.Edges != want {
		t.Fatalf("mutate: edges=%d, want %d (one insert, one delete)", mr.Edges, want)
	}

	// Reference: the same mutations applied to a static edge list, rebuilt
	// from scratch.
	edges[add] = 1.25
	delete(edges, del)
	edges[rw] = 2.5
	want := index.Build(buildFromEdges(t, n, edges), 0)

	const mu, eps = 3, 0.5
	qr, err := c.QueryEpoch(tctx, "live", mu, eps, mr.Epoch, true)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Epoch != mr.Epoch {
		t.Fatalf("query epoch=%d, want %d", qr.Epoch, mr.Epoch)
	}
	res, err := want.Query(mu, eps)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Clusters != res.NumClusters {
		t.Fatalf("clusters=%d, want %d (fresh rebuild)", qr.Clusters, res.NumClusters)
	}
	if qr.Assignments == nil {
		t.Fatal("no assignments in response")
	}
	for v := 0; v < n; v++ {
		if qr.Assignments.Labels[v] != res.Labels[v] || qr.Assignments.Roles[v] != int8(res.Roles[v]) {
			t.Fatalf("vertex %d: label/role (%d,%d), want (%d,%d)",
				v, qr.Assignments.Labels[v], qr.Assignments.Roles[v], res.Labels[v], int8(res.Roles[v]))
		}
	}

	// A plain query (no min_epoch) against a mutated graph serves the live
	// epoch too — mutations are immediately visible.
	qr2, err := c.Query(tctx, "live", mu, eps, false)
	if err != nil {
		t.Fatal(err)
	}
	if qr2.Epoch != mr.Epoch || qr2.Clusters != res.NumClusters {
		t.Fatalf("plain query: epoch=%d clusters=%d, want %d/%d", qr2.Epoch, qr2.Clusters, mr.Epoch, res.NumClusters)
	}

	// A batch with no net effect keeps the current epoch (nothing published).
	mr2, err := c.Mutate(tctx, "live", []server.MutationSpec{{Op: "delete", U: del[0], V: del[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if mr2.Epoch != mr.Epoch || mr2.Applied != 0 || mr2.NoOps != 1 {
		t.Fatalf("no-op batch: epoch=%d applied=%d noops=%d, want %d/0/1", mr2.Epoch, mr2.Applied, mr2.NoOps, mr.Epoch)
	}

	// Profiles on live graphs need an explicit ε list...
	if _, err := c.QueryProfile(tctx, "live", mu, nil, 0); err == nil {
		t.Fatal("auto-probed profile on a live graph should fail")
	} else if got := apiStatus(t, err); got != http.StatusBadRequest {
		t.Fatalf("auto-probed profile: status %d, want 400", got)
	}
	// ...and with one, each point matches a direct epoch query.
	pr, err := c.QueryProfile(tctx, "live", mu, []float64{0.3, eps}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Epoch != mr.Epoch || len(pr.Points) != 2 {
		t.Fatalf("profile: epoch=%d points=%d, want %d/2", pr.Epoch, len(pr.Points), mr.Epoch)
	}
	if pr.Points[1].Clusters != res.NumClusters {
		t.Fatalf("profile point at eps=%g: clusters=%d, want %d", eps, pr.Points[1].Clusters, res.NumClusters)
	}

	txt, err := c.MetricsText(tctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"anyscand_mutations_total 4",
		"anyscand_epoch_publish_seconds_count 1",
		"anyscand_live_graphs 1",
		"anyscand_epoch_lag 0",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMutateValidation pins the error surface of the mutation endpoint:
// structural errors are 400s naming the offending mutation, unknown graphs
// are 404s, and an invalid batch is rejected atomically — the epoch chain
// does not advance.
func TestMutateValidation(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, gen.WeightConfig{}, 9)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Mutate(tctx, "nope", []server.MutationSpec{{Op: "add", U: 0, V: 1, W: 1}}); err == nil {
		t.Fatal("mutating an unloaded graph should fail")
	} else if got := apiStatus(t, err); got != http.StatusNotFound {
		t.Fatalf("unloaded graph: status %d, want 404", got)
	}

	cases := []struct {
		name string
		muts []server.MutationSpec
		msg  string
	}{
		{"empty batch", nil, "mutations list is empty"},
		{"unknown op", []server.MutationSpec{{Op: "frobnicate", U: 0, V: 1, W: 1}}, `unknown op "frobnicate"`},
		{"self loop", []server.MutationSpec{{Op: "add", U: 3, V: 3, W: 1}}, "self loop"},
		{"out of range", []server.MutationSpec{{Op: "add", U: 0, V: 99, W: 1}}, "out of range"},
		{"bad weight", []server.MutationSpec{{Op: "add", U: 0, V: 1, W: -2}}, "not positive"},
		{"reweight absent", []server.MutationSpec{
			{Op: "add", U: 0, V: 2, W: 1}, // valid, must not survive the batch
			{Op: "reweight", U: 40, V: 41, W: 1},
		}, "mutation 1"},
	}
	for _, tc := range cases {
		_, err := c.Mutate(tctx, "g", tc.muts)
		if err == nil {
			t.Fatalf("%s: batch accepted", tc.name)
		}
		if got := apiStatus(t, err); got != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, got)
		}
		if !strings.Contains(err.Error(), tc.msg) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.msg)
		}
	}

	// None of the rejected batches advanced the epoch chain (the reweight
	// batch in particular must not have applied its valid first mutation).
	qr, err := c.Query(tctx, "g", 2, 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Epoch != 0 {
		t.Fatalf("rejected batches advanced the epoch to %d", qr.Epoch)
	}
}

// TestMinEpochSemantics pins the read-your-writes contract's edges: a
// min_epoch bound on a never-mutated graph is a 409 (no epoch chain can ever
// satisfy it), and a bound beyond the published epoch times out with 503 —
// never a stale or torn answer.
func TestMinEpochSemantics(t *testing.T) {
	g := gen.ErdosRenyi(100, 400, gen.WeightConfig{}, 3)
	path := writeGraphFile(t, g, t.TempDir())
	_, c := newTestServer(t, server.ManagerConfig{Workers: 1})
	if _, err := c.LoadGraph(tctx, server.LoadGraphRequest{Name: "g", GraphSource: server.GraphSource{Path: path}}); err != nil {
		t.Fatal(err)
	}

	if _, err := c.QueryEpoch(tctx, "g", 2, 0.5, 1, false); err == nil {
		t.Fatal("min_epoch on a never-mutated graph should fail")
	} else if got := apiStatus(t, err); got != http.StatusConflict {
		t.Fatalf("unmutated graph: status %d, want 409", got)
	}

	mr, err := c.Mutate(tctx, "g", []server.MutationSpec{{Op: "delete", U: 0, V: 1}, {Op: "add", U: 2, V: 5, W: 9.5}})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Epoch < 1 {
		t.Fatalf("mutate published epoch %d, want >= 1", mr.Epoch)
	}

	// Demanding an epoch nobody will publish must expire with the request
	// deadline (503 + Retry-After), not hang and not degrade to stale data.
	resp, err := http.Get(c.BaseURL + "/v1/query?graph=g&mu=2&eps=0.5&min_epoch=999&timeout_ms=150")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("future min_epoch answered %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Anyscan-Stale") != "" {
		t.Fatal("min_epoch wait degraded to a stale answer")
	}
	if !strings.Contains(string(body), "epoch 999 not published") {
		t.Fatalf("error body %q does not explain the unpublished epoch", body)
	}

	// The published epoch itself is immediately satisfiable.
	qr, err := c.QueryEpoch(tctx, "g", 2, 0.5, mr.Epoch, false)
	if err != nil {
		t.Fatal(err)
	}
	if qr.Epoch < mr.Epoch {
		t.Fatalf("read-your-writes query answered from epoch %d < %d", qr.Epoch, mr.Epoch)
	}
}
