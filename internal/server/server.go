// Package server implements anyscand: a long-running HTTP service that keeps
// a registry of loaded graphs, runs anySCAN clusterings as asynchronous
// anytime jobs on a worker pool (pause / resume / cancel / checkpoint /
// restart recovery), and answers interactive clustering queries from cached
// sweep explorers without recomputing structural similarity.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"anyscan/internal/faultinject"
	"anyscan/internal/index"
)

// Config configures a Server.
type Config struct {
	// Manager settings (worker pool, checkpoint dir) — see ManagerConfig.
	Manager ManagerConfig
	// IndexThreads is the worker count for query-index construction
	// (0 = GOMAXPROCS).
	IndexThreads int
	// ExplorerThreads is honored when IndexThreads is 0.
	//
	// Deprecated: use IndexThreads.
	ExplorerThreads int
	// Overload configures admission control, deadlines, rate limits, and the
	// index memory budget; zero values pick production-safe defaults.
	Overload OverloadConfig
	// Logger receives request and lifecycle logs (nil → slog.Default()).
	Logger *slog.Logger
}

// OverloadConfig bounds what the server will take on at once. The design
// invariant is that a request is answered within its deadline — with a fresh
// answer, a stale-marked answer, or a fast 429/503 + Retry-After — never by
// queuing unboundedly.
type OverloadConfig struct {
	// BuildSlots is the number of index builds that may run concurrently;
	// the admission semaphore's capacity is derived from it (0 → 2).
	BuildSlots int
	// QueueDepth bounds the admission wait queue; requests beyond it are
	// shed immediately with 503 + Retry-After (0 → 16, negative → no queue:
	// saturation sheds at once).
	QueueDepth int
	// QueueWait bounds how long an admitted-but-queued request waits before
	// it is shed (0 → 2s).
	QueueWait time.Duration
	// QueryTimeout is the default deadline on index-building routes —
	// /v1/query and its deprecated aliases, graph loads (0 → 60s, negative →
	// none). Clients may shorten it per request with ?timeout_ms=.
	QueryTimeout time.Duration
	// RequestTimeout is the default deadline on every other route
	// (0 → 15s, negative → none).
	RequestTimeout time.Duration
	// RatePerSec enables per-client token-bucket rate limiting at this
	// request rate (0 → unlimited). Health, readiness, and metrics probes
	// are exempt.
	RatePerSec float64
	// RateBurst is the token-bucket burst (0 → 2×RatePerSec).
	RateBurst int
	// IndexMemoryBudget bounds resident query-index bytes; least-recently-
	// used indexes (stale snapshots first) are evicted above it
	// (0 → unlimited).
	IndexMemoryBudget int64
}

// withDefaults fills zero fields with the production defaults.
func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.BuildSlots == 0 {
		c.BuildSlots = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 15 * time.Second
	}
	return c
}

// Server wires the graph registry, the job manager, and the per-graph query
// index cache behind an http.Handler.
type Server struct {
	reg        *Registry
	jobs       *Manager
	idx        *indexCache
	liveGraphs *liveCache
	met        *Metrics
	log        *slog.Logger
	mux        *http.ServeMux
	admit      *admission
	limiter    *rateLimiter
	ocfg       OverloadConfig
}

// New builds a Server, recovering any unfinished jobs from the checkpoint
// directory.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Manager.Logger == nil {
		cfg.Manager.Logger = cfg.Logger
	}
	met := &Metrics{}
	reg := NewRegistry()
	jobs, err := NewManager(reg, met, cfg.Manager)
	if err != nil {
		return nil, err
	}
	threads := cfg.IndexThreads
	if threads == 0 {
		threads = cfg.ExplorerThreads
	}
	ocfg := cfg.Overload.withDefaults()
	admit := newAdmission(ocfg.BuildSlots, ocfg.QueueDepth, ocfg.QueueWait, met)
	idx := newIndexCache(met, threads, admit, ocfg.IndexMemoryBudget)
	s := &Server{
		reg:        reg,
		jobs:       jobs,
		idx:        idx,
		liveGraphs: newLiveCache(idx),
		met:        met,
		log:        cfg.Logger,
		mux:        http.NewServeMux(),
		admit:      admit,
		limiter:    newRateLimiter(ocfg.RatePerSec, ocfg.RateBurst),
		ocfg:       ocfg,
	}
	s.routes()
	return s, nil
}

// Metrics exposes the server's counters (used by tests and the daemon).
func (s *Server) Metrics() *Metrics { return s.met }

// Registry exposes the graph registry (used by the daemon for preloads).
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager.
func (s *Server) Jobs() *Manager { return s.jobs }

// Drain stops accepting jobs, parks every running job at a consistent
// checkpoint, and waits for them (bounded by ctx). Called on SIGTERM before
// http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Close(ctx) }

// routes registers every endpoint twice: under the canonical versioned
// prefix /v1 and under the original unversioned path, kept as a deprecated
// alias for one release so existing clients keep working. The one-shot
// /cluster and /sweep endpoints are folded into GET /v1/query; their
// unversioned paths remain as aliases answered by the same index-backed
// machinery.
func (s *Server) routes() {
	// Every route carries a default deadline, propagated through the request
	// context into index builds and parallel loops: heavy routes (index-
	// building queries, graph loads) get the query timeout, everything else
	// the request timeout. Clients may shorten (never extend) the deadline
	// with ?timeout_ms=.
	heavy := func(h http.HandlerFunc) http.HandlerFunc { return s.withDeadline(s.ocfg.QueryTimeout, h) }
	light := func(h http.HandlerFunc) http.HandlerFunc { return s.withDeadline(s.ocfg.RequestTimeout, h) }
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		s.mux.HandleFunc(method+" /v1"+path, h)
		s.mux.HandleFunc(pattern, h) // deprecated unversioned alias
	}
	handle("POST /graphs", heavy(s.handleLoadGraph))
	handle("GET /graphs", light(s.handleListGraphs))
	handle("DELETE /graphs/{name}", light(s.handleEvictGraph))
	handle("POST /graphs/{name}/edges", heavy(s.handleMutate))

	handle("POST /jobs", light(s.handleSubmitJob))
	handle("GET /jobs", light(s.handleListJobs))
	handle("GET /jobs/{id}", light(s.handleJobStatus))
	handle("GET /jobs/{id}/snapshot", light(s.handleJobSnapshot))
	handle("GET /jobs/{id}/result", light(s.handleJobResult))
	handle("POST /jobs/{id}/pause", light(s.jobControl((*Manager).Pause)))
	handle("POST /jobs/{id}/resume", light(s.jobControl((*Manager).Resume)))
	handle("POST /jobs/{id}/cancel", light(s.jobControl((*Manager).Cancel)))

	s.mux.HandleFunc("GET /v1/query", heavy(s.handleQuery))
	// Seed-centered community queries: may build the index on first touch,
	// so the route gets the heavy deadline like /v1/query.
	s.mux.HandleFunc("GET /v1/local", heavy(s.handleLocal))
	// Deprecated pre-/v1 query surface, answered by the same index cache.
	s.mux.HandleFunc("GET /cluster", heavy(s.handleCluster))
	s.mux.HandleFunc("GET /sweep", heavy(s.handleSweep))

	handle("GET /metrics", s.handleMetrics)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /readyz", s.handleReadyz)
}

// withDeadline attaches the route's default deadline to the request context
// and pushes it down to the transport: the connection's read deadline bounds
// slow-loris bodies, the write deadline bounds stuck clients. A client may
// shorten the deadline with ?timeout_ms= (capped at the route default so the
// server stays in charge of its own worst case). d <= 0 disables the
// deadline.
func (s *Server) withDeadline(d time.Duration, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// timeout must be a per-request copy: d is captured by every request
		// on this route, so assigning to it would make one request's
		// ?timeout_ms= the route's deadline forever after.
		timeout := d
		if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
			if ms, err := strconv.Atoi(raw); err == nil && ms > 0 {
				if req := time.Duration(ms) * time.Millisecond; timeout <= 0 || req < timeout {
					timeout = req
				}
			}
		}
		if timeout <= 0 {
			h(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(time.Now().Add(timeout))
		rc.SetWriteDeadline(time.Now().Add(timeout + 5*time.Second))
		h(w, r.WithContext(ctx))
	}
}

// ServeHTTP implements http.Handler with per-client rate limiting, request
// logging, and latency observation around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	if s.limiter != nil && !probePath(r.URL.Path) {
		if ok, retryAfter := s.limiter.Allow(clientKey(r), time.Now()); !ok {
			s.met.RateLimited.Add(1)
			writeError(sw, 0, &OverloadError{
				Code:       http.StatusTooManyRequests,
				RetryAfter: retryAfter,
				Reason:     "rate-limit",
			})
			s.observe(r, sw, start)
			return
		}
	}
	s.mux.ServeHTTP(sw, r)
	s.observe(r, sw, start)
}

func (s *Server) observe(r *http.Request, sw *statusWriter, start time.Time) {
	d := time.Since(start)
	s.met.ObserveLatency(d)
	s.log.Info("request",
		"method", r.Method, "path", r.URL.Path,
		"status", sw.status, "ms", float64(d.Microseconds())/1000)
}

// probePath reports whether the path is an operational probe exempt from
// rate limiting — throttling the load balancer's health checks or the
// metrics scraper only makes an overload harder to see.
func probePath(path string) bool {
	switch strings.TrimPrefix(path, "/v1") {
	case "/healthz", "/readyz", "/metrics":
		return true
	}
	return false
}

// clientKey identifies the client for rate limiting: the remote host without
// the ephemeral port, so one misbehaving client maps to one bucket across
// connections.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError answers a non-2xx response. Overload errors override code with
// their own status and carry a Retry-After header; context deadline/cancel
// errors become 503 + Retry-After (the request can be retried against a less
// loaded moment). Any other error uses code as given.
func writeError(w http.ResponseWriter, code int, err error) {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
		code = oe.Code
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 — the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// errorCode maps a domain error to an HTTP status.
func errorCode(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "not found"), strings.Contains(msg, "not loaded"):
		return http.StatusNotFound
	case strings.Contains(msg, "draining"):
		return http.StatusServiceUnavailable
	case strings.Contains(msg, "already"), strings.Contains(msg, "only "):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// --- graphs ---------------------------------------------------------------

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req LoadGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	e, err := s.reg.Load(req.Name, req.GraphSource)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Evict(name); err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	s.idx.evictGraph(name)
	s.liveGraphs.evictGraph(name)
	w.WriteHeader(http.StatusNoContent)
}

// --- jobs -----------------------------------------------------------------

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobSnapshot(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	res := j.Snapshot()
	st := j.Status()
	writeJSON(w, http.StatusOK, SnapshotResponse{
		ID:                j.ID,
		State:             st.State,
		Progress:          st.Progress,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	res := j.Result()
	if res == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; the final result exists only for done jobs", j.ID, j.State()))
		return
	}
	st := j.Status()
	writeJSON(w, http.StatusOK, SnapshotResponse{
		ID:                j.ID,
		State:             st.State,
		Progress:          st.Progress,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) jobControl(verb func(*Manager, string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := verb(s.jobs, id); err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		j, err := s.jobs.Get(id)
		if err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func wantAssignments(r *http.Request) bool {
	v := r.URL.Query().Get("assignments")
	return v == "1" || v == "true"
}

// --- interactive queries --------------------------------------------------

// handleQuery answers GET /v1/query, the unified interactive endpoint: both
// μ and ε are request parameters served from the per-graph query index (one
// σ pass per graph, ever). With a single eps value the response carries the
// exact clustering at (μ, ε); with a comma-separated eps list, or none (the
// server then probes up to limit= interesting thresholds), it carries a
// profile of summary points per ε.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	if name == "" {
		writeError(w, http.StatusBadRequest,
			errors.New("need graph=<name>&mu=<int>[&eps=<float>[,<float>...]][&approx=<delta>]"))
		return
	}
	mu, err := parseMuParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	approx, err := parseApproxParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	minEpoch, err := parseMinEpoch(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	raw := q.Get("eps")
	if raw != "" && !strings.Contains(raw, ",") {
		eps, err := parseEpsParam(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.serveClustering(w, r, ge, mu, eps, approx, minEpoch)
		return
	}

	// Profile form (eps list or probed thresholds). Profiles are served from
	// the exact sweep explorer; an accuracy dial would silently change what
	// every point means, so the combination is rejected outright.
	if approx > 0 {
		writeError(w, http.StatusBadRequest,
			errors.New("approx is only supported with a single eps (profile queries are always exact)"))
		return
	}
	epsValues, err := parseEpsList(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 16
	if rawLimit := q.Get("limit"); rawLimit != "" {
		if limit, err = strconv.Atoi(rawLimit); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", rawLimit))
			return
		}
	}
	s.serveProfile(w, r, ge, mu, epsValues, limit, minEpoch)
}

// serveClustering answers one (μ, ε) clustering, degrading to the last good
// index — explicitly marked stale — when the fresh build fails or is shed.
// Read-your-writes requests (minEpoch > 0) never degrade: a stale answer
// would silently violate the very guarantee the client asked for.
func (s *Server) serveClustering(w http.ResponseWriter, r *http.Request, ge *GraphEntry, mu int, eps, approx float64, minEpoch int64) {
	resp, code, err := s.queryClustering(r.Context(), ge, mu, eps, approx, minEpoch, wantAssignments(r))
	if err != nil {
		if minEpoch == 0 && s.degradeClustering(w, r, ge, mu, eps, approx, err) {
			return
		}
		s.countDeadline(err)
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// degradeClustering serves a stale-marked clustering when the fresh index is
// unavailable for capacity reasons (shed build, expired deadline, failed
// rebuild) and a last good index exists. Parameter errors never degrade.
func (s *Server) degradeClustering(w http.ResponseWriter, r *http.Request, ge *GraphEntry, mu int, eps, approx float64, cause error) bool {
	if !degradable(cause) {
		return false
	}
	st, ok := s.idx.staleFor(ge.Name, approx)
	if !ok {
		return false
	}
	start := time.Now()
	res, err := st.idx.Query(mu, eps)
	if err != nil {
		return false
	}
	queryUS := time.Since(start).Microseconds()
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	s.met.StaleServed.Add(1)
	s.log.Warn("serving stale index", "graph", ge.Name, "cause", cause.Error())
	w.Header().Set("X-Anyscan-Stale", "1")
	writeJSON(w, http.StatusOK, QueryResponse{
		Graph:             ge.Name,
		Mu:                mu,
		Eps:               eps,
		Approx:            effectiveApprox(st.idx),
		CacheHit:          true,
		Stale:             true,
		QueryMS:           float64(queryUS) / 1000,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
	return true
}

// effectiveApprox is the accuracy dial an answer from idx was actually
// computed at: the index's delta when the sketch path is in effect, 0 when
// the index is exact — including approximate builds that fell back to the
// exact similarity pass (non-unit edge weights).
func effectiveApprox(idx *index.Index) float64 {
	if a := idx.Approx(); a.Delta > 0 && !a.ExactFallback {
		return a.Delta
	}
	return 0
}

// degradable reports whether an error is a capacity condition that stale
// serving may paper over, as opposed to a caller mistake.
func degradable(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, faultinject.ErrInjected)
}

func (s *Server) countDeadline(err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.met.DeadlineExceeded.Add(1)
	}
}

// queryClustering answers one (μ, ε) clustering. Graphs with live epoch
// chains (mutated via POST /graphs/{name}/edges) are served from the current
// epoch so mutations are visible; everything else takes the immutable-index
// path — sketch-approximate when the request carries an accuracy dial. A
// minEpoch bound on an unmutated graph is a 409: no epoch chain exists that
// could ever satisfy it.
func (s *Server) queryClustering(ctx context.Context, ge *GraphEntry, mu int, eps, approx float64, minEpoch int64, withAssignments bool) (QueryResponse, int, error) {
	if lg, ok := s.liveGraphs.lookup(ge.Name, ge.G); ok {
		if approx > 0 {
			// Live epochs carry exact σ (incremental maintenance would
			// invalidate sketch error bands batch by batch), so approx
			// requests on mutated graphs are answered exactly — a strictly
			// stronger guarantee than the client asked for.
			s.met.ApproxLiveExact.Add(1)
			s.log.Warn("approx query on live graph served exactly",
				"graph", ge.Name, "approx", approx)
		}
		return s.liveClustering(ctx, ge, lg, mu, eps, minEpoch, withAssignments)
	}
	if minEpoch > 0 {
		return QueryResponse{}, http.StatusConflict,
			fmt.Errorf("graph %q has no live epochs; min_epoch requires a mutated graph", ge.Name)
	}
	idx, hit, buildMS, err := s.idx.get(ctx, ge, approx)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	if withAssignments && s.admit != nil {
		// Assignment-carrying answers serialize O(|V|) state; meter them
		// through the admission semaphore so a storm of them cannot starve
		// builds or each other unboundedly.
		release, err := s.admit.acquireQuery(ctx)
		if err != nil {
			return QueryResponse{}, http.StatusServiceUnavailable, err
		}
		defer release()
	}
	resolvedBefore := idx.Approx().Resolved
	start := time.Now()
	res, err := idx.Query(mu, eps)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	queryUS := time.Since(start).Microseconds()
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	effective := effectiveApprox(idx)
	if effective > 0 {
		s.met.ApproxQueries.Add(1)
		s.met.ApproxResolvedArcs.Add(idx.Approx().Resolved - resolvedBefore)
	}
	return QueryResponse{
		Graph:             ge.Name,
		Mu:                mu,
		Eps:               eps,
		Approx:            effective,
		CacheHit:          hit,
		BuildMS:           buildMS,
		QueryMS:           float64(queryUS) / 1000,
		ClusteringPayload: clusteringPayload(res, withAssignments),
	}, 0, nil
}

// serveProfile answers the profile form, falling back to a stale-derived
// explorer only implicitly (profiles are summaries; degraded mode serves
// clusterings, which carry the stale marker end-to-end).
func (s *Server) serveProfile(w http.ResponseWriter, r *http.Request, ge *GraphEntry, mu int, epsValues []float64, limit int, minEpoch int64) {
	resp, code, err := s.queryProfile(r.Context(), ge, mu, epsValues, limit, minEpoch)
	if err != nil {
		s.countDeadline(err)
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryProfile answers a multi-ε profile for one μ via the explorer derived
// from the graph's index (no σ work). An empty epsValues list probes up to
// limit interesting thresholds. Live graphs are routed to per-epoch queries
// instead (explorers would go stale on every publish).
func (s *Server) queryProfile(ctx context.Context, ge *GraphEntry, mu int, epsValues []float64, limit int, minEpoch int64) (QueryResponse, int, error) {
	if lg, ok := s.liveGraphs.lookup(ge.Name, ge.G); ok {
		return s.liveProfile(ctx, ge, lg, mu, epsValues, minEpoch)
	}
	if minEpoch > 0 {
		return QueryResponse{}, http.StatusConflict,
			fmt.Errorf("graph %q has no live epochs; min_epoch requires a mutated graph", ge.Name)
	}
	ex, hit, buildMS, err := s.idx.explorer(ctx, ge, mu)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	if len(epsValues) == 0 {
		epsValues = ex.InterestingThresholds(limit)
	}
	start := time.Now()
	profiles := ex.SweepProfile(epsValues)
	queryUS := time.Since(start).Microseconds()
	points := make([]SweepPoint, len(profiles))
	for i, p := range profiles {
		points[i] = SweepPoint{Eps: p.Eps, Clusters: p.Clusters, Counts: roleCounts(p.Counts)}
	}
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	return QueryResponse{
		Graph:    ge.Name,
		Mu:       mu,
		CacheHit: hit,
		BuildMS:  buildMS,
		QueryMS:  float64(queryUS) / 1000,
		Points:   points,
	}, 0, nil
}

// handleCluster answers the deprecated GET /cluster endpoint (now an alias
// of /v1/query with a single eps).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	eps, err2 := strconv.ParseFloat(q.Get("eps"), 64)
	if name == "" || err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest,
			errors.New("need graph=<name>&mu=<int>&eps=<float>"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	s.serveClustering(w, r, ge, mu, eps, 0, 0)
}

// handleSweep answers the deprecated GET /sweep endpoint (now an alias of
// /v1/query's profile form).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	if name == "" || err1 != nil {
		writeError(w, http.StatusBadRequest, errors.New("need graph=<name>&mu=<int>"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	var epsValues []float64
	if raw := q.Get("eps"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps value %q", part))
				return
			}
			epsValues = append(epsValues, v)
		}
	}
	limit := 16
	if rawLimit := q.Get("limit"); rawLimit != "" {
		if limit, err = strconv.Atoi(rawLimit); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", rawLimit))
			return
		}
	}
	s.serveProfile(w, r, ge, mu, epsValues, limit, 0)
}

// --- observability --------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := s.jobs.CountByState()
	liveGraphs, epochLag := s.liveGraphs.stats()
	graphBytes, graphResident := s.reg.BytesUsage()
	gauges := []Gauge{
		{"anyscand_graph_bytes", "Logical bytes of all registry graph storage.", float64(graphBytes)},
		{"anyscand_graph_resident_bytes", "Heap-resident registry graph bytes (mmap-backed sections excluded).", float64(graphResident)},
		{"anyscand_live_graphs", "Graphs with a live mutable epoch chain.", float64(liveGraphs)},
		{"anyscand_epoch_lag", "Largest gap between a demanded epoch and the newest published one.", float64(epochLag)},
		{"anyscand_graphs_loaded", "Graphs resident in the registry.", float64(s.reg.Len())},
		{"anyscand_indexes_cached", "Query indexes resident in the cache.", float64(s.idx.size())},
		{"anyscand_index_cache_hit_rate", "Query-index cache hit rate.", s.met.IndexHitRate()},
		{"anyscand_job_sim_evals", "Similarity evaluations across all jobs.", float64(s.jobs.TotalSims())},
		{"anyscand_index_memory_bytes", "Resident query-index bytes (fresh + stale).", float64(s.idx.usedBytes())},
		{"anyscand_admission_queue_depth", "Requests waiting in the admission queue.", float64(s.admit.sem.QueueLen())},
	}
	for _, st := range []JobState{JobQueued, JobRunning, JobPaused, JobDone, JobFailed, JobCanceled} {
		gauges = append(gauges, Gauge{
			Name:  "anyscand_jobs_" + string(st),
			Help:  fmt.Sprintf("Jobs currently %s.", st),
			Value: float64(counts[st]),
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WritePrometheus(w, gauges)
}

// handleHealthz is the liveness probe: the process is up and serving HTTP.
// It deliberately never looks at drain or load state — restarting a draining
// or briefly saturated daemon would only lose work.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 503 while draining (shutdown in
// progress) or while the admission queue is saturated, so load balancers
// steer new traffic elsewhere before requests get shed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.jobs.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.admit.sem.Saturated():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
