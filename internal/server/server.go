// Package server implements anyscand: a long-running HTTP service that keeps
// a registry of loaded graphs, runs anySCAN clusterings as asynchronous
// anytime jobs on a worker pool (pause / resume / cancel / checkpoint /
// restart recovery), and answers interactive clustering queries from cached
// sweep explorers without recomputing structural similarity.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Config configures a Server.
type Config struct {
	// Manager settings (worker pool, checkpoint dir) — see ManagerConfig.
	Manager ManagerConfig
	// IndexThreads is the worker count for query-index construction
	// (0 = GOMAXPROCS).
	IndexThreads int
	// ExplorerThreads is honored when IndexThreads is 0.
	//
	// Deprecated: use IndexThreads.
	ExplorerThreads int
	// Logger receives request and lifecycle logs (nil → slog.Default()).
	Logger *slog.Logger
}

// Server wires the graph registry, the job manager, and the per-graph query
// index cache behind an http.Handler.
type Server struct {
	reg  *Registry
	jobs *Manager
	idx  *indexCache
	met  *Metrics
	log  *slog.Logger
	mux  *http.ServeMux
}

// New builds a Server, recovering any unfinished jobs from the checkpoint
// directory.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Manager.Logger == nil {
		cfg.Manager.Logger = cfg.Logger
	}
	met := &Metrics{}
	reg := NewRegistry()
	jobs, err := NewManager(reg, met, cfg.Manager)
	if err != nil {
		return nil, err
	}
	threads := cfg.IndexThreads
	if threads == 0 {
		threads = cfg.ExplorerThreads
	}
	s := &Server{
		reg:  reg,
		jobs: jobs,
		idx:  newIndexCache(met, threads),
		met:  met,
		log:  cfg.Logger,
		mux:  http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// Metrics exposes the server's counters (used by tests and the daemon).
func (s *Server) Metrics() *Metrics { return s.met }

// Registry exposes the graph registry (used by the daemon for preloads).
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager.
func (s *Server) Jobs() *Manager { return s.jobs }

// Drain stops accepting jobs, parks every running job at a consistent
// checkpoint, and waits for them (bounded by ctx). Called on SIGTERM before
// http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Close(ctx) }

// routes registers every endpoint twice: under the canonical versioned
// prefix /v1 and under the original unversioned path, kept as a deprecated
// alias for one release so existing clients keep working. The one-shot
// /cluster and /sweep endpoints are folded into GET /v1/query; their
// unversioned paths remain as aliases answered by the same index-backed
// machinery.
func (s *Server) routes() {
	handle := func(pattern string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		s.mux.HandleFunc(method+" /v1"+path, h)
		s.mux.HandleFunc(pattern, h) // deprecated unversioned alias
	}
	handle("POST /graphs", s.handleLoadGraph)
	handle("GET /graphs", s.handleListGraphs)
	handle("DELETE /graphs/{name}", s.handleEvictGraph)

	handle("POST /jobs", s.handleSubmitJob)
	handle("GET /jobs", s.handleListJobs)
	handle("GET /jobs/{id}", s.handleJobStatus)
	handle("GET /jobs/{id}/snapshot", s.handleJobSnapshot)
	handle("GET /jobs/{id}/result", s.handleJobResult)
	handle("POST /jobs/{id}/pause", s.jobControl((*Manager).Pause))
	handle("POST /jobs/{id}/resume", s.jobControl((*Manager).Resume))
	handle("POST /jobs/{id}/cancel", s.jobControl((*Manager).Cancel))

	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	// Deprecated pre-/v1 query surface, answered by the same index cache.
	s.mux.HandleFunc("GET /cluster", s.handleCluster)
	s.mux.HandleFunc("GET /sweep", s.handleSweep)

	handle("GET /metrics", s.handleMetrics)
	handle("GET /healthz", s.handleHealthz)
}

// ServeHTTP implements http.Handler with request logging and latency
// observation around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	d := time.Since(start)
	s.met.ObserveLatency(d)
	s.log.Info("request",
		"method", r.Method, "path", r.URL.Path,
		"status", sw.status, "ms", float64(d.Microseconds())/1000)
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// errorCode maps a domain error to an HTTP status.
func errorCode(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "not found"), strings.Contains(msg, "not loaded"):
		return http.StatusNotFound
	case strings.Contains(msg, "draining"):
		return http.StatusServiceUnavailable
	case strings.Contains(msg, "already"), strings.Contains(msg, "only "):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// --- graphs ---------------------------------------------------------------

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req LoadGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	e, err := s.reg.Load(req.Name, req.GraphSource)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Evict(name); err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	s.idx.evictGraph(name)
	w.WriteHeader(http.StatusNoContent)
}

// --- jobs -----------------------------------------------------------------

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobSnapshot(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	res := j.Snapshot()
	st := j.Status()
	writeJSON(w, http.StatusOK, SnapshotResponse{
		ID:                j.ID,
		State:             st.State,
		Progress:          st.Progress,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	res := j.Result()
	if res == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; the final result exists only for done jobs", j.ID, j.State()))
		return
	}
	st := j.Status()
	writeJSON(w, http.StatusOK, SnapshotResponse{
		ID:                j.ID,
		State:             st.State,
		Progress:          st.Progress,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) jobControl(verb func(*Manager, string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := verb(s.jobs, id); err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		j, err := s.jobs.Get(id)
		if err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func wantAssignments(r *http.Request) bool {
	v := r.URL.Query().Get("assignments")
	return v == "1" || v == "true"
}

// --- interactive queries --------------------------------------------------

// handleQuery answers GET /v1/query, the unified interactive endpoint: both
// μ and ε are request parameters served from the per-graph query index (one
// σ pass per graph, ever). With a single eps value the response carries the
// exact clustering at (μ, ε); with a comma-separated eps list, or none (the
// server then probes up to limit= interesting thresholds), it carries a
// profile of summary points per ε.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	if name == "" || err1 != nil {
		writeError(w, http.StatusBadRequest,
			errors.New("need graph=<name>&mu=<int>[&eps=<float>[,<float>...]]"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}

	raw := q.Get("eps")
	if raw != "" && !strings.Contains(raw, ",") {
		eps, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps value %q", raw))
			return
		}
		resp, code, err := s.queryClustering(ge, mu, eps, wantAssignments(r))
		if err != nil {
			writeError(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	var epsValues []float64
	for _, part := range strings.Split(raw, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps value %q", part))
			return
		}
		epsValues = append(epsValues, v)
	}
	limit := 16
	if rawLimit := q.Get("limit"); rawLimit != "" {
		if limit, err = strconv.Atoi(rawLimit); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", rawLimit))
			return
		}
	}
	resp, code, err := s.queryProfile(ge, mu, epsValues, limit)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// queryClustering answers one (μ, ε) clustering from the graph's index.
func (s *Server) queryClustering(ge *GraphEntry, mu int, eps float64, withAssignments bool) (QueryResponse, int, error) {
	idx, hit, buildMS, err := s.idx.get(ge)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	start := time.Now()
	res, err := idx.Query(mu, eps)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	queryUS := time.Since(start).Microseconds()
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	return QueryResponse{
		Graph:             ge.Name,
		Mu:                mu,
		Eps:               eps,
		CacheHit:          hit,
		BuildMS:           buildMS,
		QueryMS:           float64(queryUS) / 1000,
		ClusteringPayload: clusteringPayload(res, withAssignments),
	}, 0, nil
}

// queryProfile answers a multi-ε profile for one μ via the explorer derived
// from the graph's index (no σ work). An empty epsValues list probes up to
// limit interesting thresholds.
func (s *Server) queryProfile(ge *GraphEntry, mu int, epsValues []float64, limit int) (QueryResponse, int, error) {
	ex, hit, buildMS, err := s.idx.explorer(ge, mu)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	if len(epsValues) == 0 {
		epsValues = ex.InterestingThresholds(limit)
	}
	start := time.Now()
	profiles := ex.SweepProfile(epsValues)
	queryUS := time.Since(start).Microseconds()
	points := make([]SweepPoint, len(profiles))
	for i, p := range profiles {
		points[i] = SweepPoint{Eps: p.Eps, Clusters: p.Clusters, Counts: roleCounts(p.Counts)}
	}
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	return QueryResponse{
		Graph:    ge.Name,
		Mu:       mu,
		CacheHit: hit,
		BuildMS:  buildMS,
		QueryMS:  float64(queryUS) / 1000,
		Points:   points,
	}, 0, nil
}

// handleCluster answers the deprecated GET /cluster endpoint (now an alias
// of /v1/query with a single eps).
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	eps, err2 := strconv.ParseFloat(q.Get("eps"), 64)
	if name == "" || err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest,
			errors.New("need graph=<name>&mu=<int>&eps=<float>"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	resp, code, err := s.queryClustering(ge, mu, eps, wantAssignments(r))
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep answers the deprecated GET /sweep endpoint (now an alias of
// /v1/query's profile form).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	if name == "" || err1 != nil {
		writeError(w, http.StatusBadRequest, errors.New("need graph=<name>&mu=<int>"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	var epsValues []float64
	if raw := q.Get("eps"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps value %q", part))
				return
			}
			epsValues = append(epsValues, v)
		}
	}
	limit := 16
	if rawLimit := q.Get("limit"); rawLimit != "" {
		if limit, err = strconv.Atoi(rawLimit); err != nil || limit <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", rawLimit))
			return
		}
	}
	resp, code, err := s.queryProfile(ge, mu, epsValues, limit)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- observability --------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := s.jobs.CountByState()
	gauges := []Gauge{
		{"anyscand_graphs_loaded", "Graphs resident in the registry.", float64(s.reg.Len())},
		{"anyscand_indexes_cached", "Query indexes resident in the cache.", float64(s.idx.size())},
		{"anyscand_index_cache_hit_rate", "Query-index cache hit rate.", s.met.IndexHitRate()},
		{"anyscand_job_sim_evals", "Similarity evaluations across all jobs.", float64(s.jobs.TotalSims())},
	}
	for _, st := range []JobState{JobQueued, JobRunning, JobPaused, JobDone, JobFailed, JobCanceled} {
		gauges = append(gauges, Gauge{
			Name:  "anyscand_jobs_" + string(st),
			Help:  fmt.Sprintf("Jobs currently %s.", st),
			Value: float64(counts[st]),
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WritePrometheus(w, gauges)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.jobs.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
