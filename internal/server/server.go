// Package server implements anyscand: a long-running HTTP service that keeps
// a registry of loaded graphs, runs anySCAN clusterings as asynchronous
// anytime jobs on a worker pool (pause / resume / cancel / checkpoint /
// restart recovery), and answers interactive clustering queries from cached
// sweep explorers without recomputing structural similarity.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Config configures a Server.
type Config struct {
	// Manager settings (worker pool, checkpoint dir) — see ManagerConfig.
	Manager ManagerConfig
	// ExplorerThreads is the worker count for explorer construction
	// (0 = GOMAXPROCS).
	ExplorerThreads int
	// Logger receives request and lifecycle logs (nil → slog.Default()).
	Logger *slog.Logger
}

// Server wires the graph registry, the job manager, and the explorer cache
// behind an http.Handler.
type Server struct {
	reg  *Registry
	jobs *Manager
	exp  *explorerCache
	met  *Metrics
	log  *slog.Logger
	mux  *http.ServeMux
}

// New builds a Server, recovering any unfinished jobs from the checkpoint
// directory.
func New(cfg Config) (*Server, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Manager.Logger == nil {
		cfg.Manager.Logger = cfg.Logger
	}
	met := &Metrics{}
	reg := NewRegistry()
	jobs, err := NewManager(reg, met, cfg.Manager)
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:  reg,
		jobs: jobs,
		exp:  newExplorerCache(met, cfg.ExplorerThreads),
		met:  met,
		log:  cfg.Logger,
		mux:  http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// Metrics exposes the server's counters (used by tests and the daemon).
func (s *Server) Metrics() *Metrics { return s.met }

// Registry exposes the graph registry (used by the daemon for preloads).
func (s *Server) Registry() *Registry { return s.reg }

// Jobs exposes the job manager.
func (s *Server) Jobs() *Manager { return s.jobs }

// Drain stops accepting jobs, parks every running job at a consistent
// checkpoint, and waits for them (bounded by ctx). Called on SIGTERM before
// http.Server.Shutdown.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.Close(ctx) }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("DELETE /graphs/{name}", s.handleEvictGraph)

	s.mux.HandleFunc("POST /jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /jobs/{id}/snapshot", s.handleJobSnapshot)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /jobs/{id}/pause", s.jobControl((*Manager).Pause))
	s.mux.HandleFunc("POST /jobs/{id}/resume", s.jobControl((*Manager).Resume))
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.jobControl((*Manager).Cancel))

	s.mux.HandleFunc("GET /cluster", s.handleCluster)
	s.mux.HandleFunc("GET /sweep", s.handleSweep)

	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// ServeHTTP implements http.Handler with request logging and latency
// observation around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	d := time.Since(start)
	s.met.ObserveLatency(d)
	s.log.Info("request",
		"method", r.Method, "path", r.URL.Path,
		"status", sw.status, "ms", float64(d.Microseconds())/1000)
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// errorCode maps a domain error to an HTTP status.
func errorCode(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "not found"), strings.Contains(msg, "not loaded"):
		return http.StatusNotFound
	case strings.Contains(msg, "draining"):
		return http.StatusServiceUnavailable
	case strings.Contains(msg, "already"), strings.Contains(msg, "only "):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// --- graphs ---------------------------------------------------------------

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	var req LoadGraphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	e, err := s.reg.Load(req.Name, req.GraphSource)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleEvictGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Evict(name); err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	s.exp.evictGraph(name)
	w.WriteHeader(http.StatusNoContent)
}

// --- jobs -----------------------------------------------------------------

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	j, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.List()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobSnapshot(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	res := j.Snapshot()
	st := j.Status()
	writeJSON(w, http.StatusOK, SnapshotResponse{
		ID:                j.ID,
		State:             st.State,
		Progress:          st.Progress,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	res := j.Result()
	if res == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; the final result exists only for done jobs", j.ID, j.State()))
		return
	}
	st := j.Status()
	writeJSON(w, http.StatusOK, SnapshotResponse{
		ID:                j.ID,
		State:             st.State,
		Progress:          st.Progress,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) jobControl(verb func(*Manager, string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := verb(s.jobs, id); err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		j, err := s.jobs.Get(id)
		if err != nil {
			writeError(w, errorCode(err), err)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func wantAssignments(r *http.Request) bool {
	v := r.URL.Query().Get("assignments")
	return v == "1" || v == "true"
}

// --- interactive queries --------------------------------------------------

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	eps, err2 := strconv.ParseFloat(q.Get("eps"), 64)
	if name == "" || err1 != nil || err2 != nil {
		writeError(w, http.StatusBadRequest,
			errors.New("need graph=<name>&mu=<int>&eps=<float>"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	ex, hit, buildMS, err := s.exp.get(ge, mu)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	res := ex.ClusteringAt(eps)
	queryMS := float64(time.Since(start).Microseconds()) / 1000
	s.met.QueriesServed.Add(1)
	writeJSON(w, http.StatusOK, ClusterResponse{
		Graph:             name,
		Mu:                mu,
		Eps:               eps,
		CacheHit:          hit,
		BuildMS:           buildMS,
		QueryMS:           queryMS,
		ClusteringPayload: clusteringPayload(res, wantAssignments(r)),
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("graph")
	mu, err1 := strconv.Atoi(q.Get("mu"))
	if name == "" || err1 != nil {
		writeError(w, http.StatusBadRequest, errors.New("need graph=<name>&mu=<int>"))
		return
	}
	ge, err := s.reg.Get(name)
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	ex, hit, _, err := s.exp.get(ge, mu)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var epsValues []float64
	if raw := q.Get("eps"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad eps value %q", part))
				return
			}
			epsValues = append(epsValues, v)
		}
	} else {
		limit := 16
		if rawLimit := q.Get("limit"); rawLimit != "" {
			if limit, err = strconv.Atoi(rawLimit); err != nil || limit <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", rawLimit))
				return
			}
		}
		epsValues = ex.InterestingThresholds(limit)
	}
	profiles := ex.SweepProfile(epsValues)
	points := make([]SweepPoint, len(profiles))
	for i, p := range profiles {
		points[i] = SweepPoint{Eps: p.Eps, Clusters: p.Clusters, Counts: roleCounts(p.Counts)}
	}
	s.met.QueriesServed.Add(1)
	writeJSON(w, http.StatusOK, SweepResponse{Graph: name, Mu: mu, CacheHit: hit, Points: points})
}

// --- observability --------------------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := s.jobs.CountByState()
	gauges := []Gauge{
		{"anyscand_graphs_loaded", "Graphs resident in the registry.", float64(s.reg.Len())},
		{"anyscand_explorers_cached", "Sweep explorers resident in the cache.", float64(s.exp.size())},
		{"anyscand_explorer_cache_hit_rate", "Explorer cache hit rate.", s.met.ExplorerHitRate()},
		{"anyscand_job_sim_evals", "Similarity evaluations across all jobs.", float64(s.jobs.TotalSims())},
	}
	for _, st := range []JobState{JobQueued, JobRunning, JobPaused, JobDone, JobFailed, JobCanceled} {
		gauges = append(gauges, Gauge{
			Name:  "anyscand_jobs_" + string(st),
			Help:  fmt.Sprintf("Jobs currently %s.", st),
			Value: float64(counts[st]),
		})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WritePrometheus(w, gauges)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.jobs.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
