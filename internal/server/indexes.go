package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"anyscan/internal/faultinject"
	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/sweep"
)

// idxKey identifies one cached query index: the graph name plus the
// approximation delta it was built with. The exact index (delta 0) and each
// requested accuracy dial are distinct cache residents — they answer with
// different guarantees, so they can never share storage.
type idxKey struct {
	name  string
	delta float64
}

// indexEntry is one per-(graph, delta) cached query index plus the μ-fixed
// sweep explorers lazily derived from it (for profile queries over many ε).
type indexEntry struct {
	key     idxKey
	g       graph.Graph   // the graph generation the index answers for
	ready   chan struct{} // closed when idx/err are set
	idx     *index.Index
	err     error
	buildMS float64

	// waiters counts the requests currently blocked on this entry's build.
	// When the last one abandons (its deadline expired, its client hung up)
	// the build context is cancelled: nobody is left to consume the result,
	// so the σ pass stops burning cores within one chunk.
	waiters     atomic.Int64
	cancelBuild context.CancelFunc

	lastUsed atomic.Int64 // UnixNano of the most recent get (LRU ordering)

	mu        sync.Mutex
	explorers map[int]*explorerEntry // μ → derived explorer (no σ pass)
}

func (e *indexEntry) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

type explorerEntry struct {
	ready chan struct{}
	ex    *sweep.Explorer
	err   error
}

// staleIndex is the last index successfully built for a cache key, retained
// after the fresh entry is replaced or rebuilt so the server can degrade to
// stale-while-revalidate serving: when a rebuild fails or is shed, queries
// are answered from here — explicitly marked stale — instead of erroring.
type staleIndex struct {
	idx   *index.Index
	g     graph.Graph // generation the stale index was built on
	built time.Time
}

// indexCache caches one query index per (graph, delta) with single-flight
// construction: concurrent first queries for the same key block on one build
// instead of each paying the Θ(|E|) similarity pass. Because the index
// answers any (μ, ε), every query against a graph at a given accuracy dial —
// at any parameters — shares the single instance; the index is safe for
// concurrent readers (see index.Index), so cached instances are handed to
// every request without locking.
//
// Overload safety on top of the PR 3 design:
//
//   - builds run on their own goroutine under a context cancelled when every
//     waiter has abandoned them (and aborted outright on graph eviction);
//   - builds pass through the admission semaphore when one is configured, so
//     a storm of first queries for distinct graphs sheds instead of piling
//     up σ passes;
//   - a byte budget bounds resident indexes with LRU eviction;
//   - the last good index per key survives in the stale store for
//     degraded-mode serving (droppable under memory pressure).
type indexCache struct {
	mu      sync.Mutex
	entries map[idxKey]*indexEntry // (graph, delta) → fresh entry
	stale   map[idxKey]*staleIndex // (graph, delta) → last good index
	met     *Metrics
	threads int        // workers for index construction (0 = GOMAXPROCS)
	admit   *admission // nil → builds are never shed
	budget  int64      // max resident index bytes (0 → unlimited)
}

func newIndexCache(met *Metrics, threads int, admit *admission, budget int64) *indexCache {
	return &indexCache{
		entries: make(map[idxKey]*indexEntry),
		stale:   make(map[idxKey]*staleIndex),
		met:     met,
		threads: threads,
		admit:   admit,
		budget:  budget,
	}
}

// get returns the cached index for the graph at the given accuracy dial
// (delta 0 = exact), building it on first use. hit reports whether the index
// was already resident; buildMS is the construction time paid by the request
// that built it (0 on hits). get honors ctx while waiting: an abandoned wait
// returns ctx.Err() (and may cancel the build — see indexEntry.waiters), and
// build admission failures surface as *OverloadError so the handler can
// degrade to stale serving.
func (c *indexCache) get(ctx context.Context, ge *GraphEntry, delta float64) (idx *index.Index, hit bool, buildMS float64, err error) {
	e, built := c.entry(ge, delta)
	e.touch()
	if err := c.wait(ctx, e); err != nil {
		return nil, false, 0, err
	}
	if e.err != nil {
		return nil, false, 0, e.err
	}
	if built {
		return e.idx, false, e.buildMS, nil
	}
	c.met.IndexHits.Add(1)
	return e.idx, true, 0, nil
}

// wait blocks until the entry's build completes or ctx expires. The waiter
// registers itself so the cache knows whether anybody still cares about an
// in-flight build; the last waiter to abandon an unfinished build cancels
// it.
func (c *indexCache) wait(ctx context.Context, e *indexEntry) error {
	e.waiters.Add(1)
	select {
	case <-e.ready:
		e.waiters.Add(-1)
		return nil
	case <-ctx.Done():
		if e.waiters.Add(-1) == 0 {
			select {
			case <-e.ready: // finished in the meantime; keep the result
			default:
				// Nobody is left to consume the build: cancel it and drop the
				// entry right away so the next query starts a fresh build
				// instead of inheriting this one's cancellation error.
				e.cancelBuild()
				c.mu.Lock()
				if c.entries[e.key] == e {
					delete(c.entries, e.key)
				}
				c.mu.Unlock()
			}
		}
		return ctx.Err()
	}
}

// entry returns the cache entry for the (graph, delta) key, creating it (and
// launching its build) on first use; built reports whether this call
// launched the build.
func (c *indexCache) entry(ge *GraphEntry, delta float64) (e *indexEntry, built bool) {
	key := idxKey{name: ge.Name, delta: delta}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && e.g != ge.G {
		// The name was evicted and reloaded with different content; the
		// cached index answers for a graph that no longer exists.
		ok = false
	}
	if ok {
		c.mu.Unlock()
		return e, false
	}
	buildCtx, cancel := context.WithCancel(context.Background())
	e = &indexEntry{
		key:         key,
		g:           ge.G,
		ready:       make(chan struct{}),
		cancelBuild: cancel,
		explorers:   make(map[int]*explorerEntry),
	}
	e.touch()
	c.entries[key] = e
	c.mu.Unlock()

	c.met.IndexMisses.Add(1)
	go c.build(buildCtx, e)
	return e, true
}

// build runs one single-flight index construction on its own goroutine.
func (c *indexCache) build(ctx context.Context, e *indexEntry) {
	defer e.cancelBuild() // release the context's timer resources
	start := time.Now()
	idx, err := c.runBuild(ctx, e)
	if err == nil {
		e.idx = idx
		e.buildMS = float64(time.Since(start).Microseconds()) / 1000
		c.met.IndexSims.Add(idx.SimEvals()) // one σ per undirected edge
		c.met.IndexBuildUS.Add(time.Since(start).Microseconds())
		if e.key.delta > 0 {
			c.met.ApproxIndexBuilds.Add(1)
		}
	} else {
		e.err = err
	}

	c.mu.Lock()
	current := c.entries[e.key] == e
	if err != nil {
		// Failed or abandoned builds are not cached: the next query retries.
		if current {
			delete(c.entries, e.key)
		}
	} else if current {
		// Publish as the last good index for degraded-mode serving, then
		// enforce the byte budget (never evicting the entry just built).
		c.stale[e.key] = &staleIndex{idx: idx, g: e.g, built: time.Now()}
		c.enforceBudgetLocked(e)
	}
	// When the entry was evicted mid-build the result is handed only to the
	// waiters already parked on ready; it is not (re-)published.
	c.mu.Unlock()
	close(e.ready)
}

// runBuild passes the build through admission control (when configured), the
// chaos fault point, and the cancellable σ pass — sketch-based when the
// entry's key carries an accuracy dial.
func (c *indexCache) runBuild(ctx context.Context, e *indexEntry) (*index.Index, error) {
	if c.admit != nil {
		release, err := c.admit.acquireBuild(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	if err := faultinject.Hit("index.build"); err != nil {
		return nil, err
	}
	if e.key.delta > 0 {
		return index.BuildApproxCtx(ctx, e.g, c.threads, e.key.delta)
	}
	return index.BuildCtx(ctx, e.g, c.threads)
}

// staleFor returns the last good index for the (graph, delta) key, if any.
func (c *indexCache) staleFor(name string, delta float64) (*staleIndex, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.stale[idxKey{name: name, delta: delta}]
	return s, ok
}

// explorer returns a μ-fixed sweep explorer derived from the graph's exact
// index, building the index on first use and memoizing one explorer per μ.
// Profiles are always exact — the approx surface rejects the profile form —
// so the derivation anchors at delta 0. It performs no σ work
// (sweep.FromIndex), so hit/buildMS report the index cache outcome — the
// quantity that matters for similarity cost.
func (c *indexCache) explorer(ctx context.Context, ge *GraphEntry, mu int) (ex *sweep.Explorer, hit bool, buildMS float64, err error) {
	e, built := c.entry(ge, 0)
	e.touch()
	if err := c.wait(ctx, e); err != nil {
		return nil, false, 0, err
	}
	if e.err != nil {
		return nil, false, 0, e.err
	}
	hit = !built
	if built {
		buildMS = e.buildMS
	} else {
		c.met.IndexHits.Add(1)
	}

	e.mu.Lock()
	ee, ok := e.explorers[mu]
	if !ok {
		ee = &explorerEntry{ready: make(chan struct{})}
		e.explorers[mu] = ee
		e.mu.Unlock()
		ee.ex, ee.err = sweep.FromIndex(e.idx, mu)
		if ee.err != nil {
			e.mu.Lock()
			delete(e.explorers, mu) // failed derivations are not cached
			e.mu.Unlock()
		}
		close(ee.ready)
	} else {
		e.mu.Unlock()
		select {
		case <-ee.ready:
		case <-ctx.Done():
			return nil, false, 0, ctx.Err()
		}
	}
	if ee.err != nil {
		return nil, false, 0, ee.err
	}
	return ee.ex, hit, buildMS, nil
}

// evictGraph drops the named graph's cached indexes (at every accuracy
// dial) and derived explorers (after a registry eviction), aborting any
// build still in flight — its waiters see a cancellation, retryable once the
// graph is reloaded. The stale snapshots are retained: an evict-and-reload
// cycle is the common way to refresh a graph, and the snapshot is what lets
// queries degrade to stale-marked answers while the replacement index builds
// (or fails to). Memory-budget enforcement reclaims them when space is
// needed.
func (c *indexCache) evictGraph(name string) {
	c.mu.Lock()
	var evicted []*indexEntry
	for key, e := range c.entries {
		if key.name == name {
			delete(c.entries, key)
			evicted = append(evicted, e)
		}
	}
	c.mu.Unlock()
	for _, e := range evicted {
		select {
		case <-e.ready:
		default:
			e.cancelBuild()
		}
	}
}

// enforceBudgetLocked evicts least-recently-used indexes until resident
// bytes fit the budget, never evicting keep (the entry that triggered
// enforcement) or entries with live waiters. Orphaned stale snapshots (whose
// fresh entry is gone or replaced) go first — they only serve degraded mode;
// fresh entries follow in LRU order, each dropping its stale twin when that
// twin is the same index (otherwise nothing would be freed). c.mu must be
// held.
func (c *indexCache) enforceBudgetLocked(keep *indexEntry) {
	if c.budget <= 0 {
		return
	}
	for c.usedBytesLocked() > c.budget {
		// Oldest orphaned stale snapshot first.
		var oldestKey idxKey
		var oldest *staleIndex
		for key, s := range c.stale {
			if e, ok := c.entries[key]; ok && e.idx == s.idx {
				continue // twin of a live entry: freeing it frees nothing
			}
			if oldest == nil || s.built.Before(oldest.built) {
				oldestKey, oldest = key, s
			}
		}
		if oldest != nil {
			delete(c.stale, oldestKey)
			c.met.IndexEvicted.Add(1)
			continue
		}
		// Then the least-recently-used idle fresh entry (and its twin).
		var victim *indexEntry
		for _, e := range c.entries {
			if e == keep || e.idx == nil || e.waiters.Load() > 0 {
				continue
			}
			if victim == nil || e.lastUsed.Load() < victim.lastUsed.Load() {
				victim = e
			}
		}
		if victim == nil {
			return // nothing evictable; the budget is best-effort
		}
		delete(c.entries, victim.key)
		if s, ok := c.stale[victim.key]; ok && s.idx == victim.idx {
			delete(c.stale, victim.key)
		}
		c.met.IndexEvicted.Add(1)
	}
}

// usedBytesLocked sums the bytes of every distinct resident index (a fresh
// entry and its stale twin share storage and count once). c.mu must be held.
func (c *indexCache) usedBytesLocked() int64 {
	seen := make(map[*index.Index]struct{}, len(c.entries)+len(c.stale))
	var total int64
	for _, e := range c.entries {
		if e.idx != nil {
			if _, ok := seen[e.idx]; !ok {
				seen[e.idx] = struct{}{}
				total += e.idx.Bytes()
			}
		}
	}
	for _, s := range c.stale {
		if _, ok := seen[s.idx]; !ok {
			seen[s.idx] = struct{}{}
			total += s.idx.Bytes()
		}
	}
	return total
}

// usedBytes returns the resident index bytes (for the /metrics gauge).
func (c *indexCache) usedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usedBytesLocked()
}

// size returns the number of resident indexes.
func (c *indexCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
