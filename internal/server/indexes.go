package server

import (
	"sync"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/sweep"
)

// indexEntry is one per-graph cached query index plus the μ-fixed sweep
// explorers lazily derived from it (for profile queries over many ε).
type indexEntry struct {
	ready   chan struct{} // closed when idx/err are set
	idx     *index.Index
	err     error
	buildMS float64
	g       *graph.CSR // the graph the index was built on (staleness check)

	mu        sync.Mutex
	explorers map[int]*explorerEntry // μ → derived explorer (no σ pass)
}

type explorerEntry struct {
	ready chan struct{}
	ex    *sweep.Explorer
	err   error
}

// indexCache caches one query index per graph with single-flight
// construction: concurrent first queries for the same graph block on one
// build instead of each paying the Θ(|E|) similarity pass. Because the index
// answers any (μ, ε), every query against a graph — at any parameters —
// shares the single per-graph instance; the index is safe for concurrent
// readers (see index.Index), so cached instances are handed to every request
// without locking.
type indexCache struct {
	mu      sync.Mutex
	entries map[string]*indexEntry // graph name → entry
	met     *Metrics
	threads int // workers for index construction (0 = GOMAXPROCS)
}

func newIndexCache(met *Metrics, threads int) *indexCache {
	return &indexCache{
		entries: make(map[string]*indexEntry),
		met:     met,
		threads: threads,
	}
}

// get returns the cached index for the graph, building it on first use. hit
// reports whether the index was already resident; buildMS is the
// construction time paid by the request that built it (0 on hits).
func (c *indexCache) get(ge *GraphEntry) (idx *index.Index, hit bool, buildMS float64, err error) {
	e, built := c.entry(ge)
	<-e.ready
	if e.err != nil {
		return nil, false, 0, e.err
	}
	if built {
		return e.idx, false, e.buildMS, nil
	}
	c.met.IndexHits.Add(1)
	return e.idx, true, 0, nil
}

// entry returns the cache entry for the graph, creating (and building) it on
// first use; built reports whether this call performed the build.
func (c *indexCache) entry(ge *GraphEntry) (e *indexEntry, built bool) {
	c.mu.Lock()
	e, ok := c.entries[ge.Name]
	if ok && e.g != ge.G {
		// The name was evicted and reloaded with different content; the
		// cached index answers for a graph that no longer exists.
		ok = false
	}
	if ok {
		c.mu.Unlock()
		return e, false
	}
	e = &indexEntry{ready: make(chan struct{}), g: ge.G, explorers: make(map[int]*explorerEntry)}
	c.entries[ge.Name] = e
	c.mu.Unlock()

	c.met.IndexMisses.Add(1)
	start := time.Now()
	e.idx = index.Build(ge.G, c.threads)
	e.buildMS = float64(time.Since(start).Microseconds()) / 1000
	c.met.IndexSims.Add(e.idx.SimEvals()) // one σ per undirected edge
	c.met.IndexBuildUS.Add(time.Since(start).Microseconds())
	close(e.ready)
	return e, true
}

// explorer returns a μ-fixed sweep explorer derived from the graph's index,
// building the index on first use and memoizing one explorer per μ. The
// derivation performs no σ work (sweep.FromIndex), so hit/buildMS report the
// index cache outcome — the quantity that matters for similarity cost.
func (c *indexCache) explorer(ge *GraphEntry, mu int) (ex *sweep.Explorer, hit bool, buildMS float64, err error) {
	e, built := c.entry(ge)
	<-e.ready
	if e.err != nil {
		return nil, false, 0, e.err
	}
	hit = !built
	if built {
		buildMS = e.buildMS
	} else {
		c.met.IndexHits.Add(1)
	}

	e.mu.Lock()
	ee, ok := e.explorers[mu]
	if !ok {
		ee = &explorerEntry{ready: make(chan struct{})}
		e.explorers[mu] = ee
		e.mu.Unlock()
		ee.ex, ee.err = sweep.FromIndex(e.idx, mu)
		if ee.err != nil {
			e.mu.Lock()
			delete(e.explorers, mu) // failed derivations are not cached
			e.mu.Unlock()
		}
		close(ee.ready)
	} else {
		e.mu.Unlock()
		<-ee.ready
	}
	if ee.err != nil {
		return nil, false, 0, ee.err
	}
	return ee.ex, hit, buildMS, nil
}

// evictGraph drops the named graph's cached index and derived explorers
// (after a registry eviction). Builds in flight complete and are then
// dropped on the next get via the staleness check.
func (c *indexCache) evictGraph(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, name)
}

// size returns the number of resident indexes.
func (c *indexCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
