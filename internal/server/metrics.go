package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (milliseconds) of the HTTP request
// latency histogram; a final implicit +Inf bucket catches the rest.
var latencyBuckets = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Metrics aggregates the service's observability counters. All fields are
// atomics so handlers and workers update them without locking; /metrics
// renders them in the Prometheus text exposition format together with
// gauges sampled at scrape time.
type Metrics struct {
	JobsSubmitted atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCanceled  atomic.Int64
	JobsRecovered atomic.Int64

	QueriesServed atomic.Int64 // /v1/query (and legacy /cluster, /sweep) answers
	IndexHits     atomic.Int64
	IndexMisses   atomic.Int64
	IndexSims     atomic.Int64 // σ evaluations spent building per-graph indexes
	IndexBuildUS  atomic.Int64 // wall time spent building indexes (µs)
	QueryUS       atomic.Int64 // wall time spent answering queries (µs)
	IndexEvicted  atomic.Int64 // indexes dropped by the memory budget

	MutationsTotal  atomic.Int64 // edge mutations accepted via POST /graphs/{name}/edges
	EpochsPublished atomic.Int64 // live-graph epochs published (effective batches)
	EpochPublishUS  atomic.Int64 // wall time from entering Apply to epoch visibility (µs)

	LocalQueries  atomic.Int64 // /v1/local seed-centered community queries answered
	LocalFrontier atomic.Int64 // vertices touched by local-query frontier expansions
	LocalQueryUS  atomic.Int64 // wall time spent answering local queries (µs)

	ApproxQueries      atomic.Int64 // queries answered from a sketch-based approximate index
	ApproxResolvedArcs atomic.Int64 // near-threshold arcs resolved exactly while answering approx queries
	ApproxLiveExact    atomic.Int64 // approx requests on live graphs served exactly instead
	ApproxIndexBuilds  atomic.Int64 // approximate (delta > 0) index builds completed

	AdmissionAdmitted atomic.Int64 // heavy work admitted through the semaphore
	AdmissionQueued   atomic.Int64 // admissions that waited in the bounded queue
	AdmissionShed     atomic.Int64 // heavy work refused (queue full / timed out)
	RateLimited       atomic.Int64 // requests refused by per-client rate limits
	StaleServed       atomic.Int64 // queries answered from a stale index
	DeadlineExceeded  atomic.Int64 // requests cut short by their deadline

	HTTPRequests atomic.Int64
	latencyCount [len(latencyBuckets) + 1]atomic.Int64
	latencySumUS atomic.Int64
}

// ObserveLatency records one HTTP request duration in the histogram.
func (m *Metrics) ObserveLatency(d time.Duration) {
	m.HTTPRequests.Add(1)
	m.latencySumUS.Add(d.Microseconds())
	ms := float64(d.Microseconds()) / 1000
	for i, ub := range latencyBuckets {
		if ms <= ub {
			m.latencyCount[i].Add(1)
			return
		}
	}
	m.latencyCount[len(latencyBuckets)].Add(1)
}

// IndexHitRate returns hits/(hits+misses), 0 when no queries were made.
func (m *Metrics) IndexHitRate() float64 {
	h, miss := m.IndexHits.Load(), m.IndexMisses.Load()
	if h+miss == 0 {
		return 0
	}
	return float64(h) / float64(h+miss)
}

// Gauge is one point-in-time value sampled by the server at scrape time
// (loaded graphs, jobs per state, σ evaluations across jobs, …).
type Gauge struct {
	Name  string
	Help  string
	Value float64
}

// WritePrometheus renders every counter plus the sampled gauges in the
// Prometheus text format (hand-rolled; the module stays stdlib-only).
func (m *Metrics) WritePrometheus(w io.Writer, gauges []Gauge) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("anyscand_jobs_submitted_total", "Clustering jobs submitted.", m.JobsSubmitted.Load())
	counter("anyscand_jobs_completed_total", "Clustering jobs run to completion.", m.JobsCompleted.Load())
	counter("anyscand_jobs_failed_total", "Clustering jobs that failed.", m.JobsFailed.Load())
	counter("anyscand_jobs_canceled_total", "Clustering jobs canceled.", m.JobsCanceled.Load())
	counter("anyscand_jobs_recovered_total", "Jobs recovered from checkpoints after a restart.", m.JobsRecovered.Load())
	counter("anyscand_queries_total", "Interactive clustering queries served.", m.QueriesServed.Load())
	counter("anyscand_index_cache_hits_total", "Query-index cache hits.", m.IndexHits.Load())
	counter("anyscand_index_cache_misses_total", "Query-index cache misses (builds).", m.IndexMisses.Load())
	counter("anyscand_index_sim_evals_total", "Similarity evaluations spent building query indexes.", m.IndexSims.Load())
	counter("anyscand_http_requests_total", "HTTP requests handled.", m.HTTPRequests.Load())
	counter("anyscand_index_evicted_total", "Query indexes evicted by the memory budget.", m.IndexEvicted.Load())
	counter("anyscand_admission_admitted_total", "Heavy requests admitted through the semaphore.", m.AdmissionAdmitted.Load())
	counter("anyscand_admission_queued_total", "Heavy requests that waited in the admission queue.", m.AdmissionQueued.Load())
	counter("anyscand_admission_shed_total", "Heavy requests shed (queue full or wait timed out).", m.AdmissionShed.Load())
	counter("anyscand_rate_limited_total", "Requests refused by per-client rate limits.", m.RateLimited.Load())
	counter("anyscand_stale_served_total", "Queries answered from a stale index in degraded mode.", m.StaleServed.Load())
	counter("anyscand_deadline_exceeded_total", "Requests cut short by their deadline.", m.DeadlineExceeded.Load())
	counter("anyscand_mutations_total", "Edge mutations accepted on live graphs.", m.MutationsTotal.Load())
	fmt.Fprintf(w, "# HELP anyscand_epoch_publish_seconds Time from entering Apply to the new epoch being visible to readers.\n# TYPE anyscand_epoch_publish_seconds summary\nanyscand_epoch_publish_seconds_sum %g\nanyscand_epoch_publish_seconds_count %d\n",
		float64(m.EpochPublishUS.Load())/1e6, m.EpochsPublished.Load())
	fmt.Fprintf(w, "# HELP anyscand_index_build_ms_total Wall time spent building query indexes.\n# TYPE anyscand_index_build_ms_total counter\nanyscand_index_build_ms_total %g\n",
		float64(m.IndexBuildUS.Load())/1000)
	fmt.Fprintf(w, "# HELP anyscand_query_ms_total Wall time spent answering interactive queries.\n# TYPE anyscand_query_ms_total counter\nanyscand_query_ms_total %g\n",
		float64(m.QueryUS.Load())/1000)
	counter("anyscand_approx_queries_total", "Queries answered from a sketch-based approximate index.", m.ApproxQueries.Load())
	counter("anyscand_approx_resolved_arcs_total", "Near-threshold arcs resolved exactly while answering approximate queries.", m.ApproxResolvedArcs.Load())
	counter("anyscand_approx_live_exact_total", "Approximate requests on live graphs served exactly instead.", m.ApproxLiveExact.Load())
	counter("anyscand_approx_index_builds_total", "Approximate (delta > 0) index builds completed.", m.ApproxIndexBuilds.Load())
	counter("anyscand_local_queries_total", "Seed-centered local community queries served.", m.LocalQueries.Load())
	counter("anyscand_local_frontier_vertices_total", "Vertices touched by local-query frontier expansions.", m.LocalFrontier.Load())
	fmt.Fprintf(w, "# HELP anyscand_local_query_ms_total Wall time spent answering local community queries.\n# TYPE anyscand_local_query_ms_total counter\nanyscand_local_query_ms_total %g\n",
		float64(m.LocalQueryUS.Load())/1000)

	fmt.Fprintf(w, "# HELP anyscand_http_request_duration_ms HTTP request latency.\n")
	fmt.Fprintf(w, "# TYPE anyscand_http_request_duration_ms histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latencyCount[i].Load()
		fmt.Fprintf(w, "anyscand_http_request_duration_ms_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latencyCount[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "anyscand_http_request_duration_ms_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "anyscand_http_request_duration_ms_sum %g\n", float64(m.latencySumUS.Load())/1000)
	fmt.Fprintf(w, "anyscand_http_request_duration_ms_count %d\n", cum)

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", g.Name, g.Help, g.Name, g.Name, g.Value)
	}
}
