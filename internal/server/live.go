package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/live"
)

// This file wires the live mutable-graph subsystem (internal/live) into the
// HTTP server: a per-graph cache of live.Graph instances created on first
// mutation, the POST /v1/graphs/{name}/edges handler, and the epoch-aware
// query paths used by /v1/query's ?min_epoch= read-your-writes parameter.

// liveEntry is one graph's live.Graph, materialized single-flight by the
// first mutation against that graph.
type liveEntry struct {
	name  string
	g     graph.Graph   // registry generation epoch 0 grew from
	ready chan struct{} // closed when lg/err are set
	lg    *live.Graph
	err   error
}

// liveCache maps graph names to their live mutable graphs. A live graph is
// created lazily by the first mutation: epoch 0 wraps the graph's cached
// query index zero-copy (live.FromIndex), so promotion reuses the index
// cache's single-flight build, admission control, and σ accounting instead
// of duplicating them. Queries look the cache up non-blockingly — a graph
// nobody has mutated keeps being served straight from the immutable index.
type liveCache struct {
	mu      sync.Mutex
	entries map[string]*liveEntry
	idx     *indexCache
}

func newLiveCache(idx *indexCache) *liveCache {
	return &liveCache{entries: make(map[string]*liveEntry), idx: idx}
}

// get returns the live graph for the registry entry, materializing it on
// first use. The creator pays the index build (through the index cache, so
// concurrent first queries share it and admission control applies); failed
// materializations are not cached — the next mutation retries.
func (c *liveCache) get(ctx context.Context, ge *GraphEntry) (*live.Graph, error) {
	c.mu.Lock()
	e, ok := c.entries[ge.Name]
	if ok && e.g != ge.G {
		// The name was evicted and reloaded with different content; the live
		// graph descends from a graph that no longer exists.
		ok = false
	}
	if ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.lg, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e = &liveEntry{name: ge.Name, g: ge.G, ready: make(chan struct{})}
	c.entries[ge.Name] = e
	c.mu.Unlock()

	// A live graph always grows from the exact index (delta 0): epoch 0 must
	// carry true σ values for incremental maintenance to patch.
	idx, _, _, err := c.idx.get(ctx, ge, 0)
	if err != nil {
		e.err = err
		c.mu.Lock()
		if c.entries[ge.Name] == e {
			delete(c.entries, ge.Name)
		}
		c.mu.Unlock()
	} else {
		e.lg = live.FromIndex(idx)
	}
	close(e.ready)
	return e.lg, e.err
}

// lookup returns the live graph for the name without blocking, reporting
// false when none exists (never mutated, still materializing, or descended
// from an evicted generation). While a live graph is materializing no batch
// has been applied yet — epoch 0 equals the index — so the index path stays
// correct until lookup starts returning it.
func (c *liveCache) lookup(name string, g graph.Graph) (*live.Graph, bool) {
	c.mu.Lock()
	e, ok := c.entries[name]
	c.mu.Unlock()
	if !ok || e.g != g {
		return nil, false
	}
	select {
	case <-e.ready:
	default:
		return nil, false
	}
	if e.err != nil || e.lg == nil {
		return nil, false
	}
	return e.lg, true
}

// evictGraph drops the named graph's live state (after a registry eviction).
// In-flight queries holding an epoch keep it — epochs are immutable.
func (c *liveCache) evictGraph(name string) {
	c.mu.Lock()
	delete(c.entries, name)
	c.mu.Unlock()
}

// stats samples the gauge values exported at /metrics scrape time: how many
// graphs have live epoch chains and the largest read-your-writes lag (how
// far any demanded epoch runs ahead of its published state).
func (c *liveCache) stats() (graphs int, maxLag int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		select {
		case <-e.ready:
		default:
			continue
		}
		if e.err != nil || e.lg == nil {
			continue
		}
		graphs++
		if lag := e.lg.Lag(); lag > maxLag {
			maxLag = lag
		}
	}
	return graphs, maxLag
}

// parseOp maps the wire op string to a live.Op.
func parseOp(op string) (live.Op, error) {
	switch op {
	case "add":
		return live.OpAdd, nil
	case "delete":
		return live.OpDelete, nil
	case "reweight":
		return live.OpReweight, nil
	}
	return 0, fmt.Errorf("unknown op %q (want add, delete, or reweight)", op)
}

// handleMutate answers POST /v1/graphs/{name}/edges: apply one batch of edge
// mutations atomically and publish the result as a new epoch. The response
// carries the epoch token; passing it back as ?min_epoch= on GET /v1/query
// guarantees the query observes the write. Applying a batch recomputes σ for
// every arc incident to a touched vertex, so the work is metered through the
// admission semaphore at build weight.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("mutations list is empty"))
		return
	}
	ge, err := s.reg.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, errorCode(err), err)
		return
	}
	muts := make([]live.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		op, err := parseOp(m.Op)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("mutation %d: %w", i, err))
			return
		}
		// Validate endpoint ranges before materializing the live graph:
		// live.Apply re-validates the whole batch, but a bad vertex id must
		// not first trigger the (expensive) epoch-0 index build.
		if err := vertexInRange(m.U, ge.G.NumVertices()); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("mutation %d: %w", i, err))
			return
		}
		if err := vertexInRange(m.V, ge.G.NumVertices()); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("mutation %d: %w", i, err))
			return
		}
		muts[i] = live.Mutation{Op: op, U: m.U, V: m.V, W: m.W}
	}

	lg, err := s.liveGraphs.get(r.Context(), ge)
	if err != nil {
		s.countDeadline(err)
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if s.admit != nil {
		release, err := s.admit.acquireBuild(r.Context())
		if err != nil {
			s.countDeadline(err)
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		defer release()
	}
	ep, st, err := lg.Apply(muts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.met.MutationsTotal.Add(int64(len(muts)))
	if st.Applied > 0 {
		s.met.EpochsPublished.Add(1)
		s.met.EpochPublishUS.Add(st.Publish.Microseconds())
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:           ge.Name,
		Epoch:           ep.Seq(),
		Applied:         st.Applied,
		NoOps:           st.NoOps,
		Vertices:        ep.NumVertices(),
		Edges:           ep.NumEdges(),
		PublishMS:       float64(st.Publish.Microseconds()) / 1000,
		SigmaRecomputed: st.SigmaRecomputed,
	})
}

// parseMinEpoch extracts the ?min_epoch= read-your-writes bound (0 when
// absent).
func parseMinEpoch(r *http.Request) (int64, error) {
	raw := r.URL.Query().Get("min_epoch")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad min_epoch %q", raw)
	}
	return v, nil
}

// liveClustering answers one (μ, ε) clustering from a live graph's epoch
// chain. The read-your-writes wait happens before any admission slot is
// taken: WaitEpoch parks without holding resources, so an abandoned waiter
// never pins server capacity while it sleeps.
func (s *Server) liveClustering(ctx context.Context, ge *GraphEntry, lg *live.Graph, mu int, eps float64, minEpoch int64, withAssignments bool) (QueryResponse, int, error) {
	ep, err := lg.WaitEpoch(ctx, minEpoch)
	if err != nil {
		return QueryResponse{}, http.StatusServiceUnavailable, err
	}
	if withAssignments && s.admit != nil {
		release, err := s.admit.acquireQuery(ctx)
		if err != nil {
			return QueryResponse{}, http.StatusServiceUnavailable, err
		}
		defer release()
	}
	start := time.Now()
	res, err := ep.Query(mu, eps)
	if err != nil {
		return QueryResponse{}, http.StatusBadRequest, err
	}
	queryUS := time.Since(start).Microseconds()
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	return QueryResponse{
		Graph:             ge.Name,
		Mu:                mu,
		Eps:               eps,
		CacheHit:          true,
		Epoch:             ep.Seq(),
		QueryMS:           float64(queryUS) / 1000,
		ClusteringPayload: clusteringPayload(res, withAssignments),
	}, 0, nil
}

// liveProfile answers the profile form against a live epoch. Live graphs
// have no derived sweep explorer (it would go stale on every publish), so
// the ε list must be explicit; each point is one epoch query.
func (s *Server) liveProfile(ctx context.Context, ge *GraphEntry, lg *live.Graph, mu int, epsValues []float64, minEpoch int64) (QueryResponse, int, error) {
	if len(epsValues) == 0 {
		return QueryResponse{}, http.StatusBadRequest,
			fmt.Errorf("graph %q is live (mutated); profile queries need an explicit eps list", ge.Name)
	}
	ep, err := lg.WaitEpoch(ctx, minEpoch)
	if err != nil {
		return QueryResponse{}, http.StatusServiceUnavailable, err
	}
	start := time.Now()
	points := make([]SweepPoint, 0, len(epsValues))
	for _, eps := range epsValues {
		res, err := ep.Query(mu, eps)
		if err != nil {
			return QueryResponse{}, http.StatusBadRequest, err
		}
		points = append(points, SweepPoint{Eps: eps, Clusters: res.NumClusters, Counts: roleCounts(res.RoleCounts())})
	}
	queryUS := time.Since(start).Microseconds()
	s.met.QueryUS.Add(queryUS)
	s.met.QueriesServed.Add(1)
	return QueryResponse{
		Graph:    ge.Name,
		Mu:       mu,
		CacheHit: true,
		Epoch:    ep.Seq(),
		QueryMS:  float64(queryUS) / 1000,
		Points:   points,
	}, 0, nil
}
