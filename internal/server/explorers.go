package server

import (
	"sync"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/sweep"
)

// explorerKey identifies a cached explorer: the sweep structure depends only
// on the graph and μ, so every ε query for the pair shares one instance.
type explorerKey struct {
	graph string
	mu    int
}

type explorerEntry struct {
	ready   chan struct{} // closed when ex/err are set
	ex      *sweep.Explorer
	err     error
	buildMS float64
	g       *graph.CSR // the graph the explorer was built on (staleness check)
}

// explorerCache caches one sweep.Explorer per (graph, μ) with single-flight
// construction: concurrent first queries for the same key block on one
// build instead of each paying the O(|E|) similarity pass. Explorers are
// safe for concurrent readers (see sweep.Explorer), so cached instances are
// handed to every request without locking.
type explorerCache struct {
	mu      sync.Mutex
	entries map[explorerKey]*explorerEntry
	met     *Metrics
	threads int // workers for explorer construction (0 = GOMAXPROCS)
}

func newExplorerCache(met *Metrics, threads int) *explorerCache {
	return &explorerCache{
		entries: make(map[explorerKey]*explorerEntry),
		met:     met,
		threads: threads,
	}
}

// get returns the cached explorer for (entry, mu), building it on first use.
// hit reports whether the explorer was already resident; buildMS is the
// construction time paid by the request that built it (0 on hits).
func (c *explorerCache) get(ge *GraphEntry, mu int) (ex *sweep.Explorer, hit bool, buildMS float64, err error) {
	key := explorerKey{graph: ge.Name, mu: mu}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok && e.g != ge.G {
		// The name was evicted and reloaded with different content; the
		// cached explorer answers for a graph that no longer exists.
		ok = false
	}
	if ok {
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false, 0, e.err
		}
		c.met.ExplorerHits.Add(1)
		return e.ex, true, 0, nil
	}
	e = &explorerEntry{ready: make(chan struct{}), g: ge.G}
	c.entries[key] = e
	c.mu.Unlock()

	c.met.ExplorerMisses.Add(1)
	start := time.Now()
	e.ex, e.err = sweep.NewExplorer(ge.G, mu, c.threads)
	e.buildMS = float64(time.Since(start).Microseconds()) / 1000
	if e.err == nil {
		c.met.ExplorerSims.Add(ge.G.NumEdges()) // one σ per undirected edge
	} else {
		c.mu.Lock()
		delete(c.entries, key) // failed builds are not cached
		c.mu.Unlock()
	}
	close(e.ready)
	return e.ex, false, e.buildMS, e.err
}

// evictGraph drops every cached explorer of the named graph (after a
// registry eviction). Builds in flight complete and are then dropped on the
// next get via the staleness check.
func (c *explorerCache) evictGraph(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.entries {
		if k.graph == name {
			delete(c.entries, k)
		}
	}
}

// size returns the number of resident explorers.
func (c *explorerCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
