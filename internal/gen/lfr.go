package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"anyscan/internal/graph"
)

// LFRConfig parameterizes the LFR benchmark (Lancichinetti, Fortunato,
// Radicchi 2008), the generator behind the paper's Table II. Degrees follow
// a power law with exponent DegreeExp truncated to [kmin, MaxDegree] (kmin is
// solved so the mean matches AvgDegree); community sizes follow a power law
// with exponent CommunityExp on [MinCommunity, MaxCommunity]; each vertex
// spends a (1-Mixing) fraction of its degree inside its community.
type LFRConfig struct {
	N            int
	AvgDegree    float64
	MaxDegree    int
	DegreeExp    float64 // τ1, typically 2–3
	CommunityExp float64 // τ2, typically 1–2
	Mixing       float64 // μ_mix ∈ [0,1): fraction of inter-community stubs
	// MixingJitter spreads the mixing per vertex uniformly over
	// [Mixing-J, Mixing+J] (clamped to [0, 0.95]). Real networks are
	// heterogeneous: some vertices sit deep inside their community, others
	// mostly bridge. 0 reproduces the classic LFR behaviour.
	MixingJitter float64
	MinCommunity int
	MaxCommunity int
	Weights      WeightConfig
	Seed         int64
}

// DefaultLFR mirrors the paper's Table II profile at a reduced scale:
// maximum degree 100, τ1=2, τ2=1, mixing 0.2.
func DefaultLFR(n int, avgDegree float64, seed int64) LFRConfig {
	return LFRConfig{
		N:            n,
		AvgDegree:    avgDegree,
		MaxDegree:    100,
		DegreeExp:    2,
		CommunityExp: 1,
		Mixing:       0.2,
		MinCommunity: 40,
		MaxCommunity: 120,
		Seed:         seed,
	}
}

// LFR generates the benchmark graph and returns it together with the ground
// truth community of each vertex.
func LFR(cfg LFRConfig) (*graph.CSR, []int32, error) {
	if cfg.N <= 0 {
		return nil, nil, fmt.Errorf("gen: LFR needs N > 0")
	}
	if cfg.MaxDegree <= 1 {
		cfg.MaxDegree = 100
	}
	if cfg.MaxDegree >= cfg.N {
		cfg.MaxDegree = cfg.N - 1
	}
	if cfg.Mixing < 0 || cfg.Mixing >= 1 {
		return nil, nil, fmt.Errorf("gen: LFR mixing must be in [0,1), got %v", cfg.Mixing)
	}
	if cfg.MinCommunity <= 0 {
		cfg.MinCommunity = 20
	}
	if cfg.MaxCommunity < cfg.MinCommunity {
		cfg.MaxCommunity = cfg.MinCommunity * 10
	}
	if cfg.MaxCommunity > cfg.N {
		cfg.MaxCommunity = cfg.N
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	degrees := powerLawDegrees(cfg.N, cfg.AvgDegree, cfg.MaxDegree, cfg.DegreeExp, rng)

	// Community sizes: power-law sizes until every vertex has a home.
	var sizes []int
	total := 0
	for total < cfg.N {
		s := powerLawInt(cfg.MinCommunity, cfg.MaxCommunity, cfg.CommunityExp, rng)
		if total+s > cfg.N {
			s = cfg.N - total
			if s < cfg.MinCommunity && len(sizes) > 0 {
				// Fold the remainder into the last community.
				sizes[len(sizes)-1] += s
				total += s
				break
			}
		}
		sizes = append(sizes, s)
		total += s
	}

	// Internal degrees; a vertex must fit inside its community.
	internal := make([]int, cfg.N)
	for v := 0; v < cfg.N; v++ {
		mix := cfg.Mixing
		if cfg.MixingJitter > 0 {
			mix += (2*rng.Float64() - 1) * cfg.MixingJitter
			if mix < 0 {
				mix = 0
			}
			if mix > 0.95 {
				mix = 0.95
			}
		}
		internal[v] = int(math.Round(float64(degrees[v]) * (1 - mix)))
		if internal[v] > degrees[v] {
			internal[v] = degrees[v]
		}
	}

	// Assign vertices to communities: process high-internal-degree vertices
	// first into the larger remaining communities.
	comm := make([]int32, cfg.N)
	orderV := make([]int, cfg.N)
	for i := range orderV {
		orderV[i] = i
	}
	sort.Slice(orderV, func(i, j int) bool { return internal[orderV[i]] > internal[orderV[j]] })
	type slot struct{ id, capacity int }
	slots := make([]slot, len(sizes))
	for i, s := range sizes {
		slots[i] = slot{i, s}
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i].capacity > slots[j].capacity })
	si := 0
	for _, v := range orderV {
		// Find a community that can host v (internal degree < size).
		placed := false
		for tries := 0; tries < len(slots); tries++ {
			s := &slots[(si+tries)%len(slots)]
			if s.capacity > 0 && internal[v] < sizes[s.id] {
				comm[v] = int32(s.id)
				s.capacity--
				placed = true
				si = (si + tries + 1) % len(slots)
				break
			}
		}
		if !placed {
			// Clamp the internal degree and drop into any open community.
			for i := range slots {
				if slots[i].capacity > 0 {
					comm[v] = int32(slots[i].id)
					slots[i].capacity--
					if internal[v] >= sizes[slots[i].id] {
						internal[v] = sizes[slots[i].id] - 1
					}
					placed = true
					break
				}
			}
			if !placed {
				return nil, nil, fmt.Errorf("gen: LFR could not place vertex %d", v)
			}
		}
	}

	es := newEdgeSet(cfg.N * int(cfg.AvgDegree) / 2)

	// Intra-community configuration model.
	members := make([][]int32, len(sizes))
	for v := 0; v < cfg.N; v++ {
		members[comm[v]] = append(members[comm[v]], int32(v))
	}
	for _, ms := range members {
		var stubs []int32
		for _, v := range ms {
			for i := 0; i < internal[v]; i++ {
				stubs = append(stubs, v)
			}
		}
		wireStubs(stubs, es, rng, nil)
	}

	// Inter-community configuration model, rejecting intra pairs.
	var stubs []int32
	for v := 0; v < cfg.N; v++ {
		for i := 0; i < degrees[v]-internal[v]; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	wireStubs(stubs, es, rng, func(a, b int32) bool { return comm[a] != comm[b] })

	g := es.build(cfg.N, cfg.Weights, rng)
	return g, comm, nil
}

// wireStubs pairs stubs uniformly at random, skipping self loops, duplicate
// edges and pairs rejected by accept (nil accepts all). Unmatched leftovers
// are dropped, as in standard LFR rewiring implementations.
func wireStubs(stubs []int32, es *edgeSet, rng *rand.Rand, accept func(a, b int32) bool) {
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// Repeated passes: pair adjacent stubs; failures get reshuffled.
	pending := stubs
	for pass := 0; pass < 8 && len(pending) > 1; pass++ {
		var failed []int32
		for i := 0; i+1 < len(pending); i += 2 {
			a, b := pending[i], pending[i+1]
			if a == b || (accept != nil && !accept(a, b)) || !es.add(a, b) {
				failed = append(failed, a, b)
			}
		}
		if len(pending)%2 == 1 {
			failed = append(failed, pending[len(pending)-1])
		}
		pending = failed
		rng.Shuffle(len(pending), func(i, j int) { pending[i], pending[j] = pending[j], pending[i] })
	}
}

// powerLawDegrees samples n degrees from a truncated power law with the
// given exponent and maximum, numerically solving the lower cutoff so the
// mean is close to avg. The total is forced even (configuration model).
func powerLawDegrees(n int, avg float64, maxDeg int, exp float64, rng *rand.Rand) []int {
	if avg < 1 {
		avg = 1
	}
	if avg > float64(maxDeg) {
		avg = float64(maxDeg)
	}
	lo, hi := 1.0, float64(maxDeg)
	var kmin float64
	for iter := 0; iter < 60; iter++ {
		kmin = (lo + hi) / 2
		if powerLawMean(kmin, float64(maxDeg), exp) < avg {
			lo = kmin
		} else {
			hi = kmin
		}
	}
	degrees := make([]int, n)
	sum := 0
	for i := range degrees {
		d := int(math.Round(powerLawSample(kmin, float64(maxDeg), exp, rng)))
		if d < 1 {
			d = 1
		}
		if d > maxDeg {
			d = maxDeg
		}
		if d >= n {
			d = n - 1
		}
		degrees[i] = d
		sum += d
	}
	if sum%2 == 1 {
		degrees[0]++
	}
	return degrees
}

// powerLawMean returns E[X] for the continuous power law p(x) ∝ x^(-exp) on
// [kmin, kmax].
func powerLawMean(kmin, kmax, exp float64) float64 {
	if exp == 2 {
		return (math.Log(kmax) - math.Log(kmin)) / (1/kmin - 1/kmax)
	}
	a1 := 1 - exp
	a2 := 2 - exp
	norm := (math.Pow(kmax, a1) - math.Pow(kmin, a1)) / a1
	m1 := (math.Pow(kmax, a2) - math.Pow(kmin, a2)) / a2
	return m1 / norm
}

// powerLawSample draws from the continuous truncated power law by inverse
// CDF.
func powerLawSample(kmin, kmax, exp float64, rng *rand.Rand) float64 {
	u := rng.Float64()
	if exp == 1 {
		return kmin * math.Pow(kmax/kmin, u)
	}
	a := 1 - exp
	x := math.Pow(u*(math.Pow(kmax, a)-math.Pow(kmin, a))+math.Pow(kmin, a), 1/a)
	return x
}

// powerLawInt samples an integer from the truncated power law on [lo, hi].
func powerLawInt(lo, hi int, exp float64, rng *rand.Rand) int {
	v := int(math.Round(powerLawSample(float64(lo), float64(hi), exp, rng)))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}
