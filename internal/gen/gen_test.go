package gen

import (
	"math"
	"testing"
	"testing/quick"

	"anyscan/internal/graph"
)

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 2000, WeightConfig{}, 1)
	if g.NumVertices() != 500 {
		t.Fatalf("V = %d", g.NumVertices())
	}
	if g.NumEdges() != 2000 {
		t.Fatalf("E = %d, want 2000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiCapsAtCompleteGraph(t *testing.T) {
	g := ErdosRenyi(10, 1000, WeightConfig{}, 1)
	if g.NumEdges() != 45 {
		t.Fatalf("E = %d, want 45 (complete K10)", g.NumEdges())
	}
}

func TestDeterminism(t *testing.T) {
	a := ErdosRenyi(200, 800, WeightConfig{Mode: WeightUniform, Min: 0.5, Max: 1.5}, 7)
	b := ErdosRenyi(200, 800, WeightConfig{Mode: WeightUniform, Min: 0.5, Max: 1.5}, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	for v := int32(0); v < 200; v++ {
		aAdj, aW := a.Neighbors(v)
		bAdj, bW := b.Neighbors(v)
		for i := range aAdj {
			if aAdj[i] != bAdj[i] || aW[i] != bW[i] {
				t.Fatalf("same seed, different graphs at vertex %d", v)
			}
		}
	}
	c := ErdosRenyi(200, 800, WeightConfig{}, 8)
	diff := false
	for v := int32(0); v < 200 && !diff; v++ {
		aAdj, _ := a.Neighbors(v)
		cAdj, _ := c.Neighbors(v)
		if len(aAdj) != len(cAdj) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical degree sequences (suspicious)")
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	g := BarabasiAlbert(2000, 4, WeightConfig{}, 3)
	s := graph.ComputeStats(g)
	if s.AvgDegree < 6 || s.AvgDegree > 9 {
		t.Errorf("BA avg degree = %v, want ≈8", s.AvgDegree)
	}
	// Preferential attachment: max degree far above average.
	if float64(s.MaxDegree) < 4*s.AvgDegree {
		t.Errorf("BA max degree %d not heavy-tailed (avg %.1f)", s.MaxDegree, s.AvgDegree)
	}
}

func TestHolmeKimClusteringKnob(t *testing.T) {
	lo := HolmeKim(3000, 5, 0.05, WeightConfig{}, 5)
	hi := HolmeKim(3000, 5, 0.95, WeightConfig{}, 5)
	ccLo := graph.ComputeStats(lo).AvgCC
	ccHi := graph.ComputeStats(hi).AvgCC
	if ccHi <= ccLo+0.05 {
		t.Errorf("triad formation knob ineffective: cc(pt=0.05)=%v, cc(pt=0.95)=%v", ccLo, ccHi)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8000, 0.57, 0.19, 0.19, WeightConfig{}, 2)
	if g.NumVertices() != 1024 {
		t.Fatalf("V = %d, want 1024", g.NumVertices())
	}
	if g.NumEdges() < 7000 {
		t.Errorf("E = %d, want ≈8000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// R-MAT concentrates edges: degree distribution must be skewed.
	s := graph.ComputeStats(g)
	if float64(s.MaxDegree) < 3*s.AvgDegree {
		t.Errorf("R-MAT degrees not skewed: max %d avg %.1f", s.MaxDegree, s.AvgDegree)
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(300, 3, 0.4, 0.005, WeightConfig{}, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-community edges should dominate.
	intra, inter := 0, 0
	for v := int32(0); v < 300; v++ {
		adj, _ := g.Neighbors(v)
		for _, q := range adj {
			if int(v)*3/300 == int(q)*3/300 {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 5*inter {
		t.Errorf("intra=%d inter=%d: partition structure too weak", intra, inter)
	}
}

func TestSocialCircles(t *testing.T) {
	g := SocialCircles(SocialCirclesConfig{
		N: 2000, Regions: 5, CrossP: 0.05, CirclesPerV: 3, CircleSize: 30,
		CircleSizeJit: 10, IntraP: 0.7, Seed: 6,
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.AvgCC < 0.3 {
		t.Errorf("social circles cc = %v, want dense circles", s.AvgCC)
	}
	// Most edges must stay within a region.
	intra := int64(0)
	for v := int32(0); v < 2000; v++ {
		adj, _ := g.Neighbors(v)
		for _, q := range adj {
			if int(v)*5/2000 == int(q)*5/2000 {
				intra++
			}
		}
	}
	if intra*10 < g.NumArcs()*8 {
		t.Errorf("only %d/%d arcs intra-region", intra, g.NumArcs())
	}
}

func TestLFRBasics(t *testing.T) {
	cfg := DefaultLFR(3000, 20, 9)
	g, comm, err := LFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(comm) != 3000 {
		t.Fatalf("community labels: %d", len(comm))
	}
	s := graph.ComputeStats(g)
	if math.Abs(s.AvgDegree-20) > 4 {
		t.Errorf("avg degree = %v, want ≈20", s.AvgDegree)
	}
	if s.MaxDegree > cfg.MaxDegree+1 {
		t.Errorf("max degree %d exceeds cap %d", s.MaxDegree, cfg.MaxDegree)
	}
	// Mixing: the intra fraction should be near 1-Mixing.
	intra := int64(0)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		adj, _ := g.Neighbors(v)
		for _, q := range adj {
			if comm[v] == comm[q] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(g.NumArcs())
	if math.Abs(frac-(1-cfg.Mixing)) > 0.12 {
		t.Errorf("intra fraction = %v, want ≈%v", frac, 1-cfg.Mixing)
	}
	// Community sizes within bounds (the fold-in of the remainder may
	// exceed MaxCommunity by at most MinCommunity).
	counts := map[int32]int{}
	for _, c := range comm {
		counts[c]++
	}
	for c, n := range counts {
		if n > cfg.MaxCommunity+cfg.MinCommunity {
			t.Errorf("community %d has %d members (max %d)", c, n, cfg.MaxCommunity)
		}
	}
}

func TestLFRMixingJitter(t *testing.T) {
	cfg := DefaultLFR(2000, 20, 13)
	cfg.Mixing = 0.5
	cfg.MixingJitter = 0.45
	g, comm, err := LFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-vertex intra fractions must spread widely.
	lo, hi := 0, 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		adj, _ := g.Neighbors(v)
		if len(adj) < 8 {
			continue
		}
		intra := 0
		for _, q := range adj {
			if comm[v] == comm[q] {
				intra++
			}
		}
		f := float64(intra) / float64(len(adj))
		if f < 0.25 {
			lo++
		}
		if f > 0.75 {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("jitter produced no spread: lo=%d hi=%d", lo, hi)
	}
}

func TestLFRRejectsBadConfig(t *testing.T) {
	if _, _, err := LFR(LFRConfig{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	bad := DefaultLFR(100, 10, 1)
	bad.Mixing = 1.5
	if _, _, err := LFR(bad); err == nil {
		t.Error("mixing=1.5 accepted")
	}
}

func TestAdjustCCRaisesAndLowers(t *testing.T) {
	cfg := DefaultLFR(1500, 24, 21)
	g, _, err := LFR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := graph.ComputeStats(g).AvgCC
	up, _ := AdjustCC(g, base+0.15, 0.02, 300000, WeightConfig{}, 5)
	ccUp := graph.ComputeStats(up).AvgCC
	if ccUp < base+0.08 {
		t.Errorf("AdjustCC up: %v → %v (wanted +0.15)", base, ccUp)
	}
	if up.NumEdges() != g.NumEdges() {
		t.Errorf("edge count changed: %d → %d", g.NumEdges(), up.NumEdges())
	}
	down, _ := AdjustCC(g, base-0.1, 0.02, 300000, WeightConfig{}, 5)
	ccDown := graph.ComputeStats(down).AvgCC
	if ccDown > base-0.04 {
		t.Errorf("AdjustCC down: %v → %v (wanted -0.1)", base, ccDown)
	}
	if down.NumEdges() != g.NumEdges() {
		t.Errorf("edge count changed: %d → %d", g.NumEdges(), down.NumEdges())
	}
}

func TestWeightConfigs(t *testing.T) {
	g := ErdosRenyi(100, 400, WeightConfig{Mode: WeightUniform, Min: 0.5, Max: 1.5}, 3)
	for v := int32(0); v < 100; v++ {
		_, wts := g.Neighbors(v)
		for _, w := range wts {
			if w < 0.5 || w > 1.5 {
				t.Fatalf("weight %v outside [0.5, 1.5]", w)
			}
		}
	}
	u := ErdosRenyi(100, 400, WeightConfig{}, 3)
	for v := int32(0); v < 100; v++ {
		_, wts := u.Neighbors(v)
		for _, w := range wts {
			if w != 1 {
				t.Fatalf("unit weight config produced %v", w)
			}
		}
	}
}

// Property: every generator family produces structurally valid graphs.
func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		if ErdosRenyi(100, 300, WeightConfig{}, seed).Validate() != nil {
			return false
		}
		if HolmeKim(150, 3, 0.5, WeightConfig{}, seed).Validate() != nil {
			return false
		}
		if RMAT(7, 400, 0.5, 0.2, 0.2, WeightConfig{}, seed).Validate() != nil {
			return false
		}
		g, _, err := LFR(DefaultLFR(400, 12, seed))
		if err != nil || g.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
