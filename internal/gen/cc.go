package gen

import (
	"math/rand"

	"anyscan/internal/graph"
)

// AdjustCC rewires edges of g until the (sampled) average clustering
// coefficient approaches target within tol, keeping the edge count exactly
// constant and the degree distribution approximately constant. This is the
// knob behind the paper's Table II cc sweep (LFR11..LFR15), which the LFR
// binary exposes but the published model does not parameterize directly.
//
// To raise the coefficient, a move adds a triangle-closing edge between two
// neighbors of a shared vertex and deletes an edge chosen (among sampled
// candidates) to participate in as few triangles as possible; lowering the
// coefficient uses the inverse move. maxMoves bounds the work. The function
// returns the rewired graph and its final sampled cc. Deterministic for a
// given seed.
func AdjustCC(g *graph.CSR, target, tol float64, maxMoves int, wc WeightConfig, seed int64) (*graph.CSR, float64) {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return g, 0
	}

	// Mutable adjacency: set + lists.
	es := newEdgeSet(int(g.NumEdges()))
	adj := make([][]int32, n)
	for v := int32(0); v < int32(n); v++ {
		nb, _ := g.Neighbors(v)
		for _, q := range nb {
			if v < q {
				es.add(v, q)
			}
		}
		adj[v] = append(adj[v], nb...)
	}
	removeAdj := func(u, v int32) {
		for i, q := range adj[u] {
			if q == v {
				adj[u][i] = adj[u][len(adj[u])-1]
				adj[u] = adj[u][:len(adj[u])-1]
				return
			}
		}
	}
	addEdge := func(u, v int32) bool {
		if !es.add(u, v) {
			return false
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		return true
	}
	removeEdge := func(u, v int32) {
		es.remove(u, v)
		removeAdj(u, v)
		removeAdj(v, u)
	}
	// triangles returns the number of triangles through the (virtual or
	// real) edge (x,y): |N(x) ∩ N(y)|.
	triangles := func(x, y int32) int {
		a, b := adj[x], adj[y]
		if len(b) < len(a) {
			a, b, x, y = b, a, y, x
		}
		c := 0
		for _, w := range a {
			if w != y && es.has(w, y) {
				c++
			}
		}
		return c
	}
	// randomEdge samples an (approximately uniform) existing edge.
	randomEdge := func() (int32, int32, bool) {
		for tries := 0; tries < 32; tries++ {
			x := int32(rng.Intn(n))
			if len(adj[x]) == 0 {
				continue
			}
			return x, adj[x][rng.Intn(len(adj[x]))], true
		}
		return 0, 0, false
	}

	ccSamples := 1200
	if ccSamples > n {
		ccSamples = n
	}
	sampleCC := func() float64 {
		var sum float64
		for i := 0; i < ccSamples; i++ {
			v := int32(rng.Intn(n))
			d := len(adj[v])
			if d < 2 {
				continue
			}
			trials := d * (d - 1) / 2
			if trials > 24 {
				trials = 24
			}
			hits := 0
			done := 0
			for t := 0; t < trials*3 && done < trials; t++ {
				a := adj[v][rng.Intn(d)]
				b := adj[v][rng.Intn(d)]
				if a == b {
					continue
				}
				done++
				if es.has(a, b) {
					hits++
				}
			}
			if done > 0 {
				sum += float64(hits) / float64(done)
			}
		}
		return sum / float64(ccSamples)
	}

	const checkEvery = 256
	cc := sampleCC()
	for move := 0; move < maxMoves; move++ {
		if move%checkEvery == 0 {
			cc = sampleCC()
			if cc >= target-tol && cc <= target+tol {
				break
			}
		}
		v := int32(rng.Intn(n))
		if len(adj[v]) < 2 {
			continue
		}
		a := adj[v][rng.Intn(len(adj[v]))]
		b := adj[v][rng.Intn(len(adj[v]))]
		if a == b {
			continue
		}
		if cc < target {
			// Close the triangle (v,a,b); pay for it by deleting the
			// sampled edge that sits in the fewest triangles, so the net
			// triangle delta stays positive.
			if es.has(a, b) {
				continue
			}
			gain := triangles(a, b) // common neighbors of a and b, v among them
			bestT := 1 << 30
			var bx, by int32
			for s := 0; s < 6; s++ {
				x, y, ok := randomEdge()
				if !ok {
					break
				}
				if (x == a && y == b) || (x == b && y == a) {
					continue
				}
				if x == v || y == v {
					continue // keep v's wedge intact
				}
				t := triangles(x, y)
				if t < bestT {
					bestT, bx, by = t, x, y
				}
				if t == 0 {
					break
				}
			}
			if bestT >= gain || bestT == 1<<30 {
				continue // no profitable swap found this round
			}
			if addEdge(a, b) {
				removeEdge(bx, by)
			}
		} else {
			// Open triangles: delete (a,b) if it is triangle-heavy and add a
			// random far-apart edge that closes none.
			if !es.has(a, b) {
				continue
			}
			loss := triangles(a, b)
			if loss == 0 {
				continue
			}
			var u, w int32
			found := false
			for s := 0; s < 8; s++ {
				u = int32(rng.Intn(n))
				w = int32(rng.Intn(n))
				if u == w || es.has(u, w) {
					continue
				}
				if triangles(u, w) == 0 {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			removeEdge(a, b)
			addEdge(u, w)
		}
	}

	out := es.build(n, wc, rng)
	return out, graph.ApproxAvgCC(out, 4000, seed+1)
}
