package gen

import (
	"math/rand"

	"anyscan/internal/graph"
)

// SocialCirclesConfig parameterizes the ego-network-like generator used as
// the stand-in for the paper's ego-Gplus dataset (GR01): a graph formed as a
// union of overlapping dense "circles" (friend groups), yielding the high
// average degree and high clustering coefficient typical of ego networks.
//
// Vertices are partitioned into Regions communities; circles draw their
// members from one region (with a small CrossP chance of spanning two), so
// the graph has several well-separated dense clusters bridged by a few
// cross-region vertices — the hub/outlier structure SCAN looks for.
type SocialCirclesConfig struct {
	N             int     // vertices
	Regions       int     // hard community regions (0 → 16)
	CrossP        float64 // probability a circle spans two regions
	CirclesPerV   float64 // average number of circles each vertex joins
	CircleSize    int     // average circle size
	CircleSizeJit int     // ± jitter on circle size
	IntraP        float64 // edge probability inside a circle
	Weights       WeightConfig
	Seed          int64
}

// SocialCircles generates the overlapping-circles graph. Average degree is
// approximately CirclesPerV · (CircleSize-1) · IntraP, and the clustering
// coefficient is close to IntraP for vertices dominated by one circle.
func SocialCircles(cfg SocialCirclesConfig) *graph.CSR {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.CircleSize < 2 {
		cfg.CircleSize = 2
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 16
	}
	if cfg.Regions > cfg.N {
		cfg.Regions = cfg.N
	}
	numCircles := int(float64(cfg.N) * cfg.CirclesPerV / float64(cfg.CircleSize))
	if numCircles < 1 {
		numCircles = 1
	}
	regionBounds := func(r int) (int32, int32) {
		lo := int32(r * cfg.N / cfg.Regions)
		hi := int32((r + 1) * cfg.N / cfg.Regions)
		return lo, hi
	}

	es := newEdgeSet(cfg.N * 8)
	for c := 0; c < numCircles; c++ {
		size := cfg.CircleSize
		if cfg.CircleSizeJit > 0 {
			size += rng.Intn(2*cfg.CircleSizeJit+1) - cfg.CircleSizeJit
		}
		if size < 2 {
			size = 2
		}
		// Pick the home region; occasionally a circle spans two regions.
		// Cross circles are smaller and weaker than home circles, so they
		// produce hub/bridge vertices without density-connecting the two
		// regions into one cluster.
		r1 := rng.Intn(cfg.Regions)
		r2 := r1
		intraP := cfg.IntraP
		if rng.Float64() < cfg.CrossP && cfg.Regions > 1 {
			for r2 == r1 {
				r2 = rng.Intn(cfg.Regions)
			}
			size /= 2
			if size < 4 {
				size = 4
			}
			intraP *= 0.35
		}
		members := make([]int32, 0, size)
		for len(members) < size {
			r := r1
			if r2 != r1 && len(members)%4 == 3 { // ~25% of a cross circle
				r = r2
			}
			lo, hi := regionBounds(r)
			if hi <= lo {
				continue
			}
			members = append(members, lo+int32(rng.Intn(int(hi-lo))))
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < intraP {
					es.add(members[i], members[j])
				}
			}
		}
	}
	return es.build(cfg.N, cfg.Weights, rng)
}
