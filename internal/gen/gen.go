// Package gen provides the synthetic graph generators that stand in for the
// paper's datasets: an LFR benchmark implementation (the Table II workload),
// Holme–Kim power-law-cluster graphs, R-MAT/Kronecker graphs (the
// kron_g500 profile), Erdős–Rényi and planted-partition graphs, plus a
// clustering-coefficient adjustment pass used to sweep average cc at a fixed
// degree sequence. All generators are deterministic for a given seed.
package gen

import (
	"math/rand"

	"anyscan/internal/graph"
)

// WeightMode selects how edge weights are assigned.
type WeightMode int

// Weight modes.
const (
	// WeightUnit assigns weight 1 to every edge (the unweighted SCAN case).
	WeightUnit WeightMode = iota
	// WeightUniform draws weights uniformly from [WeightMin, WeightMax].
	WeightUniform
)

// WeightConfig configures edge weights for any generator.
type WeightConfig struct {
	Mode     WeightMode
	Min, Max float32
}

// weightFn returns a weight sampler for the config.
func (wc WeightConfig) weightFn(rng *rand.Rand) func() float32 {
	switch wc.Mode {
	case WeightUniform:
		lo, hi := wc.Min, wc.Max
		if lo <= 0 {
			lo = 0.5
		}
		if hi < lo {
			hi = lo + 1
		}
		return func() float32 { return lo + rng.Float32()*(hi-lo) }
	default:
		return func() float32 { return 1 }
	}
}

// edgeSet accumulates unique undirected edges.
type edgeSet struct {
	seen map[int64]struct{}
	list [][2]int32
}

func newEdgeSet(capacity int) *edgeSet {
	return &edgeSet{seen: make(map[int64]struct{}, capacity)}
}

func edgeKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// add inserts the edge if new, rejecting self loops. Reports insertion.
func (s *edgeSet) add(u, v int32) bool {
	if u == v {
		return false
	}
	k := edgeKey(u, v)
	if _, dup := s.seen[k]; dup {
		return false
	}
	s.seen[k] = struct{}{}
	s.list = append(s.list, [2]int32{u, v})
	return true
}

func (s *edgeSet) has(u, v int32) bool {
	_, ok := s.seen[edgeKey(u, v)]
	return ok
}

func (s *edgeSet) remove(u, v int32) {
	delete(s.seen, edgeKey(u, v))
	// list is rebuilt by callers that remove; kept append-only otherwise.
}

// build converts the edge set into a CSR with the given weights.
func (s *edgeSet) build(n int, wc WeightConfig, rng *rand.Rand) *graph.CSR {
	wf := wc.weightFn(rng)
	var b graph.Builder
	b.SetNumVertices(n)
	for _, e := range s.list {
		if _, ok := s.seen[edgeKey(e[0], e[1])]; ok {
			b.AddEdge(e[0], e[1], wf())
		}
	}
	return b.MustBuild()
}

// ErdosRenyi generates G(n, m): m distinct uniform edges.
func ErdosRenyi(n int, m int64, wc WeightConfig, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	es := newEdgeSet(int(m))
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for int64(len(es.list)) < m {
		es.add(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return es.build(n, wc, rng)
}

// BarabasiAlbert generates a preferential-attachment graph: each new vertex
// attaches to m existing vertices chosen proportionally to degree.
func BarabasiAlbert(n, m int, wc WeightConfig, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	es := newEdgeSet(n * m)
	// repeated holds each vertex once per incident edge endpoint, so a
	// uniform draw is degree-proportional.
	repeated := make([]int32, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	for v := 0; v < start; v++ { // small clique seed
		for u := 0; u < v; u++ {
			if es.add(int32(u), int32(v)) {
				repeated = append(repeated, int32(u), int32(v))
			}
		}
	}
	for v := start; v < n; v++ {
		added := 0
		for tries := 0; added < m && tries < 20*m; tries++ {
			t := repeated[rng.Intn(len(repeated))]
			if es.add(int32(v), t) {
				repeated = append(repeated, int32(v), t)
				added++
			}
		}
	}
	return es.build(n, wc, rng)
}

// HolmeKim generates a power-law-cluster graph: Barabási–Albert growth
// where, after each preferential attachment, a triad-formation step closes a
// triangle with probability pt. Raising pt raises the average clustering
// coefficient at an unchanged average degree (≈ 2m), the knob the paper's
// Table II cc sweep needs.
func HolmeKim(n, m int, pt float64, wc WeightConfig, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	es := newEdgeSet(n * m)
	adj := make([][]int32, n)
	addEdge := func(u, v int32) bool {
		if !es.add(u, v) {
			return false
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		return true
	}
	repeated := make([]int32, 0, 2*n*m)
	start := m + 1
	if start > n {
		start = n
	}
	for v := 0; v < start; v++ {
		for u := 0; u < v; u++ {
			if addEdge(int32(u), int32(v)) {
				repeated = append(repeated, int32(u), int32(v))
			}
		}
	}
	for v := start; v < n; v++ {
		var last int32 = -1
		added := 0
		for tries := 0; added < m && tries < 30*m; tries++ {
			var t int32
			if last >= 0 && rng.Float64() < pt && len(adj[last]) > 0 {
				// Triad formation: attach to a random neighbor of the
				// previously attached vertex.
				t = adj[last][rng.Intn(len(adj[last]))]
			} else {
				t = repeated[rng.Intn(len(repeated))]
			}
			if addEdge(int32(v), t) {
				repeated = append(repeated, int32(v), t)
				last = t
				added++
			}
		}
	}
	return es.build(n, wc, rng)
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// vertices and approximately m undirected edges, using the standard
// (a, b, c, d) quadrant probabilities. This is the stand-in for the paper's
// kron_g500-logn21 dataset.
func RMAT(scale int, m int64, a, b, c float64, wc WeightConfig, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	es := newEdgeSet(int(m))
	attempts := int64(0)
	maxAttempts := m * 20
	for int64(len(es.list)) < m && attempts < maxAttempts {
		attempts++
		var u, v int32
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		es.add(u, v)
	}
	return es.build(n, wc, rng)
}

// PlantedPartition generates k communities of n/k vertices each, with edge
// probability pIn inside communities and pOut across. Useful in tests where
// the expected clustering is known.
func PlantedPartition(n, k int, pIn, pOut float64, wc WeightConfig, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	es := newEdgeSet(n * 4)
	community := func(v int) int { return v * k / n }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if community(i) == community(j) {
				p = pIn
			}
			if p > 0 && rng.Float64() < p {
				es.add(int32(i), int32(j))
			}
		}
	}
	return es.build(n, wc, rng)
}
