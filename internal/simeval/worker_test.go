package simeval

import (
	"math"
	"math/rand"
	"testing"

	"anyscan/internal/graph"
	"anyscan/internal/par"
)

// hubHeavy builds a graph engineered to hit all three join kernels: a few
// hubs whose degree clears hubMinDegree (bitset probe), many low-degree
// leaves adjacent to hubs (gallop, from both the small and the large side),
// and a random background of leaf-leaf edges (sort-merge) that creates
// triangles so the dot products are non-trivial. Weights include values the
// Builder clamps (NaN, zero, negative) plus denormal-small and large ones,
// so the float paths see awkward magnitudes.
func hubHeavy(n, hubs, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	b.SetNumVertices(n)
	weight := func() float32 {
		switch rng.Intn(8) {
		case 0:
			return float32(math.NaN()) // clamped to 1 by the Builder
		case 1:
			return 0 // clamped to 1
		case 2:
			return -3 // clamped to 1
		case 3:
			return 1e-30
		case 4:
			return 1e6
		default:
			return 0.25 + rng.Float32()
		}
	}
	for h := 0; h < hubs; h++ {
		for v := hubs; v < n; v++ {
			if rng.Intn(3) > 0 { // ~2n/3 neighbors per hub
				b.AddEdge(int32(h), int32(v), weight())
			}
		}
	}
	for k := 0; k < m; k++ {
		b.AddEdge(int32(hubs+rng.Intn(n-hubs)), int32(hubs+rng.Intn(n-hubs)), weight())
	}
	return b.MustBuild()
}

// TestWorkerEngineBitIdentical is the central property test: across skewed
// random graphs and every optimization combination, the degree-adaptive
// worker kernels must return bit-identical σ values, numerators and
// threshold decisions to the reference sort-merge Engine.
func TestWorkerEngineBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := hubHeavy(1200, 3, 4000, seed)
		if d := g.Degree(0); d < hubMinDegree {
			t.Fatalf("seed %d: hub degree %d below bitset threshold %d — graph too small to exercise the kernel", seed, d, hubMinDegree)
		}
		for _, opt := range []Options{{}, {Lemma5: true}, {EarlyExit: true}, AllOptimizations} {
			for _, eps := range []float64{0.1, 0.4, 0.7, 0.95} {
				ref := New(g, eps, opt)
				we := New(g, eps, opt).ForWorker(0)
				for v := int32(0); v < int32(g.NumVertices()); v++ {
					adj, wts := g.Neighbors(v)
					for i, q := range adj {
						if ref.SimilarEdge(v, q, wts[i]) != we.SimilarEdge(v, q, wts[i]) {
							t.Fatalf("seed=%d opt=%+v eps=%v: decision differs on edge (%d,%d) deg=(%d,%d)",
								seed, opt, eps, v, q, g.Degree(v), g.Degree(q))
						}
						rn, rd := ref.EdgeNumerator(v, q, wts[i])
						wn, wd := we.EdgeNumerator(v, q, wts[i])
						if math.Float64bits(rn) != math.Float64bits(wn) || math.Float64bits(rd) != math.Float64bits(wd) {
							t.Fatalf("seed=%d eps=%v: numerator differs on edge (%d,%d): %v vs %v",
								seed, eps, v, q, rn, wn)
						}
					}
				}
				// Sampled pairs (adjacent or not) through the exact path.
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < 300; k++ {
					p := int32(rng.Intn(g.NumVertices()))
					q := int32(rng.Intn(g.NumVertices()))
					if math.Float64bits(ref.Sigma(p, q)) != math.Float64bits(we.Sigma(p, q)) {
						t.Fatalf("seed=%d: Sigma(%d,%d) differs", seed, p, q)
					}
				}
			}
		}
	}
}

// Sims and Pruned are decision-coupled, so the sharded counters must match
// the reference exactly; the early-exit split may shift between buckets
// (different kernels exit at different points) but never exceed the joins.
func TestWorkerEngineCounterConsistency(t *testing.T) {
	g := hubHeavy(900, 2, 3000, 7)
	ref := New(g, 0.6, AllOptimizations)
	eng := New(g, 0.6, AllOptimizations)
	we := eng.ForWorker(0)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		adj, wts := g.Neighbors(v)
		for i, q := range adj {
			ref.SimilarEdge(v, q, wts[i])
			we.SimilarEdge(v, q, wts[i])
		}
	}
	rc, wc := ref.C.Snapshot(), eng.C.Snapshot()
	if wc.Sims != rc.Sims || wc.Pruned != rc.Pruned {
		t.Fatalf("sharded counters diverge: sims %d/%d pruned %d/%d",
			wc.Sims, rc.Sims, wc.Pruned, rc.Pruned)
	}
	if wc.Sims == 0 || wc.Pruned == 0 {
		t.Fatal("test graph exercised no joins or no prunes")
	}
	if wc.EarlyYes+wc.EarlyNo > wc.Sims {
		t.Fatalf("more early exits (%d+%d) than joins (%d)", wc.EarlyYes, wc.EarlyNo, wc.Sims)
	}
}

// TestWorkerEnginesParallel drives one engine from many workers over all
// arcs (the real usage pattern) and checks every decision against the
// sequential reference. Run under -race in CI: it also exercises concurrent
// shard growth and Snapshot during updates.
func TestWorkerEnginesParallel(t *testing.T) {
	g := hubHeavy(1000, 2, 3000, 11)
	ref := New(g, 0.5, AllOptimizations)
	eng := New(g, 0.5, AllOptimizations)
	n := g.NumVertices()
	want := make([][]bool, n)
	for v := int32(0); v < int32(n); v++ {
		adj, wts := g.Neighbors(v)
		want[v] = make([]bool, len(adj))
		for i, q := range adj {
			want[v][i] = ref.SimilarEdge(v, q, wts[i])
		}
	}
	got := make([][]bool, n)
	par.ForWorker(n, 8, par.Adaptive, func(w, vi int) {
		we := eng.ForWorker(w)
		v := int32(vi)
		adj, wts := g.Neighbors(v)
		row := make([]bool, len(adj))
		for i, q := range adj {
			row[i] = we.SimilarEdge(v, q, wts[i])
			_ = eng.C.Snapshot() // concurrent progress read must not tear or race
		}
		got[vi] = row
	})
	for v := range want {
		for i := range want[v] {
			if want[v][i] != got[v][i] {
				t.Fatalf("parallel decision differs at vertex %d arc %d", v, i)
			}
		}
	}
	if s := eng.C.Snapshot(); s.Sims != ref.C.Snapshot().Sims {
		t.Fatalf("merged sims %d, want %d", s.Sims, ref.C.Snapshot().Sims)
	}
}

func TestWorkerEngineZeroAllocSteadyState(t *testing.T) {
	g := hubHeavy(1100, 2, 3000, 5)
	we := New(g, 0.5, AllOptimizations).ForWorker(0)
	adj0, w0 := g.Neighbors(0)   // hub tail: bitset kernel
	adjL, wL := g.Neighbors(600) // leaf tail: gallop/merge kernels
	warm := func() {
		for i, q := range adj0 {
			we.SimilarEdge(0, q, w0[i])
		}
		for i, q := range adjL {
			we.SimilarEdge(600, q, wL[i])
		}
	}
	warm() // first pass sizes the per-worker scratch
	if avg := testing.AllocsPerRun(5, warm); avg != 0 {
		t.Fatalf("steady-state σ evaluation allocates: %v allocs per sweep", avg)
	}
}

func TestGallopSearch(t *testing.T) {
	a := []int32{2, 3, 5, 8, 13, 21, 34, 55}
	cases := []struct {
		lo     int
		target int32
		want   int
	}{
		{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {0, 4, 2}, {0, 55, 7}, {0, 56, 8},
		{3, 13, 4}, {3, 9, 4}, {7, 55, 7}, {8, 1, 8},
	}
	for _, c := range cases {
		if got := gallopSearch(a, c.lo, c.target); got != c.want {
			t.Errorf("gallopSearch(a, %d, %d) = %d, want %d", c.lo, c.target, got, c.want)
		}
	}
	// Exhaustive cross-check against linear scan on random sorted slices.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(60))
		}
		for i := 1; i < n; i++ {
			if s[i] < s[i-1] {
				s[i] = s[i-1]
			}
		}
		lo := 0
		if n > 0 {
			lo = rng.Intn(n)
		}
		target := int32(rng.Intn(70))
		want := lo
		for want < n && s[want] < target {
			want++
		}
		if got := gallopSearch(s, lo, target); got != want {
			t.Fatalf("gallopSearch(%v, %d, %d) = %d, want %d", s, lo, target, got, want)
		}
	}
}

// BenchmarkSigma measures one full σ sweep over every arc of a hub-heavy
// graph: the reference merge-join Engine against the degree-adaptive
// WorkerEngine. ReportAllocs substantiates the zero-allocation claim.
func BenchmarkSigma(b *testing.B) {
	g := hubHeavy(2000, 3, 8000, 1)
	sweep := func(b *testing.B, eval func(p, q int32, w float32) bool) {
		b.ReportAllocs()
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				adj, wts := g.Neighbors(v)
				for i, q := range adj {
					eval(v, q, wts[i])
				}
			}
		}
	}
	b.Run("merge-join", func(b *testing.B) {
		e := New(g, 0.5, AllOptimizations)
		sweep(b, e.SimilarEdge)
	})
	b.Run("adaptive", func(b *testing.B) {
		we := New(g, 0.5, AllOptimizations).ForWorker(0)
		we.SimilarEdge(0, 1, 1) // size scratch outside the timed region
		sweep(b, we.SimilarEdge)
	})
}
