package simeval

import (
	"sync/atomic"

	"anyscan/internal/graph"
)

// Kernel selection thresholds. The join kernels are decision-equivalent (see
// the WorkerEngine comment), so these only trade constant factors:
//
//   - gallopRatio: once one adjacency list is this many times longer than the
//     other, scanning the short list and galloping through the long one does
//     O(d_min·log d_max) work instead of the merge join's O(d_min + d_max).
//   - hubMinDegree: once the tail vertex is this heavy, materializing its
//     neighborhood as a bitset (plus dense weight array) turns every
//     subsequent join against it into an O(d_other) probe. The build cost is
//     amortized because core checks evaluate all arcs of a tail vertex
//     back-to-back on the same worker.
const (
	gallopRatio  = 8
	hubMinDegree = 512
)

// WorkerEngine is a per-worker view of an Engine for parallel hot paths. It
// routes counters to the worker's private Shard (one uncontended atomic add
// instead of a line bouncing between every core) and evaluates joins with a
// degree-adaptive kernel backed by reusable per-worker scratch, so the steady
// state performs zero allocations per similarity evaluation.
//
// Every kernel accumulates the common-neighbor products in ascending
// neighbor-id order with the exact float expression of the sort-merge join,
// and every early exit uses a conservative bound, so a WorkerEngine returns
// bit-identical σ values and threshold decisions to its Engine — the property
// tests in worker_test.go assert exact equality, and the clustering
// equivalence suites depend on it.
//
// A WorkerEngine must only be used by the worker id it was created for; the
// Engine itself remains safe for concurrent use.
type WorkerEngine struct {
	e   *Engine
	c   *Shard
	hub hubScratch
	// pc/qc are this worker's decode cursors: every kernel holds p's and q's
	// adjacency simultaneously, so each endpoint gets its own cursor. On a
	// flat CSR a cursor access is a plain slice alias; on a compressed backend
	// it decodes into the cursor's reusable buffer, keeping the parallel hot
	// path allocation-free on every graph.Graph implementation.
	pc, qc *graph.Cursor
}

// hubScratch caches one tail vertex's neighborhood as a membership bitset
// plus a dense weight array, both sized to the graph once per worker.
type hubScratch struct {
	v    int32 // vertex currently materialized; -1 when none
	bits []uint64
	wt   []float32
}

// ForWorker returns worker w's engine view, creating it (and its counter
// shard) on first use. The fast path is one atomic pointer load, so calling
// it per item inside a parallel loop is fine.
func (e *Engine) ForWorker(w int) *WorkerEngine {
	if p := e.wes.Load(); p != nil && w < len(*p) && (*p)[w] != nil {
		return (*p)[w]
	}
	return e.growWorker(w)
}

func (e *Engine) growWorker(w int) *WorkerEngine {
	e.weMu.Lock()
	defer e.weMu.Unlock()
	var cur []*WorkerEngine
	if p := e.wes.Load(); p != nil {
		cur = *p
	}
	if w < len(cur) && cur[w] != nil {
		return cur[w]
	}
	next := make([]*WorkerEngine, len(cur))
	copy(next, cur)
	for len(next) <= w {
		next = append(next, nil)
	}
	for i := range next {
		if next[i] == nil {
			next[i] = &WorkerEngine{
				e: e, c: e.C.Shard(i), hub: hubScratch{v: -1},
				pc: graph.NewCursor(e.G), qc: graph.NewCursor(e.G),
			}
		}
	}
	e.wes.Store(&next)
	return next[w]
}

// Sigma returns the exact similarity σ(p,q), bit-identical to Engine.Sigma.
func (we *WorkerEngine) Sigma(p, q int32) float64 {
	we.c.Sims.Add(1)
	e := we.e
	acc := we.adaptiveDot(p, q)
	if w := e.G.EdgeWeight(p, q); w > 0 {
		acc += 2 * float64(w) * graph.SelfWeight
	}
	if p == q {
		acc += graph.SelfWeight * graph.SelfWeight
	}
	return acc / (e.G.SqrtNorm(p) * e.G.SqrtNorm(q))
}

// SimilarEdge reports whether σ(p,q) ≥ ε for the adjacent pair (p,q) with
// known edge weight wpq. Decision-identical to Engine.SimilarEdge.
func (we *WorkerEngine) SimilarEdge(p, q int32, wpq float32) bool {
	e := we.e
	threshold := e.Eps * (e.G.SqrtNorm(p) * e.G.SqrtNorm(q))
	if e.Opt.Lemma5 {
		dp, dq := e.G.Degree(p), e.G.Degree(q)
		minD := dp
		if dq < minD {
			minD = dq
		}
		bound := float64(minD)*float64(e.G.MaxWeight(p))*float64(e.G.MaxWeight(q)) +
			2*float64(wpq)*graph.SelfWeight
		if bound < threshold {
			we.c.Pruned.Add(1)
			return false
		}
	}
	we.c.Sims.Add(1)
	selfTerms := 2 * float64(wpq) * graph.SelfWeight
	if e.Opt.EarlyExit {
		return we.adaptiveThreshold(p, q, selfTerms, threshold)
	}
	return selfTerms+we.adaptiveDot(p, q) >= threshold
}

// Similar reports whether σ(p,q) ≥ ε for an arbitrary pair.
func (we *WorkerEngine) Similar(p, q int32) bool {
	return we.SimilarEdge(p, q, we.e.G.EdgeWeight(p, q))
}

// EdgeNumerator mirrors Engine.EdgeNumerator with the adaptive kernels.
func (we *WorkerEngine) EdgeNumerator(p, q int32, wpq float32) (num, denom float64) {
	selfTerms := 2 * float64(wpq) * graph.SelfWeight
	num = selfTerms + we.adaptiveDot(p, q)
	denom = we.e.G.SqrtNorm(p) * we.e.G.SqrtNorm(q)
	return num, denom
}

// adaptiveThreshold picks the join kernel from the endpoint degrees. The
// bitset probe keys on the tail p so consecutive evaluations of p's arcs
// reuse one materialization.
func (we *WorkerEngine) adaptiveThreshold(p, q int32, selfTerms, threshold float64) bool {
	if selfTerms >= threshold {
		we.c.EarlyYes.Add(1)
		return true
	}
	dp, dq := we.e.G.Degree(p), we.e.G.Degree(q)
	switch {
	case dp >= hubMinDegree && dp >= dq:
		return we.bitsetThreshold(p, q, selfTerms, threshold)
	case dp >= gallopRatio*dq || dq >= gallopRatio*dp:
		return we.gallopThreshold(p, q, selfTerms, threshold)
	default:
		g := we.e.G
		pAdj, pW := we.pc.Neighbors(p)
		qAdj, qW := we.qc.Neighbors(q)
		maxTerm := float64(g.MaxWeight(p)) * float64(g.MaxWeight(q))
		return mergeJoinThreshold(pAdj, pW, qAdj, qW, maxTerm, selfTerms, threshold,
			&we.c.EarlyYes, &we.c.EarlyNo)
	}
}

// adaptiveDot returns the open-neighborhood dot product, bit-identical to
// Engine.openDot, with the kernel chosen as in adaptiveThreshold.
func (we *WorkerEngine) adaptiveDot(p, q int32) float64 {
	dp, dq := we.e.G.Degree(p), we.e.G.Degree(q)
	switch {
	case dp >= hubMinDegree && dp >= dq:
		return we.bitsetDot(p, q)
	case dp >= gallopRatio*dq || dq >= gallopRatio*dp:
		pAdj, pW := we.pc.Neighbors(p)
		qAdj, qW := we.qc.Neighbors(q)
		return gallopDotSlices(pAdj, pW, qAdj, qW)
	default:
		pAdj, pW := we.pc.Neighbors(p)
		qAdj, qW := we.qc.Neighbors(q)
		return mergeDotSlices(pAdj, pW, qAdj, qW)
	}
}

// loadHub materializes p's neighborhood into the worker's bitset scratch,
// clearing the previous hub's bits first (only its own words, so a switch
// costs O(deg(old)) — the same order as the build it replaces).
func (we *WorkerEngine) loadHub(p int32) {
	if we.hub.v == p {
		return
	}
	g := we.e.G
	if we.hub.bits == nil {
		n := g.NumVertices()
		we.hub.bits = make([]uint64, (n+63)/64)
		we.hub.wt = make([]float32, n)
	}
	if we.hub.v >= 0 {
		adj, _ := we.pc.Neighbors(we.hub.v)
		for _, r := range adj {
			we.hub.bits[r>>6] = 0
		}
	}
	adj, w := we.pc.Neighbors(p)
	for i, r := range adj {
		we.hub.bits[r>>6] |= 1 << (uint(r) & 63)
		we.hub.wt[r] = w[i]
	}
	we.hub.v = p
}

// bitsetThreshold probes p's cached bitset with q's adjacency. Common
// neighbors surface in ascending id order (q's list is sorted), and the
// remaining-work bound counts only q's unscanned entries — at least the
// merge join's min-based bound, so an early exit here implies the merge join
// would decide identically.
func (we *WorkerEngine) bitsetThreshold(p, q int32, selfTerms, threshold float64) bool {
	we.loadHub(p)
	g := we.e.G
	qAdj, qW := we.qc.Neighbors(q)
	maxTerm := float64(g.MaxWeight(p)) * float64(g.MaxWeight(q))
	bits, wt := we.hub.bits, we.hub.wt
	dot := 0.0
	for j := 0; j < len(qAdj); j++ {
		if selfTerms+dot+float64(len(qAdj)-j)*maxTerm < threshold {
			we.c.EarlyNo.Add(1)
			return false
		}
		r := qAdj[j]
		if bits[r>>6]&(1<<(uint(r)&63)) != 0 {
			dot += float64(wt[r]) * float64(qW[j])
			if selfTerms+dot >= threshold {
				we.c.EarlyYes.Add(1)
				return true
			}
		}
	}
	return selfTerms+dot >= threshold
}

// bitsetDot is bitsetThreshold without the exits (exact dot product).
func (we *WorkerEngine) bitsetDot(p, q int32) float64 {
	we.loadHub(p)
	qAdj, qW := we.qc.Neighbors(q)
	bits, wt := we.hub.bits, we.hub.wt
	dot := 0.0
	for j, r := range qAdj {
		if bits[r>>6]&(1<<(uint(r)&63)) != 0 {
			dot += float64(wt[r]) * float64(qW[j])
		}
	}
	return dot
}

// gallopThreshold scans the shorter adjacency list and gallops through the
// longer one. Matches appear in ascending id order; the remaining-work bound
// counts the short list's unscanned entries (≥ the merge join's bound).
func (we *WorkerEngine) gallopThreshold(p, q int32, selfTerms, threshold float64) bool {
	g := we.e.G
	sAdj, sW := we.pc.Neighbors(p)
	lAdj, lW := we.qc.Neighbors(q)
	if len(sAdj) > len(lAdj) {
		sAdj, lAdj = lAdj, sAdj
		sW, lW = lW, sW
	}
	maxTerm := float64(g.MaxWeight(p)) * float64(g.MaxWeight(q))
	dot := 0.0
	j := 0
	for i := 0; i < len(sAdj); i++ {
		if selfTerms+dot+float64(len(sAdj)-i)*maxTerm < threshold {
			we.c.EarlyNo.Add(1)
			return false
		}
		j = gallopSearch(lAdj, j, sAdj[i])
		if j >= len(lAdj) {
			break
		}
		if lAdj[j] == sAdj[i] {
			dot += float64(sW[i]) * float64(lW[j])
			j++
			if selfTerms+dot >= threshold {
				we.c.EarlyYes.Add(1)
				return true
			}
		}
	}
	return selfTerms+dot >= threshold
}

// gallopSearch returns the smallest index k ≥ lo with a[k] ≥ target
// (len(a) if none), by exponential probing followed by binary search —
// O(log gap) instead of O(gap).
func gallopSearch(a []int32, lo int, target int32) int {
	if lo >= len(a) || a[lo] >= target {
		return lo
	}
	// Invariant from here: a[lo] < target.
	step := 1
	hi := lo + 1
	for hi < len(a) && a[hi] < target {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(a) {
		hi = len(a)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// mergeJoinThreshold is the classic sort-merge join with running bound exits,
// shared verbatim between Engine (base counters) and WorkerEngine (shard
// counters). It takes the two sorted adjacency slices (however the caller's
// backend produced them) plus maxTerm = MaxWeight(p)·MaxWeight(q). The
// decision value is always selfTerms + (running dot), the exact float
// expression of the non-early path, so the exits never flip a boundary
// decision.
func mergeJoinThreshold(pAdj []int32, pW []float32, qAdj []int32, qW []float32, maxTerm, selfTerms, threshold float64, earlyYes, earlyNo *atomic.Int64) bool {
	i, j := 0, 0
	// Upper bound on the remaining numerator contribution.
	remaining := func() float64 {
		r := len(pAdj) - i
		if s := len(qAdj) - j; s < r {
			r = s
		}
		return float64(r) * maxTerm
	}
	if selfTerms >= threshold {
		earlyYes.Add(1)
		return true
	}
	dot := 0.0
	for i < len(pAdj) && j < len(qAdj) {
		switch {
		case pAdj[i] < qAdj[j]:
			i++
		case pAdj[i] > qAdj[j]:
			j++
		default:
			dot += float64(pW[i]) * float64(qW[j])
			i++
			j++
			if selfTerms+dot >= threshold {
				earlyYes.Add(1)
				return true
			}
		}
		if selfTerms+dot+remaining() < threshold {
			earlyNo.Add(1)
			return false
		}
	}
	return selfTerms+dot >= threshold
}
