package simeval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anyscan/internal/graph"
)

func triangle(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromUnweightedEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSigmaTriangleUnweighted(t *testing.T) {
	g := triangle(t)
	e := New(g, 0.5, Options{})
	// Closed neighborhoods are all {0,1,2}: σ = (1+1+1)/sqrt(3·3) = 1.
	for _, pair := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		if got := e.Sigma(pair[0], pair[1]); math.Abs(got-1) > 1e-12 {
			t.Errorf("σ(%d,%d) = %v, want 1", pair[0], pair[1], got)
		}
	}
}

func TestSigmaSelfIsOne(t *testing.T) {
	g := triangle(t)
	e := New(g, 0.5, Options{})
	for v := int32(0); v < 3; v++ {
		if got := e.Sigma(v, v); math.Abs(got-1) > 1e-12 {
			t.Errorf("σ(%d,%d) = %v, want 1", v, v, got)
		}
	}
}

func TestSigmaMatchesOriginalSCANFormula(t *testing.T) {
	// Path 0-1-2-3: for the edge (1,2): Γ(1)={0,1,2}, Γ(2)={1,2,3},
	// |Γ(1)∩Γ(2)| = 2, σ = 2/sqrt(3·3) = 2/3.
	g, err := graph.FromUnweightedEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, 0.5, Options{})
	if got := e.Sigma(1, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("σ(1,2) = %v, want 2/3", got)
	}
	// Edge (0,1): Γ(0)={0,1}, Γ(1)={0,1,2}: common 2, σ = 2/sqrt(2·3).
	want := 2 / math.Sqrt(6)
	if got := e.Sigma(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("σ(0,1) = %v, want %v", got, want)
	}
	// Non-adjacent (0,2): common closed neighbors {1,2}∩... Γ(0)={0,1},
	// Γ(2)={1,2,3}: common {1}, σ = 1/sqrt(2·3).
	want = 1 / math.Sqrt(6)
	if got := e.Sigma(0, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("σ(0,2) = %v, want %v", got, want)
	}
}

func TestSigmaWeighted(t *testing.T) {
	// Triangle with weights: (0,1)=2, (1,2)=1, (0,2)=3.
	g, err := graph.FromEdges(3, [][3]float64{{0, 1, 2}, {1, 2, 1}, {0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, 0.5, Options{})
	// σ(0,1): common open neighbor r=2: w_02·w_12 = 3·1 = 3.
	// Self terms: w_01 + w_10 = 4. Numerator = 7.
	// l_0 = 1+4+9 = 14, l_1 = 1+4+1 = 6. σ = 7/sqrt(84).
	want := 7 / math.Sqrt(14*6)
	if got := e.Sigma(0, 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("σ(0,1) = %v, want %v", got, want)
	}
}

func TestSimilarEdgeAgreesWithSigma(t *testing.T) {
	g := randomWeighted(120, 700, 5)
	for _, opt := range []Options{{}, {Lemma5: true}, {EarlyExit: true}, AllOptimizations} {
		for _, eps := range []float64{0.2, 0.5, 0.8} {
			plain := New(g, eps, Options{})
			tested := New(g, eps, opt)
			for v := int32(0); v < int32(g.NumVertices()); v++ {
				adj, wts := g.Neighbors(v)
				for i, q := range adj {
					want := plain.Sigma(v, q) >= eps
					got := tested.SimilarEdge(v, q, wts[i])
					if got != want {
						t.Fatalf("opt=%+v eps=%v: SimilarEdge(%d,%d)=%v, σ=%v",
							opt, eps, v, q, got, plain.Sigma(v, q))
					}
				}
			}
		}
	}
}

func TestSimilarNonAdjacent(t *testing.T) {
	g, err := graph.FromUnweightedEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, 0.5, Options{})
	if e.Similar(0, 3) {
		t.Errorf("vertices two hops apart with no shared neighbors must not be similar")
	}
}

// Property: σ is symmetric and within [0,1] (Cauchy–Schwarz).
func TestSigmaSymmetryAndRange(t *testing.T) {
	f := func(seed int64) bool {
		g := randomWeighted(60, 300, seed)
		e := New(g, 0.5, Options{})
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		for k := 0; k < 200; k++ {
			p := int32(rng.Intn(60))
			q := int32(rng.Intn(60))
			s1, s2 := e.Sigma(p, q), e.Sigma(q, p)
			if math.Abs(s1-s2) > 1e-9 {
				return false
			}
			if s1 < 0 || s1 > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCountersAccumulate(t *testing.T) {
	g := randomWeighted(50, 300, 1)
	e := New(g, 0.99, AllOptimizations) // high ε: Lemma-5 prunes fire
	for v := int32(0); v < 50; v++ {
		adj, wts := g.Neighbors(v)
		for i, q := range adj {
			e.SimilarEdge(v, q, wts[i])
		}
	}
	c := e.C.Snapshot()
	if c.Sims+c.Pruned == 0 {
		t.Fatal("no work recorded")
	}
	if c.Pruned == 0 {
		t.Error("expected Lemma-5 prunes at ε=0.99")
	}
}

func TestEdgeMemo(t *testing.T) {
	g := randomWeighted(80, 400, 3)
	e := New(g, 0.5, Options{})
	memo := NewEdgeMemo(e)
	// Resolve every arc twice: second pass must be pure memo hits.
	var firstSims int64
	for pass := 0; pass < 2; pass++ {
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			lo, hi := g.NeighborRange(v)
			for arc := lo; arc < hi; arc++ {
				memo.SimilarArc(v, arc)
			}
		}
		if pass == 0 {
			firstSims = e.C.Sims.Load()
		}
	}
	if e.C.Sims.Load() != firstSims {
		t.Errorf("second pass recomputed similarities: %d → %d", firstSims, e.C.Sims.Load())
	}
	if e.C.Shared.Load() == 0 {
		t.Errorf("no shared lookups counted")
	}
	if memo.Resolved() != g.NumEdges() {
		t.Errorf("resolved %d edges, want %d", memo.Resolved(), g.NumEdges())
	}
	// Memo answers must agree with direct evaluation.
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, hi := g.NeighborRange(v)
		for arc := lo; arc < hi; arc++ {
			q, w := g.Arc(arc)
			if memo.SimilarArc(v, arc) != e.SimilarEdge(v, q, w) {
				t.Fatalf("memo disagrees with engine on (%d,%d)", v, q)
			}
		}
	}
}

func randomWeighted(n, m int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	b.SetNumVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 0.5+rng.Float32())
	}
	return b.MustBuild()
}
