package simeval

// Slice-based join kernels. These operate on raw sorted adjacency slices
// (ids ascending, weights parallel) rather than a *graph.CSR, so callers that
// maintain their own adjacency storage — package live's copy-on-write epoch
// segments in particular — evaluate σ numerators with the exact kernels the
// static engines use. Every kernel accumulates common-neighbor products in
// ascending neighbor-id order with the float expression of the sort-merge
// join, so the results are bit-identical to Engine.openDot and the
// WorkerEngine adaptive kernels.

// SliceDot returns Σ w_pr·w_qr over the common ids of the two sorted
// adjacency slices (the open-neighborhood dot product), choosing the
// merge-join or gallop kernel from the length ratio exactly as the
// WorkerEngine does. Bit-identical to Engine.openDot on equivalent input.
func SliceDot(pAdj []int32, pW []float32, qAdj []int32, qW []float32) float64 {
	if len(pAdj) >= gallopRatio*len(qAdj) || len(qAdj) >= gallopRatio*len(pAdj) {
		return gallopDotSlices(pAdj, pW, qAdj, qW)
	}
	return mergeDotSlices(pAdj, pW, qAdj, qW)
}

// mergeDotSlices is the classic ascending-id sort-merge join.
func mergeDotSlices(pAdj []int32, pW []float32, qAdj []int32, qW []float32) float64 {
	var acc float64
	i, j := 0, 0
	for i < len(pAdj) && j < len(qAdj) {
		switch {
		case pAdj[i] < qAdj[j]:
			i++
		case pAdj[i] > qAdj[j]:
			j++
		default:
			acc += float64(pW[i]) * float64(qW[j])
			i++
			j++
		}
	}
	return acc
}

// gallopDotSlices scans the shorter list and gallops through the longer one.
// Matches surface in ascending id order, so the accumulation order (and hence
// the float result) matches mergeDotSlices exactly.
func gallopDotSlices(pAdj []int32, pW []float32, qAdj []int32, qW []float32) float64 {
	sAdj, sW := pAdj, pW
	lAdj, lW := qAdj, qW
	if len(sAdj) > len(lAdj) {
		sAdj, lAdj = lAdj, sAdj
		sW, lW = lW, sW
	}
	dot := 0.0
	j := 0
	for i := 0; i < len(sAdj); i++ {
		j = gallopSearch(lAdj, j, sAdj[i])
		if j >= len(lAdj) {
			break
		}
		if lAdj[j] == sAdj[i] {
			dot += float64(sW[i]) * float64(lW[j])
			j++
		}
	}
	return dot
}
