// Package simeval evaluates the weighted structural similarity of
// Definition 1 and implements the Section III-D optimizations (Lemma 5
// upper-bound pruning and early success/failure exits inside the sort-merge
// join). Every clustering algorithm in this repository funnels its
// similarity work through an Engine, so the "number of structural similarity
// calculations" axis of Fig. 7 is measured uniformly.
//
// Similarity uses the closed-neighborhood convention (see package graph):
//
//	σ(p,q) = (Σ_{r∈N[p]∩N[q]} w_pr·w_qr) / √(l_p·l_q)
//
// with implicit self-loops of weight graph.SelfWeight. For adjacent p,q the
// intersection always contains p and q themselves, contributing
// w_qp·SelfWeight + w_pq·SelfWeight to the numerator. By Cauchy–Schwarz,
// σ(p,q) ∈ [0,1].
package simeval

import (
	"math"
	"sync/atomic"

	"anyscan/internal/graph"
)

// Counters tallies similarity work. All fields are updated atomically so the
// parallel algorithms can share one Counters value.
type Counters struct {
	// Sims is the number of full similarity evaluations (a sort-merge join
	// was executed, possibly with an early exit). This is the quantity
	// plotted on the left of Fig. 7.
	Sims atomic.Int64
	// Pruned counts O(1) Lemma-5 rejections that avoided a join entirely.
	Pruned atomic.Int64
	// EarlyYes / EarlyNo count joins cut short by the running-sum bounds.
	EarlyYes atomic.Int64
	EarlyNo  atomic.Int64
	// Shared counts memoized lookups that avoided recomputation (the
	// "similarity sharing" evaluations of SCAN++ in Fig. 7).
	Shared atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (c *Counters) Snapshot() CounterValues {
	return CounterValues{
		Sims:     c.Sims.Load(),
		Pruned:   c.Pruned.Load(),
		EarlyYes: c.EarlyYes.Load(),
		EarlyNo:  c.EarlyNo.Load(),
		Shared:   c.Shared.Load(),
	}
}

// CounterValues is a point-in-time copy of Counters.
type CounterValues struct {
	Sims, Pruned, EarlyYes, EarlyNo, Shared int64
}

// Options selects which Section III-D optimizations the engine applies.
type Options struct {
	// Lemma5 enables the O(1) upper-bound rejection of Lemma 5.
	Lemma5 bool
	// EarlyExit enables terminating the merge join as soon as the running
	// numerator crosses (success) or can no longer reach (failure) the
	// ε threshold. Only affects threshold queries, never exact Sigma values.
	EarlyExit bool
}

// AllOptimizations enables everything (the configuration anySCAN, SCAN-B and
// pSCAN run with in Section IV).
var AllOptimizations = Options{Lemma5: true, EarlyExit: true}

// Engine evaluates similarities on one graph at one ε. Safe for concurrent
// use: it is stateless apart from the atomic counters.
type Engine struct {
	G   *graph.CSR
	Eps float64
	Opt Options
	C   Counters
}

// New returns an Engine for g at threshold eps.
func New(g *graph.CSR, eps float64, opt Options) *Engine {
	return &Engine{G: g, Eps: eps, Opt: opt}
}

// Sigma returns the exact similarity σ(p,q). It always runs the full join
// (no early exits) so the value is exact; it still counts as one evaluation.
func (e *Engine) Sigma(p, q int32) float64 {
	e.C.Sims.Add(1)
	num := e.closedDot(p, q, -1, -1)
	return num / (e.G.SqrtNorm(p) * e.G.SqrtNorm(q))
}

// SimilarEdge reports whether σ(p,q) ≥ ε for the *adjacent* pair (p,q) with
// known edge weight wpq, applying the enabled optimizations. This is the hot
// path of every core check.
func (e *Engine) SimilarEdge(p, q int32, wpq float32) bool {
	// Parenthesized so the predicate is exactly num >= eps*(√l_p·√l_q),
	// the form EdgeNumerator documents and package sweep replays.
	threshold := e.Eps * (e.G.SqrtNorm(p) * e.G.SqrtNorm(q))
	if e.Opt.Lemma5 {
		dp, dq := e.G.Degree(p), e.G.Degree(q)
		minD := dp
		if dq < minD {
			minD = dq
		}
		// num ≤ min(d_p,d_q)·w_p·w_q (open intersection) + 2·w_pq·SelfWeight
		// (the two closed self terms). Tighter than the paper's bound, same
		// purpose.
		bound := float64(minD)*float64(e.G.MaxWeight(p))*float64(e.G.MaxWeight(q)) +
			2*float64(wpq)*graph.SelfWeight
		if bound < threshold {
			e.C.Pruned.Add(1)
			return false
		}
	}
	e.C.Sims.Add(1)
	selfTerms := 2 * float64(wpq) * graph.SelfWeight
	if e.Opt.EarlyExit {
		return e.joinThreshold(p, q, selfTerms, threshold)
	}
	num := selfTerms + e.openDot(p, q)
	return num >= threshold
}

// Similar reports whether σ(p,q) ≥ ε for an arbitrary pair (adjacent or
// not). Slightly slower than SimilarEdge because it must look up the edge.
func (e *Engine) Similar(p, q int32) bool {
	w := e.G.EdgeWeight(p, q)
	return e.SimilarEdge(p, q, w)
}

// joinThreshold runs the merge join with running upper/lower bound exits.
// The decision value is always computed as selfTerms + (running dot), the
// exact float expression of the non-early path, so enabling EarlyExit can
// never flip a boundary decision.
func (e *Engine) joinThreshold(p, q int32, selfTerms, threshold float64) bool {
	pAdj, pW := e.G.Neighbors(p)
	qAdj, qW := e.G.Neighbors(q)
	wp, wq := float64(e.G.MaxWeight(p)), float64(e.G.MaxWeight(q))
	maxTerm := wp * wq
	i, j := 0, 0
	// Upper bound on the remaining numerator contribution.
	remaining := func() float64 {
		r := len(pAdj) - i
		if s := len(qAdj) - j; s < r {
			r = s
		}
		return float64(r) * maxTerm
	}
	if selfTerms >= threshold {
		e.C.EarlyYes.Add(1)
		return true
	}
	dot := 0.0
	for i < len(pAdj) && j < len(qAdj) {
		switch {
		case pAdj[i] < qAdj[j]:
			i++
		case pAdj[i] > qAdj[j]:
			j++
		default:
			dot += float64(pW[i]) * float64(qW[j])
			i++
			j++
			if selfTerms+dot >= threshold {
				e.C.EarlyYes.Add(1)
				return true
			}
		}
		if selfTerms+dot+remaining() < threshold {
			e.C.EarlyNo.Add(1)
			return false
		}
	}
	return selfTerms+dot >= threshold
}

// EdgeNumerator returns the closed-neighborhood numerator for the adjacent
// pair (p,q) with edge weight wpq, computed with the exact float expression
// SimilarEdge uses, plus the denominator factor √(l_p·l_q). The engine's
// similarity predicate is precisely num >= eps*denom; package sweep uses
// these to derive per-edge activation thresholds that agree bit-for-bit
// with every algorithm in this repository.
func (e *Engine) EdgeNumerator(p, q int32, wpq float32) (num, denom float64) {
	selfTerms := 2 * float64(wpq) * graph.SelfWeight
	num = selfTerms + e.openDot(p, q)
	denom = e.G.SqrtNorm(p) * e.G.SqrtNorm(q)
	return num, denom
}

// Crossing returns the largest float64 t with num >= t*denom, i.e. the
// exact boundary of the engine's similarity predicate as a function of ε.
// The sweep explorer and the query index precompute per-edge activation
// thresholds with it: computing the exact crossing (rather than the rounded
// quotient num/denom) keeps threshold replays bit-for-bit consistent with
// every algorithm that evaluates the predicate directly, even on unweighted
// graphs where σ values hit rational boundaries exactly.
func Crossing(num, denom float64) float64 {
	if denom <= 0 {
		return 0
	}
	t := num / denom
	for num < t*denom {
		t = math.Nextafter(t, math.Inf(-1))
	}
	for {
		u := math.Nextafter(t, math.Inf(1))
		if num < u*denom {
			break
		}
		t = u
	}
	return t
}

// openDot returns Σ_{r∈N(p)∩N(q)} w_pr·w_qr over the open neighborhoods.
func (e *Engine) openDot(p, q int32) float64 {
	pAdj, pW := e.G.Neighbors(p)
	qAdj, qW := e.G.Neighbors(q)
	var acc float64
	i, j := 0, 0
	for i < len(pAdj) && j < len(qAdj) {
		switch {
		case pAdj[i] < qAdj[j]:
			i++
		case pAdj[i] > qAdj[j]:
			j++
		default:
			acc += float64(pW[i]) * float64(qW[j])
			i++
			j++
		}
	}
	return acc
}

// closedDot returns the closed-neighborhood numerator. The skip arguments
// are unused hooks kept at -1; they exist so tests can exercise the raw dot.
func (e *Engine) closedDot(p, q int32, _, _ int64) float64 {
	acc := e.openDot(p, q)
	// Self terms: r=p contributes w_pp·w_qp, r=q contributes w_pq·w_qq.
	if w := e.G.EdgeWeight(p, q); w > 0 {
		acc += 2 * float64(w) * graph.SelfWeight
	}
	if p == q {
		acc += graph.SelfWeight * graph.SelfWeight
	}
	return acc
}

// Restore resets the counters to previously snapshotted values (used when
// resuming a checkpointed run).
func (c *Counters) Restore(v CounterValues) {
	c.Sims.Store(v.Sims)
	c.Pruned.Store(v.Pruned)
	c.EarlyYes.Store(v.EarlyYes)
	c.EarlyNo.Store(v.EarlyNo)
	c.Shared.Store(v.Shared)
}
