// Package simeval evaluates the weighted structural similarity of
// Definition 1 and implements the Section III-D optimizations (Lemma 5
// upper-bound pruning and early success/failure exits inside the sort-merge
// join). Every clustering algorithm in this repository funnels its
// similarity work through an Engine, so the "number of structural similarity
// calculations" axis of Fig. 7 is measured uniformly.
//
// Similarity uses the closed-neighborhood convention (see package graph):
//
//	σ(p,q) = (Σ_{r∈N[p]∩N[q]} w_pr·w_qr) / √(l_p·l_q)
//
// with implicit self-loops of weight graph.SelfWeight. For adjacent p,q the
// intersection always contains p and q themselves, contributing
// w_qp·SelfWeight + w_pq·SelfWeight to the numerator. By Cauchy–Schwarz,
// σ(p,q) ∈ [0,1].
package simeval

import (
	"math"
	"sync"
	"sync/atomic"

	"anyscan/internal/graph"
)

// counterPad separates counter cache lines. 128 bytes covers the spatial
// prefetcher pulling adjacent lines on current x86 parts.
const counterPad = 128

// PaddedInt64 is an atomic counter padded out to its own cache-line pair, so
// two adjacent counters hammered by different cores never cause false
// sharing. It embeds atomic.Int64, so Add/Load/Store work as usual.
type PaddedInt64 struct {
	atomic.Int64
	_ [counterPad - 8]byte
}

// Counters tallies similarity work.
//
// Memory-ordering contract: all writes are atomic adds and all reads are
// atomic loads, so any concurrent Snapshot observes a consistent (if
// momentarily stale) value per counter without tearing. Counter totals are
// exact only at quiescent points — after a parallel phase has joined — which
// is when the anytime machinery (Progress, Metrics, checkpoints) reads them.
// Each field sits on its own cache-line pair; sequential algorithms update
// the fields directly, while parallel algorithms route updates through
// per-worker Shards (see Shard) and pay a single uncontended atomic add.
type Counters struct {
	// Sims is the number of full similarity evaluations (a join was
	// executed, possibly with an early exit). This is the quantity plotted
	// on the left of Fig. 7.
	Sims PaddedInt64
	// Pruned counts O(1) Lemma-5 rejections that avoided a join entirely.
	Pruned PaddedInt64
	// EarlyYes / EarlyNo count joins cut short by the running-sum bounds.
	EarlyYes PaddedInt64
	EarlyNo  PaddedInt64
	// Shared counts memoized lookups that avoided recomputation (the
	// "similarity sharing" evaluations of SCAN++ in Fig. 7).
	Shared PaddedInt64

	shardMu sync.Mutex
	shards  atomic.Pointer[[]*Shard]
}

// Shard is a per-worker slice of Counters. A shard has exactly one writer
// (its worker), so its adds never contend; fields are still atomic so that a
// concurrent Snapshot (progress reporting) reads without tearing. The
// trailing pad keeps distinct shards off each other's cache lines.
type Shard struct {
	Sims, Pruned, EarlyYes, EarlyNo, Shared atomic.Int64
	_                                       [counterPad - 40]byte
}

// Shard returns worker w's counter shard, creating it on first use. The fast
// path is a single atomic pointer load; growth takes a mutex but happens at
// most O(log workers) times per Counters value.
func (c *Counters) Shard(w int) *Shard {
	if p := c.shards.Load(); p != nil && w < len(*p) && (*p)[w] != nil {
		return (*p)[w]
	}
	return c.growShard(w)
}

func (c *Counters) growShard(w int) *Shard {
	c.shardMu.Lock()
	defer c.shardMu.Unlock()
	var cur []*Shard
	if p := c.shards.Load(); p != nil {
		cur = *p
	}
	if w < len(cur) && cur[w] != nil {
		return cur[w]
	}
	next := make([]*Shard, len(cur))
	copy(next, cur)
	for len(next) <= w {
		next = append(next, nil)
	}
	for i := range next {
		if next[i] == nil {
			next[i] = new(Shard)
		}
	}
	c.shards.Store(&next)
	return next[w]
}

// Snapshot returns a plain-value copy of the counters, merging every worker
// shard into the base fields. Exact at quiescent points; see the type comment
// for the concurrent-read semantics.
func (c *Counters) Snapshot() CounterValues {
	v := CounterValues{
		Sims:     c.Sims.Load(),
		Pruned:   c.Pruned.Load(),
		EarlyYes: c.EarlyYes.Load(),
		EarlyNo:  c.EarlyNo.Load(),
		Shared:   c.Shared.Load(),
	}
	if p := c.shards.Load(); p != nil {
		for _, s := range *p {
			v.Sims += s.Sims.Load()
			v.Pruned += s.Pruned.Load()
			v.EarlyYes += s.EarlyYes.Load()
			v.EarlyNo += s.EarlyNo.Load()
			v.Shared += s.Shared.Load()
		}
	}
	return v
}

// CounterValues is a point-in-time copy of Counters.
type CounterValues struct {
	Sims, Pruned, EarlyYes, EarlyNo, Shared int64
}

// Options selects which Section III-D optimizations the engine applies.
type Options struct {
	// Lemma5 enables the O(1) upper-bound rejection of Lemma 5.
	Lemma5 bool
	// EarlyExit enables terminating the merge join as soon as the running
	// numerator crosses (success) or can no longer reach (failure) the
	// ε threshold. Only affects threshold queries, never exact Sigma values.
	EarlyExit bool
}

// AllOptimizations enables everything (the configuration anySCAN, SCAN-B and
// pSCAN run with in Section IV).
var AllOptimizations = Options{Lemma5: true, EarlyExit: true}

// Engine evaluates similarities on one graph at one ε. Safe for concurrent
// use: it is stateless apart from the atomic counters. Parallel hot paths
// should go through ForWorker, which returns a per-worker view with sharded
// counters and degree-adaptive, allocation-free join kernels.
//
// The engine works on any graph.Graph backend. On a flat *graph.CSR every
// neighbor access is a slice alias; on a compressed backend the sequential
// Engine methods decode per call, while WorkerEngine routes all accesses
// through per-worker cursors so the parallel hot paths stay allocation-free
// there too.
type Engine struct {
	G   graph.Graph
	Eps float64
	Opt Options
	C   Counters

	weMu sync.Mutex
	wes  atomic.Pointer[[]*WorkerEngine]
}

// New returns an Engine for g at threshold eps.
func New(g graph.Graph, eps float64, opt Options) *Engine {
	return &Engine{G: g, Eps: eps, Opt: opt}
}

// Sigma returns the exact similarity σ(p,q). It always runs the full join
// (no early exits) so the value is exact; it still counts as one evaluation.
func (e *Engine) Sigma(p, q int32) float64 {
	e.C.Sims.Add(1)
	num := e.closedDot(p, q, -1, -1)
	return num / (e.G.SqrtNorm(p) * e.G.SqrtNorm(q))
}

// SimilarEdge reports whether σ(p,q) ≥ ε for the *adjacent* pair (p,q) with
// known edge weight wpq, applying the enabled optimizations. This is the hot
// path of every core check.
func (e *Engine) SimilarEdge(p, q int32, wpq float32) bool {
	// Parenthesized so the predicate is exactly num >= eps*(√l_p·√l_q),
	// the form EdgeNumerator documents and package sweep replays.
	threshold := e.Eps * (e.G.SqrtNorm(p) * e.G.SqrtNorm(q))
	if e.Opt.Lemma5 {
		dp, dq := e.G.Degree(p), e.G.Degree(q)
		minD := dp
		if dq < minD {
			minD = dq
		}
		// num ≤ min(d_p,d_q)·w_p·w_q (open intersection) + 2·w_pq·SelfWeight
		// (the two closed self terms). Tighter than the paper's bound, same
		// purpose.
		bound := float64(minD)*float64(e.G.MaxWeight(p))*float64(e.G.MaxWeight(q)) +
			2*float64(wpq)*graph.SelfWeight
		if bound < threshold {
			e.C.Pruned.Add(1)
			return false
		}
	}
	e.C.Sims.Add(1)
	selfTerms := 2 * float64(wpq) * graph.SelfWeight
	if e.Opt.EarlyExit {
		return e.joinThreshold(p, q, selfTerms, threshold)
	}
	num := selfTerms + e.openDot(p, q)
	return num >= threshold
}

// Similar reports whether σ(p,q) ≥ ε for an arbitrary pair (adjacent or
// not). Slightly slower than SimilarEdge because it must look up the edge.
func (e *Engine) Similar(p, q int32) bool {
	w := e.G.EdgeWeight(p, q)
	return e.SimilarEdge(p, q, w)
}

// joinThreshold runs the merge join with running upper/lower bound exits
// (shared kernel in worker.go). The decision value is always computed as
// selfTerms + (running dot), the exact float expression of the non-early
// path, so enabling EarlyExit can never flip a boundary decision.
func (e *Engine) joinThreshold(p, q int32, selfTerms, threshold float64) bool {
	pAdj, pW := e.G.Neighbors(p)
	qAdj, qW := e.G.Neighbors(q)
	maxTerm := float64(e.G.MaxWeight(p)) * float64(e.G.MaxWeight(q))
	return mergeJoinThreshold(pAdj, pW, qAdj, qW, maxTerm, selfTerms, threshold,
		&e.C.EarlyYes.Int64, &e.C.EarlyNo.Int64)
}

// EdgeNumerator returns the closed-neighborhood numerator for the adjacent
// pair (p,q) with edge weight wpq, computed with the exact float expression
// SimilarEdge uses, plus the denominator factor √(l_p·l_q). The engine's
// similarity predicate is precisely num >= eps*denom; package sweep uses
// these to derive per-edge activation thresholds that agree bit-for-bit
// with every algorithm in this repository.
func (e *Engine) EdgeNumerator(p, q int32, wpq float32) (num, denom float64) {
	selfTerms := 2 * float64(wpq) * graph.SelfWeight
	num = selfTerms + e.openDot(p, q)
	denom = e.G.SqrtNorm(p) * e.G.SqrtNorm(q)
	return num, denom
}

// Crossing returns the largest float64 t with num >= t*denom, i.e. the
// exact boundary of the engine's similarity predicate as a function of ε.
// The sweep explorer and the query index precompute per-edge activation
// thresholds with it: computing the exact crossing (rather than the rounded
// quotient num/denom) keeps threshold replays bit-for-bit consistent with
// every algorithm that evaluates the predicate directly, even on unweighted
// graphs where σ values hit rational boundaries exactly.
func Crossing(num, denom float64) float64 {
	if denom <= 0 {
		return 0
	}
	t := num / denom
	for num < t*denom {
		t = math.Nextafter(t, math.Inf(-1))
	}
	for {
		u := math.Nextafter(t, math.Inf(1))
		if num < u*denom {
			break
		}
		t = u
	}
	return t
}

// openDot returns Σ_{r∈N(p)∩N(q)} w_pr·w_qr over the open neighborhoods.
func (e *Engine) openDot(p, q int32) float64 {
	pAdj, pW := e.G.Neighbors(p)
	qAdj, qW := e.G.Neighbors(q)
	return mergeDotSlices(pAdj, pW, qAdj, qW)
}

// closedDot returns the closed-neighborhood numerator. The skip arguments
// are unused hooks kept at -1; they exist so tests can exercise the raw dot.
func (e *Engine) closedDot(p, q int32, _, _ int64) float64 {
	acc := e.openDot(p, q)
	// Self terms: r=p contributes w_pp·w_qp, r=q contributes w_pq·w_qq.
	if w := e.G.EdgeWeight(p, q); w > 0 {
		acc += 2 * float64(w) * graph.SelfWeight
	}
	if p == q {
		acc += graph.SelfWeight * graph.SelfWeight
	}
	return acc
}

// Restore resets the counters to previously snapshotted values (used when
// resuming a checkpointed run). Quiescent-only: it zeroes every worker shard,
// so it must not race with workers updating them.
func (c *Counters) Restore(v CounterValues) {
	c.Sims.Store(v.Sims)
	c.Pruned.Store(v.Pruned)
	c.EarlyYes.Store(v.EarlyYes)
	c.EarlyNo.Store(v.EarlyNo)
	c.Shared.Store(v.Shared)
	if p := c.shards.Load(); p != nil {
		for _, s := range *p {
			s.Sims.Store(0)
			s.Pruned.Store(0)
			s.EarlyYes.Store(0)
			s.EarlyNo.Store(0)
			s.Shared.Store(0)
		}
	}
}
