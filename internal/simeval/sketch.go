package simeval

import (
	"context"
	"fmt"
	"math"

	"anyscan/internal/graph"
	"anyscan/internal/par"
)

// MinHash neighborhood sketches for approximate structural similarity
// (cf. the index-based SCAN approximation of Tseng, Dhulipala & Shun; see
// PAPERS.md). Each vertex gets k permutation minima over its *closed*
// neighborhood N[v]; the fraction of matching minima between two sketches is
// an unbiased estimator of the Jaccard similarity J(N[p], N[q]), from which
// the unweighted structural similarity σ(p,q) = |N[p]∩N[q]| / √(|N[p]|·|N[q]|)
// follows by a monotone change of variables (SigmaFromJaccard).
//
// The k permutations are synthesized from two hashes per element
// (Kirsch–Mitzenmacher double hashing): permutation i maps x to
// h1(x) + i·h2(x), so sketching a vertex costs two hash evaluations plus k
// fused multiply-adds per neighbor instead of k independent hashes.

// DefaultSketchK is the number of MinHash permutations per vertex. At k=128
// the Hoeffding half-width at the default δ=0.05 is
// √(ln(2/0.05)/(2·128)) ≈ 0.12 on Ĵ, and one sketch costs 512 bytes.
const DefaultSketchK = 128

// Sketches holds one k-permutation MinHash sketch per vertex, flat in one
// []uint32 (vertex v occupies mins[v*k : (v+1)*k]). Immutable after build;
// safe for concurrent readers.
type Sketches struct {
	k    int
	seed uint64
	mins []uint32
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixer used to derive the two per-element hashes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// elementHashes returns the double-hashing pair (h1, h2) for element x under
// the sketch seed; h2 is forced odd so the k derived permutation values
// cycle through distinct residues.
func elementHashes(seed uint64, x int32) (h1, h2 uint64) {
	h := splitmix64(seed ^ uint64(uint32(x)))
	h1 = h
	h2 = splitmix64(h) | 1
	return h1, h2
}

// BuildSketches builds the per-vertex closed-neighborhood sketches in one
// parallel pass over the graph — any backend: flat, compressed, or
// mmap-backed, via EachNeighbor. Cost is O((2|E|+|V|)·k) hash-free
// multiply-adds; per-worker graph cursors come from EachNeighbor's internal
// decoding, so the pass allocates only the sketch array itself.
func BuildSketches(ctx context.Context, g graph.Graph, k int, seed uint64, threads int) (*Sketches, error) {
	if k < 1 {
		return nil, fmt.Errorf("simeval: sketch k must be >= 1, got %d", k)
	}
	n := g.NumVertices()
	s := &Sketches{k: k, seed: seed, mins: make([]uint32, n*k)}
	err := par.ForCtx(ctx, n, threads, par.Adaptive, func(i int) {
		v := int32(i)
		row := s.mins[i*k : (i+1)*k]
		for j := range row {
			row[j] = math.MaxUint32
		}
		update := func(x int32) {
			h1, h2 := elementHashes(seed, x)
			h := h1
			for j := range row {
				if m := uint32(h >> 32); m < row[j] {
					row[j] = m
				}
				h += h2
			}
		}
		update(v) // closed neighborhood: v itself is a member
		g.EachNeighbor(v, func(_ int, q int32, _ float32) bool {
			update(q)
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// K returns the number of permutations per sketch.
func (s *Sketches) K() int { return s.k }

// Seed returns the hash seed the sketches were built with.
func (s *Sketches) Seed() uint64 { return s.seed }

// Bytes returns the resident size of the sketch array.
func (s *Sketches) Bytes() int64 { return int64(len(s.mins)) * 4 }

// EstimateJaccard returns Ĵ(p,q) = (matching permutation minima)/k, the
// unbiased MinHash estimate of the closed-neighborhood Jaccard similarity.
func (s *Sketches) EstimateJaccard(p, q int32) float64 {
	a := s.mins[int(p)*s.k : (int(p)+1)*s.k]
	b := s.mins[int(q)*s.k : (int(q)+1)*s.k]
	matches := 0
	for i := range a {
		if a[i] == b[i] {
			matches++
		}
	}
	return float64(matches) / float64(s.k)
}

// HoeffdingHalfWidth returns the two-sided Hoeffding/Chernoff confidence
// half-width t for a k-sample mean of [0,1] variables at failure probability
// δ: P(|Ĵ − J| > t) ≤ 2·exp(−2kt²) = δ, so t = √(ln(2/δ)/(2k)). δ must be in
// (0,1); smaller δ widens the band (more exact fallbacks, fewer possible
// misclassifications).
func HoeffdingHalfWidth(k int, delta float64) float64 {
	return math.Sqrt(math.Log(2/delta) / (2 * float64(k)))
}

// SigmaFromJaccard maps a closed-neighborhood Jaccard similarity to the
// unweighted structural similarity of an adjacent pair with closed
// neighborhood sizes a = deg(p)+1 and b = deg(q)+1:
//
//	|N[p]∩N[q]| = J·(a+b)/(1+J)   (from J = I/(a+b−I))
//	σ(p,q)      = |N[p]∩N[q]| / √(a·b)
//
// The map is monotone increasing in J, so a confidence interval on J
// transforms directly into one on σ. The result is clamped to [0,1] (the
// estimate Ĵ can overshoot the feasible intersection size).
func SigmaFromJaccard(j, a, b float64) float64 {
	if j <= 0 {
		return 0
	}
	sigma := j * (a + b) / ((1 + j) * math.Sqrt(a*b))
	if sigma > 1 {
		return 1
	}
	return sigma
}

// UnitWeights reports whether every edge weight in g is exactly 1.0 — the
// unweighted SCAN case MinHash sketches can estimate. Weighted graphs have
// no set-resemblance interpretation of σ, so approximate builds fall back to
// the exact pass on them.
func UnitWeights(g graph.Graph) bool {
	n := g.NumVertices()
	unit := true
	for v := int32(0); v < int32(n) && unit; v++ {
		g.EachNeighbor(v, func(_ int, _ int32, w float32) bool {
			if w != 1 {
				unit = false
				return false
			}
			return true
		})
	}
	return unit
}
