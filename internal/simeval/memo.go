package simeval

import "anyscan/internal/graph"

// MemoState is the resolution state of one arc's similarity.
type MemoState int8

// Memo states.
const (
	Unknown    MemoState = 0
	Similar    MemoState = 1
	Dissimilar MemoState = 2
)

// EdgeMemo caches the boolean outcome σ(p,q) ≥ ε per undirected edge, so an
// algorithm never evaluates the same pair twice. pSCAN relies on this to be
// work-optimal; for SCAN++ memo hits are the "similarity sharing"
// evaluations plotted in Fig. 7 (counted under Counters.Shared).
//
// Not safe for concurrent use; the exact baselines that use it are
// sequential, as in the paper.
type EdgeMemo struct {
	e     *Engine
	g     *graph.CSR
	state []MemoState
	rev   []int64
}

// NewEdgeMemo builds a memo over all arcs of the engine's graph. The memo
// needs arc-indexed lookups and the reverse-edge index, which only the flat
// CSR backend provides, so a compressed engine graph is materialized here
// (free when the engine already runs on a *graph.CSR).
func NewEdgeMemo(e *Engine) *EdgeMemo {
	g := graph.Materialize(e.G)
	return &EdgeMemo{
		e:     e,
		g:     g,
		state: make([]MemoState, g.NumArcs()),
		rev:   g.ReverseEdgeIndex(),
	}
}

// State returns the memoized state of arc without evaluating anything.
func (m *EdgeMemo) State(arc int64) MemoState { return m.state[arc] }

// Set records the outcome for an arc (and its reverse) resolved externally.
func (m *EdgeMemo) Set(arc int64, similar bool) {
	s := Dissimilar
	if similar {
		s = Similar
	}
	m.state[arc] = s
	m.state[m.rev[arc]] = s
}

// SimilarArc reports whether σ(p, head(arc)) ≥ ε, consulting the memo first.
// p must be the tail of arc.
func (m *EdgeMemo) SimilarArc(p int32, arc int64) bool {
	switch m.state[arc] {
	case Similar:
		m.e.C.Shared.Add(1)
		return true
	case Dissimilar:
		m.e.C.Shared.Add(1)
		return false
	}
	q, w := m.g.Arc(arc)
	ok := m.e.SimilarEdge(p, q, w)
	m.Set(arc, ok)
	return ok
}

// Resolved returns how many undirected edges have a memoized outcome.
func (m *EdgeMemo) Resolved() int64 {
	var c int64
	for _, s := range m.state {
		if s != Unknown {
			c++
		}
	}
	return c / 2
}
