package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
)

func mk(labels []int32, k int) *cluster.Result {
	r := cluster.NewResult(len(labels))
	copy(r.Labels, labels)
	for i, l := range labels {
		if l == cluster.NoLabel {
			r.Roles[i] = cluster.Outlier
		} else {
			r.Roles[i] = cluster.Border
		}
	}
	r.NumClusters = k
	return r
}

func TestNMIIdentical(t *testing.T) {
	a := mk([]int32{0, 0, 1, 1, cluster.NoLabel}, 2)
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(a,a) = %v, want 1", got)
	}
	if got := ARI(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI(a,a) = %v, want 1", got)
	}
}

func TestNMIRelabelInvariant(t *testing.T) {
	a := mk([]int32{0, 0, 1, 1, 2, 2}, 3)
	b := mk([]int32{2, 2, 0, 0, 1, 1}, 3)
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI under relabeling = %v, want 1", got)
	}
	if got := ARI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI under relabeling = %v, want 1", got)
	}
}

func TestNMIIndependentPartitions(t *testing.T) {
	// a splits front/back, b splits even/odd: on 4k elements MI ≈ 0.
	n := 4000
	la := make([]int32, n)
	lb := make([]int32, n)
	for i := 0; i < n; i++ {
		if i >= n/2 {
			la[i] = 1
		}
		lb[i] = int32(i % 2)
	}
	got := NMI(mk(la, 2), mk(lb, 2))
	if got > 0.01 {
		t.Errorf("NMI of independent partitions = %v, want ≈0", got)
	}
}

func TestNMIDegenerate(t *testing.T) {
	// Both single-cluster: identical.
	a := mk([]int32{0, 0, 0}, 1)
	if got := NMI(a, a); got != 1 {
		t.Errorf("single cluster NMI = %v, want 1", got)
	}
	// One trivial vs one split: 0.
	b := mk([]int32{0, 1, 0}, 2)
	if got := NMI(a, b); got != 0 {
		t.Errorf("trivial-vs-split NMI = %v, want 0", got)
	}
	// Empty results.
	if got := NMI(mk(nil, 0), mk(nil, 0)); got != 0 {
		t.Errorf("empty NMI = %v", got)
	}
}

func TestNoiseTreatedAsOneCluster(t *testing.T) {
	// Two results identical except noise: both map noise to one special
	// cluster, so agreement is perfect.
	a := mk([]int32{0, 0, cluster.NoLabel, cluster.NoLabel, 1}, 2)
	b := mk([]int32{1, 1, cluster.NoLabel, cluster.NoLabel, 0}, 2)
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI = %v, want 1", got)
	}
}

func TestKnownNMIValue(t *testing.T) {
	// Hand-computable 2×2 case: n=4, a = {0,0,1,1}, b = {0,1,1,1}.
	a := mk([]int32{0, 0, 1, 1}, 2)
	b := mk([]int32{0, 1, 1, 1}, 2)
	// H(a) = ln2. H(b) = -(1/4)ln(1/4)-(3/4)ln(3/4).
	// MI = Σ p_ij ln(p_ij/(p_i p_j)) over cells (0,0)=1/4, (0,1)=1/4, (1,1)=1/2.
	ha := math.Ln2
	hb := -(0.25*math.Log(0.25) + 0.75*math.Log(0.75))
	mi := 0.25*math.Log(0.25/(0.5*0.25)) + 0.25*math.Log(0.25/(0.5*0.75)) + 0.5*math.Log(0.5/(0.5*0.75))
	want := mi / math.Sqrt(ha*hb)
	if got := NMI(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("NMI = %v, want %v", got, want)
	}
}

func TestARISplitPenalty(t *testing.T) {
	a := mk([]int32{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	b := mk([]int32{0, 0, 1, 1, 2, 2, 3, 3}, 4)
	got := ARI(a, b)
	if got <= 0 || got >= 1 {
		t.Errorf("ARI of refinement = %v, want in (0,1)", got)
	}
}

func TestPurity(t *testing.T) {
	a := mk([]int32{0, 0, 1, 1}, 2)
	b := mk([]int32{0, 0, 0, 1}, 2)
	// Cluster a0 maps fully to b0 (2/2), cluster a1 majority 1 of {0,1}.
	if got := Purity(a, b); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Purity = %v, want 0.75", got)
	}
}

// Property: NMI and ARI are symmetric and bounded.
func TestMeasureProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		ka, kb := rng.Intn(5)+1, rng.Intn(5)+1
		la := make([]int32, n)
		lb := make([]int32, n)
		for i := 0; i < n; i++ {
			la[i] = int32(rng.Intn(ka+1) - 1) // may be -1 (noise)
			lb[i] = int32(rng.Intn(kb+1) - 1)
		}
		a, b := mk(la, ka), mk(lb, kb)
		n1, n2 := NMI(a, b), NMI(b, a)
		if math.Abs(n1-n2) > 1e-9 {
			return false
		}
		if n1 < 0 || n1 > 1 {
			return false
		}
		a1, a2 := ARI(a, b), ARI(b, a)
		if math.Abs(a1-a2) > 1e-9 {
			return false
		}
		return a1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestModularity(t *testing.T) {
	// Two disjoint triangles, clustered correctly: Q = 1 - 2·(1/2)² = 0.5.
	g, err := graph.FromUnweightedEdges(6, [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{3, 4}, {3, 5}, {4, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := mk([]int32{0, 0, 0, 1, 1, 1}, 2)
	if q := Modularity(g, r); math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("Q = %v, want 0.5", q)
	}
	// Everything in one cluster: Q = 0 (all internal, expectation 1).
	one := mk([]int32{0, 0, 0, 0, 0, 0}, 1)
	if q := Modularity(g, one); math.Abs(q) > 1e-12 {
		t.Fatalf("single-cluster Q = %v, want 0", q)
	}
	// A good clustering scores above a random-ish split.
	bad := mk([]int32{0, 1, 0, 1, 0, 1}, 2)
	if Modularity(g, bad) >= Modularity(g, r) {
		t.Fatalf("shuffled split should score below the true one")
	}
	// Empty graph.
	empty, _ := graph.FromUnweightedEdges(0, nil)
	if q := Modularity(empty, mk(nil, 0)); q != 0 {
		t.Fatalf("empty Q = %v", q)
	}
}

func TestAgreementMatchesResultScores(t *testing.T) {
	a := mk([]int32{0, 0, 1, 1, cluster.NoLabel, 2}, 3)
	b := mk([]int32{1, 1, 0, 0, 2, cluster.NoLabel}, 3)
	ari, nmi := Agreement(a, b)
	if want := ARI(a, b); math.Abs(ari-want) > 1e-12 {
		t.Errorf("Agreement ARI = %v, ARI = %v", ari, want)
	}
	if want := NMI(a, b); math.Abs(nmi-want) > 1e-12 {
		t.Errorf("Agreement NMI = %v, NMI = %v", nmi, want)
	}
	lari, lnmi := AgreementLabels(a.Labels, b.Labels)
	if math.Abs(lari-ari) > 1e-12 || math.Abs(lnmi-nmi) > 1e-12 {
		t.Errorf("AgreementLabels (%v, %v) diverges from Agreement (%v, %v)", lari, lnmi, ari, nmi)
	}
}

func TestAgreementLabelsIdenticalAndDegenerate(t *testing.T) {
	v := []int32{0, 1, 1, cluster.NoLabel, 2}
	if ari, nmi := AgreementLabels(v, v); ari != 1 || math.Abs(nmi-1) > 1e-12 {
		t.Errorf("identical vectors: (ARI, NMI) = (%v, %v), want (1, 1)", ari, nmi)
	}
	allNoise := []int32{cluster.NoLabel, cluster.NoLabel, cluster.NoLabel}
	if ari, nmi := AgreementLabels(allNoise, allNoise); ari != 1 || nmi != 1 {
		t.Errorf("all-noise vectors: (ARI, NMI) = (%v, %v), want (1, 1)", ari, nmi)
	}
}
