// Package eval provides clustering-quality measures used by the paper's
// anytime experiments: Normalized Mutual Information (NMI, the Fig. 5 and
// Fig. 8 quality axis) and the Adjusted Rand Index as a secondary check.
//
// Following the paper's convention, all noise vertices (hubs and outliers)
// are treated as members of one special cluster when comparing an
// intermediate result to the SCAN ground truth; vertices an anytime snapshot
// has not classified yet fall into the same special cluster.
package eval

import (
	"math"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
)

// labelsOf flattens a Result into one label per vertex, mapping noise and
// unclassified vertices to a single extra cluster.
func labelsOf(r *cluster.Result) ([]int, int) {
	k := r.NumClusters
	labels := make([]int, r.N())
	for v, l := range r.Labels {
		if l == cluster.NoLabel {
			labels[v] = k // special noise cluster
		} else {
			labels[v] = int(l)
		}
	}
	return labels, k + 1
}

// NMI returns the normalized mutual information between two clusterings of
// the same vertex set, using the geometric-mean normalization
// I(C;T)/√(H(C)·H(T)). The score is in [0,1]; 1 means identical partitions.
func NMI(a, b *cluster.Result) float64 {
	la, ka := labelsOf(a)
	lb, kb := labelsOf(b)
	return NMILabels(la, ka, lb, kb)
}

// NMILabels is NMI over raw label vectors with ka and kb clusters.
func NMILabels(la []int, ka int, lb []int, kb int) float64 {
	n := len(la)
	if n == 0 || n != len(lb) {
		return 0
	}
	cont := make(map[int64]int64)
	ca := make([]int64, ka)
	cb := make([]int64, kb)
	for i := 0; i < n; i++ {
		ca[la[i]]++
		cb[lb[i]]++
		cont[int64(la[i])*int64(kb)+int64(lb[i])]++
	}
	fn := float64(n)
	var ha, hb float64
	for _, c := range ca {
		if c > 0 {
			p := float64(c) / fn
			ha -= p * math.Log(p)
		}
	}
	for _, c := range cb {
		if c > 0 {
			p := float64(c) / fn
			hb -= p * math.Log(p)
		}
	}
	var mi float64
	for key, c := range cont {
		i, j := key/int64(kb), key%int64(kb)
		pij := float64(c) / fn
		pi := float64(ca[i]) / fn
		pj := float64(cb[j]) / fn
		mi += pij * math.Log(pij/(pi*pj))
	}
	if ha == 0 && hb == 0 {
		return 1 // both trivial partitions: identical
	}
	if ha == 0 || hb == 0 {
		return 0
	}
	v := mi / math.Sqrt(ha*hb)
	// Clamp tiny numeric drift.
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// ARI returns the Adjusted Rand Index between two clusterings (noise handled
// as in NMI). 1 means identical; 0 is the chance level; negative values mean
// worse than chance.
func ARI(a, b *cluster.Result) float64 {
	la, ka := labelsOf(a)
	lb, kb := labelsOf(b)
	return ARILabels(la, ka, lb, kb)
}

// ARILabels is ARI over raw label vectors with ka and kb clusters.
func ARILabels(la []int, ka int, lb []int, kb int) float64 {
	n := len(la)
	if n == 0 {
		return 1
	}
	cont := make(map[int64]int64)
	ca := make([]int64, ka)
	cb := make([]int64, kb)
	for i := 0; i < n; i++ {
		ca[la[i]]++
		cb[lb[i]]++
		cont[int64(la[i])*int64(kb)+int64(lb[i])]++
	}
	choose2 := func(x int64) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumA, sumB float64
	for _, c := range cont {
		sumIJ += choose2(c)
	}
	for _, c := range ca {
		sumA += choose2(c)
	}
	for _, c := range cb {
		sumB += choose2(c)
	}
	total := choose2(int64(n))
	if total == 0 {
		return 1
	}
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1
	}
	return (sumIJ - expected) / (maxIdx - expected)
}

// Agreement returns (ARI, NMI) between two clusterings in one call — the
// pair of accuracy scores the approximate-similarity experiments record per
// (dataset, δ) cell.
func Agreement(a, b *cluster.Result) (ari, nmi float64) {
	la, ka := labelsOf(a)
	lb, kb := labelsOf(b)
	return ARILabels(la, ka, lb, kb), NMILabels(la, ka, lb, kb)
}

// AgreementLabels returns (ARI, NMI) between two per-vertex label vectors in
// the wire form assignment payloads use: dense cluster ids with
// cluster.NoLabel (-1) marking noise. Noise folds into one special cluster,
// matching Agreement over cluster.Results.
func AgreementLabels(a, b []int32) (ari, nmi float64) {
	la, ka := flatten(a)
	lb, kb := flatten(b)
	return ARILabels(la, ka, lb, kb), NMILabels(la, ka, lb, kb)
}

// flatten maps a wire-form label vector to dense non-negative labels, noise
// becoming one extra cluster (mirroring labelsOf without a Result).
func flatten(labels []int32) ([]int, int) {
	k := 0
	for _, l := range labels {
		if int(l) >= k {
			k = int(l) + 1
		}
	}
	out := make([]int, len(labels))
	for i, l := range labels {
		if l == cluster.NoLabel {
			out[i] = k
		} else {
			out[i] = int(l)
		}
	}
	return out, k + 1
}

// Purity returns the fraction of vertices whose cluster in a maps to the
// majority co-cluster in b. A coarse sanity measure used in tests.
func Purity(a, b *cluster.Result) float64 {
	la, _ := labelsOf(a)
	lb, kb := labelsOf(b)
	n := len(la)
	if n == 0 {
		return 1
	}
	perCluster := make(map[int]map[int]int)
	for i := 0; i < n; i++ {
		m, ok := perCluster[la[i]]
		if !ok {
			m = make(map[int]int, kb)
			perCluster[la[i]] = m
		}
		m[lb[i]]++
	}
	correct := 0
	for _, m := range perCluster {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(n)
}

// Modularity returns the Newman weighted modularity Q of a clustering:
// the fraction of edge weight inside clusters minus the expectation under
// the configuration model. Noise vertices count as singletons. Q ∈
// [-0.5, 1); higher means stronger community structure. Useful for judging
// a clustering when no ground truth exists (the modularity-based methods
// the paper's introduction contrasts SCAN with optimize Q directly).
func Modularity(g *graph.CSR, r *cluster.Result) float64 {
	var m2 float64 // total weight × 2 (both arc directions)
	n := int32(g.NumVertices())
	for v := int32(0); v < n; v++ {
		_, wts := g.Neighbors(v)
		for _, w := range wts {
			m2 += float64(w)
		}
	}
	if m2 == 0 {
		return 0
	}
	// Community of each vertex; noise = unique singleton communities.
	comm := make([]int32, n)
	next := int32(r.NumClusters)
	for v := int32(0); v < n; v++ {
		if l := r.Labels[v]; l != cluster.NoLabel {
			comm[v] = l
		} else {
			comm[v] = next
			next++
		}
	}
	intra := map[int32]float64{}  // Σ internal arc weight per community
	degree := map[int32]float64{} // Σ weighted degree per community
	for v := int32(0); v < n; v++ {
		adj, wts := g.Neighbors(v)
		for i, q := range adj {
			w := float64(wts[i])
			degree[comm[v]] += w
			if comm[v] == comm[q] {
				intra[comm[v]] += w
			}
		}
	}
	var q float64
	for c, d := range degree {
		q += intra[c]/m2 - (d/m2)*(d/m2)
	}
	return q
}
