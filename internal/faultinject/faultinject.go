// Package faultinject provides deterministic I/O fault injection for
// robustness tests: writers that fail or short-write after a byte budget,
// readers that truncate or flip bits at chosen offsets, and named fault
// points that production code can embed at crash-critical boundaries
// (e.g. "after the temp file is written, before the rename").
//
// Fault points are globally disarmed by default and cost one atomic load
// when disarmed, so shipping them in production paths is free. Tests arm a
// point, run the scenario, and assert that the injected fault surfaces as a
// clean returned error — never a panic, never silent corruption.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// ErrInjected is the sentinel error produced by injected faults, so tests
// can tell an injected failure apart from a genuine one with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// FailingWriter wraps W and fails once FailAfter bytes have been written.
// The write that crosses the budget is truncated to the remaining budget and
// returns the short count together with the error, modeling a device that
// runs out of space or a process killed mid-write.
type FailingWriter struct {
	W         io.Writer
	FailAfter int64 // bytes accepted before failing
	Err       error // error to return; nil → ErrInjected

	written int64
}

// Written returns the number of bytes accepted before (and including) the
// failing write.
func (f *FailingWriter) Written() int64 { return f.written }

func (f *FailingWriter) Write(p []byte) (int, error) {
	errOut := f.Err
	if errOut == nil {
		errOut = ErrInjected
	}
	remaining := f.FailAfter - f.written
	if remaining <= 0 {
		return 0, errOut
	}
	if int64(len(p)) <= remaining {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	n, err := f.W.Write(p[:remaining])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, errOut
}

// ShortWriter wraps W and accepts at most Budget bytes in total: the write
// that would cross the budget is truncated at the boundary and returns
// io.ErrShortWrite, as the io.Writer contract requires for partial writes.
// It exercises caller handling of partial writes.
type ShortWriter struct {
	W      io.Writer
	Budget int64

	written int64
}

func (s *ShortWriter) Write(p []byte) (int, error) {
	remaining := s.Budget - s.written
	if remaining >= int64(len(p)) {
		n, err := s.W.Write(p)
		s.written += int64(n)
		return n, err
	}
	if remaining < 0 {
		remaining = 0
	}
	n, err := s.W.Write(p[:remaining])
	s.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, io.ErrShortWrite
}

// TruncatingReader yields only the first Limit bytes of R and then reports
// io.ErrUnexpectedEOF, modeling a file truncated by a crash. A Limit beyond
// the underlying stream simply passes EOF through.
type TruncatingReader struct {
	R     io.Reader
	Limit int64

	read int64
}

func (t *TruncatingReader) Read(p []byte) (int, error) {
	remaining := t.Limit - t.read
	if remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > remaining {
		p = p[:remaining]
	}
	n, err := t.R.Read(p)
	t.read += int64(n)
	return n, err
}

// BitFlipReader passes R through with the bits of Mask XOR-ed into the byte
// at stream offset Offset, modeling silent single-byte corruption (bad
// sector, cosmic ray, buggy transport).
type BitFlipReader struct {
	R      io.Reader
	Offset int64
	Mask   byte // bits to flip; 0 → 0xFF (flip all)

	pos int64
}

func (b *BitFlipReader) Read(p []byte) (int, error) {
	n, err := b.R.Read(p)
	if n > 0 && b.Offset >= b.pos && b.Offset < b.pos+int64(n) {
		mask := b.Mask
		if mask == 0 {
			mask = 0xFF
		}
		p[b.Offset-b.pos] ^= mask
	}
	b.pos += int64(n)
	return n, err
}

// --- Named fault points ---------------------------------------------------

var (
	armed  atomic.Bool // fast path: no faults armed anywhere
	mu     sync.Mutex
	points map[string]*point
)

type point struct {
	remaining int  // hits left before the fault fires
	sustained bool // fire on every hit from the scheduled one onward
	err       error
	hits      int
}

// Arm schedules the named fault point to fail on its nth future hit
// (n = 1 fails the very next hit) with the given error (nil → ErrInjected).
// Arming replaces any previous schedule for the point.
func Arm(name string, n int, err error) {
	if n < 1 {
		n = 1
	}
	if err == nil {
		err = fmt.Errorf("%w at %q", ErrInjected, name)
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	points[name] = &point{remaining: n, err: err}
	armed.Store(true)
}

// ArmAlways schedules the named fault point to fail on every future hit until
// Disarm or Reset, with the given error (nil → ErrInjected). Unlike Arm the
// point does not disarm itself after firing, which models a sustained outage
// (a dependency that stays down) rather than a one-shot crash: chaos tests
// arm it, drive traffic that must degrade gracefully the whole time, then
// disarm and assert recovery.
func ArmAlways(name string, err error) {
	if err == nil {
		err = fmt.Errorf("%w at %q", ErrInjected, name)
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	points[name] = &point{remaining: 1, sustained: true, err: err}
	armed.Store(true)
}

// Disarm removes any schedule for the named fault point.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every fault point. Tests should defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	armed.Store(false)
}

// Hit marks one pass through the named fault point. It returns nil unless
// the point is armed and this hit is the scheduled one, in which case it
// returns the armed error and disarms the point. Production code checks the
// returned error exactly as it would a real I/O failure at that boundary.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return nil
	}
	p.hits++
	if p.remaining > 0 {
		p.remaining--
	}
	if p.remaining > 0 {
		return nil
	}
	if !p.sustained {
		delete(points, name)
		armed.Store(len(points) > 0)
	}
	return p.err
}

// Hits reports how many times the named point was hit since it was last
// armed; 0 when the point is not currently armed.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}
