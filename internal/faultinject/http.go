package faultinject

import (
	"context"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// HTTPChaos is an injectable HTTP middleware for chaos testing a service
// front door. Faults are configured at runtime (typically by a test, before
// or while traffic flows) and applied deterministically — "every nth
// request" counters rather than probabilities — so failing runs reproduce:
//
//   - added latency before the handler runs (a slow dependency),
//   - synthetic 5xx responses (a crashed backend),
//   - abrupt connection resets (a flaky LB or killed pod),
//   - slow-loris request bodies (a byte-at-a-time client), throttling every
//     body read so handlers that trust the client to be prompt hang unless
//     they bound reads with a deadline.
//
// The zero value injects nothing and adds one atomic load per request, so a
// HTTPChaos can stay wired into a server across its whole test suite.
type HTTPChaos struct {
	active atomic.Bool // fast path: no faults configured

	latency      atomic.Int64 // nanoseconds added before the handler
	latencyEvery atomic.Int64 // apply latency to every nth request (0 = off)
	latencyN     atomic.Int64

	errCode  atomic.Int64 // status code for synthetic failures (0 = off)
	errEvery atomic.Int64
	errN     atomic.Int64

	resetEvery atomic.Int64 // abruptly close every nth connection (0 = off)
	resetN     atomic.Int64

	bodyDelay atomic.Int64 // nanoseconds per request-body read (0 = off)

	// Injected counts each fault actually fired, so tests can assert the
	// chaos really happened (a passing test with zero injected faults proves
	// nothing).
	Injected atomic.Int64
}

// InjectLatency delays every nth request by d before it reaches the handler
// (every = 1 delays all requests). The sleep aborts early when the request
// context is cancelled.
func (c *HTTPChaos) InjectLatency(d time.Duration, every int) {
	c.latency.Store(int64(d))
	c.latencyEvery.Store(int64(every))
	c.active.Store(true)
}

// InjectErrors answers every nth request with the given status code and a
// short plain-text body, without invoking the handler.
func (c *HTTPChaos) InjectErrors(code, every int) {
	c.errCode.Store(int64(code))
	c.errEvery.Store(int64(every))
	c.active.Store(true)
}

// InjectResets abruptly closes every nth request's underlying connection
// (SO_LINGER 0 when the transport allows it, so the peer observes a reset
// rather than a graceful close).
func (c *HTTPChaos) InjectResets(every int) {
	c.resetEvery.Store(int64(every))
	c.active.Store(true)
}

// InjectSlowBody throttles request-body reads: each Read sleeps d first,
// modeling a slow-loris client trickling its payload. Handlers bounded by a
// read/context deadline fail fast; unbounded ones hang — which is exactly
// what the chaos suite wants to detect.
func (c *HTTPChaos) InjectSlowBody(d time.Duration) {
	c.bodyDelay.Store(int64(d))
	c.active.Store(true)
}

// Clear removes every configured fault (injected counts are retained).
func (c *HTTPChaos) Clear() {
	c.latency.Store(0)
	c.latencyEvery.Store(0)
	c.errCode.Store(0)
	c.errEvery.Store(0)
	c.resetEvery.Store(0)
	c.bodyDelay.Store(0)
	c.active.Store(false)
}

// nth returns true on every everyth increment of n (every <= 0 never fires).
func nth(n, every *atomic.Int64) bool {
	e := every.Load()
	if e <= 0 {
		return false
	}
	return n.Add(1)%e == 0
}

// Middleware wraps next with the configured faults. It is safe to install
// permanently: with no faults configured requests pass straight through.
func (c *HTTPChaos) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !c.active.Load() {
			next.ServeHTTP(w, r)
			return
		}
		if nth(&c.resetN, &c.resetEvery) {
			c.Injected.Add(1)
			abortConnection(w)
			return
		}
		if code := c.errCode.Load(); code != 0 && nth(&c.errN, &c.errEvery) {
			c.Injected.Add(1)
			http.Error(w, "faultinject: synthetic failure", int(code))
			return
		}
		if d := time.Duration(c.latency.Load()); d > 0 && nth(&c.latencyN, &c.latencyEvery) {
			c.Injected.Add(1)
			select {
			case <-time.After(d):
			case <-r.Context().Done():
			}
		}
		if d := time.Duration(c.bodyDelay.Load()); d > 0 && r.Body != nil {
			c.Injected.Add(1)
			r.Body = &slowBody{rc: r.Body, delay: d, ctx: r.Context()}
		}
		next.ServeHTTP(w, r)
	})
}

// abortConnection hijacks the response's connection and closes it without a
// response. SetLinger(0) turns the close into a TCP RST so clients observe a
// reset instead of an empty reply.
func abortConnection(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No hijack support (e.g. HTTP/2): the closest available fault is
		// dropping the request on the floor with a bare 5xx.
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// slowBody throttles each Read of a request body by delay, aborting promptly
// when the request context is done so a deadline-bounded handler escapes.
type slowBody struct {
	rc    io.ReadCloser
	delay time.Duration
	ctx   context.Context
}

func (b *slowBody) Read(p []byte) (int, error) {
	select {
	case <-time.After(b.delay):
	case <-b.ctx.Done():
		return 0, b.ctx.Err()
	}
	// Trickle: cap each read at a few bytes so large payloads take many
	// delayed round trips, like a real slow-loris peer.
	if len(p) > 16 {
		p = p[:16]
	}
	return b.rc.Read(p)
}

func (b *slowBody) Close() error { return b.rc.Close() }
