package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFailingWriterBudget(t *testing.T) {
	var buf bytes.Buffer
	fw := &FailingWriter{W: &buf, FailAfter: 10}
	n, err := fw.Write(make([]byte, 6))
	if n != 6 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = fw.Write(make([]byte, 6))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v, want 4, ErrInjected", n, err)
	}
	if buf.Len() != 10 {
		t.Fatalf("underlying writer got %d bytes, want 10", buf.Len())
	}
	if n, err = fw.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write: n=%d err=%v", n, err)
	}
}

func TestFailingWriterCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	fw := &FailingWriter{W: io.Discard, FailAfter: 0, Err: sentinel}
	if _, err := fw.Write([]byte("x")); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	sw := &ShortWriter{W: &buf, Budget: 6}
	if n, err := sw.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("within budget: n=%d err=%v", n, err)
	}
	n, err := sw.Write([]byte("efgh"))
	if n != 2 || err != io.ErrShortWrite {
		t.Fatalf("crossing budget: n=%d err=%v, want 2, ErrShortWrite", n, err)
	}
	if buf.String() != "abcdef" {
		t.Fatalf("underlying content %q", buf.String())
	}
	if n, err := sw.Write([]byte("ij")); n != 0 || err != io.ErrShortWrite {
		t.Fatalf("past budget: n=%d err=%v, want 0, ErrShortWrite", n, err)
	}
}

func TestTruncatingReader(t *testing.T) {
	tr := &TruncatingReader{R: bytes.NewReader([]byte("0123456789")), Limit: 4}
	got, err := io.ReadAll(tr)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if string(got) != "0123" {
		t.Fatalf("read %q, want 0123", got)
	}
}

func TestBitFlipReader(t *testing.T) {
	src := []byte("hello world")
	bf := &BitFlipReader{R: bytes.NewReader(src), Offset: 6, Mask: 0x01}
	got, err := io.ReadAll(bf)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), src...)
	want[6] ^= 0x01
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

func TestBitFlipReaderAcrossSmallReads(t *testing.T) {
	src := []byte("abcdefgh")
	bf := &BitFlipReader{R: iotest{bytes.NewReader(src)}, Offset: 5} // Mask 0 → flip all
	got, err := io.ReadAll(bf)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), src...)
	want[5] ^= 0xFF
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

// iotest forces one-byte reads so the flip offset lands mid-stream.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestFaultPointFiresOnNthHit(t *testing.T) {
	defer Reset()
	Arm("p", 3, nil)
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("hit 2 fired early: %v", err)
	}
	if err := Hit("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3: err = %v, want ErrInjected", err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("point did not disarm after firing: %v", err)
	}
}

func TestFaultPointDisarmedIsFree(t *testing.T) {
	Reset()
	if err := Hit("never-armed"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestFaultPointCustomError(t *testing.T) {
	defer Reset()
	sentinel := errors.New("simulated crash")
	Arm("q", 1, sentinel)
	if err := Hit("q"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
