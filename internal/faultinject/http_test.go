package faultinject

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})
}

func TestHTTPChaosPassthrough(t *testing.T) {
	var chaos HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(okHandler()))
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("zero-value chaos altered a request: %d", resp.StatusCode)
		}
	}
	if chaos.Injected.Load() != 0 {
		t.Fatal("zero-value chaos injected faults")
	}
}

func TestHTTPChaosErrorsEveryNth(t *testing.T) {
	var chaos HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(okHandler()))
	defer ts.Close()
	chaos.InjectErrors(http.StatusServiceUnavailable, 2)

	var codes []int
	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	var injected int
	for i, code := range codes {
		want := http.StatusOK
		if (i+1)%2 == 0 {
			want = http.StatusServiceUnavailable
		}
		if code != want {
			t.Fatalf("request %d: status %d, want %d (deterministic every-2nd)", i, code, want)
		}
		if code != http.StatusOK {
			injected++
		}
	}
	if got := chaos.Injected.Load(); got != int64(injected) {
		t.Fatalf("Injected = %d, want %d", got, injected)
	}

	chaos.Clear()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("Clear did not stop error injection")
	}
}

func TestHTTPChaosLatency(t *testing.T) {
	var chaos HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(okHandler()))
	defer ts.Close()
	const delay = 50 * time.Millisecond
	chaos.InjectLatency(delay, 1)

	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("request finished in %v despite %v injected latency", elapsed, delay)
	}
	if chaos.Injected.Load() == 0 {
		t.Fatal("latency fault did not count as injected")
	}
}

func TestHTTPChaosLatencyAbortsOnCancel(t *testing.T) {
	var chaos HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(okHandler()))
	defer ts.Close()
	chaos.InjectLatency(30*time.Second, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled request held the connection %v; the injected sleep ignores ctx", elapsed)
	}
}

func TestHTTPChaosResets(t *testing.T) {
	var chaos HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(okHandler()))
	defer ts.Close()
	chaos.InjectResets(1)

	if _, err := http.Get(ts.URL); err == nil {
		t.Fatal("request on a reset connection succeeded")
	}
	chaos.Clear()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("request after Clear: %v", err)
	}
	resp.Body.Close()
}

func TestHTTPChaosSlowBody(t *testing.T) {
	bodyLen := 0
	var chaos HTTPChaos
	ts := httptest.NewServer(chaos.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		bodyLen = len(data)
		w.WriteHeader(http.StatusOK)
	})))
	defer ts.Close()
	chaos.InjectSlowBody(time.Millisecond)

	payload := strings.Repeat("x", 160) // ≥ 10 throttled 16-byte reads
	start := time.Now()
	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow-body request failed: %d", resp.StatusCode)
	}
	if bodyLen != len(payload) {
		t.Fatalf("handler read %d bytes of %d; throttling corrupted the body", bodyLen, len(payload))
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("160-byte body at 1ms per 16-byte read arrived in %v", elapsed)
	}
}
