// Package par provides a dynamically scheduled parallel-for primitive.
//
// It is the Go equivalent of the paper's
// "#pragma omp parallel for schedule(dynamic)" loops (Fig. 4): a fixed pool
// of workers repeatedly grabs chunks of the iteration space from an atomic
// cursor, so vertices with wildly different neighborhood sizes still load-
// balance well.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the number of loop iterations a worker claims at once when
// the caller does not specify a grain. Small enough to balance skewed work,
// large enough to keep the atomic cursor off the hot path.
const DefaultGrain = 64

// For executes fn(i) for every i in [0, n) using the given number of
// workers. fn must be safe for concurrent invocation on distinct indices.
// workers <= 1 runs inline on the calling goroutine, which keeps the
// sequential configuration free of any goroutine or synchronization
// overhead (the paper's non-parallel anySCAN).
func For(n, workers, grain int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if workers == 1 || n <= grain {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n/2 {
		workers = n/2 + 1
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForWorker is like For but also passes the worker id (in [0, workers)) to
// fn, so callers can maintain per-worker scratch buffers without allocation
// or false sharing. workers <= 1 runs inline with worker id 0.
func ForWorker(n, workers, grain int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if workers == 1 || n <= grain {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n/2 {
		workers = n/2 + 1
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}
