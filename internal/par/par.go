// Package par provides a dynamically scheduled parallel-for primitive.
//
// It is the Go equivalent of the paper's
// "#pragma omp parallel for schedule(dynamic)" loops (Fig. 4): a fixed pool
// of workers repeatedly grabs chunks of the iteration space from an atomic
// cursor, so vertices with wildly different neighborhood sizes still load-
// balance well.
//
// All variants are panic-safe: a panic inside fn on any worker goroutine is
// recovered, the remaining workers drain, and the panic is re-raised on the
// calling goroutine wrapped in a *WorkerPanic that carries the original
// value and the worker's stack trace. Without this, a single panicking
// worker would crash the whole process (goroutine panics cannot be recovered
// by the caller), which is unacceptable for a long anytime run.
//
// The Ctx variants additionally poll a context between chunks, so a large
// block can be interrupted from the inside rather than only at block
// boundaries.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the historical fixed chunk size. It remains exported for
// callers that want a known grain, but since the adaptive scheduler landed
// the recommended way to pick a grain is to pass Adaptive (or any value
// <= 0) and let Grain scale the chunk to the loop.
const DefaultGrain = 64

// Adaptive, passed as the grain argument, asks the scheduler to size chunks
// from the iteration count and worker count via Grain.
const Adaptive = 0

// Adaptive grain bounds: at least chunksPerWorker chunks per worker so
// skewed per-item costs still balance, with the chunk clamped so tiny loops
// do not thrash the atomic cursor and huge loops do not starve stragglers.
const (
	chunksPerWorker = 16
	minGrain        = 8
	maxGrain        = 2048
)

// Grain returns the adaptive chunk size used when a parallel-for is called
// with grain <= 0: n/(workers·chunksPerWorker), clamped to
// [minGrain, maxGrain]. Dividing each worker's share into chunksPerWorker
// pieces keeps dynamic scheduling effective on degree-skewed graphs (the
// paper's GR02/GR03 load-balance concern) while touching the shared cursor
// O(workers·chunksPerWorker) times instead of O(n/DefaultGrain).
func Grain(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := n / (workers * chunksPerWorker)
	if g < minGrain {
		return minGrain
	}
	if g > maxGrain {
		return maxGrain
	}
	return g
}

// defaultWorkers returns the worker count used when a caller passes <= 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// WorkerPanic wraps a panic recovered from a parallel-for worker goroutine.
// It is re-raised (via panic) on the goroutine that called For/ForWorker/
// ForCtx/ForWorkerCtx, so callers can recover it where they expect to.
type WorkerPanic struct {
	// Value is the value originally passed to panic inside fn.
	Value any
	// Stack is the worker goroutine's stack at the time of the panic.
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v\nworker stack:\n%s", p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As work through a recovered WorkerPanic.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// For executes fn(i) for every i in [0, n) using the given number of
// workers. fn must be safe for concurrent invocation on distinct indices.
// workers <= 1 runs inline on the calling goroutine, which keeps the
// sequential configuration free of any goroutine or synchronization
// overhead (the paper's non-parallel anySCAN).
func For(n, workers, grain int, fn func(i int)) {
	ForWorkerCtx(nil, n, workers, grain, func(_, i int) { fn(i) })
}

// ForWorker is like For but also passes the worker id (in [0, workers)) to
// fn, so callers can maintain per-worker scratch buffers without allocation
// or false sharing. workers <= 1 runs inline with worker id 0.
func ForWorker(n, workers, grain int, fn func(worker, i int)) {
	ForWorkerCtx(nil, n, workers, grain, fn)
}

// ForCtx is For with cooperative cancellation: between chunks each worker
// polls ctx and stops claiming new work once it is done. Indices already
// claimed are still completed (fn is never abandoned mid-call), so on return
// every index was either fully processed or not started. Returns ctx.Err()
// when the loop was cut short, nil when every index ran. A nil ctx disables
// polling.
func ForCtx(ctx context.Context, n, workers, grain int, fn func(i int)) error {
	return ForWorkerCtx(ctx, n, workers, grain, func(_, i int) { fn(i) })
}

// ForWorkerCtx is ForWorker with the cooperative cancellation of ForCtx.
func ForWorkerCtx(ctx context.Context, n, workers, grain int, fn func(worker, i int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if grain <= 0 {
		grain = Grain(n, workers)
	}
	if workers == 1 || n <= grain {
		// Inline: no goroutine, panics propagate naturally on the caller.
		for i := 0; i < n; i++ {
			if ctx != nil && i%grain == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(0, i)
		}
		return nil
	}
	if workers > n/2 {
		workers = n/2 + 1
	}

	var (
		cursor  atomic.Int64
		stop    atomic.Bool // set on cancellation or worker panic
		panicMu sync.Mutex
		wp      *WorkerPanic // first recovered panic wins
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if wp == nil {
						wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
					}
					panicMu.Unlock()
					stop.Store(true)
				}
			}()
			for {
				if stop.Load() {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					stop.Store(true)
					return
				}
				start := int(cursor.Add(int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
	if ctx != nil && stop.Load() {
		return ctx.Err()
	}
	return nil
}
