package par

import (
	"context"
	"unsafe"
)

// accPadBytes separates per-worker accumulator slots so that two workers
// folding into adjacent slots never share a cache line (128 bytes covers the
// adjacent-line prefetcher on current x86 parts).
const accPadBytes = 128

// Reduce executes body(worker, i, acc) for every i in [0, n) with the given
// number of workers and folds the per-worker partial results with merge.
//
// Each worker threads its own accumulator (starting from the zero value of T)
// through its body invocations, so body needs no synchronization and no
// allocation; accumulator slots are padded apart to avoid false sharing.
// After the implicit barrier the partials are folded sequentially in worker
// order on the calling goroutine. For a deterministic result independent of
// how the dynamic scheduler splits the iteration space, merge and the
// per-item fold must be associative and commutative (true for the counter
// and max/min reductions this repository uses; floating-point sums are
// deterministic only for workers == 1).
//
// workers and grain follow the For conventions: workers <= 0 means
// GOMAXPROCS, workers == 1 runs inline, grain <= 0 selects the adaptive
// chunk size of Grain.
func Reduce[T any](n, workers, grain int, body func(worker, i int, acc T) T, merge func(a, b T) T) T {
	out, _ := ReduceCtx(nil, n, workers, grain, body, merge)
	return out
}

// ReduceCtx is Reduce with the cooperative cancellation of ForCtx: between
// chunks each worker polls ctx and stops claiming new work once it is done.
// When the loop is cut short ReduceCtx returns the zero value of T and
// ctx.Err() — partial reductions are never exposed, because a caller cannot
// tell which indices contributed. A nil ctx disables polling (and ReduceCtx
// then never errors).
func ReduceCtx[T any](ctx context.Context, n, workers, grain int, body func(worker, i int, acc T) T, merge func(a, b T) T) (T, error) {
	var zero T
	if n <= 0 {
		return zero, nil
	}
	if workers <= 0 {
		workers = defaultWorkers()
	}
	// Stride the accumulators so consecutive workers' slots are at least
	// accPadBytes apart. max(1, ...) keeps huge T values working.
	stride := 1
	if sz := unsafe.Sizeof(zero); sz > 0 && sz < accPadBytes {
		stride = int(accPadBytes/sz) + 1
	}
	accs := make([]T, workers*stride)
	if err := ForWorkerCtx(ctx, n, workers, grain, func(w, i int) {
		accs[w*stride] = body(w, i, accs[w*stride])
	}); err != nil {
		return zero, err
	}
	out := accs[0]
	for w := 1; w < workers; w++ {
		out = merge(out, accs[w*stride])
	}
	return out, nil
}
