package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, 8, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const n, workers = 500, 4
	var bad atomic.Int32
	counts := make([]int64, workers)
	ForWorker(n, workers, 4, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
			return
		}
		atomic.AddInt64(&counts[w], 1)
	})
	if bad.Load() != 0 {
		t.Fatalf("%d out-of-range worker ids", bad.Load())
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("total iterations %d, want %d", total, n)
	}
}

func TestForSequentialIsInline(t *testing.T) {
	// workers=1 must execute on the calling goroutine, in order.
	var order []int
	For(10, 1, 3, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestForDefaults(t *testing.T) {
	var count atomic.Int64
	For(100, 0, 0, func(i int) { count.Add(1) }) // workers/grain defaults
	if count.Load() != 100 {
		t.Fatalf("count = %d", count.Load())
	}
	ForWorker(100, 0, 0, func(w, i int) { count.Add(1) })
	if count.Load() != 200 {
		t.Fatalf("count = %d", count.Load())
	}
}

// Property: a parallel sum equals the sequential sum for any n/workers/grain.
func TestForSumProperty(t *testing.T) {
	f := func(nRaw uint16, workersRaw, grainRaw uint8) bool {
		n := int(nRaw) % 2000
		workers := int(workersRaw)%8 + 1
		grain := int(grainRaw)%50 + 1
		var sum atomic.Int64
		For(n, workers, grain, func(i int) { sum.Add(int64(i)) })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForCtxNilCtxRunsToCompletion(t *testing.T) {
	var count atomic.Int64
	if err := ForCtx(nil, 500, 4, 8, func(i int) { count.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 500 {
		t.Fatalf("count = %d, want 500", count.Load())
	}
}

func TestForCtxPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var count atomic.Int64
		err := ForCtx(ctx, 1000, workers, 8, func(i int) { count.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if count.Load() != 0 {
			t.Fatalf("workers=%d: %d iterations ran under a pre-canceled ctx", workers, count.Load())
		}
	}
}

func TestForCtxCancelMidRunStopsEarly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var count atomic.Int64
		err := ForCtx(ctx, 1<<20, workers, 8, func(i int) {
			if count.Add(1) == 100 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Claimed chunks still complete, but the loop must stop well short
		// of the full iteration space.
		if got := count.Load(); got >= 1<<20 {
			t.Fatalf("workers=%d: cancellation ignored, all %d iterations ran", workers, got)
		}
	}
}

func TestForCtxCompletedIndicesAreContiguousChunks(t *testing.T) {
	// Every index is either fully processed or never started: fn is not
	// abandoned mid-call, so the hit set must be exactly the set of claimed
	// chunks (each chunk complete).
	const n, grain = 4096, 16
	ctx, cancel := context.WithCancel(context.Background())
	hits := make([]int32, n)
	var count atomic.Int64
	ForCtx(ctx, n, 4, grain, func(i int) {
		atomic.StoreInt32(&hits[i], 1)
		if count.Add(1) == 64 {
			cancel()
		}
	})
	for c := 0; c < n/grain; c++ {
		first := hits[c*grain]
		for i := c*grain + 1; i < (c+1)*grain; i++ {
			if hits[i] != first {
				t.Fatalf("chunk %d partially executed", c)
			}
		}
	}
}

func TestWorkerPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{2, 8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *WorkerPanic", workers, r)
				}
				if wp.Value != "boom" {
					t.Fatalf("workers=%d: panic value %v, want boom", workers, wp.Value)
				}
				if len(wp.Stack) == 0 {
					t.Fatalf("workers=%d: worker stack not captured", workers)
				}
			}()
			For(10000, workers, 4, func(i int) {
				if i == 777 {
					panic("boom")
				}
			})
		}()
	}
}

func TestWorkerPanicStopsOtherWorkers(t *testing.T) {
	var count atomic.Int64
	func() {
		defer func() { recover() }()
		For(1<<20, 4, 4, func(i int) {
			if count.Add(1) == 50 {
				panic("stop")
			}
		})
	}()
	if got := count.Load(); got >= 1<<20 {
		t.Fatalf("workers kept running after a panic: %d iterations", got)
	}
}

func TestWorkerPanicUnwrapsErrors(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *WorkerPanic", r)
		}
		if !errors.Is(wp, sentinel) {
			t.Fatalf("errors.Is failed to see through WorkerPanic: %v", wp)
		}
	}()
	For(1000, 4, 4, func(i int) {
		if i == 500 {
			panic(sentinel)
		}
	})
}

func TestGrainBoundsAndScaling(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{0, 4, minGrain},                  // empty loop: clamp floor
		{100, 4, minGrain},                // small loop: clamp floor
		{1 << 20, 4, maxGrain},            // huge loop: clamp ceiling
		{64 * chunksPerWorker * 4, 4, 64}, // in range: n/(workers·chunks)
	}
	for _, c := range cases {
		if got := Grain(c.n, c.workers); got != c.want {
			t.Errorf("Grain(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
	// More workers must never increase the grain (finer chunks balance better).
	if Grain(1<<16, 16) > Grain(1<<16, 2) {
		t.Error("grain grew with worker count")
	}
}

func TestAdaptiveGrainCoversAllIndices(t *testing.T) {
	for _, n := range []int{1, 63, 4096, 100000} {
		hits := make([]int32, n)
		ForWorker(n, 4, Adaptive, func(w, i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times under adaptive grain", n, i, h)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 10, 4096} {
			got := Reduce(n, workers, Adaptive,
				func(_, i int, acc int64) int64 { return acc + int64(i) },
				func(a, b int64) int64 { return a + b })
			want := int64(n) * int64(n-1) / 2
			if got != want {
				t.Fatalf("workers=%d n=%d: sum = %d, want %d", workers, n, got, want)
			}
		}
	}
}

func TestReduceStructAccumulator(t *testing.T) {
	type stats struct{ count, max int64 }
	got := Reduce(1000, 4, 7,
		func(_, i int, acc stats) stats {
			acc.count++
			if int64(i) > acc.max {
				acc.max = int64(i)
			}
			return acc
		},
		func(a, b stats) stats {
			a.count += b.count
			if b.max > a.max {
				a.max = b.max
			}
			return a
		})
	if got.count != 1000 || got.max != 999 {
		t.Fatalf("got %+v, want {1000 999}", got)
	}
}

func TestReduceWorkerSlotsAreIsolated(t *testing.T) {
	// Each body call must see exactly the accumulator its own worker built:
	// tag accumulators with the worker id and verify it never changes.
	type tagged struct {
		worker int
		n      int64
	}
	got := Reduce(10000, 8, 4,
		func(w, _ int, acc tagged) tagged {
			if acc.n == 0 {
				acc.worker = w
			} else if acc.worker != w {
				panic("accumulator crossed workers")
			}
			acc.n++
			return acc
		},
		func(a, b tagged) tagged { return tagged{n: a.n + b.n} })
	if got.n != 10000 {
		t.Fatalf("total %d, want 10000", got.n)
	}
}

func TestInlinePanicPropagatesDirectly(t *testing.T) {
	// workers=1 runs inline: the panic reaches the caller unwrapped, with
	// the natural stack.
	defer func() {
		if r := recover(); r != "inline" {
			t.Fatalf("recovered %v, want inline", r)
		}
	}()
	For(10, 1, 4, func(i int) {
		if i == 5 {
			panic("inline")
		}
	})
}
