package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, workers, 8, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const n, workers = 500, 4
	var bad atomic.Int32
	counts := make([]int64, workers)
	ForWorker(n, workers, 4, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
			return
		}
		atomic.AddInt64(&counts[w], 1)
	})
	if bad.Load() != 0 {
		t.Fatalf("%d out-of-range worker ids", bad.Load())
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("total iterations %d, want %d", total, n)
	}
}

func TestForSequentialIsInline(t *testing.T) {
	// workers=1 must execute on the calling goroutine, in order.
	var order []int
	For(10, 1, 3, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestForDefaults(t *testing.T) {
	var count atomic.Int64
	For(100, 0, 0, func(i int) { count.Add(1) }) // workers/grain defaults
	if count.Load() != 100 {
		t.Fatalf("count = %d", count.Load())
	}
	ForWorker(100, 0, 0, func(w, i int) { count.Add(1) })
	if count.Load() != 200 {
		t.Fatalf("count = %d", count.Load())
	}
}

// Property: a parallel sum equals the sequential sum for any n/workers/grain.
func TestForSumProperty(t *testing.T) {
	f := func(nRaw uint16, workersRaw, grainRaw uint8) bool {
		n := int(nRaw) % 2000
		workers := int(workersRaw)%8 + 1
		grain := int(grainRaw)%50 + 1
		var sum atomic.Int64
		For(n, workers, grain, func(i int) { sum.Add(int64(i)) })
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		return sum.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
