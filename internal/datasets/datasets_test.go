package datasets

import (
	"errors"
	"math"
	"strings"
	"testing"

	"anyscan/internal/graph"
)

const testScale = 0.08 // tiny but structurally meaningful

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("registry has %d datasets, want 16 (5 GR + 10 LFR + 1 HUB)", len(names))
	}
	if got := len(RealNames()); got != 5 {
		t.Errorf("RealNames: %d, want 5", got)
	}
	if got := len(LFRDegreeNames()); got != 5 {
		t.Errorf("LFRDegreeNames: %d, want 5", got)
	}
	if got := len(LFRCCNames()); got != 5 {
		t.Errorf("LFRCCNames: %d, want 5", got)
	}
	for _, n := range names {
		info, err := Describe(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Paper == "" || info.Profile == "" {
			t.Errorf("%s: incomplete registry info", n)
		}
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Load("nope", 1); err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("want unknown-dataset error, got %v", err)
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe should reject unknown names")
	}
}

func TestAllDatasetsLoadAndValidate(t *testing.T) {
	for _, n := range Names() {
		g, err := Load(n, testScale)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
}

func TestLoadIsCachedAndDeterministic(t *testing.T) {
	a := MustLoad("GR02L", testScale)
	b := MustLoad("GR02L", testScale)
	if a != b {
		t.Error("second load should return the cached graph")
	}
}

func TestDegreeSweepIsMonotone(t *testing.T) {
	var prev float64
	for i, n := range LFRDegreeNames() {
		g := MustLoad(n, testScale)
		d := float64(g.NumArcs()) / float64(g.NumVertices())
		if i > 0 && d <= prev {
			t.Errorf("%s: avg degree %v not above previous %v", n, d, prev)
		}
		prev = d
	}
}

func TestCCSweepIsMonotone(t *testing.T) {
	var prev float64
	for i, n := range LFRCCNames() {
		g := MustLoad(n, testScale)
		cc := graph.ApproxAvgCC(g, 3000, 1)
		if i > 0 && cc <= prev-0.02 {
			t.Errorf("%s: cc %v not above previous %v", n, cc, prev)
		}
		prev = cc
	}
}

func TestProfilesRoughlyMatchPaper(t *testing.T) {
	// Average degrees should track the originals' profile even at tiny
	// scale: GR01L densest, GR02L sparsest among the GR family.
	want := map[string]float64{
		"GR01L": 127.1, "GR02L": 14.2, "GR03L": 18.8, "GR04L": 38.1, "GR05L": 86.8,
	}
	for name, paperD := range want {
		g := MustLoad(name, testScale)
		d := float64(g.NumArcs()) / float64(g.NumVertices())
		if math.Abs(math.Log(d/paperD)) > math.Log(2.0) {
			t.Errorf("%s: avg degree %v is off the paper profile %v by more than 2×", name, d, paperD)
		}
	}
}

func TestScaleParameterShrinks(t *testing.T) {
	small := MustLoad("GR03L", 0.05)
	big := MustLoad("GR03L", 0.15)
	if small.NumVertices() >= big.NumVertices() {
		t.Errorf("scale knob broken: %d !< %d", small.NumVertices(), big.NumVertices())
	}
}

func TestLoadReturnsErrorNotPanic(t *testing.T) {
	// Unknown names and generator failures must surface as returned errors;
	// only MustLoad is allowed to panic.
	if _, err := Load("NOPE", 1); err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("unknown dataset: err = %v", err)
	}
	// A failing registered generator propagates its error and is not cached.
	register("XFAIL", "test", "always fails", func(scale float64) (*graph.CSR, error) {
		return nil, errGenFail
	})
	defer func() {
		delete(registry, "XFAIL")
		order = order[:len(order)-1]
	}()
	for i := 0; i < 2; i++ { // twice: the failure must not be memoized as success
		if _, err := Load("XFAIL", 1); err != errGenFail {
			t.Fatalf("attempt %d: err = %v, want errGenFail", i, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLoad on failing generator did not panic")
		}
	}()
	MustLoad("XFAIL", 1)
}

var errGenFail = errors.New("generator exploded")
