// Package datasets is the registry of synthetic stand-ins for the paper's
// evaluation datasets (Tables I and II). The original experiments use SNAP /
// UF Sparse / LAW graphs with 10⁵–5·10⁶ vertices; this repository cannot
// ship those, so each dataset is replaced by a seeded generator tuned to the
// same *shape* — average degree and clustering coefficient profile — at a
// reduced scale (see DESIGN.md §3). All loads are deterministic.
//
// Real-graph stand-ins (Table I):
//
//	GR01L  ego-Gplus-like         dense ego circles, d̄≈120, c≈0.45
//	GR02L  soc-LiveJournal1-like  sparse power-law, d̄≈14, c≈0.27
//	GR03L  soc-Pokect-like        sparse power-law, d̄≈19, c≈0.11
//	GR04L  com-Orkut-like         medium power-law, d̄≈38, c≈0.17
//	GR05L  kron_g500-like         R-MAT, d̄≈87, skewed degrees
//
// LFR stand-ins (Table II): LFR01L..LFR05L sweep the average degree at fixed
// mixing; LFR11L..LFR15L sweep the clustering coefficient at fixed degree.
package datasets

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"anyscan/internal/gen"
	"anyscan/internal/graph"
)

// Info describes a registered dataset.
type Info struct {
	Name    string
	Paper   string // the dataset it stands in for
	Profile string // one-line shape description
}

// generatorFn builds the dataset at the given scale factor (1.0 = default).
// Generation failures are returned, not panicked, so a missing or
// misconfigured dataset fails a benchmark run cleanly.
type generatorFn func(scale float64) (*graph.CSR, error)

type entry struct {
	info Info
	gen  generatorFn
}

var registry = map[string]entry{}
var order []string

func register(name, paper, profile string, g generatorFn) {
	registry[name] = entry{Info{name, paper, profile}, g}
	order = append(order, name)
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 64 {
		v = 64
	}
	return v
}

func init() {
	// --- Table I stand-ins ---
	register("GR01L", "ego-Gplus (108k V, 13.7M E, d̄=127.1, c=0.490)",
		"dense overlapping ego circles", func(s float64) (*graph.CSR, error) {
			n := scaled(4096, s)
			regions := n / 400
			if regions < 2 {
				regions = 2
			}
			return gen.SocialCircles(gen.SocialCirclesConfig{
				N:             n,
				Regions:       regions,
				CrossP:        0.06,
				CirclesPerV:   4.2,
				CircleSize:    48,
				CircleSizeJit: 24,
				IntraP:        0.76,
				Seed:          101,
			}), nil
		})
	register("GR02L", "soc-LiveJournal1 (4.85M V, 69.0M E, d̄=14.2, c=0.274)",
		"sparse, small dense communities, mild mixing", func(s float64) (*graph.CSR, error) {
			cfg := gen.DefaultLFR(scaled(32768, s), 14.2, 102)
			cfg.MaxDegree = 120
			cfg.Mixing = 0.25
			cfg.MinCommunity, cfg.MaxCommunity = 12, 40
			g, _, err := gen.LFR(cfg)
			if err != nil {
				return nil, fmt.Errorf("datasets: GR02L: %w", err)
			}
			return g, nil
		})
	register("GR03L", "soc-Pokec (1.63M V, 30.6M E, d̄=18.8, c=0.109)",
		"sparse communities diluted by heavy mixing", func(s float64) (*graph.CSR, error) {
			cfg := gen.DefaultLFR(scaled(20480, s), 18.8, 103)
			cfg.MaxDegree = 140
			cfg.Mixing = 0.55
			cfg.MixingJitter = 0.45
			cfg.MinCommunity, cfg.MaxCommunity = 14, 44
			g, _, err := gen.LFR(cfg)
			if err != nil {
				return nil, fmt.Errorf("datasets: GR03L: %w", err)
			}
			return g, nil
		})
	register("GR04L", "com-Orkut (3.07M V, 117.2M E, d̄=38.1, c=0.167)",
		"medium-density communities, moderate mixing", func(s float64) (*graph.CSR, error) {
			cfg := gen.DefaultLFR(scaled(10240, s), 38.1, 104)
			cfg.MaxDegree = 200
			cfg.Mixing = 0.45
			cfg.MixingJitter = 0.42
			cfg.MinCommunity, cfg.MaxCommunity = 30, 90
			g, _, err := gen.LFR(cfg)
			if err != nil {
				return nil, fmt.Errorf("datasets: GR04L: %w", err)
			}
			return g, nil
		})
	register("GR05L", "kron_g500-logn21 (2.10M V, 182.1M E, d̄=86.8, c=0.165)",
		"R-MAT/Kronecker, heavily skewed degrees", func(s float64) (*graph.CSR, error) {
			n := scaled(8192, s)
			scale := 0
			for 1<<scale < n {
				scale++
			}
			m := int64(n) * 43 // d̄ ≈ 86
			return gen.RMAT(scale, m, 0.45, 0.22, 0.22, gen.WeightConfig{}, 105), nil
		})

	// --- Approximate-σ stress dataset (not in the paper's tables, hence no
	// GR prefix: it must stay out of RealNames). Planted partition with
	// 640-vertex communities at pIn=0.85, so every vertex's degree (~543)
	// clears the σ kernel's hub threshold and the MinHash sketch path carries
	// essentially the whole σ pass. Scale multiplies the community COUNT, not
	// the community size, so the hub property holds at any scale. ---
	register("HUB01", "synthetic hub stress (planted partition, d̄≈548)",
		"uniformly hub-degree planted communities", func(s float64) (*graph.CSR, error) {
			k := int(math.Round(4 * s))
			if k < 1 {
				k = 1
			}
			pOut := 0.0
			if k > 1 {
				pOut = 0.0025 // a few cross-community edges per vertex
			}
			return gen.PlantedPartition(k*640, k, 0.85, pOut, gen.WeightConfig{}, 106), nil
		})

	// --- Table II stand-ins: degree sweep (cc held near the LFR default) ---
	lfrDeg := func(id int, avg float64) {
		name := fmt.Sprintf("LFR0%dL", id)
		register(name, fmt.Sprintf("LFR0%d (1M V, d̄=%.1f, c≈0.40)", id, avg),
			"LFR benchmark, degree sweep", func(s float64) (*graph.CSR, error) {
				cfg := gen.DefaultLFR(scaled(20000, s), avg, int64(200+id))
				g, _, err := gen.LFR(cfg)
				if err != nil {
					return nil, fmt.Errorf("datasets: %s: %w", name, err)
				}
				return g, nil
			})
	}
	lfrDeg(1, 44.567)
	lfrDeg(2, 50.129)
	lfrDeg(3, 55.199)
	lfrDeg(4, 59.874)
	lfrDeg(5, 65.055)

	// --- Table II stand-ins: clustering-coefficient sweep at d̄≈50 ---
	lfrCC := func(id int, target float64) {
		name := fmt.Sprintf("LFR1%dL", id)
		register(name, fmt.Sprintf("LFR1%d (1M V, d̄=50.1, c≈%.1f)", id, target),
			"LFR benchmark, clustering-coefficient sweep", func(s float64) (*graph.CSR, error) {
				cfg := gen.DefaultLFR(scaled(12000, s), 50.129, int64(300+id))
				g, _, err := gen.LFR(cfg)
				if err != nil {
					return nil, fmt.Errorf("datasets: %s: %w", name, err)
				}
				adj, _ := gen.AdjustCC(g, target, 0.02, 6_000_000, gen.WeightConfig{}, int64(400+id))
				return adj, nil
			})
	}
	lfrCC(1, 0.20)
	lfrCC(2, 0.30)
	lfrCC(3, 0.42)
	lfrCC(4, 0.50)
	lfrCC(5, 0.60)
}

// Names returns all dataset names in registration order.
func Names() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// RealNames returns the Table I stand-ins (GR01L..GR05L).
func RealNames() []string { return filter("GR") }

// LFRDegreeNames returns the Table II degree-sweep stand-ins.
func LFRDegreeNames() []string { return filter("LFR0") }

// LFRCCNames returns the Table II cc-sweep stand-ins.
func LFRCCNames() []string { return filter("LFR1") }

func filter(prefix string) []string {
	var out []string
	for _, n := range order {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Describe returns the registry info for a dataset name.
func Describe(name string) (Info, error) {
	e, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
	}
	return e.info, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.CSR{}
)

// Load builds (or returns the cached) dataset at the given scale factor
// (1.0 = the default reduced scale; smaller values shrink further for quick
// tests). Loads are memoized per (name, scale) for the process lifetime.
func Load(name string, scale float64) (*graph.CSR, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q (known: %v)", name, Names())
	}
	if scale <= 0 {
		scale = 1
	}
	key := fmt.Sprintf("%s@%g", name, scale)
	cacheMu.Lock()
	g, hit := cache[key]
	cacheMu.Unlock()
	if hit {
		return g, nil
	}
	g, err := e.gen(scale)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	cache[key] = g
	cacheMu.Unlock()
	return g, nil
}

// MustLoad is Load or panic; for benchmarks and examples.
func MustLoad(name string, scale float64) *graph.CSR {
	g, err := Load(name, scale)
	if err != nil {
		panic(err)
	}
	return g
}
