package graph

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestContainer(t *testing.T, unit bool) (string, *CSR) {
	t.Helper()
	g := randomCSR(t, rand.New(rand.NewSource(21)), 500, 11, unit)
	path := filepath.Join(t.TempDir(), "g.csrz")
	if err := Compress(g).WriteCompressedFile(path); err != nil {
		t.Fatalf("WriteCompressedFile: %v", err)
	}
	return path, g
}

func TestContainerMmapRoundTrip(t *testing.T) {
	for _, unit := range []bool{false, true} {
		path, g := writeTestContainer(t, unit)
		c, err := OpenCompressedFile(path, CompressedOpenOptions{VerifyCRC: true, ValidateFull: true})
		if err != nil {
			t.Fatalf("unit=%v: OpenCompressedFile: %v", unit, err)
		}
		assertEquivalentBackends(t, g, c)
		if c.Bytes() <= 0 {
			t.Fatalf("Bytes() = %d", c.Bytes())
		}
		if c.ResidentBytes() > c.Bytes() {
			t.Fatalf("ResidentBytes %d > Bytes %d", c.ResidentBytes(), c.Bytes())
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestContainerLoadAnyDispatch(t *testing.T) {
	path, g := writeTestContainer(t, false)
	any, ids, err := LoadAny(path)
	if err != nil {
		t.Fatalf("LoadAny: %v", err)
	}
	if ids != nil {
		t.Fatalf("LoadAny on .csrz returned ids")
	}
	if _, ok := any.(*CompressedCSR); !ok {
		t.Fatalf("LoadAny returned %T, want *CompressedCSR", any)
	}
	assertEquivalentBackends(t, g, any)

	flat, _, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	assertEquivalentBackends(t, g, flat)
}

func TestContainerTruncation(t *testing.T) {
	path, _ := writeTestContainer(t, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 10, 19, len(data) / 2, len(data) - 1} {
		trunc := filepath.Join(t.TempDir(), "t.csrz")
		if err := os.WriteFile(trunc, data[:keep], 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCompressedFile(trunc, CompressedOpenOptions{}); err == nil {
			t.Fatalf("open of file truncated to %d bytes succeeded", keep)
		}
		if _, err := os.Open(trunc); err != nil {
			t.Fatal(err)
		}
		f, _ := os.Open(trunc)
		if _, err := ReadCompressed(f); err == nil {
			t.Fatalf("stream read of file truncated to %d bytes succeeded", keep)
		}
		f.Close()
	}
}

func TestContainerBadCRC(t *testing.T) {
	path, _ := writeTestContainer(t, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte. The CRC check (stream reads always, mmap opens
	// with VerifyCRC) must reject the file.
	data[len(data)-3] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.csrz")
	if err := os.WriteFile(bad, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompressedFile(bad, CompressedOpenOptions{VerifyCRC: true}); err == nil ||
		!strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("VerifyCRC open of corrupted file: err = %v, want CRC failure", err)
	}
	f, _ := os.Open(bad)
	defer f.Close()
	if _, err := ReadCompressed(f); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("stream read of corrupted file: err = %v, want CRC failure", err)
	}
}

func TestContainerBadVarint(t *testing.T) {
	path, _ := writeTestContainer(t, false)
	c, err := OpenCompressedFile(path, CompressedOpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild a container whose varint stream is corrupted but whose frame
	// CRC matches the corrupted bytes: only full validation can catch it.
	bad := &CompressedCSR{
		n: c.n, edges: c.edges, arcOff: c.arcOff, byteOf: c.byteOf,
		unit: c.unit, weights: c.weights, norm: c.norm, sqrtNorm: c.sqrtNorm,
		maxW: c.maxW, maxDeg: c.maxDeg, ones: c.ones,
		data: append([]byte(nil), c.data...),
	}
	// 0x80 with no continuation byte at the very end of a vertex's extent is
	// an invalid varint.
	bad.data[bad.byteOf[1]-1] = 0x80
	badPath := filepath.Join(t.TempDir(), "badvarint.csrz")
	if err := bad.WriteCompressedFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompressedFile(badPath, CompressedOpenOptions{VerifyCRC: true, ValidateFull: true}); err == nil {
		t.Fatal("ValidateFull accepted a corrupt varint stream")
	}
	// Without full validation the open succeeds (structural checks cannot
	// see inside the stream) and the decode panics with a clear message.
	loose, err := OpenCompressedFile(badPath, CompressedOpenOptions{})
	if err != nil {
		t.Fatalf("structural open of internally-corrupt file: %v", err)
	}
	defer loose.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("decoding a corrupt varint stream did not panic")
		}
	}()
	loose.Neighbors(0)
}

func TestContainerRejectsWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.csrz")
	if err := os.WriteFile(path, []byte("definitely not a frame at all......."), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompressedFile(path, CompressedOpenOptions{}); err == nil {
		t.Fatal("opened a non-frame file")
	}
}
