package graph

// InducedSubgraph returns the subgraph induced by the given vertices (which
// need not be sorted or unique) and the mapping from new dense ids back to
// the original ones. Edge weights are preserved. A common preprocessing
// step: cluster only the giant component, or zoom into one community.
func InducedSubgraph(g *CSR, vertices []int32) (*CSR, []int32, error) {
	n := g.NumVertices()
	toNew := make([]int32, n)
	for i := range toNew {
		toNew[i] = -1
	}
	var orig []int32
	for _, v := range vertices {
		if v < 0 || int(v) >= n {
			continue
		}
		if toNew[v] < 0 {
			toNew[v] = int32(len(orig))
			orig = append(orig, v)
		}
	}
	var b Builder
	b.SetNumVertices(len(orig))
	for newU, u := range orig {
		adj, wts := g.Neighbors(u)
		for i, q := range adj {
			if nq := toNew[q]; nq >= 0 && u < q {
				b.AddEdge(int32(newU), nq, wts[i])
			}
		}
	}
	sub, err := b.Build()
	return sub, orig, err
}

// LargestComponent returns the induced subgraph of g's largest connected
// component and the original id of each vertex in it.
func LargestComponent(g *CSR) (*CSR, []int32, error) {
	comps, labels := ConnectedComponents(g)
	if comps == 0 {
		return empty(), nil, nil
	}
	sizes := make([]int, comps)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	var members []int32
	for v, l := range labels {
		if int(l) == best {
			members = append(members, int32(v))
		}
	}
	return InducedSubgraph(g, members)
}
