package graph

import "sort"

// RelabelByDegree returns a copy of g whose vertices are renumbered in
// non-increasing degree order (ties broken by old id ascending, so the
// relabeling is deterministic), plus the permutation perm with
// perm[old] = new.
//
// Degree-descending ids improve the locality of the similarity hot path on
// skewed graphs: hubs cluster at the front of every CSR array, adjacency
// lists of high-degree vertices are visited through small ids (dense bitset
// prefixes, warmer cache lines), and the per-worker hub scratch of
// simeval.WorkerEngine keys on the low id range. The relabeled graph is
// isomorphic to g — clustering it and mapping labels back through perm
// yields the same partition — but its fingerprint differs, so checkpoints
// and persisted indexes are tied to the layout they were created with.
func RelabelByDegree(g *CSR) (*CSR, []int32) {
	n := g.NumVertices()
	// order[new] = old, sorted by degree descending then old id ascending.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	perm := make([]int32, n)
	for newV, old := range order {
		perm[old] = int32(newV)
	}

	h := &CSR{
		offsets:   make([]int64, n+1),
		neighbors: make([]int32, len(g.neighbors)),
		weights:   make([]float32, len(g.weights)),
	}
	for newV, old := range order {
		h.offsets[newV+1] = h.offsets[newV] + int64(g.Degree(old))
	}
	for newV, old := range order {
		adj, wts := g.Neighbors(old)
		lo := h.offsets[newV]
		dst := h.neighbors[lo : lo+int64(len(adj))]
		dw := h.weights[lo : lo+int64(len(adj))]
		for j, q := range adj {
			dst[j] = perm[q]
			dw[j] = wts[j]
		}
		sortAdjacency(dst, dw) // shared with Builder: neighbor ids ascending
	}
	h.finalize()
	return h, perm
}
