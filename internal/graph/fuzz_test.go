package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the loaders must never panic and every successfully parsed
// graph must satisfy the CSR invariants. (Run with `go test -fuzz`; the
// seed corpus also executes under plain `go test`.)

func FuzzLoadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n1 2 0.5\n")
	f.Add("0 0\n")
	f.Add("-1 5\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("1 2 nan\n1 2 inf\n")
	f.Add("a b c d e\n")
	f.Add("1\t2\t3\t4\n")
	f.Fuzz(func(t *testing.T, input string) {
		for _, remap := range []bool{false, true} {
			g, _, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Remap: remap})
			if err != nil {
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted invalid graph (remap=%v): %v\ninput: %q", remap, err, input)
			}
		}
	})
}

func FuzzLoadMETIS(f *testing.F) {
	f.Add("3 2\n2\n1 3\n2\n")
	f.Add("3 3 001\n2 1 3 1\n1 1 3 1\n1 1 2 1\n")
	f.Add("% c\n1 0\n\n")
	f.Add("2 1 011 2\n1 1 2 1\n1 1 1 1\n")
	f.Add("0 0\n")
	f.Add("1 1\n1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadMETIS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", err, input)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := randomGraphWeighted(20, 50, 1)
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	truncHeader := append([]byte(nil), valid[:10]...)
	f.Add(truncHeader)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid binary graph: %v", err)
		}
	})
}
