package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the loaders must never panic and every successfully parsed
// graph must satisfy the CSR invariants. (Run with `go test -fuzz`; the
// seed corpus also executes under plain `go test`.)

func FuzzLoadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n1 2 0.5\n")
	f.Add("0 0\n")
	f.Add("-1 5\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("1 2 nan\n1 2 inf\n")
	f.Add("a b c d e\n")
	f.Add("1\t2\t3\t4\n")
	f.Fuzz(func(t *testing.T, input string) {
		for _, remap := range []bool{false, true} {
			g, _, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Remap: remap})
			if err != nil {
				continue
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted invalid graph (remap=%v): %v\ninput: %q", remap, err, input)
			}
		}
	})
}

func FuzzLoadMETIS(f *testing.F) {
	f.Add("3 2\n2\n1 3\n2\n")
	f.Add("3 3 001\n2 1 3 1\n1 1 3 1\n1 1 2 1\n")
	f.Add("% c\n1 0\n\n")
	f.Add("2 1 011 2\n1 1 2 1\n1 1 1 1\n")
	f.Add("0 0\n")
	f.Add("1 1\n1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadMETIS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", err, input)
		}
	})
}

// FuzzReadCompressed hammers the .csrz container loader: whatever the bytes,
// ReadCompressed must either return an error or a graph whose Validate passes
// without panicking (Validate's two-pass structure is what guarantees the
// cross-stream symmetry check never trips the decoder's corrupt-varint
// panic). A graph that fully validates must also round-trip through
// Decompress into a CSR that satisfies the flat invariants.
func FuzzReadCompressed(f *testing.F) {
	var buf bytes.Buffer
	if err := Compress(randomGraphWeighted(20, 50, 1)).WriteCompressed(&buf); err != nil {
		f.Fatal(err)
	}
	// A unit-weight seed exercises the weightless container layout too.
	var ub Builder
	ub.SetNumVertices(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}} {
		ub.AddEdge(e[0], e[1], 1)
	}
	ug, err := ub.Build()
	if err != nil {
		f.Fatal(err)
	}
	var unit bytes.Buffer
	if err := Compress(ug).WriteCompressed(&unit); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(unit.Bytes())
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:20]) // header only
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	for _, off := range []int{0, 4, 8, 16, 24, 32, 52, len(valid) - 1} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCompressed(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			return // structurally invalid but well-framed: rejected, not panicked
		}
		if err := c.Decompress().Validate(); err != nil {
			t.Fatalf("validated compressed graph decompresses invalid: %v", err)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	g := randomGraphWeighted(20, 50, 1)
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("garbage"))
	truncHeader := append([]byte(nil), valid[:10]...)
	f.Add(truncHeader)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid binary graph: %v", err)
		}
	})
}
