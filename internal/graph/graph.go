// Package graph provides the weighted undirected graph substrate shared by
// every clustering algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: a flat, sorted
// adjacency array with parallel edge weights. The layout is chosen for the
// access patterns of structural graph clustering — sort-merge joins between
// adjacency lists dominate the runtime (Definition 1 of the paper) — and to
// keep garbage-collector pressure low on multi-million-edge graphs: no
// per-vertex allocations, int32 vertex ids, float32 weights.
//
// Following Section II of the paper, similarity uses the *closed*
// neighborhood convention: every vertex conceptually carries a self-loop of
// weight 1, so the weighted structural similarity degenerates to the
// original (unweighted) SCAN similarity when all edge weights are 1. The
// per-vertex norms needed by Definition 1 and the Lemma 5 pruning bound are
// precomputed at construction time.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// SelfWeight is the implicit self-loop weight of the closed neighborhood
// convention (Section II-A).
const SelfWeight = 1.0

// CSR is an immutable weighted undirected graph in compressed sparse row
// form. Use a Builder to construct one. All exported methods are safe for
// concurrent use because the structure is never mutated after Build.
type CSR struct {
	offsets   []int64   // len n+1; adjacency of v is [offsets[v], offsets[v+1])
	neighbors []int32   // sorted within each vertex's range
	weights   []float32 // parallel to neighbors

	// Precomputed per-vertex quantities (Section II-A and Lemma 5):
	norm     []float64 // l_p = SelfWeight^2 + Σ_{r∈N(p)} w_pr²
	sqrtNorm []float64 // √l_p, cached to avoid math.Sqrt on the hot path
	maxW     []float32 // w_p = max_{q∈N(p)} w_pq (0 for isolated vertices)

	revOnce sync.Once
	rev     []int64 // reverse edge index (lazy; see ReverseEdgeIndex)
}

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *CSR) NumEdges() int64 { return int64(len(g.neighbors)) / 2 }

// NumArcs returns the number of directed arcs (2 per undirected edge).
func (g *CSR) NumArcs() int64 { return int64(len(g.neighbors)) }

// Degree returns the number of neighbors of v (excluding the implicit self-loop).
func (g *CSR) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v and the parallel weight
// slice. The returned slices alias internal storage and must not be modified.
func (g *CSR) Neighbors(v int32) ([]int32, []float32) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.neighbors[lo:hi], g.weights[lo:hi]
}

// NeighborRange returns the half-open arc-index range of v's adjacency.
func (g *CSR) NeighborRange(v int32) (lo, hi int64) {
	return g.offsets[v], g.offsets[v+1]
}

// Arc returns the head vertex and weight of arc e.
func (g *CSR) Arc(e int64) (head int32, w float32) {
	return g.neighbors[e], g.weights[e]
}

// Norm returns l_v = SelfWeight² + Σ w², the closed-neighborhood weighted
// norm used as the denominator term of Definition 1.
func (g *CSR) Norm(v int32) float64 { return g.norm[v] }

// SqrtNorm returns √Norm(v).
func (g *CSR) SqrtNorm(v int32) float64 { return g.sqrtNorm[v] }

// MaxWeight returns w_v = max over v's incident edge weights (Lemma 5), or 0
// if v is isolated.
func (g *CSR) MaxWeight(v int32) float32 { return g.maxW[v] }

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *CSR) HasEdge(u, v int32) bool {
	_, ok := g.FindArc(u, v)
	return ok
}

// FindArc returns the arc index of u→v if the edge exists.
func (g *CSR) FindArc(u, v int32) (int64, bool) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	adj := g.neighbors[lo:hi]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return lo + int64(i), true
	}
	return 0, false
}

// EdgeWeight returns the weight of edge (u,v), or 0 if absent.
func (g *CSR) EdgeWeight(u, v int32) float32 {
	if e, ok := g.FindArc(u, v); ok {
		return g.weights[e]
	}
	return 0
}

// ReverseEdgeIndex returns rev such that for every arc e = u→v,
// rev[e] is the arc index of v→u. The index is computed on first use and
// cached; computing it is O(|E|) using per-vertex cursors. It is used by
// pSCAN and SCAN++ to share one similarity memo slot per undirected edge.
//
// Safe for concurrent use: first callers race to compute the index behind a
// sync.Once, so a graph shared by several concurrent clustering runs (as in
// the anyscand service) needs no external coordination.
func (g *CSR) ReverseEdgeIndex() []int64 {
	g.revOnce.Do(func() {
		rev := make([]int64, len(g.neighbors))
		cursor := make([]int64, g.NumVertices())
		for v := range cursor {
			cursor[v] = g.offsets[v]
		}
		for u := int32(0); u < int32(g.NumVertices()); u++ {
			for e := g.offsets[u]; e < g.offsets[u+1]; e++ {
				v := g.neighbors[e]
				if u <= v {
					continue // handled from the smaller endpoint
				}
				// cursor[v] advances monotonically through v's sorted adjacency;
				// u values arrive in increasing order for fixed v.
				c := cursor[v]
				for g.neighbors[c] != u {
					c++
				}
				cursor[v] = c + 1
				rev[e] = c
				rev[c] = e
			}
		}
		g.rev = rev
	})
	return g.rev
}

// Validate checks structural invariants (sortedness, symmetry, no self
// loops, positive weights) and returns a descriptive error on the first
// violation. Intended for tests and loaders, not hot paths.
func (g *CSR) Validate() error {
	n := int32(g.NumVertices())
	if len(g.neighbors) != len(g.weights) {
		return fmt.Errorf("graph: neighbors/weights length mismatch %d != %d", len(g.neighbors), len(g.weights))
	}
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.neighbors)) {
		return fmt.Errorf("graph: offset bounds corrupt")
	}
	for v := int32(0); v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if lo > hi {
			return fmt.Errorf("graph: negative degree at vertex %d", v)
		}
		for e := lo; e < hi; e++ {
			u := g.neighbors[e]
			if u < 0 || u >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if e > lo && g.neighbors[e-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at arc %d", v, e)
			}
			// !(w > 0) also catches NaN, which compares false to everything.
			if w := g.weights[e]; !(w > 0) || math.IsInf(float64(w), 0) {
				return fmt.Errorf("graph: non-positive or non-finite weight %v on edge (%d,%d)", w, v, u)
			}
			r, ok := g.FindArc(u, v)
			if !ok {
				return fmt.Errorf("graph: edge (%d,%d) missing reverse arc", v, u)
			}
			if g.weights[r] != g.weights[e] {
				return fmt.Errorf("graph: asymmetric weight on edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// finalize computes the derived per-vertex arrays. Called by Builder.
func (g *CSR) finalize() {
	n := g.NumVertices()
	g.norm = make([]float64, n)
	g.sqrtNorm = make([]float64, n)
	g.maxW = make([]float32, n)
	for v := 0; v < n; v++ {
		l := float64(SelfWeight) * float64(SelfWeight)
		var mw float32
		for e := g.offsets[v]; e < g.offsets[v+1]; e++ {
			w := g.weights[e]
			l += float64(w) * float64(w)
			if w > mw {
				mw = w
			}
		}
		g.norm[v] = l
		g.sqrtNorm[v] = sqrt(l)
		g.maxW[v] = mw
	}
}
