package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T) *CSR {
	t.Helper()
	g, err := FromUnweightedEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	var b Builder
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 0, 7) // reversed duplicate: first weight wins
	b.AddEdge(1, 1, 1) // self loop: dropped
	b.AddEdge(2, 1, 0) // non-positive weight: clamped to 1
	b.SetNumVertices(5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if w := g.EdgeWeight(0, 1); w != 2 {
		t.Errorf("weight(0,1) = %v, want 2 (first weight wins)", w)
	}
	if w := g.EdgeWeight(1, 2); w != 1 {
		t.Errorf("weight(1,2) = %v, want 1 (clamped)", w)
	}
	if g.HasEdge(1, 1) {
		t.Errorf("self loop survived")
	}
	if g.Degree(3) != 0 || g.Degree(4) != 0 {
		t.Errorf("isolated vertices should have degree 0")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderEmpty(t *testing.T) {
	var b Builder
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty build: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestBuilderNegativeID(t *testing.T) {
	var b Builder
	b.AddEdge(-1, 2, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for negative vertex id")
	}
}

func TestNorms(t *testing.T) {
	g, err := FromEdges(3, [][3]float64{{0, 1, 2}, {0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// l_0 = 1 (self) + 4 + 9 = 14
	if got := g.Norm(0); got != 14 {
		t.Errorf("Norm(0) = %v, want 14", got)
	}
	if got := g.MaxWeight(0); got != 3 {
		t.Errorf("MaxWeight(0) = %v, want 3", got)
	}
	// l_1 = 1 + 4 = 5
	if got := g.Norm(1); got != 5 {
		t.Errorf("Norm(1) = %v, want 5", got)
	}
	if got := g.MaxWeight(1); got != 2 {
		t.Errorf("MaxWeight(1) = %v, want 2", got)
	}
}

func TestReverseEdgeIndex(t *testing.T) {
	g := randomGraph(200, 1000, 42)
	rev := g.ReverseEdgeIndex()
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, w := g.Arc(e)
			r := rev[e]
			head, wr := g.Arc(r)
			if head != v {
				t.Fatalf("rev arc of %d→%d points to %d", v, q, head)
			}
			if wr != w {
				t.Fatalf("rev arc weight mismatch")
			}
			if rev[r] != e {
				t.Fatalf("rev not involutive at arc %d", e)
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraphWeighted(100, 400, 7)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadEdgeList(&buf, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := randomGraphWeighted(150, 700, 11)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestLoadEdgeListParsing(t *testing.T) {
	input := `# comment
% another comment
// yet another
10 20
20 30 2.5

30 10 0.5
`
	g, ids, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Remap: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("want 3 vertices after remap, got %d", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("want 3 edges, got %d", g.NumEdges())
	}
	want := []int64{10, 20, 30}
	for i, id := range ids {
		if id != want[i] {
			t.Errorf("ids[%d] = %d, want %d", i, id, want[i])
		}
	}
	// Weighted edge parsed; default weight 1 applied to the first edge.
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
	if w := g.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("weight(20,30) = %v, want 2.5", w)
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"1", "a b", "1 b", "1 2 x"} {
		if _, _, err := LoadEdgeList(strings.NewReader(bad), LoadOptions{}); err == nil {
			t.Errorf("input %q: want parse error", bad)
		}
	}
	// Negative ids without remap are rejected.
	if _, _, err := LoadEdgeList(strings.NewReader("-1 2"), LoadOptions{}); err == nil {
		t.Errorf("negative id without Remap: want error")
	}
}

func TestLoadEdgeListRejectsNonFiniteWeights(t *testing.T) {
	// A NaN/Inf/negative weight must fail parsing with the offending line
	// number, not be clamped or poison similarity computations downstream.
	cases := []struct {
		name, input, wantSub string
	}{
		{"nan", "1 2 NaN", "NaN"},
		{"nan-lower", "1 2 nan", "NaN"},
		{"pos-inf", "1 2 +Inf", "infinite"},
		{"neg-inf", "1 2 -Inf", "infinite"},
		{"inf-word", "1 2 Infinity", "infinite"},
		{"negative", "1 2 -0.5", "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := LoadEdgeList(strings.NewReader("0 1 1.0\n"+tc.input+"\n"), LoadOptions{})
			if err == nil {
				t.Fatalf("input %q: want weight error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("input %q: error %q does not mention %q", tc.input, err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "line 2") {
				t.Errorf("input %q: error %q does not carry the line number", tc.input, err)
			}
		})
	}
	// Zero and positive weights still load.
	if _, _, err := LoadEdgeList(strings.NewReader("0 1 0\n1 2 3.5\n"), LoadOptions{}); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
}

func TestStatsOnTriangle(t *testing.T) {
	g := buildTriangle(t)
	s := ComputeStats(g)
	if s.Vertices != 3 || s.Edges != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if s.AvgDegree != 2 {
		t.Errorf("AvgDegree = %v, want 2", s.AvgDegree)
	}
	if s.AvgCC != 1 {
		t.Errorf("AvgCC = %v, want 1 (triangle)", s.AvgCC)
	}
	if s.MaxDegree != 2 {
		t.Errorf("MaxDegree = %v, want 2", s.MaxDegree)
	}
}

func TestStatsPathHasNoTriangles(t *testing.T) {
	g, err := FromUnweightedEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if cc := ComputeStats(g).AvgCC; cc != 0 {
		t.Errorf("path AvgCC = %v, want 0", cc)
	}
}

func TestApproxCCMatchesExactWhenSamplingAll(t *testing.T) {
	g := randomGraph(300, 2500, 3)
	exact := ComputeStats(g).AvgCC
	approx := ApproxAvgCC(g, g.NumVertices(), 1)
	if diff := exact - approx; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("full-sample approx %v != exact %v", approx, exact)
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := FromUnweightedEdges(7, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	n, labels := ConnectedComponents(g)
	if n != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("components = %d, want 4", n)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("component of 0,1,2 split: %v", labels[:3])
	}
	if labels[3] != labels[4] {
		t.Errorf("component of 3,4 split")
	}
	if labels[5] == labels[6] || labels[5] == labels[0] {
		t.Errorf("isolated vertices mislabeled: %v", labels)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildTriangle(t)
	h := DegreeHistogram(g)
	if len(h) != 3 || h[2] != 3 {
		t.Fatalf("histogram = %v, want [0 0 3]", h)
	}
}

// Property: any graph built from random edges passes Validate, and its CSR
// invariants (sorted adjacency, weight symmetry) hold.
func TestBuilderPropertyValid(t *testing.T) {
	f := func(seed int64, nSmall uint8, mSmall uint16) bool {
		n := int(nSmall)%100 + 2
		m := int(mSmall) % 500
		g := randomGraphWeighted(n, m, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: degrees sum to twice the edge count.
func TestDegreeSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(80, 300, seed)
		var sum int64
		for v := 0; v < g.NumVertices(); v++ {
			sum += int64(g.Degree(int32(v)))
		}
		return sum == 2*g.NumEdges() && sum == g.NumArcs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomGraph(n, m int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	b.SetNumVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
	}
	return b.MustBuild()
}

func randomGraphWeighted(n, m int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	b.SetNumVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 0.5+rng.Float32())
	}
	return b.MustBuild()
}

func assertSameGraph(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex count %d != %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge count %d != %d", a.NumEdges(), b.NumEdges())
	}
	for v := int32(0); v < int32(a.NumVertices()); v++ {
		aAdj, aW := a.Neighbors(v)
		bAdj, bW := b.Neighbors(v)
		if len(aAdj) != len(bAdj) {
			t.Fatalf("vertex %d degree %d != %d", v, len(aAdj), len(bAdj))
		}
		for i := range aAdj {
			if aAdj[i] != bAdj[i] {
				t.Fatalf("vertex %d neighbor %d: %d != %d", v, i, aAdj[i], bAdj[i])
			}
			diff := float64(aW[i]) - float64(bW[i])
			if diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("vertex %d weight %d: %v != %v", v, i, aW[i], bW[i])
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g, err := FromEdges(6, [][3]float64{
		{0, 1, 2}, {1, 2, 1}, {2, 3, 1}, {4, 5, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, orig, err := InducedSubgraph(g, []int32{2, 0, 1, 2, 99, -1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("V = %d, want 3 (dup and out-of-range dropped)", sub.NumVertices())
	}
	if len(orig) != 3 || orig[0] != 2 || orig[1] != 0 || orig[2] != 1 {
		t.Fatalf("orig = %v", orig)
	}
	// Edges inside {0,1,2}: (0,1) w=2 and (1,2) w=1; (2,3) crosses out.
	if sub.NumEdges() != 2 {
		t.Fatalf("E = %d, want 2", sub.NumEdges())
	}
	// New ids: 2→0, 0→1, 1→2. Edge (0,1) w=2 becomes (1,2); (1,2) w=1 → (2,0).
	if w := sub.EdgeWeight(1, 2); w != 2 {
		t.Fatalf("weight (1,2) = %v, want 2", w)
	}
	if w := sub.EdgeWeight(0, 2); w != 1 {
		t.Fatalf("weight (0,2) = %v, want 1", w)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargestComponent(t *testing.T) {
	g, err := FromUnweightedEdges(8, [][2]int32{
		{0, 1}, {1, 2}, {2, 0}, // component of 3
		{4, 5}, // component of 2
		// 3, 6, 7 isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	lc, orig, err := LargestComponent(g)
	if err != nil {
		t.Fatal(err)
	}
	if lc.NumVertices() != 3 || lc.NumEdges() != 3 {
		t.Fatalf("largest component V=%d E=%d", lc.NumVertices(), lc.NumEdges())
	}
	want := []int32{0, 1, 2}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("orig = %v", orig)
		}
	}
	// Empty graph.
	eg, _ := FromUnweightedEdges(0, nil)
	lc, _, err = LargestComponent(eg)
	if err != nil || lc.NumVertices() != 0 {
		t.Fatalf("empty: %v, V=%d", err, lc.NumVertices())
	}
}

func BenchmarkSimilarityJoin(b *testing.B) {
	g := randomGraphWeighted(2000, 40000, 9)
	// Warm the norms; the join cost is what we measure via HasEdge-ish
	// adjacency intersections through stats' intersectCount path.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := int32(i % g.NumVertices())
		adj, _ := g.Neighbors(v)
		if len(adj) > 0 {
			_ = localCC(g, v)
		}
	}
}

func BenchmarkReverseEdgeIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := randomGraph(5000, 50000, int64(i))
		g.ReverseEdgeIndex()
	}
}
