package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// CompressedCSR is an immutable weighted undirected graph whose adjacency is
// varint byte-delta encoded, in the style of Ligra+/GBBS: within a vertex's
// sorted neighbor list the first id is zigzag-encoded relative to the vertex
// itself and each subsequent id as uvarint(gap-1). After RelabelByDegree the
// gaps on real graphs are small, so the encoding lands around 1-2 bytes per
// arc versus the CSR's 4 (plus 4 for the weight, which a weight-1 graph
// drops entirely) — typically a 3-6x size reduction.
//
// Per-vertex derived quantities (norm, √norm, max weight) are stored
// uncompressed, so σ kernels pay decode cost only for adjacency, and the
// on-disk container can be mmapped and served with near-zero startup work.
//
// Access cost model: NeighborRange/Degree/Norm are O(1) array reads like the
// CSR's; EachNeighbor and Cursor.Neighbors decode at memory speed;
// Neighbors allocates a fresh id slice per call; EdgeWeight/HasEdge decode
// the shorter endpoint's list with early exit. There is no Arc(e) random
// access and no ReverseEdgeIndex — see the Graph interface contract.
type CompressedCSR struct {
	n      int
	edges  int64
	arcOff []int64 // len n+1; cumulative degrees (arc-index ranges)
	byteOf []int64 // len n+1; adjacency of v occupies data[byteOf[v]:byteOf[v+1]]
	data   []byte  // varint delta stream

	// unit marks an all-weight-1 graph: weights is nil and every decode
	// yields SelfWeight-compatible 1.0 without touching storage.
	unit    bool
	weights []float32 // per-arc weights (nil when unit); indexed by arc index

	norm     []float64
	sqrtNorm []float64
	maxW     []float32

	maxDeg int
	ones   []float32 // maxDeg 1.0s shared by unit-weight decodes (read-only)

	// closer unmaps the backing file of an mmap-loaded graph; nil for
	// heap-backed graphs. residentBytes is set by the loader to the portion
	// of the storage that lives on the Go heap rather than in the mapping.
	closer        io.Closer
	residentBytes int64
}

// zigzag encodes a signed delta as an unsigned varint-friendly value.
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Compress encodes g. The encoding is lossless and order-preserving: the
// compressed graph is isomorphic to g under the identity map, with
// bit-identical weights, norms, and arc indexing.
func Compress(g *CSR) *CompressedCSR {
	n := g.NumVertices()
	c := &CompressedCSR{
		n:        n,
		edges:    g.NumEdges(),
		arcOff:   g.offsets,
		byteOf:   make([]int64, n+1),
		norm:     g.norm,
		sqrtNorm: g.sqrtNorm,
		maxW:     g.maxW,
	}
	c.unit = true
	for _, w := range g.weights {
		if w != 1 {
			c.unit = false
			break
		}
	}
	if !c.unit {
		c.weights = g.weights
	}
	var buf [binary.MaxVarintLen64]byte
	data := make([]byte, 0, len(g.neighbors)) // ~1 byte/arc guess
	for v := int32(0); v < int32(n); v++ {
		adj, _ := g.Neighbors(v)
		if len(adj) > c.maxDeg {
			c.maxDeg = len(adj)
		}
		prev := int64(v)
		for i, u := range adj {
			var enc uint64
			if i == 0 {
				enc = zigzag(int64(u) - prev)
			} else {
				enc = uint64(int64(u) - prev - 1)
			}
			data = append(data, buf[:binary.PutUvarint(buf[:], enc)]...)
			prev = int64(u)
		}
		c.byteOf[v+1] = int64(len(data))
	}
	c.data = data
	if c.unit {
		c.ones = onesSlice(c.maxDeg)
	}
	return c
}

func onesSlice(n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// Decompress materializes the flat CSR. The result shares the weight, norm
// and offset arrays with the compressed graph when possible; adjacency ids
// are fully decoded. The returned CSR is independent of any backing mmap —
// callers may Close the compressed graph afterwards only if they also stop
// using shared arrays, so in practice keep both alive or use a heap-backed
// source.
func (c *CompressedCSR) Decompress() *CSR {
	nbr := make([]int32, c.arcOff[c.n])
	wts := c.weights
	if c.unit {
		wts = onesSlice(len(nbr))
	} else if c.closer != nil {
		// Copy out of the mapping so the CSR survives a later Close.
		wts = append([]float32(nil), c.weights...)
	}
	g := &CSR{
		offsets:   append([]int64(nil), c.arcOff...),
		neighbors: nbr,
		weights:   wts,
		norm:      append([]float64(nil), c.norm...),
		sqrtNorm:  append([]float64(nil), c.sqrtNorm...),
		maxW:      append([]float32(nil), c.maxW...),
	}
	for v := int32(0); v < int32(c.n); v++ {
		lo := c.arcOff[v]
		c.decodeIDs(v, nbr[lo:c.arcOff[v+1]])
	}
	return g
}

// NumVertices returns the number of vertices.
func (c *CompressedCSR) NumVertices() int { return c.n }

// NumEdges returns the number of undirected edges.
func (c *CompressedCSR) NumEdges() int64 { return c.edges }

// NumArcs returns the number of directed arcs.
func (c *CompressedCSR) NumArcs() int64 { return c.arcOff[c.n] }

// Degree returns the neighbor count of v.
func (c *CompressedCSR) Degree(v int32) int { return int(c.arcOff[v+1] - c.arcOff[v]) }

// NeighborRange returns the half-open arc-index range of v's adjacency.
func (c *CompressedCSR) NeighborRange(v int32) (lo, hi int64) {
	return c.arcOff[v], c.arcOff[v+1]
}

// MaxDegree returns the largest degree in the graph (cursor buffer size).
func (c *CompressedCSR) MaxDegree() int { return c.maxDeg }

// Norm returns l_v (see CSR.Norm).
func (c *CompressedCSR) Norm(v int32) float64 { return c.norm[v] }

// SqrtNorm returns √Norm(v).
func (c *CompressedCSR) SqrtNorm(v int32) float64 { return c.sqrtNorm[v] }

// MaxWeight returns the maximum incident edge weight of v.
func (c *CompressedCSR) MaxWeight(v int32) float32 { return c.maxW[v] }

// decodeIDs decodes v's neighbor ids into dst (len = Degree(v)).
func (c *CompressedCSR) decodeIDs(v int32, dst []int32) {
	pos := c.byteOf[v]
	prev := int64(v)
	for i := range dst {
		raw, n := binary.Uvarint(c.data[pos:c.byteOf[v+1]])
		if n <= 0 {
			panic(fmt.Sprintf("graph: corrupt varint stream at vertex %d (run Validate on untrusted files)", v))
		}
		pos += int64(n)
		if i == 0 {
			prev += unzigzag(raw)
		} else {
			prev += int64(raw) + 1
		}
		dst[i] = int32(prev)
	}
}

// decodeInto decodes v's adjacency into the cursor-owned buffer and returns
// it together with the weight view (storage alias, or the shared unit-weight
// slice).
func (c *CompressedCSR) decodeInto(v int32, buf []int32) ([]int32, []float32) {
	d := c.Degree(v)
	dst := buf[:d]
	c.decodeIDs(v, dst)
	if c.unit {
		return dst, c.ones[:d]
	}
	lo, hi := c.arcOff[v], c.arcOff[v+1]
	return dst, c.weights[lo:hi]
}

// Neighbors returns v's adjacency, allocating a fresh id slice per call. Hot
// loops should use EachNeighbor or a Cursor instead.
func (c *CompressedCSR) Neighbors(v int32) ([]int32, []float32) {
	return c.decodeInto(v, make([]int32, c.Degree(v)))
}

// EachNeighbor decodes v's adjacency inline, without allocating.
func (c *CompressedCSR) EachNeighbor(v int32, yield func(i int, u int32, w float32) bool) bool {
	lo, hi := c.byteOf[v], c.byteOf[v+1]
	d := c.Degree(v)
	pos := lo
	prev := int64(v)
	var wts []float32
	if !c.unit {
		wts = c.weights[c.arcOff[v]:c.arcOff[v+1]]
	}
	for i := 0; i < d; i++ {
		raw, n := binary.Uvarint(c.data[pos:hi])
		if n <= 0 {
			panic(fmt.Sprintf("graph: corrupt varint stream at vertex %d (run Validate on untrusted files)", v))
		}
		pos += int64(n)
		if i == 0 {
			prev += unzigzag(raw)
		} else {
			prev += int64(raw) + 1
		}
		w := float32(1)
		if wts != nil {
			w = wts[i]
		}
		if !yield(i, int32(prev), w) {
			return false
		}
	}
	return true
}

// findNeighbor decodes v's list until it reaches u, returning u's position.
// Early exit on the sorted order makes the expected cost half a decode.
func (c *CompressedCSR) findNeighbor(v, u int32) (int, bool) {
	found, idx := false, 0
	c.EachNeighbor(v, func(i int, q int32, _ float32) bool {
		if q >= u {
			found, idx = q == u, i
			return false
		}
		return true
	})
	return idx, found
}

// HasEdge reports whether the undirected edge (u,v) exists. The shorter
// adjacency list is scanned.
func (c *CompressedCSR) HasEdge(u, v int32) bool {
	if c.Degree(v) < c.Degree(u) {
		u, v = v, u
	}
	_, ok := c.findNeighbor(u, v)
	return ok
}

// EdgeWeight returns the weight of edge (u,v), or 0 if absent.
func (c *CompressedCSR) EdgeWeight(u, v int32) float32 {
	if c.Degree(v) < c.Degree(u) {
		u, v = v, u
	}
	i, ok := c.findNeighbor(u, v)
	if !ok {
		return 0
	}
	if c.unit {
		return 1
	}
	return c.weights[c.arcOff[u]+int64(i)]
}

// Bytes returns the total storage footprint: offset arrays, varint data,
// weights, and the per-vertex derived arrays.
func (c *CompressedCSR) Bytes() int64 {
	b := int64(len(c.arcOff))*8 + int64(len(c.byteOf))*8 + int64(len(c.data)) +
		int64(len(c.norm))*8 + int64(len(c.sqrtNorm))*8 + int64(len(c.maxW))*4
	if !c.unit {
		b += int64(len(c.weights)) * 4
	}
	return b
}

// ResidentBytes is the heap-resident portion of Bytes: zero-copy sections of
// an mmap-backed graph live in the page cache and are excluded.
func (c *CompressedCSR) ResidentBytes() int64 {
	if c.closer == nil {
		return c.Bytes()
	}
	return c.residentBytes
}

// Close releases the backing file mapping of an mmap-loaded graph (no-op for
// heap-backed graphs). The graph must not be used afterwards; anyscand never
// closes registry graphs eagerly because queries may still hold them — the
// mapping is reclaimed when the graph is garbage collected.
func (c *CompressedCSR) Close() error {
	if c.closer == nil {
		return nil
	}
	cl := c.closer
	c.closer = nil
	return cl.Close()
}

// Validate fully decodes every adjacency list and checks the structural
// invariants of CSR.Validate (sortedness, range, symmetry, weight positivity
// and symmetry) plus the compressed-specific ones (offset monotonicity,
// exact byte consumption per vertex). O(|arcs| · log d̄); intended for
// loaders handling untrusted files and for tests, not hot paths.
//
// The check runs in two passes so it never trips the decoder's corrupt-varint
// panic: pass 1 proves every vertex's stream decodes cleanly on its own, and
// only then does pass 2 cross-reference streams (EdgeWeight on the reverse
// edge) for the symmetry check.
func (c *CompressedCSR) Validate() error {
	if err := c.validateOffsets(); err != nil {
		return err
	}
	n := int32(c.n)
	nbr := make([]int32, c.maxDeg)
	for v := int32(0); v < n; v++ {
		adj := nbr[:c.Degree(v)]
		pos := c.byteOf[v]
		prev := int64(v)
		for i := range adj {
			raw, k := binary.Uvarint(c.data[pos:c.byteOf[v+1]])
			if k <= 0 {
				return fmt.Errorf("graph: corrupt varint at vertex %d arc %d", v, i)
			}
			pos += int64(k)
			if i == 0 {
				prev += unzigzag(raw)
			} else {
				prev += int64(raw) + 1
			}
			if prev < 0 || prev >= int64(n) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, prev)
			}
			if prev == int64(v) {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			adj[i] = int32(prev)
		}
		if pos != c.byteOf[v+1] {
			return fmt.Errorf("graph: vertex %d adjacency decodes %d bytes, frame says %d",
				v, pos-c.byteOf[v], c.byteOf[v+1]-c.byteOf[v])
		}
	}
	for v := int32(0); v < n; v++ {
		adj := nbr[:c.Degree(v)]
		c.decodeIDs(v, adj)
		var wts []float32
		if !c.unit {
			wts = c.weights[c.arcOff[v]:c.arcOff[v+1]]
		}
		for i, u := range adj {
			w := float32(1)
			if wts != nil {
				w = wts[i]
			}
			if !(w > 0) {
				return fmt.Errorf("graph: non-positive weight %v on edge (%d,%d)", w, v, u)
			}
			if w != c.EdgeWeight(u, v) {
				return fmt.Errorf("graph: asymmetric or missing reverse edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// validateOffsets checks the O(n) structural invariants cheap enough for
// every load: monotone offsets that stay inside the data and weight arrays.
func (c *CompressedCSR) validateOffsets() error {
	if len(c.arcOff) != c.n+1 || len(c.byteOf) != c.n+1 {
		return fmt.Errorf("graph: offset array length mismatch")
	}
	if c.arcOff[0] != 0 || c.byteOf[0] != 0 {
		return fmt.Errorf("graph: offsets do not start at 0")
	}
	if c.byteOf[c.n] != int64(len(c.data)) {
		return fmt.Errorf("graph: byte offsets end at %d, data is %d bytes", c.byteOf[c.n], len(c.data))
	}
	if !c.unit && c.arcOff[c.n] != int64(len(c.weights)) {
		return fmt.Errorf("graph: arc offsets end at %d, weights hold %d", c.arcOff[c.n], len(c.weights))
	}
	maxDeg := 0
	for v := 0; v < c.n; v++ {
		if c.arcOff[v+1] < c.arcOff[v] || c.byteOf[v+1] < c.byteOf[v] {
			return fmt.Errorf("graph: negative extent at vertex %d", v)
		}
		if d := int(c.arcOff[v+1] - c.arcOff[v]); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != c.maxDeg {
		return fmt.Errorf("graph: recorded max degree %d, offsets imply %d", c.maxDeg, maxDeg)
	}
	if c.edges*2 != c.arcOff[c.n] {
		return fmt.Errorf("graph: edge count %d inconsistent with %d arcs", c.edges, c.arcOff[c.n])
	}
	return nil
}
