package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadMETISUnweighted(t *testing.T) {
	// Triangle plus a pendant (the METIS manual's style of example).
	input := `% a comment
4 4
2 3
1 3 4
1 2
2
`
	g, err := LoadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(1, 2) || !g.HasEdge(1, 3) {
		t.Fatal("edges missing")
	}
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("weight = %v, want 1", w)
	}
}

func TestLoadMETISEdgeWeights(t *testing.T) {
	input := `3 3 001
2 2.5 3 1
1 2.5 3 4
1 1 2 4
`
	g, err := LoadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight(0, 1) != 2.5 || g.EdgeWeight(1, 2) != 4 || g.EdgeWeight(0, 2) != 1 {
		t.Fatalf("weights wrong: %v %v %v", g.EdgeWeight(0, 1), g.EdgeWeight(1, 2), g.EdgeWeight(0, 2))
	}
}

func TestLoadMETISVertexWeights(t *testing.T) {
	// fmt=011: vertex weights (discarded) + edge weights.
	input := `3 2 011 2
7 8 2 1.5
1 1 1 1.5 3 2
9 9 2 2
`
	g, err := LoadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("E = %d", g.NumEdges())
	}
	if g.EdgeWeight(0, 1) != 1.5 || g.EdgeWeight(1, 2) != 2 {
		t.Fatalf("weights wrong")
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := randomGraphWeighted(120, 600, 3)
	var buf bytes.Buffer
	if err := g.WriteMETIS(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestLoadMETISErrors(t *testing.T) {
	cases := []string{
		"",                  // empty
		"3",                 // short header
		"x 3",               // bad n
		"3 y",               // bad m
		"2 1 002",           // bad fmt digit... actually '2' invalid
		"2 1\n2\n",          // truncated adjacency
		"2 1\n3\n1\n",       // neighbor out of range
		"2 1 001\n2\n1 1\n", // missing edge weight on vertex 1
		"2 5\n2\n1\n",       // edge count mismatch
	}
	for _, in := range cases {
		if _, err := LoadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestLoadMETISSelfLoopIgnored(t *testing.T) {
	// Some exporters include self loops; the builder drops them.
	input := `2 1
1 2
1 2
`
	g, err := LoadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.HasEdge(0, 0) {
		t.Fatalf("self loop handling wrong: E=%d", g.NumEdges())
	}
}
