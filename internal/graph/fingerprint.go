package graph

import (
	"hash/fnv"
	"math"
)

// Fingerprint is a compact content identity of a CSR graph: vertex and arc
// counts plus an FNV-1a hash over the full adjacency structure (neighbors
// and bit-exact weights). Persisted artifacts derived from a graph — anytime
// checkpoints, query indexes — embed the fingerprint so a load over the
// wrong graph is rejected instead of producing silently wrong results.
type Fingerprint struct {
	Vertices int
	Arcs     int64
	Hash     uint64
}

// FingerprintOf computes the fingerprint of g. Cost: one pass over the arcs.
// The hash depends only on the adjacency content, not the backend: a CSR and
// its compressed encoding fingerprint identically.
func FingerprintOf(g Graph) Fingerprint {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(x int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h.Write(buf)
	}
	n := int32(g.NumVertices())
	put(int64(n))
	for v := int32(0); v < n; v++ {
		lo, hi := g.NeighborRange(v)
		put(hi - lo)
		g.EachNeighbor(v, func(_ int, q int32, w float32) bool {
			put(int64(q)<<32 | int64(int32(math.Float32bits(w))))
			return true
		})
	}
	return Fingerprint{Vertices: g.NumVertices(), Arcs: g.NumArcs(), Hash: h.Sum64()}
}
