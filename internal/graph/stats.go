package graph

import "math/rand"

// Stats summarizes the dataset characteristics the paper reports in
// Tables I and II: vertex count, edge count, average degree d̄, and average
// (local) clustering coefficient c.
type Stats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	AvgCC     float64
	MaxDegree int
}

// ComputeStats returns exact statistics. The clustering coefficient is the
// mean local coefficient over vertices with degree ≥ 2 (degree < 2 vertices
// contribute 0, matching networkx's average_clustering convention used by
// the SNAP dataset pages the paper cites).
func ComputeStats(g *CSR) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	if s.Vertices == 0 {
		return s
	}
	s.AvgDegree = float64(g.NumArcs()) / float64(s.Vertices)
	var ccSum float64
	for v := int32(0); v < int32(s.Vertices); v++ {
		d := g.Degree(v)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		ccSum += localCC(g, v)
	}
	s.AvgCC = ccSum / float64(s.Vertices)
	return s
}

// ApproxAvgCC estimates the average clustering coefficient from a uniform
// sample of vertices; for samples >= n it is exact. Deterministic for a
// given seed.
func ApproxAvgCC(g *CSR, samples int, seed int64) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if samples >= n {
		var sum float64
		for v := int32(0); v < int32(n); v++ {
			sum += localCC(g, v)
		}
		return sum / float64(n)
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < samples; i++ {
		sum += localCC(g, int32(rng.Intn(n)))
	}
	return sum / float64(samples)
}

// localCC returns the local clustering coefficient of v: the fraction of
// pairs of v's neighbors that are themselves adjacent.
func localCC(g *CSR, v int32) float64 {
	d := g.Degree(v)
	if d < 2 {
		return 0
	}
	adj, _ := g.Neighbors(v)
	links := 0
	for i, u := range adj {
		uAdj, _ := g.Neighbors(u)
		// Count neighbors of u that appear later in adj (each triangle once).
		links += intersectCount(uAdj, adj[i+1:])
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// intersectCount returns |a ∩ b| for two sorted int32 slices.
func intersectCount(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func DegreeHistogram(g *CSR) []int {
	maxD := 0
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if d := g.Degree(int32(v)); d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for v := 0; v < n; v++ {
		counts[g.Degree(int32(v))]++
	}
	return counts
}

// ConnectedComponents returns the number of connected components and a
// component label per vertex (BFS over an explicit stack; no recursion).
func ConnectedComponents(g *CSR) (int, []int32) {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	var stack []int32
	comps := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if label[v] >= 0 {
			continue
		}
		label[v] = comps
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			adj, _ := g.Neighbors(u)
			for _, w := range adj {
				if label[w] < 0 {
					label[w] = comps
					stack = append(stack, w)
				}
			}
		}
		comps++
	}
	return int(comps), label
}
