package graph

import (
	"fmt"
	"math"
	"sort"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// Builder accumulates undirected weighted edges and produces an immutable
// CSR. It tolerates duplicate edges (the first weight wins), reversed
// duplicates, and silently drops self loops, so loaders and generators can
// feed it raw data.
//
// The zero value is ready to use.
type Builder struct {
	edges []rawEdge
	n     int32 // max vertex id seen + 1, or explicit via SetNumVertices
}

type rawEdge struct {
	u, v int32
	w    float32
}

// SetNumVertices forces the vertex count to at least n, so isolated vertices
// at the tail of the id space are preserved.
func (b *Builder) SetNumVertices(n int) {
	if int32(n) > b.n {
		b.n = int32(n)
	}
}

// AddEdge records the undirected edge (u,v) with weight w. Self loops are
// dropped (the closed-neighborhood self loop is implicit, per Section II-A).
// Non-positive or non-finite weights are clamped to 1.
func (b *Builder) AddEdge(u, v int32, w float32) {
	if u == v {
		return
	}
	if !(w > 0) || math.IsInf(float64(w), 0) {
		w = 1
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, rawEdge{u, v, w})
	if v+1 > b.n {
		b.n = v + 1
	}
}

// AddEdgeUnweighted records (u,v) with weight 1.
func (b *Builder) AddEdgeUnweighted(u, v int32) { b.AddEdge(u, v, 1) }

// NumEdgesBuffered returns the number of (possibly duplicate) edges recorded.
func (b *Builder) NumEdgesBuffered() int { return len(b.edges) }

// Build sorts, deduplicates, symmetrizes and freezes the graph. The Builder
// can be reused afterwards (it keeps its buffered edges).
func (b *Builder) Build() (*CSR, error) {
	if b.n == 0 && len(b.edges) == 0 {
		return empty(), nil
	}
	for _, e := range b.edges {
		if e.u < 0 {
			return nil, fmt.Errorf("graph: negative vertex id %d", e.u)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	// Deduplicate in place: first occurrence wins.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e.u == uniq[len(uniq)-1].u && e.v == uniq[len(uniq)-1].v {
			continue
		}
		uniq = append(uniq, e)
	}
	b.edges = uniq

	n := int(b.n)
	deg := make([]int64, n+1)
	for _, e := range b.edges {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	offsets := make([]int64, n+1)
	for v := 1; v <= n; v++ {
		offsets[v] = offsets[v-1] + deg[v]
	}
	m := offsets[n]
	neighbors := make([]int32, m)
	weights := make([]float32, m)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range b.edges {
		neighbors[cursor[e.u]], weights[cursor[e.u]] = e.v, e.w
		cursor[e.u]++
		neighbors[cursor[e.v]], weights[cursor[e.v]] = e.u, e.w
		cursor[e.v]++
	}
	// Each adjacency list must be sorted. Arcs u→v with u<v were appended in
	// sorted v order already; arcs v→u arrive in sorted u order too, but the
	// two interleave, so sort each range (cheap: lists are nearly sorted).
	g := &CSR{offsets: offsets, neighbors: neighbors, weights: weights}
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		sortAdjacency(neighbors[lo:hi], weights[lo:hi])
	}
	g.finalize()
	return g, nil
}

// MustBuild is Build but panics on error; for tests and generators whose
// inputs are known valid.
func (b *Builder) MustBuild() *CSR {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func empty() *CSR {
	g := &CSR{offsets: []int64{0}}
	g.finalize()
	return g
}

// sortAdjacency sorts the neighbor slice and keeps weights parallel.
func sortAdjacency(adj []int32, w []float32) {
	if sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		return
	}
	idx := make([]int32, len(adj))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool { return adj[idx[i]] < adj[idx[j]] })
	adjCopy := append([]int32(nil), adj...)
	wCopy := append([]float32(nil), w...)
	for i, k := range idx {
		adj[i], w[i] = adjCopy[k], wCopy[k]
	}
}

// FromEdges is a convenience constructor building a graph from an edge list
// of (u, v, w) triples.
func FromEdges(n int, edges [][3]float64) (*CSR, error) {
	var b Builder
	b.SetNumVertices(n)
	for _, e := range edges {
		b.AddEdge(int32(e[0]), int32(e[1]), float32(e[2]))
	}
	return b.Build()
}

// FromUnweightedEdges builds a weight-1 graph from (u, v) pairs.
func FromUnweightedEdges(n int, edges [][2]int32) (*CSR, error) {
	var b Builder
	b.SetNumVertices(n)
	for _, e := range edges {
		b.AddEdgeUnweighted(e[0], e[1])
	}
	return b.Build()
}
