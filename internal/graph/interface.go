package graph

// Graph is the read-only access interface every clustering algorithm in this
// repository iterates through. Two backends satisfy it: *CSR (flat adjacency
// arrays, zero-cost random access) and *CompressedCSR (varint byte-delta
// encoded adjacency, ~3-5x smaller, optionally mmap-backed so graphs larger
// than RAM can be served).
//
// The interface deliberately excludes Arc(e) random access and
// ReverseEdgeIndex: both force O(1) addressing of individual arcs, which a
// delta-encoded backend cannot provide without decompressing. Hot loops that
// previously indexed arcs walk EachNeighbor (which reports the arc index of
// every neighbor) or a Cursor instead, and mirror writes that previously went
// through the reverse edge index use PropagateMirrors.
//
// All implementations are immutable after construction and safe for
// concurrent use.
type Graph interface {
	// NumVertices returns the number of vertices.
	NumVertices() int
	// NumEdges returns the number of undirected edges.
	NumEdges() int64
	// NumArcs returns the number of directed arcs (2 per undirected edge).
	NumArcs() int64
	// Degree returns the neighbor count of v (excluding the implicit
	// self-loop of the closed-neighborhood convention).
	Degree(v int32) int
	// NeighborRange returns the half-open arc-index range of v's adjacency.
	// Arc indexes order all adjacency lists back to back in vertex order, on
	// every backend; they index per-arc side arrays (σ, thresholds, …).
	NeighborRange(v int32) (lo, hi int64)
	// Neighbors returns v's sorted adjacency and parallel weights. The
	// returned slices are read-only views; a compressed backend may allocate
	// on every call, so hot loops should use EachNeighbor or a Cursor.
	Neighbors(v int32) ([]int32, []float32)
	// EachNeighbor calls yield(i, u, w) for each neighbor u of v with weight
	// w, in ascending u order; i is the position within v's adjacency, so the
	// arc index is lo+i with lo from NeighborRange. Iteration stops early
	// when yield returns false; EachNeighbor reports whether the full list
	// was visited. It never allocates.
	EachNeighbor(v int32, yield func(i int, u int32, w float32) bool) bool
	// Norm returns l_v = SelfWeight² + Σ w², the closed-neighborhood weighted
	// norm of Definition 1.
	Norm(v int32) float64
	// SqrtNorm returns √Norm(v), cached.
	SqrtNorm(v int32) float64
	// MaxWeight returns max over v's incident edge weights (Lemma 5), or 0
	// for an isolated vertex.
	MaxWeight(v int32) float32
	// HasEdge reports whether the undirected edge (u,v) exists.
	HasEdge(u, v int32) bool
	// EdgeWeight returns the weight of edge (u,v), or 0 if absent.
	EdgeWeight(u, v int32) float32
}

var (
	_ Graph = (*CSR)(nil)
	_ Graph = (*CompressedCSR)(nil)
)

// Sizer is implemented by backends that can report their memory footprint;
// the anyscand /metrics endpoint sums these over the registry.
type Sizer interface {
	// Bytes is the total logical size of the graph's storage.
	Bytes() int64
	// ResidentBytes is the heap-resident portion of Bytes: for an
	// mmap-backed graph the adjacency pages live in the page cache and do
	// not count, so ResidentBytes can be far below Bytes.
	ResidentBytes() int64
}

// EachNeighbor implements Graph for *CSR by walking the flat arrays.
func (g *CSR) EachNeighbor(v int32, yield func(i int, u int32, w float32) bool) bool {
	lo, hi := g.offsets[v], g.offsets[v+1]
	adj, wt := g.neighbors[lo:hi], g.weights[lo:hi]
	for i, u := range adj {
		if !yield(i, u, wt[i]) {
			return false
		}
	}
	return true
}

// Bytes returns the total size of the CSR's storage arrays.
func (g *CSR) Bytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.neighbors))*4 + int64(len(g.weights))*4 +
		int64(len(g.norm))*8 + int64(len(g.sqrtNorm))*8 + int64(len(g.maxW))*4
}

// ResidentBytes equals Bytes for the heap-backed CSR.
func (g *CSR) ResidentBytes() int64 { return g.Bytes() }

// Materialize returns g as a concrete *CSR, decompressing or rebuilding when
// necessary. Algorithms that genuinely need flat random-access arrays (the
// anytime clusterer's checkpointable state, pSCAN, SCAN++) call this at their
// boundary; everything else iterates through the interface.
func Materialize(g Graph) *CSR {
	switch t := g.(type) {
	case *CSR:
		return t
	case *CompressedCSR:
		return t.Decompress()
	default:
		n := g.NumVertices()
		var b Builder
		b.SetNumVertices(n)
		for v := int32(0); v < int32(n); v++ {
			g.EachNeighbor(v, func(_ int, u int32, w float32) bool {
				if u > v {
					b.AddEdge(v, u, w)
				}
				return true
			})
		}
		return b.MustBuild()
	}
}

// Cursor provides zero-allocation adjacency reads from any backend. For a
// *CSR it returns aliases of the flat arrays (free); for a *CompressedCSR it
// decodes into buffers owned by the cursor, reused across calls. A cursor is
// NOT safe for concurrent use and each Neighbors call invalidates the slices
// returned by the previous one — use one cursor per worker, and two when a
// kernel holds two adjacency lists at once.
type Cursor struct {
	g   Graph
	csr *CSR
	cg  *CompressedCSR
	nbr []int32
	wt  []float32
}

// NewCursor returns a cursor over g with buffers sized to g's maximum degree.
func NewCursor(g Graph) *Cursor {
	c := &Cursor{g: g}
	switch t := g.(type) {
	case *CSR:
		c.csr = t
	case *CompressedCSR:
		c.cg = t
		c.nbr = make([]int32, t.MaxDegree())
	default:
		c.nbr = make([]int32, 0, 64)
		c.wt = make([]float32, 0, 64)
	}
	return c
}

// Neighbors returns v's sorted adjacency and weights. The slices are valid
// until the next call on this cursor.
func (c *Cursor) Neighbors(v int32) ([]int32, []float32) {
	switch {
	case c.csr != nil:
		return c.csr.Neighbors(v)
	case c.cg != nil:
		return c.cg.decodeInto(v, c.nbr)
	default:
		c.nbr, c.wt = c.nbr[:0], c.wt[:0]
		c.g.EachNeighbor(v, func(_ int, u int32, w float32) bool {
			c.nbr = append(c.nbr, u)
			c.wt = append(c.wt, w)
			return true
		})
		return c.nbr, c.wt
	}
}

// PropagateMirrors copies per-arc values from each arc's canonical slot to
// its mirror: after a pass that fills vals[e] for every arc e = (p,q) with
// q > p, PropagateMirrors fills vals[f] for the reverse arc f = (q,p). This
// replaces writes through ReverseEdgeIndex, which a compressed backend cannot
// offer: the compressed walk keeps one monotone decoder position per vertex
// (u values arrive in ascending order for fixed q, matching q's sorted
// adjacency prefix), so the whole fill is O(|arcs|) with no 8-byte-per-arc
// reverse index ever materialized.
func PropagateMirrors[T any](g Graph, vals []T) {
	n := int32(g.NumVertices())
	// cursor[q] is the next unfilled slot in q's adjacency prefix of ids < q.
	// Since p ascends and adjacency lists are sorted, the mirror writes into q
	// arrive in exactly q's prefix order, so each arc (q,p) with p < q is
	// found by advancing cursor[q] once — without ever decoding q's list.
	cursor := make([]int64, n)
	for q := int32(0); q < n; q++ {
		lo, _ := g.NeighborRange(q)
		cursor[q] = lo
	}
	for p := int32(0); p < n; p++ {
		lo, _ := g.NeighborRange(p)
		g.EachNeighbor(p, func(i int, q int32, _ float32) bool {
			if q > p {
				vals[cursor[q]] = vals[lo+int64(i)]
				cursor[q]++
			}
			return true
		})
	}
}
