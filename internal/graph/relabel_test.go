package graph

import "testing"

func TestRelabelByDegreeIsIsomorphic(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomGraphWeighted(200, 900, seed)
		h, perm := RelabelByDegree(g)

		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: relabeled graph invalid: %v", seed, err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumArcs() != g.NumArcs() {
			t.Fatalf("seed %d: size changed: %d/%d vertices, %d/%d arcs",
				seed, h.NumVertices(), g.NumVertices(), h.NumArcs(), g.NumArcs())
		}
		// perm is a permutation.
		seen := make([]bool, g.NumVertices())
		for old, newV := range perm {
			if newV < 0 || int(newV) >= g.NumVertices() || seen[newV] {
				t.Fatalf("seed %d: perm is not a permutation at old id %d", seed, old)
			}
			seen[newV] = true
		}
		// Every edge maps with its weight; degrees are preserved pointwise.
		for u := int32(0); u < int32(g.NumVertices()); u++ {
			if g.Degree(u) != h.Degree(perm[u]) {
				t.Fatalf("seed %d: degree of %d changed under relabeling", seed, u)
			}
			adj, wts := g.Neighbors(u)
			for j, q := range adj {
				if w := h.EdgeWeight(perm[u], perm[q]); w != wts[j] {
					t.Fatalf("seed %d: edge (%d,%d) weight %v became %v", seed, u, q, wts[j], w)
				}
			}
		}
	}
}

func TestRelabelByDegreeOrdersDegreesDescending(t *testing.T) {
	g := randomGraphWeighted(300, 2000, 7)
	h, perm := RelabelByDegree(g)
	for v := int32(1); v < int32(h.NumVertices()); v++ {
		if h.Degree(v-1) < h.Degree(v) {
			t.Fatalf("degree sequence not non-increasing at new id %d", v)
		}
	}
	// Ties break by old id: among equal degrees, old ids must ascend.
	oldOf := make([]int32, len(perm))
	for old, newV := range perm {
		oldOf[newV] = int32(old)
	}
	for v := int32(1); v < int32(h.NumVertices()); v++ {
		if h.Degree(v-1) == h.Degree(v) && oldOf[v-1] >= oldOf[v] {
			t.Fatalf("tie at degree %d not broken by old id (new ids %d,%d → old %d,%d)",
				h.Degree(v), v-1, v, oldOf[v-1], oldOf[v])
		}
	}
}

func TestRelabelByDegreeEmptyAndSingleton(t *testing.T) {
	var b Builder
	b.SetNumVertices(3)
	g, err := b.Build() // three isolated vertices
	if err != nil {
		t.Fatal(err)
	}
	h, perm := RelabelByDegree(g)
	if h.NumVertices() != 3 || h.NumArcs() != 0 || len(perm) != 3 {
		t.Fatalf("isolated-vertex relabel wrong shape")
	}
}
