package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadMETIS parses a graph in the METIS/Chaco format used throughout the
// graph partitioning and clustering ecosystem: a header line
// "n m [fmt [ncon]]" followed by one line per vertex listing its 1-indexed
// neighbors, with edge weights interleaved when fmt enables them (bit 1,
// i.e. "1" or "001" or "011") and ncon vertex weights prefixed when fmt has
// bit 2 ("10"/"11"). Vertex weights are parsed and discarded (SCAN
// semantics only use edge weights). Comment lines start with '%'.
func LoadMETIS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	nextLine := func() (string, bool) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || line[0] == '%' {
				continue
			}
			return line, true
		}
		return "", false
	}

	header, ok := nextLine()
	if !ok {
		return nil, fmt.Errorf("graph: METIS input empty")
	}
	fields := strings.Fields(header)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: METIS header needs 'n m', got %q", header)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("graph: bad METIS vertex count %q", fields[0])
	}
	m, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || m < 0 {
		return nil, fmt.Errorf("graph: bad METIS edge count %q", fields[1])
	}
	hasEdgeWeights := false
	hasVertexWeights := false
	ncon := 0
	if len(fields) >= 3 {
		f := fields[2]
		if len(f) > 3 {
			return nil, fmt.Errorf("graph: bad METIS fmt %q", f)
		}
		for _, c := range f {
			if c != '0' && c != '1' {
				return nil, fmt.Errorf("graph: bad METIS fmt %q", f)
			}
		}
		// Right-most bit: edge weights; next: vertex weights.
		hasEdgeWeights = strings.HasSuffix(f, "1")
		if len(f) >= 2 && f[len(f)-2] == '1' {
			hasVertexWeights = true
			ncon = 1
		}
	}
	if len(fields) >= 4 && hasVertexWeights {
		ncon, err = strconv.Atoi(fields[3])
		if err != nil || ncon < 1 {
			return nil, fmt.Errorf("graph: bad METIS ncon %q", fields[3])
		}
	}

	var b Builder
	b.SetNumVertices(n)
	for v := 0; v < n; v++ {
		line, ok := nextLine()
		if !ok {
			return nil, fmt.Errorf("graph: METIS input ends at vertex %d of %d", v+1, n)
		}
		toks := strings.Fields(line)
		i := ncon // skip vertex weights
		if i > len(toks) {
			return nil, fmt.Errorf("graph: METIS vertex %d: missing vertex weights", v+1)
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil {
				return nil, fmt.Errorf("graph: METIS vertex %d: bad neighbor %q", v+1, toks[i])
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: METIS vertex %d: neighbor %d out of range 1..%d", v+1, u, n)
			}
			i++
			w := float32(1)
			if hasEdgeWeights {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: METIS vertex %d: neighbor %d missing edge weight", v+1, u)
				}
				wf, err := strconv.ParseFloat(toks[i], 32)
				if err != nil {
					return nil, fmt.Errorf("graph: METIS vertex %d: bad edge weight %q", v+1, toks[i])
				}
				w = float32(wf)
				i++
			}
			b.AddEdge(int32(v), int32(u-1), w)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: METIS header declares %d edges, adjacency encodes %d", m, g.NumEdges())
	}
	return g, nil
}

// WriteMETIS writes the graph in METIS format with edge weights (fmt 001).
func (g *CSR) WriteMETIS(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	fmt.Fprintf(bw, "%% anyscan METIS export\n%d %d 001\n", n, g.NumEdges())
	for v := int32(0); v < int32(n); v++ {
		adj, wts := g.Neighbors(v)
		for i, q := range adj {
			if i > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%d %g", q+1, wts[i])
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
