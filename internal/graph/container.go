package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"anyscan/internal/frame"
)

// CompressedKind is the framed-container family of on-disk compressed graphs
// (conventional extension: .csrz). The payload layout is designed for
// zero-copy mmap loads: every fixed-width section sits at a file offset
// divisible by its element size, so the loader can alias typed slices
// directly onto the mapping instead of decoding.
//
// Payload layout (all little-endian; file offset = 20-byte frame header +
// payload offset):
//
//	off   size          field
//	  0      4          alignment pad (zeros) — brings the next field to
//	                     absolute file offset 24, a multiple of 8
//	  4      8          n (vertices)
//	 12      8          edges
//	 20      8          flags (bit 0: unit weights — no weight section)
//	 28      8          maxDeg
//	 36      8          dataLen (varint stream bytes)
//	 44      8          reserved (0)
//	 52  (n+1)*8        arcOff   — cumulative degrees
//	  …  (n+1)*8        byteOff  — varint stream offsets
//	  …      n*8        norm     (float64)
//	  …      n*8        sqrtNorm (float64)
//	  …      n*4        maxW     (float32)
//	  …     0..4        pad to a multiple of 8
//	  …   arcs*4        weights  (float32; absent when unit weights)
//	  …     0..4        pad to a multiple of 8
//	  …  dataLen        varint byte-delta adjacency stream
var CompressedKind = frame.Kind{
	Magic:      0xC5_1C_5A_C1,
	Version:    1,
	Name:       "compressed graph",
	MaxPayload: 1 << 40,
}

const (
	cgFlagUnitWeights = 1 << 0

	// cgPad + cgHeaderLen position the first array section at payload offset
	// 52, i.e. absolute file offset 72 — a multiple of 8.
	cgPad       = 4
	cgHeaderLen = 6 * 8
)

func pad8(off int64) int64 { return (8 - off%8) % 8 }

// WriteCompressed frames the compressed graph and writes it to w.
func (c *CompressedCSR) WriteCompressed(w io.Writer) error {
	return CompressedKind.Write(w, c.encodePayload())
}

// WriteCompressedFile writes the compressed graph to path atomically (temp
// file + fsync + rename), so a crash mid-write never leaves a torn file.
func (c *CompressedCSR) WriteCompressedFile(path string) error {
	return CompressedKind.WriteFile(path, c.encodePayload())
}

func (c *CompressedCSR) encodePayload() []byte {
	var buf bytes.Buffer
	buf.Grow(int(c.Bytes()) + 128)
	buf.Write(make([]byte, cgPad))
	var u [8]byte
	putU64 := func(x uint64) {
		binary.LittleEndian.PutUint64(u[:], x)
		buf.Write(u[:])
	}
	flags := uint64(0)
	if c.unit {
		flags |= cgFlagUnitWeights
	}
	putU64(uint64(c.n))
	putU64(uint64(c.edges))
	putU64(flags)
	putU64(uint64(c.maxDeg))
	putU64(uint64(len(c.data)))
	putU64(0)
	for _, x := range c.arcOff {
		putU64(uint64(x))
	}
	for _, x := range c.byteOf {
		putU64(uint64(x))
	}
	for _, x := range c.norm {
		putU64(math.Float64bits(x))
	}
	for _, x := range c.sqrtNorm {
		putU64(math.Float64bits(x))
	}
	var f [4]byte
	for _, x := range c.maxW {
		binary.LittleEndian.PutUint32(f[:], math.Float32bits(x))
		buf.Write(f[:])
	}
	buf.Write(make([]byte, pad8(int64(buf.Len()))))
	if !c.unit {
		for _, x := range c.weights {
			binary.LittleEndian.PutUint32(f[:], math.Float32bits(x))
			buf.Write(f[:])
		}
		buf.Write(make([]byte, pad8(int64(buf.Len()))))
	}
	buf.Write(c.data)
	return buf.Bytes()
}

// ReadCompressed reads one framed compressed graph from a stream. The frame
// CRC is always verified (the bytes are read anyway) and the payload is
// copy-decoded into heap arrays; for file paths prefer OpenCompressedFile,
// which maps the file instead of loading it.
func ReadCompressed(r io.Reader) (*CompressedCSR, error) {
	payload, err := CompressedKind.Read(r)
	if err != nil {
		return nil, err
	}
	return decodeCompressed(payload, false, nil)
}

// CompressedOpenOptions configures OpenCompressedFile.
type CompressedOpenOptions struct {
	// VerifyCRC checksums the whole file before use. Off by default: the
	// point of the mmap load is to touch no payload pages up front, and the
	// O(n) structural offset validation still rejects most corruption.
	// Enable for files of untrusted provenance; note that a corrupt varint
	// stream that passes the structural checks panics at decode time.
	VerifyCRC bool
	// ValidateFull additionally decodes every adjacency list and checks the
	// full CSR invariants (sortedness, symmetry, weight positivity). Implies
	// reading the whole file. Used by `anyscan graph convert` after writing.
	ValidateFull bool
}

// OpenCompressedFile maps the compressed graph container at path. The
// adjacency stream and all fixed-width sections alias the mapping, so the
// open cost is O(n) (the structural offset validation) regardless of edge
// count, and resident memory stays near zero until queries fault pages in —
// this is how anyscand serves graphs far larger than RAM.
//
// The returned graph holds the mapping until it is garbage collected or
// Close is called. It is read-only in the strictest sense: attempting to
// write through any of its slices faults.
func OpenCompressedFile(path string, opts CompressedOpenOptions) (*CompressedCSR, error) {
	m, err := CompressedKind.MapFile(path, opts.VerifyCRC)
	if err != nil {
		return nil, err
	}
	c, err := decodeCompressed(m.Payload, m.Mapped, m)
	if err != nil {
		m.Close()
		return nil, err
	}
	if opts.ValidateFull {
		if err := c.Validate(); err != nil {
			m.Close()
			return nil, err
		}
	}
	return c, nil
}

// hostLittleEndian reports whether typed slices can alias the little-endian
// file sections directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// decodeCompressed parses one container payload. With zeroCopy set (mmap
// path on a little-endian host) the typed sections alias the payload bytes;
// otherwise they are copy-decoded into heap arrays.
func decodeCompressed(payload []byte, zeroCopy bool, closer io.Closer) (*CompressedCSR, error) {
	if len(payload) < cgPad+cgHeaderLen {
		return nil, fmt.Errorf("anyscan: compressed graph payload too short (%d bytes)", len(payload))
	}
	h := payload[cgPad:]
	u64 := func(i int) uint64 { return binary.LittleEndian.Uint64(h[i*8:]) }
	n := u64(0)
	edges := u64(1)
	flags := u64(2)
	maxDeg := u64(3)
	dataLen := u64(4)
	const maxVerts = 1 << 33
	if n > maxVerts || maxDeg > n {
		return nil, fmt.Errorf("anyscan: implausible compressed graph header (n=%d maxDeg=%d)", n, maxDeg)
	}
	unit := flags&cgFlagUnitWeights != 0

	c := &CompressedCSR{
		n:      int(n),
		edges:  int64(edges),
		unit:   unit,
		maxDeg: int(maxDeg),
		closer: closer,
	}

	off := int64(cgPad + cgHeaderLen)
	need := func(size int64) ([]byte, error) {
		if size < 0 || off+size > int64(len(payload)) {
			return nil, fmt.Errorf("anyscan: compressed graph truncated (need %d bytes at offset %d, payload is %d)",
				size, off, len(payload))
		}
		s := payload[off : off+size]
		off += size
		return s, nil
	}

	var err error
	if c.arcOff, err = sliceI64(need, int64(n)+1, zeroCopy, &c.residentBytes); err != nil {
		return nil, err
	}
	if c.byteOf, err = sliceI64(need, int64(n)+1, zeroCopy, &c.residentBytes); err != nil {
		return nil, err
	}
	var normBits, sqrtBits []int64
	if normBits, err = sliceI64(need, int64(n), zeroCopy, &c.residentBytes); err != nil {
		return nil, err
	}
	if sqrtBits, err = sliceI64(need, int64(n), zeroCopy, &c.residentBytes); err != nil {
		return nil, err
	}
	c.norm = i64ToF64(normBits)
	c.sqrtNorm = i64ToF64(sqrtBits)
	if c.maxW, err = sliceF32(need, int64(n), zeroCopy, &c.residentBytes); err != nil {
		return nil, err
	}
	if _, err = need(pad8(off)); err != nil {
		return nil, err
	}
	if !unit {
		arcs := int64(2 * edges)
		if c.weights, err = sliceF32(need, arcs, zeroCopy, &c.residentBytes); err != nil {
			return nil, err
		}
		if _, err = need(pad8(off)); err != nil {
			return nil, err
		}
	}
	if c.data, err = need(int64(dataLen)); err != nil {
		return nil, err
	}
	if !zeroCopy {
		c.residentBytes += int64(len(c.data))
	}
	if off != int64(len(payload)) {
		return nil, fmt.Errorf("anyscan: compressed graph has %d trailing payload bytes", int64(len(payload))-off)
	}
	if err := c.validateOffsets(); err != nil {
		return nil, err
	}
	if unit {
		c.ones = onesSlice(c.maxDeg)
	}
	if closer == nil {
		// Heap-backed (stream read): everything is resident.
		c.residentBytes = c.Bytes()
	}
	return c, nil
}

type needFn func(size int64) ([]byte, error)

// sliceI64 returns count int64s from the section stream: a zero-copy alias
// when permitted and 8-aligned, a decoded heap copy otherwise (the copy is
// charged to resident).
func sliceI64(need needFn, count int64, zeroCopy bool, resident *int64) ([]int64, error) {
	raw, err := need(count * 8)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), count), nil
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	*resident += count * 8
	return out, nil
}

// sliceF32 is sliceI64 for float32 sections (4-byte alignment).
func sliceF32(need needFn, count int64, zeroCopy bool, resident *int64) ([]float32, error) {
	raw, err := need(count * 4)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, nil
	}
	if zeroCopy && hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&raw[0])), count), nil
	}
	out := make([]float32, count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	*resident += count * 4
	return out, nil
}

// i64ToF64 reinterprets an int64 slice as float64 bit patterns. Same memory
// when the source is a zero-copy alias; a cheap in-place reinterpretation
// when it is a heap copy.
func i64ToF64(s []int64) []float64 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&s[0])), len(s))
}
