package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// LoadOptions configures edge-list parsing.
type LoadOptions struct {
	// Remap compacts arbitrary vertex ids into the dense range [0, n). When
	// false, ids are used verbatim and must be non-negative.
	Remap bool
	// DefaultWeight is assigned to edges without a weight column (0 → 1).
	DefaultWeight float32
}

// LoadEdgeList parses a whitespace-separated edge list ("u v" or "u v w" per
// line). Lines starting with '#', '%' or '//' are comments, as in SNAP and
// Matrix Market exports. Returns the graph and, when opts.Remap is set, the
// original id of each dense vertex.
func LoadEdgeList(r io.Reader, opts LoadOptions) (*CSR, []int64, error) {
	if opts.DefaultWeight <= 0 {
		opts.DefaultWeight = 1
	}
	var b Builder
	var ids []int64
	remap := map[int64]int32{}
	lookup := func(raw int64) (int32, error) {
		if !opts.Remap {
			if raw < 0 {
				return 0, fmt.Errorf("graph: negative vertex id %d (enable Remap?)", raw)
			}
			return int32(raw), nil
		}
		if v, ok := remap[raw]; ok {
			return v, nil
		}
		v := int32(len(ids))
		remap[raw] = v
		ids = append(ids, raw)
		return v, nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' || strings.HasPrefix(line, "//") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		uRaw, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source id: %w", lineNo, err)
		}
		vRaw, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target id: %w", lineNo, err)
		}
		w := opts.DefaultWeight
		if len(fields) >= 3 {
			wf, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			// NaN propagates through σ(p,q) and makes every similarity
			// comparison false; ±Inf and negative weights silently skew σ
			// and the checkpoint graph fingerprint. Reject them here with
			// the line number instead of letting them poison the CSR.
			switch {
			case math.IsNaN(wf):
				return nil, nil, fmt.Errorf("graph: line %d: weight is NaN", lineNo)
			case math.IsInf(wf, 0):
				return nil, nil, fmt.Errorf("graph: line %d: weight is infinite", lineNo)
			case wf < 0:
				return nil, nil, fmt.Errorf("graph: line %d: weight %g is negative (edge weights must be >= 0)", lineNo, wf)
			}
			w = float32(wf)
		}
		u, err := lookup(uRaw)
		if err != nil {
			return nil, nil, err
		}
		v, err := lookup(vRaw)
		if err != nil {
			return nil, nil, err
		}
		b.AddEdge(u, v, w)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	if opts.Remap {
		b.SetNumVertices(len(ids))
	}
	g, err := b.Build()
	return g, ids, err
}

// LoadEdgeListFile opens and parses path as an edge list.
func LoadEdgeListFile(path string, opts LoadOptions) (*CSR, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadEdgeList(f, opts)
}

// LoadFile loads a graph choosing the format from the file extension:
// ".metis"/".graph" → METIS, ".bin" → the compact binary container, anything
// else → whitespace edge list with id remapping. The returned id slice maps
// dense vertex ids back to the original file ids and is non-nil only for the
// edge-list case.
//
// A ".csrz" compressed container is decompressed to a flat CSR here; use
// LoadAny to keep the compressed (mmap-backed) representation.
func LoadFile(path string) (*CSR, []int64, error) {
	if strings.HasSuffix(path, ".csrz") {
		c, err := OpenCompressedFile(path, CompressedOpenOptions{})
		if err != nil {
			return nil, nil, err
		}
		g := c.Decompress()
		c.Close()
		return g, nil, nil
	}
	return loadFlatFile(path)
}

// LoadAny loads a graph in its natural in-memory representation: ".csrz"
// files open as mmap-backed *CompressedCSR (near-zero load cost, serves
// graphs larger than RAM), every other extension loads as a flat *CSR
// exactly like LoadFile.
func LoadAny(path string) (Graph, []int64, error) {
	if strings.HasSuffix(path, ".csrz") {
		c, err := OpenCompressedFile(path, CompressedOpenOptions{})
		if err != nil {
			return nil, nil, err
		}
		return c, nil, nil
	}
	g, ids, err := loadFlatFile(path)
	if err != nil {
		return nil, nil, err
	}
	return g, ids, nil
}

func loadFlatFile(path string) (*CSR, []int64, error) {
	switch {
	case strings.HasSuffix(path, ".metis"), strings.HasSuffix(path, ".graph"):
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := LoadMETIS(f)
		return g, nil, err
	case strings.HasSuffix(path, ".bin"):
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		g, err := ReadBinary(f)
		return g, nil, err
	default:
		return LoadEdgeListFile(path, LoadOptions{Remap: true})
	}
}

// WriteEdgeList writes the graph as "u v w" lines, one per undirected edge
// (u < v), in a format LoadEdgeList can read back.
func (g *CSR) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := int32(g.NumVertices())
	fmt.Fprintf(bw, "# anyscan edge list: %d vertices, %d edges\n", n, g.NumEdges())
	for u := int32(0); u < n; u++ {
		for e := g.offsets[u]; e < g.offsets[u+1]; e++ {
			v := g.neighbors[e]
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, g.weights[e]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

const binaryMagic = uint32(0xA17C5CA1) // "anySCAn" graph container

// WriteBinary serializes the CSR in a compact little-endian binary layout
// (magic, version, n, arc count, offsets, neighbors, weights).
func (g *CSR) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []any{binaryMagic, uint32(1), uint64(g.NumVertices()), uint64(len(g.neighbors))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.neighbors); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.weights); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version uint32
	var n, m uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, err
	}
	if n > 1<<34 || m > 1<<40 || m%2 != 0 {
		return nil, fmt.Errorf("graph: implausible binary header (n=%d, arcs=%d)", n, m)
	}
	// Arrays are read in bounded chunks so a hostile header cannot force a
	// huge allocation before the (short) stream runs out.
	g := &CSR{}
	var err error
	if g.offsets, err = readInt64s(br, n+1); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if g.neighbors, err = readInt32s(br, m); err != nil {
		return nil, fmt.Errorf("graph: reading neighbors: %w", err)
	}
	if g.weights, err = readFloat32s(br, m); err != nil {
		return nil, fmt.Errorf("graph: reading weights: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	g.finalize()
	return g, nil
}

// readChunkLimit bounds per-read allocations while deserializing.
const readChunkLimit = 1 << 20

func readInt64s(r io.Reader, count uint64) ([]int64, error) {
	var out []int64
	for count > 0 {
		c := count
		if c > readChunkLimit {
			c = readChunkLimit
		}
		chunk := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

func readInt32s(r io.Reader, count uint64) ([]int32, error) {
	var out []int32
	for count > 0 {
		c := count
		if c > readChunkLimit {
			c = readChunkLimit
		}
		chunk := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}

func readFloat32s(r io.Reader, count uint64) ([]float32, error) {
	var out []float32
	for count > 0 {
		c := count
		if c > readChunkLimit {
			c = readChunkLimit
		}
		chunk := make([]float32, c)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
		count -= c
	}
	return out, nil
}
