package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// randomCSR builds a random graph: n vertices, ~avgDeg average degree,
// optionally unit weights.
func randomCSR(t *testing.T, rng *rand.Rand, n int, avgDeg float64, unitWeights bool) *CSR {
	t.Helper()
	var b Builder
	b.SetNumVertices(n)
	edges := int(float64(n) * avgDeg / 2)
	for i := 0; i < edges; i++ {
		u := rng.Int31n(int32(n))
		v := rng.Int31n(int32(n))
		if u == v {
			continue
		}
		w := float32(1)
		if !unitWeights {
			w = 0.5 + rng.Float32()
		}
		b.AddEdge(u, v, w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("building random graph: %v", err)
	}
	return g
}

// TestCompressedRoundTrip is the property test of the issue: for any
// generated CSR, Compress produces an isomorphic graph — per-vertex neighbor
// and weight equality, identical arc indexing, bit-identical norms — and
// Decompress inverts it exactly.
func TestCompressedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		n      int
		avgDeg float64
		unit   bool
	}{
		{1, 0, true}, {2, 1, false}, {50, 4, true}, {50, 4, false},
		{300, 12, false}, {300, 30, true}, {1000, 8, false}, {97, 96, false},
	}
	for _, tc := range cases {
		g := randomCSR(t, rng, tc.n, tc.avgDeg, tc.unit)
		c := Compress(g)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d unit=%v: Validate: %v", tc.n, tc.unit, err)
		}
		assertEquivalentBackends(t, g, c)
		back := c.Decompress()
		if err := back.Validate(); err != nil {
			t.Fatalf("n=%d: decompressed Validate: %v", tc.n, err)
		}
		assertEquivalentBackends(t, g, back)
		if FingerprintOf(g) != FingerprintOf(c) {
			t.Fatalf("n=%d: fingerprint differs between CSR and compressed form", tc.n)
		}
	}
}

// assertEquivalentBackends checks structural and numeric identity of two backends.
func assertEquivalentBackends(t *testing.T, want *CSR, got Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("size mismatch: got (%d,%d,%d) want (%d,%d,%d)",
			got.NumVertices(), got.NumEdges(), got.NumArcs(),
			want.NumVertices(), want.NumEdges(), want.NumArcs())
	}
	cur := NewCursor(got)
	for v := int32(0); v < int32(want.NumVertices()); v++ {
		wn, ww := want.Neighbors(v)
		gn, gw := got.Neighbors(v)
		if !reflect.DeepEqual(append([]int32{}, wn...), append([]int32{}, gn...)) {
			t.Fatalf("vertex %d: neighbors differ: got %v want %v", v, gn, wn)
		}
		for i := range ww {
			if ww[i] != gw[i] {
				t.Fatalf("vertex %d arc %d: weight %v != %v", v, i, gw[i], ww[i])
			}
		}
		cn, cw := cur.Neighbors(v)
		if !reflect.DeepEqual(append([]int32{}, wn...), append([]int32{}, cn...)) {
			t.Fatalf("vertex %d: cursor neighbors differ", v)
		}
		for i := range ww {
			if ww[i] != cw[i] {
				t.Fatalf("vertex %d arc %d: cursor weight differs", v, i)
			}
		}
		i := 0
		full := got.EachNeighbor(v, func(j int, u int32, w float32) bool {
			if j != i {
				t.Fatalf("vertex %d: EachNeighbor index %d, want %d", v, j, i)
			}
			if u != wn[i] || w != ww[i] {
				t.Fatalf("vertex %d pos %d: EachNeighbor (%d,%v), want (%d,%v)", v, i, u, w, wn[i], ww[i])
			}
			i++
			return true
		})
		if !full || i != len(wn) {
			t.Fatalf("vertex %d: EachNeighbor visited %d of %d", v, i, len(wn))
		}
		wlo, whi := want.NeighborRange(v)
		glo, ghi := got.NeighborRange(v)
		if wlo != glo || whi != ghi {
			t.Fatalf("vertex %d: NeighborRange (%d,%d) != (%d,%d)", v, glo, ghi, wlo, whi)
		}
		if got.Degree(v) != want.Degree(v) {
			t.Fatalf("vertex %d: degree mismatch", v)
		}
		if got.Norm(v) != want.Norm(v) || got.SqrtNorm(v) != want.SqrtNorm(v) || got.MaxWeight(v) != want.MaxWeight(v) {
			t.Fatalf("vertex %d: derived quantities differ", v)
		}
	}
	// Spot-check edge queries, present and absent.
	n := int32(want.NumVertices())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if got.HasEdge(u, v) != want.HasEdge(u, v) {
			t.Fatalf("HasEdge(%d,%d) disagrees", u, v)
		}
		if got.EdgeWeight(u, v) != want.EdgeWeight(u, v) {
			t.Fatalf("EdgeWeight(%d,%d) disagrees", u, v)
		}
	}
}

// TestCompressedEarlyExit checks EachNeighbor's early-termination contract.
func TestCompressedEarlyExit(t *testing.T) {
	g := randomCSR(t, rand.New(rand.NewSource(3)), 100, 10, false)
	c := Compress(g)
	for v := int32(0); v < 100; v++ {
		if c.Degree(v) < 2 {
			continue
		}
		seen := 0
		full := c.EachNeighbor(v, func(i int, _ int32, _ float32) bool {
			seen++
			return i < 0 // stop immediately after the first neighbor
		})
		if full || seen != 1 {
			t.Fatalf("vertex %d: early exit visited %d (full=%v)", v, seen, full)
		}
	}
}

// TestPropagateMirrors fills canonical arc slots with unique values and
// checks every mirror slot receives its pair's value, on both backends.
func TestPropagateMirrors(t *testing.T) {
	g := randomCSR(t, rand.New(rand.NewSource(9)), 200, 14, false)
	for _, backend := range []Graph{g, Compress(g)} {
		vals := make([]float64, g.NumArcs())
		for p := int32(0); p < 200; p++ {
			lo, _ := backend.NeighborRange(p)
			backend.EachNeighbor(p, func(i int, q int32, _ float32) bool {
				if q > p {
					vals[lo+int64(i)] = float64(p)*1e6 + float64(q)
				}
				return true
			})
		}
		PropagateMirrors(backend, vals)
		rev := g.ReverseEdgeIndex()
		for e := range vals {
			if vals[e] != vals[rev[e]] {
				t.Fatalf("arc %d: mirror not propagated (%v != %v)", e, vals[e], vals[rev[e]])
			}
		}
	}
}

// TestCompressedSizeRatio documents that delta encoding actually shrinks a
// relabeled graph (the claim the backend exists for).
func TestCompressedSizeRatio(t *testing.T) {
	g := randomCSR(t, rand.New(rand.NewSource(11)), 2000, 20, true)
	rel, _ := RelabelByDegree(g)
	c := Compress(rel)
	if r := float64(c.Bytes()) / float64(rel.Bytes()); r > 0.8 {
		t.Fatalf("compressed/raw ratio %.2f, expected < 0.8", r)
	}
}

func TestCompressedStreamRoundTrip(t *testing.T) {
	g := randomCSR(t, rand.New(rand.NewSource(5)), 400, 9, false)
	c := Compress(g)
	var buf bytes.Buffer
	if err := c.WriteCompressed(&buf); err != nil {
		t.Fatalf("WriteCompressed: %v", err)
	}
	back, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatalf("ReadCompressed: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("Validate after stream round trip: %v", err)
	}
	assertEquivalentBackends(t, g, back)
}
