package linkspace

import (
	"testing"

	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/testutil"
)

// bowtie: two triangles sharing vertex 2 — the canonical overlapping case.
// Vertex partitioning puts 2 in one community (or makes it a hub); link
// communities put it in both.
func bowtie(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromUnweightedEdges(5, [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{2, 3}, {2, 4}, {3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBowtieOverlap(t *testing.T) {
	o, err := Communities(bowtie(t), Options{Mu: 2, Eps: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if o.NumCommunities != 2 {
		t.Fatalf("want 2 link communities, got %d", o.NumCommunities)
	}
	if got := o.OverlapDegree(2); got != 2 {
		t.Fatalf("shared vertex overlap degree = %d, want 2 (memberships %v)", got, o.Memberships[2])
	}
	for _, v := range []int32{0, 1, 3, 4} {
		if got := o.OverlapDegree(v); got != 1 {
			t.Errorf("vertex %d overlap degree = %d, want 1", v, got)
		}
	}
	if o.Memberships[0][0] == o.Memberships[3][0] {
		t.Errorf("the two triangles landed in one community")
	}
}

func TestLinkGraphShape(t *testing.T) {
	g := bowtie(t)
	o, err := Communities(g, Options{Mu: 2, Eps: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Edges) != int(g.NumEdges()) {
		t.Fatalf("link nodes = %d, want %d", len(o.Edges), g.NumEdges())
	}
	// Every pair of edges sharing an endpoint must be adjacent in L(G):
	// Σ_v d(v)(d(v)-1)/2 = (2·1 ×4 + 4·3)/2... compute directly.
	want := int64(0)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		d := int64(g.Degree(v))
		want += d * (d - 1) / 2
	}
	if o.LinkGraph.NumEdges() != want {
		t.Fatalf("link edges = %d, want %d", o.LinkGraph.NumEdges(), want)
	}
	if err := o.LinkGraph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipsConsistentWithEdgeCommunities(t *testing.T) {
	g := gen.PlantedPartition(120, 3, 0.4, 0.02, gen.WeightConfig{}, 5)
	o, err := Communities(g, Options{Mu: 3, Eps: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// Every labeled edge's community must appear in both endpoints'
	// membership lists, and vice versa.
	has := func(list []int32, l int32) bool {
		for _, x := range list {
			if x == l {
				return true
			}
		}
		return false
	}
	seen := make(map[int32]map[int32]bool) // vertex → labels from edges
	for i, e := range o.Edges {
		l := o.EdgeCommunity[i]
		if l < 0 {
			continue
		}
		for _, v := range []int32{e[0], e[1]} {
			if !has(o.Memberships[v], l) {
				t.Fatalf("edge %v community %d missing from vertex %d memberships", e, l, v)
			}
			if seen[v] == nil {
				seen[v] = map[int32]bool{}
			}
			seen[v][l] = true
		}
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		for _, l := range o.Memberships[v] {
			if !seen[v][l] {
				t.Fatalf("vertex %d claims community %d without an incident edge there", v, l)
			}
		}
	}
}

func TestHubCapBoundsLinkGraph(t *testing.T) {
	// A star with a huge hub: without the cap the link graph would have
	// d(d-1)/2 ≈ 2M edges; with it, growth is linear in the cap.
	var b graph.Builder
	hubDeg := int32(2000)
	for i := int32(1); i <= hubDeg; i++ {
		b.AddEdgeUnweighted(0, i)
	}
	g := b.MustBuild()
	o, err := Communities(g, Options{Mu: 2, Eps: 0.2, MaxLinkDegree: 32})
	if err != nil {
		t.Fatal(err)
	}
	if o.LinkGraph.NumEdges() > 32*32 {
		t.Fatalf("hub cap ineffective: %d link edges", o.LinkGraph.NumEdges())
	}
}

func TestKarateOverlaps(t *testing.T) {
	g := testutil.Karate()
	o, err := Communities(g, Options{Mu: 3, Eps: 0.65})
	if err != nil {
		t.Fatal(err)
	}
	if o.NumCommunities < 2 {
		t.Fatalf("karate should split into ≥2 link communities, got %d", o.NumCommunities)
	}
	overlapping := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if o.OverlapDegree(v) >= 2 {
			overlapping++
		}
	}
	if overlapping == 0 {
		t.Fatal("no overlapping members found in karate club")
	}
}

func TestRejectsBadOptions(t *testing.T) {
	g := bowtie(t)
	if _, err := Communities(g, Options{Mu: 0, Eps: 0.5}); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := Communities(g, Options{Mu: 2, Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
}
