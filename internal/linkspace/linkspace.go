// Package linkspace implements overlapping community detection through the
// link-space transformation of LinkSCAN (Lim et al., ICDE 2014), the
// remaining member of the SCAN family surveyed in the paper's related work:
// instead of clustering vertices, cluster the *edges* of the graph. Each
// edge belongs to exactly one link community, so a vertex naturally belongs
// to every community its incident edges were assigned to — overlapping
// membership, which vertex-partitioning SCAN cannot express (a vertex in
// two communities is at best a hub there).
//
// Construction: the link graph L(G) has one node per edge of G; two link
// nodes are adjacent when their edges share an endpoint, and the connection
// is weighted by the structural similarity of the two non-shared endpoints
// (two links hanging off one vertex belong together when their far ends
// move in the same circles). Any clustering algorithm from this repository
// then runs on L(G); anySCAN is used so even the link-space clustering is
// anytime-capable.
package linkspace

import (
	"fmt"
	"sort"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
)

// Options configures the link-space clustering.
type Options struct {
	// Mu and Eps are SCAN parameters applied in the link space.
	Mu  int
	Eps float64
	// Threads for the anySCAN run over the link graph (0 = GOMAXPROCS).
	Threads int
	// MaxLinkDegree caps the links considered per shared endpoint; vertices
	// of degree d contribute d·(d-1)/2 link-graph edges, so hubs explode
	// the transformation. Links through a vertex with degree above the cap
	// connect only to their cap nearest link neighbors. 0 = 64.
	MaxLinkDegree int
}

// Overlap is the result: per-vertex overlapping community memberships.
type Overlap struct {
	// Memberships[v] lists the (sorted, distinct) communities of v — all
	// communities of its incident edges. Empty for vertices whose edges are
	// all link-space noise.
	Memberships [][]int32
	// NumCommunities is the number of distinct link communities.
	NumCommunities int
	// EdgeCommunity[i] is the community of the i-th edge (in the order of
	// Edges), or cluster.NoLabel.
	EdgeCommunity []int32
	// Edges lists the endpoints of each link-graph node.
	Edges [][2]int32
	// LinkGraph is the transformed graph the clustering ran on.
	LinkGraph *graph.CSR
}

// OverlapDegree returns how many communities v belongs to.
func (o *Overlap) OverlapDegree(v int32) int { return len(o.Memberships[v]) }

// Communities runs the link-space transformation and clustering.
func Communities(g *graph.CSR, opt Options) (*Overlap, error) {
	if opt.Mu < 1 {
		return nil, fmt.Errorf("linkspace: Mu must be >= 1, got %d", opt.Mu)
	}
	if !(opt.Eps > 0 && opt.Eps <= 1) {
		return nil, fmt.Errorf("linkspace: Eps must be in (0,1], got %v", opt.Eps)
	}
	if opt.MaxLinkDegree <= 0 {
		opt.MaxLinkDegree = 64
	}

	// Enumerate edges (u < v) and index arcs → link ids.
	n := g.NumVertices()
	var edges [][2]int32
	linkOf := make([]int32, g.NumArcs()) // arc → link id
	rev := g.ReverseEdgeIndex()
	for u := int32(0); u < int32(n); u++ {
		lo, hi := g.NeighborRange(u)
		for e := lo; e < hi; e++ {
			v, _ := g.Arc(e)
			if u < v {
				id := int32(len(edges))
				edges = append(edges, [2]int32{u, v})
				linkOf[e] = id
				linkOf[rev[e]] = id
			}
		}
	}

	// Weight for two links (x,v),(v,y) sharing v: σ(x,y) of the far
	// endpoints, floored to keep weights positive.
	eng := simeval.New(g, 0, simeval.Options{})
	farSim := func(x, y int32) float32 {
		s := eng.Sigma(x, y)
		if s < 0.05 {
			s = 0.05
		}
		return float32(s)
	}

	var b graph.Builder
	b.SetNumVertices(len(edges))
	for v := int32(0); v < int32(n); v++ {
		lo, hi := g.NeighborRange(v)
		d := int(hi - lo)
		if d < 2 {
			continue
		}
		cap := d
		if cap > opt.MaxLinkDegree {
			cap = opt.MaxLinkDegree
		}
		// Pair the (possibly capped) incident links through v.
		for i := 0; i < cap; i++ {
			xi, _ := g.Arc(lo + int64(i))
			for j := i + 1; j < cap; j++ {
				yj, _ := g.Arc(lo + int64(j))
				b.AddEdge(linkOf[lo+int64(i)], linkOf[lo+int64(j)], farSim(xi, yj))
			}
		}
	}
	lg, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("linkspace: building link graph: %w", err)
	}

	// Cluster the link space with anySCAN.
	o := core.DefaultOptions()
	o.Mu, o.Eps, o.Threads = opt.Mu, opt.Eps, opt.Threads
	blk := lg.NumVertices() / 128
	if blk < 128 {
		blk = 128
	}
	o.Alpha, o.Beta = blk, blk
	res, _, err := core.Cluster(lg, o)
	if err != nil {
		return nil, err
	}

	// Map link communities back to overlapping vertex memberships.
	memberships := make([][]int32, n)
	for id, e := range edges {
		l := res.Labels[id]
		if l == cluster.NoLabel {
			continue
		}
		memberships[e[0]] = append(memberships[e[0]], l)
		memberships[e[1]] = append(memberships[e[1]], l)
	}
	for v := range memberships {
		m := memberships[v]
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
		dedup := m[:0]
		for i, l := range m {
			if i == 0 || l != m[i-1] {
				dedup = append(dedup, l)
			}
		}
		memberships[v] = dedup
	}

	return &Overlap{
		Memberships:    memberships,
		NumCommunities: res.NumClusters,
		EdgeCommunity:  res.Labels,
		Edges:          edges,
		LinkGraph:      lg,
	}, nil
}
