// Package live serves (μ, ε) clustering queries over a *mutable* graph: a
// live.Graph owns an adjacency store plus a mutation log, applies batched
// edge insert/delete/reweight operations, and incrementally patches the
// query-index structures of package index — recomputing σ only for arcs
// incident to touched vertices (the locality fact package dynamic is built
// on: mutating edge (u,v) perturbs norms, and hence σ, only for arcs
// touching u or v), repairing the σ-sorted neighbor orders, and carrying
// forward every per-μ core order the batch did not disturb.
//
// Each applied batch publishes a new immutable Epoch through copy-on-write
// per-vertex segments: untouched vertices share their segment with the
// parent epoch, so publication allocates O(touched + ring) segments, not
// O(|V|), and in-flight Query calls — which resolved an epoch pointer before
// the publish — never block and never observe torn state.
//
// The ground truth is equivalence: after any mutation sequence,
// Epoch.Query(μ, ε) is byte-identical to index.Build on the equivalent
// static CSR (Epoch.ToCSR) followed by Query. The incremental σ patch uses
// the exact float expressions of the static build — simeval.SliceDot for
// the ascending-id merge join, simeval.Crossing for the activation
// threshold, and ascending-id norm accumulation matching graph.CSR — so the
// property holds bit-for-bit, which live_test.go asserts under randomized
// interleaved mutate/query workloads.
package live

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anyscan/internal/graph"
	"anyscan/internal/index"
	"anyscan/internal/par"
	"anyscan/internal/simeval"
)

// Op is a mutation kind.
type Op uint8

// Mutation operations. OpAdd inserts the edge or updates its weight if
// present; OpDelete removes the edge and is a no-op when absent; OpReweight
// updates the weight of an edge that must already exist (it errors on an
// absent edge, catching callers whose view of the graph has drifted).
const (
	OpAdd Op = iota
	OpDelete
	OpReweight
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	case OpReweight:
		return "reweight"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Mutation is one edge operation. Endpoints are unordered (the graph is
// undirected); W is ignored for OpDelete.
type Mutation struct {
	Op   Op
	U, V int32
	W    float32
}

// validate checks one mutation structurally against a graph of n vertices,
// with the same rejection rules (and error wording) as the edge-list
// hardening in package graph and dynamic.Maintainer: self loops and NaN,
// infinite, or non-positive weights are errors, never silent corruption.
func (m Mutation) validate(n int32) error {
	if m.Op > OpReweight {
		return fmt.Errorf("unknown op %d", uint8(m.Op))
	}
	if m.U < 0 || m.U >= n {
		return fmt.Errorf("vertex %d out of range [0,%d)", m.U, n)
	}
	if m.V < 0 || m.V >= n {
		return fmt.Errorf("vertex %d out of range [0,%d)", m.V, n)
	}
	if m.U == m.V {
		return fmt.Errorf("self loop (%d,%d) is not a mutable edge", m.U, m.V)
	}
	if m.Op != OpDelete {
		switch w := float64(m.W); {
		case math.IsNaN(w):
			return errors.New("weight is NaN")
		case math.IsInf(w, 0):
			return errors.New("weight is infinite")
		case m.W <= 0:
			return fmt.Errorf("weight %g is not positive (edge weights must be > 0)", m.W)
		}
	}
	return nil
}

// LogEntry is one committed batch in the mutation log: the batch that
// produced epoch Seq from epoch Seq-1. Replaying every entry in order onto
// the epoch-0 graph reproduces the current epoch exactly.
type LogEntry struct {
	Seq  int64
	Muts []Mutation
}

// ApplyStats reports what one Apply did.
type ApplyStats struct {
	// Applied is the number of effective edge changes vs the parent epoch
	// (inserts + deletes + weight changes after resolving the batch).
	Applied int
	// NoOps is len(batch) - Applied: operations whose net effect was nothing
	// (delete of an absent edge, add with the already-present weight, ops
	// cancelled out within the batch).
	NoOps int
	// Touched is the number of vertices whose σ stars were recomputed (the
	// mutation endpoints).
	Touched int
	// SigmaRecomputed is the number of arcs whose activation threshold was
	// re-evaluated: exactly the arcs incident to touched vertices.
	SigmaRecomputed int64
	// Publish is the wall time from entering Apply to the epoch being
	// visible to readers.
	Publish time.Duration
}

// Graph is a mutable graph serving immutable epochs. One writer at a time
// applies batches (Apply serializes internally); any number of readers
// resolve epochs and query them concurrently with writers and each other.
type Graph struct {
	writeMu sync.Mutex // serializes Apply

	mu  sync.Mutex // guards the (cur, pub) pair and log
	cur atomic.Pointer[Epoch]
	pub chan struct{} // closed and replaced on every publish
	log []LogEntry

	// maxWant is the highest epoch any WaitEpoch caller has ever demanded;
	// Lag reports how far the published epoch trails it.
	maxWant atomic.Int64

	threads int
}

// FromIndex wraps an already-built query index as epoch 0 of a live graph.
// Zero-copy when the index was built over a flat *graph.CSR: the epoch's
// segments alias the index's neighbor orders, arc thresholds, and the CSR's
// adjacency and norms, so promotion of a served static index to a live graph
// costs O(|V|) pointers, not a rebuild. The index and its CSR must not be
// mutated afterwards (they are immutable by contract already).
//
// An index over any other backend — a read-only, possibly mmap-backed
// compressed graph in particular — cannot be aliased: mutations would write
// through to storage that cannot be written. FromIndex falls back to
// decompressing the graph into a private mutable CSR (one O(|V|+|E|)
// materialization, logged via slog.Default) and promotes that instead; the σ
// thresholds and neighbor orders still come from the index, so no similarity
// is recomputed either way.
func FromIndex(x *index.Index) *Graph {
	return FromIndexLogger(x, slog.Default())
}

// FromIndexLogger is FromIndex with an explicit logger for the
// decompress-fallback warning (nil disables logging).
//
// Approximate indexes (delta > 0) cannot seed a live graph: incremental
// maintenance patches σ values in place and would silently mix exact patches
// into sketch estimates whose error bands no longer describe them. Promotion
// therefore rebuilds the index exactly (one σ pass) and logs that the
// accuracy dial was dropped.
func FromIndexLogger(x *index.Index, lg *slog.Logger) *Graph {
	if a := x.Approx(); a.Delta > 0 && !a.ExactFallback {
		if lg != nil {
			lg.Warn("live: approximate index cannot back a mutable graph; rebuilding exact for promotion",
				"delta", a.Delta, "vertices", x.Graph().NumVertices(), "edges", x.Graph().NumEdges())
		}
		x = index.Build(x.Graph(), x.Threads())
	}
	g, ok := x.Graph().(*graph.CSR)
	if !ok {
		g = graph.Materialize(x.Graph())
		if lg != nil {
			lg.Warn("live: graph backend is read-only; decompressed to a mutable copy for promotion",
				"backend", fmt.Sprintf("%T", x.Graph()),
				"vertices", g.NumVertices(), "edges", g.NumEdges())
		}
	}
	n := g.NumVertices()
	arr := make([]seg, n)
	segs := make([]*seg, n)
	sigma := x.ArcSigmas()
	for v := int32(0); v < int32(n); v++ {
		adj, wt := g.Neighbors(v)
		lo, hi := g.NeighborRange(v)
		onbr, osig := x.NeighborOrder(v)
		arr[v] = seg{
			nbr: adj, wt: wt, sig: sigma[lo:hi],
			onbr: onbr, osig: osig,
			norm: g.Norm(v), sqrtNorm: g.SqrtNorm(v),
		}
		segs[v] = &arr[v]
	}
	e := &Epoch{segs: segs, edges: g.NumEdges(), threads: x.Threads(), orders: map[int]*coreOrder{}}
	out := &Graph{pub: make(chan struct{}), threads: x.Threads()}
	out.cur.Store(e)
	return out
}

// FromCSR builds the initial index for g (one full σ pass, cancellable) and
// wraps it as epoch 0.
func FromCSR(ctx context.Context, g *graph.CSR, threads int) (*Graph, error) {
	x, err := index.BuildCtx(ctx, g, threads)
	if err != nil {
		return nil, err
	}
	return FromIndex(x), nil
}

// Epoch returns the currently published epoch.
func (g *Graph) Epoch() *Epoch { return g.cur.Load() }

// NumVertices returns the vertex count (fixed for the graph's lifetime).
func (g *Graph) NumVertices() int { return len(g.cur.Load().segs) }

// Log returns a copy of the committed mutation log.
func (g *Graph) Log() []LogEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]LogEntry(nil), g.log...)
}

// Lag returns how many epochs the published state trails the newest epoch
// any WaitEpoch caller has demanded (0 when all demands are satisfied). The
// serving layer exports this as the anyscand_epoch_lag gauge.
func (g *Graph) Lag() int64 {
	if lag := g.maxWant.Load() - g.cur.Load().seq; lag > 0 {
		return lag
	}
	return 0
}

// WaitEpoch returns the current epoch once its sequence number is at least
// min, blocking until a writer publishes it or ctx expires. This is the
// read-your-writes primitive: a client that applied a batch and received
// epoch token s passes min=s and is guaranteed to observe its own write (or
// any later state). Waiting holds no locks and no admission resources — an
// abandoned waiter costs one parked goroutine until its ctx fires.
func (g *Graph) WaitEpoch(ctx context.Context, min int64) (*Epoch, error) {
	if e := g.cur.Load(); e.seq >= min {
		return e, nil
	}
	for {
		m := g.maxWant.Load()
		if m >= min || g.maxWant.CompareAndSwap(m, min) {
			break
		}
	}
	for {
		g.mu.Lock()
		e := g.cur.Load()
		ch := g.pub
		g.mu.Unlock()
		if e.seq >= min {
			return e, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, fmt.Errorf("live: epoch %d not published within deadline (currently at %d): %w", min, e.seq, ctx.Err())
		}
	}
}

// publish makes e the current epoch and wakes every WaitEpoch waiter.
func (g *Graph) publish(e *Epoch) {
	g.mu.Lock()
	g.cur.Store(e)
	close(g.pub)
	g.pub = make(chan struct{})
	g.mu.Unlock()
}

// parallelPatchMin is the affected-arc count above which the σ patch fans
// out across workers; below it a sequential loop wins.
const parallelPatchMin = 2048

// pendState is the resolved in-batch state of one edge.
type pendState struct {
	w   float32
	del bool
}

// change is one effective edge change from a vertex's point of view.
type change struct {
	to  int32
	w   float32
	del bool
}

// Apply resolves one batch of mutations against the current epoch, appends
// it to the mutation log, and publishes a new epoch with the index patched
// incrementally:
//
//   - the batch is atomic: any invalid mutation (bad vertex, self loop, bad
//     weight, reweight of an absent edge) rejects the whole batch with no
//     state change and no log entry;
//   - operations resolve sequentially within the batch (add then delete of
//     the same edge cancels out), and only the net changes are applied;
//   - σ is recomputed only for arcs incident to touched vertices (the
//     mutation endpoints); ring vertices — their unmutated neighbors — get
//     copy-on-write segments with the affected order entries repaired in
//     place; everything else is shared with the parent epoch;
//   - per-μ core orders memoized on the parent are carried into the child
//     unchanged when no touched/ring vertex moved its core threshold for
//     that μ, and patched (remove + merge-insert) otherwise.
//
// A batch whose net effect is empty publishes nothing and returns the
// current epoch (its token already satisfies read-your-writes).
//
// Apply may be called concurrently; batches serialize internally. Readers
// are never blocked.
func (g *Graph) Apply(muts []Mutation) (*Epoch, ApplyStats, error) {
	start := time.Now()
	g.writeMu.Lock()
	defer g.writeMu.Unlock()

	parent := g.cur.Load()
	n := int32(len(parent.segs))
	var st ApplyStats

	for i := range muts {
		if err := muts[i].validate(n); err != nil {
			return nil, st, fmt.Errorf("live: mutation %d: %w", i, err)
		}
	}

	// Resolve the batch sequentially into per-edge net state.
	pend := make(map[[2]int32]pendState)
	lookup := func(u, v int32) (float32, bool) {
		if p, ok := pend[[2]int32{u, v}]; ok {
			return p.w, !p.del
		}
		if i, ok := parent.segs[u].find(v); ok {
			return parent.segs[u].wt[i], true
		}
		return 0, false
	}
	for i := range muts {
		u, v := muts[i].U, muts[i].V
		if u > v {
			u, v = v, u
		}
		key := [2]int32{u, v}
		w, present := lookup(u, v)
		switch muts[i].Op {
		case OpAdd:
			if present && w == muts[i].W {
				continue
			}
			pend[key] = pendState{w: muts[i].W}
		case OpDelete:
			if !present {
				continue
			}
			pend[key] = pendState{del: true}
		case OpReweight:
			if !present {
				return nil, st, fmt.Errorf("live: mutation %d: reweight of absent edge (%d,%d)", i, muts[i].U, muts[i].V)
			}
			if w == muts[i].W {
				continue
			}
			pend[key] = pendState{w: muts[i].W}
		}
	}

	// Net changes vs the parent epoch.
	delta := make(map[int32][]change)
	var inserts, deletes int64
	for key, p := range pend {
		w0, had := func() (float32, bool) {
			if i, ok := parent.segs[key[0]].find(key[1]); ok {
				return parent.segs[key[0]].wt[i], true
			}
			return 0, false
		}()
		switch {
		case p.del && !had:
			continue // add+delete cancelled within the batch
		case p.del:
			deletes++
		case had && w0 == p.w:
			continue // reweight+reweight back within the batch
		case !had:
			inserts++
		}
		st.Applied++
		delta[key[0]] = append(delta[key[0]], change{to: key[1], w: p.w, del: p.del})
		delta[key[1]] = append(delta[key[1]], change{to: key[0], w: p.w, del: p.del})
	}
	st.NoOps = len(muts) - st.Applied
	if st.Applied == 0 {
		st.Publish = time.Since(start)
		return parent, st, nil
	}

	// Commit the batch to the log before building the epoch: the entry is on
	// record before the state it produces becomes visible.
	g.mu.Lock()
	g.log = append(g.log, LogEntry{Seq: parent.seq + 1, Muts: append([]Mutation(nil), muts...)})
	g.mu.Unlock()

	newSegs := make([]*seg, n)
	copy(newSegs, parent.segs)

	// Touched vertices (mutation endpoints): rebuild adjacency with the net
	// changes merged in, recompute the norm from scratch in ascending id
	// order (the exact accumulation of graph.CSR), every incident σ pending.
	touched := make([]int32, 0, len(delta))
	for v := range delta {
		touched = append(touched, v)
	}
	sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
	inT := make(map[int32]bool, len(touched))
	for _, v := range touched {
		inT[v] = true
	}
	st.Touched = len(touched)
	for _, t := range touched {
		old := parent.segs[t]
		ch := delta[t]
		sort.Slice(ch, func(a, b int) bool { return ch[a].to < ch[b].to })
		s := &seg{
			nbr: make([]int32, 0, len(old.nbr)+len(ch)),
			wt:  make([]float32, 0, len(old.nbr)+len(ch)),
		}
		i, j := 0, 0
		for i < len(old.nbr) || j < len(ch) {
			switch {
			case j == len(ch) || (i < len(old.nbr) && old.nbr[i] < ch[j].to):
				s.nbr = append(s.nbr, old.nbr[i])
				s.wt = append(s.wt, old.wt[i])
				i++
			case i == len(old.nbr) || ch[j].to < old.nbr[i]:
				if !ch[j].del { // insert
					s.nbr = append(s.nbr, ch[j].to)
					s.wt = append(s.wt, ch[j].w)
				}
				j++
			default: // same id: delete or reweight
				if !ch[j].del {
					s.nbr = append(s.nbr, ch[j].to)
					s.wt = append(s.wt, ch[j].w)
				}
				i++
				j++
			}
		}
		l := float64(graph.SelfWeight) * float64(graph.SelfWeight)
		for _, w := range s.wt {
			l += float64(w) * float64(w)
		}
		s.norm = l
		s.sqrtNorm = math.Sqrt(l)
		s.sig = make([]float64, len(s.nbr))
		newSegs[t] = s
	}

	// Ring vertices: unmutated neighbors of touched vertices. Their
	// adjacency and norm are unchanged (shared with the parent segment), but
	// the σ of their arcs towards touched vertices moved, so they get a
	// fresh sig copy and a repaired order. A deleted edge has both endpoints
	// touched, so ring membership is complete from the *new* adjacency.
	var ring []int32
	inR := make(map[int32]bool)
	for _, t := range touched {
		for _, q := range newSegs[t].nbr {
			if inT[q] || inR[q] {
				continue
			}
			inR[q] = true
			ring = append(ring, q)
		}
	}
	sort.Slice(ring, func(a, b int) bool { return ring[a] < ring[b] })
	for _, q := range ring {
		old := parent.segs[q]
		newSegs[q] = &seg{
			nbr: old.nbr, wt: old.wt,
			sig:  append([]float64(nil), old.sig...),
			norm: old.norm, sqrtNorm: old.sqrtNorm,
		}
	}

	// σ patch: re-evaluate exactly the arcs incident to touched vertices,
	// each undirected arc once, writing both mirror slots. Uses the simeval
	// slice kernels and crossing, so every patched threshold is bit-identical
	// to what a full index.Build over the new adjacency would produce.
	type arcref struct {
		u, v   int32
		ui, vi int32
		w      float32
	}
	var arcs []arcref
	for _, t := range touched {
		s := newSegs[t]
		for i, q := range s.nbr {
			if inT[q] && q < t {
				continue // evaluated from q's side
			}
			j, _ := newSegs[q].find(t)
			arcs = append(arcs, arcref{u: t, v: q, ui: int32(i), vi: int32(j), w: s.wt[i]})
		}
	}
	st.SigmaRecomputed = int64(len(arcs))
	eval := func(a arcref) {
		su, sv := newSegs[a.u], newSegs[a.v]
		num := 2*float64(a.w)*float64(graph.SelfWeight) + simeval.SliceDot(su.nbr, su.wt, sv.nbr, sv.wt)
		denom := su.sqrtNorm * sv.sqrtNorm
		sg := simeval.Crossing(num, denom)
		su.sig[a.ui] = sg
		sv.sig[a.vi] = sg
	}
	if g.threads != 1 && len(arcs) >= parallelPatchMin {
		par.For(len(arcs), g.threads, par.Adaptive, func(i int) { eval(arcs[i]) })
	} else {
		for _, a := range arcs {
			eval(a)
		}
	}

	// Order maintenance: touched vertices re-sort in full (every arc moved);
	// ring vertices repair incrementally (only arcs towards touched moved).
	work := append(append(make([]int32, 0, len(touched)+len(ring)), touched...), ring...)
	fix := func(v int32) {
		if inT[v] {
			newSegs[v].sortOrder()
		} else {
			newSegs[v].repairOrder(parent.segs[v], inT)
		}
	}
	if g.threads != 1 && len(work) >= 64 {
		par.For(len(work), g.threads, par.Adaptive, func(i int) { fix(work[i]) })
	} else {
		for _, v := range work {
			fix(v)
		}
	}

	// Core orders: for each μ memoized on the parent, carry the order over
	// untouched when no touched/ring vertex moved its threshold, else patch
	// it (drop moved vertices, merge-insert their new positions). The
	// (thr desc, id asc) comparator is a total order, so the patched array
	// is identical to a fresh derivation.
	childOrders := make(map[int]*coreOrder)
	for mu, co := range parent.ordersSnapshot() {
		var rm map[int32]bool
		var addV []int32
		var addT []float64
		for _, v := range work {
			oldT := parent.segs[v].coreThreshold(mu)
			newT := newSegs[v].coreThreshold(mu)
			if oldT == newT {
				continue
			}
			if rm == nil {
				rm = make(map[int32]bool)
			}
			if oldT > 0 {
				rm[v] = true
			}
			if newT > 0 {
				addV = append(addV, v)
				addT = append(addT, newT)
			}
		}
		if rm == nil {
			childOrders[mu] = co
			continue
		}
		childOrders[mu] = patchCoreOrder(co, rm, addV, addT)
	}

	child := &Epoch{
		seq:     parent.seq + 1,
		segs:    newSegs,
		edges:   parent.edges + inserts - deletes,
		threads: g.threads,
		orders:  childOrders,
	}
	g.publish(child)
	st.Publish = time.Since(start)
	return child, st, nil
}

// patchCoreOrder returns co minus the vertices in rm, with the (addV, addT)
// entries merge-inserted at their sorted positions (thr desc, id asc).
func patchCoreOrder(co *coreOrder, rm map[int32]bool, addV []int32, addT []float64) *coreOrder {
	keepV := make([]int32, 0, len(co.verts))
	keepT := make([]float64, 0, len(co.verts))
	for i, v := range co.verts {
		if rm[v] {
			continue
		}
		keepV = append(keepV, v)
		keepT = append(keepT, co.thr[i])
	}
	ord := make([]int32, len(addV))
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		if addT[ord[a]] != addT[ord[b]] {
			return addT[ord[a]] > addT[ord[b]]
		}
		return addV[ord[a]] < addV[ord[b]]
	})
	out := &coreOrder{
		verts: make([]int32, 0, len(keepV)+len(addV)),
		thr:   make([]float64, 0, len(keepV)+len(addV)),
	}
	i, j := 0, 0
	for i < len(keepV) && j < len(ord) {
		av, at := addV[ord[j]], addT[ord[j]]
		if orderLessCore(keepT[i], keepV[i], at, av) {
			out.verts = append(out.verts, keepV[i])
			out.thr = append(out.thr, keepT[i])
			i++
		} else {
			out.verts = append(out.verts, av)
			out.thr = append(out.thr, at)
			j++
		}
	}
	for ; i < len(keepV); i++ {
		out.verts = append(out.verts, keepV[i])
		out.thr = append(out.thr, keepT[i])
	}
	for ; j < len(ord); j++ {
		out.verts = append(out.verts, addV[ord[j]])
		out.thr = append(out.thr, addT[ord[j]])
	}
	return out
}

// orderLessCore is the core-order comparator: threshold descending, id
// ascending.
func orderLessCore(ta float64, va int32, tb float64, vb int32) bool {
	if ta != tb {
		return ta > tb
	}
	return va < vb
}
