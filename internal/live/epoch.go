package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/par"
	"anyscan/internal/unionfind"
)

// seg is one vertex's slice of an epoch: its adjacency (ids ascending,
// weights parallel), the activation thresholds of its arcs in both id order
// (sig, parallel to nbr) and σ-sorted order (osig/onbr, σ descending with
// ties by id ascending), and its closed-neighborhood norm. Segments are
// immutable once their epoch publishes; epochs share the segments of
// untouched vertices, which is what makes publication copy-on-write.
type seg struct {
	nbr  []int32   // neighbor ids, ascending
	wt   []float32 // weights, parallel to nbr
	sig  []float64 // activation thresholds, parallel to nbr
	onbr []int32   // neighbor ids sorted by σ desc, id asc
	osig []float64 // thresholds, parallel to onbr

	norm     float64 // l_v = SelfWeight² + Σ w², accumulated in ascending id order
	sqrtNorm float64
}

// find returns the position of q in s.nbr, or (i, false) with i the
// insertion point.
func (s *seg) find(q int32) (int, bool) {
	i := sort.Search(len(s.nbr), func(i int) bool { return s.nbr[i] >= q })
	return i, i < len(s.nbr) && s.nbr[i] == q
}

// coreThreshold is the largest ε at which the segment's vertex is a core at
// μ: the (μ-1)-th largest σ among its arcs (σ(v,v)=1 supplies the μ-th
// similar member). Mirrors index.CoreThreshold exactly.
func (s *seg) coreThreshold(mu int) float64 {
	if mu <= 1 {
		return 1
	}
	need := mu - 1
	if len(s.osig) < need {
		return 0
	}
	return s.osig[need-1]
}

// sortOrder derives onbr/osig from nbr/sig with the exact comparator of
// index.sortNeighbors: σ descending, ties by neighbor id ascending.
func (s *seg) sortOrder() {
	deg := len(s.nbr)
	ord := make([]int32, deg)
	for j := range ord {
		ord[j] = int32(j)
	}
	sort.Slice(ord, func(a, b int) bool {
		sa, sb := s.sig[ord[a]], s.sig[ord[b]]
		if sa != sb {
			return sa > sb
		}
		return s.nbr[ord[a]] < s.nbr[ord[b]]
	})
	s.onbr = make([]int32, deg)
	s.osig = make([]float64, deg)
	for j, o := range ord {
		s.onbr[j] = s.nbr[o]
		s.osig[j] = s.sig[o]
	}
}

// repairOrder rebuilds s.onbr/s.osig from the parent segment's order when
// only the arcs towards changed vertices moved: entries outside changed keep
// their relative order (their σ did not move), the changed entries are
// re-sorted and merged back in. O(deg + k log k) for k changed arcs, against
// O(deg log deg) for a full sort. The (σ desc, id asc) comparator is a total
// order, so the merged array is the unique sorted order — identical to what
// sortOrder would produce.
func (s *seg) repairOrder(old *seg, changed map[int32]bool) {
	deg := len(s.nbr)
	keepN := make([]int32, 0, deg)
	keepS := make([]float64, 0, deg)
	var chN []int32
	for i, q := range old.onbr {
		if changed[q] {
			chN = append(chN, q)
			continue
		}
		keepN = append(keepN, q)
		keepS = append(keepS, old.osig[i])
	}
	chS := make([]float64, len(chN))
	for i, q := range chN {
		j, _ := s.find(q)
		chS[i] = s.sig[j]
	}
	sort.Sort(&orderPairs{ids: chN, sig: chS})
	s.onbr = make([]int32, 0, deg)
	s.osig = make([]float64, 0, deg)
	i, j := 0, 0
	for i < len(keepN) && j < len(chN) {
		if orderLess(keepS[i], keepN[i], chS[j], chN[j]) {
			s.onbr = append(s.onbr, keepN[i])
			s.osig = append(s.osig, keepS[i])
			i++
		} else {
			s.onbr = append(s.onbr, chN[j])
			s.osig = append(s.osig, chS[j])
			j++
		}
	}
	s.onbr = append(append(s.onbr, keepN[i:]...), chN[j:]...)
	s.osig = append(append(s.osig, keepS[i:]...), chS[j:]...)
}

// orderLess is the neighbor-order comparator: σ descending, id ascending.
func orderLess(sa float64, qa int32, sb float64, qb int32) bool {
	if sa != sb {
		return sa > sb
	}
	return qa < qb
}

type orderPairs struct {
	ids []int32
	sig []float64
}

func (p *orderPairs) Len() int { return len(p.ids) }
func (p *orderPairs) Less(a, b int) bool {
	return orderLess(p.sig[a], p.ids[a], p.sig[b], p.ids[b])
}
func (p *orderPairs) Swap(a, b int) {
	p.ids[a], p.ids[b] = p.ids[b], p.ids[a]
	p.sig[a], p.sig[b] = p.sig[b], p.sig[a]
}

// coreOrder is the per-μ core order: all vertices with a positive core
// threshold sorted by threshold descending (ties by id ascending). Immutable
// once derived; epochs share coreOrder values for every μ the mutation batch
// left untouched.
type coreOrder struct {
	verts []int32
	thr   []float64
}

// Epoch is one immutable published version of a live graph. Readers resolve
// an epoch once (Graph.Epoch or Graph.WaitEpoch) and then query it with no
// further coordination: a concurrently applied batch publishes a *new* epoch
// and never mutates this one, so results are stable for as long as the
// caller holds the pointer.
type Epoch struct {
	seq   int64
	segs  []*seg
	edges int64

	threads int

	mu     sync.Mutex
	orders map[int]*coreOrder // μ → memoized core order
}

// Seq returns the epoch's sequence number. Epoch 0 is the graph the live
// view was created from; each applied batch increments it by one.
func (e *Epoch) Seq() int64 { return e.seq }

// NumVertices returns the vertex count (fixed across epochs).
func (e *Epoch) NumVertices() int { return len(e.segs) }

// NumEdges returns the undirected edge count at this epoch.
func (e *Epoch) NumEdges() int64 { return e.edges }

// Degree returns the degree of v at this epoch.
func (e *Epoch) Degree(v int32) int { return len(e.segs[v].nbr) }

// EdgeWeight returns the weight of edge (u,v) at this epoch, or 0 if absent.
func (e *Epoch) EdgeWeight(u, v int32) float32 {
	if i, ok := e.segs[u].find(v); ok {
		return e.segs[u].wt[i]
	}
	return 0
}

// CoreThreshold returns the largest ε at which v is a core at μ (0 = never).
func (e *Epoch) CoreThreshold(v int32, mu int) float64 {
	return e.segs[v].coreThreshold(mu)
}

// NeighborOrder returns v's σ-sorted neighbor order at this epoch: neighbor
// ids sorted by σ descending (ties by id ascending) and the parallel
// activation thresholds. The slices alias the epoch's segment storage —
// callers must treat them as read-only (epochs are immutable, so the data
// never changes underneath them). Together with NumVertices and
// CoreThreshold this makes an Epoch a local.View for seed-centered queries.
func (e *Epoch) NeighborOrder(v int32) (ids []int32, sigs []float64) {
	s := e.segs[v]
	return s.onbr, s.osig
}

// coreOrderFor returns the memoized core order for μ, deriving it on first
// use exactly as index.coreOrderFor does.
func (e *Epoch) coreOrderFor(mu int) *coreOrder {
	e.mu.Lock()
	defer e.mu.Unlock()
	if co, ok := e.orders[mu]; ok {
		return co
	}
	co := &coreOrder{}
	for v := int32(0); v < int32(len(e.segs)); v++ {
		if t := e.segs[v].coreThreshold(mu); t > 0 {
			co.verts = append(co.verts, v)
			co.thr = append(co.thr, t)
		}
	}
	ord := make([]int32, len(co.verts))
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool {
		if co.thr[ord[a]] != co.thr[ord[b]] {
			return co.thr[ord[a]] > co.thr[ord[b]]
		}
		return co.verts[ord[a]] < co.verts[ord[b]]
	})
	verts := make([]int32, len(ord))
	thr := make([]float64, len(ord))
	for i, o := range ord {
		verts[i] = co.verts[o]
		thr[i] = co.thr[o]
	}
	co.verts, co.thr = verts, thr
	e.orders[mu] = co
	return co
}

// ordersSnapshot returns a shallow copy of the memoized core-order map.
// The coreOrder values are immutable, so sharing them across epochs is safe.
func (e *Epoch) ordersSnapshot() map[int]*coreOrder {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := make(map[int]*coreOrder, len(e.orders))
	for mu, co := range e.orders {
		m[mu] = co
	}
	return m
}

// parallelQueryMin mirrors index.parallelQueryMin: the core-prefix size above
// which Query fans out across workers.
const parallelQueryMin = 4096

// Query returns the exact SCAN clustering at (μ, ε) for this epoch without
// recomputing any similarity. It replays exactly the semantics of
// index.Query — core-order prefix, similar-neighbor prefixes, smallest-core
// border claims, hub/outlier split, canonicalization — so the result is
// byte-identical to index.Build + Query on the equivalent static CSR. Safe
// for any number of concurrent callers.
func (e *Epoch) Query(mu int, eps float64) (*cluster.Result, error) {
	if mu < 1 {
		return nil, fmt.Errorf("live: mu must be >= 1, got %d", mu)
	}
	if !(eps > 0 && eps <= 1) {
		return nil, fmt.Errorf("live: eps must be in (0,1], got %v", eps)
	}
	n := len(e.segs)
	co := e.coreOrderFor(mu)
	k := sort.Search(len(co.verts), func(i int) bool { return co.thr[i] < eps })
	cores := co.verts[:k]

	ds := unionfind.NewConcurrent(n)
	claim := make([]int32, n) // border v → smallest adjacent qualifying core
	for i := range claim {
		claim[i] = -1
	}
	if e.threads != 1 && len(cores) >= parallelQueryMin {
		par.For(len(cores), e.threads, par.Adaptive, func(i int) {
			u := cores[i]
			s := e.segs[u]
			for j, q := range s.onbr {
				if s.osig[j] < eps {
					break // sorted descending: the rest are dissimilar too
				}
				if e.segs[q].coreThreshold(mu) >= eps {
					if u < q { // each core-core edge once
						ds.Union(u, q)
					}
					continue
				}
				for {
					c := atomic.LoadInt32(&claim[q])
					if c != -1 && c <= u {
						break
					}
					if atomic.CompareAndSwapInt32(&claim[q], c, u) {
						break
					}
				}
			}
		})
	} else {
		for _, u := range cores {
			s := e.segs[u]
			for j, q := range s.onbr {
				if s.osig[j] < eps {
					break // sorted descending: the rest are dissimilar too
				}
				if e.segs[q].coreThreshold(mu) >= eps {
					if u < q { // each core-core edge once
						ds.Union(u, q)
					}
				} else if c := claim[q]; c == -1 || u < c {
					claim[q] = u
				}
			}
		}
	}

	res := cluster.NewResult(n)
	for _, u := range cores {
		res.Roles[u] = cluster.Core
		res.Labels[u] = ds.Find(u)
	}
	for v := int32(0); v < int32(n); v++ {
		if c := claim[v]; c >= 0 {
			res.Roles[v] = cluster.Border
			res.Labels[v] = ds.Find(c)
		}
	}
	e.classifyNoise(res)
	res.Canonicalize()
	return res, nil
}

// classifyNoise splits unclassified vertices into hubs (≥2 distinct adjacent
// cluster labels) and outliers, exactly as cluster.ClassifyNoise does on a
// CSR.
func (e *Epoch) classifyNoise(r *cluster.Result) {
	for v := int32(0); v < int32(len(e.segs)); v++ {
		if r.Roles[v] == cluster.Core || r.Roles[v] == cluster.Border {
			continue
		}
		first := cluster.NoLabel
		role := cluster.Outlier
		for _, q := range e.segs[v].nbr {
			l := r.Labels[q]
			if l == cluster.NoLabel {
				continue
			}
			if first == cluster.NoLabel {
				first = l
			} else if l != first {
				role = cluster.Hub
				break
			}
		}
		r.Roles[v] = role
	}
}

// ToCSR materializes the epoch's adjacency as a static CSR — the graph an
// offline rebuild would operate on. The equivalence contract of this package
// is that Query on the epoch is byte-identical to index.Build(ToCSR()) +
// Query.
func (e *Epoch) ToCSR() (*graph.CSR, error) {
	var b graph.Builder
	b.SetNumVertices(len(e.segs))
	for v := int32(0); v < int32(len(e.segs)); v++ {
		s := e.segs[v]
		for i, q := range s.nbr {
			if v < q { // each undirected edge once
				b.AddEdge(v, q, s.wt[i])
			}
		}
	}
	return b.Build()
}

// Bytes approximates the resident size of this epoch's own segment storage.
// Segments shared with other epochs are counted here too (the accounting is
// per-epoch, not deduplicated); the caller owns interpretation.
func (e *Epoch) Bytes() int64 {
	var b int64
	for _, s := range e.segs {
		b += int64(len(s.nbr))*8 + int64(len(s.wt))*4 + int64(len(s.sig))*8 + int64(len(s.osig))*8
	}
	e.mu.Lock()
	for _, co := range e.orders {
		b += int64(len(co.verts))*4 + int64(len(co.thr))*8
	}
	e.mu.Unlock()
	return b
}
