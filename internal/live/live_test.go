package live

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/gen"
	"anyscan/internal/graph"
	"anyscan/internal/index"
)

// refGraph mirrors a live.Graph's edge set so tests can build the
// equivalent static CSR at any point.
type refGraph struct {
	n     int
	edges map[[2]int32]float32
}

func newRefGraph(g *graph.CSR) *refGraph {
	r := &refGraph{n: g.NumVertices(), edges: map[[2]int32]float32{}}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		adj, wt := g.Neighbors(v)
		for i, q := range adj {
			if v < q {
				r.edges[[2]int32{v, q}] = wt[i]
			}
		}
	}
	return r
}

func (r *refGraph) apply(muts []Mutation) {
	for _, m := range muts {
		u, v := m.U, m.V
		if u > v {
			u, v = v, u
		}
		switch m.Op {
		case OpDelete:
			delete(r.edges, [2]int32{u, v})
		default:
			r.edges[[2]int32{u, v}] = m.W
		}
	}
}

func (r *refGraph) toCSR(t testing.TB) *graph.CSR {
	t.Helper()
	var b graph.Builder
	b.SetNumVertices(r.n)
	for e, w := range r.edges {
		b.AddEdge(e[0], e[1], w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomBatch draws a mixed batch: inserts of fresh edges, deletes and
// reweights of present ones.
func (r *refGraph) randomBatch(rng *rand.Rand, size int) []Mutation {
	var present [][2]int32
	for e := range r.edges {
		present = append(present, e)
	}
	// Map iteration order is random; sort for determinism per rng seed.
	for i := 1; i < len(present); i++ {
		for j := i; j > 0 && less(present[j], present[j-1]); j-- {
			present[j], present[j-1] = present[j-1], present[j]
		}
	}
	// Track in-batch deletions: OpReweight errors on an absent edge, so the
	// generator must not reweight (or double-delete counts as noop, which is
	// fine) an edge an earlier mutation in the same batch removed.
	gone := map[[2]int32]bool{}
	muts := make([]Mutation, 0, size)
	for len(muts) < size {
		switch k := rng.Intn(10); {
		case k < 5 || len(present) == 0: // insert (or overwrite)
			u, v := int32(rng.Intn(r.n)), int32(rng.Intn(r.n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			delete(gone, [2]int32{u, v})
			muts = append(muts, Mutation{Op: OpAdd, U: u, V: v, W: 0.25 + rng.Float32()})
		case k < 8: // delete
			e := present[rng.Intn(len(present))]
			gone[e] = true
			muts = append(muts, Mutation{Op: OpDelete, U: e[0], V: e[1]})
		default: // reweight
			e := present[rng.Intn(len(present))]
			if gone[e] {
				continue
			}
			muts = append(muts, Mutation{Op: OpReweight, U: e[0], V: e[1], W: 0.25 + rng.Float32()})
		}
	}
	return muts
}

func less(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// sameResult demands byte-identical clusterings.
func sameResult(t *testing.T, tag string, got, want *cluster.Result) {
	t.Helper()
	if got.NumClusters != want.NumClusters {
		t.Fatalf("%s: clusters %d != %d", tag, got.NumClusters, want.NumClusters)
	}
	for v := 0; v < want.N(); v++ {
		if got.Roles[v] != want.Roles[v] || got.Labels[v] != want.Labels[v] {
			t.Fatalf("%s: vertex %d: got (%v,%d) want (%v,%d)",
				tag, v, got.Roles[v], got.Labels[v], want.Roles[v], want.Labels[v])
		}
	}
}

// checkAgainstFreshIndex asserts the strongest equivalence: every segment of
// the epoch — adjacency, norms, thresholds, σ-sorted orders — is bitwise
// identical to a fresh index.Build over the equivalent static CSR, and
// Query agrees byte-for-byte for a grid of (μ, ε).
func checkAgainstFreshIndex(t *testing.T, tag string, e *Epoch, ref *graph.CSR, threads int) {
	t.Helper()
	if int64(e.NumEdges()) != ref.NumEdges() {
		t.Fatalf("%s: edges %d != %d", tag, e.NumEdges(), ref.NumEdges())
	}
	x := index.Build(ref, threads)
	sigma := x.ArcSigmas()
	for v := int32(0); v < int32(ref.NumVertices()); v++ {
		adj, wt := ref.Neighbors(v)
		s := e.segs[v]
		if len(s.nbr) != len(adj) {
			t.Fatalf("%s: vertex %d: degree %d != %d", tag, v, len(s.nbr), len(adj))
		}
		for i := range adj {
			if s.nbr[i] != adj[i] || s.wt[i] != wt[i] {
				t.Fatalf("%s: vertex %d entry %d: (%d,%v) != (%d,%v)",
					tag, v, i, s.nbr[i], s.wt[i], adj[i], wt[i])
			}
		}
		if s.norm != ref.Norm(v) || s.sqrtNorm != ref.SqrtNorm(v) {
			t.Fatalf("%s: vertex %d: norm %v != %v", tag, v, s.norm, ref.Norm(v))
		}
		lo, _ := ref.NeighborRange(v)
		for i, sg := range s.sig {
			if sg != sigma[lo+int64(i)] {
				t.Fatalf("%s: vertex %d arc %d: σ %v != %v", tag, v, i, sg, sigma[lo+int64(i)])
			}
		}
		onbr, osig := x.NeighborOrder(v)
		for i := range onbr {

			if s.onbr[i] != onbr[i] || s.osig[i] != osig[i] {
				t.Fatalf("%s: vertex %d order %d: (%d,%v) != (%d,%v)",
					tag, v, i, s.onbr[i], s.osig[i], onbr[i], osig[i])
			}
		}
	}
	for _, mu := range []int{1, 2, 3, 5} {
		for _, eps := range []float64{0.2, 0.45, 0.7, 1} {
			got, err := e.Query(mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			want, err := x.Query(mu, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmt.Sprintf("%s (mu=%d eps=%v)", tag, mu, eps), got, want)
		}
	}
}

func seedGraph(seed int64) *graph.CSR {
	return gen.ErdosRenyi(120, 600, gen.WeightConfig{Mode: gen.WeightUniform, Min: 0.25, Max: 1.5}, seed)
}

// The acceptance property: after any mutation sequence, the live epoch is
// byte-identical — segments and query results — to a full rebuild on the
// equivalent static CSR.
func TestEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 9, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			g0 := seedGraph(seed)
			ref := newRefGraph(g0)
			lg, err := FromCSR(context.Background(), g0, 4)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed * 1000003))
			for round := 0; round < 8; round++ {
				// Query before applying so the parent epoch memoizes core
				// orders — the patch/inherit path is then exercised on every
				// subsequent Apply.
				if _, err := lg.Epoch().Query(2+round%3, 0.4); err != nil {
					t.Fatal(err)
				}
				muts := ref.randomBatch(rng, 1+rng.Intn(40))
				ep, st, err := lg.Apply(muts)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				ref.apply(muts)
				if st.Applied+st.NoOps != len(muts) {
					t.Fatalf("round %d: applied %d + noops %d != %d", round, st.Applied, st.NoOps, len(muts))
				}
				checkAgainstFreshIndex(t, fmt.Sprintf("round %d (epoch %d)", round, ep.Seq()), ep, ref.toCSR(t), 4)
			}
		})
	}
}

func TestApplySemantics(t *testing.T) {
	g0 := seedGraph(3)
	lg, err := FromCSR(context.Background(), g0, 1)
	if err != nil {
		t.Fatal(err)
	}
	e0 := lg.Epoch()
	if e0.Seq() != 0 {
		t.Fatalf("initial epoch %d", e0.Seq())
	}

	// Pick a present and an absent edge.
	var pu, pv int32 = -1, -1
	for v := int32(0); v < int32(g0.NumVertices()) && pu < 0; v++ {
		if adj, _ := g0.Neighbors(v); len(adj) > 0 && adj[len(adj)-1] > v {
			pu, pv = v, adj[len(adj)-1]
		}
	}
	var au, av int32
	for u := int32(0); u < int32(g0.NumVertices()); u++ {
		for w := u + 1; w < int32(g0.NumVertices()); w++ {
			if !g0.HasEdge(u, w) {
				au, av = u, w
			}
		}
	}

	// Reweight of an absent edge rejects the whole batch atomically — even
	// when other mutations in the batch are valid.
	if _, _, err := lg.Apply([]Mutation{
		{Op: OpReweight, U: pv, V: pu, W: 0.75}, // present: fine
		{Op: OpDelete, U: au, V: av},
		{Op: OpReweight, U: au, V: av, W: 2}, // absent (and deleted in-batch): error
	}); err == nil || lg.Epoch() != e0 {
		t.Fatalf("reweight-absent batch not rejected atomically: %v", err)
	}
	if len(lg.Log()) != 0 {
		t.Fatal("rejected batch reached the log")
	}

	// Pure no-op batch publishes nothing.
	w0 := e0.EdgeWeight(pu, pv)
	ep, st, err := lg.Apply([]Mutation{
		{Op: OpDelete, U: au, V: av},
		{Op: OpAdd, U: pu, V: pv, W: w0},
	})
	if err != nil || ep != e0 || st.Applied != 0 || st.NoOps != 2 {
		t.Fatalf("no-op batch: epoch %d, applied %d, noops %d, err %v", ep.Seq(), st.Applied, st.NoOps, err)
	}

	// add+delete within one batch cancels out.
	ep, st, err = lg.Apply([]Mutation{
		{Op: OpAdd, U: au, V: av, W: 1},
		{Op: OpReweight, U: au, V: av, W: 2}, // exists within the batch
		{Op: OpDelete, U: au, V: av},
	})
	if err != nil || ep != e0 || st.Applied != 0 {
		t.Fatalf("cancelling batch: epoch %d, applied %d, err %v", ep.Seq(), st.Applied, err)
	}

	// A real batch publishes epoch 1 and is on the log.
	ep, st, err = lg.Apply([]Mutation{{Op: OpAdd, U: au, V: av, W: 1.25}})
	if err != nil || ep.Seq() != 1 || st.Applied != 1 {
		t.Fatalf("insert batch: epoch %d, applied %d, err %v", ep.Seq(), st.Applied, err)
	}
	if ep.EdgeWeight(av, au) != 1.25 {
		t.Fatalf("weight %v after insert", ep.EdgeWeight(av, au))
	}
	if lg := lg.Log(); len(lg) != 1 || lg[0].Seq != 1 {
		t.Fatalf("log %+v", lg)
	}

	// Validation errors.
	bad := []Mutation{
		{Op: OpAdd, U: 0, V: 0, W: 1},
		{Op: OpAdd, U: -1, V: 1, W: 1},
		{Op: OpAdd, U: 0, V: 10000, W: 1},
		{Op: OpAdd, U: 0, V: 1, W: float32(math.NaN())},
		{Op: OpAdd, U: 0, V: 1, W: float32(math.Inf(1))},
		{Op: OpAdd, U: 0, V: 1, W: 0},
		{Op: OpAdd, U: 0, V: 1, W: -1},
		{Op: Op(7), U: 0, V: 1, W: 1},
	}
	for _, m := range bad {
		if _, _, err := lg.Apply([]Mutation{m}); err == nil {
			t.Errorf("mutation %+v accepted", m)
		}
	}
}

// Satellite: a reader pinned to an old epoch observes identical results
// before and after later publishes — copy-on-write means published epochs
// are frozen forever.
func TestEpochPinnedAcrossPublish(t *testing.T) {
	g0 := seedGraph(5)
	ref := newRefGraph(g0)
	lg, err := FromCSR(context.Background(), g0, 2)
	if err != nil {
		t.Fatal(err)
	}
	pinned := lg.Epoch()
	before, err := pinned.Query(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	beforeCSR := ref.toCSR(t)

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5; i++ {
		muts := ref.randomBatch(rng, 20)
		if _, _, err := lg.Apply(muts); err != nil {
			t.Fatal(err)
		}
		ref.apply(muts)
	}
	if lg.Epoch() == pinned {
		t.Fatal("no epoch published")
	}
	after, err := pinned.Query(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "pinned epoch drifted", after, before)
	// And the pinned epoch still matches a rebuild of its own frozen state.
	checkAgainstFreshIndex(t, "pinned", pinned, beforeCSR, 2)
}

// Interleaved mutate/query under the race detector: writers apply batches
// while readers pin epochs, verify stability, and exercise read-your-writes
// via WaitEpoch.
func TestInterleavedMutateQuery(t *testing.T) {
	g0 := seedGraph(13)
	lg, err := FromCSR(context.Background(), g0, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: random batches as fast as they apply.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		n := int32(lg.NumVertices())
		for i := 0; i < 60; i++ {
			var muts []Mutation
			for j := 0; j < 8; j++ {
				u, v := rng.Int31n(n), rng.Int31n(n)
				if u == v {
					continue
				}
				if rng.Intn(3) == 0 {
					muts = append(muts, Mutation{Op: OpDelete, U: u, V: v})
				} else {
					muts = append(muts, Mutation{Op: OpAdd, U: u, V: v, W: 0.25 + rng.Float32()})
				}
			}
			ep, _, err := lg.Apply(muts)
			if err != nil {
				report(err)
				return
			}
			// Read-your-writes: the returned token must satisfy WaitEpoch
			// immediately.
			got, err := lg.WaitEpoch(ctx, ep.Seq())
			if err != nil {
				report(err)
				return
			}
			if got.Seq() < ep.Seq() {
				report(fmt.Errorf("WaitEpoch(%d) returned epoch %d", ep.Seq(), got.Seq()))
				return
			}
		}
	}()

	// Readers: pin an epoch, query it twice around a sleep, demand identical
	// bytes.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				ep := lg.Epoch()
				mu := 2 + (r+i)%3
				a, err := ep.Query(mu, 0.45)
				if err != nil {
					report(err)
					return
				}
				time.Sleep(time.Millisecond)
				b, err := ep.Query(mu, 0.45)
				if err != nil {
					report(err)
					return
				}
				for v := 0; v < a.N(); v++ {
					if a.Roles[v] != b.Roles[v] || a.Labels[v] != b.Labels[v] {
						report(fmt.Errorf("epoch %d unstable at vertex %d", ep.Seq(), v))
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Replay the committed log onto the original graph: must reproduce the
	// final epoch exactly.
	replay := newRefGraph(g0)
	for _, entry := range lg.Log() {
		replay.apply(entry.Muts)
	}
	checkAgainstFreshIndex(t, "log replay", lg.Epoch(), replay.toCSR(t), 2)
}

func TestWaitEpochDeadline(t *testing.T) {
	g0 := seedGraph(21)
	lg, err := FromCSR(context.Background(), g0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := lg.WaitEpoch(ctx, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitEpoch = %v, want deadline", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("WaitEpoch did not respect the deadline")
	}
	if lag := lg.Lag(); lag != 5 {
		t.Fatalf("lag %d, want 5", lag)
	}
	// Publishing catches up: lag drains to zero once epochs reach demand.
	n := int32(lg.NumVertices())
	for i := int64(0); i < 5; i++ {
		u := int32(i) % n
		v := (u + 1 + int32(i)) % n
		if u == v {
			v = (v + 1) % n
		}
		w := 2 + float32(i)
		if _, _, err := lg.Apply([]Mutation{{Op: OpAdd, U: u, V: v, W: w}}); err != nil {
			t.Fatal(err)
		}
	}
	if lg.Epoch().Seq() != 5 {
		t.Fatalf("epoch %d after 5 applies", lg.Epoch().Seq())
	}
	if lag := lg.Lag(); lag != 0 {
		t.Fatalf("lag %d after catch-up", lag)
	}
	if _, err := lg.WaitEpoch(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestToCSRRoundTrip(t *testing.T) {
	g0 := seedGraph(31)
	lg, err := FromCSR(context.Background(), g0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lg.Apply([]Mutation{{Op: OpAdd, U: 0, V: 1, W: 0.5}}); err != nil {
		t.Fatal(err)
	}
	g, err := lg.Epoch().ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight(0, 1) != 0.5 {
		t.Fatalf("round-trip weight %v", g.EdgeWeight(0, 1))
	}
	if g.NumEdges() != lg.Epoch().NumEdges() {
		t.Fatalf("edges %d != %d", g.NumEdges(), lg.Epoch().NumEdges())
	}
}

// TestFromIndexCompressedBackendFallsBack promotes an index built over the
// read-only compressed backend: FromIndex must decompress to a mutable copy
// (logging a warning) rather than alias read-only storage, and the promoted
// graph must behave exactly like one promoted from the flat CSR.
func TestFromIndexCompressedBackendFallsBack(t *testing.T) {
	g0 := seedGraph(47)
	xFlat := index.Build(g0, 2)
	xComp := index.Build(graph.Compress(g0), 2)

	var buf strings.Builder
	lg := FromIndexLogger(xComp, slog.New(slog.NewTextHandler(&buf, nil)))
	if !strings.Contains(buf.String(), "read-only") {
		t.Fatalf("promotion from a compressed backend logged no warning, got: %q", buf.String())
	}
	want := FromIndex(xFlat)

	muts := []Mutation{
		{Op: OpAdd, U: 0, V: 1, W: 0.5},
		{Op: OpDelete, U: 2, V: 3},
		{Op: OpAdd, U: 5, V: 100, W: 1.25},
	}
	ep, _, err := lg.Apply(muts)
	if err != nil {
		t.Fatalf("mutating a compressed-promoted graph: %v", err)
	}
	wantEp, _, err := want.Apply(muts)
	if err != nil {
		t.Fatal(err)
	}
	gotCSR, err := ep.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	wantCSR, err := wantEp.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if graph.FingerprintOf(gotCSR) != graph.FingerprintOf(wantCSR) {
		t.Fatal("compressed-promoted mutation result differs from flat-promoted")
	}
}
