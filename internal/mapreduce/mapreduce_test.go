package mapreduce

import (
	"sort"
	"testing"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/testutil"
)

func TestRoundWordCount(t *testing.T) {
	job := NewJob(3)
	words := []string{"a", "b", "a", "c", "a", "b"}
	type count struct {
		word string
		n    int
	}
	out := Round(job, words,
		func(w string, emit func(string, int)) { emit(w, 1) },
		func(w string, ones []int) count { return count{w, len(ones)} },
	)
	sort.Slice(out, func(i, j int) bool { return out[i].word < out[j].word })
	want := []count{{"a", 3}, {"b", 2}, {"c", 1}}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	if job.Stats.MapCalls != 6 || job.Stats.ShuffledKVs != 6 || job.Stats.ReduceGroups != 3 || job.Stats.Rounds != 1 {
		t.Fatalf("stats = %+v", job.Stats)
	}
}

func TestRoundEmptyInput(t *testing.T) {
	job := NewJob(2)
	out := Round(job, nil,
		func(x int, emit func(int, int)) { emit(x, x) },
		func(k int, vs []int) int { return k },
	)
	if len(out) != 0 {
		t.Fatalf("got %v", out)
	}
}

func TestPSCANMRMatchesReference(t *testing.T) {
	for _, tc := range testutil.RandomCases(1) {
		for _, workers := range []int{1, 4} {
			res, stats, _ := PSCANMR(tc.G, tc.Mu, tc.Eps, workers)
			if err := cluster.Validate(tc.G, tc.Mu, tc.Eps, res); err != nil {
				t.Fatalf("%s workers=%d: %v", tc.Name, workers, err)
			}
			if stats.Rounds < 3 {
				t.Fatalf("%s: suspiciously few rounds (%d)", tc.Name, stats.Rounds)
			}
		}
	}
}

func TestPSCANMRAgreesWithSCANOnFixtures(t *testing.T) {
	g := testutil.TwoTriangles()
	res, stats, _ := PSCANMR(g, 3, 0.6, 2)
	if res.NumClusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters)
	}
	if err := cluster.Validate(g, 3, 0.6, res); err != nil {
		t.Fatal(err)
	}
	if stats.ShuffledKVs == 0 {
		t.Fatal("no shuffle traffic recorded")
	}
}

func TestPSCANMRRoundsGrowWithDiameter(t *testing.T) {
	// A long path of overlapping triangles: the core-core similar graph is
	// a chain, so min-label propagation needs ~length rounds — the
	// synchronization cost the shared-memory algorithms avoid.
	var edges [][2]int32
	segments := int32(30)
	for i := int32(0); i < segments; i++ {
		base := 2 * i
		edges = append(edges, [2]int32{base, base + 1}, [2]int32{base, base + 2}, [2]int32{base + 1, base + 2})
	}
	g, err := clusterGraph(edges, 2*segments+1)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, _ := PSCANMR(g, 2, 0.5, 2)
	if stats.Rounds < 10 {
		t.Fatalf("chain of %d segments finished in %d rounds; label propagation should need many", segments, stats.Rounds)
	}
	res, _, _ := PSCANMR(g, 2, 0.5, 2)
	if err := cluster.Validate(g, 2, 0.5, res); err != nil {
		t.Fatal(err)
	}
}

func clusterGraph(edges [][2]int32, n int32) (*graph.CSR, error) {
	return graph.FromUnweightedEdges(int(n), edges)
}
