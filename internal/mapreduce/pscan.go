package mapreduce

import (
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/simeval"
)

// PSCANMR is a MapReduce formulation of SCAN in the spirit of PSCAN (Zhao
// et al., AINA 2013): similarity evaluation and core detection are one
// map/reduce round each, and cluster formation runs as iterative min-label
// propagation — one round per step of the label diffusion, the standard
// MapReduce connected-components pattern. It is exact, but pays for its
// distributed structure with O(diameter) synchronization rounds and a
// shuffled message per similar edge per round; Metrics exposes those costs
// so the shared-memory-vs-distributed argument of the paper's Section V is
// measurable.
func PSCANMR(g *graph.CSR, mu int, eps float64, workers int) (*cluster.Result, Stats, time.Duration) {
	start := time.Now()
	n := g.NumVertices()
	job := NewJob(workers)
	eng := simeval.New(g, eps, simeval.AllOptimizations)

	// Round 1 — similarity: mappers evaluate σ for the edges of their
	// vertices (from the smaller endpoint) and emit one message per similar
	// edge to each endpoint; reducers build per-vertex similar-neighbor
	// lists.
	type adjOut struct {
		v       int32
		similar []int32
	}
	vertices := make([]int32, n)
	for i := range vertices {
		vertices[i] = int32(i)
	}
	adjOuts := Round(job, vertices,
		func(v int32, emit func(int32, int32)) {
			lo, hi := g.NeighborRange(v)
			for e := lo; e < hi; e++ {
				q, w := g.Arc(e)
				if v < q && eng.SimilarEdge(v, q, w) {
					emit(v, q)
					emit(q, v)
				}
			}
		},
		func(v int32, sims []int32) adjOut { return adjOut{v, sims} },
	)
	simAdj := make([][]int32, n)
	isCore := make([]bool, n)
	for _, a := range adjOuts {
		simAdj[a.v] = a.similar
		isCore[a.v] = len(a.similar)+1 >= mu
	}
	// Vertices with zero similar neighbors never appear in the shuffle.
	if mu <= 1 {
		for v := range isCore {
			isCore[v] = true
		}
	}

	// Rounds 2..k — min-label propagation over the core-core similar graph:
	// every core starts with its own id and repeatedly exchanges the
	// smallest label seen with its similar core neighbors until no label
	// changes (the fixpoint is detected with one extra round, as a driver
	// polling counters would).
	label := make([]int32, n)
	for v := range label {
		label[v] = int32(v)
	}
	type lblOut struct {
		v   int32
		min int32
	}
	for {
		changed := false
		outs := Round(job, vertices,
			func(v int32, emit func(int32, int32)) {
				if !isCore[v] {
					return
				}
				emit(v, label[v]) // keep own label in play
				for _, q := range simAdj[v] {
					if isCore[q] {
						emit(q, label[v])
					}
				}
			},
			func(v int32, labels []int32) lblOut {
				min := labels[0]
				for _, l := range labels[1:] {
					if l < min {
						min = l
					}
				}
				return lblOut{v, min}
			},
		)
		for _, o := range outs {
			if isCore[o.v] && o.min < label[o.v] {
				label[o.v] = o.min
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Final round — borders: non-cores adopt the label of a similar core.
	type borderOut struct {
		v   int32
		lbl int32
	}
	borderOuts := Round(job, vertices,
		func(v int32, emit func(int32, int32)) {
			if !isCore[v] {
				return
			}
			for _, q := range simAdj[v] {
				if !isCore[q] {
					emit(q, label[v])
				}
			}
		},
		func(v int32, labels []int32) borderOut {
			min := labels[0]
			for _, l := range labels[1:] {
				if l < min {
					min = l
				}
			}
			return borderOut{v, min}
		},
	)

	res := cluster.NewResult(n)
	for v := int32(0); v < int32(n); v++ {
		if isCore[v] {
			res.Roles[v] = cluster.Core
			res.Labels[v] = label[v]
		}
	}
	for _, o := range borderOuts {
		res.Roles[o.v] = cluster.Border
		res.Labels[o.v] = o.lbl
	}
	cluster.ClassifyNoise(g, res)
	res.Canonicalize()
	return res, job.Stats, time.Since(start)
}
