// Package mapreduce emulates a MapReduce execution model in-process:
// partitioned mappers, a hash shuffle, and keyed reducers, with every
// emitted key/value pair counted as shuffle traffic. The paper's related
// work discusses PSCAN (Zhao et al., AINA 2013), a MapReduce formulation of
// SCAN, and argues that transplanting distributed algorithms onto shared
// memory is inefficient; this package exists so that argument can be
// reproduced quantitatively (see PSCANMR and the mapreduce experiment).
package mapreduce

import (
	"sort"
	"sync"
	"sync/atomic"
)

// KV is one key/value pair flowing through the shuffle.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// Stats counts the work a job performed in the units a distributed runtime
// bills: map invocations, shuffled pairs, reduce groups and rounds.
type Stats struct {
	MapCalls     int64
	ShuffledKVs  int64
	ReduceGroups int64
	Rounds       int
}

// Job executes MapReduce rounds over a fixed worker pool.
type Job struct {
	Workers int
	Stats   Stats
}

// NewJob returns a job runner with the given parallelism (0 = 4).
func NewJob(workers int) *Job {
	if workers <= 0 {
		workers = 4
	}
	return &Job{Workers: workers}
}

// Round runs one map/shuffle/reduce round: mapFn is applied to every input
// (in parallel, partitioned by worker), its emissions are grouped by key,
// and reduceFn is applied per key group (in parallel). The reduce outputs
// are returned in deterministic (sorted-key-hash-independent) order is NOT
// guaranteed; callers sort if they need determinism.
func Round[I any, K comparable, M any, O any](
	j *Job,
	inputs []I,
	mapFn func(I, func(K, M)),
	reduceFn func(K, []M) O,
) []O {
	j.Stats.Rounds++

	// Map phase: each worker collects its emissions locally (a combiner-
	// free mapper), then the shuffle merges them.
	perWorker := make([][]KV[K, M], j.Workers)
	var wg sync.WaitGroup
	var cursor atomic.Int64
	var mapCalls atomic.Int64
	const grain = 64
	wg.Add(j.Workers)
	for w := 0; w < j.Workers; w++ {
		go func(w int) {
			defer wg.Done()
			emit := func(k K, m M) {
				perWorker[w] = append(perWorker[w], KV[K, M]{k, m})
			}
			for {
				start := int(cursor.Add(grain)) - grain
				if start >= len(inputs) {
					return
				}
				end := start + grain
				if end > len(inputs) {
					end = len(inputs)
				}
				for i := start; i < end; i++ {
					mapFn(inputs[i], emit)
					mapCalls.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	j.Stats.MapCalls += mapCalls.Load()

	// Shuffle: group by key.
	groups := make(map[K][]M)
	for _, kvs := range perWorker {
		j.Stats.ShuffledKVs += int64(len(kvs))
		for _, kv := range kvs {
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
	}
	j.Stats.ReduceGroups += int64(len(groups))

	// Reduce phase in parallel over key groups.
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	out := make([]O, len(keys))
	var kCursor atomic.Int64
	wg.Add(j.Workers)
	for w := 0; w < j.Workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(kCursor.Add(1)) - 1
				if i >= len(keys) {
					return
				}
				out[i] = reduceFn(keys[i], groups[keys[i]])
			}
		}()
	}
	wg.Wait()
	return out
}

// SortInt32Keys is a helper for deterministic post-processing of reduce
// outputs keyed by int32.
func SortInt32Keys[V any](kvs []KV[int32, V]) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}
