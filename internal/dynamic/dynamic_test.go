package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anyscan/internal/cluster"
	"anyscan/internal/testutil"
)

// checkAgainstReference validates the maintained clustering against the
// brute-force reference on the exported graph. The maintainer's border rule
// matches the reference, so full label equality is demanded.
func checkAgainstReference(t *testing.T, m *Maintainer) {
	t.Helper()
	g, err := m.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.Reference(g, m.mu, m.eps)
	got := m.Result()
	for v := 0; v < got.N(); v++ {
		if got.Roles[v] != want.Roles[v] || got.Labels[v] != want.Labels[v] {
			t.Fatalf("vertex %d: got (%v,%d) want (%v,%d)",
				v, got.Roles[v], got.Labels[v], want.Roles[v], want.Labels[v])
		}
	}
}

func TestFromGraphMatchesReference(t *testing.T) {
	for _, tc := range testutil.RandomCases(1)[:4] {
		m, err := FromGraph(tc.G, tc.Mu, tc.Eps)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumEdges() != tc.G.NumEdges() {
			t.Fatalf("%s: edge count %d != %d", tc.Name, m.NumEdges(), tc.G.NumEdges())
		}
		checkAgainstReference(t, m)
	}
}

func TestIncrementalInsertions(t *testing.T) {
	// Build the karate club edge by edge, validating periodically.
	g := testutil.Karate()
	m, err := New(g.NumVertices(), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	added := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		nb, wts := g.Neighbors(v)
		for i, q := range nb {
			if v < q {
				if !m.AddEdge(v, q, wts[i]) {
					t.Fatalf("AddEdge(%d,%d) rejected", v, q)
				}
				added++
				if added%13 == 0 {
					checkAgainstReference(t, m)
				}
			}
		}
	}
	checkAgainstReference(t, m)
	if m.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", m.NumEdges(), g.NumEdges())
	}
}

func TestIncrementalDeletions(t *testing.T) {
	g := testutil.TwoTriangles()
	m, err := FromGraph(g, 3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.NumClusters != 2 {
		t.Fatalf("initial clusters = %d, want 2", res.NumClusters)
	}
	// Break triangle A: {0,1,2} loses the (0,1) edge → cores collapse.
	if !m.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) failed")
	}
	checkAgainstReference(t, m)
	// Removing a non-existent edge is a no-op.
	if m.RemoveEdge(0, 1) {
		t.Fatal("double-remove succeeded")
	}
	// Restore it: the clustering must return to the original.
	m.AddEdge(0, 1, 1)
	checkAgainstReference(t, m)
	res = m.Result()
	if res.NumClusters != 2 {
		t.Fatalf("clusters after restore = %d, want 2", res.NumClusters)
	}
}

func TestRandomChurn(t *testing.T) {
	// Random interleaved insertions/deletions/weight updates on a random
	// base graph; validate against the reference after every batch.
	for _, seed := range []int64{1, 7} {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		m, err := New(n, 3, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		type edge struct{ u, v int32 }
		var present []edge
		for step := 0; step < 400; step++ {
			op := rng.Intn(10)
			switch {
			case op < 6 || len(present) == 0: // insert (or update weight)
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				if u == v {
					continue
				}
				w := 0.5 + rng.Float32()
				existed := m.HasEdge(u, v)
				m.AddEdge(u, v, w)
				if !existed && m.HasEdge(u, v) {
					present = append(present, edge{u, v})
				}
			case op < 9: // delete
				i := rng.Intn(len(present))
				e := present[i]
				if !m.RemoveEdge(e.u, e.v) {
					t.Fatalf("seed %d step %d: remove(%d,%d) failed", seed, step, e.u, e.v)
				}
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
			default: // weight update on an existing edge
				i := rng.Intn(len(present))
				e := present[i]
				m.AddEdge(e.u, e.v, 0.5+rng.Float32())
			}
			if step%50 == 49 {
				checkAgainstReference(t, m)
			}
		}
		checkAgainstReference(t, m)
	}
}

func TestAddVertex(t *testing.T) {
	m, err := New(3, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v := m.AddVertex()
	if v != 3 || m.NumVertices() != 4 {
		t.Fatalf("AddVertex returned %d (n=%d)", v, m.NumVertices())
	}
	m.AddEdge(0, v, 1)
	m.AddEdge(1, v, 1)
	m.AddEdge(0, 1, 1)
	checkAgainstReference(t, m)
}

func TestRejectsInvalidInput(t *testing.T) {
	if _, err := New(5, 0, 0.5); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := New(5, 2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := New(5, 2, 1.5); err == nil {
		t.Error("eps=1.5 accepted")
	}
	m, err := New(5, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.AddEdge(1, 1, 1) {
		t.Error("self loop accepted")
	}
	if m.AddEdge(0, 99, 1) {
		t.Error("out-of-range vertex accepted")
	}
	if m.AddEdge(0, 1, -2) {
		t.Error("negative weight accepted")
	}
}

func TestMaintenanceIsLocal(t *testing.T) {
	// The number of σ re-evaluations per mutation must be bounded by the
	// stars of the two endpoints, not the graph size.
	tc := testutil.RandomCases(1)[0]
	m, err := FromGraph(tc.G, tc.Mu, tc.Eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := int32(m.NumVertices())
	for i := 0; i < 50; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		before := m.SimEvals
		du, dv := m.Degree(u), m.Degree(v)
		if !m.AddEdge(u, v, 1) {
			continue
		}
		evals := m.SimEvals - before
		bound := int64(du + dv + 4)
		if evals > bound {
			t.Fatalf("mutation re-evaluated %d σ, bound %d (deg %d+%d)", evals, bound, du, dv)
		}
		m.RemoveEdge(u, v)
	}
}

// Property: after any mutation sequence the internal invariants hold —
// similar bits symmetric, simCount equal to the recount, norms exact.
func TestInternalInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		m, err := New(n, 3, 0.5)
		if err != nil {
			return false
		}
		for step := 0; step < 150; step++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if rng.Intn(3) == 0 {
				m.RemoveEdge(u, v)
			} else if u != v {
				m.AddEdge(u, v, 0.5+rng.Float32())
			}
		}
		return m.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
