package dynamic

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"anyscan/internal/cluster"
	"anyscan/internal/testutil"
)

// checkAgainstReference validates the maintained clustering against the
// brute-force reference on the exported graph. The maintainer's border rule
// matches the reference, so full label equality is demanded.
func checkAgainstReference(t *testing.T, m *Maintainer) {
	t.Helper()
	g, err := m.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.Reference(g, m.mu, m.eps)
	got := m.Result()
	for v := 0; v < got.N(); v++ {
		if got.Roles[v] != want.Roles[v] || got.Labels[v] != want.Labels[v] {
			t.Fatalf("vertex %d: got (%v,%d) want (%v,%d)",
				v, got.Roles[v], got.Labels[v], want.Roles[v], want.Labels[v])
		}
	}
}

func TestFromGraphMatchesReference(t *testing.T) {
	for _, tc := range testutil.RandomCases(1)[:4] {
		m, err := FromGraph(tc.G, tc.Mu, tc.Eps)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumEdges() != tc.G.NumEdges() {
			t.Fatalf("%s: edge count %d != %d", tc.Name, m.NumEdges(), tc.G.NumEdges())
		}
		checkAgainstReference(t, m)
	}
}

func TestIncrementalInsertions(t *testing.T) {
	// Build the karate club edge by edge, validating periodically.
	g := testutil.Karate()
	m, err := New(g.NumVertices(), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	added := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		nb, wts := g.Neighbors(v)
		for i, q := range nb {
			if v < q {
				if ok, err := m.AddEdge(v, q, wts[i]); err != nil || !ok {
					t.Fatalf("AddEdge(%d,%d) rejected: %v", v, q, err)
				}
				added++
				if added%13 == 0 {
					checkAgainstReference(t, m)
				}
			}
		}
	}
	checkAgainstReference(t, m)
	if m.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", m.NumEdges(), g.NumEdges())
	}
}

func TestIncrementalDeletions(t *testing.T) {
	g := testutil.TwoTriangles()
	m, err := FromGraph(g, 3, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Result()
	if res.NumClusters != 2 {
		t.Fatalf("initial clusters = %d, want 2", res.NumClusters)
	}
	// Break triangle A: {0,1,2} loses the (0,1) edge → cores collapse.
	if ok, err := m.RemoveEdge(0, 1); err != nil || !ok {
		t.Fatalf("RemoveEdge(0,1) failed: %v", err)
	}
	checkAgainstReference(t, m)
	// Removing a non-existent edge is a no-op.
	if ok, _ := m.RemoveEdge(0, 1); ok {
		t.Fatal("double-remove succeeded")
	}
	// Restore it: the clustering must return to the original.
	m.AddEdge(0, 1, 1)
	checkAgainstReference(t, m)
	res = m.Result()
	if res.NumClusters != 2 {
		t.Fatalf("clusters after restore = %d, want 2", res.NumClusters)
	}
}

func TestRandomChurn(t *testing.T) {
	// Random interleaved insertions/deletions/weight updates on a random
	// base graph; validate against the reference after every batch.
	for _, seed := range []int64{1, 7} {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		m, err := New(n, 3, 0.45)
		if err != nil {
			t.Fatal(err)
		}
		type edge struct{ u, v int32 }
		var present []edge
		for step := 0; step < 400; step++ {
			op := rng.Intn(10)
			switch {
			case op < 6 || len(present) == 0: // insert (or update weight)
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				if u == v {
					continue
				}
				w := 0.5 + rng.Float32()
				existed := m.HasEdge(u, v)
				m.AddEdge(u, v, w)
				if !existed && m.HasEdge(u, v) {
					present = append(present, edge{u, v})
				}
			case op < 9: // delete
				i := rng.Intn(len(present))
				e := present[i]
				if ok, err := m.RemoveEdge(e.u, e.v); err != nil || !ok {
					t.Fatalf("seed %d step %d: remove(%d,%d) failed: %v", seed, step, e.u, e.v, err)
				}
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
			default: // weight update on an existing edge
				i := rng.Intn(len(present))
				e := present[i]
				m.AddEdge(e.u, e.v, 0.5+rng.Float32())
			}
			if step%50 == 49 {
				checkAgainstReference(t, m)
			}
		}
		checkAgainstReference(t, m)
	}
}

func TestAddVertex(t *testing.T) {
	m, err := New(3, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	v := m.AddVertex()
	if v != 3 || m.NumVertices() != 4 {
		t.Fatalf("AddVertex returned %d (n=%d)", v, m.NumVertices())
	}
	m.AddEdge(0, v, 1)
	m.AddEdge(1, v, 1)
	m.AddEdge(0, 1, 1)
	checkAgainstReference(t, m)
}

func TestRejectsInvalidInput(t *testing.T) {
	if _, err := New(5, 0, 0.5); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := New(5, 2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := New(5, 2, 1.5); err == nil {
		t.Error("eps=1.5 accepted")
	}
	m, err := New(5, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge(1, 1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := m.AddEdge(0, 99, 1); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, err := m.AddEdge(0, 1, -2); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := m.RemoveEdge(2, 2); err == nil {
		t.Error("self-loop remove accepted")
	}
	if _, err := m.RemoveEdge(-1, 0); err == nil {
		t.Error("negative vertex remove accepted")
	}
}

// Regression: the old guard !(w > 0) rejected NaN, zero, and negative
// weights but let +Inf through (Inf > 0 is true), silently corrupting σ
// norms. Every non-finite weight must now be an explicit error and leave
// the maintainer untouched.
func TestWeightValidationErrors(t *testing.T) {
	m, err := New(4, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m.AddEdge(0, 1, 1); err != nil || !ok {
		t.Fatalf("valid AddEdge failed: %v", err)
	}
	cases := []struct {
		w    float32
		want string
	}{
		{float32(math.NaN()), "weight is NaN"},
		{float32(math.Inf(1)), "weight is infinite"},
		{float32(math.Inf(-1)), "weight is infinite"},
		{0, "not positive"},
		{-3, "not positive"},
	}
	for _, tc := range cases {
		ok, err := m.AddEdge(0, 2, tc.w)
		if ok || err == nil {
			t.Fatalf("AddEdge(0,2,%v) accepted", tc.w)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("AddEdge(0,2,%v) error %q, want substring %q", tc.w, err, tc.want)
		}
		// Updating an existing edge must hit the same guard.
		if ok, err := m.AddEdge(0, 1, tc.w); ok || err == nil {
			t.Fatalf("reweight (0,1,%v) accepted", tc.w)
		}
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatalf("invariants broken after rejected mutations: %v", err)
	}
	if w := m.EdgeWeight(0, 1); w != 1 {
		t.Fatalf("edge weight corrupted: %v", w)
	}
}

// Apply must produce exactly the state of the equivalent one-at-a-time
// loop, be atomic on invalid input, and do star-local σ work once per
// touched vertex rather than once per mutation.
func TestApplyBatch(t *testing.T) {
	tc := testutil.RandomCases(5)[0]
	rng := rand.New(rand.NewSource(11))
	n := int32(tc.G.NumVertices())

	mkBatch := func() []Mutation {
		muts := make([]Mutation, 0, 24)
		for i := 0; i < 24; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			if rng.Intn(3) == 0 {
				muts = append(muts, Mutation{Op: OpDelete, U: u, V: v})
			} else {
				muts = append(muts, Mutation{Op: OpAdd, U: u, V: v, W: 0.5 + rng.Float32()})
			}
		}
		return muts
	}

	batched, err := FromGraph(tc.G, tc.Mu, tc.Eps)
	if err != nil {
		t.Fatal(err)
	}
	looped, err := FromGraph(tc.G, tc.Mu, tc.Eps)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		muts := mkBatch()
		bChanged, err := batched.Apply(muts)
		if err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		lChanged := 0
		for _, mu := range muts {
			var ok bool
			var err error
			if mu.Op == OpDelete {
				ok, err = looped.RemoveEdge(mu.U, mu.V)
			} else {
				ok, err = looped.AddEdge(mu.U, mu.V, mu.W)
			}
			if err != nil {
				t.Fatalf("round %d: loop: %v", round, err)
			}
			if ok {
				lChanged++
			}
		}
		if bChanged != lChanged {
			t.Fatalf("round %d: Apply changed %d, loop changed %d", round, bChanged, lChanged)
		}
		if be, le := batched.NumEdges(), looped.NumEdges(); be != le {
			t.Fatalf("round %d: edges %d vs %d", round, be, le)
		}
		if err := batched.checkInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		bres, lres := batched.Result(), looped.Result()
		for v := 0; v < bres.N(); v++ {
			if bres.Roles[v] != lres.Roles[v] || bres.Labels[v] != lres.Labels[v] {
				t.Fatalf("round %d vertex %d: batched (%v,%d) vs loop (%v,%d)",
					round, v, bres.Roles[v], bres.Labels[v], lres.Roles[v], lres.Labels[v])
			}
		}
		checkAgainstReference(t, batched)
	}

	// Atomicity: one bad mutation rejects the whole batch with no change.
	before := batched.NumEdges()
	evals := batched.SimEvals
	_, err = batched.Apply([]Mutation{
		{Op: OpAdd, U: 0, V: 1, W: 1},
		{Op: OpAdd, U: 0, V: 2, W: float32(math.Inf(1))},
	})
	if err == nil {
		t.Fatal("batch with infinite weight accepted")
	}
	if batched.NumEdges() != before || batched.SimEvals != evals {
		t.Fatal("rejected batch mutated state")
	}
	if err := batched.checkInvariants(); err != nil {
		t.Fatal(err)
	}

	// Locality: a batch of k mutations sharing one endpoint refreshes that
	// star once, so it must cost strictly fewer σ evaluations than the
	// one-at-a-time loop on the same mutations.
	hub := int32(0)
	var muts []Mutation
	for q := int32(1); q <= 12; q++ {
		muts = append(muts, Mutation{Op: OpAdd, U: hub, V: q % n, W: 2})
	}
	b2, _ := FromGraph(tc.G, tc.Mu, tc.Eps)
	l2, _ := FromGraph(tc.G, tc.Mu, tc.Eps)
	b0 := b2.SimEvals
	if _, err := b2.Apply(muts); err != nil {
		t.Fatal(err)
	}
	l0 := l2.SimEvals
	for _, mu := range muts {
		if _, err := l2.AddEdge(mu.U, mu.V, mu.W); err != nil {
			t.Fatal(err)
		}
	}
	if bEvals, lEvals := b2.SimEvals-b0, l2.SimEvals-l0; bEvals >= lEvals {
		t.Fatalf("batched σ work %d not below loop %d", bEvals, lEvals)
	}
}

func TestMaintenanceIsLocal(t *testing.T) {
	// The number of σ re-evaluations per mutation must be bounded by the
	// stars of the two endpoints, not the graph size.
	tc := testutil.RandomCases(1)[0]
	m, err := FromGraph(tc.G, tc.Mu, tc.Eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := int32(m.NumVertices())
	for i := 0; i < 50; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		before := m.SimEvals
		du, dv := m.Degree(u), m.Degree(v)
		if ok, _ := m.AddEdge(u, v, 1); !ok {
			continue
		}
		evals := m.SimEvals - before
		bound := int64(du + dv + 4)
		if evals > bound {
			t.Fatalf("mutation re-evaluated %d σ, bound %d (deg %d+%d)", evals, bound, du, dv)
		}
		m.RemoveEdge(u, v)
	}
}

// Property: after any mutation sequence the internal invariants hold —
// similar bits symmetric, simCount equal to the recount, norms exact.
func TestInternalInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		m, err := New(n, 3, 0.5)
		if err != nil {
			return false
		}
		for step := 0; step < 150; step++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if rng.Intn(3) == 0 {
				m.RemoveEdge(u, v)
			} else if u != v {
				m.AddEdge(u, v, 0.5+rng.Float32())
			}
		}
		return m.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
