package dynamic

import (
	"math/rand"
	"testing"

	"anyscan/internal/gen"
)

// benchBatch builds a reproducible mixed batch whose mutations concentrate
// on a small set of hub endpoints — the shape where batching pays, because
// each hub star refreshes once per batch instead of once per mutation.
func benchBatch(rng *rand.Rand, n int32, size int) []Mutation {
	hubs := [4]int32{}
	for i := range hubs {
		hubs[i] = rng.Int31n(n)
	}
	muts := make([]Mutation, 0, size)
	for len(muts) < size {
		u := hubs[rng.Intn(len(hubs))]
		v := rng.Int31n(n)
		if u == v {
			continue
		}
		if rng.Intn(4) == 0 {
			muts = append(muts, Mutation{Op: OpDelete, U: u, V: v})
		} else {
			muts = append(muts, Mutation{Op: OpAdd, U: u, V: v, W: 0.5 + rng.Float32()})
		}
	}
	return muts
}

func benchGraph(b *testing.B) *Maintainer {
	g := gen.ErdosRenyi(2000, 12000, gen.WeightConfig{}, 42)
	m, err := FromGraph(g, 4, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkApplyBatch measures the batched write path: one Apply per batch,
// each touched star refreshed once.
func BenchmarkApplyBatch(b *testing.B) {
	m := benchGraph(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		muts := benchBatch(rng, int32(m.NumVertices()), 64)
		if _, err := m.Apply(muts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.SimEvals)/float64(b.N), "σ/batch")
}

// BenchmarkAddEdgeLoop measures the same batches applied one mutation at a
// time — the baseline Apply must beat.
func BenchmarkAddEdgeLoop(b *testing.B) {
	m := benchGraph(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		muts := benchBatch(rng, int32(m.NumVertices()), 64)
		for _, mu := range muts {
			var err error
			if mu.Op == OpDelete {
				_, err = m.RemoveEdge(mu.U, mu.V)
			} else {
				_, err = m.AddEdge(mu.U, mu.V, mu.W)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(m.SimEvals)/float64(b.N), "σ/batch")
}
