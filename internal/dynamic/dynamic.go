// Package dynamic maintains the exact SCAN clustering of a mutable weighted
// graph under edge insertions, deletions and weight updates — the
// incremental/streaming scenario the paper's related work attributes to
// DENGRAPH (community detection in large and dynamic social networks).
//
// The key structural fact making maintenance cheap is that inserting or
// deleting an edge (u,v) changes the structural similarity of *only the
// arcs incident to u or v*: for any other adjacent pair (x,y), neither the
// closed neighborhoods nor the norms involve the mutated edge. A Maintainer
// therefore re-evaluates O(deg(u)+deg(v)) similarities per mutation, tracks
// per-vertex similar-neighbor counts (coreness), and rebuilds labels lazily
// — without a single extra σ evaluation — when a Result is requested.
package dynamic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"anyscan/internal/cluster"
	"anyscan/internal/graph"
	"anyscan/internal/unionfind"
)

// neighbor is one adjacency entry; entries are kept sorted by id.
type neighbor struct {
	id      int32
	w       float32
	similar bool // σ(v, id) ≥ ε, kept symmetric with the reverse entry
}

// Maintainer holds the mutable graph and its clustering state.
type Maintainer struct {
	mu  int
	eps float64

	adj      [][]neighbor
	norm     []float64 // l_v = 1 + Σ w², recomputed exactly per mutation
	simCount []int32   // similar neighbors of v (excluding v itself)
	edges    int64

	// Work counters (σ re-evaluations per maintenance).
	SimEvals int64
}

// New builds a Maintainer for n initially isolated vertices.
func New(n, mu int, eps float64) (*Maintainer, error) {
	if mu < 1 {
		return nil, fmt.Errorf("dynamic: mu must be >= 1, got %d", mu)
	}
	if !(eps > 0 && eps <= 1) {
		return nil, fmt.Errorf("dynamic: eps must be in (0,1], got %v", eps)
	}
	m := &Maintainer{
		mu:       mu,
		eps:      eps,
		adj:      make([][]neighbor, n),
		norm:     make([]float64, n),
		simCount: make([]int32, n),
	}
	for v := range m.norm {
		m.norm[v] = graph.SelfWeight * graph.SelfWeight
	}
	return m, nil
}

// FromGraph builds a Maintainer preloaded with g's edges.
func FromGraph(g *graph.CSR, mu int, eps float64) (*Maintainer, error) {
	m, err := New(g.NumVertices(), mu, eps)
	if err != nil {
		return nil, err
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		nb, wts := g.Neighbors(v)
		for i, q := range nb {
			if v < q {
				if _, err := m.AddEdge(v, q, wts[i]); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

// NumVertices returns the vertex count.
func (m *Maintainer) NumVertices() int { return len(m.adj) }

// NumEdges returns the current undirected edge count.
func (m *Maintainer) NumEdges() int64 { return m.edges }

// AddVertex appends a fresh isolated vertex and returns its id.
func (m *Maintainer) AddVertex() int32 {
	m.adj = append(m.adj, nil)
	m.norm = append(m.norm, graph.SelfWeight*graph.SelfWeight)
	m.simCount = append(m.simCount, 0)
	return int32(len(m.adj) - 1)
}

// HasEdge reports whether (u,v) currently exists.
func (m *Maintainer) HasEdge(u, v int32) bool {
	_, ok := m.find(u, v)
	return ok
}

// EdgeWeight returns the current weight of (u,v), or 0 if absent.
func (m *Maintainer) EdgeWeight(u, v int32) float32 {
	if i, ok := m.find(u, v); ok {
		return m.adj[u][i].w
	}
	return 0
}

// Degree returns the degree of v.
func (m *Maintainer) Degree(v int32) int { return len(m.adj[v]) }

// NeighborAt returns v's i-th neighbor in sorted order (for random walks
// and iteration without exposing internal storage).
func (m *Maintainer) NeighborAt(v int32, i int) int32 { return m.adj[v][i].id }

// AddEdge inserts the undirected edge (u,v) with weight w, or updates its
// weight if present, and repairs all affected similarity state. Reports
// whether the graph changed. Self loops, unknown vertices, and NaN /
// infinite / non-positive weights are rejected with an error matching the
// edge-list hardening in package graph — the old boolean guard (!(w > 0))
// let +Inf through and silently corrupted σ norms.
func (m *Maintainer) AddEdge(u, v int32, w float32) (bool, error) {
	if err := m.validateEdge(u, v); err != nil {
		return false, fmt.Errorf("dynamic: %w", err)
	}
	if err := validateWeight(w); err != nil {
		return false, fmt.Errorf("dynamic: %w", err)
	}
	if i, ok := m.find(u, v); ok {
		if m.adj[u][i].w == w {
			return false, nil
		}
		m.setWeight(u, v, w)
	} else {
		m.insert(u, v, w)
		m.insert(v, u, w)
		m.edges++
	}
	m.refreshAround(u, v)
	return true, nil
}

// RemoveEdge deletes (u,v) and repairs all affected similarity state.
// Reports whether the edge existed; removing an absent edge is a no-op, not
// an error. Self loops and unknown vertices are errors as in AddEdge.
func (m *Maintainer) RemoveEdge(u, v int32) (bool, error) {
	if err := m.validateEdge(u, v); err != nil {
		return false, fmt.Errorf("dynamic: %w", err)
	}
	i, ok := m.find(u, v)
	if !ok {
		return false, nil
	}
	// Clear the similar bit first so simCount bookkeeping stays balanced.
	m.setSimilar(u, i, false)
	m.remove(u, v)
	m.remove(v, u)
	m.edges--
	m.refreshAround(u, v)
	return true, nil
}

// validateEdge rejects unknown endpoints and self loops. Unprefixed; the
// exported entry points wrap with the package context.
func (m *Maintainer) validateEdge(u, v int32) error {
	if !m.valid(u) {
		return fmt.Errorf("vertex %d out of range [0,%d)", u, len(m.adj))
	}
	if !m.valid(v) {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, len(m.adj))
	}
	if u == v {
		return fmt.Errorf("self loop (%d,%d) is not a mutable edge", u, v)
	}
	return nil
}

// validateWeight rejects NaN, infinite, and non-positive weights with the
// same wording family as the package graph edge-list loader.
func validateWeight(w float32) error {
	switch x := float64(w); {
	case math.IsNaN(x):
		return errors.New("weight is NaN")
	case math.IsInf(x, 0):
		return errors.New("weight is infinite")
	case w <= 0:
		return fmt.Errorf("weight %g is not positive (edge weights must be > 0)", w)
	}
	return nil
}

// Op is a batched mutation kind.
type Op uint8

// Mutation operations: OpAdd inserts the edge or updates its weight when
// present; OpDelete removes it and is a no-op when absent.
const (
	OpAdd Op = iota
	OpDelete
)

// Mutation is one edge operation in a batch; W is ignored for OpDelete.
type Mutation struct {
	Op   Op
	U, V int32
	W    float32
}

// Apply applies a batch of mutations and then repairs the similarity state
// once per *touched star* instead of once per mutation: k mutations landing
// on the same vertex cost one norm recomputation and one star refresh, not
// k, so batches with endpoint locality (the common streaming shape) do
// asymptotically less σ work than an AddEdge/RemoveEdge loop — the
// benchmarks in dynamic_test.go quantify the gap. The batch is atomic:
// every mutation is validated up front and any invalid one rejects the
// whole batch before the graph changes. Mutations resolve sequentially
// (add then delete of the same edge cancels out). Returns the number of
// mutations that changed the graph.
func (m *Maintainer) Apply(muts []Mutation) (changed int, err error) {
	for i := range muts {
		mu := muts[i]
		if mu.Op > OpDelete {
			return 0, fmt.Errorf("dynamic: mutation %d: unknown op %d", i, uint8(mu.Op))
		}
		if err := m.validateEdge(mu.U, mu.V); err != nil {
			return 0, fmt.Errorf("dynamic: mutation %d: %w", i, err)
		}
		if mu.Op == OpAdd {
			if err := validateWeight(mu.W); err != nil {
				return 0, fmt.Errorf("dynamic: mutation %d: %w", i, err)
			}
		}
	}
	touched := make(map[int32]struct{})
	for _, mu := range muts {
		switch mu.Op {
		case OpAdd:
			if i, ok := m.find(mu.U, mu.V); ok {
				if m.adj[mu.U][i].w == mu.W {
					continue
				}
				m.setWeight(mu.U, mu.V, mu.W)
			} else {
				m.insert(mu.U, mu.V, mu.W)
				m.insert(mu.V, mu.U, mu.W)
				m.edges++
			}
		case OpDelete:
			i, ok := m.find(mu.U, mu.V)
			if !ok {
				continue
			}
			m.setSimilar(mu.U, i, false)
			m.remove(mu.U, mu.V)
			m.remove(mu.V, mu.U)
			m.edges--
		}
		changed++
		touched[mu.U] = struct{}{}
		touched[mu.V] = struct{}{}
	}
	if changed == 0 {
		return 0, nil
	}
	stars := make([]int32, 0, len(touched))
	for v := range touched {
		stars = append(stars, v)
	}
	sort.Slice(stars, func(a, b int) bool { return stars[a] < stars[b] })
	// All norms first: refreshStar evaluates σ against neighbor norms, so
	// every touched norm must be final before any star is refreshed.
	for _, v := range stars {
		m.recomputeNorm(v)
	}
	for _, v := range stars {
		m.refreshStar(v)
	}
	return changed, nil
}

// valid reports whether v is a known vertex.
func (m *Maintainer) valid(v int32) bool { return v >= 0 && int(v) < len(m.adj) }

// find locates v in adj[u].
func (m *Maintainer) find(u, v int32) (int, bool) {
	a := m.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].id >= v })
	if i < len(a) && a[i].id == v {
		return i, true
	}
	return 0, false
}

func (m *Maintainer) insert(u, v int32, w float32) {
	a := m.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].id >= v })
	a = append(a, neighbor{})
	copy(a[i+1:], a[i:])
	a[i] = neighbor{id: v, w: w}
	m.adj[u] = a
}

func (m *Maintainer) remove(u, v int32) {
	i, _ := m.find(u, v)
	a := m.adj[u]
	copy(a[i:], a[i+1:])
	m.adj[u] = a[:len(a)-1]
}

func (m *Maintainer) setWeight(u, v int32, w float32) {
	i, _ := m.find(u, v)
	m.adj[u][i].w = w
	j, _ := m.find(v, u)
	m.adj[v][j].w = w
}

// setSimilar flips the similar bit of adj[u][i] (and its mirror) and keeps
// the endpoint simCounts in sync.
func (m *Maintainer) setSimilar(u int32, i int, similar bool) {
	nb := &m.adj[u][i]
	if nb.similar == similar {
		return
	}
	v := nb.id
	nb.similar = similar
	j, _ := m.find(v, u)
	m.adj[v][j].similar = similar
	delta := int32(1)
	if !similar {
		delta = -1
	}
	m.simCount[u] += delta
	m.simCount[v] += delta
}

// refreshAround recomputes the norms of u and v and re-evaluates σ for
// every arc incident to either — the exact affected set of the mutation.
func (m *Maintainer) refreshAround(u, v int32) {
	m.recomputeNorm(u)
	m.recomputeNorm(v)
	// Norm changes also shift σ of edges incident to u and v, so refresh
	// both stars; an edge (u,v) itself is refreshed once from u's side.
	m.refreshStar(u)
	m.refreshStar(v)
}

// recomputeNorm rebuilds l_v from scratch (exact, no drift).
func (m *Maintainer) recomputeNorm(v int32) {
	l := graph.SelfWeight * graph.SelfWeight
	for _, nb := range m.adj[v] {
		l += float64(nb.w) * float64(nb.w)
	}
	m.norm[v] = l
}

// refreshStar re-evaluates σ(v, q) for every neighbor q of v.
func (m *Maintainer) refreshStar(v int32) {
	for i := range m.adj[v] {
		m.setSimilar(v, i, m.similar(v, m.adj[v][i].id, m.adj[v][i].w))
	}
}

// similar evaluates σ(u,v) ≥ ε with the same float expression as the
// simeval engine (selfTerms + ascending merge-join dot, compared against
// eps·(√l_u·√l_v)), so maintained state matches batch algorithms exactly.
func (m *Maintainer) similar(u, v int32, wuv float32) bool {
	m.SimEvals++
	a, b := m.adj[u], m.adj[v]
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].id < b[j].id:
			i++
		case a[i].id > b[j].id:
			j++
		default:
			dot += float64(a[i].w) * float64(b[j].w)
			i++
			j++
		}
	}
	num := 2*float64(wuv)*graph.SelfWeight + dot
	threshold := m.eps * (math.Sqrt(m.norm[u]) * math.Sqrt(m.norm[v]))
	return num >= threshold
}

// IsCore reports whether v is currently a core vertex.
func (m *Maintainer) IsCore(v int32) bool {
	return int(m.simCount[v])+1 >= m.mu
}

// Result materializes the current exact clustering. No σ evaluations are
// performed: the maintained similar bits and core counts are replayed into
// a union-find, borders attach to their smallest qualifying core (matching
// cluster.Reference), and noise splits into hubs and outliers.
func (m *Maintainer) Result() *cluster.Result {
	n := len(m.adj)
	ds := unionfind.New(n)
	for v := int32(0); v < int32(n); v++ {
		if !m.IsCore(v) {
			continue
		}
		for _, nb := range m.adj[v] {
			if nb.similar && nb.id > v && m.IsCore(nb.id) {
				ds.Union(v, nb.id)
			}
		}
	}
	res := cluster.NewResult(n)
	for v := int32(0); v < int32(n); v++ {
		if m.IsCore(v) {
			res.Roles[v] = cluster.Core
			res.Labels[v] = ds.Find(v)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if res.Roles[v] == cluster.Core {
			continue
		}
		for _, nb := range m.adj[v] {
			if nb.similar && m.IsCore(nb.id) {
				res.Roles[v] = cluster.Border
				res.Labels[v] = ds.Find(nb.id)
				break
			}
		}
	}
	m.classifyNoise(res)
	res.Canonicalize()
	return res
}

// classifyNoise mirrors cluster.ClassifyNoise on the mutable adjacency.
func (m *Maintainer) classifyNoise(r *cluster.Result) {
	for v := int32(0); v < int32(len(m.adj)); v++ {
		if r.Roles[v] == cluster.Core || r.Roles[v] == cluster.Border {
			continue
		}
		first := cluster.NoLabel
		role := cluster.Outlier
		for _, nb := range m.adj[v] {
			l := r.Labels[nb.id]
			if l == cluster.NoLabel {
				continue
			}
			if first == cluster.NoLabel {
				first = l
			} else if l != first {
				role = cluster.Hub
				break
			}
		}
		r.Roles[v] = role
	}
}

// ToCSR exports the current graph as an immutable CSR (for validation or
// for handing to the batch algorithms).
func (m *Maintainer) ToCSR() (*graph.CSR, error) {
	var b graph.Builder
	b.SetNumVertices(len(m.adj))
	for v := int32(0); v < int32(len(m.adj)); v++ {
		for _, nb := range m.adj[v] {
			if v < nb.id {
				b.AddEdge(v, nb.id, nb.w)
			}
		}
	}
	return b.Build()
}

// checkInvariants verifies the internal consistency the maintenance logic
// relies on: symmetric similar bits, simCount matching a recount, and
// exact norms. Used by property tests.
func (m *Maintainer) checkInvariants() error {
	for v := int32(0); v < int32(len(m.adj)); v++ {
		count := int32(0)
		for _, nb := range m.adj[v] {
			j, ok := m.find(nb.id, v)
			if !ok {
				return fmt.Errorf("dynamic: edge (%d,%d) missing reverse entry", v, nb.id)
			}
			mirror := m.adj[nb.id][j]
			if mirror.similar != nb.similar || mirror.w != nb.w {
				return fmt.Errorf("dynamic: asymmetric entry on (%d,%d)", v, nb.id)
			}
			if nb.similar {
				count++
			}
		}
		if count != m.simCount[v] {
			return fmt.Errorf("dynamic: simCount[%d]=%d, recount=%d", v, m.simCount[v], count)
		}
		l := graph.SelfWeight * graph.SelfWeight
		for _, nb := range m.adj[v] {
			l += float64(nb.w) * float64(nb.w)
		}
		if l != m.norm[v] {
			return fmt.Errorf("dynamic: norm[%d]=%v, recompute=%v", v, m.norm[v], l)
		}
	}
	return nil
}
