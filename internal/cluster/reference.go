package cluster

import (
	"fmt"

	"anyscan/internal/graph"
	"anyscan/internal/simeval"
	"anyscan/internal/unionfind"
)

// Reference computes the clustering by following Definitions 2–5 literally:
// evaluate σ on every edge, mark cores, union adjacent similar cores, then
// attach borders. It makes no attempt to be fast and exists as the ground
// truth every optimized algorithm is tested against.
//
// Border vertices claimed by several clusters are attached to the cluster of
// their smallest qualifying core, making Reference fully deterministic.
func Reference(g *graph.CSR, mu int, eps float64) *Result {
	n := g.NumVertices()
	eng := simeval.New(g, eps, simeval.Options{}) // no pruning: literal definition
	similar := edgeSimilarities(g, eng)

	isCore := make([]bool, n)
	for v := int32(0); v < int32(n); v++ {
		cnt := 1 // closed neighborhood: σ(v,v)=1
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			if similar[e] {
				cnt++
			}
		}
		isCore[v] = cnt >= mu
	}

	ds := unionfind.New(n)
	for v := int32(0); v < int32(n); v++ {
		if !isCore[v] {
			continue
		}
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, _ := g.Arc(e)
			if isCore[q] && similar[e] {
				ds.Union(v, q)
			}
		}
	}

	res := NewResult(n)
	// Cluster ids: representative core of each union-find component.
	for v := int32(0); v < int32(n); v++ {
		if isCore[v] {
			res.Roles[v] = Core
			res.Labels[v] = ds.Find(v)
		}
	}
	// Borders: non-core with a similar adjacent core; pick smallest core.
	for v := int32(0); v < int32(n); v++ {
		if isCore[v] {
			continue
		}
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, _ := g.Arc(e)
			if isCore[q] && similar[e] {
				res.Roles[v] = Border
				res.Labels[v] = ds.Find(q)
				break // neighbors sorted ⇒ smallest qualifying core
			}
		}
	}
	ClassifyNoise(g, res)
	res.Canonicalize()
	return res
}

// edgeSimilarities evaluates σ ≥ ε once per undirected edge and mirrors the
// outcome onto both arcs.
func edgeSimilarities(g *graph.CSR, eng *simeval.Engine) []bool {
	similar := make([]bool, g.NumArcs())
	rev := g.ReverseEdgeIndex()
	n := int32(g.NumVertices())
	for v := int32(0); v < n; v++ {
		lo, hi := g.NeighborRange(v)
		for e := lo; e < hi; e++ {
			q, w := g.Arc(e)
			if v < q {
				ok := eng.SimilarEdge(v, q, w)
				similar[e] = ok
				similar[rev[e]] = ok
			}
		}
	}
	return similar
}

// ClassifyNoise upgrades unlabeled vertices to Hub or Outlier: a noise
// vertex whose (plain) neighbors belong to two or more distinct clusters is
// a hub, otherwise an outlier. Vertices already classified are untouched.
func ClassifyNoise(g graph.Graph, r *Result) {
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if r.Roles[v] == Core || r.Roles[v] == Border {
			continue
		}
		first := NoLabel
		role := Outlier
		g.EachNeighbor(v, func(_ int, q int32, _ float32) bool {
			l := r.Labels[q]
			if l == NoLabel {
				return true
			}
			if first == NoLabel {
				first = l
			} else if l != first {
				role = Hub
				return false
			}
			return true
		})
		r.Roles[v] = role
	}
}

// Validate checks that res is a correct SCAN clustering of g under (μ, ε):
// roles match the definitions, cores in the same cluster are exactly the
// density-connected components, borders are attached to a qualifying
// cluster, and noise touches no similar core. Returns nil if valid.
func Validate(g *graph.CSR, mu int, eps float64, res *Result) error {
	n := g.NumVertices()
	if res.N() != n {
		return fmt.Errorf("cluster: result has %d vertices, graph has %d", res.N(), n)
	}
	want := Reference(g, mu, eps)

	// Role agreement (hub/outlier split may legitimately differ when shared
	// borders are assigned differently, so compare at noise granularity).
	for v := 0; v < n; v++ {
		gw, gr := want.Roles[v], res.Roles[v]
		if gw == Core != (gr == Core) {
			return fmt.Errorf("cluster: vertex %d: core mismatch (want %v, got %v)", v, gw, gr)
		}
		if gw == Border != (gr == Border) {
			return fmt.Errorf("cluster: vertex %d: border mismatch (want %v, got %v)", v, gw, gr)
		}
		if gw.IsNoise() != gr.IsNoise() {
			return fmt.Errorf("cluster: vertex %d: noise mismatch (want %v, got %v)", v, gw, gr)
		}
	}

	// Core partition must match exactly (bidirectional label bijection).
	if err := coresMatch(want, res); err != nil {
		return err
	}

	// Borders must be attached to the cluster of SOME adjacent similar core.
	eng := simeval.New(g, eps, simeval.Options{})
	for v := int32(0); v < int32(n); v++ {
		if res.Roles[v] != Border {
			continue
		}
		if res.Labels[v] == NoLabel {
			return fmt.Errorf("cluster: border %d has no label", v)
		}
		ok := false
		adj, wts := g.Neighbors(v)
		for i, q := range adj {
			if res.Roles[q] == Core && res.Labels[q] == res.Labels[v] && eng.SimilarEdge(v, q, wts[i]) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("cluster: border %d attached to cluster %d without a similar core neighbor there", v, res.Labels[v])
		}
	}

	// Noise must carry no label.
	for v := 0; v < n; v++ {
		if res.Roles[v].IsNoise() && res.Labels[v] != NoLabel {
			return fmt.Errorf("cluster: noise vertex %d carries label %d", v, res.Labels[v])
		}
	}
	return nil
}

// coresMatch verifies the two results induce the same partition on core
// vertices.
func coresMatch(a, b *Result) error {
	aToB := map[int32]int32{}
	bToA := map[int32]int32{}
	for v := 0; v < a.N(); v++ {
		if a.Roles[v] != Core {
			continue
		}
		la, lb := a.Labels[v], b.Labels[v]
		if prev, ok := aToB[la]; ok && prev != lb {
			return fmt.Errorf("cluster: core partition split: cluster %d maps to both %d and %d (at vertex %d)", la, prev, lb, v)
		}
		if prev, ok := bToA[lb]; ok && prev != la {
			return fmt.Errorf("cluster: core partition merged: cluster %d maps to both %d and %d (at vertex %d)", lb, prev, la, v)
		}
		aToB[la] = lb
		bToA[lb] = la
	}
	return nil
}

// Equivalent reports whether two results are the same clustering modulo the
// arbitrary assignment of shared border vertices: identical core sets and
// core partition, identical border and noise sets, and (strictly) identical
// labels for non-shared borders is not required — border attachment validity
// is the caller's concern (see Validate).
func Equivalent(a, b *Result) error {
	if a.N() != b.N() {
		return fmt.Errorf("cluster: vertex count mismatch %d vs %d", a.N(), b.N())
	}
	for v := 0; v < a.N(); v++ {
		if (a.Roles[v] == Core) != (b.Roles[v] == Core) {
			return fmt.Errorf("cluster: vertex %d core mismatch", v)
		}
		if (a.Roles[v] == Border) != (b.Roles[v] == Border) {
			return fmt.Errorf("cluster: vertex %d border mismatch", v)
		}
	}
	return coresMatch(a, b)
}
