package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anyscan/internal/graph"
)

// randomResult builds an arbitrary (not necessarily SCAN-valid) result for
// structural property testing.
func randomResult(rng *rand.Rand, n int) *Result {
	r := NewResult(n)
	k := rng.Intn(5) + 1
	for v := 0; v < n; v++ {
		switch rng.Intn(4) {
		case 0:
			r.Roles[v] = Core
			r.Labels[v] = int32(rng.Intn(k) * 7) // sparse labels
		case 1:
			r.Roles[v] = Border
			r.Labels[v] = int32(rng.Intn(k) * 7)
		case 2:
			r.Roles[v] = Hub
		default:
			r.Roles[v] = Outlier
		}
	}
	return r
}

// Property: Canonicalize is idempotent and preserves co-membership.
func TestCanonicalizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		r := randomResult(rng, n)
		orig := append([]int32(nil), r.Labels...)
		r.Canonicalize()
		once := append([]int32(nil), r.Labels...)
		r.Canonicalize()
		// Idempotence.
		for v := range once {
			if r.Labels[v] != once[v] {
				return false
			}
		}
		// Labels dense in [0, NumClusters).
		for _, l := range r.Labels {
			if l != NoLabel && (l < 0 || int(l) >= r.NumClusters) {
				return false
			}
		}
		// Co-membership preserved.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if orig[i] == NoLabel || orig[j] == NoLabel {
					continue
				}
				if (orig[i] == orig[j]) != (once[i] == once[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: role counts sum to N and cluster sizes sum to the number of
// labeled vertices.
func TestCountsProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 1
		r := randomResult(rng, n)
		r.Canonicalize()
		c := r.RoleCounts()
		if c.Cores+c.Borders+c.Hubs+c.Outliers+c.Unclassified != n {
			return false
		}
		labeled := 0
		for _, l := range r.Labels {
			if l != NoLabel {
				labeled++
			}
		}
		total := 0
		for _, s := range r.ClusterSizes() {
			total += s
		}
		return total == labeled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the reference clustering always validates against itself, for
// arbitrary random graphs and parameters.
func TestReferenceAlwaysSelfValid(t *testing.T) {
	f := func(seed int64, muRaw uint8, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 5
		var b graph.Builder
		b.SetNumVertices(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 0.5+rng.Float32())
		}
		g := b.MustBuild()
		mu := int(muRaw)%6 + 1
		eps := 0.1 + float64(epsRaw%80)/100
		res := Reference(g, mu, eps)
		return Validate(g, mu, eps, res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Equivalent is reflexive and symmetric on SCAN-valid results.
func TestEquivalentRelationProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 5
		var b graph.Builder
		b.SetNumVertices(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
		}
		g := b.MustBuild()
		a := Reference(g, 3, 0.5)
		bb := Reference(g, 3, 0.5)
		if Equivalent(a, a) != nil {
			return false
		}
		return (Equivalent(a, bb) == nil) == (Equivalent(bb, a) == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
