package cluster

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteAssignments writes the clustering as "vertex cluster role" lines
// (cluster -1 = noise), a format ReadAssignments parses back. Stable and
// diff-friendly for storing clustering outputs next to their graphs.
func WriteAssignments(w io.Writer, r *Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# anyscan clustering: %d vertices, %d clusters\n", r.N(), r.NumClusters)
	fmt.Fprintln(bw, "# vertex cluster role")
	for v := 0; v < r.N(); v++ {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", v, r.Labels[v], r.Roles[v]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAssignments parses a clustering written by WriteAssignments.
func ReadAssignments(rd io.Reader) (*Result, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	type row struct {
		v, l int
		role Role
	}
	var rows []row
	maxV := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("cluster: line %d: want 'vertex cluster role', got %q", lineNo, line)
		}
		v, err := strconv.Atoi(fields[0])
		if err != nil || v < 0 {
			return nil, fmt.Errorf("cluster: line %d: bad vertex %q", lineNo, fields[0])
		}
		l, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("cluster: line %d: bad cluster %q", lineNo, fields[1])
		}
		role, err := parseRole(fields[2])
		if err != nil {
			return nil, fmt.Errorf("cluster: line %d: %w", lineNo, err)
		}
		rows = append(rows, row{v, l, role})
		if v > maxV {
			maxV = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	res := NewResult(maxV + 1)
	for _, r := range rows {
		res.Labels[r.v] = int32(r.l)
		res.Roles[r.v] = r.role
	}
	res.Canonicalize()
	return res, nil
}

func parseRole(s string) (Role, error) {
	switch s {
	case "core":
		return Core, nil
	case "border":
		return Border, nil
	case "hub":
		return Hub, nil
	case "outlier":
		return Outlier, nil
	case "unclassified":
		return Unclassified, nil
	}
	return 0, fmt.Errorf("cluster: unknown role %q", s)
}
