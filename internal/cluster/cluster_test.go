package cluster

import (
	"bytes"
	"strings"
	"testing"

	"anyscan/internal/graph"
)

func twoTriangles(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromUnweightedEdges(8, [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{4, 5}, {4, 6}, {5, 6},
		{2, 3}, {3, 4},
		{1, 7}, {7, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReferenceTwoTriangles(t *testing.T) {
	g := twoTriangles(t)
	res := Reference(g, 3, 0.6)
	if res.NumClusters != 2 {
		t.Fatalf("want 2 clusters, got %d", res.NumClusters)
	}
	for _, v := range []int32{0, 1, 2, 4, 5, 6} {
		if res.Roles[v] != Core {
			t.Errorf("vertex %d: want core, got %v", v, res.Roles[v])
		}
	}
	for _, v := range []int32{3, 7} {
		if res.Roles[v] != Hub {
			t.Errorf("vertex %d: want hub, got %v", v, res.Roles[v])
		}
		if res.Labels[v] != NoLabel {
			t.Errorf("hub %d labeled %d", v, res.Labels[v])
		}
	}
}

func TestReferenceHighEpsilonAllNoise(t *testing.T) {
	g := twoTriangles(t)
	res := Reference(g, 3, 0.999)
	// σ within a triangle is 1.0 for the unweighted case... actually for
	// vertices 0,1,2 with identical closed neighborhoods σ=1, so they stay
	// cores even at ε≈1. Vertices 1 and 2 carry an extra bridge neighbor,
	// so check the result is at least valid rather than pinning counts.
	if err := Validate(g, 3, 0.999, res); err != nil {
		t.Fatalf("reference invalid: %v", err)
	}
}

func TestReferenceMuLargerThanAnyNeighborhood(t *testing.T) {
	g := twoTriangles(t)
	res := Reference(g, 10, 0.3)
	for v := 0; v < res.N(); v++ {
		if !res.Roles[v].IsNoise() {
			t.Fatalf("vertex %d should be noise at μ=10", v)
		}
	}
	if res.NumClusters != 0 {
		t.Fatalf("want 0 clusters, got %d", res.NumClusters)
	}
}

func TestCanonicalize(t *testing.T) {
	r := NewResult(5)
	r.Labels = []int32{42, NoLabel, 42, 7, 7}
	r.Roles = []Role{Core, Outlier, Border, Core, Border}
	r.Canonicalize()
	if r.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", r.NumClusters)
	}
	// Cluster containing vertex 0 gets label 0 (smallest member first).
	if r.Labels[0] != 0 || r.Labels[2] != 0 {
		t.Errorf("labels = %v, want cluster 0 first", r.Labels)
	}
	if r.Labels[3] != 1 || r.Labels[4] != 1 {
		t.Errorf("labels = %v, want cluster 1 second", r.Labels)
	}
	if r.Labels[1] != NoLabel {
		t.Errorf("noise label changed: %v", r.Labels[1])
	}
}

func TestRoleCountsAndSizes(t *testing.T) {
	r := NewResult(6)
	r.Labels = []int32{0, 0, 1, NoLabel, NoLabel, 1}
	r.Roles = []Role{Core, Border, Core, Hub, Outlier, Border}
	r.NumClusters = 2
	c := r.RoleCounts()
	if c.Cores != 2 || c.Borders != 2 || c.Hubs != 1 || c.Outliers != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Noise() != 2 {
		t.Fatalf("noise = %d", c.Noise())
	}
	sizes := r.ClusterSizes()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
	if m := r.Members(1); len(m) != 2 || m[0] != 2 || m[1] != 5 {
		t.Fatalf("members(1) = %v", m)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := twoTriangles(t)
	good := Reference(g, 3, 0.6)
	if err := Validate(g, 3, 0.6, good); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}

	// Merge the two clusters: must be caught.
	bad := Reference(g, 3, 0.6)
	for v := range bad.Labels {
		if bad.Labels[v] == 1 {
			bad.Labels[v] = 0
		}
	}
	if err := Validate(g, 3, 0.6, bad); err == nil {
		t.Error("merged clusters not caught")
	}

	// Flip a core to border: must be caught.
	bad = Reference(g, 3, 0.6)
	bad.Roles[0] = Border
	if err := Validate(g, 3, 0.6, bad); err == nil {
		t.Error("core/border flip not caught")
	}

	// Mislabel noise: must be caught.
	bad = Reference(g, 3, 0.6)
	bad.Labels[3] = 0
	if err := Validate(g, 3, 0.6, bad); err == nil {
		t.Error("labeled noise not caught")
	}

	// Wrong vertex count: must be caught.
	if err := Validate(g, 3, 0.6, NewResult(3)); err == nil {
		t.Error("size mismatch not caught")
	}
}

func TestEquivalentToleratesSharedBorderReassignment(t *testing.T) {
	// Graph where vertex 4 is a border of two clusters: two disjoint
	// triangles both adjacent to 4.
	g, err := graph.FromUnweightedEdges(8, [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{5, 6}, {5, 7}, {6, 7},
		{2, 4}, {5, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := Reference(g, 3, 0.5)
	if a.Roles[4] != Border && !a.Roles[4].IsNoise() {
		t.Logf("roles: %v labels: %v", a.Roles, a.Labels)
	}
	if a.Roles[4] == Border {
		b := Reference(g, 3, 0.5)
		// Reassign the shared border to the other cluster.
		other := int32(1 - int(b.Labels[4]))
		if int(other) < b.NumClusters {
			b.Labels[4] = other
			if err := Equivalent(a, b); err != nil {
				t.Errorf("shared border reassignment rejected: %v", err)
			}
		}
	}

	// But flipping a core's cluster must fail.
	c := Reference(g, 3, 0.5)
	if c.NumClusters >= 2 {
		c.Labels[0] = 1 - c.Labels[0]
		if err := Equivalent(a, c); err == nil {
			t.Error("core reassignment accepted")
		}
	}
}

func TestClassifyNoiseHubVsOutlier(t *testing.T) {
	// Star of two cluster-attached arms and one dangling vertex.
	g := twoTriangles(t)
	res := Reference(g, 3, 0.6)
	// 3 and 7 touch both clusters → hubs (checked elsewhere). Build an
	// isolated extra vertex case:
	g2, err := graph.FromUnweightedEdges(9, [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{4, 5}, {4, 6}, {5, 6},
		{2, 3}, {3, 4},
		{1, 7}, {7, 5},
		// vertex 8 isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	res2 := Reference(g2, 3, 0.6)
	if res2.Roles[8] != Outlier {
		t.Errorf("isolated vertex: want outlier, got %v", res2.Roles[8])
	}
	_ = res
}

func TestRoleStrings(t *testing.T) {
	for role, want := range map[Role]string{
		Unclassified: "unclassified",
		Outlier:      "outlier",
		Hub:          "hub",
		Border:       "border",
		Core:         "core",
		Role(99):     "Role(99)",
	} {
		if got := role.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", role, got, want)
		}
	}
}

func TestAssignmentsRoundTrip(t *testing.T) {
	g := twoTriangles(t)
	want := Reference(g, 3, 0.6)
	var buf bytes.Buffer
	if err := WriteAssignments(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.NumClusters != want.NumClusters {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.N(), got.NumClusters, want.N(), want.NumClusters)
	}
	for v := 0; v < want.N(); v++ {
		if got.Labels[v] != want.Labels[v] || got.Roles[v] != want.Roles[v] {
			t.Fatalf("vertex %d differs after round trip", v)
		}
	}
}

func TestReadAssignmentsErrors(t *testing.T) {
	for _, bad := range []string{
		"1 2",           // short row
		"x 2 core",      // bad vertex
		"-1 2 core",     // negative vertex
		"1 x core",      // bad cluster
		"1 2 sorcerer",  // bad role
		"1 2 core more", // long row
	} {
		if _, err := ReadAssignments(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q: want error", bad)
		}
	}
	// Empty input yields an empty result.
	r, err := ReadAssignments(strings.NewReader("# nothing\n"))
	if err != nil || r.N() != 0 {
		t.Fatalf("empty parse: %v, n=%d", err, r.N())
	}
}
