// Package cluster defines the shared result model for structural graph
// clustering (Definitions 2–5 of the paper): vertex roles, cluster labels,
// a literal reference implementation of the definitions, result validation,
// and the equivalence notion under which all exact algorithms in this
// repository must agree (identical cores and core partition; borders
// attached to any one qualifying cluster; noise identical).
package cluster

import (
	"fmt"
	"sort"
)

// Role classifies a vertex per Definition 3 plus SCAN's hub/outlier
// refinement of noise vertices.
type Role int8

// Roles. Outlier and Hub are the two flavors of noise; Unclassified appears
// only in intermediate anytime snapshots for vertices not yet touched.
const (
	Unclassified Role = iota
	Outlier
	Hub
	Border
	Core
)

// NoLabel marks vertices outside every cluster.
const NoLabel int32 = -1

func (r Role) String() string {
	switch r {
	case Unclassified:
		return "unclassified"
	case Outlier:
		return "outlier"
	case Hub:
		return "hub"
	case Border:
		return "border"
	case Core:
		return "core"
	}
	return fmt.Sprintf("Role(%d)", int8(r))
}

// IsNoise reports whether the role is a noise flavor (hub or outlier).
func (r Role) IsNoise() bool { return r == Hub || r == Outlier }

// Result is a clustering of a graph's vertices.
type Result struct {
	// Roles[v] is the structural role of vertex v.
	Roles []Role
	// Labels[v] is the dense cluster id of v, or NoLabel for noise and
	// unclassified vertices.
	Labels []int32
	// NumClusters is the number of distinct non-noise clusters.
	NumClusters int
}

// NewResult returns an all-unclassified result for n vertices.
func NewResult(n int) *Result {
	r := &Result{
		Roles:  make([]Role, n),
		Labels: make([]int32, n),
	}
	for i := range r.Labels {
		r.Labels[i] = NoLabel
	}
	return r
}

// N returns the number of vertices.
func (r *Result) N() int { return len(r.Roles) }

// Counts tallies roles; used for the right panel of Fig. 7.
type Counts struct {
	Cores, Borders, Hubs, Outliers, Unclassified int
}

// Noise returns hubs + outliers.
func (c Counts) Noise() int { return c.Hubs + c.Outliers }

// RoleCounts returns the role tally.
func (r *Result) RoleCounts() Counts {
	var c Counts
	for _, role := range r.Roles {
		switch role {
		case Core:
			c.Cores++
		case Border:
			c.Borders++
		case Hub:
			c.Hubs++
		case Outlier:
			c.Outliers++
		default:
			c.Unclassified++
		}
	}
	return c
}

// Canonicalize renumbers cluster labels densely in order of each cluster's
// smallest member vertex, making results from different algorithms directly
// comparable. It also recomputes NumClusters.
func (r *Result) Canonicalize() {
	remap := make(map[int32]int32)
	order := make([]int32, 0)
	for v, l := range r.Labels {
		if l == NoLabel {
			continue
		}
		if _, ok := remap[l]; !ok {
			remap[l] = int32(v) // provisional: smallest member id
			order = append(order, l)
		}
	}
	sort.Slice(order, func(i, j int) bool { return remap[order[i]] < remap[order[j]] })
	dense := make(map[int32]int32, len(order))
	for i, l := range order {
		dense[l] = int32(i)
	}
	for v, l := range r.Labels {
		if l != NoLabel {
			r.Labels[v] = dense[l]
		}
	}
	r.NumClusters = len(order)
}

// ClusterSizes returns the size of each cluster (index = canonical label).
func (r *Result) ClusterSizes() []int {
	sizes := make([]int, r.NumClusters)
	for _, l := range r.Labels {
		if l != NoLabel && int(l) < len(sizes) {
			sizes[l]++
		}
	}
	return sizes
}

// Members returns the vertices of cluster l in ascending order.
func (r *Result) Members(l int32) []int32 {
	var out []int32
	for v, lab := range r.Labels {
		if lab == l {
			out = append(out, int32(v))
		}
	}
	return out
}
