package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig runs experiments at the smallest structurally meaningful scale.
func tinyConfig(buf *bytes.Buffer) Config {
	cfg := DefaultConfig(buf)
	cfg.Scale = 0.08
	cfg.Threads = []int{1, 2}
	cfg.Alpha, cfg.Beta = 128, 128
	return cfg
}

func TestLookup(t *testing.T) {
	for _, e := range Experiments() {
		got, err := Lookup(e.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Title != e.Title {
			t.Errorf("Lookup(%q) returned wrong experiment", e.Name)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentCoverage(t *testing.T) {
	// Every table and figure of the evaluation section must have an
	// experiment: Tables I-II and Figures 5-14.
	want := []string{"table1", "table2", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablation", "approx",
		"approxdial", "mapreduce"}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.Name] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %s missing", w)
		}
	}
	if len(have) != len(want) {
		t.Errorf("unexpected experiment count %d", len(have))
	}
}

// Each experiment must run end-to-end and produce non-trivial output.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	expectations := map[string][]string{
		"table1":    {"GR01L", "GR05L", "stands in for"},
		"table2":    {"LFR01L", "LFR15L"},
		"fig5":      {"anySCAN iter", "NMI", "SCAN", "pSCAN"},
		"fig6":      {"ε sweep", "μ sweep", "anySCAN"},
		"fig7":      {"SCAN++ true", "cores", "borders"},
		"fig8":      {"block size", "ε=0.2", "μ=2"},
		"fig9":      {"pSCAN(ms)", "anySCAN(ms)", "ratio"},
		"fig10":     {"threads", "speedup"},
		"fig11":     {"ideal speedup"},
		"fig12":     {"pSCAN unions", "Step-1 (seq)"},
		"fig13":     {"α=β", "speedup"},
		"fig14":     {"clustering-coefficient sweep"},
		"ablation":  {"no nei promotion", "edge memo", "memo-hits"},
		"approx":    {"budget ρ", "sampling NMI", "anySCAN-stop NMI"},
		"mapreduce": {"MR rounds", "shuffled KVs", "anySCAN unions"},
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			cfg := tinyConfig(&buf)
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("%s produced almost no output:\n%s", e.Name, out)
			}
			for _, want := range expectations[e.Name] {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", e.Name, want, out)
				}
			}
		})
	}
}
