package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func twoReports() (Report, Report) {
	oldRep := Report{
		Date: "2026-01-01",
		Records: []Record{
			{Dataset: "GR01L", Algorithm: "anySCAN", Threads: 4, WallMS: 200, SimEvals: 1000},
			{Dataset: "GR01L", Algorithm: "anySCAN", Threads: 1, WallMS: 400, SimEvals: 1000},
			{Dataset: "GR01L", Algorithm: "SCAN++", Threads: 1, WallMS: 300, SimEvals: 900},
			{Dataset: "GR01L", Algorithm: "index-query", Threads: 4, Mu: 5, Eps: 0.5, WallMS: 3},
			{Dataset: "GR02L", Algorithm: "anySCAN", Threads: 4, WallMS: 800, SimEvals: 5000},
		},
	}
	newRep := Report{
		Date: "2026-01-02",
		Records: []Record{
			{Dataset: "GR01L", Algorithm: "anySCAN", Threads: 4, WallMS: 100, SimEvals: 1000},
			{Dataset: "GR01L", Algorithm: "anySCAN", Threads: 1, WallMS: 400, SimEvals: 1000},
			{Dataset: "GR01L", Algorithm: "SCAN++", Threads: 1, WallMS: 600, SimEvals: 900},
			{Dataset: "GR01L", Algorithm: "index-query", Threads: 4, Mu: 5, Eps: 0.5, WallMS: 1.5},
			{Dataset: "GR03L", Algorithm: "anySCAN", Threads: 4, WallMS: 50, SimEvals: 100},
		},
	}
	return oldRep, newRep
}

func TestCompareReports(t *testing.T) {
	oldRep, newRep := twoReports()
	deltas, onlyOld, onlyNew := CompareReports(oldRep, newRep)
	if len(deltas) != 4 {
		t.Fatalf("matched %d cells, want 4", len(deltas))
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key.String()] = d
	}
	if d := byKey["GR01L/anySCAN/threads=4"]; d.Speedup != 2 {
		t.Fatalf("anySCAN/4 speedup = %v, want 2", d.Speedup)
	}
	if d := byKey["GR01L/SCAN++/threads=1"]; d.Speedup != 0.5 {
		t.Fatalf("SCAN++ speedup = %v, want 0.5 (regression)", d.Speedup)
	}
	if d := byKey["GR01L/index-query/threads=4/mu=5,eps=0.5"]; d.Speedup != 2 {
		t.Fatalf("index-query speedup = %v, want 2", d.Speedup)
	}
	if len(onlyOld) != 1 || onlyOld[0].Dataset != "GR02L" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0].Dataset != "GR03L" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestWriteComparison(t *testing.T) {
	oldRep, newRep := twoReports()
	var buf bytes.Buffer
	if err := WriteComparison(&buf, oldRep, newRep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"GR01L/anySCAN/threads=4", "2.00x", "-50.0%", "+100.0%",
		"geomean speedup:",
		"only in old report: GR02L/anySCAN/threads=4",
		"only in new report: GR03L/anySCAN/threads=4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	oldRep, _ := twoReports()
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := oldRep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(oldRep.Records) || back.Date != oldRep.Date {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loading a missing report did not fail")
	}
}

func TestWriteGoBench(t *testing.T) {
	oldRep, _ := twoReports()
	var buf bytes.Buffer
	if err := oldRep.WriteGoBench(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"goos: ",
		"BenchmarkanySCAN/GR01L/threads-4",
		"BenchmarkSCANpp/GR01L/threads-1",
		"Benchmarkindex-query/GR01L/threads-4/mu-5-eps-0.5",
		"ns/op",
		"sim-evals",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("go-bench output missing %q:\n%s", want, out)
		}
	}
}
