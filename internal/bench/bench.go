// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section IV) on the scaled-down dataset
// stand-ins. Each experiment prints the same rows/series the paper plots;
// cmd/benchrunner dispatches them and bench_test.go wraps them in testing.B
// benchmarks. Absolute numbers differ from the paper (different hardware,
// reduced scale); the comparisons — who wins, by what factor, where the
// crossovers sit — are what these runs reproduce.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"anyscan/internal/cluster"
	"anyscan/internal/core"
	"anyscan/internal/datasets"
	"anyscan/internal/graph"
	"anyscan/internal/scan"
)

// Config controls experiment scale and output.
// Graph storage backends a report can be collected on (Config.Format).
const (
	FormatCSR        = "csr"
	FormatCompressed = "compressed"
)

type Config struct {
	// Scale multiplies the default (already reduced) dataset sizes.
	Scale float64
	// Threads lists the worker counts used by the scalability experiments.
	Threads []int
	// Mu and Eps are the default clustering parameters (paper: 5 and 0.5).
	Mu  int
	Eps float64
	// Alpha and Beta are the anySCAN block sizes. 0 means automatic:
	// max(128, |V|/128), which matches the paper's default (8192 on graphs
	// of 1M-5M vertices, i.e. well below 1% of |V|) at the reduced scales.
	Alpha, Beta int
	// Relabel renumbers every loaded dataset in degree-descending order
	// before measuring (graph.RelabelByDegree) — the CSR layout the
	// degree-adaptive kernels like best on skewed graphs.
	Relabel bool
	// Format selects the graph storage backend the query-index rows of the
	// machine-readable report are measured on: "" or "csr" for the flat CSR,
	// "compressed" for the varint-compressed backend. Batch and anySCAN rows
	// always run on the flat CSR.
	Format string
	// ApproxDeltas lists the accuracy dials δ measured by the approximate-σ
	// rows of the machine-readable report (approx-build / approx-query);
	// empty disables them.
	ApproxDeltas []float64
	// Out receives the experiment report.
	Out io.Writer
}

// DefaultConfig returns the configuration used by cmd/benchrunner.
func DefaultConfig(out io.Writer) Config {
	return Config{
		Scale:   0.5,
		Threads: []int{1, 2, 4, 8, 16},
		Mu:      5,
		Eps:     0.5,
		Out:     out,
	}
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(cfg Config) error
}

// Experiments returns all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I: real-graph stand-in inventory", RunTable1},
		{"table2", "Table II: LFR synthetic graph inventory", RunTable2},
		{"fig5", "Fig 5: anytime NMI/runtime vs batch algorithms", RunFig5},
		{"fig6", "Fig 6: final runtimes vs ε and μ", RunFig6},
		{"fig7", "Fig 7: similarity evaluations and vertex roles", RunFig7},
		{"fig8", "Fig 8: parameter and block-size effects (GR01L)", RunFig8},
		{"fig9", "Fig 9: pSCAN vs anySCAN on synthetic graphs", RunFig9},
		{"fig10", "Fig 10: anytime cumulative runtimes and final speedups per thread count", RunFig10},
		{"fig11", "Fig 11: anySCAN vs ideal parallel algorithm", RunFig11},
		{"fig12", "Fig 12: Union operation counts", RunFig12},
		{"fig13", "Fig 13: scalability vs μ, ε and block size (GR01L)", RunFig13},
		{"fig14", "Fig 14: scalability on synthetic graphs", RunFig14},
		{"ablation", "Ablation: contribution of each anySCAN design choice", RunAblation},
		{"approx", "Approximation: sampling (LinkSCAN*-style) vs anytime early stopping", RunApprox},
		{"approxdial", "Approximate σ: MinHash sketch dial, accuracy vs build speedup", RunApproxDial},
		{"mapreduce", "MapReduce PSCAN vs shared-memory algorithms (the Section V argument)", RunMapReduce},
	}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", name)
}

// batchAlgo identifies one exact batch competitor.
type batchAlgo struct {
	name string
	run  func(g *graph.CSR, mu int, eps float64) (*cluster.Result, scan.Metrics)
}

func batchAlgos() []batchAlgo {
	return []batchAlgo{
		{"SCAN", func(g *graph.CSR, mu int, eps float64) (*cluster.Result, scan.Metrics) {
			return scan.SCAN(g, mu, eps)
		}},
		{"SCAN-B", func(g *graph.CSR, mu int, eps float64) (*cluster.Result, scan.Metrics) {
			return scan.SCANB(g, mu, eps)
		}},
		{"SCAN++", scan.SCANPP},
		{"pSCAN", scan.PSCAN},
	}
}

// anyOpts builds anySCAN options from the config for a run on g. When the
// config does not pin the block sizes they default to max(128, |V|/128),
// the paper's relative default.
func (cfg Config) anyOpts(g *graph.CSR, threads int) core.Options {
	o := core.DefaultOptions()
	o.Mu, o.Eps = cfg.Mu, cfg.Eps
	o.Alpha, o.Beta = cfg.Alpha, cfg.Beta
	if o.Alpha <= 0 {
		o.Alpha = autoBlock(g)
	}
	if o.Beta <= 0 {
		o.Beta = autoBlock(g)
	}
	o.Threads = threads
	return o
}

// autoBlock is the default block size for a graph: ~0.8% of the vertices,
// floored at 128.
func autoBlock(g *graph.CSR) int {
	b := g.NumVertices() / 128
	if b < 128 {
		b = 128
	}
	return b
}

func (cfg Config) load(name string) (*graph.CSR, error) {
	g, err := datasets.Load(name, cfg.Scale)
	if err != nil || !cfg.Relabel {
		return g, err
	}
	relabeled, _ := graph.RelabelByDegree(g)
	return relabeled, nil
}

// runAnySCAN executes anySCAN to completion and returns wall time + metrics.
func runAnySCAN(g *graph.CSR, o core.Options) (*cluster.Result, core.Metrics, time.Duration, error) {
	start := time.Now()
	res, m, err := core.Cluster(g, o)
	return res, m, time.Since(start), err
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
	fmt.Fprintf(w, "(GOMAXPROCS=%d, NumCPU=%d — wall-clock speedups saturate at the physical core count)\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
